// Extension bench: live difficulty retargeting under both controller
// scenarios, cross-checked against the static analysis. Thin wrapper over
// the unified experiment API: equivalent to `ethsm run ext_difficulty`.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("ext_difficulty", argc, argv);
}
