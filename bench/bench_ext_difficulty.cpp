// Extension bench: live difficulty retargeting (paper Sec. II-C / IV-E2 made
// dynamic). Runs the selfish-mining attack under an epoch-based controller
// that pins either the regular-block rate (pre-EIP100, Scenario 1) or the
// regular+uncle rate (EIP100/Byzantium, Scenario 2), and shows:
//   1. the convergence trajectory of difficulty and rates,
//   2. that the steady-state pool revenue per counted block matches the
//      static Markov analysis' Us for the same scenario,
//   3. the security meaning: under pre-EIP100 retargeting the attack
//      *accelerates rewards per wall-clock second*, under EIP100 it cannot.

#include <iostream>

#include "analysis/absolute_revenue.h"
#include "sim/retarget_sim.h"
#include "support/table.h"

namespace {

void run_scenario(ethsm::sim::Scenario scenario, double alpha, double gamma) {
  using ethsm::support::TextTable;

  ethsm::sim::RetargetConfig config;
  config.base.alpha = alpha;
  config.base.gamma = gamma;
  config.base.seed = 0xd1ffULL;
  config.controller.scenario = scenario;
  config.controller.target_rate = 1.0;
  config.controller.initial_difficulty = 1.0;
  config.epoch_blocks = 500;
  config.epochs = 60;
  const auto result = ethsm::sim::run_retarget_simulation(config);

  std::cout << "-- " << to_string(scenario) << " --\n";
  TextTable table({"epoch", "difficulty", "regular/s", "counted/s",
                   "pool reward/s"});
  for (std::size_t i = 0; i < result.epochs.size();
       i += result.epochs.size() / 6) {
    const auto& e = result.epochs[i];
    table.add_row({std::to_string(i), TextTable::num(e.difficulty, 4),
                   TextTable::num(e.regular_rate, 3),
                   TextTable::num(e.counted_rate, 3),
                   TextTable::num(e.pool_reward_rate, 4)});
  }
  table.print(std::cout);

  const auto r = ethsm::analysis::compute_revenue({alpha, gamma},
                                                  config.base.rewards, 80);
  const double us = ethsm::analysis::pool_absolute_revenue(r, scenario);
  std::cout << "steady counted rate: "
            << TextTable::num(result.steady_counted_rate, 4)
            << " (target 1.0)\n"
            << "steady pool revenue per counted block: "
            << TextTable::num(result.steady_pool_revenue_per_counted_block(), 4)
            << "   static analysis Us = " << TextTable::num(us, 4) << "\n"
            << "steady total reward rate per second: "
            << TextTable::num(result.steady_pool_reward_rate +
                                  result.steady_honest_reward_rate, 4)
            << "\n\n";
}

}  // namespace

int main() {
  const double alpha = 0.30;
  const double gamma = 0.5;
  std::cout << "== Extension: selfish mining under live difficulty "
               "retargeting (alpha = " << alpha << ", gamma = " << gamma
            << ") ==\n\n";

  run_scenario(ethsm::sim::Scenario::regular_rate_one, alpha, gamma);
  run_scenario(ethsm::sim::Scenario::regular_and_uncle_rate_one, alpha, gamma);

  std::cout << "Interpretation: with pre-EIP100 retargeting the controller "
               "lowers difficulty until regular blocks flow at the target\n"
               "again, so the uncle/nephew payouts come ON TOP -- total "
               "reward/second exceeds 1 and the attack is cheap (threshold\n"
               "0.054). EIP100 counts uncles, caps the payout stream, and "
               "pushes the threshold to 0.274 (see bench_fig10_threshold).\n";
  return 0;
}
