// Extension bench: stubborn-mining variants (Nayak et al., the paper's
// ref. [5]) under Ethereum's uncle economy -- the "new mining strategies"
// the paper's conclusion points to.
//
// Compares, by simulation at gamma = 0.5 (Byzantium rewards, Scenario 1),
// the pool's absolute revenue for Algorithm 1 vs Lead (L), Equal-Fork (F),
// Trail (T1, T2) and the L+F combination across alpha.

#include <iostream>
#include <vector>

#include "analysis/absolute_revenue.h"
#include "sim/simulator.h"
#include "support/checkpoint.h"
#include "support/csv.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

struct Variant {
  const char* label;
  ethsm::miner::StubbornConfig config;
};

ethsm::miner::StubbornConfig make(bool lead, bool fork, int trail) {
  ethsm::miner::StubbornConfig cfg;
  cfg.lead_stubborn = lead;
  cfg.equal_fork_stubborn = fork;
  cfg.trail_stubbornness = trail;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using ethsm::support::TextTable;
  const auto cli = ethsm::support::parse_sweep_cli(argc, argv);
  const bool quick = cli.quick;

  std::cout << "== Extension: stubborn mining in Ethereum "
               "(gamma = 0.5, Byzantium, scenario 1) ==\n"
            << "   sweep threads: "
            << ethsm::support::ThreadPool::global().concurrency()
            << " (override with ETHSM_THREADS)\n\n";

  const std::vector<Variant> variants = {
      {"Alg.1", make(false, false, 0)}, {"L", make(true, false, 0)},
      {"F", make(false, true, 0)},      {"T1", make(false, false, 1)},
      {"T2", make(false, false, 2)},    {"L+F", make(true, true, 0)},
  };

  std::vector<std::string> headers{"alpha", "honest"};
  for (const auto& v : variants) headers.emplace_back(v.label);
  headers.emplace_back("best");
  TextTable table(std::move(headers));
  ethsm::support::CsvWriter csv(
      {"alpha", "alg1", "lead", "fork", "t1", "t2", "lf"});

  const int runs = quick ? 3 : 6;
  const std::uint64_t blocks = quick ? 30'000 : 100'000;
  ethsm::support::SweepOutcome outcome;

  for (double alpha : {0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}) {
    ethsm::sim::SimConfig config;
    config.alpha = alpha;
    config.gamma = 0.5;
    config.num_blocks = blocks;
    config.seed = 0x57abULL + static_cast<std::uint64_t>(alpha * 1e4);

    std::vector<std::string> row{TextTable::num(alpha, 2),
                                 TextTable::num(alpha, 2)};
    std::vector<double> csv_row{alpha};
    double best = -1.0;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const auto summary = ethsm::sim::run_stubborn_many(
          config, variants[i].config, runs, cli.checkpoint, &outcome);
      const double us = summary
                            .pool_revenue(
                                ethsm::sim::Scenario::regular_rate_one)
                            .mean();
      row.push_back(TextTable::num(us, 4));
      csv_row.push_back(us);
      if (us > best) {
        best = us;
        best_idx = i;
      }
    }
    row.emplace_back(variants[best_idx].label);
    table.add_row(std::move(row));
    csv.add_row(csv_row);
  }
  if (!ethsm::support::report_sweep_progress(std::cout, cli.checkpoint,
                                             outcome)) {
    return 0;
  }
  table.print(std::cout);

  std::cout << "\nReading guide: for Bitcoin, Nayak et al. showed stubborn "
               "variants can beat vanilla selfish mining in parts of the\n"
               "(alpha, gamma) plane; this table answers the same question "
               "with Ethereum's uncle and nephew rewards in play.\n";
  if (csv.write_file("ext_stubborn.csv")) {
    std::cout << "Series written to ext_stubborn.csv\n";
  }
  return 0;
}
