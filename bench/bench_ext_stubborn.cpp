// Extension bench: stubborn-mining variants (Nayak et al.) under Ethereum's
// uncle economy. Thin wrapper over the unified experiment API: equivalent to
// `ethsm run ext_stubborn [--quick] [--checkpoint-dir DIR]`.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("ext_stubborn", argc, argv);
}
