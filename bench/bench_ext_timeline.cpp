// Extension bench: wall-clock economics of defecting (bleed rate, gain rate,
// breakeven horizon under both difficulty regimes). Thin wrapper over the
// unified experiment API: equivalent to `ethsm run ext_timeline`.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("ext_timeline", argc, argv);
}
