// Extension bench: the wall-clock economics of defecting. For each alpha,
// how hard does the attack bleed while difficulty is stale, how much does it
// earn after retargeting, and how long until it breaks even -- under both
// difficulty regimes (pre-EIP100 vs EIP100). Phase-1 length is expressed in
// block intervals; Ethereum retargets per block but the *uncle-aware* signal
// needs on the order of thousands of blocks to dominate, Bitcoin-style
// windows need 2016.

#include <iostream>

#include "analysis/attack_timeline.h"
#include "support/csv.h"
#include "support/table.h"

int main() {
  using ethsm::analysis::Scenario;
  using ethsm::support::TextTable;

  const auto config = ethsm::rewards::RewardConfig::ethereum_byzantium();
  const double gamma = 0.5;
  const double phase1 = 2016.0;  // a Bitcoin-style retarget window

  std::cout << "== Extension: time-to-profit of selfish mining "
               "(gamma = 0.5, Byzantium, phase 1 = 2016 blocks) ==\n\n";

  TextTable table({"alpha", "bleed rate (s1)", "gain rate (s1)",
                   "breakeven blocks (s1)", "bleed rate (s2)", "gain rate (s2)",
                   "breakeven blocks (s2)"});
  ethsm::support::CsvWriter csv({"alpha", "bleed_s1", "gain_s1", "break_s1",
                                 "bleed_s2", "gain_s2", "break_s2"});

  for (double alpha : {0.06, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45}) {
    const auto s1 = ethsm::analysis::compute_attack_timeline(
        {alpha, gamma}, config, Scenario::regular_rate_one);
    const auto s2 = ethsm::analysis::compute_attack_timeline(
        {alpha, gamma}, config, Scenario::regular_and_uncle_rate_one);
    const auto b1 = s1.breakeven_time(phase1);
    const auto b2 = s2.breakeven_time(phase1);
    auto fmt = [](const std::optional<double>& b) {
      return b ? TextTable::num(*b, 0) : std::string("never");
    };
    table.add_row({TextTable::num(alpha, 2),
                   TextTable::num(s1.initial_bleed_rate(), 4),
                   TextTable::num(s1.steady_gain_rate(), 4), fmt(b1),
                   TextTable::num(s2.initial_bleed_rate(), 4),
                   TextTable::num(s2.steady_gain_rate(), 4), fmt(b2)});
    csv.add_row({alpha, s1.initial_bleed_rate(), s1.steady_gain_rate(),
                 b1.value_or(-1), s2.initial_bleed_rate(),
                 s2.steady_gain_rate(), b2.value_or(-1)});
  }
  table.print(std::cout);

  std::cout << "\nTwo security margins the steady-state threshold hides:\n"
               " * even above the threshold the attacker must pre-finance "
               "the bleed through one retarget window;\n"
               " * EIP100 both raises the threshold AND stretches the "
               "repayment period for attackers above it.\n";
  if (csv.write_file("ext_timeline.csv")) {
    std::cout << "Series written to ext_timeline.csv\n";
  }
  return 0;
}
