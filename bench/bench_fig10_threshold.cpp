// Regenerates Fig. 10: the profitability threshold alpha* as a function of
// the network-capability parameter gamma, for
//   * Bitcoin (Eyal–Sirer closed form, "Ittay Model"),
//   * Ethereum Scenario 1 (difficulty tracks regular blocks only),
//   * Ethereum Scenario 2 (EIP100: difficulty tracks regular + uncles),
// using the Byzantium Ku(.) schedule.
//
// Expected shape (paper Sec. V-C): Scenario 1 sits below Bitcoin everywhere;
// Scenario 2 rises above Bitcoin for gamma >~ 0.39.

#include <iostream>

#include "analysis/sweep.h"
#include "support/checkpoint.h"
#include "support/csv.h"
#include "support/table.h"
#include "support/thread_pool.h"

int main(int argc, char** argv) {
  using ethsm::support::TextTable;
  const auto cli = ethsm::support::parse_sweep_cli(argc, argv);

  std::cout << "== Fig. 10: profitability threshold vs gamma (Ku(.)) ==\n"
            << "   sweep threads: "
            << ethsm::support::ThreadPool::global().concurrency()
            << " (override with ETHSM_THREADS)\n\n";

  ethsm::analysis::ThresholdCurveOptions opt;
  if (cli.quick) {
    opt.gammas = {0.0, 0.25, 0.5, 0.75, 1.0};
    opt.threshold.tolerance = 1e-4;
  }
  opt.checkpoint = cli.checkpoint;
  ethsm::support::SweepOutcome outcome;
  const auto curve = ethsm::analysis::threshold_curve(opt, &outcome);
  if (!ethsm::support::report_sweep_progress(std::cout, cli.checkpoint,
                                             outcome)) {
    return 0;
  }

  TextTable table({"gamma", "Bitcoin (Eyal-Sirer)", "Ethereum scenario 1",
                   "Ethereum scenario 2", "scn1 vs BTC", "scn2 vs BTC"});
  ethsm::support::CsvWriter csv({"gamma", "bitcoin", "eth_s1", "eth_s2"});
  double crossover = -1.0;
  double previous_delta = -1.0;
  for (const auto& p : curve) {
    const std::string s1 = p.ethereum_scenario1
                               ? TextTable::num(*p.ethereum_scenario1, 4)
                               : "never";
    const std::string s2 = p.ethereum_scenario2
                               ? TextTable::num(*p.ethereum_scenario2, 4)
                               : "never";
    const double d1 = p.ethereum_scenario1.value_or(1.0) - p.bitcoin;
    const double d2 = p.ethereum_scenario2.value_or(1.0) - p.bitcoin;
    table.add_row({TextTable::num(p.gamma, 2), TextTable::num(p.bitcoin, 4),
                   s1, s2, d1 < 0 ? "below" : "above",
                   d2 < 0 ? "below" : "above"});
    csv.add_row({p.gamma, p.bitcoin, p.ethereum_scenario1.value_or(-1),
                 p.ethereum_scenario2.value_or(-1)});
    if (previous_delta <= 0.0 && d2 > 0.0 && crossover < 0.0 && p.gamma > 0) {
      crossover = p.gamma;
    }
    previous_delta = d2;
  }
  table.print(std::cout);
  std::cout << "\nScenario 2 crosses above Bitcoin at gamma ~ "
            << (crossover > 0 ? TextTable::num(crossover, 2) : "n/a")
            << "   (paper: gamma ~ 0.39)\n";
  std::cout << "Landmark: Bitcoin threshold at gamma=0.5 is 0.25 "
               "(Eyal-Sirer's famous 25%).\n";
  if (csv.write_file("fig10_threshold.csv")) {
    std::cout << "Series written to fig10_threshold.csv\n";
  }
  return 0;
}
