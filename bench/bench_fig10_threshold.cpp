// Regenerates Fig. 10 (profitability threshold vs gamma for Bitcoin and both
// Ethereum difficulty scenarios). Thin wrapper over the unified experiment
// API: equivalent to `ethsm run fig10 [--quick] [--checkpoint-dir DIR]`.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("fig10", argc, argv);
}
