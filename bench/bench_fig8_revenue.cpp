// Regenerates Fig. 8: long-run absolute revenue of the selfish pool and the
// honest miners vs the pool's hash power alpha, at gamma = 0.5 and flat
// Ku = 4/8 (the paper's setup), from BOTH the Markov analysis and the
// discrete-event simulator (1000-miner setup, 10 runs x 100,000 blocks,
// matching Sec. V). The "Honest mining" reference line is the diagonal
// Us = alpha.

#include <iostream>

#include "analysis/sweep.h"
#include "support/checkpoint.h"
#include "support/csv.h"
#include "support/table.h"
#include "support/thread_pool.h"

int main(int argc, char** argv) {
  using ethsm::support::TextTable;
  const auto cli = ethsm::support::parse_sweep_cli(argc, argv);

  std::cout << "== Fig. 8: revenue vs alpha (gamma = 0.5, Ku = 4/8 Ks) ==\n"
            << "   sweep threads: "
            << ethsm::support::ThreadPool::global().concurrency()
            << " (override with ETHSM_THREADS)\n\n";

  ethsm::analysis::RevenueCurveOptions opt;
  opt.gamma = 0.5;
  opt.rewards = ethsm::rewards::RewardConfig::ethereum_flat(0.5);
  opt.scenario = ethsm::analysis::Scenario::regular_rate_one;
  opt.sim_runs = cli.quick ? 3 : 10;      // paper: average of 10 runs
  opt.sim_blocks = cli.quick ? 20'000 : 100'000;  // paper: 100,000 per run
  opt.checkpoint = cli.checkpoint;
  ethsm::support::SweepOutcome outcome;
  const auto curve = ethsm::analysis::revenue_curve(opt, &outcome);
  if (!ethsm::support::report_sweep_progress(std::cout, cli.checkpoint,
                                             outcome)) {
    return 0;
  }

  TextTable table({"alpha", "honest mining", "Us (analysis)", "Us (sim)",
                   "+-95%", "Uh (analysis)", "Uh (sim)", "+-95%"});
  ethsm::support::CsvWriter csv({"alpha", "us_analysis", "us_sim", "us_ci",
                                 "uh_analysis", "uh_sim", "uh_ci"});
  double threshold = -1.0;
  for (const auto& p : curve) {
    table.add_row({TextTable::num(p.alpha, 3), TextTable::num(p.alpha, 3),
                   TextTable::num(p.pool_revenue, 4),
                   p.pool_revenue_sim ? TextTable::num(*p.pool_revenue_sim, 4)
                                      : "-",
                   p.pool_revenue_sim_ci
                       ? TextTable::num(*p.pool_revenue_sim_ci, 4)
                       : "-",
                   TextTable::num(p.honest_revenue, 4),
                   p.honest_revenue_sim
                       ? TextTable::num(*p.honest_revenue_sim, 4)
                       : "-",
                   p.honest_revenue_sim_ci
                       ? TextTable::num(*p.honest_revenue_sim_ci, 4)
                       : "-"});
    csv.add_row({p.alpha, p.pool_revenue, p.pool_revenue_sim.value_or(-1),
                 p.pool_revenue_sim_ci.value_or(-1), p.honest_revenue,
                 p.honest_revenue_sim.value_or(-1),
                 p.honest_revenue_sim_ci.value_or(-1)});
    if (threshold < 0.0 && p.alpha > 0.0 && p.pool_revenue >= p.alpha) {
      threshold = p.alpha;
    }
  }
  table.print(std::cout);
  std::cout << "\nFirst grid point where Us >= alpha: "
            << TextTable::num(threshold, 3)
            << "   (paper: crossing at alpha = 0.163)\n";
  if (csv.write_file("fig8_revenue.csv")) {
    std::cout << "Series written to fig8_revenue.csv\n";
  }
  return 0;
}
