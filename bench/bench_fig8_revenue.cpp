// Regenerates Fig. 8 (revenue vs alpha from BOTH the Markov analysis and the
// simulator). Thin wrapper over the unified experiment API: equivalent to
// `ethsm run fig8 [--quick] [--checkpoint-dir DIR | --resume] [--shard k/N]`
// plus the historical fig8_revenue.csv side-file.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("fig8", argc, argv);
}
