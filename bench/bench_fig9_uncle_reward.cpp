// Regenerates Fig. 9 (revenue under flat Ku in {2/8, 4/8, 7/8}, the
// Byzantium Ku(.), and the distance-cap-6 ablation). Thin wrapper over the
// unified experiment API: equivalent to `ethsm run fig9`.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("fig9", argc, argv);
}
