// Regenerates Fig. 9: revenue of the pool, the honest miners and the whole
// system under different uncle reward schedules -- flat Ku in {2/8, 4/8, 7/8}
// ("a fixed value regardless of the distance", hence an uncapped reference
// horizon) and the Byzantium Ku(.) function. gamma = 0.5, scenario 1.
//
// Headline checks printed at the end:
//   * total revenue at Ku = 7/8, alpha = 0.45 reaches ~135% (the paper's
//     "soars to 135%"); with Ethereum's structural distance cap of 6 it
//     reaches only ~127% (recorded as an ablation),
//   * the Byzantium Ku(.) matches flat 7/8 for the pool's uncle income.

#include <iostream>
#include <memory>
#include <vector>

#include "analysis/sweep.h"
#include "support/checkpoint.h"
#include "support/csv.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

struct Series {
  std::string label;
  ethsm::rewards::RewardConfig config;
};

}  // namespace

int main(int argc, char** argv) {
  using ethsm::analysis::Scenario;
  using ethsm::support::TextTable;
  using ethsm::rewards::RewardConfig;
  const auto cli = ethsm::support::parse_sweep_cli(argc, argv);

  std::cout << "== Fig. 9: revenue under different uncle rewards "
               "(gamma = 0.5) ==\n"
            << "   sweep threads: "
            << ethsm::support::ThreadPool::global().concurrency()
            << " (override with ETHSM_THREADS)\n\n";

  // The paper's flat variants pay at any distance -> horizon 100 (uncapped
  // in practice: leads beyond 100 have stationary mass < 1e-27).
  const std::vector<Series> series = {
      {"Ku=2/8", RewardConfig::ethereum_flat(2.0 / 8.0, 100)},
      {"Ku=4/8", RewardConfig::ethereum_flat(4.0 / 8.0, 100)},
      {"Ku=7/8", RewardConfig::ethereum_flat(7.0 / 8.0, 100)},
      {"Ku(.)", RewardConfig::ethereum_byzantium()},
  };

  TextTable table({"alpha", "Us 2/8", "Us 4/8", "Us 7/8", "Us Ku(.)",
                   "Uh 2/8", "Uh 4/8", "Uh 7/8", "Uh Ku(.)", "Tot 2/8",
                   "Tot 4/8", "Tot 7/8", "Tot Ku(.)"});
  ethsm::support::CsvWriter csv(
      {"alpha", "us_2_8", "us_4_8", "us_7_8", "us_byz", "uh_2_8", "uh_4_8",
       "uh_7_8", "uh_byz", "total_2_8", "total_4_8", "total_7_8",
       "total_byz"});

  std::vector<std::vector<ethsm::analysis::RevenuePoint>> curves;
  ethsm::support::SweepOutcome outcome;
  for (const auto& s : series) {
    ethsm::analysis::RevenueCurveOptions opt;
    opt.gamma = 0.5;
    opt.rewards = s.config;
    opt.scenario = Scenario::regular_rate_one;
    opt.max_lead = 120;
    opt.checkpoint = cli.checkpoint;
    curves.push_back(ethsm::analysis::revenue_curve(opt, &outcome));
  }
  // Ablation series (used at the end): computed up front so the partial-
  // sweep gate below covers every checkpointed job of this regenerator.
  ethsm::analysis::RevenueCurveOptions capped;
  capped.gamma = 0.5;
  capped.rewards = RewardConfig::ethereum_flat(7.0 / 8.0);  // horizon 6
  capped.alphas = {0.45};
  capped.max_lead = 120;
  capped.checkpoint = cli.checkpoint;
  const auto capped_curve = ethsm::analysis::revenue_curve(capped, &outcome);

  if (!ethsm::support::report_sweep_progress(std::cout, cli.checkpoint,
                                             outcome)) {
    return 0;
  }

  for (std::size_t i = 0; i < curves[0].size(); ++i) {
    std::vector<std::string> row{TextTable::num(curves[0][i].alpha, 3)};
    std::vector<double> csv_row{curves[0][i].alpha};
    for (const auto& c : curves) {
      row.push_back(TextTable::num(c[i].pool_revenue, 4));
      csv_row.push_back(c[i].pool_revenue);
    }
    for (const auto& c : curves) {
      row.push_back(TextTable::num(c[i].honest_revenue, 4));
      csv_row.push_back(c[i].honest_revenue);
    }
    for (const auto& c : curves) {
      row.push_back(TextTable::num(c[i].total_revenue, 4));
      csv_row.push_back(c[i].total_revenue);
    }
    table.add_row(row);
    csv.add_row(csv_row);
  }
  table.print(std::cout);

  const auto& last78 = curves[2].back();  // Ku = 7/8 at alpha = 0.45
  std::cout << "\nTotal revenue at Ku=7/8, alpha=0.45: "
            << TextTable::pct(last78.total_revenue)
            << "   (paper: soars to 135%)\n";

  std::cout << "Ablation -- same with Ethereum's distance cap of 6: "
            << TextTable::pct(capped_curve[0].total_revenue) << "\n";

  std::cout << "Pool revenue, Ku(.) vs flat 7/8 at alpha=0.45: "
            << TextTable::num(curves[3].back().pool_revenue, 4) << " vs "
            << TextTable::num(curves[2].back().pool_revenue, 4)
            << "   (paper: Ku(.) acts like 7/8 for the pool)\n";
  if (csv.write_file("fig9_uncle_reward.csv")) {
    std::cout << "Series written to fig9_uncle_reward.csv\n";
  }
  return 0;
}
