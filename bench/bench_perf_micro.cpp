// Engine performance microbenchmarks (google-benchmark): simulator
// throughput, stationary-solver cost at different truncations, reward-case
// evaluation, uncle-candidate collection, and end-to-end experiment pieces.
// Not a paper artefact -- this guards the practicality of the harness (a full
// Fig. 8 regeneration runs 19 x 10 x 100k blocks through the simulator).
//
// Unless a --benchmark_out flag is given, results are written to
// BENCH_perf.json (google-benchmark JSON format, with hardware_concurrency
// recorded in the context) so the perf trajectory is tracked in-repo.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "analysis/revenue.h"
#include "analysis/threshold.h"
#include "analysis/uncle_distance.h"
#include "chain/uncle_index.h"
#include "markov/closed_form.h"
#include "markov/stationary.h"
#include "miner/honest_policy.h"
#include "miner/selfish_policy.h"
#include "net/event_queue.h"
#include "net/net_sim.h"
#include "sim/simulator.h"
#include "support/metrics.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/thread_pool.h"

// Process-wide heap-allocation counter (bench binary only): every operator
// new bumps it, so a benchmark can report allocations per unit of work. Used
// to pin the simulator hot loop at ~0 allocations per block now that
// Block::uncle_refs lives in the BlockTree arena and the policies reuse
// collection scratch.
std::atomic<std::uint64_t> g_heap_allocs{0};

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

/// Guards the uncle-ref arena refactor: a steady-state 50k-block simulation
/// (thread-local tree already warm) must perform (almost) no heap allocation
/// per block -- uncle refs land in the tree arena, the policies reuse their
/// collection scratch, and the tree reuses node storage across runs. The
/// reported counter is allocations per mined block; pre-arena this sat at
/// >= 1 (one vector per block carrying uncle refs).
void BM_SimulatorAllocsPerBlock(benchmark::State& state) {
  ethsm::sim::SimConfig config;
  config.alpha = 0.35;
  config.gamma = 0.5;
  config.num_blocks = 50'000;
  config.seed = 7;
  // Warm the thread-local tree and ledger buffers once; the sweep drivers run
  // thousands of simulations per process, so steady state is what matters.
  benchmark::DoNotOptimize(ethsm::sim::run_simulation(config));

  std::uint64_t allocs = 0;
  std::uint64_t blocks = 0;
  for (auto _ : state) {
    const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
    benchmark::DoNotOptimize(ethsm::sim::run_simulation(config));
    allocs += g_heap_allocs.load(std::memory_order_relaxed) - before;
    blocks += config.num_blocks;
  }
  state.counters["allocs_per_block"] = benchmark::Counter(
      blocks == 0 ? 0.0
                  : static_cast<double>(allocs) / static_cast<double>(blocks));
  state.SetItemsProcessed(static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_SimulatorAllocsPerBlock)->Unit(benchmark::kMillisecond);

void BM_SimulatorThroughput(benchmark::State& state) {
  ethsm::sim::SimConfig config;
  config.alpha = static_cast<double>(state.range(0)) / 100.0;
  config.gamma = 0.5;
  config.num_blocks = 50'000;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(ethsm::sim::run_simulation(config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(config.num_blocks));
}
BENCHMARK(BM_SimulatorThroughput)->Arg(10)->Arg(30)->Arg(45)
    ->Unit(benchmark::kMillisecond);

void BM_StationarySolve(benchmark::State& state) {
  const int max_lead = static_cast<int>(state.range(0));
  const ethsm::markov::StateSpace space(max_lead);
  const ethsm::markov::TransitionModel model(space, {0.4, 0.5});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ethsm::markov::solve_stationary(model));
  }
  state.SetLabel(std::to_string(space.size()) + " states");
}
BENCHMARK(BM_StationarySolve)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond);

/// The pre-CSR solver: power iteration over the array-of-structs edge list.
/// Kept as the baseline half of the CSR-vs-edge-list comparison so the gain
/// from row-contiguous structure-of-arrays iteration stays measured.
std::vector<double> solve_stationary_edge_list(
    const ethsm::markov::TransitionModel& model, double tolerance,
    int max_iterations) {
  const auto n = static_cast<std::size_t>(model.space().size());
  std::vector<double> pi(n, 0.0);
  std::vector<double> next(n, 0.0);
  pi[0] = 1.0;
  double diff = 1.0;
  for (int iter = 0; iter < max_iterations && diff > tolerance; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const ethsm::markov::Transition& t : model.transitions()) {
      next[static_cast<std::size_t>(t.to)] +=
          pi[static_cast<std::size_t>(t.from)] * t.rate;
    }
    diff = 0.0;
    for (std::size_t s = 0; s < n; ++s) diff += std::abs(next[s] - pi[s]);
    pi.swap(next);
  }
  ethsm::support::KahanSum total;
  for (double p : pi) total.add(p);
  for (double& p : pi) p /= total.value();
  return pi;
}

void BM_StationarySolveEdgeList(benchmark::State& state) {
  const int max_lead = static_cast<int>(state.range(0));
  const ethsm::markov::StateSpace space(max_lead);
  const ethsm::markov::TransitionModel model(space, {0.4, 0.5});
  const ethsm::markov::StationaryOptions defaults;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_stationary_edge_list(
        model, defaults.tolerance, defaults.max_iterations));
  }
  state.SetLabel(std::to_string(space.size()) + " states");
}
BENCHMARK(BM_StationarySolveEdgeList)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond);

/// The two explicit inner solvers side by side on the default-parameter chain
/// (BM_StationarySolve above runs `automatic`, which resolves to
/// Gauss-Seidel here). The GS/power real-time ratio is the raw-speed claim
/// the perf gate (tools/perf_gate.py) keeps honest.
void BM_StationarySolveGS(benchmark::State& state) {
  const int max_lead = static_cast<int>(state.range(0));
  const ethsm::markov::StateSpace space(max_lead);
  const ethsm::markov::TransitionModel model(space, {0.4, 0.5});
  ethsm::markov::StationaryOptions options;
  options.method = ethsm::markov::SolveMethod::gauss_seidel;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ethsm::markov::solve_stationary(model, options));
  }
  state.SetLabel(std::to_string(space.size()) + " states");
}
BENCHMARK(BM_StationarySolveGS)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond);

void BM_StationarySolvePower(benchmark::State& state) {
  const int max_lead = static_cast<int>(state.range(0));
  const ethsm::markov::StateSpace space(max_lead);
  const ethsm::markov::TransitionModel model(space, {0.4, 0.5});
  ethsm::markov::StationaryOptions options;
  options.method = ethsm::markov::SolveMethod::power;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ethsm::markov::solve_stationary(model, options));
  }
  state.SetLabel(std::to_string(space.size()) + " states");
}
BENCHMARK(BM_StationarySolvePower)->Arg(40)->Arg(80)->Arg(160)
    ->Unit(benchmark::kMillisecond);

/// The corner the Gauss-Seidel solver exists for: large alpha, small gamma,
/// deep truncation (recommended_max_lead grows to 600 there). Arg 0 = GS,
/// Arg 1 = power; the iteration gap is ~an order of magnitude.
void BM_StationarySolveDeepCorner(benchmark::State& state) {
  const ethsm::markov::StateSpace space(300);
  const ethsm::markov::TransitionModel model(space, {0.45, 0.05});
  ethsm::markov::StationaryOptions options;
  options.method = state.range(0) == 0 ? ethsm::markov::SolveMethod::gauss_seidel
                                       : ethsm::markov::SolveMethod::power;
  int iterations = 0;
  for (auto _ : state) {
    const auto pi = ethsm::markov::solve_stationary(model, options);
    iterations = pi.iterations();
    benchmark::DoNotOptimize(pi.values().data());
  }
  state.counters["sweeps"] = benchmark::Counter(static_cast<double>(iterations));
  state.SetLabel(state.range(0) == 0 ? "gauss_seidel" : "power");
}
BENCHMARK(BM_StationarySolveDeepCorner)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Sweep-scale multi-run throughput vs thread count. The work per iteration
/// is fixed (8 runs x 20k blocks), so the ratio of the Arg(1) to Arg(N)
/// real-time numbers is the parallel speedup recorded in BENCH_perf.json.
void BM_RunManyParallel(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  ethsm::support::ThreadPool::set_global_concurrency(threads);
  ethsm::sim::SimConfig config;
  config.alpha = 0.35;
  config.gamma = 0.5;
  config.num_blocks = 20'000;
  constexpr int kRuns = 8;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    config.seed = seed++;
    benchmark::DoNotOptimize(ethsm::sim::run_many(config, kRuns));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRuns *
                          static_cast<std::int64_t>(config.num_blocks));
  ethsm::support::ThreadPool::set_global_concurrency(
      ethsm::support::ThreadPool::default_concurrency());
}
BENCHMARK(BM_RunManyParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

void BM_RevenueBreakdown(benchmark::State& state) {
  const auto config = ethsm::rewards::RewardConfig::ethereum_byzantium();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ethsm::analysis::compute_revenue({0.35, 0.5}, config, 80));
  }
}
BENCHMARK(BM_RevenueBreakdown)->Unit(benchmark::kMillisecond);

/// The kind-batched revenue kernel in isolation: model and stationary vector
/// prebuilt, so the loop times exactly the weighted-sum integration that
/// runs once per sweep cell. items/s counts CSR entries consumed.
void BM_ComputeRevenueKernel(benchmark::State& state) {
  const auto config = ethsm::rewards::RewardConfig::ethereum_byzantium();
  const ethsm::markov::StateSpace space(static_cast<int>(state.range(0)));
  const ethsm::markov::TransitionModel model(space, {0.35, 0.5});
  const auto pi = ethsm::markov::solve_stationary(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ethsm::analysis::compute_revenue(pi, model, config));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(model.transitions().size()));
  state.SetLabel(std::to_string(model.transitions().size()) + " entries");
}
BENCHMARK(BM_ComputeRevenueKernel)->Arg(80)->Arg(300);

/// Baseline half of the kernel comparison: the pre-batching per-entry
/// switch + Kahan loop (the frozen copy in tests/kernel/reference_engines.cpp
/// is the correctness reference; this inline copy is the perf baseline, same
/// precedent as solve_stationary_edge_list above).
void BM_ComputeRevenueKernelReference(benchmark::State& state) {
  const auto config = ethsm::rewards::RewardConfig::ethereum_byzantium();
  const ethsm::markov::StateSpace space(static_cast<int>(state.range(0)));
  const ethsm::markov::TransitionModel model(space, {0.35, 0.5});
  const auto pi = ethsm::markov::solve_stationary(model);
  for (auto _ : state) {
    ethsm::support::KahanSum pool_static, pool_uncle, pool_nephew;
    ethsm::support::KahanSum honest_static, honest_uncle, honest_nephew;
    ethsm::support::KahanSum regular_rate, uncle_rate;
    const int n = model.space().size();
    const auto& row = model.row_offsets();
    const auto& rate = model.rates();
    const auto& kind = model.kinds();
    for (int s = 0; s < n; ++s) {
      const double mass = pi[s];
      if (mass == 0.0) continue;
      const ethsm::markov::State& st = model.space().state_at(s);
      for (std::uint32_t k = row[static_cast<std::size_t>(s)];
           k < row[static_cast<std::size_t>(s) + 1]; ++k) {
        const double weight = mass * rate[k];
        if (weight == 0.0) continue;
        const ethsm::analysis::RewardFlow flow = ethsm::analysis::expected_rewards(
            st, kind[k], model.params(), config);
        pool_static.add(weight * flow.pool_static);
        pool_uncle.add(weight * flow.pool_uncle);
        pool_nephew.add(weight * flow.pool_nephew);
        honest_static.add(weight * flow.honest_static);
        honest_uncle.add(weight * flow.honest_uncle);
        honest_nephew.add(weight * flow.honest_nephew);
        regular_rate.add(weight * flow.regular_probability);
        uncle_rate.add(weight * flow.referenced_uncle_probability);
      }
    }
    benchmark::DoNotOptimize(pool_static.value() + honest_static.value() +
                             pool_uncle.value() + uncle_rate.value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(model.transitions().size()));
  state.SetLabel(std::to_string(model.transitions().size()) + " entries");
}
BENCHMARK(BM_ComputeRevenueKernelReference)->Arg(80)->Arg(300);

void BM_ThresholdSearch(benchmark::State& state) {
  const auto config = ethsm::rewards::RewardConfig::ethereum_byzantium();
  ethsm::analysis::ThresholdOptions opt;
  opt.tolerance = 1e-4;
  opt.max_lead = 60;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ethsm::analysis::profitability_threshold(
        0.5, config, ethsm::sim::Scenario::regular_rate_one, opt));
  }
}
BENCHMARK(BM_ThresholdSearch)->Unit(benchmark::kMillisecond);

void BM_MetricsCounterHotPath(benchmark::State& state) {
  // The observability layer's overhead contract: one Counter::add() is one
  // relaxed fetch_add on a thread-striped cell, cheap enough to sit on the
  // sweep hot path. The perf gate pins this so a future "small" change to
  // the metrics layer cannot silently tax every instrumented loop.
  ethsm::support::metrics::Counter counter;
  for (auto _ : state) {
    counter.add();
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterHotPath);

void BM_ClosedFormPiij(benchmark::State& state) {
  for (auto _ : state) {
    for (int i = 3; i <= 12; ++i) {
      for (int j = 1; j <= i - 2; ++j) {
        benchmark::DoNotOptimize(
            ethsm::markov::piij_closed_form(0.4, 0.5, i, j));
      }
    }
  }
}
BENCHMARK(BM_ClosedFormPiij);

void BM_UncleCandidateCollection(benchmark::State& state) {
  // A chain with a stale sibling every 3 blocks: realistic candidate load.
  ethsm::chain::BlockTree tree;
  ethsm::chain::BlockId tip = tree.genesis();
  for (int i = 0; i < 1000; ++i) {
    if (i % 3 == 0) {
      const auto stale = tree.append(tip, ethsm::chain::MinerClass::honest, 0,
                                     i + 0.5);
      tree.publish(stale, i + 0.5);
    }
    const auto next =
        tree.append(tip, ethsm::chain::MinerClass::honest, 0, i + 1.0);
    tree.publish(next, i + 1.0);
    tip = next;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ethsm::chain::collect_uncle_references(tree, tip, 6, 0));
  }
}
BENCHMARK(BM_UncleCandidateCollection);

void BM_SelfishPolicyStep(benchmark::State& state) {
  const auto config = ethsm::rewards::RewardConfig::ethereum_byzantium();
  ethsm::support::Xoshiro256 rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    ethsm::chain::BlockTree tree(2100);
    ethsm::miner::SelfishPolicy pool(
        tree, ethsm::miner::SelfishPolicyConfig::from_rewards(config));
    ethsm::miner::HonestPolicy honest(0.5, config);
    state.ResumeTiming();
    double now = 0.0;
    for (int i = 0; i < 2000; ++i) {
      now += 1.0;
      if (rng.bernoulli(0.35)) {
        pool.on_pool_block(now);
      } else {
        const auto b = honest.mine_block(
            tree, honest.choose_parent(pool.public_view(), rng), now, 0);
        pool.on_honest_block(b, now);
      }
    }
    benchmark::DoNotOptimize(pool.finalize(now));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_SelfishPolicyStep)->Unit(benchmark::kMillisecond);

void BM_UncleDistanceDistribution(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ethsm::analysis::honest_uncle_distance_distribution({0.45, 0.5}, 80));
  }
}
BENCHMARK(BM_UncleDistanceDistribution)->Unit(benchmark::kMillisecond);

/// Raw event-queue throughput (src/net): a Poisson-ish workload that keeps
/// ~1k events in flight, interleaving pushes and pops the way the network
/// simulator does. The events_per_sec counter is the number the net sweeps
/// are gated on -- a 100k-block complete-graph run moves tens of millions of
/// events through this heap.
void BM_EventQueueThroughput(benchmark::State& state) {
  ethsm::net::EventQueue<std::uint64_t> queue;
  ethsm::support::Xoshiro256 rng(42);
  constexpr int kInFlight = 1'000;
  std::uint64_t ops = 0;
  for (auto _ : state) {
    queue.reset();
    double now = 0.0;
    for (int i = 0; i < kInFlight; ++i) {
      queue.push(rng.exponential(1.0), static_cast<std::uint64_t>(i));
    }
    for (int i = 0; i < 20'000; ++i) {
      const auto entry = queue.pop();
      now = entry.time;
      benchmark::DoNotOptimize(entry.payload);
      queue.push(now + rng.exponential(1.0), entry.payload);
    }
    ops += 20'000 + kInFlight;
  }
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventQueueThroughput)->Unit(benchmark::kMillisecond);

/// End-to-end network-simulator throughput: one 10k-block run on the default
/// zero-latency complete graph, reporting both blocks and discrete events per
/// second (gossip messages dominate; ~E announces + N request/deliver pairs
/// per block).
void BM_NetSimulatorEventsPerSec(benchmark::State& state) {
  ethsm::net::NetSimConfig config;
  config.alpha = 0.3;
  config.honest_nodes = 16;
  config.num_blocks = 10'000;
  config.seed = 7;
  std::uint64_t events = 0;
  std::uint64_t blocks = 0;
  for (auto _ : state) {
    const auto result = ethsm::net::run_net_simulation(config);
    events += result.events_processed;
    blocks += config.num_blocks;
    benchmark::DoNotOptimize(result.race_samples);
  }
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["blocks_per_sec"] = benchmark::Counter(
      static_cast<double>(blocks), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetSimulatorEventsPerSec)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Default the output to BENCH_perf.json unless the caller chose a sink;
  // the storage lives here so the char* argv stays valid through Initialize.
  std::vector<std::string> arg_storage(argv, argv + argc);
  bool has_out = false;
  for (const std::string& a : arg_storage) {
    if (a == "--benchmark_out" || a.rfind("--benchmark_out=", 0) == 0) {
      has_out = true;
    }
  }
  if (!has_out) {
    arg_storage.push_back("--benchmark_out=BENCH_perf.json");
    arg_storage.push_back("--benchmark_out_format=json");
  }
  std::vector<char*> args;
  args.reserve(arg_storage.size());
  for (std::string& a : arg_storage) args.push_back(a.data());
  int args_count = static_cast<int>(args.size());

  benchmark::Initialize(&args_count, args.data());
  benchmark::AddCustomContext(
      "hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext(
      "ethsm_default_threads",
      std::to_string(ethsm::support::ThreadPool::default_concurrency()));
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
