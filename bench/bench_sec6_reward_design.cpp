// Regenerates the Sec. VI defense analysis (Byzantium vs flat schedules and
// the designer sweep over flat Ku values). Thin wrapper over the unified
// experiment API: equivalent to `ethsm run sec6_reward_design`.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("sec6_reward_design", argc, argv);
}
