// Regenerates the Sec. VI defense analysis: replacing the Byzantium schedule
// Ku(d) = (8-d)/8 with a flat Ku = 4/8 raises the profitability threshold
//   scenario 1: 0.054 -> 0.163,   scenario 2: 0.270 -> 0.356  (gamma = 0.5),
// plus a sweep over flat values showing the designer's trade-off between
// decentralization incentive (uncle payout level) and selfish-mining
// resistance (threshold).

#include <iostream>

#include "analysis/threshold.h"
#include "support/csv.h"
#include "support/table.h"

int main() {
  using ethsm::analysis::Scenario;
  using ethsm::support::TextTable;

  std::cout << "== Sec. VI: uncle-reward redesign vs selfish mining "
               "(gamma = 0.5) ==\n\n";

  const auto byz = ethsm::rewards::RewardConfig::ethereum_byzantium();
  const auto flat = ethsm::rewards::RewardConfig::ethereum_flat(0.5);
  ethsm::analysis::ThresholdOptions opt;
  opt.tolerance = 1e-5;

  auto threshold = [&](const ethsm::rewards::RewardConfig& cfg, Scenario s) {
    const auto t = ethsm::analysis::profitability_threshold(0.5, cfg, s, opt);
    return t.value_or(-1.0);
  };

  TextTable headline({"Schedule", "alpha* scenario 1", "alpha* scenario 2"});
  headline.add_row({"Ku(.) Byzantium (8-d)/8",
                    TextTable::num(threshold(byz, Scenario::regular_rate_one), 3),
                    TextTable::num(
                        threshold(byz, Scenario::regular_and_uncle_rate_one), 3)});
  headline.add_row({"Ku = 4/8 flat (proposal)",
                    TextTable::num(threshold(flat, Scenario::regular_rate_one), 3),
                    TextTable::num(
                        threshold(flat, Scenario::regular_and_uncle_rate_one), 3)});
  headline.print(std::cout);
  std::cout << "\nPaper: 0.054 -> 0.163 (scenario 1) and 0.270 -> 0.356 "
               "(scenario 2).\n\n";

  std::cout << "== Designer sweep: flat Ku value vs threshold ==\n\n";
  TextTable sweep({"flat Ku", "alpha* scenario 1", "alpha* scenario 2"});
  ethsm::support::CsvWriter csv({"ku", "threshold_s1", "threshold_s2"});
  for (int eighths = 1; eighths <= 7; ++eighths) {
    const double ku = eighths / 8.0;
    const auto cfg = ethsm::rewards::RewardConfig::ethereum_flat(ku);
    const double s1 = threshold(cfg, Scenario::regular_rate_one);
    const double s2 = threshold(cfg, Scenario::regular_and_uncle_rate_one);
    sweep.add_row({std::to_string(eighths) + "/8", TextTable::num(s1, 3),
                   TextTable::num(s2, 3)});
    csv.add_row({ku, s1, s2});
  }
  sweep.print(std::cout);
  std::cout << "\nLower flat values resist selfish mining better but weaken "
               "the anti-centralization incentive uncles were designed for "
               "(Sec. VI).\n";
  if (csv.write_file("sec6_reward_design.csv")) {
    std::cout << "Series written to sec6_reward_design.csv\n";
  }
  return 0;
}
