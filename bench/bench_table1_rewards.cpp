// Regenerates the paper's Table I: "Mining rewards in Ethereum and Bitcoin",
// and prints the concrete schedules the library implements for each entry.

#include <iostream>

#include "rewards/reward_schedule.h"
#include "support/table.h"

int main() {
  using ethsm::support::TextTable;

  std::cout << "== Table I: mining rewards in Ethereum and Bitcoin ==\n\n";

  TextTable table({"Reward type", "Ethereum", "Bitcoin", "Purpose"});
  for (const auto& row : ethsm::rewards::table1_reward_inventory()) {
    table.add_row({row.reward_type, row.in_ethereum ? "yes" : "no",
                   row.in_bitcoin ? "yes" : "no", row.purpose});
  }
  table.print(std::cout);

  std::cout << "\n== Concrete schedules (relative to Ks = 1) ==\n\n";
  const ethsm::rewards::ByzantiumUncleSchedule byzantium;
  TextTable schedule({"distance d", "Ku(d) Byzantium", "Ku(d) flat 4/8",
                      "Kn(d) nephew"});
  const ethsm::rewards::FlatUncleSchedule flat(0.5);
  const ethsm::rewards::NephewRewardSchedule nephew;
  for (int d = 1; d <= 7; ++d) {
    schedule.add_row({std::to_string(d), TextTable::num(byzantium.reward(d), 4),
                      TextTable::num(flat.reward(d), 4),
                      TextTable::num(nephew.reward(d), 4)});
  }
  schedule.print(std::cout);

  std::cout << "\nKu(d) = (8-d)/8 for d in 1..6 (paper Eq. (7)); "
               "Kn = 1/32 within the same horizon.\n";
  return 0;
}
