// Regenerates Table I (mining-reward inventory + concrete schedules). Thin
// wrapper over the unified experiment API: equivalent to `ethsm run table1`.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("table1", argc, argv);
}
