// Regenerates Table II: the distribution of honest miners' uncle blocks over
// referencing distances 1..6 (conditional on being referenced), at gamma=0.5
// for alpha = 0.3 and alpha = 0.45 -- from the Markov analysis and
// cross-checked by simulation.

#include <iostream>

#include "analysis/uncle_distance.h"
#include "sim/simulator.h"
#include "support/checkpoint.h"
#include "support/csv.h"
#include "support/table.h"
#include "support/thread_pool.h"

int main(int argc, char** argv) {
  using ethsm::support::TextTable;
  const auto cli = ethsm::support::parse_sweep_cli(argc, argv);
  const bool quick = cli.quick;

  std::cout << "== Table II: honest uncles' referencing distances "
               "(gamma = 0.5) ==\n"
            << "   sweep threads: "
            << ethsm::support::ThreadPool::global().concurrency()
            << " (override with ETHSM_THREADS)\n\n";

  TextTable table({"Referencing distance", "alpha=0.3 (analysis)",
                   "alpha=0.3 (sim)", "alpha=0.45 (analysis)",
                   "alpha=0.45 (sim)"});
  ethsm::support::CsvWriter csv(
      {"distance", "a30_analysis", "a30_sim", "a45_analysis", "a45_sim"});

  const auto d30 =
      ethsm::analysis::honest_uncle_distance_distribution({0.3, 0.5}, 120);
  const auto d45 =
      ethsm::analysis::honest_uncle_distance_distribution({0.45, 0.5}, 120);

  ethsm::support::SweepOutcome outcome;
  auto simulate = [&](double alpha) {
    ethsm::sim::SimConfig sc;
    sc.alpha = alpha;
    sc.gamma = 0.5;
    sc.num_blocks = quick ? 50'000 : 100'000;
    sc.seed = 0x7ab1e2;
    return ethsm::sim::run_many(sc, quick ? 3 : 10, cli.checkpoint, &outcome);
  };
  const auto s30 = simulate(0.3);
  const auto s45 = simulate(0.45);
  if (!ethsm::support::report_sweep_progress(std::cout, cli.checkpoint,
                                             outcome)) {
    return 0;
  }

  for (int d = 1; d <= 6; ++d) {
    const double sim30 = s30.uncle_distance_honest.conditional_fraction(
        static_cast<std::size_t>(d), 1, 6);
    const double sim45 = s45.uncle_distance_honest.conditional_fraction(
        static_cast<std::size_t>(d), 1, 6);
    table.add_row({std::to_string(d), TextTable::num(d30.fraction[d], 3),
                   TextTable::num(sim30, 3), TextTable::num(d45.fraction[d], 3),
                   TextTable::num(sim45, 3)});
    csv.add_row({static_cast<double>(d), d30.fraction[d], sim30,
                 d45.fraction[d], sim45});
  }
  table.add_row({"Expectation", TextTable::num(d30.expectation, 2),
                 TextTable::num(s30.uncle_distance_honest.conditional_mean(1, 6), 2),
                 TextTable::num(d45.expectation, 2),
                 TextTable::num(s45.uncle_distance_honest.conditional_mean(1, 6), 2)});
  table.print(std::cout);

  std::cout << "\nPaper Table II: alpha=0.3 -> .527 .295 .111 .043 .017 .007"
               " (E = 1.75); alpha=0.45 -> .284 .249 .171 .125 .096 .075"
               " (E = 2.72).\n";
  std::cout << "Pool uncles are always referenced at distance 1 (Remark 5): "
            << "sim pool d=1 fraction = "
            << TextTable::num(
                   s45.uncle_distance_pool.conditional_fraction(1, 1, 6), 3)
            << "\n";
  if (csv.write_file("table2_uncle_distance.csv")) {
    std::cout << "Series written to table2_uncle_distance.csv\n";
  }
  return 0;
}
