// Regenerates Table II (uncle referencing-distance distribution, analysis +
// simulation). Thin wrapper over the unified experiment API: equivalent to
// `ethsm run table2 [--quick] [--checkpoint-dir DIR]`.

#include "api/cli.h"

int main(int argc, char** argv) {
  return ethsm::api::legacy_bench_main("table2", argc, argv);
}
