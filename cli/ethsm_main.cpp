// The unified `ethsm` CLI: list/print/run experiment presets and spec files,
// inspect and GC checkpoint directories. All logic lives in api/cli.cpp so
// the bench wrappers and tests share it.

#include "api/cli.h"

int main(int argc, char** argv) { return ethsm::api::cli_main(argc, argv); }
