// Attack explorer: sweeps the full (alpha, gamma) plane and prints a heat
// table of the selfish-mining advantage Us - alpha (positive = the attack
// pays). Shows at a glance how network-level influence (gamma, e.g. via
// eclipse/BGP position) substitutes for raw hash power, and how EIP100
// (scenario 2) shrinks the profitable region.
//
//   ./attack_explorer [scenario: 1|2]

#include <cstdlib>
#include <iostream>

#include "analysis/absolute_revenue.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace ethsm;
  using support::TextTable;

  const int scenario_arg = argc > 1 ? std::atoi(argv[1]) : 1;
  const auto scenario = scenario_arg == 2
                            ? analysis::Scenario::regular_and_uncle_rate_one
                            : analysis::Scenario::regular_rate_one;

  std::cout << "Selfish-mining advantage Us - alpha under "
            << to_string(scenario) << ", Byzantium rewards.\n"
            << "Rows: alpha; columns: gamma. '+' regions: attack pays.\n\n";

  const auto config = rewards::RewardConfig::ethereum_byzantium();
  std::vector<double> gammas;
  for (int g = 0; g <= 10; ++g) gammas.push_back(g / 10.0);

  std::vector<std::string> headers{"alpha \\ gamma"};
  for (double g : gammas) headers.push_back(TextTable::num(g, 1));
  TextTable table(std::move(headers));

  for (int a = 1; a <= 9; ++a) {
    const double alpha = a * 0.05;
    std::vector<std::string> row{TextTable::num(alpha, 2)};
    for (double gamma : gammas) {
      const auto r = analysis::compute_revenue(
          {alpha, gamma}, config,
          analysis::recommended_max_lead({alpha, gamma}));
      const double advantage =
          analysis::pool_absolute_revenue(r, scenario) - alpha;
      std::string cell = TextTable::num(advantage, 3);
      if (advantage > 0) cell = "+" + cell;
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nReading guide: at gamma = 0.5 the sign flips near alpha = "
               "0.054 (scenario 1) / 0.270 (scenario 2); at gamma = 1 any "
               "alpha > 0 profits.\n";
  return 0;
}
