// Pool landscape: the paper's Fig. 6 motivation made executable. Starts from
// the September-2018 Ethereum pool distribution, reports concentration
// metrics, then asks the paper's question for every real pool and for
// hypothetical coalitions: who could already mine selfishly at a profit?
// Finishes with a population simulation (n = 1000 miners) showing per-miner
// fairness when the largest pool defects.

#include <iostream>
#include <numeric>

#include "analysis/threshold.h"
#include "sim/population_sim.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

struct PoolShare {
  const char* name;
  double share;
};

// Fig. 6 (etherscan, 2018-09).
constexpr PoolShare kPools[] = {
    {"Ethermine", 0.2634},     {"SparkPool", 0.2246}, {"F2Pool", 0.1337},
    {"Nanopool", 0.1033},      {"MiningPoolHub", 0.0878},
    {"Others (aggregate)", 0.1872},
};

}  // namespace

int main() {
  using namespace ethsm;
  using support::TextTable;

  std::cout << "== Fig. 6: Ethereum mining-pool landscape (2018-09) ==\n\n";

  const auto config = rewards::RewardConfig::ethereum_byzantium();
  analysis::ThresholdOptions topt;
  topt.tolerance = 1e-4;
  const auto threshold_s1 = analysis::profitability_threshold(
      0.5, config, analysis::Scenario::regular_rate_one, topt);
  const auto threshold_s2 = analysis::profitability_threshold(
      0.5, config, analysis::Scenario::regular_and_uncle_rate_one, topt);

  TextTable table({"Pool", "hash share", "selfish pays? (scn 1)",
                   "selfish pays? (scn 2, EIP100)"});
  double herfindahl = 0.0;
  for (const auto& p : kPools) {
    herfindahl += p.share * p.share;
    table.add_row({p.name, TextTable::pct(p.share),
                   p.share > threshold_s1.value_or(1.0) ? "YES" : "no",
                   p.share > threshold_s2.value_or(1.0) ? "YES" : "no"});
  }
  table.print(std::cout);
  std::cout << "\nHerfindahl-Hirschman index: "
            << TextTable::num(herfindahl, 4)
            << " (monopoly = 1; >0.25 = highly concentrated)\n";
  std::cout << "Thresholds at gamma = 0.5: scenario 1 = "
            << TextTable::num(threshold_s1.value_or(-1), 3)
            << ", scenario 2 = "
            << TextTable::num(threshold_s2.value_or(-1), 3) << "\n\n";

  std::cout << "== Coalition analysis ==\n\n";
  TextTable coalition({"Coalition", "combined share", "advantage scn 1",
                       "advantage scn 2"});
  double combined = 0.0;
  std::string members;
  for (std::size_t k = 0; k < 3; ++k) {
    combined += kPools[k].share;
    members += (k ? "+" : "") + std::string(kPools[k].name);
    if (combined >= 0.5) {
      // Majority coalition: the analysis is moot -- it controls consensus
      // outright (the 51% attack the paper's introduction warns about).
      coalition.add_row({members, TextTable::pct(combined),
                         "51% attack", "51% attack"});
      continue;
    }
    const auto r = analysis::compute_revenue({combined, 0.5}, config, 120);
    coalition.add_row(
        {members, TextTable::pct(combined),
         TextTable::num(analysis::pool_absolute_revenue(
                            r, analysis::Scenario::regular_rate_one) -
                            combined, 4),
         TextTable::num(analysis::pool_absolute_revenue(
                            r, analysis::Scenario::regular_and_uncle_rate_one) -
                            combined, 4)});
  }
  coalition.print(std::cout);
  std::cout << "\n(The paper: 'top two pools have dominated 48.8%'.)\n\n";

  std::cout << "== Population run: Ethermine defects (n = 1000 miners) ==\n\n";
  sim::PopulationConfig pc;
  pc.num_miners = 1000;
  pc.base.alpha = kPools[0].share;
  pc.base.gamma = 0.5;
  pc.base.num_blocks = 100'000;
  const auto result = sim::run_population_simulation(pc);

  const double honest_per_capita =
      result.sim.ledger.of(chain::MinerClass::honest).total() /
      static_cast<double>(pc.num_miners - result.pool_size);
  const double pool_per_capita =
      result.per_miner_reward.empty() ? 0.0 : result.per_miner_reward[0];
  TextTable fairness({"metric", "value"});
  fairness.add_row({"pool members", std::to_string(result.pool_size)});
  fairness.add_row({"pool member payout (per member)",
                    TextTable::num(pool_per_capita, 2)});
  fairness.add_row({"honest miner payout (per capita)",
                    TextTable::num(honest_per_capita, 2)});
  fairness.add_row({"pool / honest per-capita ratio",
                    TextTable::num(pool_per_capita / honest_per_capita, 3)});
  fairness.add_row({"referenced uncles per regular block",
                    TextTable::num(result.sim.uncle_rate(), 3)});
  fairness.print(std::cout);

  // Confidence check: independent runs fanned out over the thread pool.
  sim::PopulationConfig many_pc = pc;
  many_pc.base.num_blocks = 30'000;
  const auto many = sim::run_population_many(many_pc, 4);
  std::cout << "\nMulti-run check (4 x 30k blocks, "
            << support::ThreadPool::global().concurrency()
            << " threads): pool revenue share "
            << TextTable::num(many.sim.pool_share.mean(), 4) << " +- "
            << TextTable::num(many.sim.pool_share.ci_halfwidth(), 4)
            << " (95% CI)\n";
  return 0;
}
