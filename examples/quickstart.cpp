// Quickstart: "would selfish mining pay off for a pool like mine?"
//
//   ./quickstart [alpha] [gamma]
//
// Takes a hash-power share and a network-capability gamma, and answers with
// both the Markov analysis and a quick simulation: absolute revenue under
// honest vs selfish mining, in both difficulty scenarios, plus the
// profitability threshold for this gamma.

#include <cstdlib>
#include <iostream>

#include "analysis/bitcoin_es.h"
#include "analysis/sweep.h"
#include "support/table.h"
#include "support/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ethsm;
  using support::TextTable;

  const double alpha = argc > 1 ? std::atof(argv[1]) : 0.2634;  // Ethermine
  const double gamma = argc > 2 ? std::atof(argv[2]) : 0.5;
  if (alpha < 0.0 || alpha >= 0.5 || gamma < 0.0 || gamma > 1.0) {
    std::cerr << "usage: quickstart [alpha in [0,0.5)] [gamma in [0,1]]\n";
    return 1;
  }

  std::cout << "Pool hash power alpha = " << alpha
            << ", network capability gamma = " << gamma
            << " (Byzantium rewards; sim threads: "
            << support::ThreadPool::global().concurrency()
            << ", override with ETHSM_THREADS)\n\n";

  // Analysis.
  const auto config = rewards::RewardConfig::ethereum_byzantium();
  const auto r = analysis::compute_revenue({alpha, gamma}, config,
                                           analysis::recommended_max_lead(
                                               {alpha, gamma}));

  // Simulation cross-check (3 runs x 100k blocks).
  sim::SimConfig sc;
  sc.alpha = alpha;
  sc.gamma = gamma;
  sc.rewards = config;
  const auto sum = sim::run_many(sc, 3);

  TextTable table({"difficulty rule", "honest mining", "selfish (analysis)",
                   "selfish (simulated)", "verdict"});
  for (const auto scenario : {analysis::Scenario::regular_rate_one,
                              analysis::Scenario::regular_and_uncle_rate_one}) {
    const double us = analysis::pool_absolute_revenue(r, scenario);
    const double sim_us = sum.pool_revenue(scenario).mean();
    table.add_row({to_string(scenario), TextTable::num(alpha, 4),
                   TextTable::num(us, 4), TextTable::num(sim_us, 4),
                   us > alpha ? "SELFISH PAYS" : "stay honest"});
  }
  table.print(std::cout);

  for (const auto scenario : {analysis::Scenario::regular_rate_one,
                              analysis::Scenario::regular_and_uncle_rate_one}) {
    const auto threshold =
        analysis::profitability_threshold(gamma, config, scenario);
    std::cout << "\nProfitability threshold under " << to_string(scenario)
              << ": "
              << (threshold ? TextTable::num(*threshold, 4) : "none in (0,0.5)");
  }
  std::cout << "\n\nFor comparison, Bitcoin's threshold at this gamma: "
            << TextTable::num(analysis::eyal_sirer_threshold(gamma), 4)
            << " (Eyal-Sirer)\n";
  return 0;
}
