// Reward designer: the Sec. VI exercise as a tool. Given a target "uncle
// generosity" (how much a well-behaved network should pay per uncle), search
// uncle-reward schedules and report the selfish-mining threshold each one
// yields -- flat schedules, the Byzantium slope, a reversed slope (paper's
// intuition: pay MORE at longer distances, where honest uncles concentrate
// under attack, and less at distance 1, where the selfish pool collects).
//
//   ./reward_designer [gamma]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "analysis/threshold.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace ethsm;
  using support::TextTable;
  using analysis::Scenario;

  const double gamma = argc > 1 ? std::atof(argv[1]) : 0.5;
  std::cout << "Uncle-schedule design space at gamma = " << gamma << "\n\n";

  struct Candidate {
    std::string description;
    rewards::RewardConfig config;
  };
  auto table_config = [](std::vector<double> v, std::string name) {
    rewards::RewardConfig c;
    c.uncle = std::make_shared<rewards::TableUncleSchedule>(std::move(v),
                                                            std::move(name));
    return c;
  };

  const std::vector<Candidate> candidates = {
      {"Byzantium (8-d)/8", rewards::RewardConfig::ethereum_byzantium()},
      {"Flat 4/8 (Sec. VI proposal)", rewards::RewardConfig::ethereum_flat(0.5)},
      {"Flat 2/8", rewards::RewardConfig::ethereum_flat(0.25)},
      {"Reversed slope d/8..", table_config({1.0 / 8, 2.0 / 8, 3.0 / 8,
                                             4.0 / 8, 5.0 / 8, 6.0 / 8},
                                            "reversed slope")},
      {"Distance-1 only 7/8", table_config({7.0 / 8}, "d1 only")},
      {"No uncle rewards (Bitcoin)", rewards::RewardConfig::bitcoin()},
  };

  analysis::ThresholdOptions opt;
  opt.tolerance = 1e-5;

  TextTable table({"Schedule", "Ku(1)", "Ku(6)", "alpha* scn 1",
                   "alpha* scn 2"});
  for (const auto& c : candidates) {
    const auto t1 = analysis::profitability_threshold(
        gamma, c.config, Scenario::regular_rate_one, opt);
    const auto t2 = analysis::profitability_threshold(
        gamma, c.config, Scenario::regular_and_uncle_rate_one, opt);
    const double ku1 =
        c.config.reference_horizon() >= 1 ? c.config.uncle_reward(1) : 0.0;
    const double ku6 =
        c.config.reference_horizon() >= 6 ? c.config.uncle_reward(6) : 0.0;
    table.add_row({c.description, TextTable::num(ku1, 3),
                   TextTable::num(ku6, 3),
                   t1 ? TextTable::num(*t1, 3) : "never",
                   t2 ? TextTable::num(*t2, 3) : "never"});
  }
  table.print(std::cout);

  std::cout
      << "\nDesign take-aways (paper Sec. VI):\n"
      << " * the selfish pool's uncles always land at distance 1, so cutting\n"
      << "   Ku(1) hits the attacker hardest;\n"
      << " * honest uncles spread toward longer distances as alpha grows\n"
      << "   (Table II), so back-loading rewards keeps honest compensation\n"
      << "   while raising the attack threshold.\n";
  return 0;
}
