// Trace inspector: replays the paper's worked examples (Fig. 4 and Fig. 5)
// through the real Algorithm-1 state machine, printing the block tree, the
// (Ls, Lh) trajectory and the publication decisions after every event --
// the fastest way to understand what the strategy actually does.

#include <iostream>
#include <string>

#include "chain/reward_ledger.h"
#include "miner/honest_policy.h"
#include "miner/selfish_policy.h"
#include "support/table.h"

namespace {

using namespace ethsm;

class Narrator {
 public:
  Narrator()
      : config_(rewards::RewardConfig::ethereum_byzantium()),
        pool_(tree_, miner::SelfishPolicyConfig::from_rewards(config_)),
        honest_(0.5, config_) {}

  chain::BlockId pool_mines(const std::string& label) {
    const auto id = pool_.on_pool_block(++now_);
    names_.resize(tree_.size());
    names_[id] = label;
    narrate("pool mines " + label + " (kept private)");
    return id;
  }

  chain::BlockId honest_mines(const std::string& label, chain::BlockId parent) {
    const auto id = honest_.mine_block(tree_, parent, ++now_, 0);
    names_.resize(tree_.size());
    names_[id] = label;
    pool_.on_honest_block(id, now_);
    narrate("honest miner publishes " + label + " on " + name(parent));
    return id;
  }

  void finish() {
    const auto tip = pool_.finalize(++now_);
    std::cout << "\nFinal main chain: ";
    for (const auto b : tree_.chain_from_genesis(tip)) {
      std::cout << name(b) << ' ';
    }
    const auto ledger = chain::settle_rewards(tree_, tip, config_);
    std::cout << "\nPool rewards:   static "
              << ledger.of(chain::MinerClass::selfish).static_reward
              << ", uncle "
              << ledger.of(chain::MinerClass::selfish).uncle_reward
              << ", nephew "
              << ledger.of(chain::MinerClass::selfish).nephew_reward;
    std::cout << "\nHonest rewards: static "
              << ledger.of(chain::MinerClass::honest).static_reward
              << ", uncle "
              << ledger.of(chain::MinerClass::honest).uncle_reward
              << ", nephew "
              << ledger.of(chain::MinerClass::honest).nephew_reward << "\n";
  }

  [[nodiscard]] chain::BlockId genesis() const { return tree_.genesis(); }
  [[nodiscard]] const miner::SelfishPolicy& pool() const { return pool_; }

 private:
  [[nodiscard]] std::string name(chain::BlockId id) const {
    if (id == tree_.genesis()) return "genesis";
    return names_[id].empty() ? "#" + std::to_string(id) : names_[id];
  }

  void narrate(const std::string& event) {
    std::cout << event << "\n   -> (Ls, Lh) = (" << pool_.private_length()
              << ", " << pool_.public_length() << ")";
    std::cout << ", published pool blocks: ";
    bool any = false;
    for (chain::BlockId b = 1; b < tree_.size(); ++b) {
      if (tree_.block(b).miner == chain::MinerClass::selfish &&
          tree_.is_published(b)) {
        std::cout << name(b) << ' ';
        any = true;
      }
    }
    if (!any) std::cout << "(none)";
    std::cout << "\n";
  }

  chain::BlockTree tree_;
  rewards::RewardConfig config_;
  miner::SelfishPolicy pool_;
  miner::HonestPolicy honest_;
  std::vector<std::string> names_;
  double now_ = 0.0;
};

}  // namespace

int main() {
  std::cout << "== Replaying Fig. 5: withhold 3, bleed 1, override ==\n\n";
  {
    Narrator n;
    n.pool_mines("A1");
    n.pool_mines("B1");
    n.pool_mines("C1");
    const auto a2 = n.honest_mines("A2", n.genesis());
    n.honest_mines("B2", a2);
    n.finish();
  }

  std::cout << "\n== Replaying Fig. 4's race (extended by one pool block so "
               "line 20 fires): partial publication and re-rooting ==\n\n";
  {
    Narrator n;
    n.pool_mines("D1");
    n.pool_mines("E1");
    n.pool_mines("F");
    n.pool_mines("G");
    n.pool_mines("I");  // lead deep enough that the re-root branch triggers
    const auto d2 = n.honest_mines("D2", n.genesis());
    n.honest_mines("E2", d2);
    // Honest lands on the pool's published prefix: Algorithm 1 line 20
    // re-roots the race at E1 with (Ls, Lh) = (3, 1).
    n.honest_mines("H", n.pool().published_pool_tip());
    n.finish();
  }
  return 0;
}
