// Uncle economics: why Ethereum pays uncles at all, and what that design
// trades away (paper Sec. VI in both directions).
//
// Part 1 sweeps propagation delay in an all-honest network: natural fork
// rate, uncle rate, and the reward spread between a large and a small miner
// with and without uncle rewards -- the centralization bias uncles fix.
//
// Part 2 prices the flip side: the same uncle generosity subsidises selfish
// mining (threshold table per schedule).
//
//   ./uncle_economics [--checkpoint-dir DIR | --resume]

#include <iostream>

#include "analysis/threshold.h"
#include "sim/delay_sim.h"
#include "support/checkpoint.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace {

using namespace ethsm;
using support::TextTable;

/// Reward-per-hash ratio of a 30% miner vs a 5% miner under `rewards`,
/// in an honest network with the given delay. 1.0 = perfectly fair.
double size_advantage(double delay, const rewards::RewardConfig& rewards,
                      std::uint64_t seed) {
  sim::DelaySimConfig config;
  config.shares = {0.30};
  for (int i = 0; i < 14; ++i) config.shares.push_back(0.05);
  config.delay = delay;
  config.num_blocks = 120'000;
  config.seed = seed;
  config.rewards = rewards;
  const auto r = sim::run_delay_simulation(config);

  const double big = r.ledger.per_miner_reward[0] / 0.30;
  double small = 0.0;
  for (std::size_t m = 1; m < config.shares.size(); ++m) {
    small += r.ledger.per_miner_reward[m];
  }
  small /= (14 * 0.05);
  return big / small;
}

}  // namespace

int main(int argc, char** argv) {
  // --checkpoint-dir/--resume persist the multi-run sweep below, so repeated
  // explorations reuse finished runs (support/checkpoint.h).
  const auto cli = support::parse_sweep_cli(argc, argv);
  std::cout << "== Part 1: natural forks in an honest network ==\n\n";

  TextTable forks({"delay (block intervals)", "stale/regular", "uncle/regular",
                   "uncles referenced", "30%-vs-5% advantage (Byz)",
                   "same, no uncle rewards"});
  for (double delay : {0.05, 0.10, 0.15, 0.25, 0.40}) {
    sim::DelaySimConfig config;
    config.delay = delay;
    config.num_blocks = 100'000;
    config.seed = 42;
    const auto r = sim::run_delay_simulation(config);
    forks.add_row(
        {TextTable::num(delay, 2), TextTable::num(r.stale_rate(), 4),
         TextTable::num(r.uncle_rate(), 4),
         TextTable::pct(r.stale_rate() > 0
                            ? r.uncle_rate() / r.stale_rate()
                            : 0.0, 1),
         TextTable::num(size_advantage(delay,
                                       rewards::RewardConfig::ethereum_byzantium(),
                                       7), 4),
         TextTable::num(size_advantage(delay, rewards::RewardConfig::bitcoin(),
                                       7), 4)});
  }
  forks.print(std::cout);

  // Error bars for the headline point, runs fanned out over the thread pool.
  sim::DelaySimConfig ci_config;
  ci_config.delay = 0.15;
  ci_config.num_blocks = 30'000;
  ci_config.seed = 42;
  support::SweepOutcome outcome;
  const auto many = sim::run_delay_many(ci_config, 4, cli.checkpoint, &outcome);
  std::cout << "\n";
  if (!support::report_sweep_progress(std::cout, cli.checkpoint, outcome)) {
    return 0;  // sharded partial run: never print a 2-of-4-run mean as 4 runs
  }
  std::cout << "\nUncle rate at delay 0.15 over 4 x 30k-block runs ("
            << support::ThreadPool::global().concurrency()
            << " threads): " << TextTable::num(many.uncle_rate.mean(), 4)
            << " +- " << TextTable::num(many.uncle_rate.ci_halfwidth(), 4)
            << " (95% CI)\n";
  std::cout << "\nReal Ethereum context: delay/interval ~ 0.15 gives an uncle "
               "rate near the ~7-10% observed on-chain. Without uncle\n"
               "rewards the big miner's per-hash advantage grows with delay "
               "(the centralization bias, Sec. VI); with them it is\n"
               "mostly neutralized.\n\n";

  std::cout << "== Part 2: what the subsidy costs in attack resistance ==\n\n";
  TextTable price({"schedule", "alpha* scenario 1 (gamma=0.5)"});
  analysis::ThresholdOptions opt;
  opt.tolerance = 1e-4;
  for (const auto& [label, cfg] :
       {std::pair<std::string, rewards::RewardConfig>{
            "Bitcoin (no uncles)", rewards::RewardConfig::bitcoin()},
        {"Flat 2/8", rewards::RewardConfig::ethereum_flat(0.25)},
        {"Flat 4/8 (Sec. VI)", rewards::RewardConfig::ethereum_flat(0.5)},
        {"Byzantium (8-d)/8", rewards::RewardConfig::ethereum_byzantium()}}) {
    const auto t = analysis::profitability_threshold(
        0.5, cfg, analysis::Scenario::regular_rate_one, opt);
    price.add_row({label, t ? TextTable::num(*t, 3) : "never"});
  }
  price.print(std::cout);
  std::cout << "\nThe generosity that fixes the fairness gap is exactly what "
               "lowers the selfish-mining bar from 0.25 to 0.054.\n";
  return 0;
}
