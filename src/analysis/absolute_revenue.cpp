#include "analysis/absolute_revenue.h"

namespace ethsm::analysis {

double normalizer(const RevenueBreakdown& r, Scenario s) {
  const double regular = r.regular_rate;
  if (s == Scenario::regular_rate_one) return regular;
  return regular + r.referenced_uncle_rate;
}

double pool_absolute_revenue(const RevenueBreakdown& r, Scenario s) {
  const double n = normalizer(r, s);
  return n == 0.0 ? 0.0 : r.pool_total() / n;
}

double honest_absolute_revenue(const RevenueBreakdown& r, Scenario s) {
  const double n = normalizer(r, s);
  return n == 0.0 ? 0.0 : r.honest_total() / n;
}

double total_revenue(const RevenueBreakdown& r, Scenario s) {
  const double n = normalizer(r, s);
  return n == 0.0 ? 0.0 : r.total() / n;
}

}  // namespace ethsm::analysis
