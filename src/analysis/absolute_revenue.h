// Absolute revenue under the paper's two difficulty scenarios (Sec. IV-E2).
//
// Scenario 1 (pre-EIP100): difficulty keeps the *regular* block rate at 1 =>
//   Us = (r_b^s + r_u^s + r_n^s) / (r_b^s + r_b^h)            (Eq. (11))
// Scenario 2 (EIP100/Byzantium): difficulty keeps regular + referenced-uncle
// rate at 1 =>
//   Us = (r_b^s + r_u^s + r_n^s) / (r_b^s + r_b^h + r_uncles)
// A protocol-following miner earns exactly alpha in both (no stale blocks
// without selfish mining under zero propagation delay).

#ifndef ETHSM_ANALYSIS_ABSOLUTE_REVENUE_H
#define ETHSM_ANALYSIS_ABSOLUTE_REVENUE_H

#include "analysis/revenue.h"
#include "sim/sim_result.h"

namespace ethsm::analysis {

using sim::Scenario;

/// Normalization denominator (regular rate, or regular + referenced uncles).
[[nodiscard]] double normalizer(const RevenueBreakdown& r, Scenario s);

/// Pool's long-run absolute revenue Us (Eq. (11) and its Scenario-2 analogue).
[[nodiscard]] double pool_absolute_revenue(const RevenueBreakdown& r,
                                           Scenario s);

/// Honest miners' long-run absolute revenue Uh (Eq. (12) analogue).
[[nodiscard]] double honest_absolute_revenue(const RevenueBreakdown& r,
                                             Scenario s);

/// Total system revenue per normalized block (Fig. 9 "Total" curves).
[[nodiscard]] double total_revenue(const RevenueBreakdown& r, Scenario s);

}  // namespace ethsm::analysis

#endif  // ETHSM_ANALYSIS_ABSOLUTE_REVENUE_H
