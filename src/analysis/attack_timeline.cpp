#include "analysis/attack_timeline.h"

#include "support/check.h"

namespace ethsm::analysis {

std::optional<double> AttackTimeline::breakeven_time(
    double phase1_duration) const {
  ETHSM_EXPECTS(phase1_duration >= 0.0, "phase-1 duration must be >= 0");
  const double deficit = initial_bleed_rate() * phase1_duration;
  const double gain = steady_gain_rate();
  if (deficit <= 0.0) return 0.0;  // never bled: profitable immediately
  if (gain <= 0.0) return std::nullopt;  // below threshold: never recovers
  return deficit / gain;
}

AttackTimeline compute_attack_timeline(const markov::MiningParams& params,
                                       const rewards::RewardConfig& config,
                                       Scenario scenario, int max_lead) {
  const RevenueBreakdown r = compute_revenue(params, config, max_lead);

  AttackTimeline timeline;
  // Phase 1: total block production still runs at rate 1 (stale difficulty),
  // so the long-run reward *rates* of the breakdown apply directly.
  timeline.phase1_reward_rate = r.pool_total();
  timeline.honest_reward_rate = params.alpha;
  // Phase 2: the controller restores its counted rate to 1; revenue per
  // counted block is the scenario's Us, hence per unit time as well.
  timeline.phase2_reward_rate = pool_absolute_revenue(r, scenario);
  return timeline;
}

}  // namespace ethsm::analysis
