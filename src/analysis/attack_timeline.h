// Time-to-profit analysis of selfish mining (extension; cf. Grunspan &
// Pérez-Marco's observation for Bitcoin that selfish mining is a bet on the
// *difficulty adjustment*, not an instant win).
//
// The paper's thresholds compare steady states. In wall-clock terms the
// attack has two phases:
//   Phase 1 (stale difficulty): blocks still arrive at the pre-attack rate,
//     but the attack discards some of them; the pool's reward per second is
//     r_pool = pool_total(revenue) < alpha -- the pool BLEEDS relative to
//     honest mining, even above the threshold.
//   Phase 2 (after retargeting): the difficulty rule restores its target
//     rate; the pool earns Us * target_rate per second, which exceeds alpha
//     iff alpha is above the scenario threshold.
// Breakeven: how long phase 2 must run before its surplus repays phase 1's
// deficit. This quantifies *how patient* an attacker must be under each
// difficulty regime -- a practical security margin the steady-state
// threshold hides. Cross-validated against the retarget simulator.

#ifndef ETHSM_ANALYSIS_ATTACK_TIMELINE_H
#define ETHSM_ANALYSIS_ATTACK_TIMELINE_H

#include <optional>

#include "analysis/absolute_revenue.h"

namespace ethsm::analysis {

struct AttackTimeline {
  /// Pool reward per unit time while difficulty is still pre-attack
  /// (block production rate 1).
  double phase1_reward_rate = 0.0;
  /// What honest mining would earn per unit time (= alpha).
  double honest_reward_rate = 0.0;
  /// Pool reward per unit time after the difficulty rule converged.
  double phase2_reward_rate = 0.0;

  /// Reward deficit accumulated per unit time during phase 1 (>= 0 means
  /// the attack bleeds initially; gamma = 1 makes it 0).
  [[nodiscard]] double initial_bleed_rate() const noexcept {
    return honest_reward_rate - phase1_reward_rate;
  }
  /// Net gain per unit time once retargeted (positive above threshold).
  [[nodiscard]] double steady_gain_rate() const noexcept {
    return phase2_reward_rate - honest_reward_rate;
  }

  /// Time (in phase-2 units) to repay the phase-1 deficit accumulated over
  /// `phase1_duration`. nullopt if the attack never breaks even.
  [[nodiscard]] std::optional<double> breakeven_time(
      double phase1_duration) const;
};

/// Computes the timeline for (alpha, gamma) under a reward schedule and the
/// difficulty scenario that governs phase 2.
[[nodiscard]] AttackTimeline compute_attack_timeline(
    const markov::MiningParams& params, const rewards::RewardConfig& config,
    Scenario scenario, int max_lead = 80);

}  // namespace ethsm::analysis

#endif  // ETHSM_ANALYSIS_ATTACK_TIMELINE_H
