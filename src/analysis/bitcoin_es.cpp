#include "analysis/bitcoin_es.h"

#include "support/check.h"

namespace ethsm::analysis {

double eyal_sirer_revenue(double alpha, double gamma) {
  ETHSM_EXPECTS(alpha >= 0.0 && alpha < 0.5, "alpha must lie in [0, 0.5)");
  ETHSM_EXPECTS(gamma >= 0.0 && gamma <= 1.0, "gamma must lie in [0, 1]");
  const double a = alpha;
  const double g = gamma;
  const double numerator =
      a * (1 - a) * (1 - a) * (4 * a + g * (1 - 2 * a)) - a * a * a;
  const double denominator = 1 - a * (1 + (2 - a) * a);
  return denominator == 0.0 ? 0.0 : numerator / denominator;
}

double eyal_sirer_threshold(double gamma) {
  ETHSM_EXPECTS(gamma >= 0.0 && gamma <= 1.0, "gamma must lie in [0, 1]");
  return (1 - gamma) / (3 - 2 * gamma);
}

}  // namespace ethsm::analysis
