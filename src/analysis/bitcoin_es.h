// Eyal–Sirer closed forms for Bitcoin selfish mining ("Majority is not
// enough", CACM 2018) -- the paper's baseline in Fig. 10 ("Ittay Model").
//
// Bitcoin has no uncle rewards, and its difficulty keeps the regular-block
// rate constant, so absolute and relative revenue coincide (Sec. IV-E2).

#ifndef ETHSM_ANALYSIS_BITCOIN_ES_H
#define ETHSM_ANALYSIS_BITCOIN_ES_H

namespace ethsm::analysis {

/// The pool's relative revenue under Eyal–Sirer selfish mining:
///   R(a, g) = [a(1-a)^2 (4a + g(1-2a)) - a^3] / [1 - a(1 + (2-a)a)].
[[nodiscard]] double eyal_sirer_revenue(double alpha, double gamma);

/// Profitability threshold in Bitcoin: alpha* = (1-g) / (3-2g); 1/3 at g=0,
/// 1/4 at g=1/2 (the famous 25%), 0 at g=1.
[[nodiscard]] double eyal_sirer_threshold(double gamma);

}  // namespace ethsm::analysis

#endif  // ETHSM_ANALYSIS_BITCOIN_ES_H
