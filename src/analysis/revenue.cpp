#include "analysis/revenue.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/stats.h"

namespace ethsm::analysis {

RevenueBreakdown compute_revenue(const markov::StationaryDistribution& pi,
                                 const markov::TransitionModel& model,
                                 const rewards::RewardConfig& config) {
  support::KahanSum pool_static, pool_uncle, pool_nephew;
  support::KahanSum honest_static, honest_uncle, honest_nephew;
  support::KahanSum regular_rate, uncle_rate;

  // CSR row walk: the stationary mass and source state are hoisted per row,
  // and zero-mass rows (deep truncation tail) skip their reward-case
  // evaluations entirely.
  const int n = model.space().size();
  const auto& row = model.row_offsets();
  const auto& rate = model.rates();
  const auto& kind = model.kinds();
  for (int s = 0; s < n; ++s) {
    const double mass = pi[s];
    if (mass == 0.0) continue;
    const markov::State& st = model.space().state_at(s);
    for (std::uint32_t k = row[static_cast<std::size_t>(s)];
         k < row[static_cast<std::size_t>(s) + 1]; ++k) {
      const double weight = mass * rate[k];
      if (weight == 0.0) continue;
      const RewardFlow flow =
          expected_rewards(st, kind[k], model.params(), config);
      pool_static.add(weight * flow.pool_static);
      pool_uncle.add(weight * flow.pool_uncle);
      pool_nephew.add(weight * flow.pool_nephew);
      honest_static.add(weight * flow.honest_static);
      honest_uncle.add(weight * flow.honest_uncle);
      honest_nephew.add(weight * flow.honest_nephew);
      regular_rate.add(weight * flow.regular_probability);
      uncle_rate.add(weight * flow.referenced_uncle_probability);
    }
  }

  RevenueBreakdown out;
  out.pool_static = pool_static.value();
  out.pool_uncle = pool_uncle.value();
  out.pool_nephew = pool_nephew.value();
  out.honest_static = honest_static.value();
  out.honest_uncle = honest_uncle.value();
  out.honest_nephew = honest_nephew.value();
  out.regular_rate = regular_rate.value();
  out.referenced_uncle_rate = uncle_rate.value();
  return out;
}

RevenueBreakdown compute_revenue(const markov::MiningParams& params,
                                 const rewards::RewardConfig& config,
                                 int max_lead, RevenueCache* cache) {
  if (cache == nullptr) {
    const markov::StateSpace space(max_lead);
    const markov::TransitionModel model(space, params);
    const auto pi = markov::solve_stationary(model);
    return compute_revenue(pi, model, config);
  }

  if (!cache->space || cache->max_lead != max_lead) {
    cache->space = std::make_unique<markov::StateSpace>(max_lead);
    cache->max_lead = max_lead;
    cache->last_pi.clear();
  }
  const markov::TransitionModel model(*cache->space, params);
  markov::StationaryOptions options;
  if (!cache->last_pi.empty()) options.initial = &cache->last_pi;
  const auto pi = markov::solve_stationary(model, options);
  cache->last_pi = pi.values();
  return compute_revenue(pi, model, config);
}

int recommended_max_lead(const markov::MiningParams& params) {
  const double a = params.alpha;
  const double g = params.gamma;
  if (a <= 0.0) return 8;
  // Re-roots trim the branch roughly every 1/(beta*gamma) blocks; with
  // gamma >= 0.25 the default depth of 80 is already conservative.
  if (g >= 0.25 || a <= 0.35) return 80;
  // Critical-excursion tail: (2 sqrt(a b))^n per block, alpha of which grow
  // the private branch. Solve (2 sqrt(ab))^(n/a) <= 1e-9 for n.
  const double decay = 2.0 * std::sqrt(a * (1.0 - a));
  const double blocks = std::log(1e-9) / std::log(decay);
  const int depth = static_cast<int>(blocks * a) + 40;
  return std::clamp(depth, 80, 600);
}

double pool_static_rate_closed_form(double alpha, double gamma) {
  const double a = alpha;
  const double b = 1.0 - a;
  const double d = 2 * a * a * a - 4 * a * a + 1;
  return (a * b * b * (4 * a + gamma * (1 - 2 * a)) - a * a * a) / d;
}

double honest_static_rate_closed_form(double alpha, double gamma) {
  const double a = alpha;
  const double b = 1.0 - a;
  const double d = 2 * a * a * a - 4 * a * a + 1;
  return (1 - 2 * a) * b * (a * b * (2 - gamma) + 1) / d;
}

double pool_uncle_rate_closed_form(double alpha, double gamma, double ku1) {
  const double a = alpha;
  const double b = 1.0 - a;
  const double d = 2 * a * a * a - 4 * a * a + 1;
  return (1 - 2 * a) * b * b * a * (1 - gamma) / d * ku1;
}

}  // namespace ethsm::analysis
