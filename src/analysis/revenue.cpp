#include "analysis/revenue.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "support/check.h"

namespace ethsm::analysis {

namespace {

/// Weighted sum over one kind batch: sum of pi[source[e]] * rate[e]. Four
/// independent accumulators break the loop-carried add dependency so the
/// compiler can keep multiple FMAs in flight (and vectorize the gather on
/// targets that support it). Every term is non-negative, so the sum is
/// well-conditioned and plain accumulation stays far inside the 1e-12
/// relative envelope the differential suite enforces against the Kahan
/// reference (tests/kernel/).
double batch_weight_sum(const double* pi, const std::int32_t* source,
                        const double* rate, std::uint32_t begin,
                        std::uint32_t end) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  std::uint32_t e = begin;
  for (; e + 4 <= end; e += 4) {
    a0 += pi[source[e]] * rate[e];
    a1 += pi[source[e + 1]] * rate[e + 1];
    a2 += pi[source[e + 2]] * rate[e + 2];
    a3 += pi[source[e + 3]] * rate[e + 3];
  }
  for (; e < end; ++e) a0 += pi[source[e]] * rate[e];
  return (a0 + a1) + (a2 + a3);
}

void add_scaled_flow(RevenueBreakdown& out, double weight,
                     const RewardFlow& flow) {
  out.pool_static += weight * flow.pool_static;
  out.pool_uncle += weight * flow.pool_uncle;
  out.pool_nephew += weight * flow.pool_nephew;
  out.honest_static += weight * flow.honest_static;
  out.honest_uncle += weight * flow.honest_uncle;
  out.honest_nephew += weight * flow.honest_nephew;
  out.regular_rate += weight * flow.regular_probability;
  out.referenced_uncle_rate += weight * flow.referenced_uncle_probability;
}

/// A state of the given kind's source family, used to evaluate the (state
/// independent) reward flow of the ten constant kinds exactly once per call.
/// The two distance-dependent kinds are handled separately below.
markov::State representative_state(markov::TransitionKind kind) {
  using markov::TransitionKind;
  switch (kind) {
    case TransitionKind::honest_at_consensus:
    case TransitionKind::pool_first_lead: return {0, 0};
    case TransitionKind::pool_extend_lead:
    case TransitionKind::honest_match: return {1, 0};
    case TransitionKind::pool_win_tie:
    case TransitionKind::honest_resolve_tie: return {1, 1};
    case TransitionKind::honest_resolve_lead2_nofork: return {2, 0};
    case TransitionKind::honest_resolve_lead2_prefix:
    case TransitionKind::honest_resolve_lead2_fork: return {3, 1};
    case TransitionKind::honest_first_fork: return {3, 0};
    case TransitionKind::honest_prefix_reroot:
    case TransitionKind::honest_fork_extend: return {4, 1};
  }
  return {0, 0};
}

}  // namespace

RevenueBreakdown compute_revenue(const markov::StationaryDistribution& pi,
                                 const markov::TransitionModel& model,
                                 const rewards::RewardConfig& config) {
  // Kind-batched kernel: the Appendix-B reward flow of a transition depends
  // on (kind, params, config) plus -- for exactly two kinds -- the locked-in
  // uncle distance. So instead of a per-entry switch + flow evaluation (the
  // reference implementation, kept byte-for-byte in tests/kernel/
  // reference_engines.cpp), each kind batch reduces to one branch-free
  // weighted sum; the two distance kinds scatter their weights by distance
  // first and evaluate one flow per distance, of which only those inside the
  // reference horizon (6 for Ethereum) carry any reward.
  using markov::TransitionKind;
  const auto& batched = model.kind_batched();
  const double* pi_values = pi.values().data();
  const std::int32_t* source = batched.source.data();
  const double* rate = batched.rate.data();

  RevenueBreakdown out;
  // Scratch for the per-distance weight scatter, reused across the sweep's
  // thousands of models; index d holds the batch's total weight at distance d.
  thread_local std::vector<double> weight_by_distance;
  const int max_lead = model.space().max_lead();

  for (int k = 0; k < markov::kNumTransitionKinds; ++k) {
    const std::uint32_t begin = batched.offsets[static_cast<std::size_t>(k)];
    const std::uint32_t end = batched.offsets[static_cast<std::size_t>(k) + 1];
    if (begin == end) continue;
    const auto kind = static_cast<TransitionKind>(k);

    if (kind != TransitionKind::honest_first_fork &&
        kind != TransitionKind::honest_prefix_reroot) {
      const double weight = batch_weight_sum(pi_values, source, rate, begin, end);
      if (weight == 0.0) continue;
      const RewardFlow flow = expected_rewards(representative_state(kind),
                                               kind, model.params(), config);
      add_scaled_flow(out, weight, flow);
      continue;
    }

    // Distance-dependent kinds (Cases 7 and 10): scatter weights by the
    // precomputed per-entry distance, then price each distance once. Both
    // kinds' distances lie in [3, max_lead]; beyond the reference horizon
    // the flow is identically zero (the target block stays plain stale), so
    // those rows are skipped -- exactly what the reference computes for them.
    weight_by_distance.assign(static_cast<std::size_t>(max_lead) + 1, 0.0);
    const std::int32_t* distance = batched.distance.data();
    for (std::uint32_t e = begin; e < end; ++e) {
      weight_by_distance[static_cast<std::size_t>(distance[e])] +=
          pi_values[source[e]] * rate[e];
    }
    const int horizon = std::min(max_lead, config.reference_horizon());
    for (int d = 3; d <= horizon; ++d) {
      const double weight = weight_by_distance[static_cast<std::size_t>(d)];
      if (weight == 0.0) continue;
      // Synthesize a source state with the right locked-in distance; the
      // flow evaluation reuses the reference case code verbatim.
      const markov::State from = kind == TransitionKind::honest_first_fork
                                     ? markov::State{d, 0}
                                     : markov::State{d + 1, 1};
      const RewardFlow flow =
          expected_rewards(from, kind, model.params(), config);
      add_scaled_flow(out, weight, flow);
    }
  }
  return out;
}

RevenueBreakdown compute_revenue(const markov::MiningParams& params,
                                 const rewards::RewardConfig& config,
                                 int max_lead, RevenueCache* cache) {
  if (cache == nullptr) {
    const markov::StateSpace space(max_lead);
    const markov::TransitionModel model(space, params);
    const auto pi = markov::solve_stationary(model);
    return compute_revenue(pi, model, config);
  }

  if (!cache->space || cache->max_lead != max_lead) {
    cache->space = std::make_unique<markov::StateSpace>(max_lead);
    cache->max_lead = max_lead;
    cache->last_pi.clear();
  }
  const markov::TransitionModel model(*cache->space, params);
  markov::StationaryOptions options;
  if (!cache->last_pi.empty()) options.initial = &cache->last_pi;
  const auto pi = markov::solve_stationary(model, options);
  cache->last_pi = pi.values();
  return compute_revenue(pi, model, config);
}

int recommended_max_lead(const markov::MiningParams& params) {
  const double a = params.alpha;
  const double g = params.gamma;
  if (a <= 0.0) return 8;
  // Re-roots trim the branch roughly every 1/(beta*gamma) blocks; with
  // gamma >= 0.25 the default depth of 80 is already conservative.
  if (g >= 0.25 || a <= 0.35) return 80;
  // Critical-excursion tail: (2 sqrt(a b))^n per block, alpha of which grow
  // the private branch. Solve (2 sqrt(ab))^(n/a) <= 1e-9 for n.
  const double decay = 2.0 * std::sqrt(a * (1.0 - a));
  const double blocks = std::log(1e-9) / std::log(decay);
  const int depth = static_cast<int>(blocks * a) + 40;
  return std::clamp(depth, 80, 600);
}

double pool_static_rate_closed_form(double alpha, double gamma) {
  const double a = alpha;
  const double b = 1.0 - a;
  const double d = 2 * a * a * a - 4 * a * a + 1;
  return (a * b * b * (4 * a + gamma * (1 - 2 * a)) - a * a * a) / d;
}

double honest_static_rate_closed_form(double alpha, double gamma) {
  const double a = alpha;
  const double b = 1.0 - a;
  const double d = 2 * a * a * a - 4 * a * a + 1;
  return (1 - 2 * a) * b * (a * b * (2 - gamma) + 1) / d;
}

double pool_uncle_rate_closed_form(double alpha, double gamma, double ku1) {
  const double a = alpha;
  const double b = 1.0 - a;
  const double d = 2 * a * a * a - 4 * a * a + 1;
  return (1 - 2 * a) * b * b * a * (1 - gamma) / d * ku1;
}

}  // namespace ethsm::analysis
