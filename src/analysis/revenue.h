// Long-run revenue rates from the Markov model (paper Sec. IV-E1).
//
// With the stationary distribution pi and the per-transition expected rewards
// of Appendix B, every long-run reward rate is a weighted sum
//     r = sum_s pi(s) * sum_{t out of s} rate(t) * E[reward | t].
// This reproduces the paper's closed forms Eq. (3)-(5) exactly (tested) and
// fixes the OCR-corrupted Eq. (8)/(9) terms from the case analysis itself.

#ifndef ETHSM_ANALYSIS_REVENUE_H
#define ETHSM_ANALYSIS_REVENUE_H

#include <memory>
#include <vector>

#include "analysis/reward_cases.h"
#include "markov/stationary.h"
#include "rewards/reward_schedule.h"

namespace ethsm::analysis {

/// Long-run reward rates per unit time (block-production rate = 1, Ks = 1).
struct RevenueBreakdown {
  // Paper notation: r_b^s, r_u^s, r_n^s / r_b^h, r_u^h, r_n^h.
  double pool_static = 0.0;
  double pool_uncle = 0.0;
  double pool_nephew = 0.0;
  double honest_static = 0.0;
  double honest_uncle = 0.0;
  double honest_nephew = 0.0;

  /// Rate of regular (main-chain) blocks == pool_static + honest_static
  /// when Ks = 1.
  double regular_rate = 0.0;
  /// Rate of blocks that become *referenced* uncles (what EIP100's difficulty
  /// rule observes).
  double referenced_uncle_rate = 0.0;

  [[nodiscard]] double pool_total() const noexcept {
    return pool_static + pool_uncle + pool_nephew;
  }
  [[nodiscard]] double honest_total() const noexcept {
    return honest_static + honest_uncle + honest_nephew;
  }
  /// r_total of Eq. (10).
  [[nodiscard]] double total() const noexcept {
    return pool_total() + honest_total();
  }
  /// Relative revenue Rs of the pool (share of all rewards).
  [[nodiscard]] double pool_relative_share() const noexcept {
    const double t = total();
    return t == 0.0 ? 0.0 : pool_total() / t;
  }
};

/// Integrates the Appendix-B reward flows over the stationary distribution.
[[nodiscard]] RevenueBreakdown compute_revenue(
    const markov::StationaryDistribution& pi,
    const markov::TransitionModel& model, const rewards::RewardConfig& config);

/// Reusable solver state for sequences of nearby models (the profitability
/// bisection evaluates compute_revenue at a dozen alphas that differ by
/// <= 1e-6 near convergence). Holds the truncated state space (identical
/// across the sequence) and the last stationary solution, which warm-starts
/// the next solve; power iteration then needs a handful of sweeps instead of
/// starting over from the point mass at (0,0). Not thread-safe: use one cache
/// per thread/search.
struct RevenueCache {
  std::unique_ptr<markov::StateSpace> space;
  int max_lead = -1;
  std::vector<double> last_pi;
};

/// Convenience: build space/model/stationary for (alpha, gamma) and compute.
/// `max_lead` is the truncation (the paper's footnote 3 uses 200). For
/// gamma >= 0.25 the stationary tail is negligible far below 80; see
/// recommended_max_lead for the small-gamma / large-alpha corner.
/// `cache`, when given, carries the state space and stationary warm start
/// from one evaluation to the next.
[[nodiscard]] RevenueBreakdown compute_revenue(
    const markov::MiningParams& params, const rewards::RewardConfig& config,
    int max_lead = 80, RevenueCache* cache = nullptr);

/// Truncation advisor. The private-branch length survives like a critical
/// birth-death excursion whose tail decays as (2 sqrt(alpha*beta))^n; gamma
/// re-roots (Case 7) cut the branch back, so small gamma combined with alpha
/// near 1/2 needs a much deeper truncation than the default. Returns a depth
/// targeting a stationary tail below ~1e-9 (capped at 600 to bound cost; at
/// alpha = 0.45, gamma = 0 even the paper's own depth-200 truncation carries
/// ~1e-3 of mass -- documented in EXPERIMENTS.md).
[[nodiscard]] int recommended_max_lead(const markov::MiningParams& params);

/// Paper Eq. (3): closed-form r_b^s (static reward rate of the pool).
[[nodiscard]] double pool_static_rate_closed_form(double alpha, double gamma);

/// Paper Eq. (4): closed-form r_b^h (static reward rate of honest miners).
[[nodiscard]] double honest_static_rate_closed_form(double alpha, double gamma);

/// Paper Eq. (5): closed-form r_u^s (uncle reward rate of the pool); the
/// pool's uncles are always referenced at distance 1 (Remark 5).
[[nodiscard]] double pool_uncle_rate_closed_form(double alpha, double gamma,
                                                 double ku1);

}  // namespace ethsm::analysis

#endif  // ETHSM_ANALYSIS_REVENUE_H
