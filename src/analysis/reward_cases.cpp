#include "analysis/reward_cases.h"

#include "support/check.h"
#include "support/math_util.h"

namespace ethsm::analysis {

using chain::MinerClass;
using markov::MiningParams;
using markov::State;
using markov::TransitionKind;

double honest_nephew_probability(const MiningParams& params, int lead) {
  ETHSM_EXPECTS(lead >= 2, "nephew race is defined for leads >= 2");
  const double a = params.alpha;
  const double b = params.beta();
  const double g = params.gamma;
  // Appendix B: honest miners must first collapse the race to (0,0) with the
  // pool mining nothing (b^{lead-2}), then win the post-(0,0) race for the
  // first regular block that can reference the uncle (b(1 + ab(1-g))).
  return support::ipow(b, lead - 1) * (1.0 + a * b * (1.0 - g));
}

namespace {

/// Fills in an uncle outcome for a target at the given locked-in distance:
/// uncle reward to `owner`, nephew reward split by `honest_nephew_p`.
void apply_uncle_outcome(RewardFlow& flow, MinerClass owner, int distance,
                         double uncle_probability, double honest_nephew_p,
                         const rewards::RewardConfig& config) {
  flow.uncle_distance = distance;
  flow.target_owner = owner;
  if (distance > config.reference_horizon()) {
    // Too far to ever be referenced: the block is plain stale.
    return;
  }
  flow.referenced_uncle_probability = uncle_probability;
  const double ku = config.uncle_reward(distance);
  const double kn = config.nephew_reward(distance);
  if (owner == MinerClass::selfish) {
    flow.pool_uncle += uncle_probability * ku;
  } else {
    flow.honest_uncle += uncle_probability * ku;
  }
  flow.honest_nephew += uncle_probability * honest_nephew_p * kn;
  flow.pool_nephew += uncle_probability * (1.0 - honest_nephew_p) * kn;
}

}  // namespace

RewardFlow expected_rewards(const State& from, TransitionKind kind,
                            const MiningParams& params,
                            const rewards::RewardConfig& config) {
  const double a = params.alpha;
  const double b = params.beta();
  const double g = params.gamma;
  RewardFlow flow;

  switch (kind) {
    case TransitionKind::honest_at_consensus: {
      // Case 1: adopted by everyone immediately.
      flow.honest_static = 1.0;
      flow.regular_probability = 1.0;
      flow.target_owner = MinerClass::honest;
      break;
    }
    case TransitionKind::pool_first_lead: {
      // Case 2: the pool's first withheld block. It wins unless the honest
      // side matches (b) and then out-mines the published block (b(1-g)).
      const double p_regular = a + a * b + b * b * g;
      const double p_uncle = b * b * (1.0 - g);
      flow.pool_static = p_regular;
      flow.regular_probability = p_regular;
      // If it loses it is referenced by the winning honest block at d = 1;
      // the nephew is that honest block with certainty.
      apply_uncle_outcome(flow, MinerClass::selfish, 1, p_uncle,
                          /*honest_nephew_p=*/1.0, config);
      break;
    }
    case TransitionKind::pool_extend_lead: {
      // Cases 3/6: with a lead of >= 2 the private branch prevails (Lemma 1).
      flow.pool_static = 1.0;
      flow.regular_probability = 1.0;
      flow.target_owner = MinerClass::selfish;
      break;
    }
    case TransitionKind::honest_match: {
      // Case 4: the honest block ties the pool's published block. It stays
      // regular only if the next honest block lands on it (b(1-g)).
      flow.honest_static = b * (1.0 - g);
      flow.regular_probability = b * (1.0 - g);
      // Otherwise it becomes an uncle at d = 1: referenced by the pool's next
      // block (a, pool nephew) or by an honest block on the pool branch
      // (bg, honest nephew).
      const double p_uncle = a + b * g;
      const double honest_nephew_p = p_uncle == 0.0 ? 0.0 : (b * g) / p_uncle;
      apply_uncle_outcome(flow, MinerClass::honest, 1, p_uncle,
                          honest_nephew_p, config);
      break;
    }
    case TransitionKind::pool_win_tie: {
      // Case 5 (pool part): pool block resolves the tie and is regular.
      flow.pool_static = 1.0;
      flow.regular_probability = 1.0;
      flow.target_owner = MinerClass::selfish;
      break;
    }
    case TransitionKind::honest_resolve_tie: {
      // Case 5 (honest part): whichever branch it lands on wins with it.
      flow.honest_static = 1.0;
      flow.regular_probability = 1.0;
      flow.target_owner = MinerClass::honest;
      break;
    }
    case TransitionKind::honest_resolve_lead2_nofork: {
      // Case 9: (2,0) -- the honest block forces the pool to publish a
      // 2-block branch; it becomes an uncle at distance 2 with certainty.
      apply_uncle_outcome(flow, MinerClass::honest, 2, 1.0,
                          honest_nephew_probability(params, 2), config);
      break;
    }
    case TransitionKind::honest_resolve_lead2_prefix: {
      // Case 8: same as Case 9 (the honest block sat on the pool's published
      // prefix, so its parent ends up on the main chain).
      apply_uncle_outcome(flow, MinerClass::honest, 2, 1.0,
                          honest_nephew_probability(params, 2), config);
      break;
    }
    case TransitionKind::honest_resolve_lead2_fork: {
      // Case 12: landed on the dying honest fork -- plain stale, no rewards.
      flow.target_owner = MinerClass::honest;
      break;
    }
    case TransitionKind::honest_first_fork: {
      // Case 10: (i,0) -> (i,1), i >= 3: uncle at distance i.
      ETHSM_ASSERT(from.lh == 0 && from.ls >= 3);
      apply_uncle_outcome(flow, MinerClass::honest, from.ls, 1.0,
                          honest_nephew_probability(params, from.ls), config);
      break;
    }
    case TransitionKind::honest_prefix_reroot: {
      // Case 7: (i,j) -> (i-j,1), i-j >= 3: uncle at distance i-j.
      ETHSM_ASSERT(from.lh >= 1 && from.lead() >= 3);
      const int d = from.lead();
      apply_uncle_outcome(flow, MinerClass::honest, d, 1.0,
                          honest_nephew_probability(params, d), config);
      break;
    }
    case TransitionKind::honest_fork_extend: {
      // Case 11: deepens the dying fork -- plain stale.
      flow.target_owner = MinerClass::honest;
      break;
    }
  }
  return flow;
}

}  // namespace ethsm::analysis
