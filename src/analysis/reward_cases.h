// Probabilistic reward tracking (paper Sec. IV-D and Appendix B).
//
// Every state transition creates exactly one new block (the "target block").
// Its destiny -- regular / referenced uncle / plain stale, and who collects
// the associated nephew reward -- cannot be read off immediately, but its
// *expected* rewards can (Appendix B shows the reference distance is in fact
// deterministic under Algorithm 1). This module encodes Cases 1-12 verbatim:
//
//  Case 1  (0,0)-b->(0,0)   honest block, regular w.p. 1.
//  Case 2  (0,0)-a->(1,0)   pool block: regular w.p. a+ab+b^2 g, otherwise an
//                           uncle at distance 1 whose nephew is honest.
//  Case 3/6 pool extends    regular w.p. 1 (Lemma 1).
//  Case 4  (1,0)-b->(1,1)   honest block: regular w.p. b(1-g); uncle (d = 1)
//                           w.p. a+bg; nephew: pool w.p. a, honest w.p. bg.
//  Case 5  (1,1)->(0,0)     the new block is regular whoever mines it.
//  Case 7  (i,j)-bg->(i-j,1), i-j>=3: honest target becomes an uncle at
//          distance i-j; nephew honest w.p. b^{i-j-1}(1+ab(1-g)), else pool.
//  Case 8  (j+2,j)-bg->(0,0), j>=1: as Case 7 with distance 2.
//  Case 9  (2,0)-b->(0,0)   as Case 8, but the uncle is certain (no fork
//                           exists for the honest block to have landed on).
//  Case 10 (i,0)-b->(i,1), i>=3: uncle at distance i; nephew honest w.p.
//          b^{i-1}(1+ab(1-g)).
//  Case 11 (i,j)-b(1-g)->(i,j+1): plain stale (parent not on main chain).
//  Case 12 (j+2,j)-b(1-g)->(0,0): plain stale.
//
// Rewards use Ks = 1; Ku/Kn come from the RewardConfig, so the same code
// covers Byzantium, the flat Fig. 9 variants, the Sec. VI redesign and
// Bitcoin (Ku = Kn = 0). Distances beyond the reference horizon mean the
// block is never referenced (it stays plain stale and pays nothing).

#ifndef ETHSM_ANALYSIS_REWARD_CASES_H
#define ETHSM_ANALYSIS_REWARD_CASES_H

#include "chain/block.h"
#include "markov/transition_model.h"
#include "rewards/reward_schedule.h"

namespace ethsm::analysis {

/// Expected rewards (units of Ks) carried by one transition's target block,
/// plus classification probabilities used for rate accounting.
struct RewardFlow {
  double pool_static = 0.0;
  double honest_static = 0.0;
  double pool_uncle = 0.0;
  double honest_uncle = 0.0;
  double pool_nephew = 0.0;
  double honest_nephew = 0.0;

  /// P(target ends up on the main chain).
  double regular_probability = 0.0;
  /// P(target becomes a referenced uncle) -- zero when the locked-in distance
  /// exceeds the reference horizon.
  double referenced_uncle_probability = 0.0;
  /// The deterministic reference distance (0 when not applicable).
  int uncle_distance = 0;
  /// Who mined the target (owner of a potential uncle reward).
  chain::MinerClass target_owner = chain::MinerClass::honest;

  [[nodiscard]] double pool_total() const noexcept {
    return pool_static + pool_uncle + pool_nephew;
  }
  [[nodiscard]] double honest_total() const noexcept {
    return honest_static + honest_uncle + honest_nephew;
  }
};

/// Expected rewards of the target block created by a transition of `kind`
/// leaving `from` (Appendix B). `params` supplies alpha/gamma.
[[nodiscard]] RewardFlow expected_rewards(const markov::State& from,
                                          markov::TransitionKind kind,
                                          const markov::MiningParams& params,
                                          const rewards::RewardConfig& config);

/// Probability that the nephew reward of an uncle created with the pool
/// `lead` blocks ahead goes to the honest side: b^{lead-1} (1 + a b (1-g))
/// (Appendix B, Cases 7-10).
[[nodiscard]] double honest_nephew_probability(
    const markov::MiningParams& params, int lead);

}  // namespace ethsm::analysis

#endif  // ETHSM_ANALYSIS_REWARD_CASES_H
