#include "analysis/sweep.h"

#include "analysis/bitcoin_es.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace ethsm::analysis {

std::vector<double> fig8_alpha_grid() {
  std::vector<double> alphas;
  for (int i = 0; i <= 18; ++i) alphas.push_back(0.025 * i);
  return alphas;
}

std::vector<double> fig10_gamma_grid() {
  std::vector<double> gammas;
  for (int i = 0; i <= 20; ++i) gammas.push_back(0.05 * i);
  return gammas;
}

namespace {

/// Per-point master seed; kept identical to the historical serial driver so
/// recorded experiment outputs stay reproducible.
std::uint64_t point_seed(const RevenueCurveOptions& options, double alpha) {
  return support::derive_seed(options.sim_seed,
                              static_cast<std::uint64_t>(alpha * 1e6));
}

}  // namespace

std::vector<RevenuePoint> revenue_curve(const RevenueCurveOptions& options) {
  const std::vector<double> alphas =
      options.alphas.empty() ? fig8_alpha_grid() : options.alphas;

  // Markov analysis: one independent job per alpha.
  std::vector<RevenuePoint> curve =
      support::parallel_map(alphas.size(), [&](std::size_t i) {
        const double alpha = alphas[i];
        RevenuePoint point;
        point.alpha = alpha;

        const markov::MiningParams params{alpha, options.gamma};
        const RevenueBreakdown r =
            compute_revenue(params, options.rewards, options.max_lead);
        point.pool_revenue = pool_absolute_revenue(r, options.scenario);
        point.honest_revenue = honest_absolute_revenue(r, options.scenario);
        point.total_revenue = total_revenue(r, options.scenario);
        point.uncle_rate = r.regular_rate == 0.0
                               ? 0.0
                               : r.referenced_uncle_rate / r.regular_rate;
        return point;
      });

  // Monte-Carlo cross-checks: fan out over (alpha x run) jobs, the finest
  // granularity available, so a 19-alpha x 10-run sweep keeps every core
  // busy. Per-run seeds replicate the serial run_many chain exactly and the
  // per-point aggregation below absorbs in run order, so the curve is
  // bitwise-identical for any thread count.
  if (options.sim_runs > 0) {
    struct SimJob {
      std::size_t point_index = 0;
      int run = 0;
    };
    std::vector<SimJob> jobs;
    jobs.reserve(alphas.size() * static_cast<std::size_t>(options.sim_runs));
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      if (alphas[i] <= 0.0) continue;
      for (int r = 0; r < options.sim_runs; ++r) jobs.push_back({i, r});
    }

    const auto sims = support::parallel_map(jobs.size(), [&](std::size_t j) {
      const SimJob& job = jobs[j];
      sim::SimConfig sim_config;
      sim_config.alpha = alphas[job.point_index];
      sim_config.gamma = options.gamma;
      sim_config.rewards = options.rewards;
      sim_config.num_blocks = options.sim_blocks;
      sim_config.seed = support::derive_seed(
          point_seed(options, alphas[job.point_index]),
          static_cast<std::uint64_t>(job.run));
      return sim::run_simulation(sim_config);
    });

    std::size_t j = 0;
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      if (alphas[i] <= 0.0) continue;
      sim::MultiRunSummary sum;
      for (int r = 0; r < options.sim_runs; ++r) sum.absorb(sims[j++]);
      RevenuePoint& point = curve[i];
      point.pool_revenue_sim = sum.pool_revenue(options.scenario).mean();
      point.honest_revenue_sim = sum.honest_revenue(options.scenario).mean();
      point.pool_revenue_sim_ci =
          sum.pool_revenue(options.scenario).ci_halfwidth();
      point.honest_revenue_sim_ci =
          sum.honest_revenue(options.scenario).ci_halfwidth();
    }
    ETHSM_ENSURES(j == sims.size(), "sim job accounting mismatch");
  }
  return curve;
}

std::vector<ThresholdPoint> threshold_curve(
    const ThresholdCurveOptions& options) {
  const std::vector<double> gammas =
      options.gammas.empty() ? fig10_gamma_grid() : options.gammas;

  // One job per gamma; each runs two bisections (both difficulty scenarios)
  // that share nothing across gammas.
  return support::parallel_map(gammas.size(), [&](std::size_t i) {
    const double gamma = gammas[i];
    ThresholdPoint point;
    point.gamma = gamma;
    point.bitcoin = eyal_sirer_threshold(gamma);
    point.ethereum_scenario1 = profitability_threshold(
        gamma, options.rewards, Scenario::regular_rate_one, options.threshold);
    point.ethereum_scenario2 =
        profitability_threshold(gamma, options.rewards,
                                Scenario::regular_and_uncle_rate_one,
                                options.threshold);
    return point;
  });
}

}  // namespace ethsm::analysis
