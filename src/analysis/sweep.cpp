#include "analysis/sweep.h"

#include "analysis/bitcoin_es.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace ethsm::analysis {

std::vector<double> fig8_alpha_grid() {
  std::vector<double> alphas;
  for (int i = 0; i <= 18; ++i) alphas.push_back(0.025 * i);
  return alphas;
}

std::vector<double> fig10_gamma_grid() {
  std::vector<double> gammas;
  for (int i = 0; i <= 20; ++i) gammas.push_back(0.05 * i);
  return gammas;
}

namespace {

/// Per-point master seed; kept identical to the historical serial driver so
/// recorded experiment outputs stay reproducible.
std::uint64_t point_seed(const RevenueCurveOptions& options, double alpha) {
  return support::derive_seed(options.sim_seed,
                              static_cast<std::uint64_t>(alpha * 1e6));
}

void mix_grid(support::Fingerprint& fp, const std::vector<double>& grid) {
  fp.mix(static_cast<std::uint64_t>(grid.size()));
  for (double x : grid) fp.mix(x);
}

std::uint64_t revenue_markov_fingerprint(const RevenueCurveOptions& options,
                                         const std::vector<double>& alphas) {
  support::Fingerprint fp;
  fp.mix("revenue_curve/markov/v1");
  fp.mix(options.gamma);
  fp.mix(rewards::sweep_fingerprint(options.rewards));
  fp.mix(static_cast<int>(options.scenario));
  fp.mix(options.max_lead);
  mix_grid(fp, alphas);
  return fp.digest();
}

std::uint64_t revenue_sim_fingerprint(const RevenueCurveOptions& options,
                                      const std::vector<double>& alphas) {
  support::Fingerprint fp;
  fp.mix("revenue_curve/sim/v1");
  fp.mix(options.gamma);
  fp.mix(rewards::sweep_fingerprint(options.rewards));
  fp.mix(options.sim_runs);
  fp.mix(options.sim_blocks);
  fp.mix(options.sim_seed);
  mix_grid(fp, alphas);
  return fp.digest();
}

}  // namespace

std::vector<std::uint64_t> revenue_curve_fingerprints(
    const RevenueCurveOptions& options) {
  const std::vector<double> alphas =
      options.alphas.empty() ? fig8_alpha_grid() : options.alphas;
  std::vector<std::uint64_t> fps{revenue_markov_fingerprint(options, alphas)};
  if (options.sim_runs > 0) {
    fps.push_back(revenue_sim_fingerprint(options, alphas));
  }
  return fps;
}

std::uint64_t threshold_curve_fingerprint(
    const ThresholdCurveOptions& options) {
  const std::vector<double> gammas =
      options.gammas.empty() ? fig10_gamma_grid() : options.gammas;
  support::Fingerprint fp;
  fp.mix("threshold_curve/v1");
  fp.mix(rewards::sweep_fingerprint(options.rewards));
  fp.mix(options.threshold.alpha_min);
  fp.mix(options.threshold.alpha_max);
  fp.mix(options.threshold.tolerance);
  fp.mix(options.threshold.max_lead);
  mix_grid(fp, gammas);
  return fp.digest();
}

std::vector<RevenuePoint> revenue_curve(const RevenueCurveOptions& options,
                                        support::SweepOutcome* outcome) {
  const std::vector<double> alphas =
      options.alphas.empty() ? fig8_alpha_grid() : options.alphas;

  // Markov analysis: one independent job per alpha.
  const auto markov = support::run_checkpointed<RevenuePoint>(
      options.checkpoint, revenue_markov_fingerprint(options, alphas),
      alphas.size(),
      [&](std::size_t i) {
        const double alpha = alphas[i];
        RevenuePoint point;
        point.alpha = alpha;

        const markov::MiningParams params{alpha, options.gamma};
        const RevenueBreakdown r =
            compute_revenue(params, options.rewards, options.max_lead);
        point.pool_revenue = pool_absolute_revenue(r, options.scenario);
        point.honest_revenue = honest_absolute_revenue(r, options.scenario);
        point.total_revenue = total_revenue(r, options.scenario);
        point.uncle_rate = r.regular_rate == 0.0
                               ? 0.0
                               : r.referenced_uncle_rate / r.regular_rate;
        return point;
      });

  std::vector<RevenuePoint> curve(alphas.size());
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    if (markov.have[i]) {
      curve[i] = markov.results[i];
    } else {
      curve[i].alpha = alphas[i];  // grid position even without a result
    }
  }

  bool complete = markov.complete();
  support::SweepOutcome combined = markov.outcome;

  // Monte-Carlo cross-checks: fan out over (alpha x run) jobs, the finest
  // granularity available, so a 19-alpha x 10-run sweep keeps every core
  // busy. Per-run seeds replicate the serial run_many chain exactly and the
  // per-point aggregation below absorbs in run order, so the curve is
  // bitwise-identical for any thread count -- and, checkpointed, across
  // resume/shard splits. The sim fingerprint excludes the scenario: per-run
  // results do not depend on it (it only weighs the aggregation), so records
  // are shared across scenario changes.
  if (options.sim_runs > 0) {
    struct SimJob {
      std::size_t point_index = 0;
      int run = 0;
    };
    std::vector<SimJob> jobs;
    jobs.reserve(alphas.size() * static_cast<std::size_t>(options.sim_runs));
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      if (alphas[i] <= 0.0) continue;
      for (int r = 0; r < options.sim_runs; ++r) jobs.push_back({i, r});
    }

    const auto sims = support::run_checkpointed<sim::SimResult>(
        options.checkpoint, revenue_sim_fingerprint(options, alphas),
        jobs.size(), [&](std::size_t j) {
          const SimJob& job = jobs[j];
          sim::SimConfig sim_config;
          sim_config.alpha = alphas[job.point_index];
          sim_config.gamma = options.gamma;
          sim_config.rewards = options.rewards;
          sim_config.num_blocks = options.sim_blocks;
          sim_config.seed = support::derive_seed(
              point_seed(options, alphas[job.point_index]),
              static_cast<std::uint64_t>(job.run));
          return sim::run_simulation(sim_config);
        });

    // A point's simulation columns are filled only when every one of its
    // runs is present (absorbed in run order); with a partial shard they stay
    // nullopt until the merge run sees all shards' records.
    std::size_t j = 0;
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      if (alphas[i] <= 0.0) continue;
      const std::size_t first = j;
      bool all_present = true;
      for (int r = 0; r < options.sim_runs; ++r) {
        if (!sims.have[j++]) all_present = false;
      }
      if (!all_present) continue;
      sim::MultiRunSummary sum;
      for (std::size_t k = first; k < j; ++k) sum.absorb(sims.results[k]);
      RevenuePoint& point = curve[i];
      point.pool_revenue_sim = sum.pool_revenue(options.scenario).mean();
      point.honest_revenue_sim = sum.honest_revenue(options.scenario).mean();
      point.pool_revenue_sim_ci =
          sum.pool_revenue(options.scenario).ci_halfwidth();
      point.honest_revenue_sim_ci =
          sum.honest_revenue(options.scenario).ci_halfwidth();
    }
    ETHSM_ENSURES(j == sims.results.size(), "sim job accounting mismatch");
    complete = complete && sims.complete();
    combined.merge(sims.outcome);
  }

  ETHSM_EXPECTS(outcome != nullptr || complete,
                "incomplete sharded/budgeted sweep: pass a SweepOutcome to "
                "consume partial curves");
  if (outcome != nullptr) outcome->merge(combined);
  return curve;
}

std::vector<ThresholdPoint> threshold_curve(const ThresholdCurveOptions& options,
                                            support::SweepOutcome* outcome) {
  const std::vector<double> gammas =
      options.gammas.empty() ? fig10_gamma_grid() : options.gammas;

  // One job per gamma; each runs two bisections (both difficulty scenarios)
  // that share nothing across gammas.
  const auto sweep = support::run_checkpointed<ThresholdPoint>(
      options.checkpoint, threshold_curve_fingerprint(options), gammas.size(),
      [&](std::size_t i) {
        const double gamma = gammas[i];
        ThresholdPoint point;
        point.gamma = gamma;
        point.bitcoin = eyal_sirer_threshold(gamma);
        point.ethereum_scenario1 =
            profitability_threshold(gamma, options.rewards,
                                    Scenario::regular_rate_one,
                                    options.threshold);
        point.ethereum_scenario2 =
            profitability_threshold(gamma, options.rewards,
                                    Scenario::regular_and_uncle_rate_one,
                                    options.threshold);
        return point;
      });
  ETHSM_EXPECTS(outcome != nullptr || sweep.complete(),
                "incomplete sharded/budgeted sweep: pass a SweepOutcome to "
                "consume partial curves");

  std::vector<ThresholdPoint> curve(gammas.size());
  for (std::size_t i = 0; i < gammas.size(); ++i) {
    if (sweep.have[i]) {
      curve[i] = sweep.results[i];
    } else {
      curve[i].gamma = gammas[i];
    }
  }
  if (outcome != nullptr) outcome->merge(sweep.outcome);
  return curve;
}

}  // namespace ethsm::analysis

namespace ethsm::support {

namespace {

void put_optional(ByteWriter& w, const std::optional<double>& v) {
  w.boolean(v.has_value());
  w.f64(v.value_or(0.0));
}

std::optional<double> take_optional(ByteReader& r) {
  const bool has = r.boolean();
  const double value = r.f64();
  return has ? std::optional<double>(value) : std::nullopt;
}

}  // namespace

void CheckpointCodec<analysis::RevenuePoint>::encode(
    ByteWriter& w, const analysis::RevenuePoint& point) {
  w.f64(point.alpha);
  w.f64(point.pool_revenue);
  w.f64(point.honest_revenue);
  w.f64(point.total_revenue);
  w.f64(point.uncle_rate);
  put_optional(w, point.pool_revenue_sim);
  put_optional(w, point.honest_revenue_sim);
  put_optional(w, point.pool_revenue_sim_ci);
  put_optional(w, point.honest_revenue_sim_ci);
}

analysis::RevenuePoint CheckpointCodec<analysis::RevenuePoint>::decode(
    ByteReader& r) {
  analysis::RevenuePoint point;
  point.alpha = r.f64();
  point.pool_revenue = r.f64();
  point.honest_revenue = r.f64();
  point.total_revenue = r.f64();
  point.uncle_rate = r.f64();
  point.pool_revenue_sim = take_optional(r);
  point.honest_revenue_sim = take_optional(r);
  point.pool_revenue_sim_ci = take_optional(r);
  point.honest_revenue_sim_ci = take_optional(r);
  return point;
}

void CheckpointCodec<analysis::ThresholdPoint>::encode(
    ByteWriter& w, const analysis::ThresholdPoint& point) {
  w.f64(point.gamma);
  w.f64(point.bitcoin);
  put_optional(w, point.ethereum_scenario1);
  put_optional(w, point.ethereum_scenario2);
}

analysis::ThresholdPoint CheckpointCodec<analysis::ThresholdPoint>::decode(
    ByteReader& r) {
  analysis::ThresholdPoint point;
  point.gamma = r.f64();
  point.bitcoin = r.f64();
  point.ethereum_scenario1 = take_optional(r);
  point.ethereum_scenario2 = take_optional(r);
  return point;
}

}  // namespace ethsm::support
