#include "analysis/sweep.h"

#include "analysis/bitcoin_es.h"
#include "support/check.h"
#include "support/rng.h"

namespace ethsm::analysis {

std::vector<double> fig8_alpha_grid() {
  std::vector<double> alphas;
  for (int i = 0; i <= 18; ++i) alphas.push_back(0.025 * i);
  return alphas;
}

std::vector<double> fig10_gamma_grid() {
  std::vector<double> gammas;
  for (int i = 0; i <= 20; ++i) gammas.push_back(0.05 * i);
  return gammas;
}

std::vector<RevenuePoint> revenue_curve(const RevenueCurveOptions& options) {
  const std::vector<double> alphas =
      options.alphas.empty() ? fig8_alpha_grid() : options.alphas;

  std::vector<RevenuePoint> curve;
  curve.reserve(alphas.size());
  for (double alpha : alphas) {
    RevenuePoint point;
    point.alpha = alpha;

    const markov::MiningParams params{alpha, options.gamma};
    const RevenueBreakdown r =
        compute_revenue(params, options.rewards, options.max_lead);
    point.pool_revenue = pool_absolute_revenue(r, options.scenario);
    point.honest_revenue = honest_absolute_revenue(r, options.scenario);
    point.total_revenue = total_revenue(r, options.scenario);
    point.uncle_rate = r.regular_rate == 0.0
                           ? 0.0
                           : r.referenced_uncle_rate / r.regular_rate;

    if (options.sim_runs > 0 && alpha > 0.0) {
      sim::SimConfig sim_config;
      sim_config.alpha = alpha;
      sim_config.gamma = options.gamma;
      sim_config.rewards = options.rewards;
      sim_config.num_blocks = options.sim_blocks;
      sim_config.seed = support::derive_seed(
          options.sim_seed, static_cast<std::uint64_t>(alpha * 1e6));
      const sim::MultiRunSummary sum =
          sim::run_many(sim_config, options.sim_runs);
      point.pool_revenue_sim = sum.pool_revenue(options.scenario).mean();
      point.honest_revenue_sim = sum.honest_revenue(options.scenario).mean();
      point.pool_revenue_sim_ci =
          sum.pool_revenue(options.scenario).ci_halfwidth();
      point.honest_revenue_sim_ci =
          sum.honest_revenue(options.scenario).ci_halfwidth();
    }
    curve.push_back(point);
  }
  return curve;
}

std::vector<ThresholdPoint> threshold_curve(
    const ThresholdCurveOptions& options) {
  const std::vector<double> gammas =
      options.gammas.empty() ? fig10_gamma_grid() : options.gammas;

  std::vector<ThresholdPoint> curve;
  curve.reserve(gammas.size());
  for (double gamma : gammas) {
    ThresholdPoint point;
    point.gamma = gamma;
    point.bitcoin = eyal_sirer_threshold(gamma);
    point.ethereum_scenario1 = profitability_threshold(
        gamma, options.rewards, Scenario::regular_rate_one, options.threshold);
    point.ethereum_scenario2 =
        profitability_threshold(gamma, options.rewards,
                                Scenario::regular_and_uncle_rate_one,
                                options.threshold);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace ethsm::analysis
