// Parameter-sweep drivers shared by the bench regenerators, the examples and
// the integration tests. Each function computes one of the paper's series.

#ifndef ETHSM_ANALYSIS_SWEEP_H
#define ETHSM_ANALYSIS_SWEEP_H

#include <optional>
#include <vector>

#include "analysis/absolute_revenue.h"
#include "analysis/threshold.h"
#include "sim/simulator.h"
#include "support/checkpoint.h"

namespace ethsm::analysis {

/// One point of a revenue-vs-alpha curve (Fig. 8 / Fig. 9 series).
struct RevenuePoint {
  double alpha = 0.0;
  double pool_revenue = 0.0;
  double honest_revenue = 0.0;
  double total_revenue = 0.0;
  double uncle_rate = 0.0;
  /// Simulation cross-check (populated when requested).
  std::optional<double> pool_revenue_sim;
  std::optional<double> honest_revenue_sim;
  std::optional<double> pool_revenue_sim_ci;  ///< 95% CI half-width
  std::optional<double> honest_revenue_sim_ci;
};

struct RevenueCurveOptions {
  double gamma = 0.5;
  rewards::RewardConfig rewards = rewards::RewardConfig::ethereum_flat(0.5);
  Scenario scenario = Scenario::regular_rate_one;
  std::vector<double> alphas;  ///< empty => 0, 0.025, ..., 0.45 (Fig. 8 grid)
  int max_lead = 80;
  /// > 0 adds Monte-Carlo cross-checks with this many runs per point.
  int sim_runs = 0;
  std::uint64_t sim_blocks = 100'000;
  std::uint64_t sim_seed = 0x5e1f15ULL;
  /// Resume/shard persistence (support/checkpoint.h); disabled when the
  /// directory is empty. The Markov and simulation layers checkpoint under
  /// separate fingerprints in the same directory.
  support::SweepCheckpoint checkpoint;
};

/// Revenue curves Us(alpha), Uh(alpha), total(alpha) (Fig. 8 / Fig. 9).
/// With checkpointing enabled an interrupted or sharded regeneration resumes
/// and merges to a bitwise-identical curve; `outcome` reports progress. On an
/// incomplete (sharded / job-budgeted) sweep, points whose Markov job is
/// missing carry only their alpha, and a point's simulation columns are
/// populated only when *all* of its runs are available; passing `outcome` is
/// mandatory in that case (the driver refuses partial output otherwise).
[[nodiscard]] std::vector<RevenuePoint> revenue_curve(
    const RevenueCurveOptions& options,
    support::SweepOutcome* outcome = nullptr);

/// One point of the threshold-vs-gamma comparison (Fig. 10).
struct ThresholdPoint {
  double gamma = 0.0;
  double bitcoin = 0.0;                      ///< Eyal–Sirer closed form
  std::optional<double> ethereum_scenario1;  ///< nullopt: never profitable
  std::optional<double> ethereum_scenario2;
};

struct ThresholdCurveOptions {
  rewards::RewardConfig rewards = rewards::RewardConfig::ethereum_byzantium();
  std::vector<double> gammas;  ///< empty => 0, 0.05, ..., 1.0 (Fig. 10 grid)
  ThresholdOptions threshold;
  /// Resume/shard persistence; disabled when the directory is empty.
  support::SweepCheckpoint checkpoint;
};

/// Threshold curves for Bitcoin and both Ethereum scenarios (Fig. 10).
/// Checkpoint semantics as revenue_curve: resumed/sharded regenerations are
/// bitwise-identical to fresh ones; incomplete sweeps require `outcome`.
[[nodiscard]] std::vector<ThresholdPoint> threshold_curve(
    const ThresholdCurveOptions& options,
    support::SweepOutcome* outcome = nullptr);

/// Default grids used by the paper's figures.
[[nodiscard]] std::vector<double> fig8_alpha_grid();   ///< 0..0.45 step 0.025
[[nodiscard]] std::vector<double> fig10_gamma_grid();  ///< 0..1 step 0.05

/// Checkpoint-store fingerprints a revenue_curve run would use: the Markov
/// sweep's, plus the simulation sweep's when sim_runs > 0. Exposed so the
/// checkpoint GC (`ethsm checkpoint-stats --prune`) can map on-disk sweeps
/// back to the experiments that own them without running anything.
[[nodiscard]] std::vector<std::uint64_t> revenue_curve_fingerprints(
    const RevenueCurveOptions& options);

/// Checkpoint-store fingerprint of a threshold_curve run.
[[nodiscard]] std::uint64_t threshold_curve_fingerprint(
    const ThresholdCurveOptions& options);

}  // namespace ethsm::analysis

namespace ethsm::support {

template <>
struct CheckpointCodec<analysis::RevenuePoint> {
  static void encode(ByteWriter& w, const analysis::RevenuePoint& point);
  static analysis::RevenuePoint decode(ByteReader& r);
};

template <>
struct CheckpointCodec<analysis::ThresholdPoint> {
  static void encode(ByteWriter& w, const analysis::ThresholdPoint& point);
  static analysis::ThresholdPoint decode(ByteReader& r);
};

}  // namespace ethsm::support

#endif  // ETHSM_ANALYSIS_SWEEP_H
