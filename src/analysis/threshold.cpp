#include "analysis/threshold.h"

#include "support/math_util.h"

namespace ethsm::analysis {

double selfish_advantage(double alpha, double gamma,
                         const rewards::RewardConfig& config,
                         Scenario scenario, int max_lead) {
  const markov::MiningParams params{alpha, gamma};
  const RevenueBreakdown r = compute_revenue(params, config, max_lead);
  return pool_absolute_revenue(r, scenario) - alpha;
}

std::optional<double> profitability_threshold(double gamma,
                                              const rewards::RewardConfig& config,
                                              Scenario scenario,
                                              const ThresholdOptions& options) {
  // One cache for the whole search: the bisection re-solves nearly identical
  // chains (adjacent alphas), so each step's stationary solve warm-starts
  // from the previous one and the state space is built once.
  RevenueCache cache;
  auto profitable = [&](double alpha) {
    const markov::MiningParams params{alpha, gamma};
    const RevenueBreakdown r =
        compute_revenue(params, config, options.max_lead, &cache);
    return pool_absolute_revenue(r, scenario) - alpha >= 0.0;
  };
  return support::first_true(profitable, options.alpha_min, options.alpha_max,
                             options.tolerance);
}

}  // namespace ethsm::analysis
