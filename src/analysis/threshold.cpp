#include "analysis/threshold.h"

#include "support/math_util.h"

namespace ethsm::analysis {

double selfish_advantage(double alpha, double gamma,
                         const rewards::RewardConfig& config,
                         Scenario scenario, int max_lead) {
  const markov::MiningParams params{alpha, gamma};
  const RevenueBreakdown r = compute_revenue(params, config, max_lead);
  return pool_absolute_revenue(r, scenario) - alpha;
}

std::optional<double> profitability_threshold(double gamma,
                                              const rewards::RewardConfig& config,
                                              Scenario scenario,
                                              const ThresholdOptions& options) {
  return profitability_threshold_report(gamma, config, scenario, options).alpha;
}

ThresholdReport profitability_threshold_report(
    double gamma, const rewards::RewardConfig& config, Scenario scenario,
    const ThresholdOptions& options) {
  // One cache for the whole search: the bisection re-solves nearly identical
  // chains (adjacent alphas), so each step's stationary solve warm-starts
  // from the previous one and the state space is built once.
  RevenueCache cache;
  auto profitable = [&](double alpha) {
    const markov::MiningParams params{alpha, gamma};
    const RevenueBreakdown r =
        compute_revenue(params, config, options.max_lead, &cache);
    return pool_absolute_revenue(r, scenario) - alpha >= 0.0;
  };
  const support::FirstTrueReport found =
      support::first_true_report(profitable, options.alpha_min,
                                 options.alpha_max, options.tolerance);

  // Bracket verification verdict. When alpha_max sits exactly on the sign
  // change at tight tolerance the search cannot distinguish an interior
  // threshold from one clamped to the bracket endpoint; that case is
  // *reported* (at_alpha_max) instead of failing, so sweeps over gamma grids
  // that brush the scenario-2 knee keep running and callers can widen the
  // bracket where it matters.
  ThresholdReport report;
  report.alpha = found.value;
  switch (found.crossing) {
    case support::CrossingLocation::at_lo:
      report.bracket = ThresholdBracket::always_profitable;
      break;
    case support::CrossingLocation::interior:
      report.bracket = ThresholdBracket::interior_crossing;
      break;
    case support::CrossingLocation::at_hi:
      report.bracket = ThresholdBracket::at_alpha_max;
      break;
    case support::CrossingLocation::none:
      report.bracket = ThresholdBracket::never_profitable;
      break;
  }
  return report;
}

}  // namespace ethsm::analysis
