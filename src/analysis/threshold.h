// Profitability-threshold analysis (paper Sec. IV-E3, Fig. 10, Sec. VI).
//
// alpha* is the smallest hash-power share at which the selfish strategy beats
// honest mining: Us(alpha) >= alpha. Honest mining earns exactly alpha, so we
// search for the first sign change of Us(alpha) - alpha. Us - alpha is
// negative just above 0 (withheld blocks cost more than uncles repay) and
// positive near 0.5, and crosses once in between for every (gamma, schedule)
// studied in the paper; the search verifies the bracket rather than assuming
// it.

#ifndef ETHSM_ANALYSIS_THRESHOLD_H
#define ETHSM_ANALYSIS_THRESHOLD_H

#include <optional>

#include "analysis/absolute_revenue.h"

namespace ethsm::analysis {

struct ThresholdOptions {
  double alpha_min = 1e-4;
  double alpha_max = 0.4999;
  double tolerance = 1e-6;
  int max_lead = 60;  ///< Markov truncation while searching
};

/// Smallest alpha making selfish mining profitable for the given gamma,
/// reward schedule and difficulty scenario. Returns:
///   * ~0 (alpha_min) when selfish mining is *always* profitable (gamma = 1),
///   * std::nullopt when it is never profitable on [alpha_min, alpha_max].
[[nodiscard]] std::optional<double> profitability_threshold(
    double gamma, const rewards::RewardConfig& config, Scenario scenario,
    const ThresholdOptions& options = {});

/// Outcome of the bracket verification performed by the threshold search.
enum class ThresholdBracket {
  always_profitable,  ///< Us - alpha >= 0 already at alpha_min
  interior_crossing,  ///< sign change strictly inside (alpha_min, alpha_max)
  at_alpha_max,       ///< sign change within tolerance of alpha_max: the
                      ///< bracket endpoint itself sits on the crossing (e.g.
                      ///< near the scenario-2 knee at tight tolerance). The
                      ///< search *reports* this -- the returned alpha is the
                      ///< endpoint, and a wider alpha_max would be needed to
                      ///< certify an interior threshold.
  never_profitable,   ///< Us - alpha < 0 on the whole bracket
};

struct ThresholdReport {
  /// As profitability_threshold(); engaged unless never_profitable.
  std::optional<double> alpha;
  ThresholdBracket bracket = ThresholdBracket::never_profitable;
};

/// profitability_threshold with the bracket verdict exposed. The alpha value
/// is bitwise-identical to profitability_threshold()'s for every input; the
/// at_alpha_max case is reported rather than treated as a hard failure.
[[nodiscard]] ThresholdReport profitability_threshold_report(
    double gamma, const rewards::RewardConfig& config, Scenario scenario,
    const ThresholdOptions& options = {});

/// Us(alpha) - alpha, the searched objective (exposed for tests/plots).
[[nodiscard]] double selfish_advantage(double alpha, double gamma,
                                       const rewards::RewardConfig& config,
                                       Scenario scenario, int max_lead = 60);

}  // namespace ethsm::analysis

#endif  // ETHSM_ANALYSIS_THRESHOLD_H
