#include "analysis/uncle_distance.h"

#include "markov/transition_model.h"
#include "rewards/reward_schedule.h"
#include "support/check.h"

namespace ethsm::analysis {

UncleDistanceDistribution honest_uncle_distance_distribution(
    const markov::StationaryDistribution& pi,
    const markov::TransitionModel& model) {
  // Use a Byzantium config purely to obtain uncle probabilities; the
  // distance distribution itself is schedule-independent (distances are a
  // property of the chain dynamics, not of the payout function).
  const auto config = rewards::RewardConfig::ethereum_byzantium();

  UncleDistanceDistribution out;
  double weighted_distance = 0.0;
  for (const markov::Transition& t : model.transitions()) {
    const double weight = pi[t.from] * t.rate;
    if (weight == 0.0) continue;
    const RewardFlow flow = expected_rewards(model.space().state_at(t.from),
                                             t.kind, model.params(), config);
    if (flow.target_owner != chain::MinerClass::honest ||
        flow.uncle_distance == 0) {
      continue;
    }
    // referenced_uncle_probability is zeroed beyond the horizon by
    // reward_cases; recover the raw uncle probability for the tail rate.
    if (flow.uncle_distance <= rewards::kMaxUncleDistance) {
      const double rate = weight * flow.referenced_uncle_probability;
      out.fraction[static_cast<std::size_t>(flow.uncle_distance)] += rate;
      weighted_distance += rate * flow.uncle_distance;
      out.in_horizon_rate += rate;
    } else {
      // Beyond the horizon the block is certain to stay unreferenced: the
      // would-be-uncle rate equals the transition's full weight for the
      // deterministic-uncle cases (7, 8, 9, 10 all have probability 1).
      out.beyond_horizon_rate += weight;
    }
  }

  if (out.in_horizon_rate > 0.0) {
    for (auto& f : out.fraction) f /= out.in_horizon_rate;
    out.expectation = weighted_distance / out.in_horizon_rate;
  }
  return out;
}

UncleDistanceDistribution honest_uncle_distance_distribution(
    const markov::MiningParams& params, int max_lead) {
  const markov::StateSpace space(max_lead);
  const markov::TransitionModel model(space, params);
  const auto pi = markov::solve_stationary(model);
  return honest_uncle_distance_distribution(pi, model);
}

}  // namespace ethsm::analysis
