// Referencing-distance distribution of honest miners' uncle blocks
// (paper Table II and the Sec. VI design discussion).
//
// Each honest uncle's reference distance is locked in at creation
// (Appendix B); accumulating P(uncle at distance d) over the stationary flow
// yields the distribution. The paper reports it conditional on d in [1, 6]
// (distances beyond the horizon are never referenced at all).

#ifndef ETHSM_ANALYSIS_UNCLE_DISTANCE_H
#define ETHSM_ANALYSIS_UNCLE_DISTANCE_H

#include <array>

#include "analysis/reward_cases.h"
#include "markov/stationary.h"

namespace ethsm::analysis {

struct UncleDistanceDistribution {
  /// fraction[d] = P(distance = d | 1 <= distance <= 6); index 0 unused.
  std::array<double, 7> fraction{};
  /// E[distance | 1 <= distance <= 6] (the paper's "Expectation" row).
  double expectation = 0.0;
  /// Rate of honest uncles with distance <= 6 / > 6, per unit time.
  double in_horizon_rate = 0.0;
  double beyond_horizon_rate = 0.0;
};

/// Distance distribution of *honest* uncles under (alpha, gamma). The pool's
/// uncles always sit at distance 1 (Remark 5) and are excluded, as in the
/// paper's table.
[[nodiscard]] UncleDistanceDistribution honest_uncle_distance_distribution(
    const markov::StationaryDistribution& pi,
    const markov::TransitionModel& model);

/// Convenience overload building the chain for (alpha, gamma).
[[nodiscard]] UncleDistanceDistribution honest_uncle_distance_distribution(
    const markov::MiningParams& params, int max_lead = 80);

}  // namespace ethsm::analysis

#endif  // ETHSM_ANALYSIS_UNCLE_DISTANCE_H
