#include "api/cli.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <string_view>
#include <vector>

#include "api/presets.h"
#include "api/render.h"
#include "api/runner.h"
#include "api/spec.h"
#include "api/study.h"
#include "orchestrate/orchestrate.h"
#include "orchestrate/process.h"
#include "orchestrate/transport.h"
#include "serve/server.h"
#include "support/checkpoint.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace ethsm::api {

namespace {

using support::hex64;

constexpr const char* kUsage =
    "usage:\n"
    "  ethsm list [--format table|json]\n"
    "  ethsm print <preset> [--quick] [--set key=value ...]\n"
    "  ethsm run <preset> | --spec FILE\n"
    "            [--quick] [--set key=value ...]\n"
    "            [--format table|csv|json] [--out FILE]\n"
    "            [--checkpoint-dir DIR | --resume] [--shard k/N]\n"
    "            [--max-new-jobs N]\n"
    "            [--trace FILE] [--metrics-out FILE]\n"
    "  ethsm run --all | --study FILE     (writes a results tree + manifest)\n"
    "            [--quick] [--set key=value ...] [--out DIR]\n"
    "            [--checkpoint-dir DIR | --resume] [--shard k/N]\n"
    "            [--cell-shard k/N] [--max-new-jobs N] [--retry N]\n"
    "            [--trace FILE] [--metrics-out FILE]\n"
    "  ethsm expand <study file> | --all [--quick] [--set key=value ...]\n"
    "  ethsm checkpoint-stats <dir> [--prune [--dry-run]]\n"
    "                               [--keep-study FILE ...]\n"
    "                               [--set key=value ...]\n"
    "  ethsm serve [--port N] [--host ADDR] [--checkpoint-dir DIR]\n"
    "              [--workers N] [--cache-entries N]\n"
    "              [--max-inflight N] [--client-jobs N]\n"
    "              [--port-file FILE] [--quiet] [--trace FILE]\n"
    "  ethsm orchestrate <preset> | --spec FILE | --study FILE | --all\n"
    "              [--quick] [--set key=value ...]\n"
    "              [--workers N | --hosts a,b,c] [--units M] [--retry N]\n"
    "              [--checkpoint-dir DIR] [--format table|csv|json]\n"
    "              [--out PATH] [--worker-threads N]\n"
    "              [--remote-binary PATH] [--remote-root DIR]\n"
    "              [--quiet] [--trace FILE]\n";

[[noreturn]] void usage_fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(), kUsage);
  std::exit(2);
}

int cmd_list(int argc, char** argv, int start) {
  std::string format = "table";
  for (int i = start; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--format") {
      if (i + 1 >= argc) usage_fail("--format needs a value");
      format = argv[++i];
    } else {
      usage_fail("unknown list argument '" + std::string(arg) + "'");
    }
  }
  if (format == "json") {
    // The same rendering GET /v1/presets serves: spec text + fingerprint per
    // preset and variant, so scripts can feed `ethsm serve` without parsing
    // the human table.
    std::cout << render_presets_json();
    return 0;
  }
  if (format != "table") {
    usage_fail("unknown list format '" + format + "' (want table or json)");
  }
  support::TextTable table({"preset", "kind", "description"});
  for (const Preset& preset : presets()) {
    table.add_row({preset.name,
                   std::string(to_string(preset.spec(false).kind)),
                   preset.description});
  }
  table.print(std::cout);
  std::cout << "\nRun one with `ethsm run <preset>` (add --quick for smaller "
               "grids), or start from `ethsm print <preset>` to write your "
               "own spec file.\n";
  return 0;
}

std::string read_text_file(const std::string& path, const char* what) {
  std::ifstream in(path);
  if (!in) {
    throw SpecError("cannot read " + std::string(what) + " '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Shared spec resolution of `run` and `print`: preset or --spec file, then
/// --set overrides through the same validated key=value path.
struct SpecRequest {
  std::string preset;              ///< empty when --spec is used
  std::string spec_file;
  std::string study_file;          ///< --study FILE (study-shaped run)
  bool all = false;                ///< --all (built-in paper study)
  bool quick = false;
  std::vector<std::string> overrides;

  [[nodiscard]] bool is_study() const {
    return all || !study_file.empty();
  }

  [[nodiscard]] ExperimentSpec resolve() const {
    std::string text;
    if (!spec_file.empty()) {
      text = read_text_file(spec_file, "spec file");
    } else {
      text = print_spec(preset_spec(preset, quick));
    }
    SpecEntries entries = parse_spec_entries(text);
    for (const std::string& assignment : overrides) {
      apply_override(entries, assignment);
    }
    return spec_from_entries(entries);
  }

  /// Study-shaped expansion: the preset registry behind --all, or the study
  /// file's matrix/variant grammar; --set overrides apply to every cell.
  struct Expansion {
    std::string name;
    std::string title;
    std::vector<StudyEntry> entries;
  };

  [[nodiscard]] Expansion expand() const {
    Expansion expansion;
    if (all) {
      expansion.name = "paper";
      expansion.title = "Full-paper artefact: every registered preset";
      expansion.entries = paper_study_entries(quick);
      if (!overrides.empty()) {
        // Same --set path as single runs: re-resolve each preset's canonical
        // entries with the overrides appended.
        for (StudyEntry& entry : expansion.entries) {
          SpecEntries entries = parse_spec_entries(print_spec(entry.spec));
          for (const std::string& assignment : overrides) {
            apply_override(entries, assignment);
          }
          entry.spec = spec_from_entries(entries);
        }
      }
    } else {
      const StudySpec study =
          parse_study(read_text_file(study_file, "study file"));
      expansion.name = study.name;
      expansion.title = study.title;
      expansion.entries = expand_study(study, quick, overrides);
    }
    return expansion;
  }
};

struct RunArgs {
  SpecRequest request;
  OutputFormat format = OutputFormat::table;
  bool format_set = false;
  std::string out_file;  ///< file for single runs, directory for studies
  support::SweepCheckpoint checkpoint;
  support::ShardSpec cell_shard;  ///< whole-cell round-robin (study runs)
  int retry = 0;  ///< --retry N: extra attempts per failing study cell
  std::string trace_file;   ///< --trace FILE: Chrome trace-event JSON
  std::string metrics_out;  ///< --metrics-out FILE: registry JSON snapshot
};

/// RAII for --trace FILE: starts the process tracer on construction (when a
/// path was given) and flushes the Chrome trace-event JSON on scope exit --
/// including the early-return and exception paths.
class TraceGuard {
 public:
  explicit TraceGuard(const std::string& path) : active_(!path.empty()) {
    if (active_) support::trace::start(path);
  }
  ~TraceGuard() {
    if (active_) support::trace::stop();
  }
  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  bool active_;
};

RunArgs parse_run_args(int argc, char** argv, int first) {
  RunArgs args;
  if (const char* dir = std::getenv("ETHSM_CHECKPOINT_DIR")) {
    args.checkpoint.directory = dir;
  }
  args.checkpoint.shard = support::shard_from_env();

  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) usage_fail(std::string(what) + " needs a value");
      return argv[++i];
    };
    if (arg == "--quick") {
      args.request.quick = true;
    } else if (arg == "--spec") {
      args.request.spec_file = next("--spec");
    } else if (arg == "--study") {
      args.request.study_file = next("--study");
    } else if (arg == "--all") {
      args.request.all = true;
    } else if (arg == "--set") {
      args.request.overrides.emplace_back(next("--set"));
    } else if (arg == "--format") {
      args.format = output_format_from_string(next("--format"));
      args.format_set = true;
    } else if (arg == "--out") {
      args.out_file = next("--out");
    } else if (arg == "--checkpoint-dir") {
      args.checkpoint.directory = next("--checkpoint-dir");
    } else if (arg == "--resume") {
      if (args.checkpoint.directory.empty()) {
        args.checkpoint.directory = "ethsm-checkpoints";
      }
    } else if (arg == "--shard") {
      const auto shard = support::parse_shard(next("--shard"));
      if (!shard) usage_fail("malformed --shard (want k/N with 0 <= k < N)");
      args.checkpoint.shard = *shard;
    } else if (arg == "--cell-shard") {
      const auto shard = support::parse_shard(next("--cell-shard"));
      if (!shard) {
        usage_fail("malformed --cell-shard (want k/N with 0 <= k < N)");
      }
      args.cell_shard = *shard;
    } else if (arg == "--max-new-jobs") {
      const char* text = next("--max-new-jobs");
      char* end = nullptr;
      const unsigned long long value = std::strtoull(text, &end, 10);
      if (*text == '\0' || *end != '\0' || *text == '-') {
        usage_fail("malformed --max-new-jobs (want a non-negative integer)");
      }
      args.checkpoint.max_new_jobs = static_cast<std::size_t>(value);
    } else if (arg == "--retry") {
      const char* text = next("--retry");
      char* end = nullptr;
      const long value = std::strtol(text, &end, 10);
      if (*text == '\0' || *end != '\0' || value < 0 || value > 100) {
        usage_fail("malformed --retry (want an integer in [0, 100])");
      }
      args.retry = static_cast<int>(value);
    } else if (arg == "--trace") {
      args.trace_file = next("--trace");
    } else if (arg == "--metrics-out") {
      args.metrics_out = next("--metrics-out");
    } else if (!arg.empty() && arg.front() == '-') {
      usage_fail("unknown argument " + std::string(arg));
    } else if (args.request.preset.empty() &&
               args.request.spec_file.empty()) {
      args.request.preset = std::string(arg);
    } else {
      usage_fail("unexpected argument " + std::string(arg));
    }
  }
  const int sources = (args.request.preset.empty() ? 0 : 1) +
                      (args.request.spec_file.empty() ? 0 : 1) +
                      (args.request.study_file.empty() ? 0 : 1) +
                      (args.request.all ? 1 : 0);
  if (sources == 0) {
    usage_fail("run/print need a preset name, --spec FILE, --study FILE "
               "or --all");
  }
  if (sources > 1) {
    usage_fail("pick exactly one of <preset>, --spec, --study and --all");
  }
  if (args.request.is_study() && args.format_set) {
    usage_fail("--format does not apply to study runs: the results tree "
               "always carries table.txt + data.csv + data.json per spec");
  }
  if (!args.checkpoint.shard.is_whole_sweep() &&
      args.checkpoint.directory.empty()) {
    usage_fail("--shard requires --checkpoint-dir (shards merge through disk; "
               "without it this shard's work would be discarded)");
  }
  if (!args.cell_shard.is_whole_sweep() && !args.request.is_study()) {
    usage_fail("--cell-shard applies to study runs (--study FILE or --all); "
               "use --shard k/N to stripe a single spec's jobs");
  }
  if (args.retry > 0 && !args.request.is_study()) {
    usage_fail("--retry applies to study runs (--study FILE or --all): a "
               "single run's failure already exits with the error");
  }
  if (!args.cell_shard.is_whole_sweep() && args.checkpoint.directory.empty()) {
    usage_fail("--cell-shard requires --checkpoint-dir (the merge pass "
               "collects every shard's cells through disk; without it this "
               "shard's work would be discarded)");
  }
  return args;
}

bool write_or_print(const std::string& payload, const std::string& out_file) {
  if (out_file.empty()) {
    std::cout << payload;
    return true;
  }
  // `--out results/fig8.json` into a directory that does not exist yet should
  // create the parents, not die on a bare stream-open error.
  const std::filesystem::path parent =
      std::filesystem::path(out_file).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      std::fprintf(stderr, "error: cannot create directory %s for --out: %s\n",
                   parent.string().c_str(), ec.message().c_str());
      return false;
    }
  }
  std::ofstream out(out_file);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s: %s\n", out_file.c_str(),
                 std::strerror(errno));
    return false;
  }
  out << payload;
  return static_cast<bool>(out);
}

/// `ethsm run --all` / `ethsm run --study FILE`: expand, execute with one
/// shared checkpoint + budget, write the results tree. --all puts the preset
/// directories at <out> directly (the one-command full-paper artefact);
/// a named study nests under <out>/<study name>.
int cmd_run_study(const RunArgs& args) {
  const SpecRequest::Expansion expansion = args.request.expand();
  const std::string out_base =
      args.out_file.empty() ? std::string("ethsm-results") : args.out_file;
  const std::string out_root =
      args.request.all
          ? out_base
          : (std::filesystem::path(out_base) / expansion.name).string();

  std::cout << "== study " << expansion.name << ": "
            << expansion.entries.size() << " spec(s) ==\n"
            << "   sweep threads: "
            << support::ThreadPool::global().concurrency()
            << " (override with ETHSM_THREADS)\n";
  if (!args.cell_shard.is_whole_sweep()) {
    std::size_t owned = 0;
    for (std::size_t i = 0; i < expansion.entries.size(); ++i) {
      if (args.cell_shard.owns(i)) ++owned;
    }
    std::cout << "   cell shard " << args.cell_shard.index << "/"
              << args.cell_shard.count << ": running " << owned << " of "
              << expansion.entries.size()
              << " cells (cell i -> shard i % N; merge with a final run "
                 "without --cell-shard)\n";
  }

  RunOptions options;
  options.checkpoint = args.checkpoint;
  StudyFailurePolicy failure;
  failure.retries = args.retry;
  const StudyResult study = run_study(
      expansion.name, expansion.title, expansion.entries, options,
      [&](std::size_t index, std::size_t total, const StudyEntryResult& e) {
        std::cout << "[" << index << "/" << total << "] " << e.name << ": ";
        if (e.skipped) {
          std::cout << "skipped (cell of shard " << e.cell_owner << ")";
        } else if (e.failed) {
          std::cout << "FAILED after " << e.attempts << " attempt"
                    << (e.attempts == 1 ? "" : "s") << ": " << e.error;
        } else if (e.result.complete()) {
          std::cout << "complete";
        } else {
          std::cout << "partial ("
                    << e.result.outcome.loaded + e.result.outcome.computed
                    << " of " << e.result.outcome.jobs_total << " jobs)";
        }
        std::cout << "\n" << std::flush;
      },
      args.cell_shard, failure);

  write_study_results(study, out_root);

  if (study.checkpoint_enabled) {
    std::cout << support::describe(args.checkpoint, study.outcome) << "\n";
  }
  if (!study.complete()) {
    if (!args.cell_shard.is_whole_sweep()) {
      std::cout << "Partial study (cell shard): run the remaining shards, "
                   "then merge with a final run sharing --checkpoint-dir and "
                   "no --cell-shard.\n";
    } else {
      std::cout << "Partial study: some sweeps are missing jobs; re-run with "
                   "the same --checkpoint-dir to finish.\n";
    }
  }
  std::size_t written = 0;
  for (const StudyEntryResult& e : study.entries) {
    if (!e.skipped && !e.failed) ++written;
  }
  std::cout << "Results under " << out_root << " (" << written
            << " spec directories + manifest.json)\n";

  if (study.any_failed()) {
    // Fail-soft summary: the siblings' artefacts are on disk and the
    // manifest records every failure; the nonzero exit makes CI notice.
    support::TextTable failures({"cell", "attempts", "error"});
    for (const StudyEntryResult& e : study.entries) {
      if (!e.failed) continue;
      failures.add_row({e.name, std::to_string(e.attempts), e.error});
    }
    std::cout << "\nFailed cells (status=failed in manifest.json; siblings "
                 "completed"
              << (args.retry > 0
                      ? "):\n"
                      : "; re-run with --retry N for transient errors):\n");
    failures.print(std::cout);
    return 1;
  }
  return 0;
}

int cmd_run_single(const RunArgs& args) {
  const ExperimentSpec spec = args.request.resolve();
  RunOptions options;
  options.checkpoint = args.checkpoint;
  const ExperimentResult result = run(spec, options);

  switch (args.format) {
    case OutputFormat::table: {
      std::ostringstream os;
      render_text(result, os);
      if (!write_or_print(os.str(), args.out_file)) return 1;
      break;
    }
    case OutputFormat::csv: {
      if (!result.complete()) {
        render_text(result, std::cout);  // progress + partial notice
        return 0;
      }
      if (!write_or_print(render_csv(result), args.out_file)) return 1;
      break;
    }
    case OutputFormat::json:
      if (!write_or_print(render_json(result), args.out_file)) return 1;
      break;
  }
  return 0;
}

int cmd_run(const RunArgs& args) {
  const TraceGuard trace(args.trace_file);
  const int rc =
      args.request.is_study() ? cmd_run_study(args) : cmd_run_single(args);
  if (!args.metrics_out.empty()) {
    // Snapshot of the process-wide engine counters (solver, thread pool,
    // checkpoint, net sim) after the run -- the batch-mode analogue of the
    // daemon's GET /metrics. Written even for a failed run: the counters up
    // to the failure are exactly what one wants to look at.
    if (!write_or_print(support::metrics::registry().render_json(),
                        args.metrics_out)) {
      return rc == 0 ? 1 : rc;
    }
  }
  return rc;
}

int cmd_print(int argc, char** argv, int first) {
  const RunArgs args = parse_run_args(argc, argv, first);
  if (args.request.is_study()) {
    usage_fail("print takes a preset or --spec FILE; use `ethsm expand` for "
               "studies");
  }
  std::cout << print_spec(args.request.resolve());
  return 0;
}

/// `ethsm expand <study file> | --all`: print every concrete spec the study
/// expands to, in execution order, for inspection before a long run.
int cmd_expand(int argc, char** argv, int first) {
  RunArgs args;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) usage_fail(std::string(what) + " needs a value");
      return argv[++i];
    };
    if (arg == "--quick") {
      args.request.quick = true;
    } else if (arg == "--all") {
      args.request.all = true;
    } else if (arg == "--set") {
      args.request.overrides.emplace_back(next("--set"));
    } else if (!arg.empty() && arg.front() == '-') {
      usage_fail("unknown argument " + std::string(arg));
    } else if (args.request.study_file.empty()) {
      args.request.study_file = std::string(arg);
    } else {
      usage_fail("unexpected argument " + std::string(arg));
    }
  }
  if (args.request.all && !args.request.study_file.empty()) {
    usage_fail("expand takes a study file or --all, not both");
  }
  if (!args.request.all && args.request.study_file.empty()) {
    usage_fail("expand needs a study file or --all");
  }

  const SpecRequest::Expansion expansion = args.request.expand();
  std::cout << "# study " << expansion.name << ": "
            << expansion.entries.size() << " spec(s)\n";
  for (const StudyEntry& entry : expansion.entries) {
    std::cout << "\n# --- " << entry.name << " (dir: " << entry.dir
              << ") ---\n"
              << print_spec(entry.spec);
  }
  return 0;
}

int cmd_checkpoint_stats(int argc, char** argv, int first) {
  std::string directory;
  bool prune = false;
  bool dry_run = false;
  std::vector<std::string> keep_studies;
  std::vector<std::string> keep_overrides;
  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--prune") {
      prune = true;
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--keep-study") {
      if (i + 1 >= argc) usage_fail("--keep-study needs a study file");
      keep_studies.emplace_back(argv[++i]);
    } else if (arg == "--set") {
      if (i + 1 >= argc) usage_fail("--set needs key=value");
      keep_overrides.emplace_back(argv[++i]);
    } else if (!arg.empty() && arg.front() == '-') {
      usage_fail("unknown argument " + std::string(arg));
    } else if (directory.empty()) {
      directory = std::string(arg);
    } else {
      usage_fail("unexpected argument " + std::string(arg));
    }
  }
  if (directory.empty()) usage_fail("checkpoint-stats needs a directory");
  if (!keep_overrides.empty() && keep_studies.empty()) {
    usage_fail("--set on checkpoint-stats only applies to --keep-study "
               "expansions");
  }
  if (dry_run && !prune) {
    usage_fail("--dry-run modifies --prune (print what would be deleted); "
               "plain checkpoint-stats already never deletes");
  }

  // Who references which fingerprint (registered presets, quick + full).
  // Built before the empty-directory early return so a typo'd --keep-study
  // path or a bad --set is reported even when there is nothing to scan.
  std::map<std::uint64_t, std::set<std::string>> owners;
  for (const auto& ref : referenced_fingerprints()) {
    owners[ref.fingerprint].insert(ref.owner);
  }
  // Custom studies sharing the directory are not in the preset registry, so
  // --prune would eat their records; --keep-study adds a study file's whole
  // expansion (quick and full variants both) to the keep-set. --set changes
  // the sweep fingerprints, so a study that was *run* with --set must be
  // kept with the same --set here -- the unmodified expansion is always
  // included as well.
  for (const std::string& path : keep_studies) {
    const StudySpec study = parse_study(read_text_file(path, "study file"));
    for (const bool quick : {false, true}) {
      for (const StudyEntry& entry : expand_study(study, quick)) {
        for (std::uint64_t fp : sweep_fingerprints(entry.spec)) {
          owners[fp].insert(quick ? study.name + " --quick" : study.name);
        }
      }
      if (keep_overrides.empty()) continue;
      for (const StudyEntry& entry :
           expand_study(study, quick, keep_overrides)) {
        for (std::uint64_t fp : sweep_fingerprints(entry.spec)) {
          owners[fp].insert((quick ? study.name + " --quick" : study.name) +
                            " --set");
        }
      }
    }
  }

  const auto files = support::scan_checkpoint_directory(directory);
  if (files.empty()) {
    std::cout << "no checkpoint files under " << directory << "\n";
    return 0;
  }

  // Aggregate per fingerprint across shard files.
  struct SweepStat {
    std::size_t files = 0;
    std::size_t records = 0;
    std::uint64_t bytes = 0;
  };
  std::map<std::uint64_t, SweepStat> sweeps;
  std::vector<const support::CheckpointFileInfo*> unreadable;
  for (const auto& file : files) {
    if (!file.readable) {
      unreadable.push_back(&file);
      continue;
    }
    SweepStat& stat = sweeps[file.fingerprint];
    ++stat.files;
    stat.records += file.records;
    stat.bytes += file.bytes;
  }

  support::TextTable table(
      {"fingerprint", "referenced by", "files", "records", "bytes"});
  for (const auto& [fingerprint, stat] : sweeps) {
    std::string owner = "(unreferenced)";
    if (const auto it = owners.find(fingerprint); it != owners.end()) {
      owner.clear();
      for (const std::string& name : it->second) {
        if (!owner.empty()) owner += ", ";
        owner += name;
      }
    }
    table.add_row({hex64(fingerprint), owner, std::to_string(stat.files),
                   std::to_string(stat.records), std::to_string(stat.bytes)});
  }
  table.print(std::cout);
  for (const auto* file : unreadable) {
    std::cout << "unreadable (foreign/corrupt header): " << file->path << " ("
              << file->bytes << " bytes)\n";
  }

  if (prune && dry_run) {
    // Same selection as a real prune, zero filesystem writes: lets an
    // operator audit what a shared checkpoint directory would lose before
    // committing (a forgotten --keep-study shows up here, not as data loss).
    std::uint64_t would_free = 0;
    std::size_t would_remove = 0;
    for (const auto& file : files) {
      if (!file.readable) continue;  // never guess about foreign files
      if (owners.count(file.fingerprint) != 0) continue;
      std::cout << "would prune " << hex64(file.fingerprint) << " "
                << file.path << " (" << file.bytes << " bytes)\n";
      ++would_remove;
      would_free += file.bytes;
    }
    std::cout << "dry run: would prune " << would_remove
              << " file(s), freeing " << would_free
              << " bytes; re-run without --dry-run to delete\n";
  } else if (prune) {
    std::uint64_t freed = 0;
    std::size_t removed = 0;
    for (const auto& file : files) {
      if (!file.readable) continue;  // never guess about foreign files
      if (owners.count(file.fingerprint) != 0) continue;
      std::error_code ec;
      if (std::filesystem::remove(file.path, ec) && !ec) {
        ++removed;
        freed += file.bytes;
      } else {
        std::fprintf(stderr, "warning: could not remove %s\n",
                     file.path.c_str());
      }
    }
    std::cout << "pruned " << removed << " file(s), freed " << freed
              << " bytes (kept every fingerprint a registered preset"
              << (keep_studies.empty() ? "" : " or --keep-study expansion")
              << " references)\n";
  } else {
    std::size_t unreferenced = 0;
    for (const auto& [fingerprint, stat] : sweeps) {
      if (owners.count(fingerprint) == 0) ++unreferenced;
    }
    if (unreferenced > 0) {
      std::cout << unreferenced
                << " sweep(s) not referenced by any registered preset; "
                   "re-run with --prune to remove them\n";
    }
  }
  return 0;
}

// ------------------------------------------------------------------ serve --

/// The running server, published for the signal handlers. request_stop only
/// stores an atomic flag, so calling it from SIGINT/SIGTERM is safe.
std::atomic<serve::HttpServer*> g_serve_server{nullptr};

extern "C" void serve_signal_handler(int /*signum*/) {
  if (serve::HttpServer* server = g_serve_server.load()) {
    server->request_stop();
  }
}

int cmd_serve(int argc, char** argv, int start) {
  serve::ServiceConfig service_config;
  service_config.checkpoint_dir = "ethsm-checkpoints";
  serve::ServerConfig server_config;
  std::string port_file;
  std::string trace_file;
  bool quiet = false;

  const auto next = [&](int& i, const char* flag) -> const char* {
    if (i + 1 >= argc) usage_fail(std::string(flag) + " needs a value");
    return argv[++i];
  };
  const auto next_number = [&](int& i, const char* flag) -> long {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(next(i, flag), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || value < 0) {
      usage_fail(std::string(flag) + " wants a non-negative integer");
    }
    return value;
  };

  for (int i = start; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--port") {
      const long port = next_number(i, "--port");
      if (port > 65535) usage_fail("--port out of range");
      server_config.port = static_cast<std::uint16_t>(port);
    } else if (arg == "--host") {
      server_config.host = next(i, "--host");
    } else if (arg == "--checkpoint-dir") {
      service_config.checkpoint_dir = next(i, "--checkpoint-dir");
    } else if (arg == "--workers") {
      const long workers = next_number(i, "--workers");
      if (workers == 0) usage_fail("--workers must be positive");
      server_config.workers = static_cast<std::size_t>(workers);
    } else if (arg == "--cache-entries") {
      service_config.cache_entries =
          static_cast<std::size_t>(next_number(i, "--cache-entries"));
    } else if (arg == "--max-inflight") {
      const long jobs = next_number(i, "--max-inflight");
      if (jobs == 0) usage_fail("--max-inflight must be positive");
      service_config.admission.max_jobs_in_flight =
          static_cast<std::size_t>(jobs);
    } else if (arg == "--client-jobs") {
      const long jobs = next_number(i, "--client-jobs");
      if (jobs == 0) usage_fail("--client-jobs must be positive");
      service_config.admission.per_client_jobs =
          static_cast<std::size_t>(jobs);
    } else if (arg == "--port-file") {
      port_file = next(i, "--port-file");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--trace") {
      trace_file = next(i, "--trace");
    } else {
      usage_fail("unknown serve argument '" + std::string(arg) + "'");
    }
  }

  serve::ExperimentService service(service_config);
  serve::HttpServer server(service, server_config);

  // Writing the bound port *after* listen succeeds lets scripts start with
  // --port 0 and poll the file instead of racing the ephemeral-port choice.
  if (!port_file.empty()) {
    std::ofstream out(port_file, std::ios::trunc);
    out << server.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "error: cannot write port file %s\n",
                   port_file.c_str());
      return 1;
    }
  }
  if (!quiet) {
    std::cout << "ethsm serve: listening on " << server_config.host << ":"
              << server.port() << " (checkpoint dir: "
              << service_config.checkpoint_dir << ", cache: "
              << service_config.cache_entries << " entries, workers: "
              << server_config.workers << ")\n"
              << std::flush;
  }

  g_serve_server.store(&server);
  std::signal(SIGINT, serve_signal_handler);
  std::signal(SIGTERM, serve_signal_handler);
  {
    // Spans from every worker thread land in the trace; the guard flushes
    // the file on clean shutdown (SIGINT/SIGTERM stop serve() normally).
    const TraceGuard trace(trace_file);
    server.serve();
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_serve_server.store(nullptr);

  if (!quiet) std::cout << "ethsm serve: stopped\n";
  return 0;
}

// ------------------------------------------------------------ orchestrate --

/// `ethsm orchestrate`: distribute a preset/spec/study across worker
/// processes (local or ssh), sync every worker's checkpoint records back
/// into one shared store, then run the ordinary in-process merge pass so the
/// final artefact is bitwise-identical to a single-process run. See
/// src/orchestrate/orchestrate.h for the coordinator contract and
/// docs/OPERATIONS.md for deployment recipes.
int cmd_orchestrate(int argc, char** argv, int first) {
  SpecRequest request;
  OutputFormat format = OutputFormat::table;
  bool format_set = false;
  std::string out_file;
  std::string checkpoint_dir = "ethsm-checkpoints";
  std::size_t workers = 2;
  bool workers_set = false;
  std::vector<std::string> hosts;
  std::size_t units = 0;
  int retry = 2;
  std::size_t worker_threads = 0;
  std::string remote_binary = "ethsm";
  std::string remote_root = "/tmp/ethsm-orchestrate";
  std::string trace_file;
  bool quiet = false;

  for (int i = first; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) usage_fail(std::string(what) + " needs a value");
      return argv[++i];
    };
    auto next_count = [&](const char* what, bool allow_zero) -> std::size_t {
      const char* text = next(what);
      char* end = nullptr;
      const unsigned long long value = std::strtoull(text, &end, 10);
      if (*text == '\0' || *end != '\0' || *text == '-' ||
          (!allow_zero && value == 0)) {
        usage_fail(std::string(what) + " wants a positive integer");
      }
      return static_cast<std::size_t>(value);
    };
    if (arg == "--quick") {
      request.quick = true;
    } else if (arg == "--spec") {
      request.spec_file = next("--spec");
    } else if (arg == "--study") {
      request.study_file = next("--study");
    } else if (arg == "--all") {
      request.all = true;
    } else if (arg == "--set") {
      request.overrides.emplace_back(next("--set"));
    } else if (arg == "--format") {
      format = output_format_from_string(next("--format"));
      format_set = true;
    } else if (arg == "--out") {
      out_file = next("--out");
    } else if (arg == "--checkpoint-dir") {
      checkpoint_dir = next("--checkpoint-dir");
    } else if (arg == "--workers") {
      workers = next_count("--workers", false);
      workers_set = true;
    } else if (arg == "--hosts") {
      // Comma-separated host list, one worker slot per host.
      const std::string list = next("--hosts");
      std::size_t start = 0;
      while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string host =
            list.substr(start, comma == std::string::npos ? std::string::npos
                                                          : comma - start);
        if (!host.empty()) hosts.push_back(host);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
      if (hosts.empty()) usage_fail("--hosts wants a comma-separated list");
    } else if (arg == "--units") {
      units = next_count("--units", false);
    } else if (arg == "--retry") {
      const char* text = next("--retry");
      char* end = nullptr;
      const long value = std::strtol(text, &end, 10);
      if (*text == '\0' || *end != '\0' || value < 0 || value > 100) {
        usage_fail("malformed --retry (want an integer in [0, 100])");
      }
      retry = static_cast<int>(value);
    } else if (arg == "--worker-threads") {
      worker_threads = next_count("--worker-threads", false);
    } else if (arg == "--remote-binary") {
      remote_binary = next("--remote-binary");
    } else if (arg == "--remote-root") {
      remote_root = next("--remote-root");
    } else if (arg == "--trace") {
      trace_file = next("--trace");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg.front() == '-') {
      usage_fail("unknown orchestrate argument " + std::string(arg));
    } else if (request.preset.empty() && request.spec_file.empty()) {
      request.preset = std::string(arg);
    } else {
      usage_fail("unexpected argument " + std::string(arg));
    }
  }

  const int sources = (request.preset.empty() ? 0 : 1) +
                      (request.spec_file.empty() ? 0 : 1) +
                      (request.study_file.empty() ? 0 : 1) +
                      (request.all ? 1 : 0);
  if (sources == 0) {
    usage_fail("orchestrate needs a preset name, --spec FILE, --study FILE "
               "or --all");
  }
  if (sources > 1) {
    usage_fail("pick exactly one of <preset>, --spec, --study and --all");
  }
  if (request.is_study() && format_set) {
    usage_fail("--format does not apply to study runs: the results tree "
               "always carries table.txt + data.csv + data.json per spec");
  }
  if (workers_set && !hosts.empty()) {
    usage_fail("pick --workers N (local) or --hosts a,b,c (ssh), not both");
  }

  const std::string work_dir = checkpoint_dir + "/orchestrate";
  orchestrate::LocalTransport local([&] {
    orchestrate::LocalTransportConfig config;
    config.workers = workers;
    config.work_root = work_dir + "/units";
    config.binary = orchestrate::self_executable_path("ethsm");
    // Local workers split the machine instead of each grabbing every core.
    config.threads_per_worker =
        worker_threads > 0
            ? worker_threads
            : std::max<std::size_t>(
                  1, std::thread::hardware_concurrency() / workers);
    return config;
  }());
  orchestrate::SshTransport ssh([&] {
    orchestrate::SshTransportConfig config;
    config.hosts = hosts;
    config.remote_binary = remote_binary;
    config.remote_root = remote_root;
    config.threads_per_worker = worker_threads;
    return config;
  }());
  orchestrate::WorkerTransport& transport =
      hosts.empty() ? static_cast<orchestrate::WorkerTransport&>(local)
                    : static_cast<orchestrate::WorkerTransport&>(ssh);

  orchestrate::OrchestrateConfig config;
  config.transport = &transport;
  config.study = request.is_study();
  // Finer units than slots so a dead worker's queue re-balances across the
  // survivors instead of serializing behind one retry.
  config.units = units > 0 ? units : 2 * transport.slots();
  config.coordinator_dir = checkpoint_dir;
  config.work_dir = work_dir;
  config.retry.attempts = retry + 1;
  config.retry.initial_backoff_ms = 250.0;
  config.kill = orchestrate::kill_plan_from_env();
  if (!quiet) {
    // --quiet empties the sink, which silences the scheduling lines AND the
    // periodic progress heartbeat.
    config.status = [](const std::string& line) {
      std::cout << "[orchestrate] " << line << "\n" << std::flush;
    };
  }

  config.base_args.push_back("run");
  if (!request.preset.empty()) config.base_args.push_back(request.preset);
  if (!request.spec_file.empty()) {
    config.base_args.push_back("--spec");
    config.base_args.push_back(request.spec_file);
  }
  if (!request.study_file.empty()) {
    config.base_args.push_back("--study");
    config.base_args.push_back(request.study_file);
  }
  if (request.all) config.base_args.push_back("--all");
  if (request.quick) config.base_args.push_back("--quick");
  for (const std::string& assignment : request.overrides) {
    config.base_args.push_back("--set");
    config.base_args.push_back(assignment);
  }

  if (!quiet) {
    std::cout << "== orchestrate: " << config.units << " shard unit(s) over "
              << transport.slots() << " "
              << (hosts.empty() ? "local worker(s)" : "ssh host(s)")
              << " (checkpoint dir: " << checkpoint_dir << ") ==\n";
  }

  const TraceGuard trace(trace_file);
  const orchestrate::OrchestrateOutcome outcome = orchestrate::run_orchestrate(
      config);  // import stores die here; the merge pass below may write
  orchestrate::write_orchestrate_manifest(
      outcome, checkpoint_dir + "/orchestrate-manifest.json");

  // Ordinary single-process merge pass over the shared store: loads every
  // imported record, computes any stragglers, renders the artefact exactly
  // as a fresh run would. When units failed permanently the merge is held
  // to loaded records only (max_new_jobs = 0), so partial progress persists
  // without the coordinator silently recomputing a dead shard's work.
  RunArgs merge;
  merge.request = request;
  merge.format = format;
  merge.format_set = format_set;
  merge.out_file = out_file;
  merge.checkpoint.directory = checkpoint_dir;
  if (!outcome.ok()) merge.checkpoint.max_new_jobs = 0;
  const int merge_rc = cmd_run(merge);

  if (!outcome.ok()) {
    support::TextTable failures({"unit", "shard", "worker", "attempts",
                                 "error"});
    for (const orchestrate::UnitOutcome& unit : outcome.units) {
      if (unit.ok) continue;
      failures.add_row({std::to_string(unit.unit), unit.shard, unit.worker,
                        std::to_string(unit.attempts), unit.error});
    }
    std::cout << "\nFailed units (status=failed in orchestrate-manifest.json; "
                 "their checkpoint records are retained -- re-run to retry "
                 "just the missing shards):\n";
    failures.print(std::cout);
    return 1;
  }
  return merge_rc;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) usage_fail("missing subcommand");
  const std::string_view command = argv[1];
  if (command == "list") return cmd_list(argc, argv, 2);
  if (command == "run") return cmd_run(parse_run_args(argc, argv, 2));
  if (command == "print") return cmd_print(argc, argv, 2);
  if (command == "expand") return cmd_expand(argc, argv, 2);
  if (command == "checkpoint-stats") {
    return cmd_checkpoint_stats(argc, argv, 2);
  }
  if (command == "serve") return cmd_serve(argc, argv, 2);
  if (command == "orchestrate") return cmd_orchestrate(argc, argv, 2);
  if (command == "--help" || command == "-h" || command == "help") {
    std::cout << kUsage;
    return 0;
  }
  usage_fail("unknown subcommand '" + std::string(command) + "'");
}

}  // namespace

int cli_main(int argc, char** argv) {
  try {
    return dispatch(argc, argv);
  } catch (const SpecError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

int legacy_bench_main(const char* preset_name, int argc, char** argv) {
  try {
    const auto cli = support::parse_sweep_cli(argc, argv);
    const Preset* preset = find_preset(preset_name);
    if (preset == nullptr) {
      std::fprintf(stderr, "error: unknown preset %s\n", preset_name);
      return 1;
    }
    const ExperimentSpec spec = preset->spec(cli.quick);

    std::cout << "== " << spec.title << " ==\n"
              << "   sweep threads: "
              << support::ThreadPool::global().concurrency()
              << " (override with ETHSM_THREADS)\n";

    RunOptions options;
    options.checkpoint = cli.checkpoint;
    ExperimentResult result = run(spec, options);
    result.spec.title.clear();  // the header above already printed it
    render_text(result, std::cout);
    if (!result.complete()) return 0;

    const std::string csv = render_csv(result);
    if (!csv.empty() && !preset->csv_filename.empty()) {
      std::ofstream out(preset->csv_filename);
      if (out && (out << csv)) {
        std::cout << "Series written to " << preset->csv_filename << "\n";
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace ethsm::api
