// The `ethsm` command-line interface and the thin legacy bench wrappers.
//
//   ethsm list
//   ethsm print <preset> [--quick] [--set key=value ...]
//   ethsm run <preset> | --spec FILE
//             [--quick] [--set key=value ...]
//             [--format table|csv|json] [--out FILE]
//             [--checkpoint-dir DIR | --resume] [--shard k/N]
//             [--max-new-jobs N]
//   ethsm run --all | --study FILE        (study runs: results tree + manifest;
//             [--quick] [--set ...]        --all regenerates every preset
//             [--out DIR] [checkpoint/shard/budget flags as above]
//   ethsm expand <study file> | --all [--quick] [--set key=value ...]
//   ethsm checkpoint-stats <dir> [--prune] [--keep-study FILE ...]
//                                [--set key=value ...]
//                                         (--keep-study adds a custom study's
//                                          expansion to the GC keep-set; pass
//                                          the run's --set overrides too, as
//                                          they change sweep fingerprints)
//
// Environment fallbacks as the historical bench CLI: ETHSM_CHECKPOINT_DIR,
// ETHSM_SHARD (flags win). Exit codes: 0 success, 1 runtime failure, 2 usage.

#ifndef ETHSM_API_CLI_H
#define ETHSM_API_CLI_H

namespace ethsm::api {

/// Entry point of the `ethsm` binary.
[[nodiscard]] int cli_main(int argc, char** argv);

/// Entry point of a legacy bench regenerator: parses the historical sweep CLI
/// (--quick/--checkpoint-dir/--resume/--shard), runs the named preset through
/// run(spec), renders the text tables to stdout and writes the preset's CSV
/// side-file -- i.e. `bench_fig8_revenue [flags]` behaves like
/// `ethsm run fig8 [flags]` plus the historical CSV artefact.
[[nodiscard]] int legacy_bench_main(const char* preset_name, int argc,
                                    char** argv);

}  // namespace ethsm::api

#endif  // ETHSM_API_CLI_H
