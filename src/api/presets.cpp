#include "api/presets.h"

#include <sstream>

#include "api/result.h"
#include "api/runner.h"
#include "support/json.h"

namespace ethsm::api {

namespace {

// Every preset reproduces its legacy bench regenerator's options exactly --
// the preset-vs-driver equivalence tests assert the resulting series
// bitwise-match calling the drivers the way the old bench mains did.

ExperimentSpec fig8_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::revenue;
  spec.title = "Fig. 8: revenue vs alpha (gamma = 0.5, Ku = 4/8 Ks)";
  spec.gamma = 0.5;
  spec.scenario = 1;
  spec.series = {{"Ku=4/8", "flat:0.5", "selfish"}};
  spec.sim_runs = quick ? 3 : 10;          // paper: average of 10 runs
  spec.sim_blocks = quick ? 20'000 : 100'000;  // paper: 100,000 per run
  return spec;
}

ExperimentSpec fig9_spec(bool /*quick*/) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::revenue;
  spec.title = "Fig. 9: revenue under different uncle rewards (gamma = 0.5)";
  spec.gamma = 0.5;
  spec.scenario = 1;
  spec.max_lead = 120;
  // The paper's flat variants pay at any distance -> horizon 100 (leads
  // beyond 100 carry stationary mass < 1e-27). The cap6 series is the
  // ablation with Ethereum's structural distance cap.
  spec.series = {{"Ku=2/8", "flat:0.25:100", "selfish"},
                 {"Ku=4/8", "flat:0.5:100", "selfish"},
                 {"Ku=7/8", "flat:0.875:100", "selfish"},
                 {"Ku(.)", "byzantium", "selfish"},
                 {"Ku=7/8 cap6", "flat:0.875", "selfish"}};
  return spec;
}

ExperimentSpec fig10_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::threshold;
  spec.title = "Fig. 10: profitability threshold vs gamma (Ku(.))";
  if (quick) {
    spec.gammas = {0.0, 0.25, 0.5, 0.75, 1.0};
    spec.tolerance = 1e-4;
  }
  return spec;
}

ExperimentSpec table1_spec(bool /*quick*/) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::reward_table;
  spec.title = "Table I: mining rewards in Ethereum and Bitcoin";
  return spec;
}

ExperimentSpec table2_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::uncle_distance;
  spec.title = "Table II: honest uncles' referencing distances (gamma = 0.5)";
  spec.gamma = 0.5;
  spec.max_lead = 120;
  spec.sim_runs = quick ? 3 : 10;
  spec.sim_blocks = quick ? 50'000 : 100'000;
  spec.sim_seed = 0x7ab1e2ULL;
  return spec;
}

ExperimentSpec sec6_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::reward_design;
  spec.title = "Sec. VI: uncle-reward redesign vs selfish mining (gamma = 0.5)";
  spec.gamma = 0.5;
  spec.tolerance = quick ? 1e-3 : 1e-5;
  if (quick) spec.ku_values = {0.25, 0.5, 0.75};
  return spec;
}

ExperimentSpec ext_stubborn_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::stubborn_sim;
  spec.title =
      "Extension: stubborn mining in Ethereum (gamma = 0.5, Byzantium, "
      "scenario 1)";
  spec.gamma = 0.5;
  spec.scenario = 1;
  spec.sim_runs = quick ? 3 : 6;
  spec.sim_blocks = quick ? 30'000 : 100'000;
  spec.sim_seed = 0x57abULL;
  if (quick) spec.alphas = {0.25, 0.35, 0.45};
  return spec;
}

ExperimentSpec ext_timeline_spec(bool /*quick*/) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::timeline;
  spec.title =
      "Extension: time-to-profit of selfish mining (gamma = 0.5, Byzantium, "
      "phase 1 = 2016 blocks)";
  spec.gamma = 0.5;
  return spec;
}

ExperimentSpec ext_difficulty_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::retarget;
  spec.title =
      "Extension: selfish mining under live difficulty retargeting "
      "(alpha = 0.3, gamma = 0.5)";
  spec.alpha = 0.30;
  spec.gamma = 0.5;
  spec.sim_seed = 0xd1ffULL;
  spec.epoch_blocks = quick ? 200 : 500;
  spec.epochs = quick ? 30 : 60;
  return spec;
}

ExperimentSpec net_gamma_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::net;
  spec.title =
      "Network: endogenous gamma on a zero-latency complete graph vs the "
      "fixed-gamma Markov prediction";
  // gamma here is only the *fixed* Markov comparison column; the network
  // measures its own. On the default 0 ms complete graph the attacker rushes
  // every race, so the measured curve sits at (N-1)/N ~ 1 while the
  // paper-style fixed gamma = 0.5 underestimates the attack.
  spec.gamma = 0.5;
  spec.scenario = 1;
  spec.net_nodes = 16;
  spec.sim_runs = quick ? 2 : 4;
  spec.sim_blocks = quick ? 8'000 : 30'000;
  spec.sim_seed = 0x9e7ca57ULL;
  if (quick) spec.alphas = {0.15, 0.30, 0.45};
  return spec;
}

ExperimentSpec net_faults_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::net;
  spec.title =
      "Network faults: endogenous gamma, stale rate and attacker revenue "
      "under message loss + node churn (clean-network baseline columns)";
  spec.gamma = 0.5;
  spec.scenario = 1;
  spec.net_nodes = 12;
  // Positive latency so drops/churn have real races to perturb (0 ms would
  // collapse to the rushing-attacker limit regardless of faults).
  spec.net_latency = "fixed:140";
  spec.net_fault_drop = 0.05;
  // Mean uptime 5 block intervals, mean downtime 1: nodes flap hard enough
  // that re-sync-after-restart is exercised constantly.
  spec.net_fault_churn = "70000:14000";
  spec.sim_runs = quick ? 2 : 4;
  spec.sim_blocks = quick ? 6'000 : 30'000;
  spec.sim_seed = 0x9e7ca57ULL;
  if (quick) spec.alphas = {0.15, 0.30, 0.45};
  return spec;
}

ExperimentSpec delay_network_spec(bool quick) {
  ExperimentSpec spec;
  spec.kind = ExperimentKind::delay;
  spec.title =
      "Delay network: natural forks and uncles in an all-honest network";
  spec.sim_runs = quick ? 2 : 4;
  spec.sim_blocks = quick ? 10'000 : 30'000;
  spec.sim_seed = 42;
  return spec;
}

}  // namespace

const std::vector<Preset>& presets() {
  static const std::vector<Preset> kPresets = {
      {"fig8", "Revenue vs alpha from Markov analysis + simulation (Fig. 8)",
       &fig8_spec, "fig8_revenue.csv"},
      {"fig9", "Revenue under different uncle-reward schedules (Fig. 9)",
       &fig9_spec, "fig9_uncle_reward.csv"},
      {"fig10", "Profitability threshold vs gamma, BTC vs ETH (Fig. 10)",
       &fig10_spec, "fig10_threshold.csv"},
      {"table1", "Mining-reward inventory, Ethereum vs Bitcoin (Table I)",
       &table1_spec, "table1_rewards.csv"},
      {"table2", "Uncle referencing-distance distribution (Table II)",
       &table2_spec, "table2_uncle_distance.csv"},
      {"sec6_reward_design",
       "Uncle-reward redesign vs selfish-mining resistance (Sec. VI)",
       &sec6_spec, "sec6_reward_design.csv"},
      {"ext_stubborn", "Stubborn-mining variants under uncle rewards",
       &ext_stubborn_spec, "ext_stubborn.csv"},
      {"ext_timeline", "Wall-clock time-to-profit of the attack",
       &ext_timeline_spec, "ext_timeline.csv"},
      {"ext_difficulty", "Attack under live difficulty retargeting",
       &ext_difficulty_spec, "ext_difficulty.csv"},
      {"delay_network", "Natural fork/uncle rates in an honest delay network",
       &delay_network_spec, "delay_network.csv"},
      {"net_gamma", "Endogenous gamma measured on a P2P topology (src/net)",
       &net_gamma_spec, "net_gamma.csv"},
      {"net_faults", "Endogenous gamma under message loss and node churn",
       &net_faults_spec, "net_faults.csv"},
  };
  return kPresets;
}

const Preset* find_preset(std::string_view name) {
  for (const Preset& preset : presets()) {
    if (preset.name == name) return &preset;
  }
  return nullptr;
}

ExperimentSpec preset_spec(std::string_view name, bool quick) {
  const Preset* preset = find_preset(name);
  if (preset == nullptr) {
    std::string known;
    for (const Preset& p : presets()) {
      if (!known.empty()) known += ", ";
      known += p.name;
    }
    throw SpecError("unknown preset '" + std::string(name) +
                    "' (known: " + known + ")");
  }
  return preset->spec(quick);
}

std::string render_presets_json() {
  using support::hex64;
  using support::json_escape;
  std::ostringstream os;
  os << "{\n  \"presets\": [";
  bool first = true;
  for (const Preset& preset : presets()) {
    const ExperimentSpec full = preset.spec(false);
    const ExperimentSpec quick = preset.spec(true);
    os << (first ? "\n" : ",\n");
    first = false;
    os << "    {\"name\": \"" << json_escape(preset.name) << "\",\n"
       << "     \"kind\": \"" << to_string(full.kind) << "\",\n"
       << "     \"description\": \"" << json_escape(preset.description)
       << "\",\n"
       << "     \"spec\": \"" << json_escape(print_spec(full)) << "\",\n"
       << "     \"spec_fingerprint\": \"" << hex64(spec_fingerprint(full))
       << "\",\n"
       << "     \"quick_spec\": \"" << json_escape(print_spec(quick))
       << "\",\n"
       << "     \"quick_spec_fingerprint\": \""
       << hex64(spec_fingerprint(quick)) << "\"}";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::vector<ReferencedFingerprint> referenced_fingerprints() {
  std::vector<ReferencedFingerprint> out;
  for (const Preset& preset : presets()) {
    for (const bool quick : {false, true}) {
      for (std::uint64_t fp : sweep_fingerprints(preset.spec(quick))) {
        out.push_back({fp, quick ? preset.name + " --quick" : preset.name});
      }
    }
  }
  return out;
}

}  // namespace ethsm::api
