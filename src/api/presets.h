// Named experiment presets: every paper figure/table plus the extension
// studies, expressed as ExperimentSpecs. `ethsm run fig8` and the bench
// regenerator binaries both resolve through this registry, and the
// checkpoint GC keeps exactly the sweep fingerprints these presets reference.

#ifndef ETHSM_API_PRESETS_H
#define ETHSM_API_PRESETS_H

#include <string>
#include <string_view>
#include <vector>

#include "api/spec.h"

namespace ethsm::api {

struct Preset {
  std::string name;         ///< CLI handle ("fig8", "table2", ...)
  std::string description;  ///< one line for `ethsm list`
  /// Spec builder; quick = smaller grids / fewer runs (CI and smoke tests).
  ExperimentSpec (*spec)(bool quick);
  /// Side-file the legacy bench wrapper writes its CSV series to.
  std::string csv_filename;
};

/// All registered presets, in display order.
[[nodiscard]] const std::vector<Preset>& presets();

/// nullptr when unknown.
[[nodiscard]] const Preset* find_preset(std::string_view name);

/// Spec of a named preset; SpecError when the name is unknown.
[[nodiscard]] ExperimentSpec preset_spec(std::string_view name, bool quick);

/// One referenced sweep fingerprint: which preset/variant owns it.
struct ReferencedFingerprint {
  std::uint64_t fingerprint = 0;
  std::string owner;  ///< "fig8" or "fig8 --quick"
};

/// Union of checkpoint-store fingerprints over every preset, full and quick
/// variants both -- the keep-set of `ethsm checkpoint-stats --prune`.
[[nodiscard]] std::vector<ReferencedFingerprint> referenced_fingerprints();

/// The preset registry as a JSON document: name, kind, description, and for
/// both the full and the quick variant the canonical spec text plus its
/// provenance fingerprint. `ethsm list --format json` and the daemon's
/// GET /v1/presets serve this same rendering, so scripted clients can
/// discover specs once and POST them back to /v1/run verbatim.
[[nodiscard]] std::string render_presets_json();

}  // namespace ethsm::api

#endif  // ETHSM_API_PRESETS_H
