#include "api/render.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

#include "api/spec.h"
#include "support/csv.h"
#include "support/json.h"
#include "support/table.h"

namespace ethsm::api {

using support::json_escape;
using support::json_number;

OutputFormat output_format_from_string(std::string_view s) {
  if (s == "table") return OutputFormat::table;
  if (s == "csv") return OutputFormat::csv;
  if (s == "json") return OutputFormat::json;
  throw SpecError("unknown output format '" + std::string(s) +
                  "' (want table, csv or json)");
}

void render_text(const ExperimentResult& result, std::ostream& os) {
  if (!result.spec.title.empty()) {
    os << "== " << result.spec.title << " ==\n";
  }
  if (result.checkpoint_enabled) {
    os << "checkpoint: " << result.outcome.loaded << " loaded + "
       << result.outcome.computed << " computed of "
       << result.outcome.jobs_total << " jobs";
    if (result.outcome.skipped > 0) {
      os << "; " << result.outcome.skipped
         << " left for other shards or a later resume";
    }
    os << "\n";
  }
  if (!result.complete()) {
    os << "Partial sweep: aggregates suppressed until every shard's records "
          "are present; re-run with the same --checkpoint-dir to merge.\n";
    return;
  }
  for (const ResultTable& table : result.tables) {
    os << "\n";
    std::vector<std::string> headers;
    headers.reserve(table.columns.size());
    for (const Column& c : table.columns) headers.push_back(c.header);
    support::TextTable text(std::move(headers));
    if (!table.title.empty()) text.set_title(table.title);
    for (std::size_t row = 0; row < table.rows(); ++row) {
      std::vector<std::string> cells;
      cells.reserve(table.columns.size());
      for (const Column& c : table.columns) cells.push_back(c.cell(row));
      text.add_row(std::move(cells));
    }
    text.print(os);
  }
  if (!result.notes.empty()) os << "\n";
  for (const std::string& note : result.notes) os << note << "\n";
}

std::string render_csv(const ExperimentResult& result) {
  if (!result.complete() || result.tables.empty() ||
      result.csv_table >= result.tables.size()) {
    return {};
  }
  const ResultTable& table = result.tables[result.csv_table];
  std::vector<std::string> headers;
  headers.reserve(table.columns.size());
  for (const Column& c : table.columns) headers.push_back(c.header);
  support::CsvWriter csv(std::move(headers));
  for (std::size_t row = 0; row < table.rows(); ++row) {
    std::vector<std::string> cells;
    cells.reserve(table.columns.size());
    for (const Column& c : table.columns) {
      if (c.numeric) {
        const auto v =
            row < c.numbers.size() ? c.numbers[row] : std::optional<double>{};
        std::ostringstream os;
        os.precision(12);
        os << v.value_or(support::CsvWriter::kMissingSentinel);
        cells.push_back(os.str());
      } else {
        cells.push_back(row < c.text.size() ? c.text[row] : std::string{});
      }
    }
    csv.add_row(cells);
  }
  return csv.str();
}

std::string render_json(const ExperimentResult& result) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"kind\": \"" << to_string(result.spec.kind) << "\",\n";
  os << "  \"title\": \"" << json_escape(result.spec.title) << "\",\n";
  os << "  \"spec\": \"" << json_escape(print_spec(result.spec)) << "\",\n";
  os << "  \"spec_fingerprint\": \"" << support::hex64(result.spec_fingerprint)
     << "\",\n";
  os << "  \"complete\": " << (result.complete() ? "true" : "false") << ",\n";
  os << "  \"jobs\": {\"total\": " << result.outcome.jobs_total
     << ", \"loaded\": " << result.outcome.loaded
     << ", \"computed\": " << result.outcome.computed
     << ", \"skipped\": " << result.outcome.skipped << "},\n";
  os << "  \"tables\": [";
  for (std::size_t t = 0; t < result.tables.size(); ++t) {
    const ResultTable& table = result.tables[t];
    os << (t ? ",\n" : "\n");
    os << "    {\"title\": \"" << json_escape(table.title)
       << "\", \"columns\": [";
    for (std::size_t c = 0; c < table.columns.size(); ++c) {
      const Column& column = table.columns[c];
      os << (c ? ",\n" : "\n");
      os << "      {\"header\": \"" << json_escape(column.header)
         << "\", \"values\": [";
      for (std::size_t row = 0; row < column.rows(); ++row) {
        if (row) os << ", ";
        if (column.numeric) {
          const auto& v = column.numbers[row];
          os << (v ? json_number(*v) : "null");
        } else {
          os << '"' << json_escape(column.text[row]) << '"';
        }
      }
      os << "]}";
    }
    os << "\n    ]}";
  }
  os << "\n  ],\n";
  os << "  \"notes\": [";
  for (std::size_t i = 0; i < result.notes.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(result.notes[i]) << '"';
  }
  os << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace ethsm::api
