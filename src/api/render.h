// Renderers for ExperimentResult: one code path for every experiment's
// human-readable tables, CSV series and JSON export (previously duplicated
// across the bench mains).

#ifndef ETHSM_API_RENDER_H
#define ETHSM_API_RENDER_H

#include <iosfwd>
#include <string>

#include "api/result.h"

namespace ethsm::api {

/// Output format of `ethsm run --format ...`.
enum class OutputFormat { table, csv, json };

[[nodiscard]] OutputFormat output_format_from_string(std::string_view s);

/// Human-readable rendering: title, checkpoint progress (when enabled),
/// every table, then the notes. On an incomplete sweep the tables and notes
/// are suppressed (the partial-sweep contract of report_sweep_progress) and
/// only the progress summary is printed.
void render_text(const ExperimentResult& result, std::ostream& os);

/// CSV of result.tables[result.csv_table]: numeric headers as-is, missing
/// values as CsvWriter::kMissingSentinel (the historical value_or(-1)
/// convention). Empty string when the result has no tables.
[[nodiscard]] std::string render_csv(const ExperimentResult& result);

/// Machine-readable export of everything: resolved spec (canonical text and
/// fingerprint), every table (missing values as null), notes and progress.
[[nodiscard]] std::string render_json(const ExperimentResult& result);

}  // namespace ethsm::api

#endif  // ETHSM_API_RENDER_H
