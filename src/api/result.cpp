#include "api/result.h"

#include "support/table.h"

namespace ethsm::api {

std::string Column::cell(std::size_t row) const {
  if (!numeric) return row < text.size() ? text[row] : std::string{};
  if (row >= numbers.size()) return missing;
  return support::TextTable::opt(numbers[row], precision, missing.c_str());
}

std::uint64_t spec_fingerprint(const ExperimentSpec& spec) {
  support::Fingerprint fp;
  fp.mix("experiment_spec/v1");
  fp.mix(print_spec(spec));
  return fp.digest();
}

ExperimentResult provenance_normalized(const ExperimentResult& result) {
  ExperimentResult view = result;
  view.checkpoint_enabled = false;
  view.outcome.computed = view.outcome.loaded + view.outcome.computed;
  view.outcome.loaded = 0;
  return view;
}

}  // namespace ethsm::api
