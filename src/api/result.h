// Uniform experiment output: typed series + metadata + provenance.
//
// Every kind of experiment produces the same shape -- one or more tables of
// named columns (numeric columns hold optional values: a point whose
// simulation runs are not all merged yet is *missing*, not zero), headline
// notes, sweep progress, and a provenance fingerprint of the resolved spec.
// The renderers (render.h) turn this one shape into the fixed-width text
// tables, CSV and JSON the CLI emits, which is what deduplicates the
// hand-rolled formatting the ten bench mains used to carry.

#ifndef ETHSM_API_RESULT_H
#define ETHSM_API_RESULT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/spec.h"
#include "support/checkpoint.h"

namespace ethsm::api {

/// One named column: numeric (optional doubles, fixed precision) or text.
struct Column {
  std::string header;
  bool numeric = true;
  int precision = 4;
  /// What a missing numeric value renders as in text tables ("-" for
  /// not-yet-merged sim columns, "never" for unprofitable thresholds). CSV
  /// always uses CsvWriter::kMissingSentinel; JSON uses null.
  std::string missing = "-";
  std::vector<std::optional<double>> numbers;  ///< when numeric
  std::vector<std::string> text;               ///< when !numeric

  [[nodiscard]] static Column make_numeric(std::string header,
                                           int precision = 4,
                                           std::string missing = "-") {
    Column c;
    c.header = std::move(header);
    c.precision = precision;
    c.missing = std::move(missing);
    return c;
  }
  [[nodiscard]] static Column make_text(std::string header) {
    Column c;
    c.header = std::move(header);
    c.numeric = false;
    return c;
  }

  [[nodiscard]] std::size_t rows() const noexcept {
    return numeric ? numbers.size() : text.size();
  }
  /// Rendered cell: TextTable::opt semantics for numeric columns.
  [[nodiscard]] std::string cell(std::size_t row) const;
};

struct ResultTable {
  std::string title;
  std::vector<Column> columns;

  [[nodiscard]] std::size_t rows() const noexcept {
    return columns.empty() ? 0 : columns.front().rows();
  }
};

struct ExperimentResult {
  /// The spec as executed (after preset resolution and --set overrides).
  ExperimentSpec spec;
  std::vector<ResultTable> tables;
  /// Headline observations ("paper: crossing at alpha = 0.163", ...).
  std::vector<std::string> notes;

  /// Index of the table exported by the CSV renderer (the historical bench
  /// CSV payload; the JSON renderer always exports everything).
  std::size_t csv_table = 0;

  /// Merged resume/shard progress across every sweep the run touched.
  support::SweepOutcome outcome;
  bool checkpoint_enabled = false;

  /// Provenance: fingerprint of print_spec(spec) -- two results carry the
  /// same fingerprint iff they came from the same resolved spec.
  std::uint64_t spec_fingerprint = 0;
  /// Checkpoint-store fingerprints of the sweeps this run consulted.
  std::vector<std::uint64_t> sweep_fingerprints;

  [[nodiscard]] bool complete() const noexcept { return outcome.complete(); }
};

/// Fingerprint of a spec's canonical text form (the provenance digest).
[[nodiscard]] std::uint64_t spec_fingerprint(const ExperimentSpec& spec);

/// Copy of `result` with the loaded-vs-computed job split folded away.
/// Rendered artefacts must depend only on the merged results, never on how a
/// particular invocation satisfied the jobs (loaded from checkpoint vs
/// computed fresh) -- that split is what differs between a resumed run and a
/// fresh one, and both the study resume test and the serve bitwise-identity
/// contract assert the rendered bytes match across the two.
[[nodiscard]] ExperimentResult provenance_normalized(
    const ExperimentResult& result);

}  // namespace ethsm::api

#endif  // ETHSM_API_RESULT_H
