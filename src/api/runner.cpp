#include "api/runner.h"

#include <algorithm>
#include <sstream>

#include "analysis/absolute_revenue.h"
#include "analysis/attack_timeline.h"
#include "analysis/sweep.h"
#include "analysis/uncle_distance.h"
#include "net/net_sim.h"
#include "sim/delay_sim.h"
#include "sim/retarget_sim.h"
#include "sim/simulator.h"
#include "support/check.h"
#include "support/table.h"
#include "support/trace.h"

namespace ethsm::api {

namespace {

using support::TextTable;

sim::Scenario scenario_of(const ExperimentSpec& spec) {
  return spec.scenario == 1 ? sim::Scenario::regular_rate_one
                            : sim::Scenario::regular_and_uncle_rate_one;
}

// ------------------------------------------------ per-kind default series --

std::vector<SeriesSpec> resolved_series(const ExperimentSpec& spec) {
  if (!spec.series.empty()) return spec.series;
  switch (spec.kind) {
    case ExperimentKind::revenue: {
      SeriesSpec s;
      s.label = spec.rewards;
      s.rewards = spec.rewards;
      return {s};
    }
    case ExperimentKind::reward_design: {
      SeriesSpec byz{"Ku(.) Byzantium (8-d)/8", "byzantium", "selfish"};
      SeriesSpec flat{"Ku = 4/8 flat (proposal)", "flat:0.5", "selfish"};
      return {byz, flat};
    }
    case ExperimentKind::stubborn_sim: {
      std::vector<SeriesSpec> all;
      for (const auto& [label, strategy] :
           {std::pair<const char*, const char*>{"Alg.1", "selfish"},
            {"L", "lead"},
            {"F", "fork"},
            {"T1", "trail:1"},
            {"T2", "trail:2"},
            {"L+F", "lead+fork"}}) {
        SeriesSpec s;
        s.label = label;
        s.rewards = spec.rewards;
        s.strategy = strategy;
        all.push_back(std::move(s));
      }
      return all;
    }
    default:
      return {};
  }
}

std::vector<double> default_grid(const ExperimentSpec& spec) {
  switch (spec.kind) {
    case ExperimentKind::stubborn_sim:
      return {0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45};
    case ExperimentKind::timeline:
      return {0.06, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45};
    case ExperimentKind::uncle_distance:
      return {0.3, 0.45};
    case ExperimentKind::net:
      return {0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45};
    default:
      return {};
  }
}

std::vector<double> resolved_alphas(const ExperimentSpec& spec) {
  return spec.alphas.empty() ? default_grid(spec) : spec.alphas;
}

std::vector<double> resolved_ku_values(const ExperimentSpec& spec) {
  if (!spec.ku_values.empty()) return spec.ku_values;
  std::vector<double> kus;
  for (int eighths = 1; eighths <= 7; ++eighths) kus.push_back(eighths / 8.0);
  return kus;
}

std::vector<double> resolved_delays(const ExperimentSpec& spec) {
  if (!spec.delays.empty()) return spec.delays;
  return {0.05, 0.10, 0.15, 0.25, 0.40};
}

// --------------------------------------------------------- option builders --
// Shared by run() and sweep_fingerprints() so the fingerprints the GC keeps
// are exactly the ones the runner's sweeps key their records by.

analysis::RevenueCurveOptions revenue_options(
    const ExperimentSpec& spec, const SeriesSpec& series,
    const support::SweepCheckpoint& checkpoint) {
  analysis::RevenueCurveOptions opt;
  opt.gamma = spec.gamma;
  opt.rewards = parse_reward_spec(series.rewards);
  opt.scenario = scenario_of(spec);
  opt.alphas = spec.alphas;
  opt.max_lead = spec.max_lead;
  opt.sim_runs = spec.sim_runs;
  opt.sim_blocks = spec.sim_blocks;
  opt.sim_seed = spec.sim_seed;
  opt.checkpoint = checkpoint;
  return opt;
}

analysis::ThresholdCurveOptions threshold_options(
    const ExperimentSpec& spec, const support::SweepCheckpoint& checkpoint) {
  analysis::ThresholdCurveOptions opt;
  opt.rewards = parse_reward_spec(spec.rewards);
  opt.gammas = spec.gammas;
  opt.threshold.alpha_min = spec.alpha_min;
  opt.threshold.alpha_max = spec.alpha_max;
  opt.threshold.tolerance = spec.tolerance;
  opt.threshold.max_lead = spec.threshold_max_lead;
  opt.checkpoint = checkpoint;
  return opt;
}

analysis::ThresholdOptions threshold_search_options(
    const ExperimentSpec& spec) {
  analysis::ThresholdOptions opt;
  opt.alpha_min = spec.alpha_min;
  opt.alpha_max = spec.alpha_max;
  opt.tolerance = spec.tolerance;
  opt.max_lead = spec.threshold_max_lead;
  return opt;
}

sim::SimConfig uncle_distance_sim_config(const ExperimentSpec& spec,
                                         double alpha) {
  sim::SimConfig config;
  config.alpha = alpha;
  config.gamma = spec.gamma;
  config.num_blocks = spec.sim_blocks;
  config.seed = spec.sim_seed;
  config.rewards = parse_reward_spec(spec.rewards);
  return config;
}

/// Per-alpha seed chain of the stubborn bench: master + round(alpha * 1e4).
sim::SimConfig stubborn_sim_config(const ExperimentSpec& spec, double alpha) {
  sim::SimConfig config;
  config.alpha = alpha;
  config.gamma = spec.gamma;
  config.num_blocks = spec.sim_blocks;
  config.seed = spec.sim_seed + static_cast<std::uint64_t>(alpha * 1e4);
  config.rewards = parse_reward_spec(spec.rewards);
  return config;
}

/// Simulation-only kinds have no analysis fallback, so sim_runs = 0 (the
/// spec default, meaning "no cross-check" for the curve kinds) clamps to one
/// run instead of tripping the drivers' runs > 0 precondition.
int simulation_runs(const ExperimentSpec& spec) {
  return std::max(spec.sim_runs, 1);
}

sim::DelaySimConfig delay_sim_config(const ExperimentSpec& spec,
                                     double delay) {
  sim::DelaySimConfig config;
  config.shares = spec.shares;
  config.delay = delay;
  config.num_blocks = spec.sim_blocks;
  config.seed = spec.sim_seed;
  config.rewards = parse_reward_spec(spec.rewards);
  return config;
}

net::FaultSpec net_fault_spec(const ExperimentSpec& spec) {
  net::FaultSpec faults;
  faults.drop = spec.net_fault_drop;
  faults.churn = net::parse_churn_spec(spec.net_fault_churn);
  faults.partition = net::parse_partition_spec(spec.net_fault_partition);
  faults.eclipse = net::parse_eclipse_spec(spec.net_fault_eclipse);
  return faults;
}

net::NetSimConfig net_sim_config(const ExperimentSpec& spec, double alpha) {
  net::NetSimConfig config;
  config.alpha = alpha;
  config.honest_nodes = static_cast<std::uint32_t>(spec.net_nodes);
  config.topology = net::parse_topology_spec(spec.net_topology);
  config.latency = net::parse_latency_spec(spec.net_latency);
  config.relay = net::relay_mode_from_string(spec.net_relay);
  config.faults = net_fault_spec(spec);
  config.num_blocks = spec.sim_blocks;
  config.seed = spec.sim_seed;
  config.rewards = parse_reward_spec(spec.rewards);
  return config;
}

// ------------------------------------------------------------ kind runners --

void run_revenue(const ExperimentSpec& spec, const RunOptions& options,
                 ExperimentResult& result) {
  const auto series = resolved_series(spec);
  support::SweepOutcome outcome;
  std::vector<std::vector<analysis::RevenuePoint>> curves;
  curves.reserve(series.size());
  for (const SeriesSpec& s : series) {
    curves.push_back(analysis::revenue_curve(
        revenue_options(spec, s, options.checkpoint), &outcome));
  }
  result.outcome = outcome;
  if (!outcome.complete()) return;

  const bool single = series.size() == 1;
  const bool with_sim = spec.sim_runs > 0;
  ResultTable table;
  auto& cols = table.columns;
  cols.push_back(Column::make_numeric("alpha", 3));
  cols.push_back(Column::make_numeric("honest mining", 3));
  auto label_of = [&](const char* base, const SeriesSpec& s) {
    return single ? std::string(base) + " (analysis)"
                  : std::string(base) + " " + s.label;
  };
  for (std::size_t k = 0; k < series.size(); ++k) {
    cols.push_back(Column::make_numeric(label_of("Us", series[k])));
    if (with_sim) {
      cols.push_back(Column::make_numeric(
          single ? "Us (sim)" : "Us sim " + series[k].label));
      cols.push_back(Column::make_numeric(
          single ? "Us +-95%" : "Us +-95% " + series[k].label));
    }
  }
  for (std::size_t k = 0; k < series.size(); ++k) {
    cols.push_back(Column::make_numeric(label_of("Uh", series[k])));
    if (with_sim) {
      cols.push_back(Column::make_numeric(
          single ? "Uh (sim)" : "Uh sim " + series[k].label));
      cols.push_back(Column::make_numeric(
          single ? "Uh +-95%" : "Uh +-95% " + series[k].label));
    }
  }
  if (!single) {
    for (std::size_t k = 0; k < series.size(); ++k) {
      cols.push_back(Column::make_numeric("Tot " + series[k].label));
    }
  }

  const std::size_t rows = curves.front().size();
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t c = 0;
    cols[c++].numbers.push_back(curves[0][i].alpha);
    cols[c++].numbers.push_back(curves[0][i].alpha);
    for (const auto& curve : curves) {
      cols[c++].numbers.push_back(curve[i].pool_revenue);
      if (with_sim) {
        cols[c++].numbers.push_back(curve[i].pool_revenue_sim);
        cols[c++].numbers.push_back(curve[i].pool_revenue_sim_ci);
      }
    }
    for (const auto& curve : curves) {
      cols[c++].numbers.push_back(curve[i].honest_revenue);
      if (with_sim) {
        cols[c++].numbers.push_back(curve[i].honest_revenue_sim);
        cols[c++].numbers.push_back(curve[i].honest_revenue_sim_ci);
      }
    }
    if (!single) {
      for (const auto& curve : curves) {
        cols[c++].numbers.push_back(curve[i].total_revenue);
      }
    }
  }
  result.tables.push_back(std::move(table));

  for (std::size_t k = 0; k < series.size(); ++k) {
    double crossing = -1.0;
    for (const auto& p : curves[k]) {
      if (p.alpha > 0.0 && p.pool_revenue >= p.alpha) {
        crossing = p.alpha;
        break;
      }
    }
    std::ostringstream note;
    note << "[" << series[k].label << "] first grid alpha with Us >= alpha: "
         << (crossing >= 0.0 ? TextTable::num(crossing, 3) : "none")
         << "; total revenue at alpha=" << TextTable::num(
                curves[k].back().alpha, 3)
         << ": " << TextTable::pct(curves[k].back().total_revenue);
    result.notes.push_back(note.str());
  }
}

void run_threshold(const ExperimentSpec& spec, const RunOptions& options,
                   ExperimentResult& result) {
  support::SweepOutcome outcome;
  const auto curve = analysis::threshold_curve(
      threshold_options(spec, options.checkpoint), &outcome);
  result.outcome = outcome;
  if (!outcome.complete()) return;

  ResultTable table;
  table.columns = {Column::make_numeric("gamma", 2),
                   Column::make_numeric("Bitcoin (Eyal-Sirer)"),
                   Column::make_numeric("Ethereum scenario 1", 4, "never"),
                   Column::make_numeric("Ethereum scenario 2", 4, "never"),
                   Column::make_text("scn1 vs BTC"),
                   Column::make_text("scn2 vs BTC")};
  double crossover = -1.0;
  double previous_delta = -1.0;
  for (const auto& p : curve) {
    table.columns[0].numbers.push_back(p.gamma);
    table.columns[1].numbers.push_back(p.bitcoin);
    table.columns[2].numbers.push_back(p.ethereum_scenario1);
    table.columns[3].numbers.push_back(p.ethereum_scenario2);
    const double d1 = p.ethereum_scenario1.value_or(1.0) - p.bitcoin;
    const double d2 = p.ethereum_scenario2.value_or(1.0) - p.bitcoin;
    table.columns[4].text.push_back(d1 < 0 ? "below" : "above");
    table.columns[5].text.push_back(d2 < 0 ? "below" : "above");
    if (previous_delta <= 0.0 && d2 > 0.0 && crossover < 0.0 && p.gamma > 0) {
      crossover = p.gamma;
    }
    previous_delta = d2;
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(
      "Scenario 2 crosses above Bitcoin at gamma ~ " +
      (crossover > 0 ? TextTable::num(crossover, 2) : std::string("n/a")) +
      "   (paper: gamma ~ 0.39)");
  result.notes.push_back(
      "Landmark: Bitcoin threshold at gamma=0.5 is 0.25 (Eyal-Sirer).");
}

void run_reward_design(const ExperimentSpec& spec, ExperimentResult& result) {
  const auto series = resolved_series(spec);
  const auto opt = threshold_search_options(spec);

  auto threshold_of = [&](const rewards::RewardConfig& config,
                          sim::Scenario scenario) {
    return analysis::profitability_threshold(spec.gamma, config, scenario,
                                             opt);
  };

  ResultTable headline;
  headline.title = "Thresholds per schedule (gamma = " +
                   TextTable::num(spec.gamma, 2) + ")";
  headline.columns = {Column::make_text("Schedule"),
                      Column::make_numeric("alpha* scenario 1", 3, "never"),
                      Column::make_numeric("alpha* scenario 2", 3, "never")};
  for (const SeriesSpec& s : series) {
    const auto config = parse_reward_spec(s.rewards);
    headline.columns[0].text.push_back(s.label);
    headline.columns[1].numbers.push_back(
        threshold_of(config, sim::Scenario::regular_rate_one));
    headline.columns[2].numbers.push_back(
        threshold_of(config, sim::Scenario::regular_and_uncle_rate_one));
  }
  result.tables.push_back(std::move(headline));

  ResultTable sweep;
  sweep.title = "Designer sweep: flat Ku value vs threshold";
  sweep.columns = {Column::make_numeric("ku", 4),
                   Column::make_numeric("threshold_s1", 3, "never"),
                   Column::make_numeric("threshold_s2", 3, "never")};
  for (double ku : resolved_ku_values(spec)) {
    const auto config = rewards::RewardConfig::ethereum_flat(ku);
    sweep.columns[0].numbers.push_back(ku);
    sweep.columns[1].numbers.push_back(
        threshold_of(config, sim::Scenario::regular_rate_one));
    sweep.columns[2].numbers.push_back(
        threshold_of(config, sim::Scenario::regular_and_uncle_rate_one));
  }
  result.tables.push_back(std::move(sweep));
  result.csv_table = 1;  // the historical sec6 CSV payload
  result.notes.push_back(
      "Lower flat values resist selfish mining better but weaken the "
      "anti-centralization incentive uncles were designed for (Sec. VI).");
}

void run_uncle_distance(const ExperimentSpec& spec, const RunOptions& options,
                        ExperimentResult& result) {
  const auto alphas = resolved_alphas(spec);
  ETHSM_EXPECTS(!alphas.empty(), "uncle_distance needs at least one alpha");

  std::vector<analysis::UncleDistanceDistribution> analysis_side;
  for (double alpha : alphas) {
    analysis_side.push_back(analysis::honest_uncle_distance_distribution(
        {alpha, spec.gamma}, spec.max_lead));
  }

  support::SweepOutcome outcome;
  std::vector<sim::MultiRunSummary> sims;
  if (spec.sim_runs > 0) {
    for (double alpha : alphas) {
      sims.push_back(sim::run_many(uncle_distance_sim_config(spec, alpha),
                                   spec.sim_runs, options.checkpoint,
                                   &outcome));
    }
  }
  result.outcome = outcome;
  if (!outcome.complete()) return;

  ResultTable table;
  table.columns.push_back(Column::make_text("Referencing distance"));
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    const std::string tag = "alpha=" + TextTable::num(alphas[a], 2);
    table.columns.push_back(Column::make_numeric(tag + " (analysis)", 3));
    if (spec.sim_runs > 0) {
      table.columns.push_back(Column::make_numeric(tag + " (sim)", 3));
    }
  }
  for (int d = 1; d <= 6; ++d) {
    std::size_t c = 0;
    table.columns[c++].text.push_back(std::to_string(d));
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      table.columns[c++].numbers.push_back(
          analysis_side[a].fraction[static_cast<std::size_t>(d)]);
      if (spec.sim_runs > 0) {
        table.columns[c++].numbers.push_back(
            sims[a].uncle_distance_honest.conditional_fraction(
                static_cast<std::size_t>(d), 1, 6));
      }
    }
  }
  {
    std::size_t c = 0;
    table.columns[c++].text.push_back("Expectation");
    for (std::size_t a = 0; a < alphas.size(); ++a) {
      table.columns[c++].numbers.push_back(analysis_side[a].expectation);
      if (spec.sim_runs > 0) {
        table.columns[c++].numbers.push_back(
            sims[a].uncle_distance_honest.conditional_mean(1, 6));
      }
    }
  }
  result.tables.push_back(std::move(table));

  if (spec.sim_runs > 0) {
    result.notes.push_back(
        "Pool uncles are always referenced at distance 1 (Remark 5): sim "
        "pool d=1 fraction = " +
        TextTable::num(
            sims.back().uncle_distance_pool.conditional_fraction(1, 1, 6),
            3));
  }
}

void run_reward_table(ExperimentResult& result) {
  ResultTable inventory;
  inventory.title = "Table I: mining rewards in Ethereum and Bitcoin";
  inventory.columns = {
      Column::make_text("Reward type"), Column::make_text("Ethereum"),
      Column::make_text("Bitcoin"), Column::make_text("Purpose")};
  for (const auto& row : rewards::table1_reward_inventory()) {
    inventory.columns[0].text.push_back(row.reward_type);
    inventory.columns[1].text.push_back(row.in_ethereum ? "yes" : "no");
    inventory.columns[2].text.push_back(row.in_bitcoin ? "yes" : "no");
    inventory.columns[3].text.push_back(row.purpose);
  }
  result.tables.push_back(std::move(inventory));

  ResultTable schedule;
  schedule.title = "Concrete schedules (relative to Ks = 1)";
  schedule.columns = {Column::make_numeric("distance d", 0),
                      Column::make_numeric("Ku(d) Byzantium"),
                      Column::make_numeric("Ku(d) flat 4/8"),
                      Column::make_numeric("Kn(d) nephew")};
  const rewards::ByzantiumUncleSchedule byzantium;
  const rewards::FlatUncleSchedule flat(0.5);
  const rewards::NephewRewardSchedule nephew;
  for (int d = 1; d <= 7; ++d) {
    schedule.columns[0].numbers.push_back(d);
    schedule.columns[1].numbers.push_back(byzantium.reward(d));
    schedule.columns[2].numbers.push_back(flat.reward(d));
    schedule.columns[3].numbers.push_back(nephew.reward(d));
  }
  result.tables.push_back(std::move(schedule));
  result.notes.push_back(
      "Ku(d) = (8-d)/8 for d in 1..6 (paper Eq. (7)); Kn = 1/32 within the "
      "same horizon.");
}

void run_stubborn_sim(const ExperimentSpec& spec, const RunOptions& options,
                      ExperimentResult& result) {
  const auto series = resolved_series(spec);
  const auto alphas = resolved_alphas(spec);
  const sim::Scenario scenario = scenario_of(spec);

  support::SweepOutcome outcome;
  // revenue[a][k]: pool revenue of variant k at alphas[a].
  std::vector<std::vector<double>> revenue(
      alphas.size(), std::vector<double>(series.size(), 0.0));
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    const sim::SimConfig config = stubborn_sim_config(spec, alphas[a]);
    for (std::size_t k = 0; k < series.size(); ++k) {
      const auto summary = sim::run_stubborn_many(
          config, parse_strategy_spec(series[k].strategy),
          simulation_runs(spec), options.checkpoint, &outcome);
      if (outcome.complete()) {
        revenue[a][k] = summary.pool_revenue(scenario).mean();
      }
    }
  }
  result.outcome = outcome;
  if (!outcome.complete()) return;

  ResultTable table;
  table.columns.push_back(Column::make_numeric("alpha", 2));
  table.columns.push_back(Column::make_numeric("honest", 2));
  for (const SeriesSpec& s : series) {
    table.columns.push_back(Column::make_numeric(s.label));
  }
  table.columns.push_back(Column::make_text("best"));
  for (std::size_t a = 0; a < alphas.size(); ++a) {
    std::size_t c = 0;
    table.columns[c++].numbers.push_back(alphas[a]);
    table.columns[c++].numbers.push_back(alphas[a]);
    std::size_t best = 0;
    for (std::size_t k = 0; k < series.size(); ++k) {
      table.columns[c++].numbers.push_back(revenue[a][k]);
      if (revenue[a][k] > revenue[a][best]) best = k;
    }
    table.columns[c].text.push_back(series[best].label);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(
      "Nayak et al. showed stubborn variants can beat vanilla selfish mining "
      "in parts of the (alpha, gamma) plane; this table answers the same "
      "question with Ethereum's uncle and nephew rewards in play.");
}

void run_timeline(const ExperimentSpec& spec, ExperimentResult& result) {
  const auto config = parse_reward_spec(spec.rewards);
  ResultTable table;
  table.columns = {Column::make_numeric("alpha", 2),
                   Column::make_numeric("bleed rate (s1)"),
                   Column::make_numeric("gain rate (s1)"),
                   Column::make_numeric("breakeven blocks (s1)", 0, "never"),
                   Column::make_numeric("bleed rate (s2)"),
                   Column::make_numeric("gain rate (s2)"),
                   Column::make_numeric("breakeven blocks (s2)", 0, "never")};
  for (double alpha : resolved_alphas(spec)) {
    const auto s1 = analysis::compute_attack_timeline(
        {alpha, spec.gamma}, config, sim::Scenario::regular_rate_one,
        spec.max_lead);
    const auto s2 = analysis::compute_attack_timeline(
        {alpha, spec.gamma}, config,
        sim::Scenario::regular_and_uncle_rate_one, spec.max_lead);
    std::size_t c = 0;
    table.columns[c++].numbers.push_back(alpha);
    table.columns[c++].numbers.push_back(s1.initial_bleed_rate());
    table.columns[c++].numbers.push_back(s1.steady_gain_rate());
    table.columns[c++].numbers.push_back(
        s1.breakeven_time(spec.phase1_blocks));
    table.columns[c++].numbers.push_back(s2.initial_bleed_rate());
    table.columns[c++].numbers.push_back(s2.steady_gain_rate());
    table.columns[c++].numbers.push_back(
        s2.breakeven_time(spec.phase1_blocks));
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(
      "Even above the threshold the attacker must pre-finance the bleed "
      "through one retarget window; EIP100 both raises the threshold AND "
      "stretches the repayment period.");
}

void run_retarget(const ExperimentSpec& spec, ExperimentResult& result) {
  const auto rewards_config = parse_reward_spec(spec.rewards);
  for (const sim::Scenario scenario :
       {sim::Scenario::regular_rate_one,
        sim::Scenario::regular_and_uncle_rate_one}) {
    sim::RetargetConfig config;
    config.base.alpha = spec.alpha;
    config.base.gamma = spec.gamma;
    config.base.seed = spec.sim_seed;
    config.base.rewards = rewards_config;
    config.controller.scenario = scenario;
    config.controller.target_rate = 1.0;
    config.controller.initial_difficulty = 1.0;
    config.epoch_blocks = spec.epoch_blocks;
    config.epochs = spec.epochs;
    const auto run = sim::run_retarget_simulation(config);

    ResultTable table;
    table.title = to_string(scenario);
    table.columns = {Column::make_numeric("epoch", 0),
                     Column::make_numeric("difficulty"),
                     Column::make_numeric("regular/s", 3),
                     Column::make_numeric("counted/s", 3),
                     Column::make_numeric("pool reward/s")};
    const std::size_t step = std::max<std::size_t>(run.epochs.size() / 6, 1);
    for (std::size_t i = 0; i < run.epochs.size(); i += step) {
      const auto& e = run.epochs[i];
      table.columns[0].numbers.push_back(static_cast<double>(i));
      table.columns[1].numbers.push_back(e.difficulty);
      table.columns[2].numbers.push_back(e.regular_rate);
      table.columns[3].numbers.push_back(e.counted_rate);
      table.columns[4].numbers.push_back(e.pool_reward_rate);
    }
    result.tables.push_back(std::move(table));

    const auto r = analysis::compute_revenue({spec.alpha, spec.gamma},
                                             rewards_config, spec.max_lead);
    const double us = analysis::pool_absolute_revenue(r, scenario);
    std::ostringstream note;
    note << "[" << to_string(scenario) << "] steady counted rate "
         << TextTable::num(run.steady_counted_rate, 4)
         << " (target 1.0); pool revenue per counted block "
         << TextTable::num(run.steady_pool_revenue_per_counted_block(), 4)
         << " vs static analysis Us = " << TextTable::num(us, 4)
         << "; total reward rate/s "
         << TextTable::num(
                run.steady_pool_reward_rate + run.steady_honest_reward_rate,
                4);
    result.notes.push_back(note.str());
  }
}

void run_delay(const ExperimentSpec& spec, const RunOptions& options,
               ExperimentResult& result) {
  const auto delays = resolved_delays(spec);
  const int runs = simulation_runs(spec);

  support::SweepOutcome outcome;
  std::vector<sim::DelayMultiRunSummary> summaries;
  for (double delay : delays) {
    summaries.push_back(sim::run_delay_many(delay_sim_config(spec, delay),
                                            runs, options.checkpoint,
                                            &outcome));
  }
  result.outcome = outcome;
  if (!outcome.complete()) return;

  ResultTable table;
  table.columns = {Column::make_numeric("delay (block intervals)", 2),
                   Column::make_numeric("stale/regular"),
                   Column::make_numeric("uncle/regular"),
                   Column::make_numeric("uncle +-95%"),
                   Column::make_numeric("referenced fraction", 3)};
  for (std::size_t i = 0; i < delays.size(); ++i) {
    const auto& s = summaries[i];
    table.columns[0].numbers.push_back(delays[i]);
    table.columns[1].numbers.push_back(s.stale_rate.mean());
    table.columns[2].numbers.push_back(s.uncle_rate.mean());
    table.columns[3].numbers.push_back(s.uncle_rate.ci_halfwidth());
    table.columns[4].numbers.push_back(
        s.stale_rate.mean() > 0 ? s.uncle_rate.mean() / s.stale_rate.mean()
                                : 0.0);
  }
  result.tables.push_back(std::move(table));
  result.notes.push_back(
      "Real Ethereum context: delay/interval ~ 0.15 gives an uncle rate near "
      "the ~7-10% observed on-chain (" + std::to_string(runs) +
      " runs per point).");
}

void run_net(const ExperimentSpec& spec, const RunOptions& options,
             ExperimentResult& result) {
  const auto alphas = resolved_alphas(spec);
  const int runs = simulation_runs(spec);
  const sim::Scenario scenario = scenario_of(spec);
  const auto rewards_config = parse_reward_spec(spec.rewards);

  // With faults enabled every alpha also runs a fault-free baseline (same
  // seed, same topology), so the table can show what the faults changed; the
  // two sweeps carry distinct fingerprints and share the checkpoint safely.
  const bool faulted = net_fault_spec(spec).any();
  support::SweepOutcome outcome;
  std::vector<net::NetMultiRunSummary> summaries;
  std::vector<net::NetMultiRunSummary> clean;
  for (double alpha : alphas) {
    summaries.push_back(net::run_net_many(net_sim_config(spec, alpha), runs,
                                          options.checkpoint, &outcome));
  }
  if (faulted) {
    for (double alpha : alphas) {
      net::NetSimConfig config = net_sim_config(spec, alpha);
      config.faults = net::FaultSpec{};
      clean.push_back(
          net::run_net_many(config, runs, options.checkpoint, &outcome));
    }
  }
  result.outcome = outcome;
  if (!outcome.complete()) return;

  // Headline: the measured-gamma curve against the Markov model evaluated
  // both at the measured gamma (does the aggregate theory predict the
  // network?) and at the spec's fixed gamma (what assuming gamma would get
  // wrong). Under faults, the clean-network baseline columns show the drift.
  ResultTable table;
  table.title = "Endogenous gamma on " + spec.net_topology + " / " +
                spec.net_latency + " (" + std::to_string(spec.net_nodes) +
                " honest nodes, relay=" + spec.net_relay +
                (faulted ? ", faults on" : "") + ")";
  table.columns = {Column::make_numeric("alpha", 3),
                   Column::make_numeric("gamma (net)"),
                   Column::make_numeric("gamma +-95%"),
                   Column::make_numeric("Us (net)"),
                   Column::make_numeric("Us markov@net gamma"),
                   Column::make_numeric("Us markov@fixed gamma"),
                   Column::make_numeric("Uh (net)"),
                   Column::make_numeric("uncle rate"),
                   Column::make_numeric("stale rate")};
  if (faulted) {
    table.columns.push_back(Column::make_numeric("gamma (clean)"));
    table.columns.push_back(Column::make_numeric("Us (clean)"));
  }
  double gamma_min = 1.0;
  double gamma_max = 0.0;
  std::uint64_t races = 0;
  std::uint64_t natural_forks = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t dropped = 0;
  std::uint64_t mining_lost = 0;
  std::uint64_t downtimes = 0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    const net::NetMultiRunSummary& s = summaries[i];
    const double gamma_net = s.gamma.mean();
    const auto at_net_gamma = analysis::compute_revenue(
        {alphas[i], gamma_net}, rewards_config, spec.max_lead);
    const auto at_fixed_gamma = analysis::compute_revenue(
        {alphas[i], spec.gamma}, rewards_config, spec.max_lead);
    std::size_t c = 0;
    table.columns[c++].numbers.push_back(alphas[i]);
    table.columns[c++].numbers.push_back(gamma_net);
    table.columns[c++].numbers.push_back(s.gamma.ci_halfwidth());
    table.columns[c++].numbers.push_back(s.pool_revenue(scenario).mean());
    table.columns[c++].numbers.push_back(
        analysis::pool_absolute_revenue(at_net_gamma, scenario));
    table.columns[c++].numbers.push_back(
        analysis::pool_absolute_revenue(at_fixed_gamma, scenario));
    table.columns[c++].numbers.push_back(s.honest_revenue(scenario).mean());
    table.columns[c++].numbers.push_back(s.uncle_rate.mean());
    table.columns[c++].numbers.push_back(s.stale_rate.mean());
    if (faulted) {
      table.columns[c++].numbers.push_back(clean[i].gamma.mean());
      table.columns[c++].numbers.push_back(
          clean[i].pool_revenue(scenario).mean());
    }
    gamma_min = std::min(gamma_min, gamma_net);
    gamma_max = std::max(gamma_max, gamma_net);
    races += s.race_samples;
    natural_forks += s.natural_forks;
    resyncs += s.resyncs;
    dropped += s.faults_messages_dropped;
    mining_lost += s.faults_mining_lost;
    downtimes += s.faults_downtime_events;
  }
  result.tables.push_back(std::move(table));

  // Propagation-distance breakdown, pooled across the alpha grid: nodes far
  // from the attacker should waste more blocks.
  ResultTable dist;
  dist.title = "Honest stale fraction by hop distance from the attacker";
  dist.columns = {Column::make_numeric("hops", 0),
                  Column::make_numeric("honest blocks", 0),
                  Column::make_numeric("stale fraction", 4)};
  std::vector<std::uint64_t> blocks_by_d;
  std::vector<std::uint64_t> stale_by_d;
  for (const auto& s : summaries) {
    if (blocks_by_d.size() < s.distance_blocks.size()) {
      blocks_by_d.resize(s.distance_blocks.size(), 0);
      stale_by_d.resize(s.distance_stale.size(), 0);
    }
    for (std::size_t d = 0; d < s.distance_blocks.size(); ++d) {
      blocks_by_d[d] += s.distance_blocks[d];
      stale_by_d[d] += s.distance_stale[d];
    }
  }
  for (std::size_t d = 1; d < blocks_by_d.size(); ++d) {
    dist.columns[0].numbers.push_back(static_cast<double>(d));
    dist.columns[1].numbers.push_back(static_cast<double>(blocks_by_d[d]));
    dist.columns[2].numbers.push_back(
        blocks_by_d[d] == 0 ? 0.0
                            : static_cast<double>(stale_by_d[d]) /
                                  static_cast<double>(blocks_by_d[d]));
  }
  result.tables.push_back(std::move(dist));

  std::ostringstream note;
  note << "Measured gamma spans [" << TextTable::num(gamma_min, 3) << ", "
       << TextTable::num(gamma_max, 3) << "] across the alpha grid ("
       << races << " races; the Markov model treats it as a free parameter).";
  result.notes.push_back(note.str());
  if (natural_forks + resyncs > 0) {
    std::ostringstream robustness;
    robustness << "Attack-model robustness: " << natural_forks
               << " honest latency fork(s) invisible to Algorithm 1, "
               << resyncs << " resync(s) after untracked overtakes.";
    result.notes.push_back(robustness.str());
  }
  if (faulted) {
    std::ostringstream faults_note;
    faults_note << "Fault injection: " << dropped << " message(s) dropped, "
                << mining_lost << " honest mining event(s) lost to downtime, "
                << downtimes << " crash(es); clean-network baseline in the "
                << "gamma/Us (clean) columns.";
    result.notes.push_back(faults_note.str());
  }
}

}  // namespace

ExperimentResult run(const ExperimentSpec& spec, const RunOptions& options) {
  // One span per experiment, named by kind: the outermost run-side scope in
  // a --trace file (cells/serve requests wrap it from the outside).
  support::trace::Span span("api.run " + std::string(to_string(spec.kind)));
  ExperimentResult result;
  result.spec = spec;
  result.spec_fingerprint = spec_fingerprint(spec);
  result.sweep_fingerprints = sweep_fingerprints(spec);
  result.checkpoint_enabled = options.checkpoint.enabled();

  switch (spec.kind) {
    case ExperimentKind::revenue:
      run_revenue(spec, options, result);
      break;
    case ExperimentKind::threshold:
      run_threshold(spec, options, result);
      break;
    case ExperimentKind::reward_design:
      run_reward_design(spec, result);
      break;
    case ExperimentKind::uncle_distance:
      run_uncle_distance(spec, options, result);
      break;
    case ExperimentKind::reward_table:
      run_reward_table(result);
      break;
    case ExperimentKind::stubborn_sim:
      run_stubborn_sim(spec, options, result);
      break;
    case ExperimentKind::timeline:
      run_timeline(spec, result);
      break;
    case ExperimentKind::retarget:
      run_retarget(spec, result);
      break;
    case ExperimentKind::delay:
      run_delay(spec, options, result);
      break;
    case ExperimentKind::net:
      run_net(spec, options, result);
      break;
  }
  return result;
}

std::vector<std::uint64_t> sweep_fingerprints(const ExperimentSpec& spec) {
  std::vector<std::uint64_t> fps;
  const support::SweepCheckpoint no_checkpoint;
  switch (spec.kind) {
    case ExperimentKind::revenue:
      for (const SeriesSpec& s : resolved_series(spec)) {
        for (std::uint64_t fp : analysis::revenue_curve_fingerprints(
                 revenue_options(spec, s, no_checkpoint))) {
          fps.push_back(fp);
        }
      }
      break;
    case ExperimentKind::threshold:
      fps.push_back(analysis::threshold_curve_fingerprint(
          threshold_options(spec, no_checkpoint)));
      break;
    case ExperimentKind::uncle_distance:
      if (spec.sim_runs > 0) {
        for (double alpha : resolved_alphas(spec)) {
          fps.push_back(sim::run_many_fingerprint(
              uncle_distance_sim_config(spec, alpha), spec.sim_runs));
        }
      }
      break;
    case ExperimentKind::stubborn_sim:
      for (double alpha : resolved_alphas(spec)) {
        const sim::SimConfig config = stubborn_sim_config(spec, alpha);
        for (const SeriesSpec& s : resolved_series(spec)) {
          fps.push_back(sim::run_stubborn_many_fingerprint(
              config, parse_strategy_spec(s.strategy),
              simulation_runs(spec)));
        }
      }
      break;
    case ExperimentKind::delay:
      for (double delay : resolved_delays(spec)) {
        fps.push_back(sim::run_delay_many_fingerprint(
            delay_sim_config(spec, delay), simulation_runs(spec)));
      }
      break;
    case ExperimentKind::net:
      for (double alpha : resolved_alphas(spec)) {
        net::NetSimConfig config = net_sim_config(spec, alpha);
        fps.push_back(
            net::run_net_many_fingerprint(config, simulation_runs(spec)));
        if (config.faults.any()) {
          // Faulted runs also sweep a clean baseline (run_net); keep its
          // records alive across checkpoint GC.
          config.faults = net::FaultSpec{};
          fps.push_back(
              net::run_net_many_fingerprint(config, simulation_runs(spec)));
        }
      }
      break;
    case ExperimentKind::reward_design:
    case ExperimentKind::reward_table:
    case ExperimentKind::timeline:
    case ExperimentKind::retarget:
      break;  // no checkpoint-aware sweep behind these kinds
  }
  return fps;
}

}  // namespace ethsm::api
