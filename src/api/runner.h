// run(spec): the single entry point executing any ExperimentSpec by
// dispatching to the library's sweep drivers (analysis::revenue_curve,
// analysis::threshold_curve, sim::run_many and friends). The bench
// regenerators, the `ethsm` CLI and the tests all go through here; for every
// paper preset the produced series are bitwise-identical to calling the
// legacy drivers directly (asserted by tests/api/preset_equivalence_test).

#ifndef ETHSM_API_RUNNER_H
#define ETHSM_API_RUNNER_H

#include <vector>

#include "api/result.h"
#include "api/spec.h"
#include "support/checkpoint.h"

namespace ethsm::api {

struct RunOptions {
  /// Resume/shard persistence threaded into every checkpoint-aware sweep the
  /// spec touches (kinds without a sweep driver ignore it).
  support::SweepCheckpoint checkpoint;
};

/// Executes the spec. On an incomplete (sharded / job-budgeted) sweep the
/// result carries only the outcome accounting; tables/notes are populated
/// only when every job is merged (render_text enforces the suppression).
[[nodiscard]] ExperimentResult run(const ExperimentSpec& spec,
                                   const RunOptions& options = {});

/// The checkpoint-store fingerprints run(spec) would consult, computed
/// without running anything. `ethsm checkpoint-stats --prune` keeps exactly
/// the union of these over all registered presets.
[[nodiscard]] std::vector<std::uint64_t> sweep_fingerprints(
    const ExperimentSpec& spec);

}  // namespace ethsm::api

#endif  // ETHSM_API_RUNNER_H
