#include "api/spec.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "net/net_sim.h"
#include "net/topology.h"
#include "support/math_util.h"

namespace ethsm::api {

namespace {

constexpr std::array<std::pair<ExperimentKind, std::string_view>, 10> kKindNames{
    {{ExperimentKind::revenue, "revenue"},
     {ExperimentKind::threshold, "threshold"},
     {ExperimentKind::reward_design, "reward_design"},
     {ExperimentKind::uncle_distance, "uncle_distance"},
     {ExperimentKind::reward_table, "reward_table"},
     {ExperimentKind::stubborn_sim, "stubborn_sim"},
     {ExperimentKind::timeline, "timeline"},
     {ExperimentKind::retarget, "retarget"},
     {ExperimentKind::delay, "delay"},
     {ExperimentKind::net, "net"}}};

[[noreturn]] void fail(const std::string& message) { throw SpecError(message); }

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_double(std::string_view key, std::string_view text) {
  const std::string buffer(trim(text));
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (buffer.empty() || end != buffer.c_str() + buffer.size()) {
    fail("spec key '" + std::string(key) + "': malformed number '" + buffer +
         "'");
  }
  return value;
}

std::uint64_t parse_u64(std::string_view key, std::string_view text) {
  const std::string buffer(trim(text));
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buffer.c_str(), &end, 0);
  // strtoull silently wraps "-5" to a huge value; a negative count/seed is a
  // typo, not a 2^64-block simulation.
  if (buffer.empty() || end != buffer.c_str() + buffer.size() ||
      buffer.front() == '-') {
    fail("spec key '" + std::string(key) + "': malformed integer '" + buffer +
         "'");
  }
  return static_cast<std::uint64_t>(value);
}

int parse_int(std::string_view key, std::string_view text) {
  const std::string buffer(trim(text));
  int value = 0;
  const auto r =
      std::from_chars(buffer.data(), buffer.data() + buffer.size(), value);
  if (r.ec != std::errc() || r.ptr != buffer.data() + buffer.size()) {
    fail("spec key '" + std::string(key) + "': malformed integer '" + buffer +
         "'");
  }
  return value;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Comma list or `start:stop:step` range (value_i = start + i*step, endpoint
/// included when it lands within step/2 of the grid).
std::vector<double> parse_grid(std::string_view key, std::string_view text) {
  std::vector<double> grid;
  const std::string_view trimmed = trim(text);
  if (trimmed.empty()) return grid;
  if (trimmed.find(':') != std::string_view::npos) {
    const auto parts = split(trimmed, ':');
    if (parts.size() != 3) {
      fail("spec key '" + std::string(key) +
           "': range must be start:stop:step");
    }
    const double start = parse_double(key, parts[0]);
    const double stop = parse_double(key, parts[1]);
    const double step = parse_double(key, parts[2]);
    if (step <= 0.0 || stop < start) {
      fail("spec key '" + std::string(key) +
           "': range needs step > 0 and stop >= start");
    }
    for (int i = 0;; ++i) {
      const double value = start + i * step;
      if (value > stop + step / 2.0) break;
      grid.push_back(value);
      if (i > 1'000'000) {
        fail("spec key '" + std::string(key) + "': range too long");
      }
    }
    return grid;
  }
  for (std::string_view part : split(trimmed, ',')) {
    grid.push_back(parse_double(key, part));
  }
  return grid;
}

/// Shortest decimal form that parses back to exactly the same double, so
/// print -> parse round-trips bitwise (shared with the net grammars).
std::string print_double(double value) {
  return support::print_shortest_double(value);
}

std::string print_grid(const std::vector<double>& grid) {
  std::string out;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (i) out += ',';
    out += print_double(grid[i]);
  }
  return out;
}

std::string print_hex(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "0x%llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// series.<index>.<field> keys; returns false for non-series keys.
bool apply_series_key(ExperimentSpec& spec, std::string_view key,
                      std::string_view value) {
  constexpr std::string_view prefix = "series.";
  if (key.substr(0, prefix.size()) != prefix) return false;
  const std::string_view rest = key.substr(prefix.size());
  const std::size_t dot = rest.find('.');
  if (dot == std::string_view::npos) {
    fail("spec key '" + std::string(key) +
         "': series keys are series.<index>.<field>");
  }
  const int index = parse_int(key, rest.substr(0, dot));
  if (index < 0 || index >= 1000) {
    fail("spec key '" + std::string(key) + "': series index out of range");
  }
  if (spec.series.size() <= static_cast<std::size_t>(index)) {
    spec.series.resize(static_cast<std::size_t>(index) + 1);
  }
  SeriesSpec& series = spec.series[static_cast<std::size_t>(index)];
  const std::string_view field = rest.substr(dot + 1);
  if (field == "label") {
    series.label = std::string(trim(value));
  } else if (field == "rewards") {
    series.rewards = std::string(trim(value));
    (void)parse_reward_spec(series.rewards);  // validate eagerly
  } else if (field == "strategy") {
    series.strategy = std::string(trim(value));
    (void)parse_strategy_spec(series.strategy);
  } else {
    fail("unknown series field '" + std::string(field) + "' in spec key '" +
         std::string(key) + "'");
  }
  return true;
}

}  // namespace

std::string_view to_string(ExperimentKind kind) noexcept {
  for (const auto& [k, name] : kKindNames) {
    if (k == kind) return name;
  }
  return "unknown";
}

ExperimentKind experiment_kind_from_string(std::string_view s) {
  for (const auto& [kind, name] : kKindNames) {
    if (name == s) return kind;
  }
  std::string known;
  for (const auto& [kind, name] : kKindNames) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  fail("unknown experiment kind '" + std::string(s) + "' (known: " + known +
       ")");
}

SpecEntries parse_spec_entries(std::string_view text) {
  SpecEntries entries;
  std::size_t line_number = 0;
  for (std::string_view line : split(text, '\n')) {
    ++line_number;
    const std::size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      fail("spec line " + std::to_string(line_number) +
           ": expected 'key = value', got '" + std::string(line) + "'");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      fail("spec line " + std::to_string(line_number) + ": empty key");
    }
    entries.emplace_back(std::string(key), std::string(value));
  }
  return entries;
}

ExperimentSpec spec_from_entries(const SpecEntries& entries) {
  ExperimentSpec spec;
  for (const auto& [key, value] : entries) {
    if (key == "kind") {
      spec.kind = experiment_kind_from_string(trim(value));
    } else if (key == "title") {
      spec.title = std::string(trim(value));
    } else if (key == "gamma") {
      spec.gamma = parse_double(key, value);
    } else if (key == "scenario") {
      spec.scenario = parse_int(key, value);
    } else if (key == "alpha") {
      spec.alpha = parse_double(key, value);
    } else if (key == "alphas") {
      spec.alphas = parse_grid(key, value);
    } else if (key == "gammas") {
      spec.gammas = parse_grid(key, value);
    } else if (key == "ku_values") {
      spec.ku_values = parse_grid(key, value);
    } else if (key == "delays") {
      spec.delays = parse_grid(key, value);
    } else if (key == "rewards") {
      spec.rewards = std::string(trim(value));
      (void)parse_reward_spec(spec.rewards);  // validate eagerly
    } else if (key == "max_lead") {
      spec.max_lead = parse_int(key, value);
    } else if (key == "tolerance") {
      spec.tolerance = parse_double(key, value);
    } else if (key == "alpha_min") {
      spec.alpha_min = parse_double(key, value);
    } else if (key == "alpha_max") {
      spec.alpha_max = parse_double(key, value);
    } else if (key == "threshold_max_lead") {
      spec.threshold_max_lead = parse_int(key, value);
    } else if (key == "sim_runs") {
      spec.sim_runs = parse_int(key, value);
    } else if (key == "sim_blocks") {
      spec.sim_blocks = parse_u64(key, value);
    } else if (key == "sim_seed") {
      spec.sim_seed = parse_u64(key, value);
    } else if (key == "shares") {
      spec.shares = parse_grid(key, value);
    } else if (key == "delay") {
      spec.delay = parse_double(key, value);
    } else if (key == "net.topology") {
      spec.net_topology = std::string(trim(value));
      try {
        (void)net::parse_topology_spec(spec.net_topology);  // validate eagerly
      } catch (const std::invalid_argument& e) {
        fail("spec key 'net.topology': " + std::string(e.what()));
      }
    } else if (key == "net.nodes") {
      spec.net_nodes = parse_int(key, value);
    } else if (key == "net.latency") {
      spec.net_latency = std::string(trim(value));
      try {
        (void)net::parse_latency_spec(spec.net_latency);
      } catch (const std::invalid_argument& e) {
        fail("spec key 'net.latency': " + std::string(e.what()));
      }
    } else if (key == "net.relay") {
      spec.net_relay = std::string(trim(value));
      try {
        (void)net::relay_mode_from_string(spec.net_relay);
      } catch (const std::invalid_argument& e) {
        fail("spec key 'net.relay': " + std::string(e.what()));
      }
    } else if (key == "net.faults.drop") {
      spec.net_fault_drop = parse_double(key, value);
    } else if (key == "net.faults.churn") {
      spec.net_fault_churn = std::string(trim(value));
      try {
        (void)net::parse_churn_spec(spec.net_fault_churn);
      } catch (const std::invalid_argument& e) {
        fail("spec key 'net.faults.churn': " + std::string(e.what()));
      }
    } else if (key == "net.faults.partition") {
      spec.net_fault_partition = std::string(trim(value));
      try {
        (void)net::parse_partition_spec(spec.net_fault_partition);
      } catch (const std::invalid_argument& e) {
        fail("spec key 'net.faults.partition': " + std::string(e.what()));
      }
    } else if (key == "net.faults.eclipse") {
      spec.net_fault_eclipse = std::string(trim(value));
      try {
        (void)net::parse_eclipse_spec(spec.net_fault_eclipse);
      } catch (const std::invalid_argument& e) {
        fail("spec key 'net.faults.eclipse': " + std::string(e.what()));
      }
    } else if (key == "epoch_blocks") {
      spec.epoch_blocks = parse_u64(key, value);
    } else if (key == "epochs") {
      spec.epochs = parse_int(key, value);
    } else if (key == "phase1_blocks") {
      spec.phase1_blocks = parse_double(key, value);
    } else if (!apply_series_key(spec, key, value)) {
      // A spec file carrying study grammar is the single most common mix-up
      // -- point at the right subcommand instead of a bare unknown-key error.
      if (key == "study" || key.rfind("variant.", 0) == 0 ||
          key.rfind("matrix.", 0) == 0 || key.rfind("quick.", 0) == 0) {
        fail("spec key '" + key +
             "' is study grammar (study/variant./matrix./quick.): this file "
             "is a study, not a spec -- run it with `ethsm run --study FILE` "
             "or inspect the expansion with `ethsm expand FILE`");
      }
      fail("unknown spec key '" + key + "'");
    }
  }

  // Semantic validation shared by files, presets and --set overrides.
  if (spec.gamma < 0.0 || spec.gamma > 1.0) fail("gamma must lie in [0, 1]");
  if (spec.scenario != 1 && spec.scenario != 2) {
    fail("scenario must be 1 (regular rate) or 2 (regular+uncle rate)");
  }
  if (spec.alpha <= 0.0 || spec.alpha >= 1.0) fail("alpha must lie in (0, 1)");
  if (spec.max_lead < 1) fail("max_lead must be >= 1");
  if (spec.threshold_max_lead < 1) fail("threshold_max_lead must be >= 1");
  if (spec.tolerance <= 0.0) fail("tolerance must be > 0");
  if (spec.sim_runs < 0) fail("sim_runs must be >= 0");
  if (spec.sim_blocks == 0) fail("sim_blocks must be >= 1");
  if (spec.epochs < 1) fail("epochs must be >= 1");
  if (spec.epoch_blocks == 0) fail("epoch_blocks must be >= 1");
  if (spec.net_nodes < 1 || spec.net_nodes > 512) {
    fail("net.nodes must lie in [1, 512]");
  }
  if (spec.net_fault_drop < 0.0 || spec.net_fault_drop >= 1.0) {
    fail("net.faults.drop must lie in [0, 1)");
  }
  {
    const net::EclipseSpec eclipse =
        net::parse_eclipse_spec(spec.net_fault_eclipse);
    if (eclipse.enabled() &&
        eclipse.victim > static_cast<std::uint32_t>(spec.net_nodes)) {
      fail("net.faults.eclipse victim exceeds net.nodes");
    }
  }
  return spec;
}

ExperimentSpec parse_spec(std::string_view text) {
  return spec_from_entries(parse_spec_entries(text));
}

std::string print_spec(const ExperimentSpec& spec) {
  const ExperimentSpec defaults;
  std::ostringstream os;
  os << "kind = " << to_string(spec.kind) << "\n";
  auto put = [&os](std::string_view key, const std::string& value) {
    // Free-text values must survive the line-oriented grammar: '#' starts a
    // comment and '\n' a new entry, so a value containing either cannot
    // round-trip. Refuse loudly instead of printing a spec that re-parses
    // differently (the parse(print(s)) == s contract).
    if (value.find('#') != std::string::npos ||
        value.find('\n') != std::string::npos) {
      fail("spec key '" + std::string(key) +
           "': value contains '#' or a newline and cannot be serialized");
    }
    os << key << " = " << value << "\n";
  };
  if (spec.title != defaults.title) put("title", spec.title);
  if (spec.gamma != defaults.gamma) put("gamma", print_double(spec.gamma));
  if (spec.scenario != defaults.scenario) {
    put("scenario", std::to_string(spec.scenario));
  }
  if (spec.alpha != defaults.alpha) put("alpha", print_double(spec.alpha));
  if (!spec.alphas.empty()) put("alphas", print_grid(spec.alphas));
  if (!spec.gammas.empty()) put("gammas", print_grid(spec.gammas));
  if (!spec.ku_values.empty()) put("ku_values", print_grid(spec.ku_values));
  if (!spec.delays.empty()) put("delays", print_grid(spec.delays));
  if (spec.rewards != defaults.rewards) put("rewards", spec.rewards);
  if (spec.max_lead != defaults.max_lead) {
    put("max_lead", std::to_string(spec.max_lead));
  }
  if (spec.tolerance != defaults.tolerance) {
    put("tolerance", print_double(spec.tolerance));
  }
  if (spec.alpha_min != defaults.alpha_min) {
    put("alpha_min", print_double(spec.alpha_min));
  }
  if (spec.alpha_max != defaults.alpha_max) {
    put("alpha_max", print_double(spec.alpha_max));
  }
  if (spec.threshold_max_lead != defaults.threshold_max_lead) {
    put("threshold_max_lead", std::to_string(spec.threshold_max_lead));
  }
  if (spec.sim_runs != defaults.sim_runs) {
    put("sim_runs", std::to_string(spec.sim_runs));
  }
  if (spec.sim_blocks != defaults.sim_blocks) {
    put("sim_blocks", std::to_string(spec.sim_blocks));
  }
  if (spec.sim_seed != defaults.sim_seed) {
    put("sim_seed", print_hex(spec.sim_seed));
  }
  if (!spec.shares.empty()) put("shares", print_grid(spec.shares));
  if (spec.delay != defaults.delay) put("delay", print_double(spec.delay));
  if (spec.net_topology != defaults.net_topology) {
    put("net.topology", spec.net_topology);
  }
  if (spec.net_nodes != defaults.net_nodes) {
    put("net.nodes", std::to_string(spec.net_nodes));
  }
  if (spec.net_latency != defaults.net_latency) {
    put("net.latency", spec.net_latency);
  }
  if (spec.net_relay != defaults.net_relay) put("net.relay", spec.net_relay);
  if (spec.net_fault_drop != defaults.net_fault_drop) {
    put("net.faults.drop", print_double(spec.net_fault_drop));
  }
  if (spec.net_fault_churn != defaults.net_fault_churn) {
    put("net.faults.churn", spec.net_fault_churn);
  }
  if (spec.net_fault_partition != defaults.net_fault_partition) {
    put("net.faults.partition", spec.net_fault_partition);
  }
  if (spec.net_fault_eclipse != defaults.net_fault_eclipse) {
    put("net.faults.eclipse", spec.net_fault_eclipse);
  }
  if (spec.epoch_blocks != defaults.epoch_blocks) {
    put("epoch_blocks", std::to_string(spec.epoch_blocks));
  }
  if (spec.epochs != defaults.epochs) {
    put("epochs", std::to_string(spec.epochs));
  }
  if (spec.phase1_blocks != defaults.phase1_blocks) {
    put("phase1_blocks", print_double(spec.phase1_blocks));
  }
  for (std::size_t i = 0; i < spec.series.size(); ++i) {
    const SeriesSpec& series = spec.series[i];
    const SeriesSpec series_defaults;
    const std::string prefix = "series." + std::to_string(i) + ".";
    put(prefix + "label", series.label);
    if (series.rewards != series_defaults.rewards) {
      put(prefix + "rewards", series.rewards);
    }
    if (series.strategy != series_defaults.strategy) {
      put(prefix + "strategy", series.strategy);
    }
  }
  return os.str();
}

void apply_override(SpecEntries& entries, std::string_view assignment) {
  const std::size_t eq = assignment.find('=');
  if (eq == std::string_view::npos) {
    fail("--set expects key=value, got '" + std::string(assignment) + "'");
  }
  const std::string_view key = trim(assignment.substr(0, eq));
  if (key.empty()) fail("--set expects key=value with a non-empty key");
  entries.emplace_back(std::string(key),
                       std::string(trim(assignment.substr(eq + 1))));
}

rewards::RewardConfig parse_reward_spec(std::string_view text) {
  const std::string_view trimmed = trim(text);
  if (trimmed == "byzantium") return rewards::RewardConfig::ethereum_byzantium();
  if (trimmed == "bitcoin") return rewards::RewardConfig::bitcoin();
  if (trimmed.rfind("flat:", 0) == 0) {
    const auto parts = split(trimmed.substr(5), ':');
    if (parts.size() > 2) {
      fail("reward spec '" + std::string(trimmed) +
           "': want flat:<ku> or flat:<ku>:<horizon>");
    }
    const double ku = parse_double("rewards", parts[0]);
    const int horizon = parts.size() == 2 ? parse_int("rewards", parts[1])
                                          : rewards::kMaxUncleDistance;
    if (ku < 0.0) fail("reward spec: flat Ku must be >= 0");
    if (horizon < 1) fail("reward spec: flat horizon must be >= 1");
    return rewards::RewardConfig::ethereum_flat(ku, horizon);
  }
  if (trimmed.rfind("table:", 0) == 0) {
    const std::vector<double> values =
        parse_grid("rewards", trimmed.substr(6));
    if (values.empty()) fail("reward spec: table needs at least one value");
    for (double v : values) {
      if (v < 0.0) fail("reward spec: table values must be >= 0");
    }
    rewards::RewardConfig config;
    config.uncle = std::make_shared<rewards::TableUncleSchedule>(
        values, "Ku table " + std::string(trimmed.substr(6)));
    config.nephew = rewards::NephewRewardSchedule{
        rewards::kEthereumNephewReward, static_cast<int>(values.size())};
    return config;
  }
  fail("unknown reward spec '" + std::string(trimmed) +
       "' (want byzantium, bitcoin, flat:<ku>[:<horizon>] or "
       "table:<v1>,<v2>,...)");
}

miner::StubbornConfig parse_strategy_spec(std::string_view text) {
  miner::StubbornConfig config;
  const std::string_view trimmed = trim(text);
  if (trimmed == "selfish") return config;  // Algorithm 1: all knobs off
  for (std::string_view part : split(trimmed, '+')) {
    part = trim(part);
    if (part == "lead") {
      config.lead_stubborn = true;
    } else if (part == "fork") {
      config.equal_fork_stubborn = true;
    } else if (part.rfind("trail:", 0) == 0) {
      config.trail_stubbornness = parse_int("strategy", part.substr(6));
      if (config.trail_stubbornness < 1) {
        fail("strategy spec: trail:<j> needs j >= 1");
      }
    } else {
      fail("unknown strategy component '" + std::string(part) +
           "' (want selfish, lead, fork, trail:<j> or a +combination)");
    }
  }
  return config;
}

}  // namespace ethsm::api
