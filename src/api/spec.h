// Declarative experiment API: one spec type for every paper figure/table and
// every scenario the library can express (ROADMAP: "as many scenarios as you
// can imagine").
//
// An ExperimentSpec names a strategy/experiment kind, a reward schedule, a
// network model (gamma, or propagation delay + hash shares), grid axes and
// sim/Markov settings. Specs serialize to and from a flat key=value text
// format ("spec files"), so a new scenario -- a different uncle schedule, a
// stubborn variant, a delay distribution -- is ten lines of text instead of a
// new binary. api::run (runner.h) executes a spec by dispatching to the
// existing sweep drivers; api/presets.h registers the paper's figures/tables
// as named specs.
//
// Grammar (parse_spec):
//   * one `key = value` per line; blank lines ignored; `#` starts a comment
//   * numbers are plain C++ literals (seeds may be hex: 0x5e1f15)
//   * grids are comma lists (`0.1,0.2,0.3`) or ranges (`start:stop:step`,
//     endpoint included when it lands on the grid)
//   * reward schedules are compact strings: `byzantium`, `bitcoin`,
//     `flat:<ku>`, `flat:<ku>:<horizon>`, `table:<v1>,<v2>,...`
//   * strategies: `selfish` (Algorithm 1), or any `+`-combination of `lead`,
//     `fork`, `trail:<j>` (stubborn variants)
//   * multi-series experiments use indexed keys: `series.0.label = ...`,
//     `series.0.rewards = ...`, `series.0.strategy = ...`
// Unknown keys and malformed values raise SpecError -- the same validation
// backs the CLI's `--set key=value` overrides.

#ifndef ETHSM_API_SPEC_H
#define ETHSM_API_SPEC_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "miner/stubborn_policy.h"
#include "rewards/reward_schedule.h"

namespace ethsm::api {

/// What a spec runs. Each kind maps onto one of the library's sweep drivers;
/// together they cover every bench regenerator plus the delay-network
/// substrate (see runner.cpp for the dispatch).
enum class ExperimentKind {
  revenue,         ///< revenue vs alpha, 1+ reward series (Fig. 8 / Fig. 9)
  threshold,       ///< profitability threshold vs gamma (Fig. 10)
  reward_design,   ///< thresholds across schedules at fixed gamma (Sec. VI)
  uncle_distance,  ///< uncle referencing-distance distribution (Table II)
  reward_table,    ///< the static Table I inventory
  stubborn_sim,    ///< stubborn-variant revenue vs alpha by simulation
  timeline,        ///< time-to-profit of the attack per alpha (extension)
  retarget,        ///< live difficulty retargeting trajectory (extension)
  delay,           ///< all-honest delay network sweep (uncle economics)
  net,             ///< P2P network simulation with endogenous gamma (src/net)
};

[[nodiscard]] std::string_view to_string(ExperimentKind kind) noexcept;
[[nodiscard]] ExperimentKind experiment_kind_from_string(std::string_view s);

/// Raised on any syntactic or semantic spec problem (unknown key, malformed
/// value, bad series indexing, out-of-range parameter).
class SpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One series of a multi-series experiment: a labelled reward schedule
/// (revenue / reward_design kinds) or mining strategy (stubborn_sim kind).
struct SeriesSpec {
  std::string label;
  std::string rewards = "byzantium";
  std::string strategy = "selfish";

  [[nodiscard]] bool operator==(const SeriesSpec&) const = default;
};

/// The declarative experiment description. Fields not used by a spec's kind
/// are simply ignored by the runner; print_spec emits only the fields that
/// differ from this struct's defaults, so specs stay ten lines, not fifty.
struct ExperimentSpec {
  ExperimentKind kind = ExperimentKind::revenue;
  std::string title;

  // Network / attack model.
  double gamma = 0.5;    ///< honest hash fraction on the pool's branch
  int scenario = 1;      ///< difficulty scenario: 1 (pre-EIP100) or 2 (EIP100)
  double alpha = 0.3;    ///< pool share for single-alpha kinds (retarget)

  // Grid axes (empty = the kind's default grid, documented per kind).
  std::vector<double> alphas;     ///< revenue/stubborn_sim/timeline/uncle axes
  std::vector<double> gammas;     ///< threshold axis
  std::vector<double> ku_values;  ///< reward_design flat-Ku axis
  std::vector<double> delays;     ///< delay-network axis
  std::vector<SeriesSpec> series; ///< labelled schedules / strategies

  // Single-schedule kinds (threshold, uncle_distance, timeline, retarget,
  // delay, stubborn_sim) read this; multi-series kinds read series[i].rewards.
  std::string rewards = "byzantium";

  // Markov settings.
  int max_lead = 80;               ///< stationary truncation (curve kinds)
  double tolerance = 1e-6;         ///< threshold-search bisection tolerance
  double alpha_min = 1e-4;         ///< threshold-search bracket
  double alpha_max = 0.4999;
  int threshold_max_lead = 60;     ///< truncation inside threshold searches

  // Simulation settings.
  int sim_runs = 0;                ///< 0 = no Monte-Carlo cross-check
  std::uint64_t sim_blocks = 100'000;
  std::uint64_t sim_seed = 0x5e1f15ULL;

  // Delay-network model.
  std::vector<double> shares;      ///< hash shares; empty = 20 equal miners
  double delay = 0.15;             ///< propagation delay / block interval

  // P2P network model (`net` kind; grammars in net/topology.h, net/net_sim.h).
  std::string net_topology = "complete";  ///< complete|star|ring|random:p|...
  int net_nodes = 16;                     ///< honest miner nodes (attacker extra)
  std::string net_latency = "fixed:0";    ///< fixed:ms|uniform:lo:hi|exp:mean
  std::string net_relay = "push";         ///< push|announce relay forwarding

  // Seeded fault injection on the P2P network (grammars in net/faults.h).
  double net_fault_drop = 0.0;              ///< per-message loss prob [0, 1)
  std::string net_fault_churn = "off";      ///< off|<mean_up_ms>:<mean_down_ms>
  std::string net_fault_partition = "off";  ///< off|<start>:<heal>[:<cut>]
  std::string net_fault_eclipse = "off";    ///< off|<victim>:<delay>[:<drop>]

  // Retargeting model.
  std::uint64_t epoch_blocks = 500;
  int epochs = 60;

  // Timeline model.
  double phase1_blocks = 2016.0;   ///< stale-difficulty phase length

  [[nodiscard]] bool operator==(const ExperimentSpec&) const = default;
};

/// Ordered key=value pairs: the syntactic layer under a spec. Later entries
/// for the same key win (how --set overrides earlier values).
using SpecEntries = std::vector<std::pair<std::string, std::string>>;

/// Text -> entries. Syntax errors only (comment/`=` handling).
[[nodiscard]] SpecEntries parse_spec_entries(std::string_view text);

/// Entries -> typed spec. Unknown keys and malformed values raise SpecError.
[[nodiscard]] ExperimentSpec spec_from_entries(const SpecEntries& entries);

/// Text -> typed spec (parse_spec_entries + spec_from_entries).
[[nodiscard]] ExperimentSpec parse_spec(std::string_view text);

/// Canonical text form: only fields differing from the defaults, in a fixed
/// key order. parse_spec(print_spec(s)) == s for every valid spec (asserted
/// by tests/api/spec_test.cpp).
[[nodiscard]] std::string print_spec(const ExperimentSpec& spec);

/// Appends one `key=value` --set assignment; SpecError on a missing '='.
/// Unknown-key validation happens in spec_from_entries.
void apply_override(SpecEntries& entries, std::string_view assignment);

/// Compact reward-schedule strings (see grammar above) -> RewardConfig.
[[nodiscard]] rewards::RewardConfig parse_reward_spec(std::string_view text);

/// Strategy strings -> StubbornConfig ("selfish" = all knobs off, which is
/// exactly Algorithm 1).
[[nodiscard]] miner::StubbornConfig parse_strategy_spec(std::string_view text);

}  // namespace ethsm::api

#endif  // ETHSM_API_SPEC_H
