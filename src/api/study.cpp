#include "api/study.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

#include "api/presets.h"
#include "api/render.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/retry.h"
#include "support/trace.h"

namespace ethsm::api {

namespace fs = std::filesystem;

namespace {

using support::json_escape;

[[noreturn]] void fail(const std::string& message) { throw SpecError(message); }

/// Study/variant names double as directory components, so they are kept to a
/// filesystem-portable alphabet up front instead of being sanitized later.
bool valid_name(std::string_view name) {
  if (name.empty() || name.size() > 128) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '.' && c != '_' &&
        c != '-') {
      return false;
    }
  }
  return name != "." && name != "..";
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Matrix axis values use '|' as the separator because ',' already separates
/// grid elements inside a single value (alphas = 0.1,0.2 is ONE cell).
std::vector<std::string> split_axis_values(std::string_view key,
                                           std::string_view text) {
  std::vector<std::string> values;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find('|', start);
    const std::string_view part =
        trim(text.substr(start, pos == std::string_view::npos ? std::string_view::npos
                                                              : pos - start));
    if (part.empty()) {
      fail("study key '" + std::string(key) +
           "': empty matrix value (want v1|v2|...)");
    }
    values.push_back(std::string(part));
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return values;
}

/// Directory form of an entry name: portable characters pass through, ", "
/// separators collapse to ",", everything else (':' in reward specs, '|')
/// becomes '-'.
std::string dir_of(std::string_view name) {
  std::string dir;
  dir.reserve(name.size());
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '_' ||
        c == '=' || c == '+' || c == '-' || c == ',') {
      dir += c;
    } else if (c == ' ') {
      continue;
    } else {
      dir += '-';
    }
  }
  return dir;
}

void write_file(const fs::path& path, const std::string& payload) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write " + path.string() + ": " +
                             std::strerror(errno));
  }
  out << payload;
  out.flush();
  if (!out) {
    throw std::runtime_error("short write to " + path.string());
  }
}

using support::hex64;

/// Entry directories a previous run recorded in out_root's manifest. Used to
/// clean up cells that an edited study no longer expands to -- manifest-
/// guided so only directories a study run created are ever touched (`--all`
/// writes straight into a user-chosen --out). The scan is textual but exact:
/// entry dirs are restricted to a portable alphabet with no '"' or escapes.
std::vector<std::string> manifest_dirs(const fs::path& manifest_path) {
  std::ifstream in(manifest_path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  const std::string text = os.str();
  std::vector<std::string> dirs;
  const std::string needle = "\"dir\": \"";
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos)) {
    pos += needle.size();
    const std::size_t end = text.find('"', pos);
    if (end == std::string::npos) break;
    dirs.push_back(text.substr(pos, end - pos));
    pos = end;
  }
  return dirs;
}

}  // namespace

StudySpec parse_study(std::string_view text) {
  StudySpec study;
  std::set<std::string, std::less<>> closed_variants;  // contiguity check
  std::string open_variant;

  for (const auto& [key, value] : parse_spec_entries(text)) {
    // A base/matrix/quick key between two runs of the same variant block does
    // not close it; only the start of a *different* variant block does.
    const bool is_variant_key = key.rfind("variant.", 0) == 0;

    if (key == "study") {
      if (!study.name.empty()) fail("duplicate 'study = ...' line");
      study.name = std::string(trim(value));
      if (!valid_name(study.name)) {
        fail("study name '" + study.name +
             "' must be non-empty [A-Za-z0-9._-] (it names the results "
             "directory)");
      }
    } else if (key == "title") {
      study.title = std::string(trim(value));
    } else if (key.rfind("matrix.", 0) == 0) {
      const std::string axis_key = key.substr(std::strlen("matrix."));
      if (axis_key.empty()) fail("study key 'matrix.' needs a spec key");
      for (const StudyAxis& axis : study.matrix) {
        if (axis.key == axis_key) {
          fail("duplicate matrix axis 'matrix." + axis_key + "'");
        }
      }
      study.matrix.push_back({axis_key, split_axis_values(key, value)});
    } else if (is_variant_key) {
      const std::string rest = key.substr(std::strlen("variant."));
      const std::size_t dot = rest.find('.');
      if (dot == std::string::npos || dot == 0 || dot + 1 >= rest.size()) {
        fail("study key '" + key +
             "': variant keys are variant.<name>.<spec key>");
      }
      const std::string name = rest.substr(0, dot);
      if (!valid_name(name)) {
        fail("variant name '" + name +
             "' must be non-empty [A-Za-z0-9._-] (it names a results "
             "directory)");
      }
      if (name != open_variant) {
        if (closed_variants.count(name) != 0) {
          fail("duplicate variant '" + name +
               "' (variant blocks must be contiguous; merge the keys into "
               "one block)");
        }
        if (!open_variant.empty()) closed_variants.insert(open_variant);
        open_variant = name;
        study.variants.push_back({name, {}});
      }
      study.variants.back().overrides.emplace_back(rest.substr(dot + 1),
                                                   std::string(trim(value)));
    } else if (key.rfind("quick.", 0) == 0) {
      const std::string quick_key = key.substr(std::strlen("quick."));
      if (quick_key.empty()) fail("study key 'quick.' needs a spec key");
      study.quick_overrides.emplace_back(quick_key, std::string(trim(value)));
    } else {
      study.base.emplace_back(key, std::string(trim(value)));
    }
  }

  if (study.name.empty()) {
    fail("a study file needs a 'study = <name>' line "
         "(plain spec files run with `ethsm run --spec`)");
  }
  return study;
}

std::vector<StudyEntry> expand_study(const StudySpec& study, bool quick,
                                     const std::vector<std::string>& overrides) {
  std::vector<StudyVariant> variants = study.variants;
  if (variants.empty()) variants.push_back({"base", {}});

  std::size_t cells = variants.size();
  for (const StudyAxis& axis : study.matrix) {
    cells *= axis.values.size();
    if (cells > 10'000) {
      fail("study '" + study.name +
           "' expands to more than 10000 specs; shrink the matrix");
    }
  }

  std::vector<StudyEntry> entries;
  entries.reserve(cells);
  std::set<std::string> dirs;
  // Row-major odometer over the matrix axes, last axis fastest -- the
  // documented deterministic order.
  std::vector<std::size_t> index(study.matrix.size(), 0);
  for (const StudyVariant& variant : variants) {
    std::fill(index.begin(), index.end(), 0);
    while (true) {
      SpecEntries cell = study.base;
      cell.insert(cell.end(), variant.overrides.begin(),
                  variant.overrides.end());
      std::string name = variant.name;
      for (std::size_t a = 0; a < study.matrix.size(); ++a) {
        const StudyAxis& axis = study.matrix[a];
        cell.emplace_back(axis.key, axis.values[index[a]]);
        name += ", " + axis.key + "=" + axis.values[index[a]];
      }
      if (quick) {
        cell.insert(cell.end(), study.quick_overrides.begin(),
                    study.quick_overrides.end());
      }
      for (const std::string& assignment : overrides) {
        apply_override(cell, assignment);
      }

      StudyEntry entry;
      try {
        entry.spec = spec_from_entries(cell);
      } catch (const SpecError& e) {
        fail("study '" + study.name + "', spec '" + name + "': " + e.what());
      }
      if (entry.spec.title.empty()) {
        const std::string& base_title =
            study.title.empty() ? study.name : study.title;
        entry.spec.title =
            cells == 1 ? base_title : base_title + " [" + name + "]";
      }
      entry.name = std::move(name);
      entry.dir = dir_of(entry.name);
      if (!dirs.insert(entry.dir).second) {
        fail("study '" + study.name + "': entries '" + entry.name +
             "' and another cell collide on results directory '" + entry.dir +
             "'");
      }
      entries.push_back(std::move(entry));

      // Advance the odometer; done when it wraps (or there are no axes).
      bool wrapped = true;
      for (std::size_t a = study.matrix.size(); a-- > 0;) {
        if (++index[a] < study.matrix[a].values.size()) {
          wrapped = false;
          break;
        }
        index[a] = 0;
      }
      if (wrapped) break;
    }
  }
  return entries;
}

std::vector<StudyEntry> paper_study_entries(bool quick) {
  std::vector<StudyEntry> entries;
  for (const Preset& preset : presets()) {
    StudyEntry entry;
    entry.name = preset.name;
    entry.dir = preset.name;
    entry.spec = preset.spec(quick);
    entries.push_back(std::move(entry));
  }
  return entries;
}

StudyResult run_study(std::string name, std::string title,
                      const std::vector<StudyEntry>& entries,
                      const RunOptions& options, const StudyProgress& progress,
                      support::ShardSpec cell_shard,
                      const StudyFailurePolicy& failure) {
  StudyResult study;
  study.name = std::move(name);
  study.title = std::move(title);
  study.checkpoint_enabled = options.checkpoint.enabled();
  study.cell_shard = cell_shard;
  study.entries.reserve(entries.size());

  // One budget for the whole study: every spec sees what the previous ones
  // left over, so --max-new-jobs interrupts the study as a unit and a resume
  // picks up at the first unfinished sweep.
  support::SweepCheckpoint remaining = options.checkpoint;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const StudyEntry& entry = entries[i];
    StudyEntryResult entry_result;
    entry_result.name = entry.name;
    entry_result.dir = entry.dir;
    entry_result.cell_owner =
        static_cast<std::uint32_t>(i % cell_shard.count);
    if (!cell_shard.owns(i)) {
      // Not this shard's cell: record provenance (so the manifest names the
      // assignment and GC keep-sets still see the fingerprints) but run
      // nothing -- unlike job-level striping, a foreign cell costs zero work.
      entry_result.skipped = true;
      entry_result.result.spec = entry.spec;
      entry_result.result.spec_fingerprint = spec_fingerprint(entry.spec);
      entry_result.result.sweep_fingerprints = sweep_fingerprints(entry.spec);
      study.entries.push_back(std::move(entry_result));
    } else {
      RunOptions entry_options;
      entry_options.checkpoint = remaining;
      support::RetryPolicy policy;
      policy.attempts = std::max(failure.retries, 0) + 1;
      policy.initial_backoff_ms = failure.initial_backoff_ms;
      policy.sleeper = failure.sleeper;
      // Observability only (fills StudyEntryTiming / a study-cell span);
      // entries run sequentially, so global-registry deltas around the cell
      // are exactly this cell's solver work. Write-only: nothing below reads
      // these values back into the run.
      support::trace::Span cell_span("study.cell " + entry.name);
      auto& reg = support::metrics::registry();
      support::metrics::Counter& solver_solves =
          reg.counter("ethsm_solver_solves_total");
      support::metrics::Counter& solver_iters =
          reg.counter("ethsm_solver_iterations_total");
      support::metrics::Counter& solver_fallbacks =
          reg.counter("ethsm_solver_fallbacks_total");
      const std::uint64_t solves_before = solver_solves.value();
      const std::uint64_t iters_before = solver_iters.value();
      const std::uint64_t fallbacks_before = solver_fallbacks.value();
      const auto cell_start = std::chrono::steady_clock::now();
      try {
        ExperimentResult result = support::retry(policy, [&] {
          ++entry_result.attempts;
          return run(entry.spec, entry_options);
        });
        if (remaining.max_new_jobs != static_cast<std::size_t>(-1)) {
          remaining.max_new_jobs -=
              std::min(result.outcome.computed, remaining.max_new_jobs);
        }
        study.outcome.merge(result.outcome);
        entry_result.timing.jobs_computed = result.outcome.computed;
        entry_result.timing.jobs_loaded = result.outcome.loaded;
        entry_result.result = std::move(result);
      } catch (const std::exception& e) {
        // Fail-soft: one bad cell must not discard its siblings' work. The
        // failure (and its error text) lands in the manifest; the CLI turns
        // any_failed() into a nonzero exit after the study finishes.
        entry_result.failed = true;
        entry_result.error = e.what();
        entry_result.result.spec = entry.spec;
        try {
          entry_result.result.spec_fingerprint = spec_fingerprint(entry.spec);
          entry_result.result.sweep_fingerprints =
              sweep_fingerprints(entry.spec);
        } catch (const std::exception&) {
          // A spec broken enough to fail fingerprinting still gets its
          // failure recorded -- just without provenance hashes.
        }
      }
      entry_result.timing.wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - cell_start)
              .count();
      entry_result.timing.solver_solves = solver_solves.value() - solves_before;
      entry_result.timing.solver_iterations =
          solver_iters.value() - iters_before;
      entry_result.timing.solver_fallbacks =
          solver_fallbacks.value() - fallbacks_before;
      study.entries.push_back(std::move(entry_result));
    }
    if (progress) {
      progress(study.entries.size(), entries.size(), study.entries.back());
    }
  }
  return study;
}

void write_study_results(const StudyResult& study,
                         const std::string& out_root) {
  std::error_code ec;
  fs::create_directories(out_root, ec);
  if (ec) {
    throw std::runtime_error("cannot create results directory " + out_root +
                             ": " + ec.message());
  }

  // An edited study (renamed/removed variant, shrunk matrix) must not leave
  // the old cells' directories behind to contradict the new manifest.
  std::set<std::string> current_dirs;
  for (const StudyEntryResult& entry : study.entries) {
    current_dirs.insert(entry.dir);
  }
  for (const std::string& old :
       manifest_dirs(fs::path(out_root) / "manifest.json")) {
    if (current_dirs.count(old) != 0) continue;
    if (old.empty() || old == "." || old == ".." ||
        old.find('/') != std::string::npos ||
        old.find('\\') != std::string::npos) {
      continue;  // never follow a path out of out_root
    }
    fs::remove_all(fs::path(out_root) / old, ec);
  }

  std::ostringstream manifest;
  manifest << "{\n";
  manifest << "  \"study\": \"" << json_escape(study.name) << "\",\n";
  manifest << "  \"title\": \"" << json_escape(study.title) << "\",\n";
  manifest << "  \"complete\": " << (study.complete() ? "true" : "false")
           << ",\n";
  if (!study.cell_shard.is_whole_sweep()) {
    manifest << "  \"cell_shard\": \"" << study.cell_shard.index << "/"
             << study.cell_shard.count << "\",\n";
  }
  manifest << "  \"entries\": [";

  for (std::size_t i = 0; i < study.entries.size(); ++i) {
    const StudyEntryResult& entry = study.entries[i];
    std::vector<std::string> files;
    if (entry.failed) {
      // A failed cell writes no artefacts; an earlier successful run may have
      // left a directory here, and it must not survive to contradict the
      // manifest's status=failed record.
      fs::remove_all(fs::path(out_root) / entry.dir, ec);
    } else if (!entry.skipped) {
      const fs::path dir = fs::path(out_root) / entry.dir;
      fs::create_directories(dir, ec);
      if (ec) {
        throw std::runtime_error("cannot create results directory " +
                                 dir.string() + ": " + ec.message());
      }

      // Artefact files fold the loaded-vs-computed split away (see
      // provenance_normalized): a resumed study and a fresh one must write
      // bitwise-identical trees. Progress provenance stays on stdout.
      const ExperimentResult view = provenance_normalized(entry.result);
      {
        std::ostringstream os;
        render_text(view, os);
        write_file(dir / "table.txt", os.str());
        files.push_back("table.txt");
      }
      const std::string csv =
          view.complete() ? render_csv(view) : std::string();
      if (!csv.empty()) {
        write_file(dir / "data.csv", csv);
        files.push_back("data.csv");
      } else {
        // An earlier complete run may have left a data.csv in this directory;
        // a file the manifest no longer lists must not survive to contradict
        // the sibling data.json.
        fs::remove(dir / "data.csv", ec);
      }
      write_file(dir / "data.json", render_json(view));
      files.push_back("data.json");
    }
    // A skipped cell (foreign cell shard) gets a manifest record -- with the
    // shard assignment -- but no files and no directory; whatever a previous
    // merge pass wrote there is left untouched.

    manifest << (i ? ",\n" : "\n");
    manifest << "    {\"name\": \"" << json_escape(entry.name)
             << "\", \"dir\": \"" << json_escape(entry.dir)
             << "\", \"kind\": \"" << to_string(entry.result.spec.kind)
             << "\",\n     \"title\": \"" << json_escape(entry.result.spec.title)
             << "\",\n     \"spec_fingerprint\": \""
             << hex64(entry.result.spec_fingerprint)
             << "\", \"complete\": "
             << (entry.result.complete() && !entry.skipped && !entry.failed
                     ? "true"
                     : "false");
    manifest << ", \"status\": \""
             << (entry.failed ? "failed" : entry.skipped ? "skipped" : "ok")
             << '"';
    if (entry.failed) {
      manifest << ",\n     \"error\": \"" << json_escape(entry.error)
               << "\", \"attempts\": " << entry.attempts;
    } else if (!entry.skipped) {
      // Deterministic job count of the cell's sweeps (same value fresh or
      // resumed): what `ethsm orchestrate` and shard planners size units by.
      manifest << ", \"jobs\": " << entry.result.outcome.jobs_total;
    }
    if (!entry.skipped) {
      // Run-mode-dependent accounting lives in ONE flat object so bitwise
      // tree comparisons can mask it (`,\s*"timing": \{[^}]*\}` -- see
      // StudyEntryTiming in study.h and tools/compare_trees.py). Keys must
      // stay flat: no nested braces, no strings containing '}' or '"dir"'.
      char wall[32];
      std::snprintf(wall, sizeof(wall), "%.3f", entry.timing.wall_ms);
      manifest << ",\n     \"timing\": {\"wall_ms\": " << wall
               << ", \"jobs_computed\": " << entry.timing.jobs_computed
               << ", \"jobs_loaded\": " << entry.timing.jobs_loaded
               << ", \"solver_solves\": " << entry.timing.solver_solves
               << ", \"solver_iterations\": " << entry.timing.solver_iterations
               << ", \"solver_fallbacks\": " << entry.timing.solver_fallbacks
               << "}";
    }
    if (!study.cell_shard.is_whole_sweep()) {
      manifest << ", \"cell_owner\": " << entry.cell_owner
               << ", \"skipped\": " << (entry.skipped ? "true" : "false");
    }
    manifest << ",\n     \"sweep_fingerprints\": [";
    for (std::size_t f = 0; f < entry.result.sweep_fingerprints.size(); ++f) {
      manifest << (f ? ", " : "") << '"'
               << hex64(entry.result.sweep_fingerprints[f]) << '"';
    }
    manifest << "], \"files\": [";
    for (std::size_t f = 0; f < files.size(); ++f) {
      manifest << (f ? ", " : "") << '"' << json_escape(files[f]) << '"';
    }
    manifest << "]}";
  }
  manifest << "\n  ]\n}\n";
  write_file(fs::path(out_root) / "manifest.json", manifest.str());
}

}  // namespace ethsm::api
