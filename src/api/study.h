// Study layer: one file = a *matrix* of ExperimentSpecs (ROADMAP: "spec-level
// sweep composition").
//
// A study file is a base spec plus three kinds of study-level keys, all using
// the same line-oriented `key = value` grammar as spec files (parse_spec):
//
//   study = fig9_sec6_crossover      # required: the study's name (and the
//                                    # results subdirectory ethsm writes)
//   title = ...                      # optional display title
//
//   # every plain spec key is the *base* spec, shared by all cells:
//   kind = revenue
//   alphas = 0.1:0.45:0.05
//
//   # named variant blocks: each is one branch overriding the base
//   variant.byzantium.rewards = byzantium
//   variant.ritz.rewards = table:1.0,0.5,0.25,0.125
//
//   # matrix axes: a cross-product over spec keys, values separated by '|'
//   matrix.gamma = 0|0.5|1
//
//   # quick overrides, applied only when expanding with quick = true
//   quick.sim_runs = 2
//
// Expansion is deterministic: variants in file order (a single implicit
// variant named "base" when there are none), then the matrix axes in file
// order with the *last* axis varying fastest (row-major). Each cell's
// entries are concatenated base < variant < matrix < quick < --set overrides
// and resolved through the exact spec_from_entries path `ethsm run --set`
// uses, so unknown matrix/variant keys and malformed values are SpecErrors
// with the same messages, and every expanded spec round-trips through
// print_spec.
//
// run_study executes the expansion through run(spec) with ONE shared
// checkpoint directory (sweep fingerprints already disambiguate the drivers'
// stores), one rolled-up SweepOutcome, and a cross-spec --max-new-jobs
// budget; write_study_results renders one results tree
//   <out>/<entry-dir>/{table.txt,data.csv,data.json} + <out>/manifest.json
// whose files are provenance-stable: an interrupted-and-resumed study writes
// a tree bitwise-identical to an uninterrupted one (asserted under
// `ctest -L study`).

#ifndef ETHSM_API_STUDY_H
#define ETHSM_API_STUDY_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "api/result.h"
#include "api/runner.h"
#include "api/spec.h"

namespace ethsm::api {

/// One matrix axis: a spec key and the values it cross-products over.
struct StudyAxis {
  std::string key;
  std::vector<std::string> values;

  [[nodiscard]] bool operator==(const StudyAxis&) const = default;
};

/// One named variant block: entries overriding the base spec.
struct StudyVariant {
  std::string name;
  SpecEntries overrides;

  [[nodiscard]] bool operator==(const StudyVariant&) const = default;
};

/// The parsed (unexpanded) study: base entries + variants + matrix axes.
struct StudySpec {
  std::string name;
  std::string title;
  SpecEntries base;              ///< plain spec keys, in file order
  std::vector<StudyVariant> variants;  ///< file order of first appearance
  std::vector<StudyAxis> matrix;       ///< file order of first appearance
  SpecEntries quick_overrides;   ///< applied only when expanding quick
};

/// One expanded cell: a concrete spec plus its human-readable name and the
/// filesystem-safe directory it renders into.
struct StudyEntry {
  std::string name;  ///< "ritz, gamma=0.5" -- manifest / expand output
  std::string dir;   ///< sanitized name, unique within the study
  ExperimentSpec spec;
};

/// Text -> StudySpec. SpecError on grammar problems: missing `study = ...`,
/// malformed study/variant names, duplicate variant names, duplicate or
/// empty matrix axes. Base-spec key validation happens at expansion.
[[nodiscard]] StudySpec parse_study(std::string_view text);

/// Deterministic ordered expansion (see header comment for the order).
/// `overrides` are --set assignments applied last to every cell. Unknown
/// keys anywhere -- base, variant, matrix, quick, overrides -- are
/// SpecErrors via spec_from_entries.
[[nodiscard]] std::vector<StudyEntry> expand_study(
    const StudySpec& study, bool quick,
    const std::vector<std::string>& overrides = {});

/// The built-in "paper" study behind `ethsm run --all`: every registered
/// preset as one entry, in registry order.
[[nodiscard]] std::vector<StudyEntry> paper_study_entries(bool quick);

/// Observability record for one executed cell. Everything in here is
/// run-mode-dependent (wall time is nondeterministic; job and solver counts
/// differ between fresh and resumed runs), so it is rendered into the
/// manifest as ONE flat `"timing": {...}` object -- flat numeric keys, no
/// nested braces -- that bitwise-tree comparisons mask with the regex
/// `,\s*"timing": \{[^}]*\}` (tools/compare_trees.py and the study tests).
/// Never put deterministic result data in here.
struct StudyEntryTiming {
  double wall_ms = 0.0;            ///< run(spec) wall time, retries included
  std::uint64_t jobs_computed = 0; ///< sweep jobs computed this invocation
  std::uint64_t jobs_loaded = 0;   ///< sweep jobs loaded from checkpoints
  std::uint64_t solver_solves = 0;     ///< stationary solves (registry delta)
  std::uint64_t solver_iterations = 0; ///< stationary sweeps (registry delta)
  std::uint64_t solver_fallbacks = 0;  ///< gs -> power fallbacks taken
};

/// run(spec) over every entry with shared checkpointing and roll-up.
struct StudyEntryResult {
  std::string name;
  std::string dir;
  ExperimentResult result;
  /// Cell-level sharding (`--cell-shard k/N`): which shard owns this cell
  /// (cell i -> shard i % N) and whether this invocation skipped it. A
  /// skipped entry carries its spec/sweep fingerprints but no tables.
  std::uint32_t cell_owner = 0;
  bool skipped = false;
  /// Fail-soft: run(spec) threw on every attempt. The error lands in the
  /// manifest (`"status": "failed"`), the siblings still complete, and the
  /// CLI exits nonzero with a summary table.
  bool failed = false;
  std::string error;  ///< what() of the last attempt's exception
  int attempts = 0;   ///< run(spec) invocations (retries included)
  /// Per-cell timing/accounting (masked in bitwise tree comparisons).
  StudyEntryTiming timing;
};

/// How run_study treats a cell whose run(spec) throws: every failure is
/// caught and recorded; `retries` extra attempts (exponential backoff via
/// support::retry) happen before the cell is declared failed.
struct StudyFailurePolicy {
  int retries = 0;
  double initial_backoff_ms = 250.0;
  /// Test seam forwarded to support::RetryPolicy::sleeper.
  std::function<void(double)> sleeper;
};

struct StudyResult {
  std::string name;
  std::string title;
  std::vector<StudyEntryResult> entries;
  /// Rolled-up progress across every entry's sweeps; max-new-jobs budgets
  /// are consumed across entries (a study is one interruptible unit).
  support::SweepOutcome outcome;
  bool checkpoint_enabled = false;
  /// The cell-shard this invocation ran under ({0, 1} = whole study).
  support::ShardSpec cell_shard;

  [[nodiscard]] bool complete() const noexcept {
    for (const StudyEntryResult& e : entries) {
      if (e.skipped || e.failed || !e.result.complete()) return false;
    }
    return true;
  }
  [[nodiscard]] bool any_failed() const noexcept {
    for (const StudyEntryResult& e : entries) {
      if (e.failed) return true;
    }
    return false;
  }
};

/// Called after each entry finishes (1-based index, total, the entry's
/// result) -- the CLI streams per-spec progress through this.
using StudyProgress =
    std::function<void(std::size_t, std::size_t, const StudyEntryResult&)>;

/// `cell_shard` assigns whole cells round-robin to shards (cell i belongs to
/// shard i % N) -- coarser than the per-job `--shard k/N` striping inside
/// each sweep, and better balanced for multi-experiment studies: every
/// machine runs complete cells instead of a slice of every sweep. Cells this
/// invocation does not own are returned as skipped entries (fingerprints but
/// no tables); a later run without a cell shard -- sharing the checkpoint
/// directory -- merges everything from disk. The manifest records the
/// assignment.
[[nodiscard]] StudyResult run_study(std::string name, std::string title,
                                    const std::vector<StudyEntry>& entries,
                                    const RunOptions& options = {},
                                    const StudyProgress& progress = {},
                                    support::ShardSpec cell_shard = {},
                                    const StudyFailurePolicy& failure = {});

/// Renders the results tree under `out_root` (created with parents):
/// per-entry {table.txt, data.csv (complete tables only), data.json} and a
/// manifest.json listing every entry's spec fingerprint, sweep fingerprints
/// and files. File contents depend only on the merged results -- never on
/// how many jobs this invocation loaded vs computed -- so resumed trees are
/// bitwise-identical to fresh ones. Throws std::runtime_error on I/O errors.
void write_study_results(const StudyResult& study, const std::string& out_root);

}  // namespace ethsm::api

#endif  // ETHSM_API_STUDY_H
