// Block model for the Ethereum blockchain substrate (paper Sec. II-A, Fig. 1).
//
// Blocks form a tree via `parent`; each block additionally carries the list of
// uncle blocks it references (Fig. 3). Publication time is tracked separately
// from creation time because the selfish pool withholds blocks (Sec. III-C):
// a block exists (and is mined upon by the pool) before the rest of the
// network can see it.

#ifndef ETHSM_CHAIN_BLOCK_H
#define ETHSM_CHAIN_BLOCK_H

#include <cstdint>
#include <limits>

namespace ethsm::chain {

/// Dense block identifier: index into BlockTree storage. Genesis is id 0.
using BlockId = std::uint32_t;

/// Sentinel for "no block" (genesis parent, absent tips).
inline constexpr BlockId kNoBlock = std::numeric_limits<BlockId>::max();

/// Publication timestamp for blocks that are still private.
inline constexpr double kNeverPublished = std::numeric_limits<double>::infinity();

/// Who mined a block: the honest population or the selfish pool (Sec. III-A).
enum class MinerClass : std::uint8_t { honest = 0, selfish = 1 };

[[nodiscard]] constexpr const char* to_string(MinerClass c) noexcept {
  return c == MinerClass::honest ? "honest" : "selfish";
}

/// Final classification of a block once the main chain is fixed
/// (paper Sec. III-B: regular / uncle / plain stale).
enum class BlockFate : std::uint8_t {
  regular,          ///< on the main chain; earns the static reward
  referenced_uncle, ///< stale, direct child of the main chain, referenced
  stale,            ///< stale and never referenced (no reward at all)
};

struct Block {
  BlockId parent = kNoBlock;
  std::uint32_t height = 0;  ///< genesis = 0
  MinerClass miner = MinerClass::honest;
  std::uint32_t miner_id = 0;  ///< population-simulator identity; 0 otherwise
  double mined_at = 0.0;
  double published_at = kNeverPublished;
  /// Uncle blocks referenced *by* this block, fixed at creation time, stored
  /// as a slice of BlockTree's shared uncle-ref arena (offset + count) instead
  /// of a per-block heap vector; read them via BlockTree::uncle_refs(id).
  std::uint32_t uncle_begin = 0;
  std::uint32_t uncle_count = 0;

  [[nodiscard]] bool is_published() const noexcept {
    return published_at != kNeverPublished;
  }
};

}  // namespace ethsm::chain

#endif  // ETHSM_CHAIN_BLOCK_H
