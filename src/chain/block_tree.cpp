#include "chain/block_tree.h"

#include <algorithm>

#include "support/check.h"

namespace ethsm::chain {

BlockTree::BlockTree(std::size_t reserve_hint) { reset(reserve_hint); }

void BlockTree::reset(std::size_t reserve_hint) {
  blocks_.clear();
  first_child_.clear();
  last_child_.clear();
  next_sibling_.clear();
  uncle_arena_.clear();
  if (reserve_hint > 0) {
    blocks_.reserve(reserve_hint);
    first_child_.reserve(reserve_hint);
    last_child_.reserve(reserve_hint);
    next_sibling_.reserve(reserve_hint);
  }
  mined_count_[0] = 0;
  mined_count_[1] = 0;

  Block genesis;
  genesis.parent = kNoBlock;
  genesis.height = 0;
  genesis.miner = MinerClass::honest;
  genesis.mined_at = 0.0;
  genesis.published_at = 0.0;
  blocks_.push_back(std::move(genesis));
  first_child_.push_back(kNoBlock);
  last_child_.push_back(kNoBlock);
  next_sibling_.push_back(kNoBlock);
  // Genesis is not attributed to either class for mined-count purposes.
}

BlockId BlockTree::append(BlockId parent, MinerClass miner,
                          std::uint32_t miner_id, double mined_at,
                          std::span<const BlockId> uncle_refs) {
  check_id(parent);
  for (BlockId u : uncle_refs) check_id(u);

  Block b;
  b.parent = parent;
  b.height = blocks_[parent].height + 1;
  b.miner = miner;
  b.miner_id = miner_id;
  b.mined_at = mined_at;
  b.uncle_begin = static_cast<std::uint32_t>(uncle_arena_.size());
  b.uncle_count = static_cast<std::uint32_t>(uncle_refs.size());
  if (!uncle_refs.empty() && uncle_refs.data() >= uncle_arena_.data() &&
      uncle_refs.data() < uncle_arena_.data() + uncle_arena_.size()) {
    // The span aliases this tree's own arena (e.g. uncle_refs(other) fed
    // straight back into append): growing the vector would invalidate it
    // mid-copy, so copy by index after reserving.
    const std::size_t offset =
        static_cast<std::size_t>(uncle_refs.data() - uncle_arena_.data());
    const std::size_t count = uncle_refs.size();
    uncle_arena_.reserve(uncle_arena_.size() + count);
    for (std::size_t i = 0; i < count; ++i) {
      uncle_arena_.push_back(uncle_arena_[offset + i]);
    }
  } else {
    uncle_arena_.insert(uncle_arena_.end(), uncle_refs.begin(),
                        uncle_refs.end());
  }

  const auto id = static_cast<BlockId>(blocks_.size());
  blocks_.push_back(std::move(b));
  first_child_.push_back(kNoBlock);
  last_child_.push_back(kNoBlock);
  next_sibling_.push_back(kNoBlock);
  if (first_child_[parent] == kNoBlock) {
    first_child_[parent] = id;
  } else {
    next_sibling_[last_child_[parent]] = id;
  }
  last_child_[parent] = id;
  ++mined_count_[static_cast<std::size_t>(miner)];
  return id;
}

void BlockTree::publish(BlockId id, double now) {
  check_id(id);
  ETHSM_EXPECTS(!blocks_[id].is_published(), "block already published");
  ETHSM_EXPECTS(now >= blocks_[id].mined_at,
                "cannot publish before the block was mined");
  blocks_[id].published_at = now;
}

const Block& BlockTree::block(BlockId id) const {
  check_id(id);
  return blocks_[id];
}

std::span<const BlockId> BlockTree::uncle_refs(BlockId id) const {
  check_id(id);
  const Block& b = blocks_[id];
  return {uncle_arena_.data() + b.uncle_begin, b.uncle_count};
}

std::uint32_t BlockTree::height(BlockId id) const {
  check_id(id);
  return blocks_[id].height;
}

BlockId BlockTree::parent(BlockId id) const {
  check_id(id);
  return blocks_[id].parent;
}

bool BlockTree::is_published(BlockId id) const {
  check_id(id);
  return blocks_[id].is_published();
}

BlockTree::ChildRange BlockTree::children(BlockId id) const {
  check_id(id);
  return ChildRange(first_child_[id], &next_sibling_);
}

bool BlockTree::is_ancestor_of(BlockId ancestor, BlockId descendant) const {
  check_id(ancestor);
  check_id(descendant);
  if (blocks_[ancestor].height > blocks_[descendant].height) return false;
  return ancestor_at_height(descendant, blocks_[ancestor].height) == ancestor;
}

BlockId BlockTree::ancestor_at_height(BlockId from, std::uint32_t h) const {
  check_id(from);
  ETHSM_EXPECTS(h <= blocks_[from].height, "ancestor height above block");
  BlockId cur = from;
  while (blocks_[cur].height > h) cur = blocks_[cur].parent;
  return cur;
}

std::vector<BlockId> BlockTree::chain_from_genesis(BlockId tip) const {
  check_id(tip);
  std::vector<BlockId> chain;
  chain.reserve(blocks_[tip].height + 1);
  for (BlockId cur = tip; cur != kNoBlock; cur = blocks_[cur].parent) {
    chain.push_back(cur);
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

void BlockTree::check_id(BlockId id) const {
  ETHSM_EXPECTS(id < blocks_.size(), "unknown block id");
}

BlockTree& thread_local_tree(std::size_t reserve_hint) {
  thread_local BlockTree tree;
  tree.reset(reserve_hint);
  return tree;
}

}  // namespace ethsm::chain
