// Append-only block tree (paper Sec. II, Fig. 2): every client observes a tree
// of blocks; a main chain is selected from it. This class stores the tree and
// answers the ancestry/height queries that uncle eligibility (Sec. III-B) and
// the mining policies (Sec. III-C) need.
//
// Child links are stored arena-style (first/last child + next sibling arrays
// indexed by BlockId) rather than one heap vector per node, so a tree can be
// reset() and refilled by the multi-run drivers without reallocating — the
// sweep hot path runs thousands of 100k-block simulations per experiment.

#ifndef ETHSM_CHAIN_BLOCK_TREE_H
#define ETHSM_CHAIN_BLOCK_TREE_H

#include <cstddef>
#include <initializer_list>
#include <iterator>
#include <span>
#include <vector>

#include "chain/block.h"

namespace ethsm::chain {

class BlockTree {
 public:
  /// Forward range over a block's children, in append order.
  class ChildRange {
   public:
    class iterator {
     public:
      using iterator_category = std::forward_iterator_tag;
      using value_type = BlockId;
      using difference_type = std::ptrdiff_t;
      using pointer = const BlockId*;
      using reference = BlockId;

      iterator() = default;
      iterator(BlockId current, const std::vector<BlockId>* next_sibling)
          : current_(current), next_sibling_(next_sibling) {}

      BlockId operator*() const noexcept { return current_; }
      iterator& operator++() noexcept {
        current_ = (*next_sibling_)[current_];
        return *this;
      }
      iterator operator++(int) noexcept {
        iterator copy = *this;
        ++(*this);
        return copy;
      }
      bool operator==(const iterator& o) const noexcept {
        return current_ == o.current_;
      }
      bool operator!=(const iterator& o) const noexcept {
        return current_ != o.current_;
      }

     private:
      BlockId current_ = kNoBlock;
      const std::vector<BlockId>* next_sibling_ = nullptr;
    };

    ChildRange(BlockId first, const std::vector<BlockId>* next_sibling)
        : first_(first), next_sibling_(next_sibling) {}

    [[nodiscard]] iterator begin() const noexcept {
      return iterator(first_, next_sibling_);
    }
    [[nodiscard]] iterator end() const noexcept {
      return iterator(kNoBlock, next_sibling_);
    }
    [[nodiscard]] bool empty() const noexcept { return first_ == kNoBlock; }

    /// Number of children; O(children) walk, meant for tests and diagnostics.
    [[nodiscard]] std::size_t size() const noexcept {
      std::size_t n = 0;
      for (BlockId c = first_; c != kNoBlock; c = (*next_sibling_)[c]) ++n;
      return n;
    }
    /// i-th child in append order, or kNoBlock when i is out of range;
    /// O(i) walk, meant for tests and diagnostics.
    [[nodiscard]] BlockId operator[](std::size_t i) const noexcept {
      BlockId c = first_;
      while (i-- > 0 && c != kNoBlock) c = (*next_sibling_)[c];
      return c;
    }

   private:
    BlockId first_;
    const std::vector<BlockId>* next_sibling_;
  };

  /// Creates a tree holding only the genesis block (published at time 0,
  /// height 0, honest-owned by convention; genesis earns no rewards).
  explicit BlockTree(std::size_t reserve_hint = 0);

  /// Clears the tree back to the genesis-only state while keeping all node
  /// storage capacity. Equivalent to assigning a fresh BlockTree but without
  /// the allocations; the multi-run drivers reuse one tree per thread.
  void reset(std::size_t reserve_hint = 0);

  [[nodiscard]] BlockId genesis() const noexcept { return 0; }
  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }

  /// Appends a block. `uncle_refs` must already satisfy eligibility (use
  /// collect_uncle_references); this is checked lazily by ChainValidator, not
  /// here, to keep the mining hot loop cheap. The refs are copied into the
  /// tree's shared uncle arena -- no per-block heap allocation.
  BlockId append(BlockId parent, MinerClass miner, std::uint32_t miner_id,
                 double mined_at, std::span<const BlockId> uncle_refs = {});
  BlockId append(BlockId parent, MinerClass miner, std::uint32_t miner_id,
                 double mined_at, std::initializer_list<BlockId> uncle_refs) {
    return append(parent, miner, miner_id, mined_at,
                  std::span<const BlockId>(uncle_refs.begin(),
                                           uncle_refs.size()));
  }

  /// Marks a block visible to the network. Publishing is monotone: a block can
  /// be published once; re-publication is a logic error.
  void publish(BlockId id, double now);

  [[nodiscard]] const Block& block(BlockId id) const;
  /// Uncle blocks referenced by `id`, in the order passed to append(). The
  /// view stays valid until the next append() or reset().
  [[nodiscard]] std::span<const BlockId> uncle_refs(BlockId id) const;
  [[nodiscard]] std::uint32_t height(BlockId id) const;
  [[nodiscard]] BlockId parent(BlockId id) const;
  [[nodiscard]] bool is_published(BlockId id) const;
  [[nodiscard]] ChildRange children(BlockId id) const;

  /// True iff `ancestor` lies on the parent path of `descendant`
  /// (a block is an ancestor of itself).
  [[nodiscard]] bool is_ancestor_of(BlockId ancestor, BlockId descendant) const;

  /// The unique ancestor of `from` at height `h` (requires h <= height(from)).
  [[nodiscard]] BlockId ancestor_at_height(BlockId from, std::uint32_t h) const;

  /// Blocks from genesis to `tip`, inclusive, in height order.
  [[nodiscard]] std::vector<BlockId> chain_from_genesis(BlockId tip) const;

  /// Total number of blocks mined by each class (for conservation checks).
  [[nodiscard]] std::uint64_t mined_count(MinerClass c) const noexcept {
    return mined_count_[static_cast<std::size_t>(c)];
  }

 private:
  void check_id(BlockId id) const;

  std::vector<Block> blocks_;
  // Arena child links: children of `p` are the chain first_child_[p],
  // next_sibling_[first_child_[p]], ... in append order.
  std::vector<BlockId> first_child_;
  std::vector<BlockId> last_child_;
  std::vector<BlockId> next_sibling_;
  // Shared uncle-reference arena: block b's refs are
  // uncle_arena_[b.uncle_begin .. b.uncle_begin + b.uncle_count). Blocks are
  // append-only and refs are fixed at creation, so slices never move.
  std::vector<BlockId> uncle_arena_;
  std::uint64_t mined_count_[2] = {0, 0};
};

/// Per-thread reusable tree arena for the simulation drivers: a thread_local
/// tree reset() to the genesis-only state with the given capacity hint.
/// Multi-run sweeps call this once per run instead of constructing a fresh
/// tree, so node storage is allocated once per thread and reused. The
/// reference stays valid for the calling thread's lifetime; each call
/// invalidates the previous contents.
[[nodiscard]] BlockTree& thread_local_tree(std::size_t reserve_hint);

}  // namespace ethsm::chain

#endif  // ETHSM_CHAIN_BLOCK_TREE_H
