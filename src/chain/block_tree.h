// Append-only block tree (paper Sec. II, Fig. 2): every client observes a tree
// of blocks; a main chain is selected from it. This class stores the tree and
// answers the ancestry/height queries that uncle eligibility (Sec. III-B) and
// the mining policies (Sec. III-C) need.

#ifndef ETHSM_CHAIN_BLOCK_TREE_H
#define ETHSM_CHAIN_BLOCK_TREE_H

#include <cstddef>
#include <vector>

#include "chain/block.h"

namespace ethsm::chain {

class BlockTree {
 public:
  /// Creates a tree holding only the genesis block (published at time 0,
  /// height 0, honest-owned by convention; genesis earns no rewards).
  explicit BlockTree(std::size_t reserve_hint = 0);

  [[nodiscard]] BlockId genesis() const noexcept { return 0; }
  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }

  /// Appends a block. `uncle_refs` must already satisfy eligibility (use
  /// collect_uncle_references); this is checked lazily by ChainValidator, not
  /// here, to keep the mining hot loop cheap.
  BlockId append(BlockId parent, MinerClass miner, std::uint32_t miner_id,
                 double mined_at, std::vector<BlockId> uncle_refs = {});

  /// Marks a block visible to the network. Publishing is monotone: a block can
  /// be published once; re-publication is a logic error.
  void publish(BlockId id, double now);

  [[nodiscard]] const Block& block(BlockId id) const;
  [[nodiscard]] std::uint32_t height(BlockId id) const;
  [[nodiscard]] BlockId parent(BlockId id) const;
  [[nodiscard]] bool is_published(BlockId id) const;
  [[nodiscard]] const std::vector<BlockId>& children(BlockId id) const;

  /// True iff `ancestor` lies on the parent path of `descendant`
  /// (a block is an ancestor of itself).
  [[nodiscard]] bool is_ancestor_of(BlockId ancestor, BlockId descendant) const;

  /// The unique ancestor of `from` at height `h` (requires h <= height(from)).
  [[nodiscard]] BlockId ancestor_at_height(BlockId from, std::uint32_t h) const;

  /// Blocks from genesis to `tip`, inclusive, in height order.
  [[nodiscard]] std::vector<BlockId> chain_from_genesis(BlockId tip) const;

  /// Total number of blocks mined by each class (for conservation checks).
  [[nodiscard]] std::uint64_t mined_count(MinerClass c) const noexcept {
    return mined_count_[static_cast<std::size_t>(c)];
  }

 private:
  void check_id(BlockId id) const;

  std::vector<Block> blocks_;
  std::vector<std::vector<BlockId>> children_;
  std::uint64_t mined_count_[2] = {0, 0};
};

}  // namespace ethsm::chain

#endif  // ETHSM_CHAIN_BLOCK_TREE_H
