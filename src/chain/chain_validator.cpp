#include "chain/chain_validator.h"

#include <sstream>
#include <unordered_set>

namespace ethsm::chain {

namespace {

void report(ValidationReport& r, BlockId id, const std::string& what) {
  std::ostringstream os;
  os << "block " << id << ": " << what;
  r.violations.push_back(os.str());
}

}  // namespace

ValidationReport validate_chain(const BlockTree& tree,
                                const rewards::RewardConfig& config,
                                BlockId main_tip) {
  ValidationReport r;
  const int horizon = config.reference_horizon();

  for (BlockId id = 0; id < tree.size(); ++id) {
    const Block& b = tree.block(id);

    // V1: parent/height consistency.
    if (id == tree.genesis()) {
      if (b.parent != kNoBlock) report(r, id, "genesis has a parent");
      if (b.height != 0) report(r, id, "genesis height is not 0");
    } else {
      if (b.parent == kNoBlock) {
        report(r, id, "non-genesis block without parent (second genesis)");
        continue;
      }
      if (b.parent >= tree.size()) {
        report(r, id, "dangling parent id");
        continue;
      }
      if (b.height != tree.height(b.parent) + 1) {
        report(r, id, "height != parent height + 1");
      }
      // V2: time ordering.
      if (b.mined_at < tree.block(b.parent).mined_at) {
        report(r, id, "mined before its parent");
      }
      if (b.is_published() && b.published_at < b.mined_at) {
        report(r, id, "published before mined");
      }
    }

    // V3/V5/V6: uncle references.
    const auto refs = tree.uncle_refs(id);
    if (config.max_uncles_per_block > 0 &&
        static_cast<int>(refs.size()) > config.max_uncles_per_block) {
      report(r, id, "too many uncle references");
    }
    std::unordered_set<BlockId> seen;
    for (BlockId u : refs) {
      if (u >= tree.size()) {
        report(r, id, "dangling uncle reference");
        continue;
      }
      if (!seen.insert(u).second) {
        report(r, id, "duplicate uncle reference within one block");
      }
      const Block& uncle = tree.block(u);
      if (uncle.height >= b.height) {
        report(r, id, "uncle not below the referencing block");
        continue;
      }
      const int distance = static_cast<int>(b.height - uncle.height);
      if (distance < 1 || distance > horizon) {
        report(r, id, "uncle reference distance outside horizon");
      }
      if (tree.is_ancestor_of(u, id)) {
        report(r, id, "referenced an ancestor as uncle");
      }
      if (uncle.parent != kNoBlock && !tree.is_ancestor_of(uncle.parent, id)) {
        report(r, id, "uncle's parent not on the referencing chain");
      }
      if (!uncle.is_published() || uncle.published_at > b.mined_at) {
        report(r, id, "referenced a block not yet visible when mined");
      }
    }
  }

  // V4: no double reference along any root-to-leaf chain. Walk each leaf's
  // chain once; references are sparse so the set stays small.
  for (BlockId id = 0; id < tree.size(); ++id) {
    if (!tree.children(id).empty()) continue;  // not a leaf
    std::unordered_set<BlockId> referenced;
    for (BlockId cur = id;; cur = tree.parent(cur)) {
      for (BlockId u : tree.uncle_refs(cur)) {
        if (!referenced.insert(u).second) {
          report(r, cur, "uncle referenced twice along one chain");
        }
      }
      if (cur == tree.genesis()) break;
    }
  }

  // V7: main chain fully published.
  if (main_tip != kNoBlock) {
    for (BlockId b : tree.chain_from_genesis(main_tip)) {
      if (!tree.is_published(b)) {
        report(r, b, "main-chain block is unpublished");
      }
    }
  }
  return r;
}

}  // namespace ethsm::chain
