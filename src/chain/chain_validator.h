// Structural invariant checking for finished (or in-progress) block trees.
//
// The simulator's correctness rests on the tree obeying Ethereum's structural
// rules at all times; the validator re-derives every rule from scratch (it
// shares no code with the policies) so tests get an independent referee:
//
//   V1  parent/height consistency, single genesis
//   V2  publication order: a block is published no earlier than mined, and no
//       earlier than its parent is mined
//   V3  every uncle reference is eligible: referenced block is not an ancestor
//       of the referencing block, its parent is, distance within horizon
//   V4  no uncle is referenced twice along any root-to-leaf chain
//   V5  per-block reference count respects max_uncles_per_block
//   V6  referenced uncles were published before the referencing block was
//       mined (no references to invisible blocks)
//   V7  the designated main chain is fully published

#ifndef ETHSM_CHAIN_CHAIN_VALIDATOR_H
#define ETHSM_CHAIN_CHAIN_VALIDATOR_H

#include <string>
#include <vector>

#include "chain/block_tree.h"
#include "rewards/reward_schedule.h"

namespace ethsm::chain {

struct ValidationReport {
  std::vector<std::string> violations;
  [[nodiscard]] bool ok() const noexcept { return violations.empty(); }
};

/// Validates the whole tree. `main_tip` = kNoBlock skips main-chain checks.
[[nodiscard]] ValidationReport validate_chain(
    const BlockTree& tree, const rewards::RewardConfig& config,
    BlockId main_tip = kNoBlock);

}  // namespace ethsm::chain

#endif  // ETHSM_CHAIN_CHAIN_VALIDATOR_H
