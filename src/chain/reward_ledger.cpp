#include "chain/reward_ledger.h"

#include <algorithm>

#include "support/check.h"

namespace ethsm::chain {

std::vector<BlockFate> classify_blocks(const BlockTree& tree,
                                       BlockId main_tip) {
  std::vector<BlockFate> fate(tree.size(), BlockFate::stale);
  const auto main_chain = tree.chain_from_genesis(main_tip);
  for (BlockId b : main_chain) fate[b] = BlockFate::regular;
  for (BlockId b : main_chain) {
    for (BlockId u : tree.uncle_refs(b)) {
      ETHSM_ENSURES(fate[u] != BlockFate::regular,
                    "a main-chain block cannot be referenced as an uncle");
      fate[u] = BlockFate::referenced_uncle;
    }
  }
  return fate;
}

LedgerResult settle_rewards(const BlockTree& tree, BlockId main_tip,
                            const rewards::RewardConfig& config,
                            std::uint32_t num_miners) {
  LedgerResult result;
  if (num_miners > 0) result.per_miner_reward.assign(num_miners, 0.0);

  auto pay = [&result](MinerClass c, std::uint32_t miner_id, double amount,
                       double ClassRewards::* component) {
    result.rewards[static_cast<std::size_t>(c)].*component += amount;
    if (!result.per_miner_reward.empty()) {
      ETHSM_EXPECTS(miner_id < result.per_miner_reward.size(),
                    "miner id out of range for per-miner accounting");
      result.per_miner_reward[miner_id] += amount;
    }
  };

  const auto main_chain = tree.chain_from_genesis(main_tip);
  // Skip genesis (index 0): it predates the experiment and earns nothing.
  for (std::size_t idx = 1; idx < main_chain.size(); ++idx) {
    const Block& nephew = tree.block(main_chain[idx]);
    pay(nephew.miner, nephew.miner_id, 1.0, &ClassRewards::static_reward);

    for (BlockId uid : tree.uncle_refs(main_chain[idx])) {
      const Block& uncle = tree.block(uid);
      ETHSM_ENSURES(uncle.height < nephew.height,
                    "uncle must be below its nephew");
      const int distance = static_cast<int>(nephew.height - uncle.height);
      pay(uncle.miner, uncle.miner_id, config.uncle_reward(distance),
          &ClassRewards::uncle_reward);
      pay(nephew.miner, nephew.miner_id, config.nephew_reward(distance),
          &ClassRewards::nephew_reward);
      result.uncle_distance[static_cast<std::size_t>(uncle.miner)].add(
          static_cast<std::size_t>(std::min(distance, 7)));
    }
  }

  const auto fates = classify_blocks(tree, main_tip);
  for (BlockId b = 1; b < tree.size(); ++b) {  // skip genesis
    auto& counts = result.fates[static_cast<std::size_t>(tree.block(b).miner)];
    switch (fates[b]) {
      case BlockFate::regular:
        ++counts.regular;
        break;
      case BlockFate::referenced_uncle:
        ++counts.referenced_uncle;
        break;
      case BlockFate::stale:
        ++counts.stale;
        break;
    }
  }
  return result;
}

}  // namespace ethsm::chain

namespace ethsm::support {

void CheckpointCodec<chain::LedgerResult>::encode(
    ByteWriter& w, const chain::LedgerResult& ledger) {
  for (const auto& rewards : ledger.rewards) {
    w.f64(rewards.static_reward);
    w.f64(rewards.uncle_reward);
    w.f64(rewards.nephew_reward);
  }
  for (const auto& fates : ledger.fates) {
    w.u64(fates.regular);
    w.u64(fates.referenced_uncle);
    w.u64(fates.stale);
  }
  for (const auto& histogram : ledger.uncle_distance) {
    CheckpointCodec<Histogram>::encode(w, histogram);
  }
  w.f64_vec(ledger.per_miner_reward);
}

chain::LedgerResult CheckpointCodec<chain::LedgerResult>::decode(
    ByteReader& r) {
  chain::LedgerResult ledger;
  for (auto& rewards : ledger.rewards) {
    rewards.static_reward = r.f64();
    rewards.uncle_reward = r.f64();
    rewards.nephew_reward = r.f64();
  }
  for (auto& fates : ledger.fates) {
    fates.regular = r.u64();
    fates.referenced_uncle = r.u64();
    fates.stale = r.u64();
  }
  for (auto& histogram : ledger.uncle_distance) {
    histogram = CheckpointCodec<Histogram>::decode(r);
  }
  ledger.per_miner_reward = r.f64_vec();
  return ledger;
}

}  // namespace ethsm::support
