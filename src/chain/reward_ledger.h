// End-of-run reward accounting (paper Sec. III-B, Table I).
//
// Once a simulation run finishes and the main chain is fixed, the ledger walks
// the main chain and pays out, per miner class (and optionally per miner id):
//   * the static reward Ks = 1 for every regular block,
//   * Ku(d) to the miner of every referenced uncle,
//   * Kn(d) to the miner of every referencing (nephew) block,
// and classifies every block in the tree as regular / referenced uncle /
// plain stale. It also records the reference-distance histograms that
// reproduce Table II.

#ifndef ETHSM_CHAIN_REWARD_LEDGER_H
#define ETHSM_CHAIN_REWARD_LEDGER_H

#include <cstdint>
#include <vector>

#include "chain/block_tree.h"
#include "rewards/reward_schedule.h"
#include "support/checkpoint.h"
#include "support/stats.h"

namespace ethsm::chain {

/// Reward totals for one miner class, in units of the static reward Ks.
struct ClassRewards {
  double static_reward = 0.0;
  double uncle_reward = 0.0;
  double nephew_reward = 0.0;

  [[nodiscard]] double total() const noexcept {
    return static_reward + uncle_reward + nephew_reward;
  }

  ClassRewards& operator+=(const ClassRewards& o) noexcept {
    static_reward += o.static_reward;
    uncle_reward += o.uncle_reward;
    nephew_reward += o.nephew_reward;
    return *this;
  }
};

/// Block-classification counts per miner class.
struct FateCounts {
  std::uint64_t regular = 0;
  std::uint64_t referenced_uncle = 0;
  std::uint64_t stale = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return regular + referenced_uncle + stale;
  }
};

/// Full accounting result for one finished chain.
struct LedgerResult {
  ClassRewards rewards[2];   ///< indexed by MinerClass
  FateCounts fates[2];       ///< indexed by MinerClass
  /// Reference-distance histogram per class of the *uncle's* miner
  /// (bucket = distance; bucket 0 unused). Reproduces Table II.
  support::Histogram uncle_distance[2] = {support::Histogram(8),
                                          support::Histogram(8)};
  /// Per-miner-id reward totals; empty unless requested.
  std::vector<double> per_miner_reward;

  [[nodiscard]] const ClassRewards& of(MinerClass c) const {
    return rewards[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const FateCounts& fate_of(MinerClass c) const {
    return fates[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t regular_total() const noexcept {
    return fates[0].regular + fates[1].regular;
  }
  [[nodiscard]] std::uint64_t referenced_uncle_total() const noexcept {
    return fates[0].referenced_uncle + fates[1].referenced_uncle;
  }
};

/// Walks the chain ending at `main_tip` and produces the accounting above.
/// `num_miners` > 0 enables per-miner-id accounting (population simulator).
/// The genesis block earns nothing and is not counted as a regular block.
[[nodiscard]] LedgerResult settle_rewards(const BlockTree& tree,
                                          BlockId main_tip,
                                          const rewards::RewardConfig& config,
                                          std::uint32_t num_miners = 0);

/// Classifies every block in the tree relative to the main chain ending at
/// `main_tip`. Index = BlockId; genesis is classified regular.
[[nodiscard]] std::vector<BlockFate> classify_blocks(
    const BlockTree& tree, BlockId main_tip);

}  // namespace ethsm::chain

namespace ethsm::support {

/// Checkpoint serialization of a full accounting result (resumable sweeps):
/// doubles as raw bit patterns, histograms bucket-exact, so decode(encode(x))
/// reproduces x bitwise.
template <>
struct CheckpointCodec<chain::LedgerResult> {
  static void encode(ByteWriter& w, const chain::LedgerResult& ledger);
  static chain::LedgerResult decode(ByteReader& r);
};

}  // namespace ethsm::support

#endif  // ETHSM_CHAIN_REWARD_LEDGER_H
