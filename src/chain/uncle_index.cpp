#include "chain/uncle_index.h"

#include <algorithm>

#include "support/check.h"

namespace ethsm::chain {

namespace {

/// Walks the `horizon + 1` nearest ancestors of the prospective block (parent
/// and up), invoking fn(ancestor). The prospective block sits at
/// height(parent) + 1; an uncle at the maximum distance `horizon` is a child
/// of the ancestor at height(new) - horizon - 1, so the walk must reach one
/// level below the deepest eligible uncle.
template <typename Fn>
void for_each_window_ancestor(const BlockTree& tree, BlockId parent,
                              int horizon, Fn&& fn) {
  BlockId cur = parent;
  for (int steps = 0; steps <= horizon; ++steps) {
    fn(cur);
    if (cur == tree.genesis()) break;
    cur = tree.parent(cur);
  }
}

}  // namespace

void find_uncle_candidates(const BlockTree& tree, BlockId parent, int horizon,
                           UncleScratch& scratch,
                           std::span<const std::uint8_t> visible) {
  ETHSM_EXPECTS(horizon >= 0, "horizon must be non-negative");
  std::vector<UncleCandidate>& out = scratch.candidates;
  out.clear();
  if (horizon == 0) return;

  const std::uint32_t new_height = tree.height(parent) + 1;

  // References already consumed on this chain. Any uncle eligible for the new
  // block has height >= new_height - horizon, so a referencing ancestor would
  // itself lie within the window (its height exceeds the uncle's).
  std::vector<BlockId>& already_referenced = scratch.referenced;
  already_referenced.clear();
  for_each_window_ancestor(tree, parent, horizon, [&](BlockId anc) {
    const auto refs = tree.uncle_refs(anc);
    already_referenced.insert(already_referenced.end(), refs.begin(),
                              refs.end());
  });

  // Candidates: published non-ancestor children of window ancestors.
  BlockId on_chain_child = kNoBlock;  // the window ancestor one level below
  for_each_window_ancestor(tree, parent, horizon, [&](BlockId anc) {
    for (BlockId child : tree.children(anc)) {
      if (child == on_chain_child || child == parent) continue;  // ancestor of N
      if (!tree.is_published(child)) continue;  // invisible to other miners
      // Per-node visibility (network simulator): published but not yet
      // propagated to this miner.
      if (!visible.empty() &&
          (child >= visible.size() || visible[child] == 0)) {
        continue;
      }
      if (std::find(already_referenced.begin(), already_referenced.end(),
                    child) != already_referenced.end()) {
        continue;
      }
      // Children of the direct parent sit at the prospective block's own
      // height (distance 0): same-height competitors, not uncles.
      const int distance = static_cast<int>(new_height - tree.height(child));
      if (distance < 1 || distance > horizon) continue;
      out.push_back(UncleCandidate{child, distance});
    }
    on_chain_child = anc;
  });

  std::sort(out.begin(), out.end(), [&tree](const auto& a, const auto& b) {
    if (tree.height(a.id) != tree.height(b.id)) {
      return tree.height(a.id) < tree.height(b.id);
    }
    return a.id < b.id;
  });
}

std::vector<UncleCandidate> find_uncle_candidates(const BlockTree& tree,
                                                  BlockId parent, int horizon) {
  UncleScratch scratch;
  find_uncle_candidates(tree, parent, horizon, scratch);
  return std::move(scratch.candidates);
}

void collect_uncle_references(const BlockTree& tree, BlockId parent,
                              int horizon, int max_refs, UncleScratch& scratch,
                              std::span<const std::uint8_t> visible) {
  ETHSM_EXPECTS(max_refs >= 0, "max_refs must be >= 0 (0 = unlimited)");
  find_uncle_candidates(tree, parent, horizon, scratch, visible);
  std::vector<BlockId>& refs = scratch.refs;
  refs.clear();
  for (const auto& c : scratch.candidates) {
    if (max_refs > 0 && static_cast<int>(refs.size()) >= max_refs) break;
    refs.push_back(c.id);
  }
}

std::vector<BlockId> collect_uncle_references(const BlockTree& tree,
                                              BlockId parent, int horizon,
                                              int max_refs) {
  UncleScratch scratch;
  collect_uncle_references(tree, parent, horizon, max_refs, scratch);
  return std::move(scratch.refs);
}

bool is_eligible_uncle(const BlockTree& tree, BlockId uncle, BlockId parent,
                       int horizon) {
  const auto candidates = find_uncle_candidates(tree, parent, horizon);
  return std::any_of(candidates.begin(), candidates.end(),
                     [uncle](const UncleCandidate& c) { return c.id == uncle; });
}

}  // namespace ethsm::chain
