// Uncle eligibility and reference collection (paper Sec. III-B).
//
// A block U is an *eligible uncle* for a prospective block N with parent P iff
//   1. U is not an ancestor of N (it lies on a competing branch),
//   2. U's parent IS an ancestor of N (U is a "direct child" of N's chain),
//   3. the height distance d = height(N) - height(U) satisfies 1 <= d <= horizon,
//   4. no ancestor of N (within the horizon window) already references U,
//   5. U is visible to N's miner at creation time (published; the selfish
//      pool's own private blocks are always ancestors of its new block, so
//      visibility only ever filters other miners' withheld blocks).
//
// Both honest miners and the selfish pool "include as many reference links as
// possible" (Sec. III-C); `max_refs` caps that (real Ethereum: 2 per block,
// paper analysis: unlimited).

#ifndef ETHSM_CHAIN_UNCLE_INDEX_H
#define ETHSM_CHAIN_UNCLE_INDEX_H

#include <span>
#include <vector>

#include "chain/block_tree.h"

namespace ethsm::chain {

/// An eligible uncle together with the distance at which the prospective block
/// would reference it.
struct UncleCandidate {
  BlockId id;
  int distance;
};

/// Enumerates eligible uncles for a block about to be appended on `parent`.
/// Candidates are returned oldest-first (smallest height first), which is also
/// the greedy order used when `max_refs` truncates.
[[nodiscard]] std::vector<UncleCandidate> find_uncle_candidates(
    const BlockTree& tree, BlockId parent, int horizon);

/// As find_uncle_candidates, but returns only the ids, truncated to
/// `max_refs` (0 = unlimited).
[[nodiscard]] std::vector<BlockId> collect_uncle_references(
    const BlockTree& tree, BlockId parent, int horizon, int max_refs = 0);

/// Reusable buffers for the per-block collection hot path. The mining
/// policies hold one scratch per policy instance so a 100k-block run performs
/// no per-block heap allocation once the buffers reach steady-state capacity
/// (confirmed by the allocs_per_block counter in bench_perf_micro).
struct UncleScratch {
  std::vector<UncleCandidate> candidates;
  std::vector<BlockId> referenced;
  std::vector<BlockId> refs;  ///< collect_uncle_references output
};

/// In-place find_uncle_candidates: fills scratch.candidates (clearing it
/// first), using scratch.referenced as the already-referenced working set.
/// A non-empty `visible` mask (indexed by BlockId, nonzero = visible)
/// additionally restricts candidates to blocks this miner has actually
/// received -- the network simulator's per-node view, where a published
/// block may not have propagated to the referencing miner yet. An empty
/// mask keeps the historical published-only filtering.
void find_uncle_candidates(const BlockTree& tree, BlockId parent, int horizon,
                           UncleScratch& scratch,
                           std::span<const std::uint8_t> visible = {});

/// In-place collect_uncle_references: result lands in scratch.refs. This is
/// what the mining policies call. `visible` as in find_uncle_candidates.
void collect_uncle_references(const BlockTree& tree, BlockId parent,
                              int horizon, int max_refs, UncleScratch& scratch,
                              std::span<const std::uint8_t> visible = {});

/// True iff `uncle` would be an eligible reference for a new block on
/// `parent` at the given horizon (the conditions in the header comment).
[[nodiscard]] bool is_eligible_uncle(const BlockTree& tree, BlockId uncle,
                                     BlockId parent, int horizon);

}  // namespace ethsm::chain

#endif  // ETHSM_CHAIN_UNCLE_INDEX_H
