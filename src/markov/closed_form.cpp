#include "markov/closed_form.h"

#include <map>
#include <tuple>

#include "support/check.h"
#include "support/math_util.h"

namespace ethsm::markov {

namespace {

double denom(double alpha) { return 2 * alpha * alpha * alpha - 4 * alpha * alpha + 1; }

/// Inner recursion for f: F(upper, k) = sum_{s = lb(k)}^{upper} F(s, k-1),
/// with F(., 0) = 1 and lower bound lb(k) = y + 2 - (z - k) (matching the
/// nesting in Eq. (2): the outermost index s_z starts at y+2, each inner
/// index's lower bound drops by one, the innermost s_1 starts at y - z + 3).
double f_inner(int upper, int k, int y, int z,
               std::map<std::pair<int, int>, double>& memo) {
  if (k == 0) return 1.0;
  const int lb = y + 2 - (z - k);
  if (upper < lb) return 0.0;
  const auto key = std::make_pair(upper, k);
  if (const auto it = memo.find(key); it != memo.end()) return it->second;
  double total = 0.0;
  for (int s = lb; s <= upper; ++s) total += f_inner(s, k - 1, y, z, memo);
  memo.emplace(key, total);
  return total;
}

}  // namespace

double pi00_closed_form(double alpha) {
  ETHSM_EXPECTS(alpha >= 0.0 && alpha < 0.5, "alpha must lie in [0, 0.5)");
  return (1.0 - 2.0 * alpha) / denom(alpha);
}

double pii0_closed_form(double alpha, int i) {
  ETHSM_EXPECTS(i >= 1, "pi_{i,0} defined for i >= 1");
  return support::ipow(alpha, i) * pi00_closed_form(alpha);
}

double pi11_closed_form(double alpha) {
  return (alpha - alpha * alpha) * pi00_closed_form(alpha);
}

double f_multisum(int x, int y, int z) {
  if (z < 1 || x < y + 2) return 0.0;
  std::map<std::pair<int, int>, double> memo;
  return f_inner(x, z, y, z, memo);
}

double piij_closed_form(double alpha, double gamma, int i, int j) {
  ETHSM_EXPECTS(j >= 1 && i - j >= 2, "pi_{i,j} defined for i-j >= 2, j >= 1");
  const double pi00 = pi00_closed_form(alpha);
  const double b = 1.0 - alpha;
  const double og = 1.0 - gamma;

  // Term 1: a^i (1-a)^j (1-g)^j f(i, j, j) pi00
  const double term1 = support::ipow(alpha, i) * support::ipow(b, j) *
                       support::ipow(og, j) * f_multisum(i, j, j) * pi00;

  // Term 2: a^{i-j} g (1-g)^{j-1} (1/(1-a)^{i-j-1} - 1) pi00
  const double term2 = support::ipow(alpha, i - j) * gamma *
                       support::ipow(og, j - 1) *
                       (1.0 / support::ipow(b, i - j - 1) - 1.0) * pi00;

  // Term 3: -g (1-g)^{j-1} sum_{k=1}^{j} a^{i-k} (1-a)^{j-k} f(i, j, j-k) pi00
  double sum = 0.0;
  for (int k = 1; k <= j; ++k) {
    sum += support::ipow(alpha, i - k) * support::ipow(b, j - k) *
           f_multisum(i, j, j - k);
  }
  const double term3 = -gamma * support::ipow(og, j - 1) * sum * pi00;

  return term1 + term2 + term3;
}

}  // namespace ethsm::markov
