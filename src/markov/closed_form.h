// Closed-form expressions from the paper (Sec. IV-C and Appendix A):
//   * pi_{0,0} = (1 - 2a) / (2a^3 - 4a^2 + 1)
//   * pi_{i,0} = a^i * pi_{0,0}
//   * pi_{1,1} = (a - a^2) * pi_{0,0}
//   * the nested-summation helper f(x, y, z) of Eq. (2) / Appendix A
//   * the paper's general pi_{i,j} formula (Eq. (2))
//
// The numeric solver (stationary.h) is the library's source of truth; these
// forms serve as oracles in the test suite. The general Eq. (2) expression,
// with the summation nesting read as "each inner index's lower bound is one
// below its enclosing index's" (lb(s_k) = y + 2 - (z - k)), matches the
// numeric stationary distribution to machine precision for every state and
// every (alpha, gamma) tested -- i.e. the paper's formula is exact.

#ifndef ETHSM_MARKOV_CLOSED_FORM_H
#define ETHSM_MARKOV_CLOSED_FORM_H

namespace ethsm::markov {

/// pi_{0,0} (paper Sec. IV-C). Requires 0 <= alpha < 1/2.
[[nodiscard]] double pi00_closed_form(double alpha);

/// pi_{i,0} = alpha^i * pi_{0,0}, i >= 1.
[[nodiscard]] double pii0_closed_form(double alpha, int i);

/// pi_{1,1} = (alpha - alpha^2) * pi_{0,0}.
[[nodiscard]] double pi11_closed_form(double alpha);

/// The multiple-summation function f(x, y, z) of Eq. (2):
///   f(x,y,z) = sum_{s_z = y+2}^{x} sum_{s_{z-1} = y+1}^{s_z} ...
///              sum_{s_1 = y-z+3}^{s_2} 1         for z >= 1, x >= y + 2,
///   f(x,y,z) = 0 otherwise.
/// Appendix A closed forms: f(x,y,1) = x - y - 1,
/// f(x,y,2) = (x - y - 1)(x - y + 2) / 2.
[[nodiscard]] double f_multisum(int x, int y, int z);

/// The paper's general stationary expression for pi_{i,j}, i - j >= 2, j >= 1
/// (Eq. (2)), evaluated literally as printed.
[[nodiscard]] double piij_closed_form(double alpha, double gamma, int i, int j);

}  // namespace ethsm::markov

#endif  // ETHSM_MARKOV_CLOSED_FORM_H
