// The 2-dimensional Markov state (Ls, Lh) of paper Sec. IV-B.
//
// Ls = private-branch length, Lh = (common) public-branch length. The state
// space is {(0,0), (1,0), (1,1)} plus all (i,j) with i - j >= 2, j >= 0:
// whenever the pool's lead shrinks to 1 the race resolves immediately, so no
// other lead-<2 states persist.

#ifndef ETHSM_MARKOV_STATE_H
#define ETHSM_MARKOV_STATE_H

#include <compare>
#include <iosfwd>

namespace ethsm::markov {

struct State {
  int ls = 0;  ///< private branch length ("i" in the paper)
  int lh = 0;  ///< public branch length ("j" in the paper)

  friend constexpr auto operator<=>(const State&, const State&) = default;

  [[nodiscard]] constexpr int lead() const noexcept { return ls - lh; }

  /// Is this one of the persistent states of the chain?
  [[nodiscard]] constexpr bool valid() const noexcept {
    if (ls == 0 && lh == 0) return true;
    if (ls == 1 && (lh == 0 || lh == 1)) return true;
    return lh >= 0 && ls - lh >= 2;
  }
};

std::ostream& operator<<(std::ostream& os, const State& s);

}  // namespace ethsm::markov

#endif  // ETHSM_MARKOV_STATE_H
