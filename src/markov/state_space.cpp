#include "markov/state_space.h"

#include <ostream>

#include "support/check.h"

namespace ethsm::markov {

std::ostream& operator<<(std::ostream& os, const State& s) {
  return os << '(' << s.ls << ", " << s.lh << ')';
}

StateSpace::StateSpace(int max_lead) : max_lead_(max_lead) {
  ETHSM_EXPECTS(max_lead >= 2, "state space needs max_lead >= 2");
  states_.push_back(State{0, 0});
  states_.push_back(State{1, 0});
  states_.push_back(State{1, 1});
  for (int i = 2; i <= max_lead; ++i) {
    for (int j = 0; j <= i - 2; ++j) {
      states_.push_back(State{i, j});
    }
  }
}

int StateSpace::index_of(const State& s) const noexcept {
  if (s == State{0, 0}) return idx_00();
  if (s == State{1, 0}) return idx_10();
  if (s == State{1, 1}) return idx_11();
  if (s.ls < 2 || s.ls > max_lead_ || s.lh < 0 || s.ls - s.lh < 2) return -1;
  // Block of states with first coordinate i starts after 3 specials plus
  // sum_{k=2}^{i-1} (k-1) = (i-1)(i-2)/2 entries.
  const int base = 3 + (s.ls - 1) * (s.ls - 2) / 2;
  return base + s.lh;
}

const State& StateSpace::state_at(int index) const {
  ETHSM_EXPECTS(index >= 0 && index < size(), "state index out of range");
  return states_[static_cast<std::size_t>(index)];
}

}  // namespace ethsm::markov
