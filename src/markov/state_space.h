// Truncated enumeration of the Markov state space with dense indexing.
//
// The paper truncates at i, j < 200 for its numerical work (footnote 3); the
// stationary mass of states with i = max_lead decays like alpha^i, so even
// max_lead = 60 is far below double-precision noise for alpha <= 0.45. The
// truncation is explicit here so convergence can be tested (stationary_test).

#ifndef ETHSM_MARKOV_STATE_SPACE_H
#define ETHSM_MARKOV_STATE_SPACE_H

#include <vector>

#include "markov/state.h"

namespace ethsm::markov {

class StateSpace {
 public:
  /// Enumerates (0,0), (1,0), (1,1) and all (i,j), 2 <= i <= max_lead,
  /// 0 <= j <= i-2.
  explicit StateSpace(int max_lead);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(states_.size());
  }
  [[nodiscard]] int max_lead() const noexcept { return max_lead_; }

  /// Dense index of a state; -1 if outside the (truncated) space.
  [[nodiscard]] int index_of(const State& s) const noexcept;

  [[nodiscard]] const State& state_at(int index) const;

  [[nodiscard]] const std::vector<State>& states() const noexcept {
    return states_;
  }

  /// Well-known indices.
  [[nodiscard]] int idx_00() const noexcept { return 0; }
  [[nodiscard]] int idx_10() const noexcept { return 1; }
  [[nodiscard]] int idx_11() const noexcept { return 2; }

 private:
  int max_lead_;
  std::vector<State> states_;
};

}  // namespace ethsm::markov

#endif  // ETHSM_MARKOV_STATE_SPACE_H
