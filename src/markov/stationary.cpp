#include "markov/stationary.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/stats.h"

namespace ethsm::markov {

StationaryDistribution::StationaryDistribution(const StateSpace& space,
                                               std::vector<double> pi,
                                               int iterations, double residual)
    : space_(&space),
      pi_(std::move(pi)),
      iterations_(iterations),
      residual_(residual) {
  ETHSM_EXPECTS(static_cast<int>(pi_.size()) == space.size(),
                "distribution/space size mismatch");
}

double StationaryDistribution::at(const State& s) const {
  const int idx = space_->index_of(s);
  return idx < 0 ? 0.0 : pi_[static_cast<std::size_t>(idx)];
}

double StationaryDistribution::balance_residual(
    const TransitionModel& model) const {
  const auto n = static_cast<std::size_t>(space_->size());
  // Scratch reused across calls (sweeps evaluate thousands of models); the
  // assign() below only reallocates when a larger space comes along.
  thread_local std::vector<double> inflow;
  thread_local std::vector<double> outflow;
  inflow.assign(n, 0.0);
  outflow.assign(n, 0.0);

  const auto& row = model.row_offsets();
  const auto& col = model.columns();
  const auto& rate = model.rates();
  for (std::size_t s = 0; s < n; ++s) {
    const double ps = pi_[s];
    if (ps == 0.0) continue;
    double out_flux = 0.0;
    for (std::uint32_t k = row[s]; k < row[s + 1]; ++k) {
      const auto to = static_cast<std::size_t>(col[k]);
      if (to == s) continue;  // self-loops cancel in balance
      const double flux = ps * rate[k];
      out_flux += flux;
      inflow[to] += flux;
    }
    outflow[s] += out_flux;
  }
  double worst = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    worst = std::max(worst, std::fabs(inflow[s] - outflow[s]));
  }
  return worst;
}

StationaryDistribution solve_stationary(const TransitionModel& model,
                                        const StationaryOptions& options) {
  const auto n = static_cast<std::size_t>(model.space().size());
  const auto& row = model.row_offsets();
  const auto& col = model.columns();
  const auto& rate = model.rates();

  std::vector<double> pi;
  if (options.initial != nullptr && options.initial->size() == n) {
    // Warm start (e.g. the previous bisection step's solution). Renormalise
    // defensively; the fixed point does not depend on the starting vector.
    pi = *options.initial;
    double mass = 0.0;
    for (double p : pi) mass += p;
    if (mass > 0.0) {
      for (double& p : pi) p /= mass;
    } else {
      std::fill(pi.begin(), pi.end(), 0.0);
      pi[0] = 1.0;
    }
  } else {
    pi.assign(n, 0.0);
    pi[0] = 1.0;  // start at (0,0); any distribution works
  }

  // The ping-pong buffer survives across calls per thread; after the swap
  // dance it keeps whichever allocation is not returned to the caller.
  thread_local std::vector<double> next;
  next.assign(n, 0.0);

  double diff = 1.0;
  int iter = 0;
  for (; iter < options.max_iterations && diff > options.tolerance; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      const double ps = pi[s];
      if (ps == 0.0) continue;
      for (std::uint32_t k = row[s]; k < row[s + 1]; ++k) {
        next[static_cast<std::size_t>(col[k])] += ps * rate[k];
      }
    }
    diff = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      diff += std::fabs(next[s] - pi[s]);
    }
    pi.swap(next);
  }

  // Renormalise: the row sums are exactly 1 by construction, but a long
  // iteration accumulates rounding at the 1e-16 level.
  support::KahanSum total;
  for (double p : pi) total.add(p);
  ETHSM_ENSURES(total.value() > 0.0, "stationary mass vanished");
  for (double& p : pi) p /= total.value();

  return StationaryDistribution(model.space(), std::move(pi), iter, diff);
}

}  // namespace ethsm::markov
