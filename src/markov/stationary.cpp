#include "markov/stationary.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/stats.h"

namespace ethsm::markov {

StationaryDistribution::StationaryDistribution(const StateSpace& space,
                                               std::vector<double> pi,
                                               int iterations, double residual)
    : space_(&space),
      pi_(std::move(pi)),
      iterations_(iterations),
      residual_(residual) {
  ETHSM_EXPECTS(static_cast<int>(pi_.size()) == space.size(),
                "distribution/space size mismatch");
}

double StationaryDistribution::at(const State& s) const {
  const int idx = space_->index_of(s);
  return idx < 0 ? 0.0 : pi_[static_cast<std::size_t>(idx)];
}

double StationaryDistribution::balance_residual(
    const TransitionModel& model) const {
  const int n = space_->size();
  std::vector<double> inflow(static_cast<std::size_t>(n), 0.0);
  std::vector<double> outflow(static_cast<std::size_t>(n), 0.0);
  for (const Transition& t : model.transitions()) {
    if (t.from == t.to) continue;  // self-loops cancel in balance
    const double flux = pi_[static_cast<std::size_t>(t.from)] * t.rate;
    outflow[static_cast<std::size_t>(t.from)] += flux;
    inflow[static_cast<std::size_t>(t.to)] += flux;
  }
  double worst = 0.0;
  for (int s = 0; s < n; ++s) {
    worst = std::max(worst, std::fabs(inflow[static_cast<std::size_t>(s)] -
                                      outflow[static_cast<std::size_t>(s)]));
  }
  return worst;
}

StationaryDistribution solve_stationary(const TransitionModel& model,
                                        const StationaryOptions& options) {
  const int n = model.space().size();
  std::vector<double> pi(static_cast<std::size_t>(n), 0.0);
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  pi[0] = 1.0;  // start at (0,0); any distribution works

  double diff = 1.0;
  int iter = 0;
  for (; iter < options.max_iterations && diff > options.tolerance; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const Transition& t : model.transitions()) {
      next[static_cast<std::size_t>(t.to)] +=
          pi[static_cast<std::size_t>(t.from)] * t.rate;
    }
    diff = 0.0;
    for (int s = 0; s < n; ++s) {
      diff += std::fabs(next[static_cast<std::size_t>(s)] -
                        pi[static_cast<std::size_t>(s)]);
    }
    pi.swap(next);
  }

  // Renormalise: the row sums are exactly 1 by construction, but a long
  // iteration accumulates rounding at the 1e-16 level.
  support::KahanSum total;
  for (double p : pi) total.add(p);
  ETHSM_ENSURES(total.value() > 0.0, "stationary mass vanished");
  for (double& p : pi) p /= total.value();

  return StationaryDistribution(model.space(), std::move(pi), iter, diff);
}

}  // namespace ethsm::markov
