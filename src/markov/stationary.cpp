#include "markov/stationary.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/metrics.h"
#include "support/stats.h"

namespace ethsm::markov {

StationaryDistribution::StationaryDistribution(const StateSpace& space,
                                               std::vector<double> pi,
                                               int iterations, double residual,
                                               SolveMethod method)
    : space_(&space),
      pi_(std::move(pi)),
      iterations_(iterations),
      residual_(residual),
      method_(method) {
  ETHSM_EXPECTS(static_cast<int>(pi_.size()) == space.size(),
                "distribution/space size mismatch");
}

double StationaryDistribution::at(const State& s) const {
  const int idx = space_->index_of(s);
  return idx < 0 ? 0.0 : pi_[static_cast<std::size_t>(idx)];
}

double StationaryDistribution::balance_residual(
    const TransitionModel& model) const {
  const auto n = static_cast<std::size_t>(space_->size());
  // Scratch reused across calls (sweeps evaluate thousands of models); the
  // assign() below only reallocates when a larger space comes along.
  thread_local std::vector<double> inflow;
  thread_local std::vector<double> outflow;
  inflow.assign(n, 0.0);
  outflow.assign(n, 0.0);

  const auto& row = model.row_offsets();
  const auto& col = model.columns();
  const auto& rate = model.rates();
  for (std::size_t s = 0; s < n; ++s) {
    const double ps = pi_[s];
    if (ps == 0.0) continue;
    double out_flux = 0.0;
    for (std::uint32_t k = row[s]; k < row[s + 1]; ++k) {
      const auto to = static_cast<std::size_t>(col[k]);
      if (to == s) continue;  // self-loops cancel in balance
      const double flux = ps * rate[k];
      out_flux += flux;
      inflow[to] += flux;
    }
    outflow[s] += out_flux;
  }
  double worst = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    worst = std::max(worst, std::fabs(inflow[s] - outflow[s]));
  }
  return worst;
}

namespace {

/// Starting vector: the (renormalised) warm start when one is supplied and
/// sized correctly, otherwise a method-appropriate cold start. Power
/// iteration keeps its historical point mass at (0,0); Gauss-Seidel needs
/// support everywhere -- sweeping the point mass updates state 0 first,
/// before any inflow exists, and annihilates the vector -- so it cold-starts
/// from the uniform distribution. The fixed point does not depend on the
/// choice.
std::vector<double> initial_vector(std::size_t n,
                                   const StationaryOptions& options,
                                   SolveMethod method) {
  std::vector<double> pi;
  if (options.initial != nullptr && options.initial->size() == n) {
    // Warm start (e.g. the previous bisection step's solution). Renormalise
    // defensively; the fixed point does not depend on the starting vector.
    pi = *options.initial;
    double mass = 0.0;
    for (double p : pi) mass += p;
    if (mass > 0.0) {
      for (double& p : pi) p /= mass;
      return pi;
    }
  }
  if (method == SolveMethod::gauss_seidel) {
    pi.assign(n, 1.0 / static_cast<double>(n));
  } else {
    pi.assign(n, 0.0);
    pi[0] = 1.0;  // start at (0,0); any distribution works
  }
  return pi;
}

/// Power iteration pi <- pi * P, in place on `pi`. Consumes sweeps from
/// `iter` up to `max_iterations` total; returns the final L1 change.
double power_iterate(const TransitionModel& model, std::vector<double>& pi,
                     double tolerance, int max_iterations, int& iter) {
  const auto n = pi.size();
  const auto& row = model.row_offsets();
  const auto& col = model.columns();
  const auto& rate = model.rates();

  // The ping-pong buffer survives across calls per thread; after the swap
  // dance it keeps whichever allocation is not returned to the caller.
  thread_local std::vector<double> next;
  next.assign(n, 0.0);

  double diff = 1.0;
  for (; iter < max_iterations && diff > tolerance; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < n; ++s) {
      const double ps = pi[s];
      if (ps == 0.0) continue;
      for (std::uint32_t k = row[s]; k < row[s + 1]; ++k) {
        next[static_cast<std::size_t>(col[k])] += ps * rate[k];
      }
    }
    diff = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      diff += std::fabs(next[s] - pi[s]);
    }
    pi.swap(next);
  }
  return diff;
}

/// One Gauss-Seidel pass over the transposed structure: each state is
/// replaced by its inflow under the *current* vector (already-updated states
/// contribute their new values), with self-loops divided out. Mass is not
/// conserved mid-sweep, so the caller renormalises after each pass.
void gauss_seidel_sweep(const TransitionModel::Incoming& in,
                        std::vector<double>& pi) {
  const std::size_t n = pi.size();
  const auto* offsets = in.col_offsets.data();
  const auto* source = in.source.data();
  const auto* rate = in.rate.data();
  const auto* inv_diag = in.inv_diag.data();
  for (std::size_t c = 0; c < n; ++c) {
    double inflow = 0.0;
    for (std::uint32_t e = offsets[c]; e < offsets[c + 1]; ++e) {
      inflow += pi[static_cast<std::size_t>(source[e])] * rate[e];
    }
    pi[c] = inflow * inv_diag[c];
  }
}

/// Gauss-Seidel driver. Consumes sweeps from `iter` up to `sweep_limit`;
/// returns the final L1 change. Sets `stalled` when the sweeps produced a
/// non-finite or vanished vector, or exhausted `sweep_limit` short of the
/// tolerance; in both cases `pi` holds the last finite iterate as a warm
/// start for the power-iteration fallback. The per-sweep L1 change is NOT a
/// useful stall signal here: the iteration matrix is non-normal, and in the
/// large-alpha / small-gamma corner the change grows slowly for a couple of
/// hundred sweeps before collapsing -- so the only triggers are numerical
/// failure and the sweep budget.
///
/// Convergence bookkeeping (copy, mass scan, normalise, L1 diff) costs about
/// as much as the sweep itself, so it runs on a doubling schedule -- after
/// sweeps 1, 3, 7, then every 8 -- instead of every sweep. A warm start at
/// the fixed point still exits after a single sweep; a cold start overshoots
/// convergence by at most 7 sweeps, which is noise against the hundreds it
/// needs. Between checkpoints the vector is unnormalised; the fixed point is
/// scale-invariant and a handful of sweeps cannot overflow.
double gauss_seidel_iterate(const TransitionModel& model,
                            std::vector<double>& pi, double tolerance,
                            int sweep_limit, int& iter, bool& stalled) {
  const auto& in = model.incoming();
  const std::size_t n = pi.size();
  thread_local std::vector<double> previous;
  previous = pi;

  stalled = false;
  double diff = 1.0;
  int interval = 1;
  while (iter < sweep_limit && diff > tolerance) {
    const int block = std::min(interval, sweep_limit - iter);
    for (int b = 0; b < block; ++b) gauss_seidel_sweep(in, pi);
    iter += block;
    interval = std::min(interval * 2, 8);

    double mass = 0.0;
    for (double p : pi) mass += p;
    if (!std::isfinite(mass) || mass <= 0.0) {
      // Numerical failure; hand the last finite iterate to the fallback.
      pi = previous;
      stalled = true;
      return diff;
    }
    const double inv_mass = 1.0 / mass;
    double change = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      pi[s] *= inv_mass;
      change += std::fabs(pi[s] - previous[s]);
    }
    diff = change;
    previous = pi;
  }
  stalled = diff > tolerance;
  return diff;
}

/// Write-only observability tap (see support/metrics.h): solver volume,
/// total sweeps, which inner engine produced the result, and how often the
/// adaptive fallback fired. Compiled out under ETHSM_METRICS=OFF.
struct SolverMetrics {
  support::metrics::Counter& solves;
  support::metrics::Counter& iterations;
  support::metrics::Counter& gauss_seidel;
  support::metrics::Counter& power;
  support::metrics::Counter& fallbacks;

  static SolverMetrics& instance() {
    auto& reg = support::metrics::registry();
    static SolverMetrics m{
        reg.counter("ethsm_solver_solves_total",
                    "Stationary solves completed"),
        reg.counter("ethsm_solver_iterations_total",
                    "Total stationary sweeps across all solves"),
        reg.counter("ethsm_solver_gauss_seidel_total",
                    "Solves produced by the Gauss-Seidel engine"),
        reg.counter("ethsm_solver_power_total",
                    "Solves produced by power iteration"),
        reg.counter("ethsm_solver_fallbacks_total",
                    "Adaptive Gauss-Seidel -> power fallbacks taken"),
    };
    return m;
  }
};

}  // namespace

StationaryDistribution solve_stationary(const TransitionModel& model,
                                        const StationaryOptions& options) {
  const auto n = static_cast<std::size_t>(model.space().size());

  // A state whose self-loop carries (almost) the whole row makes the
  // Gauss-Seidel update 1/(1 - self_rate) degenerate -- alpha = 0 puts the
  // entire unit rate on the (0,0) self-loop -- so such chains go straight to
  // power iteration.
  bool degenerate_diagonal = false;
  for (double s : model.incoming().self_rate) {
    if (s >= 1.0 - 1e-12) {
      degenerate_diagonal = true;
      break;
    }
  }

  SolveMethod method = options.method;
  if (method == SolveMethod::automatic) {
    method = degenerate_diagonal ? SolveMethod::power : SolveMethod::gauss_seidel;
  }
  std::vector<double> pi = initial_vector(n, options, method);

  int iter = 0;
  double diff = 1.0;
  SolveMethod produced = method;
  if (method == SolveMethod::gauss_seidel) {
    // Under `automatic`, Gauss-Seidel gets half the iteration budget and the
    // fallback the remainder, so a hypothetical non-converging corner still
    // finishes within max_iterations total. Observed Gauss-Seidel sweep
    // counts stay three orders of magnitude below the default budget.
    const int sweep_limit = options.method == SolveMethod::automatic
                                ? options.max_iterations / 2
                                : options.max_iterations;
    bool stalled = false;
    diff = gauss_seidel_iterate(model, pi, options.tolerance, sweep_limit,
                                iter, stalled);
    if (stalled && options.method == SolveMethod::automatic) {
      // Adaptive fallback: finish with power iteration, warm-started from
      // the last finite Gauss-Seidel iterate; the combined sweep count is
      // reported in iterations().
      diff = power_iterate(model, pi, options.tolerance,
                           options.max_iterations, iter);
      produced = SolveMethod::power;
      if constexpr (support::metrics::kEnabled) {
        SolverMetrics::instance().fallbacks.add();
      }
    }
  } else {
    diff = power_iterate(model, pi, options.tolerance, options.max_iterations,
                         iter);
  }

  if constexpr (support::metrics::kEnabled) {
    SolverMetrics& m = SolverMetrics::instance();
    m.solves.add();
    m.iterations.add(static_cast<std::uint64_t>(iter < 0 ? 0 : iter));
    (produced == SolveMethod::gauss_seidel ? m.gauss_seidel : m.power).add();
  }

  // Renormalise: the row sums are exactly 1 by construction, but a long
  // iteration accumulates rounding at the 1e-16 level.
  support::KahanSum total;
  for (double p : pi) total.add(p);
  ETHSM_ENSURES(total.value() > 0.0, "stationary mass vanished");
  for (double& p : pi) p /= total.value();

  return StationaryDistribution(model.space(), std::move(pi), iter, diff,
                                produced);
}

}  // namespace ethsm::markov
