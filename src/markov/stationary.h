// Stationary distribution of the selfish-mining chain (paper Sec. IV-C).
//
// Because the total outgoing rate of every state equals the total block
// production rate (= 1 after the Sec. IV-B rescaling), the CTMC's stationary
// vector coincides with that of the discrete-time jump chain whose transition
// probabilities equal the rates. We solve that DTMC by power iteration on the
// sparse transition structure; the chain regenerates at (0,0) frequently, so
// convergence is fast for all alpha < 0.5.

#ifndef ETHSM_MARKOV_STATIONARY_H
#define ETHSM_MARKOV_STATIONARY_H

#include <vector>

#include "markov/transition_model.h"

namespace ethsm::markov {

struct StationaryOptions {
  double tolerance = 1e-14;  ///< L1 change per sweep at which to stop
  int max_iterations = 200'000;
  /// Optional warm start: when it matches the space size, power iteration
  /// begins from this (renormalised) vector instead of the point mass at
  /// (0,0). The fixed point is unchanged; only the iteration count drops.
  /// Used by the profitability-threshold bisection, whose successive alphas
  /// produce nearly identical chains (analysis/threshold.cpp).
  const std::vector<double>* initial = nullptr;
};

/// The solved distribution plus solver diagnostics.
class StationaryDistribution {
 public:
  StationaryDistribution(const StateSpace& space, std::vector<double> pi,
                         int iterations, double residual);

  /// pi(state) by dense index.
  [[nodiscard]] double operator[](int index) const {
    return pi_[static_cast<std::size_t>(index)];
  }
  /// pi(state) by coordinates; 0 for states outside the truncated space.
  [[nodiscard]] double at(const State& s) const;

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return pi_;
  }
  [[nodiscard]] int iterations() const noexcept { return iterations_; }
  /// Final L1 change per sweep (convergence witness).
  [[nodiscard]] double residual() const noexcept { return residual_; }
  /// Max |inflow - outflow| over states: how well global balance holds.
  [[nodiscard]] double balance_residual(const TransitionModel& model) const;

 private:
  const StateSpace* space_;
  std::vector<double> pi_;
  int iterations_;
  double residual_;
};

/// Solves for the stationary distribution of `model`.
[[nodiscard]] StationaryDistribution solve_stationary(
    const TransitionModel& model, const StationaryOptions& options = {});

}  // namespace ethsm::markov

#endif  // ETHSM_MARKOV_STATIONARY_H
