// Stationary distribution of the selfish-mining chain (paper Sec. IV-C).
//
// Because the total outgoing rate of every state equals the total block
// production rate (= 1 after the Sec. IV-B rescaling), the CTMC's stationary
// vector coincides with that of the discrete-time jump chain whose transition
// probabilities equal the rates. Two solvers share the fixed point:
//   * Gauss-Seidel (the default): in-place sweeps over the transposed (CSC)
//     transition structure, pi[s] = inflow(s) / (1 - self_rate(s)), so mass
//     propagates up the whole lead ladder within a single sweep (the state
//     enumeration orders (i, j) by increasing lead, which is also the
//     direction the pool-extension transitions point). This cuts iteration
//     counts hardest exactly where power iteration is slowest -- the
//     large-alpha / small-gamma corner with truncations up to 600.
//   * Power iteration: pi <- pi * P sweeps; kept both as the adaptive
//     fallback (taken on a degenerate diagonal, e.g. alpha = 0, on numerical
//     failure, or when Gauss-Seidel exhausts half the iteration budget) and
//     as the reference the differential suite (ctest -L kernel) pins
//     Gauss-Seidel against.
// Both support warm starts; the chain regenerates at (0,0) frequently, so
// convergence is fast for all alpha < 0.5 either way.

#ifndef ETHSM_MARKOV_STATIONARY_H
#define ETHSM_MARKOV_STATIONARY_H

#include <vector>

#include "markov/transition_model.h"

namespace ethsm::markov {

/// Which inner solver produced (or should produce) a stationary vector.
enum class SolveMethod {
  automatic,     ///< Gauss-Seidel with adaptive fallback to power iteration
  gauss_seidel,  ///< Gauss-Seidel sweeps only (no fallback)
  power,         ///< power iteration only (the pre-Gauss-Seidel behaviour)
};

struct StationaryOptions {
  double tolerance = 1e-14;  ///< L1 change per sweep at which to stop
  int max_iterations = 200'000;
  /// Optional warm start: when it matches the space size, the solver begins
  /// from this (renormalised) vector instead of the point mass at (0,0). The
  /// fixed point is unchanged; only the iteration count drops. Used by the
  /// profitability-threshold bisection, whose successive alphas produce
  /// nearly identical chains (analysis/threshold.cpp, via RevenueCache).
  const std::vector<double>* initial = nullptr;
  /// Solver selection; `automatic` runs Gauss-Seidel on half the iteration
  /// budget and falls back to warm-started power iteration if the sweeps
  /// fail numerically or exhaust that budget; chains with a degenerate
  /// diagonal (a near-unit self-loop, e.g. alpha = 0) go straight to power.
  /// The explicit values exist for the differential tests and the perf
  /// microbenchmarks.
  SolveMethod method = SolveMethod::automatic;
};

/// The solved distribution plus solver diagnostics.
class StationaryDistribution {
 public:
  StationaryDistribution(const StateSpace& space, std::vector<double> pi,
                         int iterations, double residual,
                         SolveMethod method = SolveMethod::power);

  /// pi(state) by dense index.
  [[nodiscard]] double operator[](int index) const {
    return pi_[static_cast<std::size_t>(index)];
  }
  /// pi(state) by coordinates; 0 for states outside the truncated space.
  [[nodiscard]] double at(const State& s) const;

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return pi_;
  }
  [[nodiscard]] int iterations() const noexcept { return iterations_; }
  /// Final L1 change per sweep (convergence witness).
  [[nodiscard]] double residual() const noexcept { return residual_; }
  /// Which solver produced the vector. `automatic` never appears here: a
  /// solve that fell back reports `power` with the total sweep count.
  [[nodiscard]] SolveMethod method() const noexcept { return method_; }
  /// Max |inflow - outflow| over states: how well global balance holds.
  [[nodiscard]] double balance_residual(const TransitionModel& model) const;

 private:
  const StateSpace* space_;
  std::vector<double> pi_;
  int iterations_;
  double residual_;
  SolveMethod method_;
};

/// Solves for the stationary distribution of `model`.
[[nodiscard]] StationaryDistribution solve_stationary(
    const TransitionModel& model, const StationaryOptions& options = {});

}  // namespace ethsm::markov

#endif  // ETHSM_MARKOV_STATIONARY_H
