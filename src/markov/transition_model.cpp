#include "markov/transition_model.h"

#include "support/check.h"

namespace ethsm::markov {

void MiningParams::validate() const {
  ETHSM_EXPECTS(alpha >= 0.0 && alpha < 0.5,
                "alpha must lie in [0, 0.5) for a positive-recurrent chain");
  ETHSM_EXPECTS(gamma >= 0.0 && gamma <= 1.0, "gamma must lie in [0, 1]");
}

const char* to_string(TransitionKind k) noexcept {
  switch (k) {
    case TransitionKind::honest_at_consensus: return "honest_at_consensus";
    case TransitionKind::pool_first_lead: return "pool_first_lead";
    case TransitionKind::pool_extend_lead: return "pool_extend_lead";
    case TransitionKind::honest_match: return "honest_match";
    case TransitionKind::pool_win_tie: return "pool_win_tie";
    case TransitionKind::honest_resolve_tie: return "honest_resolve_tie";
    case TransitionKind::honest_resolve_lead2_nofork:
      return "honest_resolve_lead2_nofork";
    case TransitionKind::honest_resolve_lead2_prefix:
      return "honest_resolve_lead2_prefix";
    case TransitionKind::honest_resolve_lead2_fork:
      return "honest_resolve_lead2_fork";
    case TransitionKind::honest_first_fork: return "honest_first_fork";
    case TransitionKind::honest_prefix_reroot: return "honest_prefix_reroot";
    case TransitionKind::honest_fork_extend: return "honest_fork_extend";
  }
  return "unknown";
}

TransitionModel::TransitionModel(const StateSpace& space,
                                 const MiningParams& params)
    : space_(space), params_(params) {
  params_.validate();
  build();
}

void TransitionModel::build() {
  const double a = params_.alpha;
  const double b = params_.beta();
  const double g = params_.gamma;
  const int n = space_.size();

  row_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  columns_.clear();
  rates_.clear();
  kinds_.clear();
  transitions_.clear();
  const auto reserve = static_cast<std::size_t>(n) * 3;
  columns_.reserve(reserve);
  rates_.reserve(reserve);
  kinds_.reserve(reserve);
  transitions_.reserve(reserve);

  auto idx = [this](int ls, int lh) {
    const int i = space_.index_of(State{ls, lh});
    ETHSM_ENSURES(i >= 0, "transition target outside the state space");
    return i;
  };

  for (int s = 0; s < n; ++s) {
    row_offsets_[static_cast<std::size_t>(s)] =
        static_cast<std::uint32_t>(columns_.size());
    const State st = space_.state_at(s);
    auto add = [&](int to, double rate, TransitionKind kind) {
      if (rate > 0.0) {
        columns_.push_back(to);
        rates_.push_back(rate);
        kinds_.push_back(kind);
        transitions_.push_back(Transition{s, to, rate, kind});
      }
    };

    if (st == State{0, 0}) {
      add(s, b, TransitionKind::honest_at_consensus);
      add(idx(1, 0), a, TransitionKind::pool_first_lead);
    } else if (st == State{1, 0}) {
      add(idx(2, 0), a, TransitionKind::pool_extend_lead);
      add(idx(1, 1), b, TransitionKind::honest_match);
    } else if (st == State{1, 1}) {
      // Pool reaches (2,1) and instantly wins; honest resolves either way.
      add(idx(0, 0), a, TransitionKind::pool_win_tie);
      add(idx(0, 0), b, TransitionKind::honest_resolve_tie);
    } else if (st.lh == 0) {
      // (i, 0), i >= 2: pool keeps extending; an honest block either forces
      // the final publish (i == 2) or opens the first public fork (i >= 3).
      const int to_pool = st.ls + 1 <= space_.max_lead()
                              ? idx(st.ls + 1, 0)
                              : s;  // truncation: self-loop
      add(to_pool, a, TransitionKind::pool_extend_lead);
      if (st.ls == 2) {
        add(idx(0, 0), b, TransitionKind::honest_resolve_lead2_nofork);
      } else {
        add(idx(st.ls, 1), b, TransitionKind::honest_first_fork);
      }
    } else {
      // (i, j), j >= 1, i - j >= 2.
      const int to_pool = st.ls + 1 <= space_.max_lead()
                              ? idx(st.ls + 1, st.lh)
                              : s;  // truncation: self-loop
      add(to_pool, a, TransitionKind::pool_extend_lead);
      if (st.lead() == 2) {
        add(idx(0, 0), b * g, TransitionKind::honest_resolve_lead2_prefix);
        add(idx(0, 0), b * (1.0 - g), TransitionKind::honest_resolve_lead2_fork);
      } else {
        add(idx(st.lead(), 1), b * g, TransitionKind::honest_prefix_reroot);
        add(idx(st.ls, st.lh + 1), b * (1.0 - g),
            TransitionKind::honest_fork_extend);
      }
    }
  }
  row_offsets_[static_cast<std::size_t>(n)] =
      static_cast<std::uint32_t>(columns_.size());
}

std::pair<const Transition*, const Transition*> TransitionModel::outgoing(
    int index) const {
  ETHSM_EXPECTS(index >= 0 && index < space_.size(), "state index out of range");
  const auto* base = transitions_.data();
  return {base + row_offsets_[static_cast<std::size_t>(index)],
          base + row_offsets_[static_cast<std::size_t>(index) + 1]};
}

}  // namespace ethsm::markov
