#include "markov/transition_model.h"

#include "support/check.h"

namespace ethsm::markov {

void MiningParams::validate() const {
  ETHSM_EXPECTS(alpha >= 0.0 && alpha < 0.5,
                "alpha must lie in [0, 0.5) for a positive-recurrent chain");
  ETHSM_EXPECTS(gamma >= 0.0 && gamma <= 1.0, "gamma must lie in [0, 1]");
}

const char* to_string(TransitionKind k) noexcept {
  switch (k) {
    case TransitionKind::honest_at_consensus: return "honest_at_consensus";
    case TransitionKind::pool_first_lead: return "pool_first_lead";
    case TransitionKind::pool_extend_lead: return "pool_extend_lead";
    case TransitionKind::honest_match: return "honest_match";
    case TransitionKind::pool_win_tie: return "pool_win_tie";
    case TransitionKind::honest_resolve_tie: return "honest_resolve_tie";
    case TransitionKind::honest_resolve_lead2_nofork:
      return "honest_resolve_lead2_nofork";
    case TransitionKind::honest_resolve_lead2_prefix:
      return "honest_resolve_lead2_prefix";
    case TransitionKind::honest_resolve_lead2_fork:
      return "honest_resolve_lead2_fork";
    case TransitionKind::honest_first_fork: return "honest_first_fork";
    case TransitionKind::honest_prefix_reroot: return "honest_prefix_reroot";
    case TransitionKind::honest_fork_extend: return "honest_fork_extend";
  }
  return "unknown";
}

static_assert(static_cast<int>(TransitionKind::honest_fork_extend) + 1 ==
                  kNumTransitionKinds,
              "kNumTransitionKinds out of sync with the TransitionKind enum");

TransitionModel::TransitionModel(const StateSpace& space,
                                 const MiningParams& params)
    : space_(space), params_(params) {
  params_.validate();
  build();
  build_kind_batched();
  build_incoming();
}

void TransitionModel::build() {
  const double a = params_.alpha;
  const double b = params_.beta();
  const double g = params_.gamma;
  const int n = space_.size();

  row_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  columns_.clear();
  rates_.clear();
  kinds_.clear();
  transitions_.clear();
  const auto reserve = static_cast<std::size_t>(n) * 3;
  columns_.reserve(reserve);
  rates_.reserve(reserve);
  kinds_.reserve(reserve);
  transitions_.reserve(reserve);

  auto idx = [this](int ls, int lh) {
    const int i = space_.index_of(State{ls, lh});
    ETHSM_ENSURES(i >= 0, "transition target outside the state space");
    return i;
  };

  for (int s = 0; s < n; ++s) {
    row_offsets_[static_cast<std::size_t>(s)] =
        static_cast<std::uint32_t>(columns_.size());
    const State st = space_.state_at(s);
    auto add = [&](int to, double rate, TransitionKind kind) {
      if (rate > 0.0) {
        columns_.push_back(to);
        rates_.push_back(rate);
        kinds_.push_back(kind);
        transitions_.push_back(Transition{s, to, rate, kind});
      }
    };

    if (st == State{0, 0}) {
      add(s, b, TransitionKind::honest_at_consensus);
      add(idx(1, 0), a, TransitionKind::pool_first_lead);
    } else if (st == State{1, 0}) {
      add(idx(2, 0), a, TransitionKind::pool_extend_lead);
      add(idx(1, 1), b, TransitionKind::honest_match);
    } else if (st == State{1, 1}) {
      // Pool reaches (2,1) and instantly wins; honest resolves either way.
      add(idx(0, 0), a, TransitionKind::pool_win_tie);
      add(idx(0, 0), b, TransitionKind::honest_resolve_tie);
    } else if (st.lh == 0) {
      // (i, 0), i >= 2: pool keeps extending; an honest block either forces
      // the final publish (i == 2) or opens the first public fork (i >= 3).
      const int to_pool = st.ls + 1 <= space_.max_lead()
                              ? idx(st.ls + 1, 0)
                              : s;  // truncation: self-loop
      add(to_pool, a, TransitionKind::pool_extend_lead);
      if (st.ls == 2) {
        add(idx(0, 0), b, TransitionKind::honest_resolve_lead2_nofork);
      } else {
        add(idx(st.ls, 1), b, TransitionKind::honest_first_fork);
      }
    } else {
      // (i, j), j >= 1, i - j >= 2.
      const int to_pool = st.ls + 1 <= space_.max_lead()
                              ? idx(st.ls + 1, st.lh)
                              : s;  // truncation: self-loop
      add(to_pool, a, TransitionKind::pool_extend_lead);
      if (st.lead() == 2) {
        add(idx(0, 0), b * g, TransitionKind::honest_resolve_lead2_prefix);
        add(idx(0, 0), b * (1.0 - g), TransitionKind::honest_resolve_lead2_fork);
      } else {
        add(idx(st.lead(), 1), b * g, TransitionKind::honest_prefix_reroot);
        add(idx(st.ls, st.lh + 1), b * (1.0 - g),
            TransitionKind::honest_fork_extend);
      }
    }
  }
  row_offsets_[static_cast<std::size_t>(n)] =
      static_cast<std::uint32_t>(columns_.size());
}

void TransitionModel::build_kind_batched() {
  const std::size_t nnz = rates_.size();
  // Counting sort by kind, stable within a kind (original CSR entry order),
  // so the permutation -- and every sum the reward kernel takes over it --
  // is deterministic.
  std::array<std::uint32_t, kNumTransitionKinds> counts{};
  for (TransitionKind k : kinds_) {
    ++counts[static_cast<std::size_t>(static_cast<std::uint8_t>(k))];
  }
  batched_.offsets[0] = 0;
  for (int k = 0; k < kNumTransitionKinds; ++k) {
    batched_.offsets[static_cast<std::size_t>(k) + 1] =
        batched_.offsets[static_cast<std::size_t>(k)] +
        counts[static_cast<std::size_t>(k)];
  }
  batched_.source.resize(nnz);
  batched_.rate.resize(nnz);
  batched_.distance.resize(nnz);

  std::array<std::uint32_t, kNumTransitionKinds> cursor{};
  for (int k = 0; k < kNumTransitionKinds; ++k) {
    cursor[static_cast<std::size_t>(k)] =
        batched_.offsets[static_cast<std::size_t>(k)];
  }
  const int n = space_.size();
  for (int s = 0; s < n; ++s) {
    const State st = space_.state_at(s);
    for (std::uint32_t e = row_offsets_[static_cast<std::size_t>(s)];
         e < row_offsets_[static_cast<std::size_t>(s) + 1]; ++e) {
      const TransitionKind kind = kinds_[e];
      const auto slot = cursor[static_cast<std::size_t>(
          static_cast<std::uint8_t>(kind))]++;
      batched_.source[slot] = s;
      batched_.rate[slot] = rates_[e];
      // The locked-in uncle distance is the only state dependence of the
      // Appendix-B reward flow: the pool's full lead i for Case 10, the
      // effective lead i-j for Case 7 (analysis/reward_cases.cpp).
      int distance = 0;
      if (kind == TransitionKind::honest_first_fork) {
        distance = st.ls;
      } else if (kind == TransitionKind::honest_prefix_reroot) {
        distance = st.lead();
      }
      batched_.distance[slot] = distance;
    }
  }
}

void TransitionModel::build_incoming() {
  const auto n = static_cast<std::size_t>(space_.size());
  const std::size_t nnz = rates_.size();
  incoming_.col_offsets.assign(n + 1, 0);
  incoming_.self_rate.assign(n, 0.0);

  // Counting sort by target column; self-loops go to self_rate instead of
  // the entry arrays (Gauss-Seidel divides them out).
  std::size_t off_diagonal = 0;
  for (std::size_t e = 0; e < nnz; ++e) {
    const auto to = static_cast<std::size_t>(columns_[e]);
    if (static_cast<int>(to) == transitions_[e].from) continue;
    ++incoming_.col_offsets[to + 1];
    ++off_diagonal;
  }
  for (std::size_t c = 0; c < n; ++c) {
    incoming_.col_offsets[c + 1] += incoming_.col_offsets[c];
  }
  incoming_.source.resize(off_diagonal);
  incoming_.rate.resize(off_diagonal);

  std::vector<std::uint32_t> cursor(incoming_.col_offsets.begin(),
                                    incoming_.col_offsets.end() - 1);
  for (const Transition& t : transitions_) {
    if (t.from == t.to) {
      incoming_.self_rate[static_cast<std::size_t>(t.from)] += t.rate;
      continue;
    }
    const auto slot = cursor[static_cast<std::size_t>(t.to)]++;
    incoming_.source[slot] = t.from;
    incoming_.rate[slot] = t.rate;
  }

  incoming_.inv_diag.resize(n);
  for (std::size_t c = 0; c < n; ++c) {
    const double d = 1.0 - incoming_.self_rate[c];
    incoming_.inv_diag[c] = d > 1e-12 ? 1.0 / d : 0.0;
  }
}

std::pair<const Transition*, const Transition*> TransitionModel::outgoing(
    int index) const {
  ETHSM_EXPECTS(index >= 0 && index < space_.size(), "state index out of range");
  const auto* base = transitions_.data();
  return {base + row_offsets_[static_cast<std::size_t>(index)],
          base + row_offsets_[static_cast<std::size_t>(index) + 1]};
}

}  // namespace ethsm::markov
