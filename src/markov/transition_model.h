// Transition rates of the selfish-mining Markov process (paper Sec. IV-C,
// Fig. 7), labelled with the Appendix-B case that analyses each transition's
// new ("target") block. The labels are what the reward analysis keys on.

#ifndef ETHSM_MARKOV_TRANSITION_MODEL_H
#define ETHSM_MARKOV_TRANSITION_MODEL_H

#include <array>
#include <cstdint>
#include <vector>

#include "markov/state_space.h"

namespace ethsm::markov {

/// Hash-power split (paper Sec. III-A); beta = 1 - alpha implicitly.
struct MiningParams {
  double alpha = 0.3;  ///< selfish pool's share
  double gamma = 0.5;  ///< honest share mining on the pool's branch at ties

  void validate() const;
  [[nodiscard]] double beta() const noexcept { return 1.0 - alpha; }
};

/// Which structural event a transition represents; numbering follows the
/// Appendix-B cases (see analysis/reward_cases.h for the reward attribution).
enum class TransitionKind : std::uint8_t {
  honest_at_consensus,        ///< Case 1:  (0,0) -b-> (0,0)
  pool_first_lead,            ///< Case 2:  (0,0) -a-> (1,0)
  pool_extend_lead,           ///< Case 3/6: pool extends its private branch
  honest_match,               ///< Case 4:  (1,0) -b-> (1,1)
  pool_win_tie,               ///< Case 5a: (1,1) -a-> (0,0)
  honest_resolve_tie,         ///< Case 5b: (1,1) -b-> (0,0)
  honest_resolve_lead2_nofork,///< Case 9:  (2,0) -b-> (0,0)
  honest_resolve_lead2_prefix,///< Case 8:  (j+2,j) -bg-> (0,0), j >= 1
  honest_resolve_lead2_fork,  ///< Case 12: (j+2,j) -b(1-g)-> (0,0), j >= 1
  honest_first_fork,          ///< Case 10: (i,0) -b-> (i,1), i >= 3
  honest_prefix_reroot,       ///< Case 7:  (i,j) -bg-> (i-j,1), i-j >= 3, j >= 1
  honest_fork_extend,         ///< Case 11: (i,j) -b(1-g)-> (i,j+1), i-j >= 3, j >= 1
};

[[nodiscard]] const char* to_string(TransitionKind k) noexcept;

/// Number of TransitionKind enumerators (the kind-batched layout sizes its
/// offset table with this; a static_assert in transition_model.cpp keeps it
/// in sync with the enum).
inline constexpr int kNumTransitionKinds = 12;

struct Transition {
  int from = -1;
  int to = -1;
  double rate = 0.0;
  TransitionKind kind{};
};

/// All outgoing transitions for every state in the (truncated) space.
/// Invariant: outgoing rates of every state sum to exactly 1 (the total block
/// production rate after the Sec. IV-B time rescaling); at the truncation
/// boundary the pool-extension transition self-loops, which is harmless
/// because the boundary mass is ~alpha^max_lead.
///
/// Storage is CSR (compressed sparse row): row s owns the half-open entry
/// range [row_offsets()[s], row_offsets()[s+1]) of the parallel column /
/// rate / kind arrays. The power-iteration solver streams those arrays
/// row-contiguously (structure-of-arrays: the rate sweep touches no kind
/// bytes); the array-of-structs `transitions()` edge list is kept as the
/// convenient view for the reward analysis and the tests.
///
/// Two derived layouts are built alongside the CSR arrays (once per model,
/// one counting-sort pass each):
///   * kind_batched(): the CSR entries permuted so all entries of one
///     TransitionKind are contiguous. The Appendix-B reward flow of a
///     transition depends on the source state only through the locked-in
///     uncle distance -- and only for two of the twelve kinds -- so the
///     reward kernel (analysis::compute_revenue) evaluates one branch-free
///     weighted-sum loop per kind instead of a per-entry switch.
///   * incoming(): the transposed (CSC) view, column c owning the entries
///     that flow *into* state c. The Gauss-Seidel stationary solver sweeps
///     this layout so each state can be updated in place from its inflows.
class TransitionModel {
 public:
  TransitionModel(const StateSpace& space, const MiningParams& params);

  /// CSR entries permuted into per-kind contiguous batches. Entry order
  /// within a batch follows the original CSR order, so the layout is
  /// deterministic. `distance` is the locked-in uncle reference distance of
  /// the transition's target block for the two state-dependent kinds
  /// (honest_first_fork: the pool's lead i; honest_prefix_reroot: the
  /// effective lead i-j) and 0 for the ten state-independent kinds.
  struct KindBatched {
    /// Batch k (TransitionKind underlying value) spans
    /// [offsets[k], offsets[k+1]) of the arrays below.
    std::array<std::uint32_t, kNumTransitionKinds + 1> offsets{};
    std::vector<std::int32_t> source;    ///< source-state index per entry
    std::vector<double> rate;            ///< transition rate per entry
    std::vector<std::int32_t> distance;  ///< uncle distance, 0 when constant
  };

  /// Transposed (CSC) view: column c spans
  /// [col_offsets[c], col_offsets[c+1]) of the source/rate arrays; self-loop
  /// entries (truncation boundary, (0,0)) are *excluded* -- their total rate
  /// per state is in self_rate. Gauss-Seidel consumes this directly:
  /// pi[c] = (sum of inflows) / (1 - self_rate[c]).
  struct Incoming {
    std::vector<std::uint32_t> col_offsets;  ///< size() + 1 offsets
    std::vector<std::int32_t> source;        ///< source-state index per entry
    std::vector<double> rate;                ///< transition rate per entry
    std::vector<double> self_rate;           ///< self-loop rate per state
    /// 1 / (1 - self_rate) per state, precomputed so the Gauss-Seidel inner
    /// loop multiplies instead of divides; 0.0 for a degenerate diagonal
    /// (self_rate ~ 1), which the solver routes to power iteration anyway.
    std::vector<double> inv_diag;
  };

  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  /// Transitions leaving state `index` (contiguous in the vector).
  [[nodiscard]] std::pair<const Transition*, const Transition*> outgoing(
      int index) const;

  /// CSR row offsets: size() + 1 entries; row s spans
  /// [row_offsets()[s], row_offsets()[s+1]) of the arrays below.
  [[nodiscard]] const std::vector<std::uint32_t>& row_offsets() const noexcept {
    return row_offsets_;
  }
  /// CSR column (target-state) indices, aligned with rates()/kinds().
  [[nodiscard]] const std::vector<std::int32_t>& columns() const noexcept {
    return columns_;
  }
  /// CSR transition rates, aligned with columns().
  [[nodiscard]] const std::vector<double>& rates() const noexcept {
    return rates_;
  }
  /// CSR transition kinds, aligned with columns().
  [[nodiscard]] const std::vector<TransitionKind>& kinds() const noexcept {
    return kinds_;
  }

  /// The kind-batched permutation (reward kernel input).
  [[nodiscard]] const KindBatched& kind_batched() const noexcept {
    return batched_;
  }
  /// The transposed CSC view (Gauss-Seidel solver input).
  [[nodiscard]] const Incoming& incoming() const noexcept { return incoming_; }

  [[nodiscard]] const StateSpace& space() const noexcept { return space_; }
  [[nodiscard]] const MiningParams& params() const noexcept { return params_; }

 private:
  void build();
  void build_kind_batched();
  void build_incoming();

  const StateSpace& space_;
  MiningParams params_;
  // CSR storage (primary).
  std::vector<std::uint32_t> row_offsets_;  ///< size() + 1 offsets
  std::vector<std::int32_t> columns_;
  std::vector<double> rates_;
  std::vector<TransitionKind> kinds_;
  // Edge-list view (same order as the CSR arrays).
  std::vector<Transition> transitions_;
  // Derived layouts (built once in the constructor).
  KindBatched batched_;
  Incoming incoming_;
};

}  // namespace ethsm::markov

#endif  // ETHSM_MARKOV_TRANSITION_MODEL_H
