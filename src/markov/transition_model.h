// Transition rates of the selfish-mining Markov process (paper Sec. IV-C,
// Fig. 7), labelled with the Appendix-B case that analyses each transition's
// new ("target") block. The labels are what the reward analysis keys on.

#ifndef ETHSM_MARKOV_TRANSITION_MODEL_H
#define ETHSM_MARKOV_TRANSITION_MODEL_H

#include <cstdint>
#include <vector>

#include "markov/state_space.h"

namespace ethsm::markov {

/// Hash-power split (paper Sec. III-A); beta = 1 - alpha implicitly.
struct MiningParams {
  double alpha = 0.3;  ///< selfish pool's share
  double gamma = 0.5;  ///< honest share mining on the pool's branch at ties

  void validate() const;
  [[nodiscard]] double beta() const noexcept { return 1.0 - alpha; }
};

/// Which structural event a transition represents; numbering follows the
/// Appendix-B cases (see analysis/reward_cases.h for the reward attribution).
enum class TransitionKind : std::uint8_t {
  honest_at_consensus,        ///< Case 1:  (0,0) -b-> (0,0)
  pool_first_lead,            ///< Case 2:  (0,0) -a-> (1,0)
  pool_extend_lead,           ///< Case 3/6: pool extends its private branch
  honest_match,               ///< Case 4:  (1,0) -b-> (1,1)
  pool_win_tie,               ///< Case 5a: (1,1) -a-> (0,0)
  honest_resolve_tie,         ///< Case 5b: (1,1) -b-> (0,0)
  honest_resolve_lead2_nofork,///< Case 9:  (2,0) -b-> (0,0)
  honest_resolve_lead2_prefix,///< Case 8:  (j+2,j) -bg-> (0,0), j >= 1
  honest_resolve_lead2_fork,  ///< Case 12: (j+2,j) -b(1-g)-> (0,0), j >= 1
  honest_first_fork,          ///< Case 10: (i,0) -b-> (i,1), i >= 3
  honest_prefix_reroot,       ///< Case 7:  (i,j) -bg-> (i-j,1), i-j >= 3, j >= 1
  honest_fork_extend,         ///< Case 11: (i,j) -b(1-g)-> (i,j+1), i-j >= 3, j >= 1
};

[[nodiscard]] const char* to_string(TransitionKind k) noexcept;

struct Transition {
  int from = -1;
  int to = -1;
  double rate = 0.0;
  TransitionKind kind{};
};

/// All outgoing transitions for every state in the (truncated) space.
/// Invariant: outgoing rates of every state sum to exactly 1 (the total block
/// production rate after the Sec. IV-B time rescaling); at the truncation
/// boundary the pool-extension transition self-loops, which is harmless
/// because the boundary mass is ~alpha^max_lead.
///
/// Storage is CSR (compressed sparse row): row s owns the half-open entry
/// range [row_offsets()[s], row_offsets()[s+1]) of the parallel column /
/// rate / kind arrays. The power-iteration solver streams those arrays
/// row-contiguously (structure-of-arrays: the rate sweep touches no kind
/// bytes); the array-of-structs `transitions()` edge list is kept as the
/// convenient view for the reward analysis and the tests.
class TransitionModel {
 public:
  TransitionModel(const StateSpace& space, const MiningParams& params);

  [[nodiscard]] const std::vector<Transition>& transitions() const noexcept {
    return transitions_;
  }
  /// Transitions leaving state `index` (contiguous in the vector).
  [[nodiscard]] std::pair<const Transition*, const Transition*> outgoing(
      int index) const;

  /// CSR row offsets: size() + 1 entries; row s spans
  /// [row_offsets()[s], row_offsets()[s+1]) of the arrays below.
  [[nodiscard]] const std::vector<std::uint32_t>& row_offsets() const noexcept {
    return row_offsets_;
  }
  /// CSR column (target-state) indices, aligned with rates()/kinds().
  [[nodiscard]] const std::vector<std::int32_t>& columns() const noexcept {
    return columns_;
  }
  /// CSR transition rates, aligned with columns().
  [[nodiscard]] const std::vector<double>& rates() const noexcept {
    return rates_;
  }
  /// CSR transition kinds, aligned with columns().
  [[nodiscard]] const std::vector<TransitionKind>& kinds() const noexcept {
    return kinds_;
  }

  [[nodiscard]] const StateSpace& space() const noexcept { return space_; }
  [[nodiscard]] const MiningParams& params() const noexcept { return params_; }

 private:
  void build();

  const StateSpace& space_;
  MiningParams params_;
  // CSR storage (primary).
  std::vector<std::uint32_t> row_offsets_;  ///< size() + 1 offsets
  std::vector<std::int32_t> columns_;
  std::vector<double> rates_;
  std::vector<TransitionKind> kinds_;
  // Edge-list view (same order as the CSR arrays).
  std::vector<Transition> transitions_;
};

}  // namespace ethsm::markov

#endif  // ETHSM_MARKOV_TRANSITION_MODEL_H
