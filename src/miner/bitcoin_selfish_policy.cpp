#include "miner/bitcoin_selfish_policy.h"

namespace ethsm::miner {

namespace {

SelfishPolicyConfig bitcoin_config(std::uint32_t pool_miner_id) {
  SelfishPolicyConfig cfg;
  cfg.reference_uncles = false;  // Bitcoin has no uncle mechanism at all
  cfg.reference_horizon = 0;
  cfg.max_uncles_per_block = 0;
  cfg.pool_miner_id = pool_miner_id;
  return cfg;
}

}  // namespace

BitcoinSelfishPolicy::BitcoinSelfishPolicy(chain::BlockTree& tree,
                                           std::uint32_t pool_miner_id)
    : inner_(tree, bitcoin_config(pool_miner_id)) {}

}  // namespace ethsm::miner
