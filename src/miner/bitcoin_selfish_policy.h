// Eyal–Sirer "Selfish-Mine" for Bitcoin (the paper's comparison baseline,
// Sec. V-C / Fig. 10 "Ittay Model in Bitcoin").
//
// The chain dynamics of Algorithm 1 are exactly the Eyal–Sirer strategy; what
// Ethereum adds is the uncle/nephew reward plumbing. This wrapper therefore
// reuses SelfishPolicy with uncle referencing disabled, and exists as its own
// type so that (a) Bitcoin experiments read as Bitcoin experiments at call
// sites and (b) the equivalence itself is pinned by tests: running this policy
// must reproduce the Eyal–Sirer closed-form revenue (analysis/bitcoin_es.h).

#ifndef ETHSM_MINER_BITCOIN_SELFISH_POLICY_H
#define ETHSM_MINER_BITCOIN_SELFISH_POLICY_H

#include "miner/selfish_policy.h"

namespace ethsm::miner {

class BitcoinSelfishPolicy {
 public:
  explicit BitcoinSelfishPolicy(chain::BlockTree& tree,
                                std::uint32_t pool_miner_id = 0);

  chain::BlockId on_pool_block(double now) { return inner_.on_pool_block(now); }
  void on_honest_block(chain::BlockId b, double now) {
    inner_.on_honest_block(b, now);
  }
  chain::BlockId finalize(double now) { return inner_.finalize(now); }

  [[nodiscard]] PublicView public_view() const { return inner_.public_view(); }
  [[nodiscard]] int private_length() const { return inner_.private_length(); }
  [[nodiscard]] int public_length() const { return inner_.public_length(); }
  [[nodiscard]] const SelfishActionCounts& actions() const {
    return inner_.actions();
  }

  /// The underlying Algorithm-1 machine (for tests asserting equivalence).
  [[nodiscard]] const SelfishPolicy& inner() const { return inner_; }

 private:
  SelfishPolicy inner_;
};

}  // namespace ethsm::miner

#endif  // ETHSM_MINER_BITCOIN_SELFISH_POLICY_H
