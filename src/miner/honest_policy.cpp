#include "miner/honest_policy.h"

#include "chain/uncle_index.h"
#include "support/check.h"

namespace ethsm::miner {

HonestPolicy::HonestPolicy(double gamma, const rewards::RewardConfig& rewards)
    : gamma_(gamma),
      horizon_(rewards.reference_horizon()),
      max_refs_(rewards.max_uncles_per_block) {
  ETHSM_EXPECTS(gamma >= 0.0 && gamma <= 1.0, "gamma must lie in [0, 1]");
}

chain::BlockId HonestPolicy::choose_parent(const PublicView& view,
                                           support::Xoshiro256& rng) const {
  if (!view.tie) return view.consensus_tip;
  return rng.bernoulli(gamma_) ? view.pool_branch_tip : view.honest_branch_tip;
}

chain::BlockId HonestPolicy::parent_for_preference(const PublicView& view,
                                                   bool prefers_pool_branch) {
  if (!view.tie) return view.consensus_tip;
  return prefers_pool_branch ? view.pool_branch_tip : view.honest_branch_tip;
}

chain::BlockId HonestPolicy::mine_block(chain::BlockTree& tree,
                                        chain::BlockId parent, double now,
                                        std::uint32_t miner_id) {
  uncle_scratch_.refs.clear();
  if (horizon_ > 0) {
    chain::collect_uncle_references(tree, parent, horizon_, max_refs_,
                                    uncle_scratch_);
  }
  const chain::BlockId id = tree.append(parent, chain::MinerClass::honest,
                                        miner_id, now, uncle_scratch_.refs);
  tree.publish(id, now);  // honest miners broadcast immediately
  return id;
}

}  // namespace ethsm::miner
