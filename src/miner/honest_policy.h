// Honest mining behaviour (paper Sec. II-B, III-C and the network model of
// Sec. IV-A): mine on a longest public chain; when two equal-length public
// branches exist, a fraction gamma of honest hash power mines on the selfish
// pool's branch (gamma captures the pool's communication capability); always
// reference every eligible unreferenced uncle; publish immediately.

#ifndef ETHSM_MINER_HONEST_POLICY_H
#define ETHSM_MINER_HONEST_POLICY_H

#include "chain/block_tree.h"
#include "chain/uncle_index.h"
#include "miner/policy_types.h"
#include "rewards/reward_schedule.h"
#include "support/rng.h"

namespace ethsm::miner {

class HonestPolicy {
 public:
  /// gamma in [0, 1]: probability an honest block lands on the pool's branch
  /// during a tie (paper Sec. IV-A; uniform tie-breaking = 0.5).
  HonestPolicy(double gamma, const rewards::RewardConfig& rewards);

  /// Picks the parent for the next honest block, sampling the tie-break.
  [[nodiscard]] chain::BlockId choose_parent(const PublicView& view,
                                             support::Xoshiro256& rng) const;

  /// As above, but with an externally fixed tie preference (population
  /// simulator: each miner carries its own sampled preference).
  [[nodiscard]] static chain::BlockId parent_for_preference(
      const PublicView& view, bool prefers_pool_branch);

  /// Creates and immediately publishes an honest block on `parent`,
  /// referencing all eligible uncles (Algorithm 1 line 8).
  chain::BlockId mine_block(chain::BlockTree& tree, chain::BlockId parent,
                            double now, std::uint32_t miner_id);

  [[nodiscard]] double gamma() const noexcept { return gamma_; }

 private:
  double gamma_;
  int horizon_;
  int max_refs_;
  chain::UncleScratch uncle_scratch_;  ///< per-block collection buffers
};

}  // namespace ethsm::miner

#endif  // ETHSM_MINER_HONEST_POLICY_H
