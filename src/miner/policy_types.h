// Shared types for mining policies (paper Sec. III-C).

#ifndef ETHSM_MINER_POLICY_TYPES_H
#define ETHSM_MINER_POLICY_TYPES_H

#include <cstdint>

#include "chain/block.h"

namespace ethsm::miner {

/// What honest miners can currently see (paper Sec. IV-A network model).
///
/// Under Algorithm 1 the public state is always one of:
///  * a unique best tip everybody mines on (`tie == false`), or
///  * two equal-length public branches -- the pool's published prefix and the
///    honest fork -- in which case a fraction gamma of honest hash power mines
///    on the pool's branch (`tie == true`).
struct PublicView {
  chain::BlockId consensus_tip = chain::kNoBlock;  ///< valid when !tie
  chain::BlockId pool_branch_tip = chain::kNoBlock;    ///< valid when tie
  chain::BlockId honest_branch_tip = chain::kNoBlock;  ///< valid when tie
  bool tie = false;
};

/// Telemetry: how often each branch of Algorithm 1 fired. Used by tests to
/// pin the state machine to the paper's case analysis and by examples for
/// narration.
struct SelfishActionCounts {
  std::uint64_t adopt = 0;            ///< line 10-12: public branch won
  std::uint64_t match = 0;            ///< line 13-14: publish last block (tie)
  std::uint64_t override_publish = 0; ///< line 15-17: publish all, pool wins
  std::uint64_t publish_one = 0;      ///< line 18-19: publish first unpublished
  std::uint64_t reroot = 0;           ///< line 20: new fork on the prefix
  std::uint64_t win_at_2_1 = 0;       ///< line 3-5: pool reaches (2,1), wins
};

}  // namespace ethsm::miner

#endif  // ETHSM_MINER_POLICY_TYPES_H
