#include "miner/selfish_policy.h"

#include "chain/uncle_index.h"
#include "support/check.h"

namespace ethsm::miner {

using chain::BlockId;
using chain::kNoBlock;

SelfishPolicy::SelfishPolicy(chain::BlockTree& tree, SelfishPolicyConfig config)
    : tree_(tree), config_(config), base_(tree.genesis()) {
  ETHSM_EXPECTS(config_.reference_horizon >= 0, "horizon must be >= 0");
  ETHSM_EXPECTS(config_.max_uncles_per_block >= 0, "cap must be >= 0");
}

BlockId SelfishPolicy::private_tip() const noexcept {
  return private_.empty() ? base_ : private_.back();
}

BlockId SelfishPolicy::published_pool_tip() const noexcept {
  return published_ == 0 ? kNoBlock
                         : private_[static_cast<std::size_t>(published_ - 1)];
}

int SelfishPolicy::public_length() const noexcept {
  // Both public branches always have equal length (paper Sec. III-C); the
  // published prefix count equals the honest fork length, except in (i, 0)
  // states where both are zero.
  return honest_len_ > published_ ? honest_len_ : published_;
}

std::span<const BlockId> SelfishPolicy::make_references(BlockId parent) {
  if (!config_.reference_uncles) return {};
  chain::collect_uncle_references(tree_, parent, config_.reference_horizon,
                                  config_.max_uncles_per_block, uncle_scratch_,
                                  config_.uncle_visibility);
  return uncle_scratch_.refs;
}

void SelfishPolicy::publish_up_to(int count, double now) {
  ETHSM_ASSERT(count <= static_cast<int>(private_.size()));
  for (int i = published_; i < count; ++i) {
    tree_.publish(private_[static_cast<std::size_t>(i)], now);
  }
  if (count > published_) published_ = count;
}

void SelfishPolicy::reset_to(BlockId new_base) {
  base_ = new_base;
  private_.clear();
  published_ = 0;
  honest_tip_ = kNoBlock;
  honest_len_ = 0;
}

BlockId SelfishPolicy::on_pool_block(double now) {
  // Algorithm 1 lines 1-2: reference uncles from the private branch, extend it.
  const BlockId parent = private_tip();
  const BlockId id = tree_.append(parent, chain::MinerClass::selfish,
                                  config_.pool_miner_id, now,
                                  make_references(parent));
  private_.push_back(id);

  // Lines 3-5: at (Ls, Lh) = (2, 1) the advantage is too small to keep
  // racing -- publish everything; the 2-block branch beats the 1-block fork.
  if (private_length() == 2 && public_length() == 1) {
    publish_up_to(2, now);
    ++actions_.win_at_2_1;
    reset_to(private_.back());
  }
  // Line 7: otherwise keep mining privately; nothing is published.
  return id;
}

void SelfishPolicy::on_honest_block(BlockId b, double now) {
  const BlockId parent = tree_.parent(b);
  ETHSM_EXPECTS(tree_.is_published(b), "honest blocks must arrive published");

  // Which public branch did the honest block extend, and is that branch a
  // prefix of the private branch?
  bool on_prefix;
  if (honest_len_ == 0 && published_ == 0) {
    // No fork in public view: the honest block must extend the consensus
    // base, which is by construction a prefix of the private branch.
    ETHSM_EXPECTS(parent == base_, "honest block off the public tip");
    on_prefix = true;
  } else if (parent == honest_tip_) {
    on_prefix = false;
  } else if (parent == published_pool_tip()) {
    on_prefix = true;
  } else {
    ETHSM_EXPECTS(false, "honest block extends neither public branch");
    return;  // unreachable
  }

  // Algorithm 1 line 9: the extended public branch now has this length.
  const int new_public_len = (on_prefix ? published_ : honest_len_) + 1;
  const int ls = private_length();

  if (ls < new_public_len) {
    // Lines 10-12: the public branch won; adopt it. The pool never abandons
    // unpublished work here (only states with Ls <= 1 reach this branch).
    ETHSM_ASSERT(published_ == ls);
    ++actions_.adopt;
    reset_to(b);
  } else if (ls == new_public_len) {
    // Lines 13-14: tie race -- publish the last (only) private block. Only
    // reachable from (1, 0): leads of >= 2 resolve before a tie can form.
    ETHSM_ASSERT(ls == 1 && published_ == 0 && on_prefix);
    publish_up_to(1, now);
    honest_tip_ = b;
    honest_len_ = 1;
    ++actions_.match;
  } else if (ls == new_public_len + 1) {
    // Lines 15-17: advantage down to one block -- publish the private branch;
    // it is strictly longer, so every miner adopts it (honest fork dies).
    publish_up_to(ls, now);
    ++actions_.override_publish;
    reset_to(private_.back());
  } else {
    // Lines 18-20: comfortable lead (Ls >= Lh + 2): release one more block.
    if (on_prefix) {
      if (published_ > 0) {
        // Line 20: the honest block forked off the *published prefix tip*;
        // everything up to that tip is now common history. Re-root there.
        base_ = private_[static_cast<std::size_t>(published_ - 1)];
        private_.erase(private_.begin(), private_.begin() + published_);
        published_ = 0;
        ++actions_.reroot;
      }
      honest_tip_ = b;
      honest_len_ = 1;
    } else {
      honest_tip_ = b;
      ++honest_len_;
    }
    publish_up_to(honest_len_, now);
    ++actions_.publish_one;
  }
}

BlockId SelfishPolicy::finalize(double now) {
  publish_up_to(private_length(), now);
  // Longest published branch wins; on equal length the honest branch was
  // visible first, so honest miners keep it (uniform first-seen rule).
  const BlockId tip =
      private_length() > honest_len_ ? private_tip()
      : honest_len_ > 0              ? honest_tip_
                                     : base_;
  return tip;
}

PublicView SelfishPolicy::public_view() const {
  PublicView view;
  if (published_ > 0) {
    // Whenever a prefix is published there is a live race between the pool's
    // published branch and the honest fork of equal length.
    ETHSM_ASSERT(honest_len_ == published_);
    view.tie = true;
    view.pool_branch_tip = published_pool_tip();
    view.honest_branch_tip = honest_tip_;
  } else {
    ETHSM_ASSERT(honest_len_ == 0);
    view.tie = false;
    view.consensus_tip = base_;
  }
  return view;
}

}  // namespace ethsm::miner
