// Algorithm 1 of the paper ("A selfish Mining Strategy in Ethereum") as an
// explicit state machine operating on a real BlockTree.
//
// The policy mirrors the paper's (Ls, Lh) bookkeeping:
//   * Ls -- length of the pool's private branch measured from the fork base,
//   * Lh -- length of the (always equal-length) public branches.
//
// Internally it maintains:
//   * `base_`       -- the fork base: last block everyone agrees on,
//   * `private_`    -- the pool's branch above the base (a prefix of which may
//                      already be published),
//   * `published_`  -- how many of `private_` are published (the pool's public
//                      prefix); invariant: published_ == honest_len_ whenever
//                      both branches exist,
//   * `honest_tip_/honest_len_` -- the honest public fork above the base.
//
// Every pool block references all eligible uncles visible on the private
// branch (Algorithm 1 line 1); this is what earns the pool nephew rewards and
// locks honest uncles to the distances derived in Appendix B.

#ifndef ETHSM_MINER_SELFISH_POLICY_H
#define ETHSM_MINER_SELFISH_POLICY_H

#include <cstdint>
#include <span>
#include <vector>

#include "chain/block_tree.h"
#include "chain/uncle_index.h"
#include "miner/policy_types.h"
#include "rewards/reward_schedule.h"

namespace ethsm::miner {

struct SelfishPolicyConfig {
  /// Maximum distance at which an uncle may be referenced (Ethereum: 6).
  int reference_horizon = rewards::kMaxUncleDistance;
  /// Per-block reference cap; 0 = unlimited (paper mode), 2 = real Ethereum.
  int max_uncles_per_block = 0;
  /// Disable uncle referencing entirely: this turns Algorithm 1 into the
  /// original Eyal–Sirer Bitcoin strategy (the chain dynamics of the two are
  /// identical; only the reward plumbing differs).
  bool reference_uncles = true;
  /// Miner id stamped on pool blocks (population simulator).
  std::uint32_t pool_miner_id = 0;
  /// Per-node visibility mask for uncle candidates (network simulator:
  /// indexed by BlockId, nonzero = the pool has actually received the
  /// block). Empty = the aggregate model, where publication implies
  /// visibility. The span must outlive the policy.
  std::span<const std::uint8_t> uncle_visibility = {};

  [[nodiscard]] static SelfishPolicyConfig from_rewards(
      const rewards::RewardConfig& rc) {
    SelfishPolicyConfig cfg;
    cfg.reference_horizon = rc.reference_horizon();
    cfg.max_uncles_per_block = rc.max_uncles_per_block;
    cfg.reference_uncles = cfg.reference_horizon > 0;
    return cfg;
  }
};

class SelfishPolicy {
 public:
  /// The tree must outlive the policy. The policy starts at consensus =
  /// the tree's genesis (state (0,0)).
  SelfishPolicy(chain::BlockTree& tree, SelfishPolicyConfig config);

  /// The pool mined a block: extend the private branch (and possibly win at
  /// (Ls, Lh) = (2, 1), Algorithm 1 lines 1-7). Returns the new block.
  chain::BlockId on_pool_block(double now);

  /// An honest block `b` was appended & published by the honest side; react
  /// per Algorithm 1 lines 8-20. `b`'s parent must be a current public tip.
  void on_honest_block(chain::BlockId b, double now);

  /// End of run: publish whatever is still private and return the tip of the
  /// winning chain (longest; ties go to the honest branch, which was public
  /// first). The policy is left in a terminal state.
  chain::BlockId finalize(double now);

  /// Network-layer resync hook (net/net_sim.h): restart Algorithm 1 with
  /// `new_base` as the consensus tip, dropping all race bookkeeping. Publishes
  /// nothing -- a caller that wants the private branch released must publish
  /// it first (e.g. via finalize); the dropped branch is forgotten, not
  /// published. Used when a natural latency fork overtakes the tracked public
  /// view, a situation Algorithm 1's two-branch state cannot express.
  void rebase(chain::BlockId new_base) { reset_to(new_base); }

  /// What honest miners can see right now.
  [[nodiscard]] PublicView public_view() const;

  [[nodiscard]] int private_length() const noexcept {  // Ls
    return static_cast<int>(private_.size());
  }
  [[nodiscard]] int public_length() const noexcept;  // Lh
  [[nodiscard]] chain::BlockId fork_base() const noexcept { return base_; }
  [[nodiscard]] chain::BlockId private_tip() const noexcept;
  /// Tip of the pool's published prefix; kNoBlock when nothing is published.
  [[nodiscard]] chain::BlockId published_pool_tip() const noexcept;
  [[nodiscard]] chain::BlockId honest_tip() const noexcept { return honest_tip_; }
  [[nodiscard]] int published_count() const noexcept { return published_; }
  [[nodiscard]] const SelfishActionCounts& actions() const noexcept {
    return actions_;
  }

 private:
  void publish_up_to(int count, double now);
  void reset_to(chain::BlockId new_base);
  /// Eligible uncle refs for a new pool block; the view aliases the policy's
  /// reusable scratch and is only valid until the next call.
  [[nodiscard]] std::span<const chain::BlockId> make_references(
      chain::BlockId parent);

  chain::BlockTree& tree_;
  SelfishPolicyConfig config_;
  chain::UncleScratch uncle_scratch_;
  chain::BlockId base_;
  std::vector<chain::BlockId> private_;
  int published_ = 0;
  chain::BlockId honest_tip_ = chain::kNoBlock;
  int honest_len_ = 0;
  SelfishActionCounts actions_;
};

}  // namespace ethsm::miner

#endif  // ETHSM_MINER_SELFISH_POLICY_H
