#include "miner/stubborn_policy.h"

#include "chain/uncle_index.h"
#include "support/check.h"

namespace ethsm::miner {

using chain::BlockId;
using chain::kNoBlock;

StubbornPolicy::StubbornPolicy(chain::BlockTree& tree, StubbornConfig config)
    : tree_(tree), config_(config), base_(tree.genesis()) {
  ETHSM_EXPECTS(config_.trail_stubbornness >= 0,
                "trail stubbornness must be >= 0");
  ETHSM_EXPECTS(config_.reference_horizon >= 0, "horizon must be >= 0");
}

BlockId StubbornPolicy::private_tip() const noexcept {
  return private_.empty() ? base_ : private_.back();
}

BlockId StubbornPolicy::published_pool_tip() const noexcept {
  return published_ == 0 ? kNoBlock
                         : private_[static_cast<std::size_t>(published_ - 1)];
}

std::span<const BlockId> StubbornPolicy::make_references(BlockId parent) {
  if (!config_.reference_uncles) return {};
  chain::collect_uncle_references(tree_, parent, config_.reference_horizon,
                                  config_.max_uncles_per_block,
                                  uncle_scratch_);
  return uncle_scratch_.refs;
}

void StubbornPolicy::publish_up_to(int count, double now) {
  ETHSM_ASSERT(count <= static_cast<int>(private_.size()));
  for (int i = published_; i < count; ++i) {
    tree_.publish(private_[static_cast<std::size_t>(i)], now);
  }
  if (count > published_) published_ = count;
}

void StubbornPolicy::reset_to(BlockId new_base) {
  base_ = new_base;
  private_.clear();
  published_ = 0;
  honest_tip_ = kNoBlock;
  honest_len_ = 0;
}

BlockId StubbornPolicy::on_pool_block(double now) {
  const bool was_tie = in_tie() &&
                       private_length() == honest_len_;  // fully matched race
  const bool was_behind = private_length() < honest_len_;

  const BlockId parent = private_tip();
  const BlockId id = tree_.append(parent, chain::MinerClass::selfish,
                                  config_.pool_miner_id, now,
                                  make_references(parent));
  private_.push_back(id);
  const int ls = private_length();

  if (was_tie) {
    // Won the block race from a tie. Algorithm 1 reveals and banks the win;
    // the equal-fork-stubborn miner stays dark and keeps racing.
    if (config_.equal_fork_stubborn) {
      ++actions_.held_fork;
    } else {
      publish_up_to(ls, now);
      ++actions_.tie_win;
      reset_to(private_.back());
    }
  } else if (was_behind && ls == honest_len_) {
    // Trail-stubborn catch-up: reveal the whole branch, forcing a tie race
    // between two equal-length public branches.
    publish_up_to(ls, now);
    ++actions_.caught_up;
  }
  // Otherwise: keep mining in the dark (covers Algorithm 1 line 7 and the
  // trailing case where the pool is still behind).
  return id;
}

void StubbornPolicy::on_honest_block(BlockId b, double now) {
  ETHSM_EXPECTS(tree_.is_published(b), "honest blocks must arrive published");
  const BlockId parent = tree_.parent(b);

  // Which public branch did it extend?
  bool on_prefix;
  if (honest_len_ == 0 && published_ == 0) {
    ETHSM_EXPECTS(parent == base_, "honest block off the public tip");
    on_prefix = true;
    honest_tip_ = b;
    honest_len_ = 1;
  } else if (parent == honest_tip_) {
    on_prefix = false;
    honest_tip_ = b;
    ++honest_len_;
  } else if (in_tie() && parent == published_pool_tip()) {
    on_prefix = true;
    if (published_ == private_length()) {
      // Our fully-published branch just became strictly longest public
      // history; we hold no secrets, so consensus moves to b.
      ++actions_.adopt;
      reset_to(b);
      return;
    }
    // Re-root at the published tip (Algorithm 1 line 20): the published
    // prefix is common history now; the race restarts one level up.
    base_ = private_[static_cast<std::size_t>(published_ - 1)];
    private_.erase(private_.begin(), private_.begin() + published_);
    published_ = 0;
    honest_tip_ = b;
    honest_len_ = 1;
    ++actions_.reroot;
  } else {
    ETHSM_EXPECTS(false, "honest block extends neither public branch");
    return;  // unreachable
  }
  (void)on_prefix;

  const int ls = private_length();
  const int lh = honest_len_;

  if (ls < lh) {
    const int deficit = lh - ls;
    if (deficit > config_.trail_stubbornness) {
      // Beyond our stubbornness: concede and adopt the honest chain.
      ++actions_.adopt;
      reset_to(honest_tip_);
    } else {
      // Trail-stubborn: keep mining the private branch from behind.
      ++actions_.trailed;
    }
  } else if (ls == lh) {
    // Honest drew level with our private branch: reveal everything and race.
    publish_up_to(ls, now);
    ++actions_.match;
  } else if (ls == lh + 1) {
    if (config_.lead_stubborn) {
      // Refuse the 1-block override win; tie the public race and keep the
      // last block in reserve.
      publish_up_to(lh, now);
      ++actions_.held_lead;
    } else {
      publish_up_to(ls, now);
      ++actions_.override_publish;
      reset_to(private_.back());
    }
  } else {
    // Comfortable lead: publish just enough to keep the public race level.
    publish_up_to(lh, now);
    ++actions_.publish_one;
  }
}

BlockId StubbornPolicy::finalize(double now) {
  publish_up_to(private_length(), now);
  return private_length() > honest_len_ ? private_tip()
         : honest_len_ > 0             ? honest_tip_
                                       : base_;
}

PublicView StubbornPolicy::public_view() const {
  PublicView view;
  if (in_tie()) {
    view.tie = true;
    view.pool_branch_tip = published_pool_tip();
    view.honest_branch_tip = honest_tip_;
  } else if (honest_len_ > published_) {
    view.tie = false;
    view.consensus_tip = honest_tip_;  // the unique longest public branch
  } else {
    ETHSM_ASSERT(honest_len_ == 0 && published_ == 0);
    view.tie = false;
    view.consensus_tip = base_;
  }
  return view;
}

}  // namespace ethsm::miner
