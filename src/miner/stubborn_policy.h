// Stubborn-mining strategies (Nayak, Kumar, Miller & Shi, EuroS&P 2016 --
// the paper's reference [5]) generalized to Ethereum's uncle economy.
//
// The paper studies Eyal–Sirer-style selfish mining and leaves "new mining
// strategies" as future work; this module provides the canonical family of
// deviations on the same chain substrate so that question can be explored
// empirically (bench_ext_stubborn):
//
//   * Lead stubborn (L): when the honest chain catches up to one block
//     behind, do NOT cash in the lead -- publish only enough to tie and keep
//     the last block secret, betting gamma will split the honest miners.
//   * Equal-fork stubborn (F): when winning the block race from a tie, keep
//     the new block secret instead of revealing the victory.
//   * Trail stubborn (T_j): when the honest chain overtakes by up to j
//     blocks, keep mining the private branch instead of giving up.
//
// With every knob off this machine is EXACTLY Algorithm 1 -- pinned by a
// test that feeds both policies identical schedules and requires identical
// block trees. Uncle referencing works as in SelfishPolicy, so all stubborn
// variants still collect uncle/nephew rewards.

#ifndef ETHSM_MINER_STUBBORN_POLICY_H
#define ETHSM_MINER_STUBBORN_POLICY_H

#include <cstdint>
#include <span>
#include <vector>

#include "chain/block_tree.h"
#include "chain/uncle_index.h"
#include "miner/policy_types.h"
#include "rewards/reward_schedule.h"

namespace ethsm::miner {

struct StubbornConfig {
  bool lead_stubborn = false;
  bool equal_fork_stubborn = false;
  /// Maximum deficit (honest length - private length) the pool tolerates
  /// before adopting the honest chain. 0 = give up immediately (Algorithm 1).
  int trail_stubbornness = 0;

  int reference_horizon = rewards::kMaxUncleDistance;
  int max_uncles_per_block = 0;
  bool reference_uncles = true;
  std::uint32_t pool_miner_id = 0;

  [[nodiscard]] static StubbornConfig from_rewards(
      const rewards::RewardConfig& rc) {
    StubbornConfig cfg;
    cfg.reference_horizon = rc.reference_horizon();
    cfg.max_uncles_per_block = rc.max_uncles_per_block;
    cfg.reference_uncles = cfg.reference_horizon > 0;
    return cfg;
  }
};

/// Telemetry: Algorithm-1 actions plus the stubborn deviations taken.
struct StubbornActionCounts {
  std::uint64_t adopt = 0;
  std::uint64_t match = 0;
  std::uint64_t override_publish = 0;
  std::uint64_t publish_one = 0;
  std::uint64_t reroot = 0;
  std::uint64_t tie_win = 0;            ///< revealed a tie-breaking block
  std::uint64_t held_lead = 0;          ///< L: refused an override win
  std::uint64_t held_fork = 0;          ///< F: kept a tie-winning block secret
  std::uint64_t trailed = 0;            ///< T: kept mining while behind
  std::uint64_t caught_up = 0;          ///< T: published after catching up
};

class StubbornPolicy {
 public:
  StubbornPolicy(chain::BlockTree& tree, StubbornConfig config);

  /// The pool mined a block; may reveal the branch per the stubborn rules.
  chain::BlockId on_pool_block(double now);

  /// An honest block `b` (already appended & published) arrived.
  void on_honest_block(chain::BlockId b, double now);

  /// Publish leftovers and return the winning tip (ties -> honest).
  chain::BlockId finalize(double now);

  [[nodiscard]] PublicView public_view() const;

  [[nodiscard]] int private_length() const noexcept {
    return static_cast<int>(private_.size());
  }
  [[nodiscard]] int honest_length() const noexcept { return honest_len_; }
  [[nodiscard]] int published_count() const noexcept { return published_; }
  [[nodiscard]] chain::BlockId fork_base() const noexcept { return base_; }
  [[nodiscard]] chain::BlockId private_tip() const noexcept;
  [[nodiscard]] chain::BlockId published_pool_tip() const noexcept;
  [[nodiscard]] const StubbornActionCounts& actions() const noexcept {
    return actions_;
  }

 private:
  void publish_up_to(int count, double now);
  void reset_to(chain::BlockId new_base);
  /// Eligible uncle refs for a new pool block; aliases the reusable scratch,
  /// valid only until the next call.
  [[nodiscard]] std::span<const chain::BlockId> make_references(
      chain::BlockId parent);
  [[nodiscard]] bool in_tie() const noexcept {
    return published_ >= 1 && published_ == honest_len_;
  }

  chain::BlockTree& tree_;
  StubbornConfig config_;
  chain::UncleScratch uncle_scratch_;
  chain::BlockId base_;
  std::vector<chain::BlockId> private_;
  int published_ = 0;
  chain::BlockId honest_tip_ = chain::kNoBlock;
  int honest_len_ = 0;
  StubbornActionCounts actions_;
};

}  // namespace ethsm::miner

#endif  // ETHSM_MINER_STUBBORN_POLICY_H
