// Deterministic discrete-event queue for the P2P network simulator.
//
// A binary min-heap ordered by (time, seq): `seq` is a monotonically
// increasing push counter, so two events scheduled for the same instant pop
// in the order they were scheduled. That stability is what makes a network
// run a pure function of its seed -- the relay of an honest block and the
// attacker's matching publication may leave a hub at the same timestamp, and
// the winner of the resulting first-seen race must not depend on heap
// internals or platform tie-breaking.
//
// The payload type is a template parameter; the queue owns nothing beyond the
// event records themselves and reuses its backing vector across reset()s, so
// the simulation hot loop performs no steady-state allocation.

#ifndef ETHSM_NET_EVENT_QUEUE_H
#define ETHSM_NET_EVENT_QUEUE_H

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/check.h"

namespace ethsm::net {

/// Min-heap of (time, seq, payload) with stable same-time ordering.
template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    double time = 0.0;
    std::uint64_t seq = 0;
    Payload payload{};

    /// Heap order: earliest time first; among equal times, lowest seq
    /// (i.e. scheduled-first) wins.
    [[nodiscard]] bool before(const Entry& other) const noexcept {
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  /// Schedules `payload` at absolute time `time`; returns the assigned seq.
  std::uint64_t push(double time, const Payload& payload) {
    Entry entry;
    entry.time = time;
    entry.seq = next_seq_++;
    entry.payload = payload;
    heap_.push_back(entry);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return entry.seq;
  }

  /// Removes and returns the earliest event. Empty queue is a logic error.
  Entry pop() {
    ETHSM_EXPECTS(!heap_.empty(), "pop on an empty event queue");
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry entry = heap_.back();
    heap_.pop_back();
    return entry;
  }

  [[nodiscard]] const Entry& top() const {
    ETHSM_EXPECTS(!heap_.empty(), "top on an empty event queue");
    return heap_.front();
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  /// Total events ever pushed (the seq counter); survives reset().
  [[nodiscard]] std::uint64_t pushed() const noexcept { return next_seq_; }

  /// Clears the queue, keeping capacity and restarting the seq counter.
  void reset() {
    heap_.clear();
    next_seq_ = 0;
  }

 private:
  /// std::*_heap comparators build a max-heap, so "later than" puts the
  /// earliest (time, seq) at the front.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return b.before(a);
    }
  };

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ethsm::net

#endif  // ETHSM_NET_EVENT_QUEUE_H
