#include "net/faults.h"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "support/check.h"
#include "support/math_util.h"

namespace ethsm::net {

namespace {

[[noreturn]] void fail(std::string_view what, std::string_view text) {
  throw std::invalid_argument(std::string(what) + " '" + std::string(text) +
                              "'");
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_number(std::string_view whole, std::string_view part) {
  const std::string buffer(trim(part));
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (buffer.empty() || end != buffer.c_str() + buffer.size() ||
      !std::isfinite(value)) {
    fail("malformed number in fault spec", whole);
  }
  return value;
}

std::string print_number(double value) {
  return support::print_shortest_double(value);
}

/// Splits "a:b[:c]" on ':'; returns the pieces in order.
std::vector<std::string_view> split_colons(std::string_view text) {
  std::vector<std::string_view> parts;
  while (true) {
    const std::size_t colon = text.find(':');
    if (colon == std::string_view::npos) {
      parts.push_back(text);
      return parts;
    }
    parts.push_back(text.substr(0, colon));
    text.remove_prefix(colon + 1);
  }
}

std::string_view to_string(PartitionCut cut) noexcept {
  switch (cut) {
    case PartitionCut::automatic:
      return "auto";
    case PartitionCut::bridge:
      return "bridge";
    case PartitionCut::random_cut:
      return "random";
    case PartitionCut::attacker:
      return "attacker";
  }
  return "auto";  // unreachable
}

PartitionCut parse_partition_cut(std::string_view whole, std::string_view s) {
  if (s == "auto") return PartitionCut::automatic;
  if (s == "bridge") return PartitionCut::bridge;
  if (s == "random") return PartitionCut::random_cut;
  if (s == "attacker") return PartitionCut::attacker;
  fail("unknown partition cut (want auto, bridge, random or attacker) in",
       whole);
}

}  // namespace

// ---------------------------------------------------------------- grammars --

ChurnSpec parse_churn_spec(std::string_view text) {
  const std::string_view trimmed = trim(text);
  ChurnSpec spec;
  if (trimmed == "off") return spec;
  const auto parts = split_colons(trimmed);
  if (parts.size() != 2) {
    fail("churn wants off or <mean_up_ms>:<mean_down_ms>, got", trimmed);
  }
  spec.mean_up_ms = parse_number(trimmed, parts[0]);
  spec.mean_down_ms = parse_number(trimmed, parts[1]);
  if (spec.mean_up_ms <= 0.0 || spec.mean_down_ms <= 0.0) {
    fail("churn means must be positive, got", trimmed);
  }
  return spec;
}

PartitionSpec parse_partition_spec(std::string_view text) {
  const std::string_view trimmed = trim(text);
  PartitionSpec spec;
  if (trimmed == "off") return spec;
  const auto parts = split_colons(trimmed);
  if (parts.size() != 2 && parts.size() != 3) {
    fail(
        "partition wants off or "
        "<start_ms>:<heal_ms>[:auto|bridge|random|attacker], got",
        trimmed);
  }
  spec.enabled = true;
  spec.start_ms = parse_number(trimmed, parts[0]);
  spec.heal_ms = parse_number(trimmed, parts[1]);
  if (parts.size() == 3) spec.cut = parse_partition_cut(trimmed, trim(parts[2]));
  if (spec.start_ms < 0.0 || spec.heal_ms < spec.start_ms) {
    fail("partition needs 0 <= start_ms <= heal_ms, got", trimmed);
  }
  return spec;
}

EclipseSpec parse_eclipse_spec(std::string_view text) {
  const std::string_view trimmed = trim(text);
  EclipseSpec spec;
  if (trimmed == "off") return spec;
  const auto parts = split_colons(trimmed);
  if (parts.size() != 2 && parts.size() != 3) {
    fail("eclipse wants off or <victim>:<delay_ms>[:<drop_p>], got", trimmed);
  }
  const double victim = parse_number(trimmed, parts[0]);
  if (victim < 1.0 || victim != static_cast<double>(
                                    static_cast<std::uint32_t>(victim))) {
    fail("eclipse victim must be an honest node id >= 1, got", trimmed);
  }
  spec.victim = static_cast<std::uint32_t>(victim);
  spec.delay_ms = parse_number(trimmed, parts[1]);
  if (parts.size() == 3) spec.drop = parse_number(trimmed, parts[2]);
  if (spec.delay_ms < 0.0) fail("eclipse delay must be >= 0, got", trimmed);
  if (spec.drop < 0.0 || spec.drop >= 1.0) {
    fail("eclipse drop probability must lie in [0, 1), got", trimmed);
  }
  return spec;
}

std::string to_string(const ChurnSpec& spec) {
  if (!spec.enabled()) return "off";
  return print_number(spec.mean_up_ms) + ":" + print_number(spec.mean_down_ms);
}

std::string to_string(const PartitionSpec& spec) {
  if (!spec.enabled) return "off";
  std::string out =
      print_number(spec.start_ms) + ":" + print_number(spec.heal_ms);
  if (spec.cut != PartitionCut::automatic) {
    out += ":";
    out += to_string(spec.cut);
  }
  return out;
}

std::string to_string(const EclipseSpec& spec) {
  if (!spec.enabled()) return "off";
  std::string out =
      std::to_string(spec.victim) + ":" + print_number(spec.delay_ms);
  if (spec.drop != 0.0) out += ":" + print_number(spec.drop);
  return out;
}

void FaultSpec::validate(std::uint32_t honest_nodes) const {
  ETHSM_EXPECTS(drop >= 0.0 && drop < 1.0,
                "net.faults.drop must lie in [0, 1)");
  ETHSM_EXPECTS(churn.mean_up_ms >= 0.0 && churn.mean_down_ms >= 0.0,
                "churn means must be non-negative");
  ETHSM_EXPECTS((churn.mean_up_ms > 0.0) == (churn.mean_down_ms > 0.0),
                "churn needs both means positive (or off)");
  if (partition.enabled) {
    ETHSM_EXPECTS(partition.start_ms >= 0.0 &&
                      partition.heal_ms >= partition.start_ms,
                  "partition needs 0 <= start_ms <= heal_ms");
  }
  if (eclipse.enabled()) {
    ETHSM_EXPECTS(eclipse.victim >= 1 && eclipse.victim <= honest_nodes,
                  "eclipse victim must be an honest node id in [1, nodes]");
    ETHSM_EXPECTS(eclipse.delay_ms >= 0.0, "eclipse delay must be >= 0");
    ETHSM_EXPECTS(eclipse.drop >= 0.0 && eclipse.drop < 1.0,
                  "eclipse drop probability must lie in [0, 1)");
  }
}

// ------------------------------------------------------------- FaultModel --

FaultModel::FaultModel(const FaultSpec& spec, std::uint32_t num_nodes,
                       TopologyKind topology, std::uint64_t seed)
    : spec_(spec), active_(spec.any()) {
  if (!active_) return;
  streams_.reserve(num_nodes);
  for (std::uint32_t v = 0; v < num_nodes; ++v) {
    streams_.emplace_back(
        support::derive_seed(seed ^ kFaultSeedDomain, v));
  }
  if (!spec_.partition.enabled) return;

  PartitionCut cut = spec_.partition.cut;
  if (cut == PartitionCut::automatic) {
    cut = topology == TopologyKind::two_clusters ? PartitionCut::bridge
                                                 : PartitionCut::random_cut;
  }
  side_.assign(num_nodes, 0);
  switch (cut) {
    case PartitionCut::automatic:  // resolved above
    case PartitionCut::bridge: {
      // Mirror build_topology's two_clusters split: cluster B starts at
      // 1 + honest_nodes / 2.
      const std::uint32_t b_start = 1 + (num_nodes - 1) / 2;
      for (std::uint32_t v = b_start; v < num_nodes; ++v) side_[v] = 1;
      break;
    }
    case PartitionCut::random_cut:
      // The attacker anchors side 0; every honest node flips its own coin
      // (a pure function of (seed, node), independent of topology).
      for (std::uint32_t v = 1; v < num_nodes; ++v) {
        side_[v] = stream(v).bernoulli(0.5) ? 1 : 0;
      }
      break;
    case PartitionCut::attacker:
      for (std::uint32_t v = 1; v < num_nodes; ++v) side_[v] = 1;
      break;
  }
}

bool FaultModel::severed(std::uint32_t src, std::uint32_t dst,
                         double now) const noexcept {
  return spec_.partition.enabled && now >= spec_.partition.start_ms &&
         now < spec_.partition.heal_ms && side_[src] != side_[dst];
}

bool FaultModel::drops_message(std::uint32_t src) {
  return spec_.drop > 0.0 && stream(src).bernoulli(spec_.drop);
}

bool FaultModel::eclipse_cuts(std::uint32_t dst, bool honest_block) {
  return honest_block && spec_.eclipse.drop > 0.0 &&
         dst == spec_.eclipse.victim && stream(dst).bernoulli(spec_.eclipse.drop);
}

double FaultModel::eclipse_extra_delay(std::uint32_t dst,
                                       bool honest_block) const noexcept {
  return honest_block && spec_.eclipse.enabled() &&
                 dst == spec_.eclipse.victim
             ? spec_.eclipse.delay_ms
             : 0.0;
}

double FaultModel::sample_uptime_ms(std::uint32_t node) {
  return stream(node).exponential(1.0 / spec_.churn.mean_up_ms);
}

double FaultModel::sample_downtime_ms(std::uint32_t node) {
  return stream(node).exponential(1.0 / spec_.churn.mean_down_ms);
}

}  // namespace ethsm::net
