// Deterministic, seeded fault injection for the P2P network simulator
// (ROADMAP: "network-level adversaries", generalized to a first-class fault
// model). Four orthogonal fault classes compose into one FaultSpec:
//
//   * per-link Bernoulli message drop (`drop`, probability per gossip
//     message);
//   * node crash/restart churn (`churn: <mean_up_ms>:<mean_down_ms>`,
//     exponentially distributed up/down times; a down node queues nothing,
//     mines nothing, and re-syncs through the orphan-buffer/parent-fetch
//     path on restart). The attacker (node 0) never churns -- Algorithm 1's
//     bookkeeping assumes the pool is always online;
//   * a timed partition with healing (`partition: <start_ms>:<heal_ms>
//     [:auto|bridge|random|attacker]`): messages crossing the cut during
//     [start, heal) are discarded. `bridge` splits along the two_clusters
//     boundary, `attacker` isolates node 0, `random` is a seeded coin-flip
//     cut, and `auto` picks bridge on two_clusters topologies and random
//     otherwise;
//   * an eclipse / relay-suppression adversary (`eclipse:
//     <victim>:<delay_ms>[:<drop_p>]`): every gossip message carrying an
//     HONEST block toward the victim is delayed by delay_ms and dropped
//     with probability drop_p, modelling an attacker that controls the
//     victim's connections and suppresses honest relays (pool blocks pass
//     untouched, so the victim keeps mining on the pool's branch in races).
//
// Determinism: every fault draw comes from a per-node xoshiro stream seeded
// with derive_seed(master_seed ^ kFaultSeedDomain, node). The engine's own
// stream (topology + latency + mining draws) is never touched, so a null
// FaultSpec is bitwise-identical to the fault-free simulator, and faulted
// runs stay bitwise-identical across thread counts and interrupt+resume.
// run_net_many_fingerprint digests the full spec so checkpoint directories
// can never mix faulted and clean records.

#ifndef ETHSM_NET_FAULTS_H
#define ETHSM_NET_FAULTS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/topology.h"
#include "support/rng.h"

namespace ethsm::net {

/// Crash/restart churn; spec key `net.faults.churn`, grammar
/// `off | <mean_up_ms>:<mean_down_ms>` (both positive).
struct ChurnSpec {
  double mean_up_ms = 0.0;
  double mean_down_ms = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return mean_up_ms > 0.0 && mean_down_ms > 0.0;
  }
  friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// Which side of the partition each node lands on (header comment).
enum class PartitionCut : std::uint8_t { automatic, bridge, random_cut, attacker };

/// Timed partition; spec key `net.faults.partition`, grammar
/// `off | <start_ms>:<heal_ms>[:auto|bridge|random|attacker]`.
struct PartitionSpec {
  bool enabled = false;
  double start_ms = 0.0;
  double heal_ms = 0.0;
  PartitionCut cut = PartitionCut::automatic;

  friend bool operator==(const PartitionSpec&, const PartitionSpec&) = default;
};

/// Eclipse / relay suppression; spec key `net.faults.eclipse`, grammar
/// `off | <victim>:<delay_ms>[:<drop_p>]` (victim is an honest node id >= 1).
struct EclipseSpec {
  std::uint32_t victim = 0;  ///< honest node id; 0 = disabled
  double delay_ms = 0.0;
  double drop = 0.0;

  [[nodiscard]] bool enabled() const noexcept { return victim != 0; }
  friend bool operator==(const EclipseSpec&, const EclipseSpec&) = default;
};

/// The composed fault model handed to NetSimConfig (all off by default).
struct FaultSpec {
  double drop = 0.0;  ///< per-gossip-message Bernoulli loss probability
  ChurnSpec churn;
  PartitionSpec partition;
  EclipseSpec eclipse;

  [[nodiscard]] bool any() const noexcept {
    return drop > 0.0 || churn.enabled() || partition.enabled ||
           eclipse.enabled();
  }
  /// Precondition checks (ETHSM_EXPECTS -> std::invalid_argument); the node
  /// count bounds the eclipse victim id.
  void validate(std::uint32_t honest_nodes) const;

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

// Sub-spec grammars (spec-layer round-trip contract: parse(to_string(s)) is
// exactly s). All parsers throw std::invalid_argument on malformed input.
[[nodiscard]] ChurnSpec parse_churn_spec(std::string_view text);
[[nodiscard]] PartitionSpec parse_partition_spec(std::string_view text);
[[nodiscard]] EclipseSpec parse_eclipse_spec(std::string_view text);
[[nodiscard]] std::string to_string(const ChurnSpec& spec);
[[nodiscard]] std::string to_string(const PartitionSpec& spec);
[[nodiscard]] std::string to_string(const EclipseSpec& spec);

/// Domain separator for the per-node fault streams: keeps them provably
/// disjoint from the per-run seeds derive_seed(master, run) hands the engine.
inline constexpr std::uint64_t kFaultSeedDomain = 0x00fa'117e'd5ee'd001ULL;

/// Runtime fault sampler owned by one engine run. Single-threaded, like the
/// engine itself; determinism across thread counts holds because each run is
/// a pure function of its derived seed.
class FaultModel {
 public:
  FaultModel(const FaultSpec& spec, std::uint32_t num_nodes,
             TopologyKind topology, std::uint64_t seed);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] bool churn_enabled() const noexcept {
    return spec_.churn.enabled();
  }

  /// True while a partition cut separates src and dst at time `now`.
  [[nodiscard]] bool severed(std::uint32_t src, std::uint32_t dst,
                             double now) const noexcept;
  /// Bernoulli link-loss draw from the sender's stream (drop > 0 only).
  [[nodiscard]] bool drops_message(std::uint32_t src);
  /// Eclipse drop draw for an honest-block message toward the victim.
  [[nodiscard]] bool eclipse_cuts(std::uint32_t dst, bool honest_block);
  /// Extra latency the eclipse adds to a surviving honest-block message.
  [[nodiscard]] double eclipse_extra_delay(std::uint32_t dst,
                                           bool honest_block) const noexcept;

  /// Exponential up/down durations from the node's own stream.
  [[nodiscard]] double sample_uptime_ms(std::uint32_t node);
  [[nodiscard]] double sample_downtime_ms(std::uint32_t node);

 private:
  [[nodiscard]] support::Xoshiro256& stream(std::uint32_t node) {
    return streams_[node];
  }

  FaultSpec spec_;
  bool active_ = false;
  std::vector<support::Xoshiro256> streams_;  ///< one per node, fault domain
  std::vector<std::uint8_t> side_;            ///< partition side per node
};

}  // namespace ethsm::net

#endif  // ETHSM_NET_FAULTS_H
