#include "net/net_sim.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "chain/block_tree.h"
#include "chain/reward_ledger.h"
#include "chain/uncle_index.h"
#include "miner/selfish_policy.h"
#include "net/event_queue.h"
#include "support/check.h"
#include "support/metrics.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/trace.h"

namespace ethsm::net {

namespace {

using chain::BlockId;
using chain::kNoBlock;

enum class MsgType : std::uint8_t { mine, announce, request, deliver, churn };

struct Msg {
  MsgType type = MsgType::mine;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  BlockId block = kNoBlock;
  /// The (src, dst) link's latency model -- points into the Topology's
  /// adjacency storage (stable for the run). Links are symmetric, so
  /// request/deliver replies reuse it instead of re-scanning the sender's
  /// adjacency list on every handshake hop.
  const LatencySpec* link = nullptr;
};

/// Sentinel peer for messages without an origin (mine events, fresh blocks).
constexpr std::uint32_t kNoPeer = static_cast<std::uint32_t>(-1);

/// One run of the network simulation. Single-threaded; the multi-run driver
/// fans whole runs out across the pool.
class Engine {
 public:
  explicit Engine(const NetSimConfig& config)
      : config_(config),
        rng_(config.seed),
        // Topology first: random:<p> link sampling consumes a deterministic
        // prefix of the run's stream before any simulation draw.
        topo_(build_topology(config.topology, config.honest_nodes,
                             config.latency, rng_)),
        tree_(chain::thread_local_tree(config.num_blocks + 1)),
        horizon_(config.rewards.reference_horizon()),
        max_refs_(config.rewards.max_uncles_per_block),
        n_(topo_.num_nodes()),
        stride_(config.num_blocks + 2),
        known_(static_cast<std::size_t>(n_) * stride_, 0),
        requested_(static_cast<std::size_t>(n_) * stride_, 0),
        policy_(tree_, attacker_policy_config()),
        faults_(config.faults, n_, config.topology.kind, config.seed),
        down_(n_, 0) {
    views_.resize(n_);
    pending_.resize(n_);
    for (std::uint32_t u = 0; u < n_; ++u) {
      known_[flat(u, tree_.genesis())] = 1;
      views_[u].tips.push_back(tree_.genesis());
    }
  }

  NetSimResult run() {
    if (faults_.churn_enabled()) {
      // The attacker (node 0) never churns; Algorithm 1 assumes the pool is
      // always online. Each honest node's first crash is one mean uptime out.
      for (std::uint32_t v = 1; v < n_; ++v) {
        queue_.push(faults_.sample_uptime_ms(v), churn_msg(v));
      }
    }
    schedule_next_mine(0.0);
    while (!queue_.empty() && blocks_mined_ < config_.num_blocks) {
      const auto entry = queue_.pop();
      now_ = entry.time;
      handle(entry.payload, entry.time);
    }
    // In-flight messages after the last block cannot change any accounting
    // (knowledge only matters at mining time); finalize and settle.
    (void)policy_.finalize(now_);
    drain_publications(now_);

    result_.sim.blocks_mined_pool = tree_.mined_count(chain::MinerClass::selfish);
    result_.sim.blocks_mined_honest =
        tree_.mined_count(chain::MinerClass::honest);
    result_.sim.duration = now_;
    const BlockId winner = winning_tip();
    result_.sim.ledger = chain::settle_rewards(tree_, winner, config_.rewards);
    fill_distance_stats(winner);
    return result_;
  }

 private:
  [[nodiscard]] std::size_t flat(std::uint32_t node, BlockId b) const {
    return static_cast<std::size_t>(node) * stride_ + b;
  }
  [[nodiscard]] bool knows(std::uint32_t node, BlockId b) const {
    return known_[flat(node, b)] != 0;
  }
  [[nodiscard]] std::span<const std::uint8_t> known_span(
      std::uint32_t node) const {
    return {known_.data() + static_cast<std::size_t>(node) * stride_, stride_};
  }

  /// Algorithm 1's knobs plus the attacker's OWN visibility mask: published
  /// honest blocks it has not physically received yet are not referencable
  /// as uncles. known_ is sized in the init list and never reallocates, so
  /// the span stays valid for the run.
  [[nodiscard]] miner::SelfishPolicyConfig attacker_policy_config() const {
    auto cfg = miner::SelfishPolicyConfig::from_rewards(config_.rewards);
    cfg.uncle_visibility = known_span(0);
    return cfg;
  }

  void schedule_next_mine(double now) {
    queue_.push(now + rng_.exponential(1.0 / kBlockIntervalMs), Msg{});
  }

  /// Sends a message over the (src, dst) link, whose latency model the
  /// caller passes (senders are always iterating an adjacency list or
  /// answering a message that carries its link). Zero-latency draws dispatch
  /// inline (depth-first) -- see the header comment for why that is the
  /// rushing-attacker limit -- positive latencies go through the heap.
  void send(MsgType type, std::uint32_t src, std::uint32_t dst, BlockId b,
            double now, const LatencySpec& latency) {
    double extra_delay = 0.0;
    if (faults_.active()) {
      // Fault draws come from the per-node fault streams, never from rng_:
      // a null FaultSpec leaves the engine's stream untouched bit for bit.
      const bool honest_block =
          b != kNoBlock && tree_.block(b).miner == chain::MinerClass::honest;
      if (faults_.severed(src, dst, now) || faults_.drops_message(src) ||
          faults_.eclipse_cuts(dst, honest_block)) {
        ++result_.faults_messages_dropped;
        return;
      }
      extra_delay = faults_.eclipse_extra_delay(dst, honest_block);
    }
    Msg msg;
    msg.type = type;
    msg.src = src;
    msg.dst = dst;
    msg.block = b;
    msg.link = &latency;
    const double delay = latency.sample(rng_) + extra_delay;
    if (delay <= 0.0) {
      handle(msg, now);
    } else {
      queue_.push(now + delay, msg);
    }
  }

  void handle(const Msg& msg, double now) {
    ++result_.events_processed;
    if (msg.type != MsgType::mine && msg.type != MsgType::churn &&
        down_[msg.dst] != 0) {
      // A crashed node queues nothing; in-flight traffic toward it is lost.
      ++result_.faults_messages_dropped;
      return;
    }
    switch (msg.type) {
      case MsgType::mine:
        on_mine(now);
        break;
      case MsgType::announce:
        on_announce(msg, now);
        break;
      case MsgType::request:
        on_request(msg, now);
        break;
      case MsgType::deliver:
        on_deliver(msg, now);
        break;
      case MsgType::churn:
        on_churn(msg.dst, now);
        break;
    }
  }

  // ------------------------------------------------------------- protocol --

  /// Fresh blocks (a miner's own, the attacker's publications) start the
  /// announce -> request -> deliver handshake toward every neighbor.
  void announce_new(std::uint32_t owner, BlockId b, double now) {
    for (const Link& l : topo_.adjacency[owner]) {
      send(MsgType::announce, owner, l.peer, b, now, l.latency);
    }
  }

  void on_announce(const Msg& msg, double now) {
    const std::size_t slot = flat(msg.dst, msg.block);
    if (known_[slot] != 0) return;  // duplicate
    // With faults active an earlier request (or its deliver) may have been
    // lost, so every fresh announce retries; delivers dedup on known_.
    if (!faults_.active() && requested_[slot] != 0) return;
    requested_[slot] = 1;
    send(MsgType::request, msg.dst, msg.src, msg.block, now, *msg.link);
  }

  void on_request(const Msg& msg, double now) {
    // Only nodes that announced or relayed a block (or its child) are asked
    // for it, and both imply they hold it; knowledge is monotonic even
    // across crashes, so this holds under faults too.
    ETHSM_ASSERT(knows(msg.dst, msg.block));
    send(MsgType::deliver, msg.dst, msg.src, msg.block, now, *msg.link);
  }

  void on_deliver(const Msg& msg, double now) {
    const std::uint32_t u = msg.dst;
    const BlockId b = msg.block;
    if (knows(u, b)) return;  // duplicate push
    const BlockId parent = tree_.parent(b);
    if (!knows(u, parent)) {
      // Fault-mode re-sync: a restarted (or message-starved) node may have
      // missed the parent entirely, so fetch it from the relayer -- which
      // admitted b and therefore holds its whole ancestry. Walking the
      // chain backwards one hop per deliver rebuilds the gap. On a clean
      // network gossip always re-sends parents, so no fetch is needed.
      if (faults_.active()) {
        send(MsgType::request, u, msg.src, parent, now, *msg.link);
      }
      for (const auto& [pb, ps] : pending_[u]) {
        if (pb == b) return;  // already waiting on its parent
      }
      pending_[u].emplace_back(b, msg.src);  // admit once the parent arrives
      return;
    }
    admit(u, b, now, msg.src);
  }

  // --------------------------------------------------------------- faults --

  [[nodiscard]] static Msg churn_msg(std::uint32_t node) {
    Msg msg;
    msg.type = MsgType::churn;
    msg.dst = node;
    return msg;
  }

  /// Self-rescheduling crash/restart toggle for one honest node.
  void on_churn(std::uint32_t v, double now) {
    if (down_[v] == 0) {
      down_[v] = 1;
      ++result_.faults_downtime_events;
      // The crash loses the orphan buffer; known_ survives (the node keeps
      // its chain database) and gaps re-sync via the parent-fetch path.
      pending_[v].clear();
      queue_.push(now + faults_.sample_downtime_ms(v), churn_msg(v));
    } else {
      down_[v] = 0;
      queue_.push(now + faults_.sample_uptime_ms(v), churn_msg(v));
    }
  }

  /// A block became part of node u's view: update the first-seen tip set,
  /// hand it to the local miner (the attacker may publish), relay it, then
  /// admit any orphans that were waiting for it.
  void admit(std::uint32_t u, BlockId b, double now, std::uint32_t from) {
    learn(u, b);
    if (u == 0 && tree_.block(b).miner == chain::MinerClass::honest) {
      attacker_on_honest(b, now);
    }
    relay(u, b, now, from);

    auto& pending = pending_[u];
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        const auto [pb, ps] = pending[i];
        if (!knows(u, tree_.parent(pb))) continue;
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
        admit(u, pb, now, ps);
        progressed = true;
        break;
      }
    }
  }

  void learn(std::uint32_t u, BlockId b) {
    known_[flat(u, b)] = 1;
    NodeView& view = views_[u];
    const std::uint32_t h = tree_.height(b);
    if (h > view.best_height) {
      view.best_height = h;
      view.tips.clear();
      view.tips.push_back(b);
    } else if (h == view.best_height) {
      view.tips.push_back(b);
    }
  }

  void relay(std::uint32_t u, BlockId b, double now, std::uint32_t from) {
    const MsgType forward =
        config_.relay == RelayMode::push ? MsgType::deliver : MsgType::announce;
    for (const Link& l : topo_.adjacency[u]) {
      if (l.peer == from) continue;
      send(forward, u, l.peer, b, now, l.latency);
    }
  }

  // --------------------------------------------------------------- mining --

  void on_mine(double now) {
    ++blocks_mined_;
    if (blocks_mined_ < config_.num_blocks) schedule_next_mine(now);
    if (rng_.bernoulli(config_.alpha)) {
      mine_pool(now);
    } else {
      const auto v = 1 + static_cast<std::uint32_t>(
                             rng_.uniform_below(config_.honest_nodes));
      if (down_[v] != 0) {
        // A crashed miner's hash power is simply lost for this interval.
        ++result_.faults_mining_lost;
        return;
      }
      mine_honest(v, now);
    }
  }

  void mine_pool(double now) {
    const BlockId id = policy_.on_pool_block(now);
    known_[flat(0, id)] = 1;  // private: gossip starts at publication
    pool_created_.push_back(id);
    drain_publications(now);
  }

  void mine_honest(std::uint32_t v, double now) {
    NodeView& view = views_[v];
    const BlockId parent = view.tips.front();  // first-seen at best height

    // Endogenous gamma: a race is live for this miner when its best-height
    // tips include both a pool and an honest block; first-seen decides.
    bool has_pool = false;
    bool has_honest = false;
    for (BlockId t : view.tips) {
      (tree_.block(t).miner == chain::MinerClass::selfish ? has_pool
                                                          : has_honest) = true;
    }
    if (has_pool && has_honest) {
      ++result_.race_samples;
      if (tree_.block(parent).miner == chain::MinerClass::selfish) {
        ++result_.race_pool_choices;
      }
    }

    scratch_.refs.clear();
    if (horizon_ > 0) {
      chain::collect_uncle_references(tree_, parent, horizon_, max_refs_,
                                      scratch_, known_span(v));
    }
    const BlockId id = tree_.append(parent, chain::MinerClass::honest, v, now,
                                    scratch_.refs);
    tree_.publish(id, now);
    learn(v, id);
    announce_new(v, id, now);
  }

  /// Hands the attacker's publications (in creation order; Algorithm 1 never
  /// abandons unpublished work) to the gossip layer.
  void drain_publications(double now) {
    while (publish_cursor_ < pool_created_.size() &&
           tree_.is_published(pool_created_[publish_cursor_])) {
      announce_new(0, pool_created_[publish_cursor_++], now);
    }
  }

  /// Feeds an honest block to Algorithm 1 when it fits the tracked two-branch
  /// public view; classifies it as a natural latency fork or a resync
  /// otherwise (header comment).
  void attacker_on_honest(BlockId b, double now) {
    const BlockId parent = tree_.parent(b);
    const miner::PublicView view = policy_.public_view();
    const bool fits = view.tie ? (parent == view.pool_branch_tip ||
                                  parent == view.honest_branch_tip)
                               : (parent == view.consensus_tip);
    if (fits) {
      policy_.on_honest_block(b, now);
      drain_publications(now);
      return;
    }

    const std::uint32_t public_height =
        tree_.height(view.tie ? view.pool_branch_tip : view.consensus_tip);
    const std::uint32_t b_height = tree_.height(b);
    const BlockId private_tip = policy_.private_tip();
    const std::uint32_t private_height = tree_.height(private_tip);
    if (b_height <= public_height || b_height + 1 < private_height) {
      // Below the tracked race, or the private lead still covers it.
      ++result_.natural_forks;
      return;
    }
    // An untracked branch caught up with the private chain: release
    // everything (the last chance to win with a strictly longer chain) and
    // restart Algorithm 1 from whichever tip stands taller.
    ++result_.resyncs;
    (void)policy_.finalize(now);
    drain_publications(now);
    policy_.rebase(private_height >= b_height ? private_tip : b);
  }

  // ----------------------------------------------------------- settlement --

  /// Network consensus once everything is published: max height, then
  /// earliest publication (what the first-seen rule converges to), then
  /// lowest id for full determinism.
  [[nodiscard]] BlockId winning_tip() const {
    BlockId best = tree_.genesis();
    for (BlockId b = 1; b < static_cast<BlockId>(tree_.size()); ++b) {
      const auto& blk = tree_.block(b);
      const auto& cur = tree_.block(best);
      if (blk.height != cur.height) {
        if (blk.height > cur.height) best = b;
      } else if (blk.published_at != cur.published_at) {
        if (blk.published_at < cur.published_at) best = b;
      }
    }
    return best;
  }

  void fill_distance_stats(BlockId winner) {
    const std::uint32_t max_hop =
        *std::max_element(topo_.hop_from_attacker.begin(),
                          topo_.hop_from_attacker.end());
    result_.distance_blocks.assign(max_hop + 1, 0);
    result_.distance_stale.assign(max_hop + 1, 0);
    const auto fates = chain::classify_blocks(tree_, winner);
    for (BlockId b = 1; b < static_cast<BlockId>(tree_.size()); ++b) {
      const auto& blk = tree_.block(b);
      if (blk.miner != chain::MinerClass::honest) continue;
      const std::uint32_t d = topo_.hop_from_attacker[blk.miner_id];
      ++result_.distance_blocks[d];
      if (fates[b] != chain::BlockFate::regular) ++result_.distance_stale[d];
    }
  }

  struct NodeView {
    std::uint32_t best_height = 0;
    std::vector<BlockId> tips;  ///< blocks at best_height, first-seen first
  };

  const NetSimConfig& config_;
  support::Xoshiro256 rng_;
  Topology topo_;
  chain::BlockTree& tree_;
  const int horizon_;
  const int max_refs_;
  const std::uint32_t n_;
  const std::size_t stride_;
  // known_ must be initialized before policy_: the policy's uncle-visibility
  // span aliases the attacker's slice of it.
  std::vector<std::uint8_t> known_;      ///< node-major [node][block]
  std::vector<std::uint8_t> requested_;  ///< announce-handshake dedup
  miner::SelfishPolicy policy_;
  FaultModel faults_;
  std::vector<std::uint8_t> down_;  ///< crashed-by-churn flag per node

  EventQueue<Msg> queue_;
  std::vector<NodeView> views_;
  std::vector<std::vector<std::pair<BlockId, std::uint32_t>>> pending_;
  std::vector<BlockId> pool_created_;
  std::size_t publish_cursor_ = 0;
  chain::UncleScratch scratch_;

  std::uint64_t blocks_mined_ = 0;
  double now_ = 0.0;
  NetSimResult result_;
};

}  // namespace

std::string_view to_string(RelayMode mode) noexcept {
  return mode == RelayMode::push ? "push" : "announce";
}

RelayMode relay_mode_from_string(std::string_view s) {
  if (s == "push") return RelayMode::push;
  if (s == "announce") return RelayMode::announce;
  throw std::invalid_argument("unknown relay mode '" + std::string(s) +
                              "' (want push or announce)");
}

void NetSimConfig::validate() const {
  ETHSM_EXPECTS(alpha >= 0.0 && alpha < 0.5,
                "alpha must lie in [0, 0.5): a majority pool trivially wins");
  ETHSM_EXPECTS(honest_nodes >= 1 && honest_nodes <= 512,
                "honest_nodes must lie in [1, 512]");
  ETHSM_EXPECTS(num_blocks > 0, "num_blocks must be positive");
  if (topology.kind == TopologyKind::two_clusters) {
    ETHSM_EXPECTS(honest_nodes >= 2,
                  "two_clusters needs at least 2 honest nodes");
  }
  faults.validate(honest_nodes);
}

NetSimResult run_net_simulation(const NetSimConfig& config) {
  config.validate();
  support::trace::Span span("net.run");
  Engine engine(config);
  NetSimResult result = engine.run();
  if constexpr (support::metrics::kEnabled) {
    // Write-only tap: end-of-run totals mirrored into the process registry
    // (the per-run numbers already live in the deterministic result).
    auto& reg = support::metrics::registry();
    static support::metrics::Counter& runs =
        reg.counter("ethsm_net_runs_total", "Network simulations completed");
    static support::metrics::Counter& events = reg.counter(
        "ethsm_net_events_total", "Discrete events processed by the net sim");
    static support::metrics::Counter& drops =
        reg.counter("ethsm_net_fault_messages_dropped_total",
                    "Messages dropped by the fault layer");
    static support::metrics::Counter& mining_lost =
        reg.counter("ethsm_net_fault_mining_lost_total",
                    "Mining opportunities lost to node downtime");
    static support::metrics::Counter& downtime =
        reg.counter("ethsm_net_fault_downtime_events_total",
                    "Node down/up transitions injected by churn");
    runs.add();
    events.add(result.events_processed);
    drops.add(result.faults_messages_dropped);
    mining_lost.add(result.faults_mining_lost);
    downtime.add(result.faults_downtime_events);
  }
  return result;
}

void NetMultiRunSummary::absorb(const NetSimResult& r) {
  gamma.add(r.measured_gamma());
  pool_revenue_s1.add(
      r.sim.pool_absolute_revenue(sim::Scenario::regular_rate_one));
  pool_revenue_s2.add(
      r.sim.pool_absolute_revenue(sim::Scenario::regular_and_uncle_rate_one));
  honest_revenue_s1.add(
      r.sim.honest_absolute_revenue(sim::Scenario::regular_rate_one));
  honest_revenue_s2.add(
      r.sim.honest_absolute_revenue(sim::Scenario::regular_and_uncle_rate_one));
  pool_share.add(r.sim.pool_relative_share());
  uncle_rate.add(r.sim.uncle_rate());
  const auto& ledger = r.sim.ledger;
  const auto regular = static_cast<double>(ledger.regular_total());
  stale_rate.add(regular == 0.0
                     ? 0.0
                     : static_cast<double>(ledger.fates[0].stale +
                                           ledger.fates[1].stale +
                                           ledger.referenced_uncle_total()) /
                           regular);
  if (distance_blocks.size() < r.distance_blocks.size()) {
    distance_blocks.resize(r.distance_blocks.size(), 0);
    distance_stale.resize(r.distance_stale.size(), 0);
  }
  for (std::size_t d = 0; d < r.distance_blocks.size(); ++d) {
    distance_blocks[d] += r.distance_blocks[d];
    distance_stale[d] += r.distance_stale[d];
  }
  race_samples += r.race_samples;
  natural_forks += r.natural_forks;
  resyncs += r.resyncs;
  events_processed += r.events_processed;
  faults_messages_dropped += r.faults_messages_dropped;
  faults_mining_lost += r.faults_mining_lost;
  faults_downtime_events += r.faults_downtime_events;
  ++runs;
}

std::uint64_t run_net_many_fingerprint(const NetSimConfig& config, int runs) {
  support::Fingerprint fp;
  // v2: the fault spec joined the digest, so checkpoint directories can
  // never mix faulted and clean records (v1 files are ignored wholesale).
  fp.mix("run_net_many/v2");
  fp.mix(config.alpha);
  fp.mix(config.honest_nodes);
  fp.mix(static_cast<int>(config.topology.kind));
  fp.mix(config.topology.param);
  fp.mix(static_cast<int>(config.latency.kind));
  fp.mix(config.latency.a);
  fp.mix(config.latency.b);
  fp.mix(static_cast<int>(config.relay));
  fp.mix(config.faults.drop);
  fp.mix(config.faults.churn.mean_up_ms);
  fp.mix(config.faults.churn.mean_down_ms);
  fp.mix(config.faults.partition.enabled);
  fp.mix(config.faults.partition.start_ms);
  fp.mix(config.faults.partition.heal_ms);
  fp.mix(static_cast<int>(config.faults.partition.cut));
  fp.mix(config.faults.eclipse.victim);
  fp.mix(config.faults.eclipse.delay_ms);
  fp.mix(config.faults.eclipse.drop);
  fp.mix(config.num_blocks);
  fp.mix(config.seed);
  fp.mix(rewards::sweep_fingerprint(config.rewards));
  fp.mix(runs);
  return fp.digest();
}

NetMultiRunSummary run_net_many(const NetSimConfig& config, int runs) {
  return run_net_many(config, runs, support::SweepCheckpoint{});
}

NetMultiRunSummary run_net_many(const NetSimConfig& config, int runs,
                                const support::SweepCheckpoint& checkpoint,
                                support::SweepOutcome* outcome) {
  ETHSM_EXPECTS(runs > 0, "need at least one run");
  config.validate();

  const auto sweep = support::run_checkpointed<NetSimResult>(
      checkpoint, run_net_many_fingerprint(config, runs),
      static_cast<std::size_t>(runs), [&config](std::size_t r) {
        NetSimConfig run_config = config;
        run_config.seed =
            support::derive_seed(config.seed, static_cast<std::uint64_t>(r));
        return run_net_simulation(run_config);
      });
  ETHSM_EXPECTS(outcome != nullptr || sweep.complete(),
                "incomplete sharded/budgeted sweep: pass a SweepOutcome to "
                "consume partial aggregates");

  NetMultiRunSummary summary;
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    if (sweep.have[i]) summary.absorb(sweep.results[i]);
  }
  if (outcome != nullptr) outcome->merge(sweep.outcome);
  return summary;
}

}  // namespace ethsm::net

namespace ethsm::support {

void CheckpointCodec<net::NetSimResult>::encode(
    ByteWriter& w, const net::NetSimResult& result) {
  CheckpointCodec<sim::SimResult>::encode(w, result.sim);
  w.u64(result.race_samples);
  w.u64(result.race_pool_choices);
  w.u64(result.natural_forks);
  w.u64(result.resyncs);
  w.u64(result.events_processed);
  w.u64(result.faults_messages_dropped);
  w.u64(result.faults_mining_lost);
  w.u64(result.faults_downtime_events);
  w.u64_vec(result.distance_blocks);
  w.u64_vec(result.distance_stale);
}

net::NetSimResult CheckpointCodec<net::NetSimResult>::decode(ByteReader& r) {
  net::NetSimResult result;
  result.sim = CheckpointCodec<sim::SimResult>::decode(r);
  result.race_samples = r.u64();
  result.race_pool_choices = r.u64();
  result.natural_forks = r.u64();
  result.resyncs = r.u64();
  result.events_processed = r.u64();
  result.faults_messages_dropped = r.u64();
  result.faults_mining_lost = r.u64();
  result.faults_downtime_events = r.u64();
  result.distance_blocks = r.u64_vec();
  result.distance_stale = r.u64_vec();
  return result;
}

}  // namespace ethsm::support
