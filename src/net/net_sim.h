// Event-driven P2P network simulator with an ENDOGENOUS gamma.
//
// The paper (and this library's Markov model + aggregate simulator) treats
// gamma -- the fraction of honest hash power that mines on the pool's branch
// during a race -- as an exogenous input. In reality gamma emerges from block
// propagation over a peer-to-peer topology: whoever's block reaches a miner
// first wins that miner's hash power (first-seen tie-breaking). This module
// simulates exactly that and *measures* gamma instead of assuming it:
//
//   * one attacker node (node 0) wrapping miner::SelfishPolicy (Algorithm 1)
//     plus N honest miner nodes with equal hash shares of 1 - alpha;
//   * a seeded topology (net/topology.h) with per-link latency distributions;
//   * a gossip protocol: a node's OWN new blocks (and the attacker's
//     publications) spread via the announce -> request -> deliver handshake
//     (three link crossings), relays of received blocks are either pushed
//     directly (RelayMode::push, one crossing, Ethereum's NewBlock-style
//     cut-through -- the default) or re-announced (RelayMode::announce);
//     duplicate announces/delivers are suppressed, out-of-order deliveries
//     wait for their parent;
//   * deterministic discrete events on an EventQueue with stable (time, seq)
//     ordering. Messages over ZERO-latency links are dispatched inline
//     (depth-first) within the sending event: with 0 ms links the network
//     degenerates to the paper's aggregate model where the attacker rushes --
//     it hears a racing honest block and floods its match within the same
//     instant, so a 0 ms complete graph measures gamma -> 1, while any
//     positive latency makes relays strictly causal and a star routed through
//     the attacker measures gamma -> 0 (honest relays beat the attacker's
//     fresh-block handshake by two crossings).
//
// A node admitting a block first hands it to its local miner (the attacker's
// policy may react by publishing) and then relays it. The attacker follows
// the relay protocol for honest blocks; withholding-as-a-hub strategies are
// future knobs.
//
// Honest blocks that do not fit Algorithm 1's two-branch public view (natural
// latency forks among honest nodes) are invisible to the policy: forks below
// the tracked public height are ignored (counted as natural_forks), and an
// untracked branch overtaking the attacker's private chain triggers a resync
// -- publish everything, restart Algorithm 1 from the higher tip (counted as
// resyncs). At realistic latencies both counters stay tiny; at extreme
// latencies they are the honest signal that the attack model degrades.
//
// Measured gamma: every honest mining event whose local best-height tip set
// contains both a pool block and an honest block is a race sample; the sample
// counts toward gamma when the first-seen tip (the parent actually mined on)
// is the pool's.

#ifndef ETHSM_NET_NET_SIM_H
#define ETHSM_NET_NET_SIM_H

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/faults.h"
#include "net/topology.h"
#include "rewards/reward_schedule.h"
#include "sim/sim_result.h"
#include "support/checkpoint.h"
#include "support/stats.h"

namespace ethsm::net {

/// Mean block inter-arrival time in simulated milliseconds (Ethereum ~14 s);
/// link latencies (net/topology.h) are milliseconds against this interval.
inline constexpr double kBlockIntervalMs = 14'000.0;

/// How a node forwards a block it received (spec key `net.relay`): `push`
/// sends the body directly (one crossing); `announce` restarts the
/// announce -> request -> deliver handshake (three crossings).
enum class RelayMode { push, announce };

[[nodiscard]] std::string_view to_string(RelayMode mode) noexcept;
/// Throws std::invalid_argument on anything but "push" / "announce".
[[nodiscard]] RelayMode relay_mode_from_string(std::string_view s);

struct NetSimConfig {
  /// Attacker's share of total hash power; each of the `honest_nodes` honest
  /// miners holds (1 - alpha) / honest_nodes.
  double alpha = 0.3;
  std::uint32_t honest_nodes = 16;
  TopologySpec topology;   ///< default: complete graph
  LatencySpec latency;     ///< default: fixed:0 (the rushing-attacker limit)
  RelayMode relay = RelayMode::push;
  /// Seeded fault injection (net/faults.h); all off by default, in which
  /// case the engine is bitwise-identical to the fault-free simulator.
  FaultSpec faults;
  std::uint64_t num_blocks = 100'000;
  std::uint64_t seed = 0x9e7ca57ULL;
  rewards::RewardConfig rewards = rewards::RewardConfig::ethereum_byzantium();

  void validate() const;
};

/// One network run. Revenue/normalization accounting reuses sim::SimResult
/// (ledger + mined counts); `sim.duration` is in simulated milliseconds.
struct NetSimResult {
  sim::SimResult sim;

  // Endogenous gamma: race_pool_choices / race_samples.
  std::uint64_t race_samples = 0;
  std::uint64_t race_pool_choices = 0;

  // Attack-model robustness diagnostics (see header comment).
  std::uint64_t natural_forks = 0;
  std::uint64_t resyncs = 0;

  /// Discrete events processed (queue pops + inline zero-latency dispatches).
  std::uint64_t events_processed = 0;

  // Fault-injection accounting (net/faults.h); all zero on a clean network.
  std::uint64_t faults_messages_dropped = 0;  ///< drop + partition + eclipse
  std::uint64_t faults_mining_lost = 0;       ///< honest mines on down nodes
  std::uint64_t faults_downtime_events = 0;   ///< churn crash transitions

  /// Honest blocks mined / gone stale (incl. referenced uncles), bucketed by
  /// the mining node's hop distance from the attacker.
  std::vector<std::uint64_t> distance_blocks;
  std::vector<std::uint64_t> distance_stale;

  [[nodiscard]] double measured_gamma() const noexcept {
    return race_samples == 0 ? 0.0
                             : static_cast<double>(race_pool_choices) /
                                   static_cast<double>(race_samples);
  }
};

/// Runs one network simulation; deterministic given config.seed (the topology
/// and every latency draw derive from it).
[[nodiscard]] NetSimResult run_net_simulation(const NetSimConfig& config);

/// Mean/CI aggregation across independent runs.
struct NetMultiRunSummary {
  support::RunningStats gamma;
  support::RunningStats pool_revenue_s1;
  support::RunningStats pool_revenue_s2;
  support::RunningStats honest_revenue_s1;
  support::RunningStats honest_revenue_s2;
  support::RunningStats pool_share;
  support::RunningStats uncle_rate;
  support::RunningStats stale_rate;  ///< all stale (incl. uncles) / regular
  /// Sums across runs, index = hop distance from the attacker.
  std::vector<std::uint64_t> distance_blocks;
  std::vector<std::uint64_t> distance_stale;
  std::uint64_t race_samples = 0;
  std::uint64_t natural_forks = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t faults_messages_dropped = 0;
  std::uint64_t faults_mining_lost = 0;
  std::uint64_t faults_downtime_events = 0;
  int runs = 0;

  void absorb(const NetSimResult& r);

  [[nodiscard]] const support::RunningStats& pool_revenue(
      sim::Scenario s) const noexcept {
    return s == sim::Scenario::regular_rate_one ? pool_revenue_s1
                                                : pool_revenue_s2;
  }
  [[nodiscard]] const support::RunningStats& honest_revenue(
      sim::Scenario s) const noexcept {
    return s == sim::Scenario::regular_rate_one ? honest_revenue_s1
                                                : honest_revenue_s2;
  }
};

/// Runs `runs` independent simulations (seeds derived from config.seed) in
/// parallel on the global pool; aggregates in run order, bitwise-identical
/// for any thread count.
[[nodiscard]] NetMultiRunSummary run_net_many(const NetSimConfig& config,
                                              int runs);

/// Checkpointed variant (contract as sim::run_many).
[[nodiscard]] NetMultiRunSummary run_net_many(
    const NetSimConfig& config, int runs,
    const support::SweepCheckpoint& checkpoint,
    support::SweepOutcome* outcome = nullptr);

/// Checkpoint-store fingerprint of a run_net_many sweep (checkpoint GC).
[[nodiscard]] std::uint64_t run_net_many_fingerprint(const NetSimConfig& config,
                                                     int runs);

}  // namespace ethsm::net

namespace ethsm::support {

template <>
struct CheckpointCodec<net::NetSimResult> {
  static void encode(ByteWriter& w, const net::NetSimResult& result);
  static net::NetSimResult decode(ByteReader& r);
};

}  // namespace ethsm::support

#endif  // ETHSM_NET_NET_SIM_H
