#include "net/topology.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "support/check.h"
#include "support/math_util.h"

namespace ethsm::net {

namespace {

[[noreturn]] void fail(std::string_view what, std::string_view text) {
  throw std::invalid_argument(std::string(what) + " '" + std::string(text) +
                              "'");
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

double parse_number(std::string_view whole, std::string_view part) {
  const std::string buffer(trim(part));
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (buffer.empty() || end != buffer.c_str() + buffer.size()) {
    fail("malformed number in net spec", whole);
  }
  return value;
}

/// Shortest decimal form that parses back bitwise (the spec codec's
/// round-trip contract; one shared implementation in support/math_util.h).
std::string print_number(double value) {
  return support::print_shortest_double(value);
}

}  // namespace

double LatencySpec::sample(support::Xoshiro256& rng) const {
  switch (kind) {
    case LatencyKind::fixed:
      return a;
    case LatencyKind::uniform:
      return a + (b - a) * rng.uniform01();
    case LatencyKind::exponential:
      return a <= 0.0 ? 0.0 : rng.exponential(1.0 / a);
  }
  return a;  // unreachable
}

TopologySpec parse_topology_spec(std::string_view text) {
  const std::string_view trimmed = trim(text);
  TopologySpec spec;
  if (trimmed == "complete") {
    spec.kind = TopologyKind::complete;
  } else if (trimmed == "star") {
    spec.kind = TopologyKind::star;
  } else if (trimmed == "ring") {
    spec.kind = TopologyKind::ring;
  } else if (trimmed.rfind("random:", 0) == 0) {
    spec.kind = TopologyKind::random_p;
    spec.param = parse_number(trimmed, trimmed.substr(7));
    if (spec.param < 0.0 || spec.param > 1.0) {
      fail("random:<p> needs p in [0, 1], got", trimmed);
    }
  } else if (trimmed.rfind("two_clusters:", 0) == 0) {
    spec.kind = TopologyKind::two_clusters;
    spec.param = parse_number(trimmed, trimmed.substr(13));
    if (spec.param < 0.0) {
      fail("two_clusters:<bridge_ms> needs a non-negative latency, got",
           trimmed);
    }
  } else {
    fail(
        "unknown topology (want complete, star, ring, random:<p> or "
        "two_clusters:<bridge_ms>)",
        trimmed);
  }
  return spec;
}

LatencySpec parse_latency_spec(std::string_view text) {
  const std::string_view trimmed = trim(text);
  LatencySpec spec;
  if (trimmed.rfind("fixed:", 0) == 0) {
    spec.kind = LatencyKind::fixed;
    spec.a = parse_number(trimmed, trimmed.substr(6));
    if (spec.a < 0.0) fail("fixed:<ms> needs a non-negative latency, got", trimmed);
  } else if (trimmed.rfind("uniform:", 0) == 0) {
    spec.kind = LatencyKind::uniform;
    const std::string_view rest = trimmed.substr(8);
    const std::size_t colon = rest.find(':');
    if (colon == std::string_view::npos) {
      fail("uniform latency wants uniform:<lo>:<hi>, got", trimmed);
    }
    spec.a = parse_number(trimmed, rest.substr(0, colon));
    spec.b = parse_number(trimmed, rest.substr(colon + 1));
    if (spec.a < 0.0 || spec.b < spec.a) {
      fail("uniform:<lo>:<hi> needs 0 <= lo <= hi, got", trimmed);
    }
  } else if (trimmed.rfind("exp:", 0) == 0) {
    spec.kind = LatencyKind::exponential;
    spec.a = parse_number(trimmed, trimmed.substr(4));
    if (spec.a < 0.0) fail("exp:<mean> needs a non-negative mean, got", trimmed);
  } else {
    fail(
        "unknown latency model (want fixed:<ms>, uniform:<lo>:<hi> or "
        "exp:<mean>)",
        trimmed);
  }
  return spec;
}

std::string to_string(const TopologySpec& spec) {
  switch (spec.kind) {
    case TopologyKind::complete:
      return "complete";
    case TopologyKind::star:
      return "star";
    case TopologyKind::ring:
      return "ring";
    case TopologyKind::random_p:
      return "random:" + print_number(spec.param);
    case TopologyKind::two_clusters:
      return "two_clusters:" + print_number(spec.param);
  }
  return "complete";  // unreachable
}

std::string to_string(const LatencySpec& spec) {
  switch (spec.kind) {
    case LatencyKind::fixed:
      return "fixed:" + print_number(spec.a);
    case LatencyKind::uniform:
      return "uniform:" + print_number(spec.a) + ":" + print_number(spec.b);
    case LatencyKind::exponential:
      return "exp:" + print_number(spec.a);
  }
  return "fixed:0";  // unreachable
}

std::size_t Topology::num_links() const noexcept {
  std::size_t directed = 0;
  for (const auto& links : adjacency) directed += links.size();
  return directed / 2;
}

bool Topology::connected() const noexcept {
  for (std::uint32_t d : hop_from_attacker) {
    if (d == static_cast<std::uint32_t>(-1)) return false;
  }
  return true;
}

Topology build_topology(const TopologySpec& spec, std::uint32_t honest_nodes,
                        const LatencySpec& base_latency,
                        support::Xoshiro256& rng) {
  ETHSM_EXPECTS(honest_nodes >= 1, "need at least one honest node");
  const std::uint32_t n = honest_nodes + 1;  // node 0 = attacker

  Topology topo;
  topo.adjacency.resize(n);
  auto link = [&topo](std::uint32_t u, std::uint32_t v,
                      const LatencySpec& latency) {
    topo.adjacency[u].push_back({v, latency});
    topo.adjacency[v].push_back({u, latency});
  };

  switch (spec.kind) {
    case TopologyKind::complete:
      for (std::uint32_t u = 0; u < n; ++u) {
        for (std::uint32_t v = u + 1; v < n; ++v) link(u, v, base_latency);
      }
      break;
    case TopologyKind::star:
      // The attacker is the hub: every honest-honest path relays through it.
      for (std::uint32_t v = 1; v < n; ++v) link(0, v, base_latency);
      break;
    case TopologyKind::ring:
      for (std::uint32_t u = 0; u < n; ++u) link(u, (u + 1) % n, base_latency);
      break;
    case TopologyKind::random_p:
      // Ring + Erdos-Renyi extras: the ring guarantees connectivity without
      // rejection sampling, p adds density. Pair order is fixed so the link
      // set is a pure function of (spec, honest_nodes, rng state).
      for (std::uint32_t u = 0; u < n; ++u) link(u, (u + 1) % n, base_latency);
      for (std::uint32_t u = 0; u < n; ++u) {
        for (std::uint32_t v = u + 1; v < n; ++v) {
          const bool ring_edge = (v == u + 1) || (u == 0 && v == n - 1);
          if (ring_edge) continue;
          if (rng.bernoulli(spec.param)) link(u, v, base_latency);
        }
      }
      break;
    case TopologyKind::two_clusters: {
      // Cluster A: attacker + first half of the honest nodes; cluster B: the
      // rest. Each cluster is complete; one honest-honest bridge (first
      // honest node of each cluster) carries fixed:<bridge_ms> latency.
      const std::uint32_t b_start = 1 + honest_nodes / 2;
      ETHSM_EXPECTS(b_start < n && b_start >= 2,
                    "two_clusters needs at least 2 honest nodes");
      for (std::uint32_t u = 0; u < b_start; ++u) {
        for (std::uint32_t v = u + 1; v < b_start; ++v) {
          link(u, v, base_latency);
        }
      }
      for (std::uint32_t u = b_start; u < n; ++u) {
        for (std::uint32_t v = u + 1; v < n; ++v) link(u, v, base_latency);
      }
      LatencySpec bridge;
      bridge.kind = LatencyKind::fixed;
      bridge.a = spec.param;
      link(1, b_start, bridge);
      break;
    }
  }

  // BFS hop distances from the attacker (propagation-distance buckets for the
  // per-distance stale accounting).
  topo.hop_from_attacker.assign(n, static_cast<std::uint32_t>(-1));
  topo.hop_from_attacker[0] = 0;
  std::vector<std::uint32_t> frontier{0};
  std::vector<std::uint32_t> next;
  while (!frontier.empty()) {
    next.clear();
    for (std::uint32_t u : frontier) {
      for (const Link& l : topo.adjacency[u]) {
        if (topo.hop_from_attacker[l.peer] != static_cast<std::uint32_t>(-1)) {
          continue;
        }
        topo.hop_from_attacker[l.peer] = topo.hop_from_attacker[u] + 1;
        next.push_back(l.peer);
      }
    }
    frontier.swap(next);
  }
  ETHSM_ENSURES(topo.connected(), "generated topology is connected");
  return topo;
}

}  // namespace ethsm::net
