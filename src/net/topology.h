// Seeded peer-to-peer topology generation for the network simulator.
//
// A topology is an undirected graph over `1 + honest_nodes` miner nodes.
// Node 0 is always the attacker. The generator grammar (spec key
// `net.topology`) covers the shapes the selfish-mining literature cares
// about:
//   complete                  every pair of nodes linked
//   star                      every honest node linked only to the attacker
//                             hub ("star-through-attacker": all honest-honest
//                             traffic relays through the adversary)
//   ring                      nodes on a cycle in index order
//   random:<p>                ring + Erdos-Renyi extras: every non-ring pair
//                             is linked with probability p (the ring keeps
//                             the graph connected without rejection sampling)
//   two_clusters:<bridge_ms>  two complete halves joined by ONE honest-honest
//                             bridge link with fixed latency <bridge_ms>
//
// Per-link latency (spec key `net.latency`) is a distribution sampled
// independently for every message crossing the link:
//   fixed:<ms>                constant
//   uniform:<lo>:<hi>         uniform in [lo, hi] milliseconds
//   exp:<mean>                exponential with the given mean
// Latencies are milliseconds against the Ethereum-like mean block interval
// (net_sim.h, kBlockIntervalMs = 14000), so `fixed:2000` reproduces the
// classic ~2 s / ~14 s propagation ratio.

#ifndef ETHSM_NET_TOPOLOGY_H
#define ETHSM_NET_TOPOLOGY_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/rng.h"

namespace ethsm::net {

enum class TopologyKind { complete, star, ring, random_p, two_clusters };

/// Parsed `net.topology` value. `param` is p for random:<p> and the bridge
/// latency (ms) for two_clusters:<bridge_ms>; unused otherwise.
struct TopologySpec {
  TopologyKind kind = TopologyKind::complete;
  double param = 0.0;

  [[nodiscard]] bool operator==(const TopologySpec&) const = default;
};

enum class LatencyKind { fixed, uniform, exponential };

/// Parsed `net.latency` value; a/b are (value), (lo, hi) or (mean) in ms.
struct LatencySpec {
  LatencyKind kind = LatencyKind::fixed;
  double a = 0.0;
  double b = 0.0;

  [[nodiscard]] bool operator==(const LatencySpec&) const = default;

  /// One latency draw in ms; deterministic given the rng state. fixed specs
  /// never touch the rng, so topologies mixing fixed and sampled links keep
  /// their draw order stable.
  [[nodiscard]] double sample(support::Xoshiro256& rng) const;
};

/// Grammar -> spec; throws std::invalid_argument with the offending text on
/// malformed input (the api layer rewraps this as a SpecError).
[[nodiscard]] TopologySpec parse_topology_spec(std::string_view text);
[[nodiscard]] LatencySpec parse_latency_spec(std::string_view text);

/// Canonical text forms (inverse of the parsers for valid specs).
[[nodiscard]] std::string to_string(const TopologySpec& spec);
[[nodiscard]] std::string to_string(const LatencySpec& spec);

/// One directed adjacency record: messages from this node to `peer` sample
/// `latency` per crossing.
struct Link {
  std::uint32_t peer = 0;
  LatencySpec latency;
};

/// Built topology: adjacency lists (each undirected link appears in both
/// endpoints' lists, in deterministic order) plus hop distances from the
/// attacker.
struct Topology {
  std::vector<std::vector<Link>> adjacency;  ///< index = node id
  std::vector<std::uint32_t> hop_from_attacker;  ///< BFS link count

  [[nodiscard]] std::uint32_t num_nodes() const noexcept {
    return static_cast<std::uint32_t>(adjacency.size());
  }
  [[nodiscard]] std::size_t num_links() const noexcept;
  [[nodiscard]] bool connected() const noexcept;
};

/// Deterministically builds the graph over `1 + honest_nodes` nodes (node 0 =
/// attacker). `rng` drives random:<p> link sampling only. `base_latency`
/// applies to every link except the two_clusters bridge, which uses
/// fixed:<bridge_ms> from the topology spec.
[[nodiscard]] Topology build_topology(const TopologySpec& spec,
                                      std::uint32_t honest_nodes,
                                      const LatencySpec& base_latency,
                                      support::Xoshiro256& rng);

}  // namespace ethsm::net

#endif  // ETHSM_NET_TOPOLOGY_H
