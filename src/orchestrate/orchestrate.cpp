#include "orchestrate/orchestrate.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <system_error>
#include <thread>

#include "orchestrate/process.h"
#include "support/checkpoint.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ethsm::orchestrate {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration from_ms(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(ms));
}

enum class UnitPhase { pending, running, done, failed };

struct UnitState {
  UnitPhase phase = UnitPhase::pending;
  int attempts = 0;
  Clock::time_point ready_at = Clock::time_point::min();  ///< backoff gate
  std::string worker;
  std::string last_error;
  std::size_t records = 0;
  Clock::time_point attempt_started;    ///< launch time of the running attempt
  std::uint64_t attempt_begin_us = 0;   ///< trace anchor for the attempt span
  double wall_ms = 0.0;                 ///< summed attempt wall time
};

/// Process-wide coordinator counters (support::metrics::registry()): unit
/// attempts and import volume, surfaced by GET /metrics and --metrics-out.
/// Import *bytes* are already accounted by the checkpoint layer
/// (ethsm_checkpoint_imported_bytes_total) because ImportSink goes through
/// CheckpointStore::import_directory in-process.
struct OrchestrateMetrics {
  support::metrics::Counter& attempts;
  support::metrics::Counter& units_ok;
  support::metrics::Counter& units_failed;
  support::metrics::Counter& records_imported;

  static OrchestrateMetrics& instance() {
    static OrchestrateMetrics metrics{
        support::metrics::registry().counter("ethsm_orchestrate_attempts_total"),
        support::metrics::registry().counter("ethsm_orchestrate_units_ok_total"),
        support::metrics::registry().counter(
            "ethsm_orchestrate_units_failed_total"),
        support::metrics::registry().counter(
            "ethsm_orchestrate_records_imported_total")};
    return metrics;
  }
};

struct SlotState {
  bool busy = false;
  bool quarantined = false;
  int consecutive_failures = 0;
  pid_t pid = -1;
  std::size_t unit = 0;
  bool kill_pending = false;
  Clock::time_point kill_at;
};

void reset_directory(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  std::filesystem::create_directories(path);
}

/// Lazily-opened coordinator-side stores, one per sweep fingerprint seen in
/// worker output. They live for the whole orchestration (one writer per
/// file) and are destroyed before the CLI's merge pass constructs its own.
class ImportSink {
 public:
  explicit ImportSink(std::string coordinator_dir)
      : coordinator_dir_(std::move(coordinator_dir)) {}

  /// Imports every valid record under `source_dir` (all fingerprints) into
  /// the coordinator's stores; returns how many records were new.
  std::size_t import_all(const std::string& source_dir) {
    std::size_t imported = 0;
    for (const auto& file : support::scan_checkpoint_directory(source_dir)) {
      if (!file.readable) continue;
      auto& store = stores_[file.fingerprint];
      if (!store) {
        store = std::make_unique<support::CheckpointStore>(coordinator_dir_,
                                                           file.fingerprint);
      }
      imported += store->import_directory(source_dir);
    }
    return imported;
  }

 private:
  std::string coordinator_dir_;
  std::map<std::uint64_t, std::unique_ptr<support::CheckpointStore>> stores_;
};

}  // namespace

KillPlan kill_plan_from_env() {
  KillPlan plan;
  const char* text = std::getenv("ETHSM_ORCHESTRATE_KILL");
  if (text == nullptr || *text == '\0') return plan;
  unsigned long unit = 0;
  unsigned long attempt = 0;
  double delay = 0.0;
  char* cursor = nullptr;
  unit = std::strtoul(text, &cursor, 10);
  if (cursor == text || *cursor != ':') return plan;
  const char* attempt_text = cursor + 1;
  attempt = std::strtoul(attempt_text, &cursor, 10);
  if (cursor == attempt_text || attempt == 0) return plan;
  if (*cursor == ':') {
    const char* delay_text = cursor + 1;
    delay = std::strtod(delay_text, &cursor);
    if (cursor == delay_text || *cursor != '\0') return plan;
  } else if (*cursor != '\0') {
    return plan;
  }
  plan.active = true;
  plan.unit = static_cast<std::size_t>(unit);
  plan.attempt = static_cast<int>(attempt);
  plan.delay_ms = delay;
  return plan;
}

OrchestrateOutcome run_orchestrate(const OrchestrateConfig& config) {
  support::trace::Span span("orchestrate.run");
  WorkerTransport* transport = config.transport;
  if (transport == nullptr) {
    throw std::invalid_argument("orchestrate: no transport");
  }
  if (transport->slots() == 0) {
    throw std::invalid_argument("orchestrate: transport has no worker slots");
  }
  if (config.units == 0) {
    throw std::invalid_argument("orchestrate: need at least one work unit");
  }

  const std::string log_dir = config.work_dir + "/logs";
  const std::string staging_root = config.work_dir + "/staging";
  std::filesystem::create_directories(log_dir);

  const auto emit = [&](const std::string& line) {
    if (config.status) config.status(line);
  };
  const auto shard_of = [&](std::size_t unit) {
    return std::to_string(unit) + "/" + std::to_string(config.units);
  };
  const int max_attempts = std::max(config.retry.attempts, 1);

  std::vector<UnitState> units(config.units);
  std::vector<SlotState> slots(transport->slots());
  ImportSink sink(config.coordinator_dir);
  OrchestrateOutcome outcome;

  const auto remaining = [&] {
    std::size_t n = 0;
    for (const UnitState& unit : units) {
      if (unit.phase == UnitPhase::pending || unit.phase == UnitPhase::running) {
        ++n;
      }
    }
    return n;
  };
  const auto active_slots = [&] {
    std::size_t n = 0;
    for (const SlotState& slot : slots) {
      if (!slot.quarantined) ++n;
    }
    return n;
  };
  const auto progress_line = [&] {
    std::size_t done = 0, running = 0, failed = 0;
    for (const UnitState& unit : units) {
      if (unit.phase == UnitPhase::done) ++done;
      if (unit.phase == UnitPhase::running) ++running;
      if (unit.phase == UnitPhase::failed) ++failed;
    }
    std::string line = std::to_string(done) + "/" +
                       std::to_string(config.units) + " units merged, " +
                       std::to_string(running) + " running";
    if (failed > 0) line += ", " + std::to_string(failed) + " FAILED";
    line += ", " + std::to_string(outcome.records_imported) +
            " records imported";
    return line;
  };

  const auto launch = [&](std::size_t s, std::size_t u) {
    SlotState& slot = slots[s];
    UnitState& unit = units[u];
    std::vector<std::string> args = config.base_args;
    args.push_back("--checkpoint-dir");
    args.push_back(transport->unit_checkpoint_dir(u));
    if (config.study) {
      args.push_back("--cell-shard");
      args.push_back(shard_of(u));
      args.push_back("--out");
      args.push_back(transport->unit_scratch_dir(u));
    } else {
      args.push_back("--shard");
      args.push_back(shard_of(u));
    }
    ++unit.attempts;
    unit.phase = UnitPhase::running;
    unit.worker = transport->slot_name(s);
    unit.attempt_started = Clock::now();
    unit.attempt_begin_us = support::trace::now_us();
    if constexpr (support::metrics::kEnabled) {
      OrchestrateMetrics::instance().attempts.add();
    }
    const std::string log_path = log_dir + "/unit-" + std::to_string(u) +
                                 "-attempt-" + std::to_string(unit.attempts) +
                                 ".log";
    slot.pid = spawn_process(transport->command(s, args), log_path);
    slot.busy = true;
    slot.unit = u;
    slot.kill_pending = config.kill.active && config.kill.unit == u &&
                        config.kill.attempt == unit.attempts;
    if (slot.kill_pending) {
      slot.kill_at = Clock::now() + from_ms(config.kill.delay_ms);
      if (config.kill.delay_ms <= 0.0) {
        // The CI dead-worker smoke: take the worker down before it can
        // finish, deterministically.
        kill_process(slot.pid);
        slot.kill_pending = false;
      }
    }
    emit("unit " + std::to_string(u) + " (shard " + shard_of(u) + ") attempt " +
         std::to_string(unit.attempts) + " -> " + unit.worker);
  };

  const auto settle = [&](std::size_t s, const ExitStatus& status) {
    SlotState& slot = slots[s];
    UnitState& unit = units[slot.unit];
    slot.busy = false;
    slot.pid = -1;
    slot.kill_pending = false;

    // Import whatever the attempt persisted -- a clean exit's full shard or
    // a killed worker's prefix; either way the next attempt resumes from it.
    const std::string staging =
        staging_root + "/unit-" + std::to_string(slot.unit);
    reset_directory(staging);
    const std::string fetched = transport->fetch(
        s, slot.unit, staging,
        log_dir + "/unit-" + std::to_string(slot.unit) + "-sync.log");
    const std::size_t imported = sink.import_all(fetched);
    unit.records += imported;
    outcome.records_imported += imported;
    unit.wall_ms += std::chrono::duration<double, std::milli>(
                        Clock::now() - unit.attempt_started)
                        .count();
    if (support::trace::enabled()) {
      support::trace::complete_event(
          "orchestrate.unit " + std::to_string(slot.unit) + " attempt " +
              std::to_string(unit.attempts),
          unit.attempt_begin_us, support::trace::now_us());
    }
    if constexpr (support::metrics::kEnabled) {
      OrchestrateMetrics::instance().records_imported.add(imported);
    }

    if (status.ok()) {
      unit.phase = UnitPhase::done;
      if constexpr (support::metrics::kEnabled) {
        OrchestrateMetrics::instance().units_ok.add();
      }
      slot.consecutive_failures = 0;
      transport->cleanup(s, slot.unit);
      emit("unit " + std::to_string(slot.unit) + " ok on " + unit.worker +
           " (+" + std::to_string(imported) + " records; " + progress_line() +
           ")");
      return;
    }

    unit.last_error = status.describe();
    ++slot.consecutive_failures;
    if (!slot.quarantined && config.quarantine_after > 0 &&
        slot.consecutive_failures >= config.quarantine_after &&
        active_slots() > 1) {
      // A host that keeps failing stops receiving work; its queue drains
      // through the healthy slots. Never quarantine the last slot standing.
      slot.quarantined = true;
      ++outcome.slots_quarantined;
      emit("quarantining worker " + transport->slot_name(s) + " after " +
           std::to_string(slot.consecutive_failures) +
           " consecutive failures");
    }
    if (unit.attempts >= max_attempts) {
      unit.phase = UnitPhase::failed;
      if constexpr (support::metrics::kEnabled) {
        OrchestrateMetrics::instance().units_failed.add();
      }
      emit("unit " + std::to_string(slot.unit) + " FAILED after " +
           std::to_string(unit.attempts) + " attempt(s): " + unit.last_error);
      return;
    }
    unit.phase = UnitPhase::pending;
    unit.ready_at =
        Clock::now() + from_ms(config.retry.backoff_ms(unit.attempts));
    emit("unit " + std::to_string(slot.unit) + " attempt " +
         std::to_string(unit.attempts) + " failed on " + unit.worker + " (" +
         unit.last_error + "); retrying (+" + std::to_string(imported) +
         " records recovered)");
  };

  Clock::time_point last_heartbeat = Clock::now();
  while (remaining() > 0) {
    bool progressed = false;
    const Clock::time_point now = Clock::now();

    for (std::size_t s = 0; s < slots.size(); ++s) {
      SlotState& slot = slots[s];
      if (!slot.busy) continue;
      if (slot.kill_pending && now >= slot.kill_at) {
        kill_process(slot.pid);
        slot.kill_pending = false;
      }
      if (const std::optional<ExitStatus> status = try_wait(slot.pid)) {
        settle(s, *status);
        progressed = true;
      }
    }

    for (std::size_t s = 0; s < slots.size(); ++s) {
      SlotState& slot = slots[s];
      if (slot.busy || slot.quarantined) continue;
      for (std::size_t u = 0; u < units.size(); ++u) {
        if (units[u].phase != UnitPhase::pending) continue;
        if (units[u].ready_at > now) continue;
        launch(s, u);
        progressed = true;
        break;
      }
    }

    if (progressed) {
      last_heartbeat = now;
    } else if (remaining() > 0) {
      // Long-running units would otherwise go silent between scheduling
      // events; a periodic one-liner keeps the operator (and CI logs)
      // informed that workers are still alive.
      if (config.heartbeat_interval_ms > 0.0 &&
          now - last_heartbeat >= from_ms(config.heartbeat_interval_ms)) {
        emit("heartbeat: " + progress_line());
        last_heartbeat = now;
      }
      std::this_thread::sleep_for(from_ms(config.poll_interval_ms));
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(staging_root, ec);

  outcome.units.reserve(config.units);
  for (std::size_t u = 0; u < config.units; ++u) {
    UnitOutcome row;
    row.unit = u;
    row.shard = shard_of(u);
    row.worker = units[u].worker;
    row.attempts = units[u].attempts;
    row.ok = units[u].phase == UnitPhase::done;
    row.error = units[u].last_error;
    row.records_imported = units[u].records;
    row.wall_ms = units[u].wall_ms;
    outcome.units.push_back(std::move(row));
    outcome.attempts_total += static_cast<std::size_t>(units[u].attempts);
    if (row.ok) {
      ++outcome.units_ok;
    } else {
      ++outcome.units_failed;
    }
  }
  emit(progress_line());
  return outcome;
}

void write_orchestrate_manifest(const OrchestrateOutcome& outcome,
                                const std::string& path) {
  using support::json_escape;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot write orchestrate manifest " + path);
  }
  out << "{\n"
      << "  \"schema\": \"ethsm-orchestrate-manifest-v1\",\n"
      << "  \"status\": \"" << (outcome.ok() ? "ok" : "failed") << "\",\n"
      << "  \"units\": " << outcome.units.size() << ",\n"
      << "  \"units_ok\": " << outcome.units_ok << ",\n"
      << "  \"units_failed\": " << outcome.units_failed << ",\n"
      << "  \"attempts_total\": " << outcome.attempts_total << ",\n"
      << "  \"records_imported\": " << outcome.records_imported << ",\n"
      << "  \"slots_quarantined\": " << outcome.slots_quarantined << ",\n"
      << "  \"shards\": [";
  for (std::size_t i = 0; i < outcome.units.size(); ++i) {
    const UnitOutcome& unit = outcome.units[i];
    out << (i ? ",\n" : "\n") << "    {\"unit\": " << unit.unit
        << ", \"shard\": \"" << json_escape(unit.shard) << "\", \"worker\": \""
        << json_escape(unit.worker) << "\", \"attempts\": " << unit.attempts
        << ", \"status\": \"" << (unit.ok ? "ok" : "failed")
        << "\", \"records_imported\": " << unit.records_imported;
    if (!unit.ok) {
      out << ", \"error\": \"" << json_escape(unit.error) << "\"";
    }
    // The masked per-unit timing object (see StudyEntryTiming: same flat
    // shape, same `,\s*"timing": \{[^}]*\}` masking regex). Keys must stay
    // flat -- no nested braces.
    char wall[32];
    std::snprintf(wall, sizeof(wall), "%.3f", unit.wall_ms);
    out << ", \"timing\": {\"wall_ms\": " << wall << "}";
    out << "}";
  }
  out << "\n  ]\n}\n";
  if (!out) {
    throw std::runtime_error("failed writing orchestrate manifest " + path);
  }
}

}  // namespace ethsm::orchestrate
