// Sweep coordinator behind `ethsm orchestrate` (ROADMAP: "distributed sweep
// orchestration").
//
// The coordinator never computes jobs itself. It splits a run into `units`
// shard work units -- `--shard k/N` job striping for a single spec,
// `--cell-shard k/N` whole-cell striping for a study -- launches them as
// worker processes through a WorkerTransport (local subprocesses or ssh
// hosts), and after *every* worker exit, clean or not, imports the unit's
// checkpoint records into the coordinator's store via
// CheckpointStore::import_directory. Because workers persist each job as
// they finish and the import walk recovers a killed worker's valid prefix,
// retrying a unit only recomputes what its predecessor never flushed.
//
// Failure handling mirrors the study runner's fail-soft vocabulary: a unit
// whose worker exits nonzero (or dies on a signal) is retried with
// exponential backoff up to RetryPolicy::attempts, on whichever slot is free
// -- a unit is not pinned to the worker that first ran it, which is what
// re-assigns work away from a dead machine. A slot that fails several units
// in a row (a down host, a broken binary) is quarantined so the healthy
// slots absorb its queue; the last slot standing is never quarantined.
//
// The coordinator does NOT merge or render results -- after run_orchestrate
// returns (and its import stores are destroyed, keeping the one-writer-per-
// file contract), the CLI runs the ordinary in-process merge pass over the
// shared checkpoint directory, which is what makes an orchestrated artefact
// bitwise-identical to a single-process run.

#ifndef ETHSM_ORCHESTRATE_ORCHESTRATE_H
#define ETHSM_ORCHESTRATE_ORCHESTRATE_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "orchestrate/transport.h"
#include "support/retry.h"

namespace ethsm::orchestrate {

/// Dead-worker test seam: SIGKILL one specific (unit, attempt) after a
/// delay, parsed from ETHSM_ORCHESTRATE_KILL="unit:attempt[:delay_ms]"
/// (attempt is 1-based). The CI smoke and the orchestrate tests use this to
/// prove that a worker killed mid-run is retried and its partial records
/// are recovered; it is inert unless the variable is set.
struct KillPlan {
  bool active = false;
  std::size_t unit = 0;
  int attempt = 1;
  double delay_ms = 0.0;
};

/// KillPlan from ETHSM_ORCHESTRATE_KILL; inactive when unset or malformed.
[[nodiscard]] KillPlan kill_plan_from_env();

/// Final state of one shard work unit (one row of orchestrate-manifest.json).
struct UnitOutcome {
  std::size_t unit = 0;
  std::string shard;   ///< "k/N" as passed to --shard / --cell-shard
  std::string worker;  ///< slot that ran the final attempt
  int attempts = 0;
  bool ok = false;
  std::string error;   ///< last attempt's ExitStatus::describe() when !ok
  std::size_t records_imported = 0;  ///< checkpoint records this unit added
  /// Wall time summed over every attempt (launch to settle, import
  /// included). Rendered into the manifest as the masked "timing" object --
  /// it is nondeterministic and must never feed a bitwise comparison.
  double wall_ms = 0.0;
};

struct OrchestrateOutcome {
  std::vector<UnitOutcome> units;
  std::size_t records_imported = 0;
  std::size_t slots_quarantined = 0;
  /// Worker launches across every unit, retries included (the heartbeat's
  /// counters, repeated in the manifest so a log scrape is not required).
  std::size_t attempts_total = 0;
  std::size_t units_ok = 0;
  std::size_t units_failed = 0;

  [[nodiscard]] bool ok() const noexcept {
    for (const UnitOutcome& unit : units) {
      if (!unit.ok) return false;
    }
    return true;
  }
};

struct OrchestrateConfig {
  /// Launch/sync mechanism; must outlive run_orchestrate. Not owned.
  WorkerTransport* transport = nullptr;

  /// The ethsm invocation being distributed, minus binary and shard flags:
  /// {"run", "fig10", "--quick"} or {"run", "--study", "grid.study"}.
  /// The coordinator appends --checkpoint-dir (the unit's private dir) and
  /// --shard k/N -- or, when `study` is true, --cell-shard k/N plus a
  /// scratch --out (study workers must not race on one results tree).
  std::vector<std::string> base_args;
  bool study = false;

  /// Number of shard work units (N of k/N). More units than slots is the
  /// norm: finer units re-balance across surviving workers when one dies.
  std::size_t units = 0;

  /// Coordinator checkpoint directory records are imported into.
  std::string coordinator_dir;

  /// Coordinator-local scratch for per-attempt logs and ssh staging
  /// (typically <coordinator_dir>/orchestrate).
  std::string work_dir;

  /// Per-unit attempt budget and backoff between a unit's failures.
  support::RetryPolicy retry;

  /// Consecutive failures on one slot before it stops receiving work.
  int quarantine_after = 3;

  KillPlan kill;

  /// Live status sink (one line per scheduling event); may be empty.
  std::function<void(const std::string&)> status;

  /// Scheduler poll interval while workers run.
  double poll_interval_ms = 20.0;

  /// Quiet stretches still get a progress heartbeat through `status` at most
  /// this often (<= 0 disables): long-running units would otherwise leave
  /// the operator staring at silence. `--quiet` empties `status`, which
  /// silences the heartbeat too.
  double heartbeat_interval_ms = 2000.0;
};

/// Runs every unit to success or attempt exhaustion and imports all
/// recovered records. Throws std::invalid_argument on an unusable config
/// (no transport, no slots, no units); worker failures never throw -- they
/// are UnitOutcome rows with ok == false.
[[nodiscard]] OrchestrateOutcome run_orchestrate(
    const OrchestrateConfig& config);

/// Writes orchestrate-manifest.json: overall status plus one entry per unit
/// (worker, shard, attempts, status ok|failed, records, error) -- the same
/// fail-soft vocabulary as the study manifest. Throws std::runtime_error on
/// I/O failure.
void write_orchestrate_manifest(const OrchestrateOutcome& outcome,
                                const std::string& path);

}  // namespace ethsm::orchestrate

#endif  // ETHSM_ORCHESTRATE_ORCHESTRATE_H
