#include "orchestrate/process.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

namespace ethsm::orchestrate {

std::string ExitStatus::describe() const {
  if (exited) {
    if (code == 0) return "ok";
    if (code == 127) return "exit code 127 (binary not executable?)";
    return "exit code " + std::to_string(code);
  }
  return "killed by signal " + std::to_string(signal);
}

pid_t spawn_process(const std::vector<std::string>& argv,
                    const std::string& log_path) {
  if (argv.empty()) throw std::runtime_error("spawn_process: empty argv");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child. The coordinator may own a live thread pool, so only
    // async-signal-safe calls happen between fork and exec.
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDIN_FILENO);
      if (devnull > STDERR_FILENO) ::close(devnull);
    }
    if (!log_path.empty()) {
      const int log =
          ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log >= 0) {
        ::dup2(log, STDOUT_FILENO);
        ::dup2(log, STDERR_FILENO);
        if (log > STDERR_FILENO) ::close(log);
      }
    }
    ::execvp(cargv[0], cargv.data());
    ::_exit(127);  // exec failed; 127 matches the shell's convention
  }
  return pid;
}

std::optional<ExitStatus> try_wait(pid_t pid) {
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r == 0) return std::nullopt;  // still running
  ExitStatus result;
  if (r < 0) {
    // ECHILD or similar: the pid is gone and unreportable. Calling it a
    // failure keeps the retry machinery moving instead of wedging the loop.
    result.exited = true;
    result.code = 127;
    return result;
  }
  if (WIFEXITED(status)) {
    result.exited = true;
    result.code = WEXITSTATUS(status);
    return result;
  }
  if (WIFSIGNALED(status)) {
    result.exited = false;
    result.signal = WTERMSIG(status);
    return result;
  }
  return std::nullopt;  // stopped/continued: not terminal, keep polling
}

void kill_process(pid_t pid) {
  if (pid > 0) ::kill(pid, SIGKILL);
}

ExitStatus run_and_wait(const std::vector<std::string>& argv,
                        const std::string& log_path) {
  const pid_t pid = spawn_process(argv, log_path);
  int status = 0;
  pid_t r;
  do {
    r = ::waitpid(pid, &status, 0);
  } while (r < 0 && errno == EINTR);
  ExitStatus result;
  if (r < 0) {
    result.exited = true;
    result.code = 127;
    return result;
  }
  if (WIFEXITED(status)) {
    result.exited = true;
    result.code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    result.signal = WTERMSIG(status);
  }
  return result;
}

std::string self_executable_path(const std::string& fallback) {
  char buffer[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buffer, sizeof buffer - 1);
  if (n <= 0) return fallback;
  buffer[n] = '\0';
  return buffer;
}

}  // namespace ethsm::orchestrate
