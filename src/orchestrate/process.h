// Minimal POSIX subprocess runner for the sweep coordinator
// (src/orchestrate/): fork/exec with stdout+stderr redirected to a per-unit
// log file, non-blocking reaping, and SIGKILL for dead-worker tests. This is
// deliberately not a general process library -- the coordinator only ever
// launches `ethsm ...` (directly or through ssh/scp) and needs exactly
// spawn / poll / kill / run-and-wait.

#ifndef ETHSM_ORCHESTRATE_PROCESS_H
#define ETHSM_ORCHESTRATE_PROCESS_H

#include <sys/types.h>

#include <optional>
#include <string>
#include <vector>

namespace ethsm::orchestrate {

/// How a child ended: a normal exit (code) or a fatal signal.
struct ExitStatus {
  bool exited = false;  ///< true: exit(code); false: killed by `signal`
  int code = 0;
  int signal = 0;

  [[nodiscard]] bool ok() const noexcept { return exited && code == 0; }
  [[nodiscard]] std::string describe() const;
};

/// Launches `argv` (PATH-resolved) with stdin from /dev/null and stdout +
/// stderr appended to `log_path` (empty: inherit the parent's streams).
/// Throws std::runtime_error when the fork itself fails; an unexecutable
/// binary surfaces later as exit code 127.
[[nodiscard]] pid_t spawn_process(const std::vector<std::string>& argv,
                                  const std::string& log_path);

/// Non-blocking reap: the child's status once it has ended, std::nullopt
/// while it is still running. A pid that is not our child (already reaped)
/// reports as exit code 127 rather than blocking forever.
[[nodiscard]] std::optional<ExitStatus> try_wait(pid_t pid);

/// Best-effort SIGKILL (the dead-worker path and its test seam).
void kill_process(pid_t pid);

/// spawn_process + blocking wait; used for synchronous transport helpers
/// (scp sync-back, remote cleanup).
[[nodiscard]] ExitStatus run_and_wait(const std::vector<std::string>& argv,
                                      const std::string& log_path);

/// Absolute path of the running executable (/proc/self/exe), falling back to
/// `fallback` where that link is unavailable. The coordinator launches local
/// workers as the very binary it runs as, so an orchestrated run never mixes
/// versions.
[[nodiscard]] std::string self_executable_path(const std::string& fallback);

}  // namespace ethsm::orchestrate

#endif  // ETHSM_ORCHESTRATE_PROCESS_H
