#include "orchestrate/transport.h"

#include <filesystem>
#include <system_error>

#include "orchestrate/process.h"

namespace ethsm::orchestrate {
namespace {

std::string unit_dir_name(std::size_t unit) {
  return "unit-" + std::to_string(unit);
}

}  // namespace

std::string shell_quote(const std::string& text) {
  // 'single quotes' pass everything verbatim except ' itself, which has to
  // be spliced as '\'' (close, literal quote, reopen).
  std::string quoted = "'";
  for (const char c : text) {
    if (c == '\'') {
      quoted += "'\\''";
    } else {
      quoted += c;
    }
  }
  quoted += '\'';
  return quoted;
}

// ------------------------------------------------------------------ local --

LocalTransport::LocalTransport(LocalTransportConfig config)
    : config_(std::move(config)) {}

std::string LocalTransport::slot_name(std::size_t slot) const {
  return "local-" + std::to_string(slot);
}

std::string LocalTransport::unit_checkpoint_dir(std::size_t unit) const {
  return config_.work_root + "/" + unit_dir_name(unit) + "/ckpt";
}

std::string LocalTransport::unit_scratch_dir(std::size_t unit) const {
  return config_.work_root + "/" + unit_dir_name(unit) + "/out";
}

std::vector<std::string> LocalTransport::command(
    std::size_t /*slot*/, const std::vector<std::string>& ethsm_args) const {
  std::vector<std::string> argv;
  if (config_.threads_per_worker > 0) {
    // env(1) keeps spawn_process exec-only: no setenv between fork and exec.
    argv = {"env",
            "ETHSM_THREADS=" + std::to_string(config_.threads_per_worker)};
  }
  argv.push_back(config_.binary);
  argv.insert(argv.end(), ethsm_args.begin(), ethsm_args.end());
  return argv;
}

std::string LocalTransport::fetch(std::size_t /*slot*/, std::size_t unit,
                                  const std::string& /*staging*/,
                                  const std::string& /*log_path*/) {
  // Workers already wrote into the coordinator's filesystem.
  return unit_checkpoint_dir(unit);
}

void LocalTransport::cleanup(std::size_t /*slot*/, std::size_t unit) {
  std::error_code ec;
  std::filesystem::remove_all(
      config_.work_root + "/" + unit_dir_name(unit), ec);
}

// -------------------------------------------------------------------- ssh --

SshTransport::SshTransport(SshTransportConfig config)
    : config_(std::move(config)) {}

std::string SshTransport::slot_name(std::size_t slot) const {
  return config_.hosts.at(slot);
}

std::string SshTransport::unit_checkpoint_dir(std::size_t unit) const {
  return config_.remote_root + "/" + unit_dir_name(unit) + "/ckpt";
}

std::string SshTransport::unit_scratch_dir(std::size_t unit) const {
  return config_.remote_root + "/" + unit_dir_name(unit) + "/out";
}

std::vector<std::string> SshTransport::command(
    std::size_t slot, const std::vector<std::string>& ethsm_args) const {
  // ssh joins its command words with spaces and feeds the result to the
  // remote login shell, so the whole remote command is built as one
  // shell-quoted string here.
  std::string remote;
  if (config_.threads_per_worker > 0) {
    remote += "ETHSM_THREADS=" + std::to_string(config_.threads_per_worker) +
              " ";
  }
  remote += shell_quote(config_.remote_binary);
  for (const std::string& arg : ethsm_args) {
    remote += " " + shell_quote(arg);
  }

  std::vector<std::string> argv = {"ssh"};
  argv.insert(argv.end(), config_.ssh_args.begin(), config_.ssh_args.end());
  argv.push_back(config_.hosts.at(slot));
  argv.push_back(remote);
  return argv;
}

std::string SshTransport::fetch(std::size_t slot, std::size_t unit,
                                const std::string& staging,
                                const std::string& log_path) {
  // Pull the unit's record files into local staging. scp exits nonzero when
  // the glob matches nothing (e.g. the worker died before its first append);
  // an empty staging directory imports zero records, which is exactly what
  // that situation means, so the exit status is ignored.
  std::vector<std::string> argv = {"scp"};
  argv.insert(argv.end(), config_.ssh_args.begin(), config_.ssh_args.end());
  argv.push_back(config_.hosts.at(slot) + ":" + unit_checkpoint_dir(unit) +
                 "/*.ethsmck");
  argv.push_back(staging + "/");
  (void)run_and_wait(argv, log_path);
  return staging;
}

void SshTransport::cleanup(std::size_t slot, std::size_t unit) {
  std::vector<std::string> argv = {"ssh"};
  argv.insert(argv.end(), config_.ssh_args.begin(), config_.ssh_args.end());
  argv.push_back(config_.hosts.at(slot));
  argv.push_back("rm -rf " + shell_quote(config_.remote_root + "/" +
                                         unit_dir_name(unit)));
  (void)run_and_wait(argv, "");
}

}  // namespace ethsm::orchestrate
