// WorkerTransport: how `ethsm orchestrate` turns "run `ethsm <args>` for
// work unit U on worker slot S" into a local child process, and how it
// brings U's checkpoint records back to the coordinator afterwards.
//
// Both implementations ultimately spawn a *local* process (ssh is just a
// local binary too), so one scheduler loop drives both:
//
//   * LocalTransport -- N worker slots on this machine. Workers write their
//     private checkpoint directories under the coordinator's store
//     (<ckpt>/orchestrate/unit-<k>), so fetch() is the identity and a
//     retried unit resumes from whatever its killed predecessor persisted.
//
//   * SshTransport -- one slot per host. The ethsm command runs remotely
//     under `ssh -o BatchMode=yes` (single-quoted, so spec values with
//     spaces survive the remote shell), unit directories live under a
//     remote scratch root, and fetch() scp's the unit's *.ethsmck files
//     into a local staging directory for import. Hosts need the ethsm
//     binary (and any --spec/--study files at the same paths) installed;
//     see docs/OPERATIONS.md.
//
// The split keeps the coordinator (orchestrate.cpp) free of any
// local-vs-remote branches: it plans units, launches through command(),
// imports whatever fetch() returns, and retries/reassigns on failure.

#ifndef ETHSM_ORCHESTRATE_TRANSPORT_H
#define ETHSM_ORCHESTRATE_TRANSPORT_H

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace ethsm::orchestrate {

class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;

  /// Parallel capacity: units run on slots [0, slots()).
  [[nodiscard]] virtual std::size_t slots() const = 0;

  /// Display/manifest name of a slot ("local-0", "build-host-2", ...).
  [[nodiscard]] virtual std::string slot_name(std::size_t slot) const = 0;

  /// Checkpoint directory the worker process writes for `unit` -- a path on
  /// the worker's own filesystem, stable across attempts so a retried unit
  /// resumes from its predecessor's valid records.
  [[nodiscard]] virtual std::string unit_checkpoint_dir(
      std::size_t unit) const = 0;

  /// Scratch --out directory for study-shaped units (their results trees
  /// are discarded; the coordinator's merge pass writes the real one).
  [[nodiscard]] virtual std::string unit_scratch_dir(std::size_t unit) const = 0;

  /// Local argv that executes `ethsm <ethsm_args...>` on `slot`.
  [[nodiscard]] virtual std::vector<std::string> command(
      std::size_t slot, const std::vector<std::string>& ethsm_args) const = 0;

  /// Makes `unit`'s checkpoint records readable on the coordinator after a
  /// worker process on `slot` ended (successfully or not -- a killed
  /// worker's partial records are recovered too). Returns a local directory
  /// to import from; `staging` is an empty local directory the transport
  /// may sync into. `log_path` captures any helper-process output.
  [[nodiscard]] virtual std::string fetch(std::size_t slot, std::size_t unit,
                                          const std::string& staging,
                                          const std::string& log_path) = 0;

  /// Best-effort removal of `unit`'s worker-side directories once its
  /// records are imported (keeps long orchestrations from accumulating
  /// per-unit scratch). Failures are ignored.
  virtual void cleanup(std::size_t slot, std::size_t unit) = 0;
};

// ------------------------------------------------------------------ local --

struct LocalTransportConfig {
  std::size_t workers = 2;
  /// Coordinator-local root for unit checkpoint/scratch dirs (typically
  /// <checkpoint-dir>/orchestrate).
  std::string work_root;
  /// ETHSM_THREADS for each worker process; 0 = leave the environment alone.
  std::size_t threads_per_worker = 0;
  /// Path to the ethsm binary workers execute.
  std::string binary;
};

class LocalTransport final : public WorkerTransport {
 public:
  explicit LocalTransport(LocalTransportConfig config);

  [[nodiscard]] std::size_t slots() const override { return config_.workers; }
  [[nodiscard]] std::string slot_name(std::size_t slot) const override;
  [[nodiscard]] std::string unit_checkpoint_dir(
      std::size_t unit) const override;
  [[nodiscard]] std::string unit_scratch_dir(std::size_t unit) const override;
  [[nodiscard]] std::vector<std::string> command(
      std::size_t slot,
      const std::vector<std::string>& ethsm_args) const override;
  [[nodiscard]] std::string fetch(std::size_t slot, std::size_t unit,
                                  const std::string& staging,
                                  const std::string& log_path) override;
  void cleanup(std::size_t slot, std::size_t unit) override;

 private:
  LocalTransportConfig config_;
};

// -------------------------------------------------------------------- ssh --

struct SshTransportConfig {
  std::vector<std::string> hosts;  ///< one worker slot per host
  /// ethsm binary path on the hosts (they share an install layout).
  std::string remote_binary = "ethsm";
  /// Remote scratch root for unit checkpoint/scratch dirs.
  std::string remote_root = "/tmp/ethsm-orchestrate";
  /// ETHSM_THREADS per remote worker; 0 = the remote default.
  std::size_t threads_per_worker = 0;
  /// Extra arguments before the host (port, identity file, ...).
  std::vector<std::string> ssh_args = {"-o", "BatchMode=yes"};
};

class SshTransport final : public WorkerTransport {
 public:
  explicit SshTransport(SshTransportConfig config);

  [[nodiscard]] std::size_t slots() const override {
    return config_.hosts.size();
  }
  [[nodiscard]] std::string slot_name(std::size_t slot) const override;
  [[nodiscard]] std::string unit_checkpoint_dir(
      std::size_t unit) const override;
  [[nodiscard]] std::string unit_scratch_dir(std::size_t unit) const override;
  [[nodiscard]] std::vector<std::string> command(
      std::size_t slot,
      const std::vector<std::string>& ethsm_args) const override;
  [[nodiscard]] std::string fetch(std::size_t slot, std::size_t unit,
                                  const std::string& staging,
                                  const std::string& log_path) override;
  void cleanup(std::size_t slot, std::size_t unit) override;

 private:
  SshTransportConfig config_;
};

/// Single-quotes `text` for a POSIX remote shell (ssh concatenates its
/// command words with spaces and hands them to the login shell).
[[nodiscard]] std::string shell_quote(const std::string& text);

}  // namespace ethsm::orchestrate

#endif  // ETHSM_ORCHESTRATE_TRANSPORT_H
