#include "rewards/reward_schedule.h"

#include <algorithm>
#include <sstream>

#include "support/check.h"
#include "support/checkpoint.h"

namespace ethsm::rewards {

double ByzantiumUncleSchedule::reward(int distance) const {
  ETHSM_EXPECTS(distance >= 1, "uncle distance must be >= 1");
  if (distance > kMaxUncleDistance) return 0.0;
  return static_cast<double>(8 - distance) / 8.0;
}

FlatUncleSchedule::FlatUncleSchedule(double value, int max_distance)
    : value_(value), max_distance_(max_distance) {
  ETHSM_EXPECTS(value >= 0.0, "uncle reward must be non-negative");
  ETHSM_EXPECTS(max_distance >= 1, "max_distance must be >= 1");
}

double FlatUncleSchedule::reward(int distance) const {
  ETHSM_EXPECTS(distance >= 1, "uncle distance must be >= 1");
  return distance <= max_distance_ ? value_ : 0.0;
}

std::string FlatUncleSchedule::name() const {
  std::ostringstream os;
  os << "Ku = " << value_ * 8.0 << "/8 flat";
  return os.str();
}

TableUncleSchedule::TableUncleSchedule(std::vector<double> values,
                                       std::string name)
    : values_(std::move(values)), name_(std::move(name)) {
  ETHSM_EXPECTS(!values_.empty(), "table schedule needs at least one entry");
  for (double v : values_) {
    ETHSM_EXPECTS(v >= 0.0, "uncle rewards must be non-negative");
  }
}

double TableUncleSchedule::reward(int distance) const {
  ETHSM_EXPECTS(distance >= 1, "uncle distance must be >= 1");
  if (distance > static_cast<int>(values_.size())) return 0.0;
  return values_[static_cast<std::size_t>(distance - 1)];
}

NephewRewardSchedule::NephewRewardSchedule(double value, int max_distance)
    : value_(value), max_distance_(max_distance) {
  ETHSM_EXPECTS(value >= 0.0, "nephew reward must be non-negative");
  ETHSM_EXPECTS(max_distance >= 0, "max_distance must be >= 0");
}

double NephewRewardSchedule::reward(int distance) const {
  ETHSM_EXPECTS(distance >= 1, "nephew distance must be >= 1");
  return distance <= max_distance_ ? value_ : 0.0;
}

RewardConfig RewardConfig::ethereum_byzantium() {
  RewardConfig config;
  config.uncle = std::make_shared<ByzantiumUncleSchedule>();
  config.nephew = NephewRewardSchedule{};
  return config;
}

RewardConfig RewardConfig::ethereum_flat(double ku_value, int max_distance) {
  RewardConfig config;
  config.uncle = std::make_shared<FlatUncleSchedule>(ku_value, max_distance);
  config.nephew = NephewRewardSchedule{kEthereumNephewReward, max_distance};
  return config;
}

RewardConfig RewardConfig::bitcoin() {
  RewardConfig config;
  config.uncle = std::make_shared<ZeroUncleSchedule>();
  config.nephew = NephewRewardSchedule{0.0, 0};
  return config;
}

std::vector<RewardTypeInfo> table1_reward_inventory() {
  return {
      {"Static Reward", true, true, "Compensate for miners' mining cost"},
      {"Uncle Reward", true, false, "Reduce centralization trend of mining"},
      {"Nephew Reward", true, false, "Encourage miners to reference uncle blocks"},
      {"Transaction Fee (Gas Cost)", true, true,
       "Transaction execution; resist network attack"},
  };
}

std::uint64_t sweep_fingerprint(const RewardConfig& config) {
  support::Fingerprint fp;
  fp.mix("rewards/v1");
  const int horizon = config.reference_horizon();
  fp.mix(horizon);
  for (int d = 1; d <= horizon; ++d) {
    fp.mix(config.uncle_reward(d));
    fp.mix(config.nephew_reward(d));
  }
  fp.mix(config.max_uncles_per_block);
  return fp.digest();
}

}  // namespace ethsm::rewards
