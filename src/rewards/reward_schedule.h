// Mining-reward schedules (paper Sec. III-B, Table I, Eq. (7), Remarks 6/7).
//
// All rewards are expressed relative to the static block reward Ks = 1:
//   * static reward   -- every main-chain ("regular") block earns Ks.
//   * uncle reward    -- Ku(d): earned by the miner of a stale block that is a
//                        direct child of the main chain and is referenced by a
//                        later main-chain block ("nephew") at height distance d.
//                        Byzantium uses Ku(d) = (8-d)/8 for d in 1..6, else 0.
//   * nephew reward   -- Kn(d): earned by the referencing main-chain block's
//                        miner; constant 1/32 in Ethereum (for d in 1..6).
//
// The paper's analysis is parametric in Ku(·) and Kn(·) (Remarks 6 and 7); the
// Sec. VI defense proposal is simply a different UncleRewardSchedule. Bitcoin
// is the degenerate schedule Ku = Kn = 0.

#ifndef ETHSM_REWARDS_REWARD_SCHEDULE_H
#define ETHSM_REWARDS_REWARD_SCHEDULE_H

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ethsm::rewards {

/// Maximum height distance at which an uncle can still be referenced by a
/// nephew in Ethereum (and hence in the paper's analysis).
inline constexpr int kMaxUncleDistance = 6;

/// Nephew reward in Ethereum: 1/32 of the static reward.
inline constexpr double kEthereumNephewReward = 1.0 / 32.0;

/// Abstract uncle-reward function Ku(d) (paper Remark 6).
class UncleRewardSchedule {
 public:
  virtual ~UncleRewardSchedule() = default;

  /// Reward for an uncle referenced at distance d >= 1, relative to Ks.
  /// Must return 0 for d > max_distance().
  [[nodiscard]] virtual double reward(int distance) const = 0;

  /// Largest distance with a non-zero reward (also the reference-eligibility
  /// horizon used by the chain substrate).
  [[nodiscard]] virtual int max_distance() const { return kMaxUncleDistance; }

  /// Human-readable name used in experiment outputs ("Ku(.) Byzantium", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Byzantium / EIP-released schedule: Ku(d) = (8-d)/8, d = 1..6 (paper Eq. 7).
class ByzantiumUncleSchedule final : public UncleRewardSchedule {
 public:
  [[nodiscard]] double reward(int distance) const override;
  [[nodiscard]] std::string name() const override { return "Ku(.) Byzantium (8-d)/8"; }
};

/// Flat schedule: Ku(d) = value for d = 1..max_distance, 0 beyond. The paper's
/// Fig. 9 uses values 2/8..7/8; the Sec. VI defense proposal is value = 4/8.
class FlatUncleSchedule final : public UncleRewardSchedule {
 public:
  explicit FlatUncleSchedule(double value, int max_distance = kMaxUncleDistance);
  [[nodiscard]] double reward(int distance) const override;
  [[nodiscard]] int max_distance() const override { return max_distance_; }
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_;
  int max_distance_;
};

/// Bitcoin: no uncle rewards at all.
class ZeroUncleSchedule final : public UncleRewardSchedule {
 public:
  [[nodiscard]] double reward(int) const override { return 0.0; }
  [[nodiscard]] int max_distance() const override { return 0; }
  [[nodiscard]] std::string name() const override { return "Ku = 0 (Bitcoin)"; }
};

/// Arbitrary user-provided table: entry d-1 holds Ku(d).
class TableUncleSchedule final : public UncleRewardSchedule {
 public:
  explicit TableUncleSchedule(std::vector<double> values, std::string name);
  [[nodiscard]] double reward(int distance) const override;
  [[nodiscard]] int max_distance() const override {
    return static_cast<int>(values_.size());
  }
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  std::vector<double> values_;
  std::string name_;
};

/// Nephew-reward function Kn(d) (paper Remark 7): constant within the
/// reference horizon, zero beyond it. Ethereum: 1/32; Bitcoin: 0.
class NephewRewardSchedule {
 public:
  explicit NephewRewardSchedule(double value = kEthereumNephewReward,
                                int max_distance = kMaxUncleDistance);

  [[nodiscard]] double reward(int distance) const;
  [[nodiscard]] int max_distance() const noexcept { return max_distance_; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_;
  int max_distance_;
};

/// Bundle of the three reward components plus reference-horizon knobs; this is
/// what both the Markov analysis and the simulator consume.
struct RewardConfig {
  std::shared_ptr<const UncleRewardSchedule> uncle =
      std::make_shared<ByzantiumUncleSchedule>();
  NephewRewardSchedule nephew{};

  /// Maximum uncles one nephew may reference. Ethereum caps this at 2; the
  /// paper's analysis implicitly assumes no cap, so that is the default here
  /// (0 means unlimited). The simulator honours whatever is set.
  int max_uncles_per_block = 0;

  [[nodiscard]] static RewardConfig ethereum_byzantium();
  /// Flat Ku(d) = ku_value for d <= max_distance (paper Fig. 9 / Sec. VI).
  /// The paper applies its flat rewards "regardless of the distance"; pass a
  /// large max_distance (e.g. 100) for that reading, or keep the Ethereum
  /// structural cap of 6 (the default) -- EXPERIMENTS.md quantifies both.
  [[nodiscard]] static RewardConfig ethereum_flat(
      double ku_value, int max_distance = kMaxUncleDistance);
  [[nodiscard]] static RewardConfig bitcoin();

  [[nodiscard]] double uncle_reward(int distance) const {
    return uncle->reward(distance);
  }
  [[nodiscard]] double nephew_reward(int distance) const {
    return nephew.reward(distance);
  }
  /// A block at distance d can be referenced iff d <= reference_horizon().
  /// (Reward may still be zero there if Ku(d)=0 but Kn pays; in Ethereum both
  /// cut off at 6 together.)
  [[nodiscard]] int reference_horizon() const {
    return std::max(uncle->max_distance(), nephew.max_distance());
  }
};

/// Row of the Table-I inventory (reward types in Ethereum vs Bitcoin).
struct RewardTypeInfo {
  std::string reward_type;
  bool in_ethereum;
  bool in_bitcoin;
  std::string purpose;
};

/// The content of the paper's Table I, for the bench_table1 regenerator.
[[nodiscard]] std::vector<RewardTypeInfo> table1_reward_inventory();

/// 64-bit digest of the *numeric content* of a reward configuration (every
/// Ku(d)/Kn(d) value over the reference horizon plus the per-block uncle
/// cap), used in sweep-checkpoint fingerprints. Two configs that price every
/// distance identically fingerprint identically regardless of schedule class.
[[nodiscard]] std::uint64_t sweep_fingerprint(const RewardConfig& config);

}  // namespace ethsm::rewards

#endif  // ETHSM_REWARDS_REWARD_SCHEDULE_H
