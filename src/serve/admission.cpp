#include "serve/admission.h"

#include "support/check.h"

namespace ethsm::serve {

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {
  ETHSM_EXPECTS(config_.max_jobs_in_flight > 0,
                "admission needs at least one global computation slot");
  ETHSM_EXPECTS(config_.per_client_jobs > 0,
                "admission needs at least one per-client computation slot");
}

bool AdmissionController::try_acquire(const std::string& client) {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t& mine = per_client_[client];
  if (total_ >= config_.max_jobs_in_flight ||
      mine >= config_.per_client_jobs) {
    if (mine == 0) per_client_.erase(client);
    rejected_.add();
    return false;
  }
  ++total_;
  ++mine;
  return true;
}

void AdmissionController::release(const std::string& client) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ETHSM_EXPECTS(total_ > 0, "admission release without acquire");
  --total_;
  const auto it = per_client_.find(client);
  ETHSM_EXPECTS(it != per_client_.end() && it->second > 0,
                "admission release for an unknown client");
  if (--it->second == 0) per_client_.erase(it);
}

std::size_t AdmissionController::jobs_in_flight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t AdmissionController::rejected() const {
  return rejected_.value();
}

}  // namespace ethsm::serve
