// Admission control for new computations: `--max-new-jobs` generalized from
// a per-invocation job budget into live per-client budgets on the daemon.
// Cache hits and dedupe attaches are always served -- admission gates only
// the requests that would *start* a computation. A client over its
// concurrent-computation budget, or the process over its global one, gets
// 429 + Retry-After instead of a queue that grows without bound.
//
// Clients are identified by the X-Ethsm-Client header when present, else the
// peer address (service.cpp). The controller only tracks concurrency, not
// history: budgets free up the moment a computation finishes, so a patient
// client retrying after Retry-After always makes progress.

#ifndef ETHSM_SERVE_ADMISSION_H
#define ETHSM_SERVE_ADMISSION_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "support/metrics.h"

namespace ethsm::serve {

struct AdmissionConfig {
  /// Computations running at once, process-wide.
  std::size_t max_jobs_in_flight = 8;
  /// Computations one client may have running at once.
  std::size_t per_client_jobs = 4;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  /// Claims a computation slot for `client`; false (and a counted rejection)
  /// when either budget is exhausted. Every true must be paired with a
  /// release(client).
  [[nodiscard]] bool try_acquire(const std::string& client);
  void release(const std::string& client);

  [[nodiscard]] std::size_t jobs_in_flight() const;
  [[nodiscard]] std::uint64_t rejected() const;
  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

 private:
  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::size_t total_ = 0;
  std::map<std::string, std::size_t> per_client_;
  /// Single source of rejection truth -- /v1/status and /metrics both render
  /// this counter (the service registers it through a callback).
  support::metrics::Counter rejected_;
};

}  // namespace ethsm::serve

#endif  // ETHSM_SERVE_ADMISSION_H
