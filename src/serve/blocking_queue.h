// Bounded blocking MPMC queue handing accepted connections from the accept
// loop to the worker threads. Closeable: close() wakes every blocked pop so
// the workers can observe shutdown, and makes further push attempts fail so
// the acceptor stops feeding a draining pool. The bound is the server's
// listen-side backpressure -- when every worker is busy and the queue is
// full, push_wait times out and the acceptor answers 503 instead of letting
// accepted sockets pile up unserved.

#ifndef ETHSM_SERVE_BLOCKING_QUEUE_H
#define ETHSM_SERVE_BLOCKING_QUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace ethsm::serve {

template <typename T>
class BlockingQueue {
 public:
  /// `capacity` is clamped to at least 1 slot.
  explicit BlockingQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Enqueues `value`, waiting up to `timeout` for a slot; false when the
  /// queue stayed full for the whole wait or is closed.
  template <typename Rep, typename Period>
  [[nodiscard]] bool push_wait(T value,
                               std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!not_full_.wait_for(lock, timeout, [this] {
          return closed_ || items_.size() < capacity_;
        })) {
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues the oldest item, blocking until one arrives; nullopt once the
  /// queue is closed *and* drained.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T value = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// Closes the queue: pending items still drain, further pushes fail, and
  /// every pop unblocks. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ethsm::serve

#endif  // ETHSM_SERVE_BLOCKING_QUEUE_H
