#include "serve/http.h"

#include <algorithm>
#include <cctype>

#include "support/json.h"

namespace ethsm::serve {

namespace {

[[nodiscard]] bool is_token_char(char c) noexcept {
  // RFC 7230 token characters (method and header-name alphabet).
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

[[nodiscard]] std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

[[nodiscard]] std::string_view trim_ows(std::string_view text) noexcept {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

[[nodiscard]] int hex_digit(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::optional<std::string> percent_decode(std::string_view text,
                                          bool plus_is_space) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '%') {
      if (i + 2 >= text.size()) return std::nullopt;
      const int hi = hex_digit(text[i + 1]);
      const int lo = hex_digit(text[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      const char decoded = static_cast<char>(hi * 16 + lo);
      if (decoded == '\0') return std::nullopt;  // NUL never means anything good
      out += decoded;
      i += 2;
    } else if (plus_is_space && c == '+') {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

std::optional<std::string> HttpRequest::query_value(
    std::string_view key) const {
  for (const auto& [k, v] : query) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::vector<std::string> HttpRequest::query_values(std::string_view key) const {
  std::vector<std::string> values;
  for (const auto& [k, v] : query) {
    if (k == key) values.push_back(v);
  }
  return values;
}

HttpRequestParser::HttpRequestParser(HttpLimits limits) : limits_(limits) {}

void HttpRequestParser::fail(int status, std::string message) {
  phase_ = Phase::failed;
  error_status_ = status;
  error_ = std::move(message);
}

void HttpRequestParser::feed(std::string_view bytes) {
  if (phase_ == Phase::complete || phase_ == Phase::failed) return;
  buffer_.append(bytes);
  advance();
}

std::optional<std::string_view> HttpRequestParser::next_line() {
  const std::size_t eol = buffer_.find('\n', cursor_);
  if (eol == std::string::npos) return std::nullopt;
  std::string_view line(buffer_.data() + cursor_, eol - cursor_);
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  cursor_ = eol + 1;
  return line;
}

void HttpRequestParser::advance() {
  while (phase_ == Phase::start_line || phase_ == Phase::headers) {
    // Enforce the line/block limits on the *unparsed* bytes too, so an
    // attacker streaming an endless line without '\n' is cut off at the cap
    // instead of growing the buffer forever.
    const std::size_t pending = buffer_.size() - cursor_;
    if (phase_ == Phase::start_line && pending > limits_.max_start_line &&
        buffer_.find('\n', cursor_) == std::string::npos) {
      return fail(414, "request line too long");
    }
    if (phase_ == Phase::headers &&
        header_bytes_ + pending > limits_.max_header_bytes &&
        buffer_.find('\n', cursor_) == std::string::npos) {
      return fail(431, "header block too large");
    }
    const auto line = next_line();
    if (!line) return;  // need more bytes
    if (phase_ == Phase::start_line) {
      if (line->empty()) continue;  // tolerate leading blank lines (RFC 7230)
      if (line->size() > limits_.max_start_line) {
        return fail(414, "request line too long");
      }
      if (!parse_start_line(*line)) return;
      phase_ = Phase::headers;
    } else {
      header_bytes_ += line->size() + 2;
      if (header_bytes_ > limits_.max_header_bytes) {
        return fail(431, "header block too large");
      }
      if (line->empty()) {
        if (!finish_headers()) return;
        phase_ = body_needed_ > 0 ? Phase::body : Phase::complete;
        break;
      }
      if (request_.headers.size() >= limits_.max_headers) {
        return fail(431, "too many headers");
      }
      if (!parse_header_line(*line)) return;
    }
  }
  if (phase_ == Phase::body) {
    if (buffer_.size() - cursor_ < body_needed_) return;  // need more bytes
    request_.body.assign(buffer_, cursor_, body_needed_);
    cursor_ += body_needed_;
    phase_ = Phase::complete;
  }
}

bool HttpRequestParser::parse_start_line(std::string_view line) {
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find(' ', sp2 + 1) != std::string_view::npos) {
    fail(400, "malformed request line (want METHOD SP target SP version)");
    return false;
  }
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);

  if (method.empty() ||
      !std::all_of(method.begin(), method.end(), is_token_char)) {
    fail(400, "malformed method token");
    return false;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    fail(505, "only HTTP/1.0 and HTTP/1.1 are supported");
    return false;
  }
  if (target.empty() || target.front() != '/') {
    fail(400, "request target must be an absolute path");
    return false;
  }

  request_.method = std::string(method);
  request_.target = std::string(target);
  request_.version = std::string(version);
  request_.keep_alive = version == "HTTP/1.1";

  const std::size_t qmark = target.find('?');
  const auto path = percent_decode(target.substr(0, qmark), false);
  if (!path) {
    fail(400, "malformed percent-escape in request path");
    return false;
  }
  request_.path = *path;
  if (qmark != std::string_view::npos) {
    std::string_view rest = target.substr(qmark + 1);
    while (!rest.empty()) {
      const std::size_t amp = rest.find('&');
      const std::string_view pair = rest.substr(0, amp);
      rest = amp == std::string_view::npos ? std::string_view{}
                                           : rest.substr(amp + 1);
      if (pair.empty()) continue;
      const std::size_t eq = pair.find('=');
      const auto key = percent_decode(pair.substr(0, eq), true);
      const auto value =
          eq == std::string_view::npos
              ? std::optional<std::string>(std::string{})
              : percent_decode(pair.substr(eq + 1), true);
      if (!key || !value) {
        fail(400, "malformed percent-escape in query string");
        return false;
      }
      request_.query.emplace_back(*key, *value);
    }
  }
  return true;
}

bool HttpRequestParser::parse_header_line(std::string_view line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) {
    fail(400, "malformed header line (want name: value)");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), is_token_char)) {
    fail(400, "malformed header name");
    return false;
  }
  request_.headers.emplace_back(to_lower(name),
                                std::string(trim_ows(line.substr(colon + 1))));
  return true;
}

bool HttpRequestParser::finish_headers() {
  if (request_.header("transfer-encoding") != nullptr) {
    fail(501, "chunked request bodies are not supported; send Content-Length");
    return false;
  }
  const std::string* length = request_.header("content-length");
  if (length != nullptr) {
    // Digits only, one consistent value; anything else is request smuggling
    // territory and gets a hard 400.
    if (length->empty() ||
        !std::all_of(length->begin(), length->end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        }) ||
        length->size() > 12) {
      fail(400, "malformed Content-Length");
      return false;
    }
    for (const auto& [key, value] : request_.headers) {
      if (key == "content-length" && value != *length) {
        fail(400, "conflicting Content-Length headers");
        return false;
      }
    }
    const unsigned long long parsed = std::stoull(*length);
    if (parsed > limits_.max_body) {
      fail(413, "request body too large");
      return false;
    }
    body_needed_ = static_cast<std::size_t>(parsed);
  }
  if (const std::string* connection = request_.header("connection")) {
    const std::string value = to_lower(*connection);
    if (value.find("close") != std::string::npos) {
      request_.keep_alive = false;
    } else if (value.find("keep-alive") != std::string::npos) {
      request_.keep_alive = true;
    }
  }
  return true;
}

void HttpRequestParser::consume_request() {
  // Pipelined bytes of the next request stay; everything parsed goes.
  buffer_.erase(0, cursor_);
  cursor_ = 0;
  header_bytes_ = 0;
  body_needed_ = 0;
  request_ = HttpRequest{};
  phase_ = Phase::start_line;
  advance();
}

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 505: return "HTTP Version Not Supported";
    default: return "Error";
  }
}

std::string serialize_response(const HttpResponse& response, bool keep_alive) {
  const bool close = response.close_connection || !keep_alive;
  std::string out;
  out.reserve(response.body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += close ? "close" : "keep-alive";
  out += "\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpResponse json_error(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  // Error text can quote user-controlled spec fragments; escape properly.
  response.body =
      "{\"error\": \"" + support::json_escape(message) + "\"}\n";
  return response;
}

}  // namespace ethsm::serve
