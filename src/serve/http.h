// Minimal HTTP/1.1 message layer for `ethsm serve` (ROADMAP: "experiment
// results as a service"). Hand-rolled on purpose: the container bakes in no
// HTTP library, the daemon needs exactly request parsing + response
// serialization, and keeping the parser free of sockets makes it directly
// fuzzable (tests/serve/http_test.cpp feeds it arbitrary bytes in arbitrary
// chunkings and asserts it never crashes and always lands on complete or a
// 4xx/5xx error).
//
// Scope: request-line + headers + Content-Length bodies. Chunked request
// bodies are refused with 501 (no client of this service needs them);
// responses may use chunked transfer encoding for the progress stream, which
// the server emits directly. All limits are explicit and configurable.

#ifndef ETHSM_SERVE_HTTP_H
#define ETHSM_SERVE_HTTP_H

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ethsm::serve {

/// Hard ceilings the parser enforces before trusting any length field; each
/// violation maps to the HTTP status named in the comment.
struct HttpLimits {
  std::size_t max_start_line = 8 * 1024;     ///< 414 URI / 400 method
  std::size_t max_header_bytes = 32 * 1024;  ///< 431 header block total
  std::size_t max_headers = 100;             ///< 431
  std::size_t max_body = 4 * 1024 * 1024;    ///< 413
};

/// One parsed request. Header names are lower-cased at parse time; query
/// parameters are percent-decoded and kept in order of appearance (later
/// duplicates of `set` are meaningful: they apply like repeated --set flags).
struct HttpRequest {
  std::string method;   ///< as sent (token chars only)
  std::string target;   ///< raw request target ("/v1/run?preset=fig8")
  std::string version;  ///< "HTTP/1.1" or "HTTP/1.0"
  std::string path;     ///< decoded path portion, always starts with '/'
  std::vector<std::pair<std::string, std::string>> headers;
  std::vector<std::pair<std::string, std::string>> query;
  std::string body;
  /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; the Connection
  /// header overrides either way.
  bool keep_alive = true;

  /// First header with this (lower-case) name; nullptr when absent.
  [[nodiscard]] const std::string* header(std::string_view name) const;
  /// First query parameter with this key; nullopt when absent.
  [[nodiscard]] std::optional<std::string> query_value(
      std::string_view key) const;
  /// Every query parameter with this key, in order.
  [[nodiscard]] std::vector<std::string> query_values(
      std::string_view key) const;
};

/// Incremental request parser. feed() bytes as they arrive; once complete()
/// the request() is valid. On failed(), error_status()/error() describe the
/// 4xx/5xx to answer with. Keep-alive connections call consume_request() to
/// drop the parsed bytes (pipelined bytes of the next request are preserved)
/// and start over.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = {});

  /// Appends bytes and advances the state machine as far as possible.
  void feed(std::string_view bytes);

  [[nodiscard]] bool complete() const noexcept {
    return phase_ == Phase::complete;
  }
  [[nodiscard]] bool failed() const noexcept { return phase_ == Phase::failed; }
  /// Valid only when complete().
  [[nodiscard]] const HttpRequest& request() const noexcept { return request_; }
  /// Valid only when failed().
  [[nodiscard]] int error_status() const noexcept { return error_status_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// After a complete request was handled: drop its bytes, keep any pipelined
  /// remainder, and start parsing the next request from it.
  void consume_request();

 private:
  enum class Phase { start_line, headers, body, complete, failed };

  void fail(int status, std::string message);
  void advance();
  bool parse_start_line(std::string_view line);
  bool parse_header_line(std::string_view line);
  bool finish_headers();
  /// Next full line in buffer_ starting at cursor_ ('\n'-terminated, CRLF
  /// tolerated); nullopt when the buffer holds no full line yet.
  std::optional<std::string_view> next_line();

  HttpLimits limits_;
  Phase phase_ = Phase::start_line;
  std::string buffer_;
  std::size_t cursor_ = 0;        ///< parse position inside buffer_
  std::size_t header_bytes_ = 0;  ///< running header-block size
  std::size_t body_needed_ = 0;   ///< Content-Length once headers are done
  HttpRequest request_;
  int error_status_ = 0;
  std::string error_;
};

/// One response. `serialize` renders the status line, the standard headers
/// (Content-Type, Content-Length, Connection) plus `extra_headers`, then the
/// body. Responses carrying `close_connection` (or answering a request that
/// asked for close) advertise `Connection: close`.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
  bool close_connection = false;
};

[[nodiscard]] std::string_view status_reason(int status) noexcept;
[[nodiscard]] std::string serialize_response(const HttpResponse& response,
                                             bool keep_alive);

/// Uniform JSON error payload: {"error": "<message>"}.
[[nodiscard]] HttpResponse json_error(int status, std::string_view message);

/// Percent-decoding ('+' becomes a space only when `plus_is_space`); nullopt
/// on a malformed or NUL-producing escape.
[[nodiscard]] std::optional<std::string> percent_decode(std::string_view text,
                                                        bool plus_is_space);

}  // namespace ethsm::serve

#endif  // ETHSM_SERVE_HTTP_H
