#include "serve/inflight.h"

namespace ethsm::serve {

InflightTable::Ticket InflightTable::begin(std::uint64_t fingerprint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = jobs_.find(fingerprint); it != jobs_.end()) {
    ++attached_;
    return {it->second, false};
  }
  auto job = std::make_shared<Job>();
  jobs_[fingerprint] = job;
  return {std::move(job), true};
}

void InflightTable::finish(std::uint64_t fingerprint,
                           const std::shared_ptr<Job>& job, JobState state,
                           std::string payload) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    jobs_.erase(fingerprint);
  }
  {
    const std::lock_guard<std::mutex> job_lock(job->mutex);
    job->state = state;
    job->payload = std::move(payload);
  }
  job->cv.notify_all();
}

InflightTable::Outcome InflightTable::wait(const std::shared_ptr<Job>& job) {
  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&] { return job->state != JobState::running; });
  return {job->state, job->payload};
}

std::size_t InflightTable::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.size();
}

bool InflightTable::running(std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.count(fingerprint) != 0;
}

std::uint64_t InflightTable::attached() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return attached_;
}

}  // namespace ethsm::serve
