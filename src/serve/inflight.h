// In-flight request dedupe: identical concurrent specs collapse onto one
// computation. The first requester of a fingerprint becomes the *leader* and
// runs the experiment; every later requester arriving before it finishes
// becomes a *follower* and blocks on the same job, receiving the identical
// payload (or the leader's error / admission rejection) when it lands.
// Repeat queries over the same (alpha, gamma) cells are the common case the
// daemon is built for, so under a thundering herd exactly one computation
// runs per distinct spec.
//
// The table holds job *state*, not threads: followers wait on a per-job
// condition variable, and the shared_ptr keeps a job alive for stragglers
// that looked it up just before the leader erased it.

#ifndef ETHSM_SERVE_INFLIGHT_H
#define ETHSM_SERVE_INFLIGHT_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace ethsm::serve {

class InflightTable {
 public:
  enum class JobState {
    running,   ///< leader still computing
    done,      ///< payload is the rendered result JSON
    failed,    ///< error carries the exception text (-> 500)
    rejected,  ///< leader was refused by admission control (-> 429)
  };

  struct Job {
    std::mutex mutex;
    std::condition_variable cv;
    JobState state = JobState::running;
    std::string payload;  ///< result JSON (done) or error text (failed)
  };

  struct Ticket {
    std::shared_ptr<Job> job;
    bool leader = false;
  };

  /// Joins or starts the job for `fingerprint`. Exactly one concurrent caller
  /// per fingerprint gets `leader == true` and must eventually call finish().
  [[nodiscard]] Ticket begin(std::uint64_t fingerprint);

  /// Leader-only: publishes the outcome, wakes every follower, and removes
  /// the fingerprint from the table (later requests start a fresh job -- by
  /// then the result sits in the ResultCache).
  void finish(std::uint64_t fingerprint, const std::shared_ptr<Job>& job,
              JobState state, std::string payload);

  /// Follower: blocks until the leader finishes; returns the terminal state.
  struct Outcome {
    JobState state = JobState::running;
    std::string payload;
  };
  [[nodiscard]] static Outcome wait(const std::shared_ptr<Job>& job);

  /// Jobs currently computing (the daemon's in-flight gauge).
  [[nodiscard]] std::size_t depth() const;
  /// True when a computation for this fingerprint is running right now.
  [[nodiscard]] bool running(std::uint64_t fingerprint) const;
  /// Total follower attaches since startup (the dedupe win counter).
  [[nodiscard]] std::uint64_t attached() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t attached_ = 0;
};

}  // namespace ethsm::serve

#endif  // ETHSM_SERVE_INFLIGHT_H
