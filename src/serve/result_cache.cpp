#include "serve/result_cache.h"

namespace ethsm::serve {

ResultCache::ResultCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<std::string> ResultCache::get(std::uint64_t fingerprint) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    misses_.add();
    return std::nullopt;
  }
  hits_.add();
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

bool ResultCache::contains(std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return index_.count(fingerprint) != 0;
}

void ResultCache::put(std::uint64_t fingerprint, std::string payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(fingerprint); it != index_.end()) {
    it->second->second = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(fingerprint, std::move(payload));
  index_[fingerprint] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    evictions_.add();
  }
}

std::size_t ResultCache::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t ResultCache::hits() const { return hits_.value(); }

std::uint64_t ResultCache::misses() const { return misses_.value(); }

std::uint64_t ResultCache::evictions() const { return evictions_.value(); }

}  // namespace ethsm::serve
