// LRU cache of rendered ExperimentResult JSON payloads, keyed by spec
// fingerprint. The serve hot path: a repeat query over the same resolved spec
// is answered from here at memory speed; a miss falls back to api::run with
// the daemon's checkpoint directory, which reloads the sweep records from
// disk instead of recomputing (the content-addressed store is the second
// cache tier). Capacity is a hard entry count -- the preset registry is ~24
// payloads (full + quick), so the default comfortably serves it all warm.
//
// Deliberately node-local and interface-minimal (get/put over an opaque
// payload): a later multi-node deployment swaps this for a shared tier
// behind the same two calls without touching the service layer.

#ifndef ETHSM_SERVE_RESULT_CACHE_H
#define ETHSM_SERVE_RESULT_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "support/metrics.h"

namespace ethsm::serve {

/// Thread-safe LRU map fingerprint -> rendered JSON payload.
class ResultCache {
 public:
  /// `capacity` is clamped to at least 1 entry.
  explicit ResultCache(std::size_t capacity);

  /// Payload for `fingerprint`, bumping its recency; counts a hit or miss.
  [[nodiscard]] std::optional<std::string> get(std::uint64_t fingerprint);

  /// True when cached, with no recency bump and no hit/miss accounting
  /// (progress/status probes must not skew the cache statistics).
  [[nodiscard]] bool contains(std::uint64_t fingerprint) const;

  /// Inserts or refreshes; evicts the least recently used entry on overflow.
  void put(std::uint64_t fingerprint, std::string payload);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  using Entry = std::pair<std::uint64_t, std::string>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  /// The cache's single source of hit/miss/eviction truth, stored as metric
  /// counters so /v1/status and /metrics render the same numbers (the
  /// service registers them through callbacks; there is no shadow copy).
  support::metrics::Counter hits_;
  support::metrics::Counter misses_;
  support::metrics::Counter evictions_;
};

}  // namespace ethsm::serve

#endif  // ETHSM_SERVE_RESULT_CACHE_H
