#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "support/json.h"
#include "support/thread_pool.h"

namespace ethsm::serve {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Peer address as "a.b.c.d" (the default admission identity).
std::string peer_address(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "unknown";
  }
  char text[INET_ADDRSTRLEN] = {};
  if (inet_ntop(AF_INET, &addr.sin_addr, text, sizeof text) == nullptr) {
    return "unknown";
  }
  return text;
}

/// One HTTP/1.1 chunk: hex length, CRLF, data, CRLF.
std::string chunk(std::string_view data) {
  char size[32];
  std::snprintf(size, sizeof size, "%zx\r\n",
                static_cast<std::size_t>(data.size()));
  std::string out(size);
  out.append(data);
  out.append("\r\n");
  return out;
}

}  // namespace

HttpServer::HttpServer(ExperimentService& service, ServerConfig config)
    : service_(service),
      config_(std::move(config)),
      connections_(config_.queue_capacity) {
  if (config_.workers == 0) config_.workers = 1;
  service_.set_queue_depth_provider([this] { return connections_.depth(); });

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) fail_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  const std::string host =
      config_.host == "localhost" ? "127.0.0.1" : config_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: malformed listen address '" +
                             config_.host + "' (want an IPv4 address)");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail_errno("bind " + host + ":" + std::to_string(config_.port));
  }
  if (::listen(listen_fd_, SOMAXCONN) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    fail_errno("listen");
  }
  socklen_t len = sizeof addr;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    fail_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

HttpServer::~HttpServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::serve() {
  // Job 0 is the accept loop, jobs 1..workers serve connections: one pool
  // region whose jobs all run until shutdown, sized so every job gets its
  // own thread (the calling thread participates).
  support::ThreadPool pool(static_cast<unsigned>(config_.workers) + 1);
  pool.for_each_index(config_.workers + 1, [this](std::size_t job) {
    if (job == 0) {
      accept_loop();
    } else {
      worker_loop();
    }
  });
}

void HttpServer::accept_loop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);  // 100 ms stop-flag granularity
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (!connections_.push_wait(fd, std::chrono::milliseconds(200))) {
      // Every worker busy and the backlog full: shed load loudly instead of
      // queueing without bound.
      const std::string payload = serialize_response(
          json_error(503, "server saturated; retry shortly"), false);
      (void)send_all(fd, payload);
      ::close(fd);
    }
  }
  connections_.close();  // drains, then pops return nullopt and workers exit
}

void HttpServer::worker_loop() {
  while (std::optional<int> fd = connections_.pop()) {
    serve_connection(*fd);
  }
}

void HttpServer::serve_connection(int fd) {
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(config_.io_timeout_seconds);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);

  const std::string peer = peer_address(fd);
  HttpRequestParser parser(config_.limits);
  while (serve_one(fd, parser, peer)) {
  }
  ::close(fd);
}

bool HttpServer::serve_one(int fd, HttpRequestParser& parser,
                           const std::string& peer) {
  char buffer[16 * 1024];
  while (!parser.complete() && !parser.failed()) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) return false;  // peer closed, timed out, or errored
    parser.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
  if (parser.failed()) {
    // The connection state is unknowable after a malformed request: answer
    // and close.
    const std::string payload = serialize_response(
        json_error(parser.error_status(), parser.error()), false);
    (void)send_all(fd, payload);
    return false;
  }

  const HttpRequest& request = parser.request();
  const std::string* header_client = request.header("x-ethsm-client");
  const std::string client = header_client ? *header_client : peer;
  const bool keep_alive = request.keep_alive && !stop_.load();

  // ?follow=1 on the progress endpoint streams snapshots (chunked) until the
  // computation lands; everything else is a plain response.
  if (request.method == "GET" &&
      request.path.rfind("/v1/progress/", 0) == 0 &&
      request.query_value("follow").value_or("0") != "0") {
    const auto fingerprint = ExperimentService::parse_fingerprint(
        request.path.substr(std::strlen("/v1/progress/")));
    if (fingerprint) {
      stream_progress(fd, request, *fingerprint, keep_alive);
      return false;  // chunked stream ends the connection
    }
  }

  HttpResponse response = service_.handle(request, client);
  const bool keep =
      keep_alive && !response.close_connection && response.status < 500;
  if (!send_all(fd, serialize_response(response, keep))) return false;
  parser.consume_request();
  return keep;
}

void HttpServer::stream_progress(int fd, const HttpRequest& request,
                                 std::uint64_t fingerprint, bool keep_alive) {
  (void)keep_alive;
  // Route the first snapshot through handle() so validation, 404s and the
  // /v1/status request counters behave exactly like the non-follow endpoint.
  HttpResponse first = service_.handle(request, "follow");
  if (first.status != 200) {
    (void)send_all(fd, serialize_response(first, false));
    return;
  }
  std::string head;
  head += "HTTP/1.1 200 OK\r\n";
  head += "Content-Type: application/json\r\n";
  head += "Transfer-Encoding: chunked\r\n";
  head += "Connection: close\r\n\r\n";
  if (!send_all(fd, head) || !send_all(fd, chunk(first.body))) return;

  // One snapshot every 200 ms while the computation runs, with a hard cap so
  // an abandoned stream cannot outlive its client forever.
  const int max_snapshots = 5 * 60 * 5;  // five minutes
  for (int i = 0; i < max_snapshots && !stop_.load(); ++i) {
    if (!service_.computing(fingerprint)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    const std::optional<std::string> snapshot =
        service_.progress_snapshot(fingerprint);
    if (!snapshot || !send_all(fd, chunk(*snapshot))) return;
  }
  // Terminal snapshot (computing: false / cached: true) + last chunk.
  if (const auto last = service_.progress_snapshot(fingerprint)) {
    if (!send_all(fd, chunk(*last))) return;
  }
  (void)send_all(fd, "0\r\n\r\n");
}

bool HttpServer::send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

}  // namespace ethsm::serve
