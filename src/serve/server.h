// HttpServer: the POSIX-socket transport of `ethsm serve`. A single accept
// loop plus N worker threads, all scheduled on one support::ThreadPool
// region (job 0 accepts, jobs 1..N serve connections popped off a bounded
// BlockingQueue). Connections are keep-alive HTTP/1.1 with per-socket I/O
// timeouts; request parsing and routing live in serve/http.h and
// serve/service.h, which keeps this file to sockets only.
//
// Shutdown: request_stop() just sets an atomic flag (async-signal-safe, the
// CLI calls it from SIGINT/SIGTERM handlers). The accept loop polls the flag
// every 100 ms, closes the listener, closes the queue; workers drain and
// exit; serve() returns.

#ifndef ETHSM_SERVE_SERVER_H
#define ETHSM_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <string>

#include "serve/blocking_queue.h"
#include "serve/http.h"
#include "serve/service.h"

namespace ethsm::serve {

struct ServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; bind_and_listen reports it
  /// Worker threads serving connections (the accept loop is one more).
  std::size_t workers = 4;
  /// Accepted-but-unserved connection backlog; when full, new connections
  /// are answered 503 immediately rather than queued unbounded.
  std::size_t queue_capacity = 64;
  /// Per-socket read/write timeout. Generous: a cold full-resolution run can
  /// legitimately compute for minutes before the response starts.
  unsigned io_timeout_seconds = 600;
  HttpLimits limits;
};

class HttpServer {
 public:
  /// Binds + listens immediately; throws std::runtime_error with the OS
  /// reason on failure. The service's queue-depth hook is wired here.
  HttpServer(ExperimentService& service, ServerConfig config);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (the OS choice when config.port was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Runs the accept loop + workers; blocks until request_stop().
  void serve();

  /// Signal-safe stop request: sets a flag the accept loop polls.
  void request_stop() noexcept { stop_.store(true); }
  [[nodiscard]] bool stopping() const noexcept { return stop_.load(); }

 private:
  void accept_loop();
  void worker_loop();
  void serve_connection(int fd);
  /// Handles one request on the connection; false = close the connection.
  bool serve_one(int fd, HttpRequestParser& parser,
                 const std::string& peer);
  void stream_progress(int fd, const HttpRequest& request,
                       std::uint64_t fingerprint, bool keep_alive);
  [[nodiscard]] bool send_all(int fd, std::string_view bytes);

  ExperimentService& service_;
  ServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  BlockingQueue<int> connections_;
};

}  // namespace ethsm::serve

#endif  // ETHSM_SERVE_SERVER_H
