#include "serve/service.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "api/presets.h"
#include "api/render.h"
#include "api/result.h"
#include "api/runner.h"
#include "api/spec.h"
#include "support/check.h"
#include "support/checkpoint.h"
#include "support/json.h"
#include "support/trace.h"

namespace ethsm::serve {

using support::hex64;
using support::json_escape;

ExperimentService::ExperimentService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_entries),
      admission_(config_.admission),
      started_(std::chrono::steady_clock::now()),
      requests_total_(registry_.counter("ethsm_serve_requests_total",
                                        "HTTP requests handled")),
      requests_run_(registry_.counter("ethsm_serve_requests_run_total",
                                      "POST /v1/run requests")),
      requests_result_(registry_.counter("ethsm_serve_requests_result_total",
                                         "GET /v1/result requests")),
      requests_presets_(registry_.counter("ethsm_serve_requests_presets_total",
                                          "GET /v1/presets requests")),
      requests_status_(registry_.counter("ethsm_serve_requests_status_total",
                                         "GET /v1/status requests")),
      requests_progress_(registry_.counter(
          "ethsm_serve_requests_progress_total", "GET /v1/progress requests")),
      requests_metrics_(registry_.counter("ethsm_serve_requests_metrics_total",
                                          "GET /metrics requests")),
      computations_(registry_.counter("ethsm_serve_computations_total",
                                      "Computations run to completion")),
      failures_(registry_.counter("ethsm_serve_failures_total",
                                  "Requests failed with an internal error")),
      request_seconds_(registry_.histogram(
          "ethsm_serve_request_seconds",
          support::metrics::Histogram::latency_bounds_seconds(),
          "End-to-end request handling latency")) {
  ETHSM_EXPECTS(!config_.checkpoint_dir.empty(),
                "serve needs a checkpoint directory");
  // The cache/dedupe/admission layers keep their own internal accounting
  // (tests drive them directly); the registry samples them through callbacks
  // at render time, so /v1/status and /metrics read the same source.
  registry_.register_gauge_fn(
      "ethsm_serve_cache_entries",
      [this] { return static_cast<std::int64_t>(cache_.size()); },
      "Rendered payloads resident in the LRU cache");
  registry_.register_counter_fn(
      "ethsm_serve_cache_hits_total", [this] { return cache_.hits(); },
      "Result-cache hits");
  registry_.register_counter_fn(
      "ethsm_serve_cache_misses_total", [this] { return cache_.misses(); },
      "Result-cache misses");
  registry_.register_counter_fn(
      "ethsm_serve_cache_evictions_total",
      [this] { return cache_.evictions(); }, "Result-cache LRU evictions");
  registry_.register_gauge_fn(
      "ethsm_serve_inflight_jobs",
      [this] { return static_cast<std::int64_t>(inflight_.depth()); },
      "Computations currently in flight");
  registry_.register_counter_fn(
      "ethsm_serve_dedupe_attached_total",
      [this] { return inflight_.attached(); },
      "Requests served by attaching to an in-flight computation");
  registry_.register_gauge_fn(
      "ethsm_serve_admission_acquired",
      [this] { return static_cast<std::int64_t>(admission_.jobs_in_flight()); },
      "Admission slots currently held");
  registry_.register_counter_fn(
      "ethsm_serve_admission_rejected_total",
      [this] { return admission_.rejected(); },
      "Requests rejected by admission control (429s)");
  registry_.register_gauge_fn(
      "ethsm_serve_queue_depth",
      [this] {
        return static_cast<std::int64_t>(queue_depth_ ? queue_depth_() : 0);
      },
      "Accepted connections waiting for a worker");
  // Preload the registry: /v1/result and /v1/progress resolve every preset
  // fingerprint (full and quick) from the first request on, cold cache or
  // not.
  for (const api::Preset& preset : api::presets()) {
    for (const bool quick : {false, true}) {
      const api::ExperimentSpec spec = preset.spec(quick);
      remember_spec(api::spec_fingerprint(spec), api::print_spec(spec));
    }
  }
}

std::optional<std::uint64_t> ExperimentService::parse_fingerprint(
    std::string_view text) {
  if (text.rfind("0x", 0) == 0 || text.rfind("0X", 0) == 0) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  return value;
}

void ExperimentService::remember_spec(std::uint64_t fingerprint,
                                      std::string spec_text) {
  const std::lock_guard<std::mutex> lock(specs_mutex_);
  known_specs_[fingerprint] = std::move(spec_text);
}

std::optional<std::string> ExperimentService::known_spec(
    std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(specs_mutex_);
  const auto it = known_specs_.find(fingerprint);
  if (it == known_specs_.end()) return std::nullopt;
  return it->second;
}

std::shared_ptr<std::mutex> ExperimentService::sweep_lock(
    std::uint64_t sweep) {
  const std::lock_guard<std::mutex> lock(sweep_locks_mutex_);
  auto& slot = sweep_locks_[sweep];
  if (!slot) slot = std::make_shared<std::mutex>();
  return slot;
}

HttpResponse ExperimentService::handle(const HttpRequest& request,
                                       const std::string& client) {
  requests_total_.add();
  support::trace::Span span("serve.request " + request.path);
  const auto handle_start = std::chrono::steady_clock::now();
  // Observe the latency on every exit path; the histogram is a write-only
  // tap, so a scope guard keeps the routing below branch-free about it.
  struct LatencyGuard {
    support::metrics::Histogram& histogram;
    std::chrono::steady_clock::time_point start;
    ~LatencyGuard() {
      histogram.observe(std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count());
    }
  } latency_guard{request_seconds_, handle_start};
  try {
    const std::string& path = request.path;
    if (path == "/v1/run") {
      if (request.method != "POST") {
        return json_error(405, "POST /v1/run (got " + request.method + ")");
      }
      requests_run_.add();
      return handle_run(request, client);
    }
    if (path.rfind("/v1/result/", 0) == 0) {
      if (request.method != "GET") return json_error(405, "GET only");
      requests_result_.add();
      return handle_result(path.substr(std::strlen("/v1/result/")), client);
    }
    if (path == "/v1/presets") {
      if (request.method != "GET") return json_error(405, "GET only");
      requests_presets_.add();
      return {200, "application/json", {}, api::render_presets_json(), false};
    }
    if (path == "/v1/status") {
      if (request.method != "GET") return json_error(405, "GET only");
      requests_status_.add();
      return handle_status();
    }
    if (path == "/metrics") {
      if (request.method != "GET") return json_error(405, "GET only");
      requests_metrics_.add();
      return handle_metrics();
    }
    if (path.rfind("/v1/progress/", 0) == 0) {
      if (request.method != "GET") return json_error(405, "GET only");
      requests_progress_.add();
      return handle_progress(path.substr(std::strlen("/v1/progress/")));
    }
    return json_error(404, "unknown endpoint " + path);
  } catch (const api::SpecError& e) {
    return json_error(400, e.what());
  } catch (const std::exception& e) {
    failures_.add();
    return json_error(500, e.what());
  }
}

HttpResponse ExperimentService::handle_run(const HttpRequest& request,
                                           const std::string& client) {
  // Spec sources are exclusive: a raw spec body XOR a ?preset= reference.
  const std::optional<std::string> preset = request.query_value("preset");
  const bool quick = request.query_value("quick").value_or("0") != "0";
  std::string text;
  if (!request.body.empty()) {
    if (preset) {
      return json_error(400,
                        "give a spec body or ?preset=..., not both");
    }
    text = request.body;
  } else if (preset) {
    text = api::print_spec(api::preset_spec(*preset, quick));
  } else {
    return json_error(400,
                      "POST /v1/run needs a spec body (parse_spec grammar) "
                      "or ?preset=NAME[&quick=1]");
  }

  // Byte-for-byte the CLI's SpecRequest::resolve path, with ?set= playing
  // the role of repeated --set flags -- this is what makes served payloads
  // bitwise-identical to `ethsm run` output.
  api::SpecEntries entries = api::parse_spec_entries(text);
  for (const std::string& assignment : request.query_values("set")) {
    api::apply_override(entries, assignment);
  }
  const api::ExperimentSpec spec = api::spec_from_entries(entries);
  const std::uint64_t fingerprint = api::spec_fingerprint(spec);
  const std::string canonical = api::print_spec(spec);
  remember_spec(fingerprint, canonical);
  return run_spec(fingerprint, canonical, client);
}

HttpResponse ExperimentService::handle_result(std::string_view hex,
                                              const std::string& client) {
  const std::optional<std::uint64_t> fingerprint = parse_fingerprint(hex);
  if (!fingerprint) {
    return json_error(400, "malformed fingerprint '" + std::string(hex) +
                               "' (want 16 hex digits)");
  }
  // Cache first; else recompute any spec this daemon knows (presets are
  // preloaded, posted specs are remembered) -- with warm checkpoints that
  // recompute is a disk reload, which is exactly the restart story.
  if (std::optional<std::string> payload = cache_.get(*fingerprint)) {
    HttpResponse response;
    response.body = std::move(*payload);
    response.extra_headers.emplace_back("X-Ethsm-Source", "cache");
    return response;
  }
  const std::optional<std::string> spec_text = known_spec(*fingerprint);
  if (!spec_text) {
    return json_error(404, "unknown result fingerprint " + hex64(*fingerprint) +
                               "; POST the spec to /v1/run first");
  }
  return run_spec(*fingerprint, *spec_text, client);
}

HttpResponse ExperimentService::rejected_response() {
  HttpResponse response =
      json_error(429, "computation budget exhausted; retry after " +
                          std::to_string(config_.retry_after_seconds) + "s");
  response.extra_headers.emplace_back(
      "Retry-After", std::to_string(config_.retry_after_seconds));
  return response;
}

HttpResponse ExperimentService::run_spec(std::uint64_t fingerprint,
                                         const std::string& spec_text,
                                         const std::string& client) {
  {
    support::trace::Span cache_span("serve.cache_lookup");
    if (std::optional<std::string> payload = cache_.get(fingerprint)) {
      HttpResponse response;
      response.body = std::move(*payload);
      response.extra_headers.emplace_back("X-Ethsm-Source", "cache");
      return response;
    }
  }

  const InflightTable::Ticket ticket = inflight_.begin(fingerprint);
  if (!ticket.leader) {
    // Dedupe: ride the computation some other request already started.
    // Attaching is free -- admission gates only computation starts.
    support::trace::Span dedupe_span("serve.dedupe_wait");
    const InflightTable::Outcome outcome = InflightTable::wait(ticket.job);
    switch (outcome.state) {
      case InflightTable::JobState::done: {
        HttpResponse response;
        response.body = outcome.payload;
        response.extra_headers.emplace_back("X-Ethsm-Source", "dedup");
        return response;
      }
      case InflightTable::JobState::rejected:
        return rejected_response();
      case InflightTable::JobState::failed:
      default:
        return json_error(500, outcome.payload);
    }
  }

  // Leader. Re-check the cache after winning leadership: a previous leader
  // may have published between our miss and our begin().
  if (std::optional<std::string> payload = cache_.get(fingerprint)) {
    inflight_.finish(fingerprint, ticket.job, InflightTable::JobState::done,
                     *payload);
    HttpResponse response;
    response.body = std::move(*payload);
    response.extra_headers.emplace_back("X-Ethsm-Source", "cache");
    return response;
  }

  bool admitted = false;
  {
    support::trace::Span admission_span("serve.admission");
    admitted = admission_.try_acquire(client);
  }
  if (!admitted) {
    // Followers of this job get the same 429: had they arrived alone they
    // would have been the over-budget leader themselves.
    inflight_.finish(fingerprint, ticket.job,
                     InflightTable::JobState::rejected, {});
    return rejected_response();
  }

  try {
    const api::ExperimentSpec spec = [&] {
      support::trace::Span parse_span("serve.parse_spec");
      return api::parse_spec(spec_text);
    }();
    // One writer per sweep (the checkpoint store's contract): distinct specs
    // can touch the same sweep, so take every sweep lock in sorted order.
    std::vector<std::uint64_t> sweeps = api::sweep_fingerprints(spec);
    std::sort(sweeps.begin(), sweeps.end());
    sweeps.erase(std::unique(sweeps.begin(), sweeps.end()), sweeps.end());
    std::vector<std::shared_ptr<std::mutex>> locks;
    locks.reserve(sweeps.size());
    for (const std::uint64_t sweep : sweeps) locks.push_back(sweep_lock(sweep));
    std::vector<std::unique_lock<std::mutex>> held;
    held.reserve(locks.size());
    for (const auto& lock : locks) held.emplace_back(*lock);

    api::RunOptions options;
    options.checkpoint.directory = config_.checkpoint_dir;
    const api::ExperimentResult result = [&] {
      support::trace::Span compute_span("serve.compute");
      return api::run(spec, options);
    }();
    held.clear();
    computations_.add();

    support::trace::Span render_span("serve.render");
    std::string payload =
        api::render_json(api::provenance_normalized(result));
    cache_.put(fingerprint, payload);
    admission_.release(client);
    inflight_.finish(fingerprint, ticket.job, InflightTable::JobState::done,
                     payload);
    HttpResponse response;
    response.body = std::move(payload);
    response.extra_headers.emplace_back("X-Ethsm-Source", "computed");
    return response;
  } catch (const std::exception& e) {
    // Errors are not cached: a transient failure (disk, OOM) must not poison
    // the fingerprint until an eviction.
    failures_.add();
    admission_.release(client);
    inflight_.finish(fingerprint, ticket.job, InflightTable::JobState::failed,
                     e.what());
    return json_error(500, e.what());
  }
}

HttpResponse ExperimentService::handle_status() {
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
                          std::chrono::steady_clock::now() - started_)
                          .count();
  // Rendered from the same sources as GET /metrics: the route counters live
  // in registry_, the cache/dedupe/admission numbers in those classes.
  std::ostringstream os;
  os << "{\n";
  os << "  \"uptime_seconds\": " << uptime << ",\n";
  os << "  \"requests\": {\"total\": " << requests_total_.value()
     << ", \"run\": " << requests_run_.value()
     << ", \"result\": " << requests_result_.value()
     << ", \"presets\": " << requests_presets_.value()
     << ", \"status\": " << requests_status_.value()
     << ", \"progress\": " << requests_progress_.value() << "},\n";
  os << "  \"cache\": {\"entries\": " << cache_.size()
     << ", \"capacity\": " << cache_.capacity()
     << ", \"hits\": " << cache_.hits() << ", \"misses\": " << cache_.misses()
     << ", \"evictions\": " << cache_.evictions() << "},\n";
  os << "  \"jobs\": {\"in_flight\": " << inflight_.depth()
     << ", \"computed\": " << computations_.value()
     << ", \"failed\": " << failures_.value()
     << ", \"dedupe_attached\": " << inflight_.attached() << "},\n";
  os << "  \"admission\": {\"max_jobs_in_flight\": "
     << admission_.config().max_jobs_in_flight
     << ", \"per_client_jobs\": " << admission_.config().per_client_jobs
     << ", \"acquired\": " << admission_.jobs_in_flight()
     << ", \"rejected\": " << admission_.rejected() << "},\n";
  os << "  \"queue_depth\": " << (queue_depth_ ? queue_depth_() : 0) << "\n";
  os << "}\n";
  HttpResponse response;
  response.body = os.str();
  return response;
}

HttpResponse ExperimentService::handle_metrics() {
  // The daemon's own counters first, then the process-wide engine taps
  // (solver, thread pool, checkpoint store, net sim) -- one scrape covers
  // every layer. Metric names are disjoint by construction (ethsm_serve_*
  // vs ethsm_<engine>_*), so concatenation is a valid exposition.
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = registry_.render_prometheus() +
                  support::metrics::registry().render_prometheus();
  return response;
}

std::optional<std::string> ExperimentService::progress_snapshot(
    std::uint64_t fingerprint) {
  const std::optional<std::string> spec_text = known_spec(fingerprint);
  if (!spec_text) return std::nullopt;
  const api::ExperimentSpec spec = api::parse_spec(*spec_text);

  std::ostringstream os;
  os << "{\"fingerprint\": \"" << hex64(fingerprint) << "\", \"computing\": "
     << (inflight_.running(fingerprint) ? "true" : "false")
     << ", \"cached\": " << (cache_.contains(fingerprint) ? "true" : "false")
     << ", \"sweeps\": [";
  bool first = true;
  for (const std::uint64_t sweep : api::sweep_fingerprints(spec)) {
    // The read-only record scan of the store: safe against the concurrent
    // writer by the checkpoint writer/reader contract.
    const std::size_t records =
        support::read_checkpoint_records(config_.checkpoint_dir, sweep).size();
    os << (first ? "" : ", ");
    first = false;
    os << "{\"fingerprint\": \"" << hex64(sweep)
       << "\", \"records\": " << records << "}";
  }
  os << "]}\n";
  return os.str();
}

HttpResponse ExperimentService::handle_progress(std::string_view hex) {
  const std::optional<std::uint64_t> fingerprint = parse_fingerprint(hex);
  if (!fingerprint) {
    return json_error(400, "malformed fingerprint '" + std::string(hex) +
                               "' (want 16 hex digits)");
  }
  std::optional<std::string> snapshot = progress_snapshot(*fingerprint);
  if (!snapshot) {
    return json_error(404, "unknown fingerprint " + hex64(*fingerprint) +
                               "; POST the spec to /v1/run first");
  }
  HttpResponse response;
  response.body = std::move(*snapshot);
  return response;
}

}  // namespace ethsm::serve
