// ExperimentService: the transport-free core of `ethsm serve` (ROADMAP:
// "experiment results as a service"). Maps parsed HTTP requests onto the
// experiment API and answers with rendered JSON:
//
//   POST /v1/run                 run a spec (body = parse_spec grammar text,
//                                or ?preset=NAME[&quick=1]); repeated ?set=
//                                query parameters apply like --set flags
//   GET  /v1/result/<hex>        result by spec fingerprint (cache, else a
//                                checkpoint-backed recompute of a known spec)
//   GET  /v1/presets             the preset registry (render_presets_json)
//   GET  /v1/status              observability counters
//   GET  /v1/progress/<hex>      checkpoint-record progress snapshot; the
//                                server streams it when ?follow=1
//
// Spec resolution is byte-for-byte the CLI's `SpecRequest::resolve` path
// (print_spec of the preset -> parse_spec_entries -> apply_override per set
// -> spec_from_entries) and results render through render_json of the
// provenance-normalized result, so a served payload is bitwise-identical to
// `ethsm run ... --format json` for the same spec -- asserted per preset by
// tests/serve/service_test.cpp.
//
// Layering: identical concurrent specs dedupe onto one computation
// (InflightTable), repeat queries hit the ResultCache, cold cache misses
// reload sweep records from the CheckpointStore tier before computing
// anything, and only requests that would actually *start* a computation pass
// through admission control (429 + Retry-After when over budget). The cache
// and dedupe layers are keyed by spec fingerprint alone, so pointing them at
// a shared store later is a swap of those classes, not of this one.

#ifndef ETHSM_SERVE_SERVICE_H
#define ETHSM_SERVE_SERVICE_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "serve/admission.h"
#include "serve/http.h"
#include "serve/inflight.h"
#include "serve/result_cache.h"
#include "support/metrics.h"

namespace ethsm::serve {

struct ServiceConfig {
  /// Checkpoint directory backing every served computation (required: the
  /// store is the daemon's second cache tier and its restart persistence).
  std::string checkpoint_dir;
  /// ResultCache entries (rendered JSON payloads).
  std::size_t cache_entries = 256;
  AdmissionConfig admission;
  /// Retry-After header value on 429 responses.
  unsigned retry_after_seconds = 2;
};

class ExperimentService {
 public:
  explicit ExperimentService(ServiceConfig config);

  /// Answers one parsed request. `client` is the admission identity (the
  /// X-Ethsm-Client header when present, else the peer address -- the server
  /// resolves it). Never throws: internal errors map to 500 responses.
  [[nodiscard]] HttpResponse handle(const HttpRequest& request,
                                    const std::string& client);

  /// Progress snapshot JSON for a fingerprint the service knows; nullopt for
  /// an unknown one. Transport-free so the server can stream it repeatedly
  /// on ?follow=1 without re-routing through handle().
  [[nodiscard]] std::optional<std::string> progress_snapshot(
      std::uint64_t fingerprint);

  /// True while a computation for this fingerprint is running (the server's
  /// keep-streaming condition for ?follow=1).
  [[nodiscard]] bool computing(std::uint64_t fingerprint) const {
    return inflight_.running(fingerprint);
  }

  /// Connection-queue depth hook for /v1/status (wired by the server; the
  /// service itself is transport-free).
  void set_queue_depth_provider(std::function<std::size_t()> provider) {
    queue_depth_ = std::move(provider);
  }

  /// "0x" -free 16-digit lower-case hex fingerprint, as hex64 renders it;
  /// tolerant of an optional 0x prefix. nullopt on malformed input.
  [[nodiscard]] static std::optional<std::uint64_t> parse_fingerprint(
      std::string_view text);

  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] InflightTable& inflight() noexcept { return inflight_; }
  [[nodiscard]] AdmissionController& admission() noexcept { return admission_; }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  HttpResponse handle_run(const HttpRequest& request,
                          const std::string& client);
  HttpResponse handle_result(std::string_view hex, const std::string& client);
  HttpResponse handle_status();
  HttpResponse handle_metrics();
  HttpResponse handle_progress(std::string_view hex);

  /// The cache -> dedupe -> admission -> api::run path for a spec whose
  /// canonical text is `spec_text`.
  HttpResponse run_spec(std::uint64_t fingerprint, const std::string& spec_text,
                        const std::string& client);
  HttpResponse rejected_response();

  /// Remembers fingerprint -> canonical spec text, so /v1/result and
  /// /v1/progress resolve fingerprints the daemon has seen (every preset is
  /// preloaded, every successfully resolved POST /v1/run spec is added).
  void remember_spec(std::uint64_t fingerprint, std::string spec_text);
  [[nodiscard]] std::optional<std::string> known_spec(
      std::uint64_t fingerprint) const;

  ServiceConfig config_;
  ResultCache cache_;
  InflightTable inflight_;
  AdmissionController admission_;
  std::function<std::size_t()> queue_depth_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex specs_mutex_;
  std::map<std::uint64_t, std::string> known_specs_;

  /// Per-sweep writer locks: api::run opens the checkpoint store for every
  /// sweep it touches, and the store's writer/reader contract allows one
  /// writer per sweep. Distinct specs can share sweep fingerprints, so the
  /// dedupe table alone does not serialize them -- these locks do.
  std::mutex sweep_locks_mutex_;
  std::map<std::uint64_t, std::shared_ptr<std::mutex>> sweep_locks_;
  [[nodiscard]] std::shared_ptr<std::mutex> sweep_lock(std::uint64_t sweep);

  /// The single source of truth for the daemon's counters: /v1/status and
  /// GET /metrics are two renderings of this per-instance registry (plus the
  /// process-wide metrics::registry() for the engine taps). Per-instance so
  /// one process hosting several services -- the test binary does -- keeps
  /// their counts separate. The cache/admission/inflight statistics stay
  /// inside those classes and surface here through callbacks, so no number
  /// is accounted twice.
  support::metrics::Registry registry_;
  support::metrics::Counter& requests_total_;
  support::metrics::Counter& requests_run_;
  support::metrics::Counter& requests_result_;
  support::metrics::Counter& requests_presets_;
  support::metrics::Counter& requests_status_;
  support::metrics::Counter& requests_progress_;
  support::metrics::Counter& requests_metrics_;
  support::metrics::Counter& computations_;
  support::metrics::Counter& failures_;
  support::metrics::Histogram& request_seconds_;
};

}  // namespace ethsm::serve

#endif  // ETHSM_SERVE_SERVICE_H
