#include "sim/delay_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>

#include "chain/block_tree.h"
#include "chain/uncle_index.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace ethsm::sim {

void DelaySimConfig::validate() const {
  ETHSM_EXPECTS(delay >= 0.0, "delay must be non-negative");
  ETHSM_EXPECTS(num_blocks > 0, "num_blocks must be positive");
  const auto shares_eff = effective_shares();
  const double total =
      std::accumulate(shares_eff.begin(), shares_eff.end(), 0.0);
  ETHSM_EXPECTS(std::fabs(total - 1.0) < 1e-6, "shares must sum to 1");
  for (double s : shares_eff) {
    ETHSM_EXPECTS(s > 0.0, "every miner needs positive hash power");
  }
}

std::vector<double> DelaySimConfig::effective_shares() const {
  if (!shares.empty()) return shares;
  return std::vector<double>(20, 1.0 / 20.0);
}

double DelaySimResult::uncle_rate() const {
  const auto regular = static_cast<double>(ledger.regular_total());
  return regular == 0.0
             ? 0.0
             : static_cast<double>(ledger.referenced_uncle_total()) / regular;
}

double DelaySimResult::stale_rate() const {
  const auto regular = static_cast<double>(ledger.regular_total());
  if (regular == 0.0) return 0.0;
  const auto stale = static_cast<double>(
      ledger.fates[0].stale + ledger.fates[1].stale +
      ledger.referenced_uncle_total());
  return stale / regular;
}

DelaySimResult run_delay_simulation(const DelaySimConfig& config) {
  config.validate();
  const auto shares = config.effective_shares();
  const auto n = static_cast<std::uint32_t>(shares.size());

  // Cumulative shares for miner sampling.
  std::vector<double> cumulative(shares.size());
  std::partial_sum(shares.begin(), shares.end(), cumulative.begin());

  chain::BlockTree& tree = chain::thread_local_tree(config.num_blocks + 1);
  support::Xoshiro256 rng(config.seed);

  // Reveal queue: blocks become globally visible `delay` after creation.
  // Constant delay => FIFO order.
  struct PendingReveal {
    chain::BlockId block;
    double at;
  };
  std::deque<PendingReveal> reveal_queue;

  chain::BlockId global_best = tree.genesis();
  std::uint32_t global_best_height = 0;
  // Each miner's own latest block (visible to itself immediately).
  std::vector<chain::BlockId> own_tip(n, chain::kNoBlock);

  auto process_reveals = [&](double now) {
    while (!reveal_queue.empty() && reveal_queue.front().at <= now) {
      const auto [block, at] = reveal_queue.front();
      reveal_queue.pop_front();
      tree.publish(block, at);
      // First revealed block at a new height wins the global tie-break.
      if (tree.height(block) > global_best_height) {
        global_best = block;
        global_best_height = tree.height(block);
      }
    }
  };

  const int horizon = config.rewards.reference_horizon();
  chain::UncleScratch uncle_scratch;  // reused across the whole run
  DelaySimResult result;
  result.per_miner_blocks.assign(n, 0);

  double now = 0.0;
  for (std::uint64_t step = 0; step < config.num_blocks; ++step) {
    now += rng.exponential(1.0);
    process_reveals(now);

    // Sample the finder proportionally to hash power.
    const double u = rng.uniform01();
    const auto miner = static_cast<std::uint32_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());

    // The finder mines on the best chain IT can see: its own latest block
    // beats the revealed best at equal height (it saw its own first).
    chain::BlockId parent = global_best;
    if (own_tip[miner] != chain::kNoBlock &&
        tree.height(own_tip[miner]) >= global_best_height) {
      parent = own_tip[miner];
    }

    uncle_scratch.refs.clear();
    if (horizon > 0) {
      chain::collect_uncle_references(tree, parent, horizon,
                                      config.rewards.max_uncles_per_block,
                                      uncle_scratch);
    }
    const auto id = tree.append(parent, chain::MinerClass::honest, miner, now,
                                uncle_scratch.refs);
    own_tip[miner] = id;
    ++result.per_miner_blocks[miner];

    if (config.delay == 0.0) {
      process_reveals(now);  // keep queue empty
      reveal_queue.push_back({id, now});
      process_reveals(now);
    } else {
      reveal_queue.push_back({id, now + config.delay});
    }
  }
  // Drain the queue so every block is visible for final accounting.
  process_reveals(now + config.delay + 1.0);

  result.blocks_mined = config.num_blocks;
  result.duration = now;
  result.ledger = chain::settle_rewards(tree, global_best, config.rewards, n);

  // Per-miner stale fractions (Sec. VI: big miners waste less).
  const auto fates = chain::classify_blocks(tree, global_best);
  std::vector<std::uint64_t> stale(n, 0);
  for (chain::BlockId b = 1; b < tree.size(); ++b) {
    if (fates[b] == chain::BlockFate::stale ||
        fates[b] == chain::BlockFate::referenced_uncle) {
      ++stale[tree.block(b).miner_id];
    }
  }
  result.per_miner_stale_fraction.assign(n, 0.0);
  for (std::uint32_t m = 0; m < n; ++m) {
    if (result.per_miner_blocks[m] > 0) {
      result.per_miner_stale_fraction[m] =
          static_cast<double>(stale[m]) /
          static_cast<double>(result.per_miner_blocks[m]);
    }
  }
  return result;
}

DelayMultiRunSummary run_delay_many(const DelaySimConfig& config, int runs) {
  return run_delay_many(config, runs, support::SweepCheckpoint{});
}

std::uint64_t run_delay_many_fingerprint(const DelaySimConfig& config,
                                         int runs) {
  support::Fingerprint fp;
  fp.mix("run_delay_many/v1");
  for (double share : config.effective_shares()) fp.mix(share);
  fp.mix(config.delay);
  fp.mix(config.num_blocks);
  fp.mix(config.seed);
  fp.mix(rewards::sweep_fingerprint(config.rewards));
  fp.mix(runs);
  return fp.digest();
}

DelayMultiRunSummary run_delay_many(const DelaySimConfig& config, int runs,
                                    const support::SweepCheckpoint& checkpoint,
                                    support::SweepOutcome* outcome) {
  ETHSM_EXPECTS(runs > 0, "need at least one run");
  config.validate();
  const auto num_miners = config.effective_shares().size();

  const auto sweep = support::run_checkpointed<DelaySimResult>(
      checkpoint, run_delay_many_fingerprint(config, runs),
      static_cast<std::size_t>(runs), [&config](std::size_t r) {
        DelaySimConfig run_config = config;
        run_config.seed =
            support::derive_seed(config.seed, static_cast<std::uint64_t>(r));
        return run_delay_simulation(run_config);
      });
  ETHSM_EXPECTS(outcome != nullptr || sweep.complete(),
                "incomplete sharded/budgeted sweep: pass a SweepOutcome to "
                "consume partial aggregates");

  DelayMultiRunSummary summary;
  summary.per_miner_stale_fraction.resize(num_miners);
  for (std::size_t i = 0; i < sweep.results.size(); ++i) {
    if (!sweep.have[i]) continue;
    const DelaySimResult& r = sweep.results[i];
    summary.uncle_rate.add(r.uncle_rate());
    summary.stale_rate.add(r.stale_rate());
    summary.duration.add(r.duration);
    for (std::size_t m = 0; m < num_miners; ++m) {
      summary.per_miner_stale_fraction[m].add(r.per_miner_stale_fraction[m]);
    }
    ++summary.runs;
  }
  if (outcome != nullptr) outcome->merge(sweep.outcome);
  return summary;
}

}  // namespace ethsm::sim

namespace ethsm::support {

void CheckpointCodec<sim::DelaySimResult>::encode(
    ByteWriter& w, const sim::DelaySimResult& result) {
  CheckpointCodec<chain::LedgerResult>::encode(w, result.ledger);
  w.u64(result.blocks_mined);
  w.f64(result.duration);
  w.f64_vec(result.per_miner_stale_fraction);
  w.u64_vec(result.per_miner_blocks);
}

sim::DelaySimResult CheckpointCodec<sim::DelaySimResult>::decode(
    ByteReader& r) {
  sim::DelaySimResult result;
  result.ledger = CheckpointCodec<chain::LedgerResult>::decode(r);
  result.blocks_mined = r.u64();
  result.duration = r.f64();
  result.per_miner_stale_fraction = r.f64_vec();
  result.per_miner_blocks = r.u64_vec();
  return result;
}

}  // namespace ethsm::support

