// Propagation-delay simulator: the honest-network baseline that motivates
// uncle rewards (paper Sec. VI: "due to propagation delay, mining pools with
// huge hash power are less likely to generate stale blocks"; related work
// [18] studies selfish mining under delay).
//
// The paper's attack model assumes instantaneous propagation, so *all* stale
// blocks there are attack-induced. This module supplies the complementary
// substrate: an all-honest network where every block needs `delay` seconds
// to reach the other miners, so natural forks (and hence uncles) appear at a
// rate governed by delay x block rate. It grounds two things:
//   * the empirical uncle rate of real Ethereum (~7-10%) as a delay effect,
//   * the Sec. VI centralization argument: a miner with a larger hash share
//     wastes a smaller fraction of its blocks, because it never forks
//     against itself (quantified by per-class stale fractions).
//
// Model: n miners, miner i holding share[i] of hash power. A block mined by
// i at time t is visible to everyone else from t + delay, and to i at once.
// Miners mine on the longest chain they can see (first-seen tie-breaking)
// and reference every eligible *visible* uncle (a miner does not reference
// its own still-propagating stale blocks -- documented approximation).

#ifndef ETHSM_SIM_DELAY_SIM_H
#define ETHSM_SIM_DELAY_SIM_H

#include <vector>

#include "chain/reward_ledger.h"
#include "rewards/reward_schedule.h"
#include "support/checkpoint.h"
#include "support/stats.h"

namespace ethsm::sim {

struct DelaySimConfig {
  /// Hash-power shares; empty => 20 equal miners. Must sum to ~1.
  std::vector<double> shares;
  /// Propagation delay in units of the mean block interval (Ethereum:
  /// ~2s delay / ~14s interval ~ 0.15).
  double delay = 0.15;
  std::uint64_t num_blocks = 100'000;
  std::uint64_t seed = 0xde1a7ULL;
  rewards::RewardConfig rewards = rewards::RewardConfig::ethereum_byzantium();

  void validate() const;
  [[nodiscard]] std::vector<double> effective_shares() const;
};

struct DelaySimResult {
  chain::LedgerResult ledger;
  std::uint64_t blocks_mined = 0;
  double duration = 0.0;
  /// Fraction of each miner's blocks that missed the main chain (referenced
  /// uncles included -- they pay less than a full block). The Sec. VI
  /// centralization argument is that this fraction shrinks with hash share.
  std::vector<double> per_miner_stale_fraction;
  std::vector<std::uint64_t> per_miner_blocks;

  /// Referenced uncles per regular block.
  [[nodiscard]] double uncle_rate() const;
  /// All non-main-chain blocks (referenced or not) per regular block.
  [[nodiscard]] double stale_rate() const;
};

/// Runs the all-honest delay network; deterministic given the seed.
[[nodiscard]] DelaySimResult run_delay_simulation(const DelaySimConfig& config);

/// Mean/CI aggregation across independent delay-network runs.
struct DelayMultiRunSummary {
  support::RunningStats uncle_rate;
  support::RunningStats stale_rate;
  support::RunningStats duration;
  /// Per-miner stale-fraction stats across runs (Sec. VI centralization:
  /// larger hash shares waste a smaller fraction of their blocks).
  std::vector<support::RunningStats> per_miner_stale_fraction;
  int runs = 0;
};

/// Runs `runs` independent delay simulations (seeds derived from config.seed)
/// in parallel on the global thread pool and aggregates in run order; the
/// summary is bitwise-identical for any thread count.
[[nodiscard]] DelayMultiRunSummary run_delay_many(const DelaySimConfig& config,
                                                  int runs);

/// Checkpointed variant (see run_many in sim/simulator.h for the contract).
[[nodiscard]] DelayMultiRunSummary run_delay_many(
    const DelaySimConfig& config, int runs,
    const support::SweepCheckpoint& checkpoint,
    support::SweepOutcome* outcome = nullptr);

/// Checkpoint-store fingerprint of a run_delay_many sweep (checkpoint GC).
[[nodiscard]] std::uint64_t run_delay_many_fingerprint(
    const DelaySimConfig& config, int runs);

}  // namespace ethsm::sim

namespace ethsm::support {

template <>
struct CheckpointCodec<sim::DelaySimResult> {
  static void encode(ByteWriter& w, const sim::DelaySimResult& result);
  static sim::DelaySimResult decode(ByteReader& r);
};

}  // namespace ethsm::support

#endif  // ETHSM_SIM_DELAY_SIM_H
