#include "sim/difficulty.h"

#include <algorithm>
#include <cmath>

namespace ethsm::sim {

DifficultyController::DifficultyController(const Options& options)
    : options_(options), difficulty_(options.initial_difficulty) {
  ETHSM_EXPECTS(options.target_rate > 0.0, "target rate must be positive");
  ETHSM_EXPECTS(options.initial_difficulty > 0.0,
                "difficulty must be positive");
  ETHSM_EXPECTS(options.max_step > 1.0, "max_step must exceed 1");
  ETHSM_EXPECTS(options.gain > 0.0 && options.gain <= 1.0,
                "gain must lie in (0, 1]");
}

double DifficultyController::counted_rate(const EpochObservation& epoch) const {
  ETHSM_EXPECTS(epoch.wall_time > 0.0, "epoch must have positive duration");
  const double counted =
      options_.scenario == Scenario::regular_rate_one
          ? static_cast<double>(epoch.regular_blocks)
          : static_cast<double>(epoch.regular_blocks +
                                epoch.referenced_uncles);
  return counted / epoch.wall_time;
}

void DifficultyController::on_epoch(const EpochObservation& epoch) {
  const double rate = counted_rate(epoch);
  ++epochs_;
  if (rate <= 0.0) {
    // Nothing counted this epoch: production stalled, make mining easier by
    // the maximum allowed step.
    difficulty_ /= options_.max_step;
    return;
  }
  // Measured/target ratio, damped, clamped: the multiplicative analogue of
  // Ethereum's bounded per-block nudges.
  const double raw = rate / options_.target_rate;
  const double damped = std::pow(raw, options_.gain);
  const double step =
      std::clamp(damped, 1.0 / options_.max_step, options_.max_step);
  difficulty_ *= step;
}

}  // namespace ethsm::sim
