// Difficulty-adjustment substrate (paper Sec. II-C and Sec. IV-E2).
//
// The paper compares two difficulty regimes without simulating either:
//   Scenario 1 (pre-EIP100): difficulty holds the *regular*-block rate fixed;
//   Scenario 2 (EIP100/Byzantium): difficulty holds the regular+uncle rate
//   fixed.
// This module closes that loop: an epoch-based retargeting controller (the
// substitution for Ethereum's per-block rule -- see DESIGN.md; per-block
// difficulty is chain-local state that the paper's single-difficulty model
// abstracts away) adjusts difficulty from the observed production of the
// last epoch, and retarget_sim.h runs the selfish-mining attack under the
// live controller. The paper's static normalizations must then *emerge* as
// the controller's fixed point -- which bench_ext_difficulty verifies.

#ifndef ETHSM_SIM_DIFFICULTY_H
#define ETHSM_SIM_DIFFICULTY_H

#include <cstdint>

#include "sim/sim_result.h"
#include "support/check.h"

namespace ethsm::sim {

/// What one finished epoch looked like to the difficulty rule.
struct EpochObservation {
  double wall_time = 0.0;              ///< seconds the epoch took
  std::uint64_t regular_blocks = 0;    ///< main-chain growth in the epoch
  std::uint64_t referenced_uncles = 0; ///< uncles referenced by that growth
};

/// Epoch-based difficulty controller. The `scenario` decides which rate it
/// tries to pin at `target_rate` (blocks per second): regular only, or
/// regular + referenced uncles (EIP100).
class DifficultyController {
 public:
  struct Options {
    Scenario scenario = Scenario::regular_rate_one;
    double target_rate = 1.0;       ///< counted blocks per second
    double initial_difficulty = 1.0;
    /// Retarget step clamp per epoch (Bitcoin clamps at 4x; Ethereum's
    /// per-block rule moves far slower). Keeps the loop stable under the
    /// abrupt rate changes a selfish pool causes.
    double max_step = 2.0;
    /// Exponential smoothing of the correction (1 = jump straight to the
    /// measured ratio; lower = damped).
    double gain = 0.75;
  };

  explicit DifficultyController(const Options& options);

  /// Current difficulty; the simulator's block rate is hash_rate/difficulty.
  [[nodiscard]] double difficulty() const noexcept { return difficulty_; }

  /// Digest one epoch and retarget.
  void on_epoch(const EpochObservation& epoch);

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] int epochs_seen() const noexcept { return epochs_; }

  /// The rate the controller counts for an observation (regular or
  /// regular+uncles, per second of wall time).
  [[nodiscard]] double counted_rate(const EpochObservation& epoch) const;

 private:
  Options options_;
  double difficulty_;
  int epochs_ = 0;
};

}  // namespace ethsm::sim

#endif  // ETHSM_SIM_DIFFICULTY_H
