#include "sim/population_sim.h"

#include <numeric>

#include "chain/block_tree.h"
#include "miner/honest_policy.h"
#include "miner/selfish_policy.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace ethsm::sim {

namespace {

/// Lazily resampled per-miner tie preferences. Every time a new tie forms the
/// epoch advances; a miner's preference is resampled on first use afterwards.
class TiePreferences {
 public:
  TiePreferences(std::uint32_t num_miners, double gamma)
      : gamma_(gamma), epoch_of_(num_miners, 0), prefers_pool_(num_miners, 0) {}

  void new_tie() noexcept { ++epoch_; }

  [[nodiscard]] bool prefers_pool(std::uint32_t miner,
                                  support::Xoshiro256& rng) {
    if (epoch_of_[miner] != epoch_) {
      epoch_of_[miner] = epoch_;
      prefers_pool_[miner] = rng.bernoulli(gamma_) ? 1 : 0;
    }
    return prefers_pool_[miner] != 0;
  }

 private:
  double gamma_;
  std::uint64_t epoch_ = 1;
  std::vector<std::uint64_t> epoch_of_;
  std::vector<std::uint8_t> prefers_pool_;
};

}  // namespace

double PopulationResult::pool_member_share() const {
  const double total =
      std::accumulate(per_miner_reward.begin(), per_miner_reward.end(), 0.0);
  if (total == 0.0) return 0.0;
  const double pool = std::accumulate(per_miner_reward.begin(),
                                      per_miner_reward.begin() + pool_size, 0.0);
  return pool / total;
}

PopulationResult run_population_simulation(const PopulationConfig& config) {
  config.validate();
  const SimConfig& base = config.base;
  const std::uint32_t n = config.num_miners;
  const std::uint32_t pool_size = config.pool_size();

  chain::BlockTree& tree = chain::thread_local_tree(base.num_blocks + 1);
  miner::SelfishPolicyConfig pool_cfg =
      miner::SelfishPolicyConfig::from_rewards(base.rewards);
  pool_cfg.pool_miner_id = 0;  // rewards are split across members afterwards
  miner::SelfishPolicy pool(tree, pool_cfg);
  miner::HonestPolicy honest(base.gamma, base.rewards);
  support::Xoshiro256 rng(base.seed);
  TiePreferences prefs(n, base.gamma);

  PopulationResult result;
  result.pool_size = pool_size;
  result.effective_alpha = config.effective_alpha();

  // A tie's identity is the pair of competing tips: a re-root replaces one
  // tie with another without ever passing through a no-tie view, so identity
  // (not mere existence) decides when preferences are resampled.
  std::pair<chain::BlockId, chain::BlockId> last_tie{chain::kNoBlock,
                                                     chain::kNoBlock};
  double now = 0.0;
  for (std::uint64_t step = 0; step < base.num_blocks; ++step) {
    now += rng.exponential(1.0);
    const auto miner_id = static_cast<std::uint32_t>(rng.uniform_below(n));
    const bool is_pool_member =
        base.pool_uses_selfish_strategy && miner_id < pool_size;

    if (is_pool_member) {
      pool.on_pool_block(now);
      ++result.sim.blocks_mined_pool;
    } else {
      const auto view = pool.public_view();
      chain::BlockId parent;
      if (view.tie) {
        const std::pair<chain::BlockId, chain::BlockId> tie_id{
            view.pool_branch_tip, view.honest_branch_tip};
        if (tie_id != last_tie) {
          prefs.new_tie();
          last_tie = tie_id;
        }
        parent = miner::HonestPolicy::parent_for_preference(
            view, prefs.prefers_pool(miner_id, rng));
      } else {
        parent = view.consensus_tip;
      }
      const chain::BlockId b = honest.mine_block(tree, parent, now, miner_id);
      pool.on_honest_block(b, now);
      ++result.sim.blocks_mined_honest;
    }
  }

  const chain::BlockId tip = pool.finalize(now);
  result.sim.duration = now;
  result.sim.ledger = chain::settle_rewards(tree, tip, base.rewards, n);

  // The pool's internal revenue sharing: members split the pool's total
  // reward proportionally to hash power (equal here), as in Sec. III-D. In
  // the all-honest control mode there is no pool to share anything.
  result.per_miner_reward = result.sim.ledger.per_miner_reward;
  if (base.pool_uses_selfish_strategy && pool_size > 0) {
    const double pool_total =
        result.sim.ledger.of(chain::MinerClass::selfish).total();
    for (std::uint32_t m = 0; m < pool_size; ++m) {
      result.per_miner_reward[m] = pool_total / pool_size;
    }
  }
  return result;
}

PopulationMultiRunSummary run_population_many(const PopulationConfig& config,
                                              int runs) {
  return run_population_many(config, runs, support::SweepCheckpoint{});
}

std::uint64_t run_population_many_fingerprint(const PopulationConfig& config,
                                              int runs) {
  support::Fingerprint fp;
  fp.mix("run_population_many/v1");
  fp.mix(config.base.alpha);
  fp.mix(config.base.gamma);
  fp.mix(config.base.num_blocks);
  fp.mix(config.base.seed);
  fp.mix(rewards::sweep_fingerprint(config.base.rewards));
  fp.mix(config.base.pool_uses_selfish_strategy);
  fp.mix(config.num_miners);
  fp.mix(runs);
  return fp.digest();
}

PopulationMultiRunSummary run_population_many(
    const PopulationConfig& config, int runs,
    const support::SweepCheckpoint& checkpoint,
    support::SweepOutcome* outcome) {
  ETHSM_EXPECTS(runs > 0, "need at least one run");
  config.validate();

  const auto sweep = support::run_checkpointed<PopulationResult>(
      checkpoint, run_population_many_fingerprint(config, runs),
      static_cast<std::size_t>(runs), [&config](std::size_t r) {
        PopulationConfig run_config = config;
        run_config.base.seed = support::derive_seed(
            config.base.seed, static_cast<std::uint64_t>(r));
        return run_population_simulation(run_config);
      });
  ETHSM_EXPECTS(outcome != nullptr || sweep.complete(),
                "incomplete sharded/budgeted sweep: pass a SweepOutcome to "
                "consume partial aggregates");

  PopulationMultiRunSummary summary;
  summary.pool_size = config.pool_size();
  summary.effective_alpha = config.effective_alpha();
  for (std::size_t r = 0; r < sweep.results.size(); ++r) {
    if (!sweep.have[r]) continue;
    summary.sim.absorb(sweep.results[r].sim);
    summary.pool_member_share.add(sweep.results[r].pool_member_share());
  }
  if (outcome != nullptr) outcome->merge(sweep.outcome);
  return summary;
}

}  // namespace ethsm::sim

namespace ethsm::support {

void CheckpointCodec<sim::PopulationResult>::encode(
    ByteWriter& w, const sim::PopulationResult& result) {
  CheckpointCodec<sim::SimResult>::encode(w, result.sim);
  w.f64_vec(result.per_miner_reward);
  w.u32(result.pool_size);
  w.f64(result.effective_alpha);
}

sim::PopulationResult CheckpointCodec<sim::PopulationResult>::decode(
    ByteReader& r) {
  sim::PopulationResult result;
  result.sim = CheckpointCodec<sim::SimResult>::decode(r);
  result.per_miner_reward = r.f64_vec();
  result.pool_size = r.u32();
  result.effective_alpha = r.f64();
  return result;
}

}  // namespace ethsm::support
