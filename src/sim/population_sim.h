// Population simulator: the paper's literal evaluation rig (Sec. V).
//
// n miners of equal hash power are tracked individually; the selfish pool
// controls pool_size() of them and runs Algorithm 1 as one coordinated unit,
// while every honest miner keeps its *own* adopted tip. When a tie between
// two equal-length public branches appears, each honest miner independently
// prefers the pool's branch with probability gamma and keeps that preference
// until the tie resolves (first-seen semantics). This validates the gamma
// abstraction used by both the Markov model and the aggregate simulator, and
// additionally yields per-miner revenue (used by the pool_landscape example
// for fairness analysis).

#ifndef ETHSM_SIM_POPULATION_SIM_H
#define ETHSM_SIM_POPULATION_SIM_H

#include <vector>

#include "sim/sim_config.h"
#include "sim/sim_result.h"

namespace ethsm::sim {

/// Result of a population run: the usual SimResult plus per-miner revenue.
struct PopulationResult {
  SimResult sim;
  /// Reward total per miner id; ids [0, pool_size) belong to the pool.
  std::vector<double> per_miner_reward;
  std::uint32_t pool_size = 0;
  double effective_alpha = 0.0;

  /// Sum of pool members' rewards divided by total rewards.
  [[nodiscard]] double pool_member_share() const;
};

/// Runs one population simulation; deterministic given config.base.seed.
[[nodiscard]] PopulationResult run_population_simulation(
    const PopulationConfig& config);

/// Mean/CI aggregation across independent population runs.
struct PopulationMultiRunSummary {
  MultiRunSummary sim;
  support::RunningStats pool_member_share;
  std::uint32_t pool_size = 0;
  double effective_alpha = 0.0;
};

/// Runs `runs` independent population simulations (seeds derived from
/// config.base.seed) in parallel on the global thread pool and aggregates in
/// run order; the summary is bitwise-identical for any thread count.
[[nodiscard]] PopulationMultiRunSummary run_population_many(
    const PopulationConfig& config, int runs);

/// Checkpointed variant (see run_many in sim/simulator.h for the contract).
[[nodiscard]] PopulationMultiRunSummary run_population_many(
    const PopulationConfig& config, int runs,
    const support::SweepCheckpoint& checkpoint,
    support::SweepOutcome* outcome = nullptr);

/// Checkpoint-store fingerprint of a run_population_many sweep (GC).
[[nodiscard]] std::uint64_t run_population_many_fingerprint(
    const PopulationConfig& config, int runs);

}  // namespace ethsm::sim

namespace ethsm::support {

template <>
struct CheckpointCodec<sim::PopulationResult> {
  static void encode(ByteWriter& w, const sim::PopulationResult& result);
  static sim::PopulationResult decode(ByteReader& r);
};

}  // namespace ethsm::support

#endif  // ETHSM_SIM_POPULATION_SIM_H
