#include "sim/retarget_sim.h"

#include "chain/block_tree.h"
#include "miner/honest_policy.h"
#include "miner/selfish_policy.h"
#include "support/rng.h"

namespace ethsm::sim {

void RetargetConfig::validate() const {
  base.validate();
  ETHSM_EXPECTS(epoch_blocks >= 10, "epochs below 10 blocks are all noise");
  ETHSM_EXPECTS(epochs >= 2, "need at least two epochs");
  ETHSM_EXPECTS(hash_rate > 0.0, "hash rate must be positive");
}

namespace {

/// Reward/uncle accounting for the finalized main-chain segment with heights
/// in (from_height, to_height], walking down from `tip_at_or_above`.
struct SegmentAccount {
  std::uint64_t regular = 0;
  std::uint64_t referenced_uncles = 0;
  double pool_reward = 0.0;
  double honest_reward = 0.0;
};

SegmentAccount account_segment(const chain::BlockTree& tree,
                               chain::BlockId tip, std::uint32_t from_height,
                               std::uint32_t to_height,
                               const rewards::RewardConfig& config) {
  SegmentAccount acc;
  chain::BlockId cur = tree.ancestor_at_height(tip, to_height);
  while (tree.height(cur) > from_height) {
    const chain::Block& b = tree.block(cur);
    ++acc.regular;
    double& own = b.miner == chain::MinerClass::selfish ? acc.pool_reward
                                                        : acc.honest_reward;
    own += 1.0;  // static reward
    for (chain::BlockId uid : tree.uncle_refs(cur)) {
      ++acc.referenced_uncles;
      const chain::Block& uncle = tree.block(uid);
      const int distance = static_cast<int>(b.height - uncle.height);
      (uncle.miner == chain::MinerClass::selfish ? acc.pool_reward
                                                 : acc.honest_reward) +=
          config.uncle_reward(distance);
      own += config.nephew_reward(distance);
    }
    cur = b.parent;
  }
  return acc;
}

}  // namespace

RetargetResult run_retarget_simulation(const RetargetConfig& config) {
  config.validate();
  const SimConfig& base = config.base;

  chain::BlockTree tree(config.epoch_blocks * config.epochs * 2);
  miner::SelfishPolicy pool(
      tree, miner::SelfishPolicyConfig::from_rewards(base.rewards));
  miner::HonestPolicy honest(base.gamma, base.rewards);
  support::Xoshiro256 rng(base.seed);
  DifficultyController controller(config.controller);

  RetargetResult result;
  result.epochs.reserve(static_cast<std::size_t>(config.epochs));

  double now = 0.0;
  // Runaway guard: a single epoch can stall only while one race is
  // unresolved; 1000x the epoch length is far beyond any real excursion.
  const std::uint64_t max_events_per_epoch = config.epoch_blocks * 1000;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    const double difficulty = controller.difficulty();
    const double rate = config.hash_rate / difficulty;
    // Epochs are measured in *finalized* main-chain growth: everything at or
    // below the pool policy's fork base is agreed by all miners. A single
    // override can finalize several blocks at once, so the segment length is
    // >= epoch_blocks rather than exactly equal.
    const std::uint32_t start_height = tree.height(pool.fork_base());
    const std::uint32_t goal_height =
        start_height + static_cast<std::uint32_t>(config.epoch_blocks);
    const double epoch_start_time = now;

    std::uint64_t events = 0;
    while (tree.height(pool.fork_base()) < goal_height &&
           events < max_events_per_epoch) {
      now += rng.exponential(rate);
      ++events;
      // In control mode the pool's hash power mines honestly like everyone.
      if (base.pool_uses_selfish_strategy && rng.bernoulli(base.alpha)) {
        pool.on_pool_block(now);
      } else {
        const auto view = pool.public_view();
        const auto b = honest.mine_block(
            tree, honest.choose_parent(view, rng), now, 0);
        pool.on_honest_block(b, now);
      }
    }
    ETHSM_ENSURES(events < max_events_per_epoch,
                  "difficulty epoch failed to finalize (runaway race)");

    // Account the finalized segment (start_height, current base height].
    const std::uint32_t end_height = tree.height(pool.fork_base());
    const auto segment = account_segment(tree, pool.fork_base(), start_height,
                                         end_height, base.rewards);
    EpochObservation observation;
    observation.wall_time = now - epoch_start_time;
    observation.regular_blocks = segment.regular;
    observation.referenced_uncles = segment.referenced_uncles;

    EpochStats stats;
    stats.difficulty = difficulty;
    stats.duration = observation.wall_time;
    stats.regular_rate =
        static_cast<double>(segment.regular) / observation.wall_time;
    stats.counted_rate = controller.counted_rate(observation);
    stats.pool_reward_rate = segment.pool_reward / observation.wall_time;
    stats.honest_reward_rate = segment.honest_reward / observation.wall_time;
    result.epochs.push_back(stats);

    controller.on_epoch(observation);
  }

  // Steady-state averages over the second half (convergence burn-in first
  // half). Weighted by epoch duration so rates compose correctly.
  double time_total = 0.0, regular = 0.0, counted = 0.0, pool_r = 0.0,
         honest_r = 0.0;
  for (std::size_t i = result.epochs.size() / 2; i < result.epochs.size();
       ++i) {
    const EpochStats& e = result.epochs[i];
    time_total += e.duration;
    regular += e.regular_rate * e.duration;
    counted += e.counted_rate * e.duration;
    pool_r += e.pool_reward_rate * e.duration;
    honest_r += e.honest_reward_rate * e.duration;
  }
  ETHSM_ENSURES(time_total > 0.0, "empty steady-state window");
  result.steady_regular_rate = regular / time_total;
  result.steady_counted_rate = counted / time_total;
  result.steady_pool_reward_rate = pool_r / time_total;
  result.steady_honest_reward_rate = honest_r / time_total;
  result.final_difficulty = controller.difficulty();
  return result;
}

}  // namespace ethsm::sim
