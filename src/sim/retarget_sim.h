// Wall-clock simulation of selfish mining under a live difficulty controller
// (the dynamic counterpart of the paper's Sec. IV-E2 time-rescaling).
//
// Unlike simulator.h -- which works in "block index" time and normalizes
// afterwards -- this simulator runs in seconds: the system produces blocks
// at rate hash_rate / difficulty(t), and the controller retargets after
// every epoch of `epoch_blocks` main-chain blocks. Key outputs are rates
// *per second*, so the scenario normalizations can be observed instead of
// imposed:
//   * under a Scenario-1 controller, regular blocks converge to target_rate
//     and the pool's revenue/second converges to Us_1 * target_rate;
//   * under an EIP100 controller, regular+uncles converge to target_rate and
//     revenue/second converges to Us_2 * target_rate.

#ifndef ETHSM_SIM_RETARGET_SIM_H
#define ETHSM_SIM_RETARGET_SIM_H

#include <vector>

#include "sim/difficulty.h"

namespace ethsm::sim {

struct RetargetConfig {
  SimConfig base;                 ///< alpha, gamma, rewards, seed, strategy
  DifficultyController::Options controller;
  std::uint64_t epoch_blocks = 500;  ///< main-chain blocks per retarget epoch
  int epochs = 60;
  double hash_rate = 1.0;  ///< blocks/second at difficulty 1

  void validate() const;
};

/// Per-epoch telemetry (the convergence trajectory).
struct EpochStats {
  double difficulty = 0.0;       ///< difficulty during this epoch
  double duration = 0.0;         ///< seconds
  double regular_rate = 0.0;     ///< regular blocks / second
  double counted_rate = 0.0;     ///< what the controller saw / second
  double pool_reward_rate = 0.0; ///< pool reward units / second
  double honest_reward_rate = 0.0;
};

struct RetargetResult {
  std::vector<EpochStats> epochs;
  /// Averages over the second half of the run (post-convergence).
  double steady_regular_rate = 0.0;
  double steady_counted_rate = 0.0;
  double steady_pool_reward_rate = 0.0;
  double steady_honest_reward_rate = 0.0;
  double final_difficulty = 0.0;

  /// Pool revenue per counted block -- directly comparable to the static
  /// analysis' Us for the controller's scenario.
  [[nodiscard]] double steady_pool_revenue_per_counted_block() const {
    return steady_counted_rate == 0.0
               ? 0.0
               : steady_pool_reward_rate / steady_counted_rate;
  }
};

/// Runs the attack under live retargeting; deterministic given the seed.
[[nodiscard]] RetargetResult run_retarget_simulation(
    const RetargetConfig& config);

}  // namespace ethsm::sim

#endif  // ETHSM_SIM_RETARGET_SIM_H
