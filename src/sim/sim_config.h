// Simulation configuration (paper Sec. V: n = 1000 miners with equal hash
// rate, pool controls alpha*n of them, 10 runs x 100,000 blocks).

#ifndef ETHSM_SIM_SIM_CONFIG_H
#define ETHSM_SIM_SIM_CONFIG_H

#include <cstdint>

#include "rewards/reward_schedule.h"

namespace ethsm::sim {

struct SimConfig {
  /// Selfish pool's share of total hash power (paper: alpha <= 0.45).
  double alpha = 0.3;
  /// Fraction of honest hash power mining on the pool's branch during ties.
  double gamma = 0.5;
  /// Blocks mined per run (the paper uses 100,000).
  std::uint64_t num_blocks = 100'000;
  /// Master seed; derive per-run seeds with support::derive_seed.
  std::uint64_t seed = 0x5e1f15ULL;
  /// Reward schedules + reference horizon/caps.
  rewards::RewardConfig rewards = rewards::RewardConfig::ethereum_byzantium();
  /// When false the pool mines honestly too (control experiment: everyone
  /// follows the protocol, revenue share must equal hash share).
  bool pool_uses_selfish_strategy = true;

  void validate() const;
};

/// Extra knobs for the population simulator.
struct PopulationConfig {
  SimConfig base;
  /// Total miners; the pool controls round(alpha * num_miners) of them, and
  /// alpha is snapped to that ratio (paper: 1000 miners, pool <= 450).
  std::uint32_t num_miners = 1000;

  void validate() const;
  [[nodiscard]] std::uint32_t pool_size() const;
  /// alpha after snapping to pool_size() / num_miners.
  [[nodiscard]] double effective_alpha() const;
};

}  // namespace ethsm::sim

#endif  // ETHSM_SIM_SIM_CONFIG_H
