#include "sim/sim_result.h"

#include <cmath>

#include "support/check.h"

namespace ethsm::sim {

void SimConfig::validate() const {
  ETHSM_EXPECTS(alpha >= 0.0 && alpha < 0.5,
                "alpha must lie in [0, 0.5): a majority pool trivially wins");
  ETHSM_EXPECTS(gamma >= 0.0 && gamma <= 1.0, "gamma must lie in [0, 1]");
  ETHSM_EXPECTS(num_blocks > 0, "num_blocks must be positive");
}

void PopulationConfig::validate() const {
  base.validate();
  ETHSM_EXPECTS(num_miners >= 2, "population needs at least two miners");
  ETHSM_EXPECTS(pool_size() < num_miners,
                "the pool may not control every miner");
}

std::uint32_t PopulationConfig::pool_size() const {
  return static_cast<std::uint32_t>(
      std::llround(base.alpha * static_cast<double>(num_miners)));
}

double PopulationConfig::effective_alpha() const {
  return static_cast<double>(pool_size()) / static_cast<double>(num_miners);
}

double SimResult::normalizer(Scenario s) const {
  const auto regular = static_cast<double>(ledger.regular_total());
  if (s == Scenario::regular_rate_one) return regular;
  return regular + static_cast<double>(ledger.referenced_uncle_total());
}

double SimResult::pool_absolute_revenue(Scenario s) const {
  const double n = normalizer(s);
  if (n == 0.0) return 0.0;
  return ledger.of(chain::MinerClass::selfish).total() / n;
}

double SimResult::honest_absolute_revenue(Scenario s) const {
  const double n = normalizer(s);
  if (n == 0.0) return 0.0;
  return ledger.of(chain::MinerClass::honest).total() / n;
}

double SimResult::total_revenue(Scenario s) const {
  return pool_absolute_revenue(s) + honest_absolute_revenue(s);
}

double SimResult::pool_relative_share() const {
  const double pool = ledger.of(chain::MinerClass::selfish).total();
  const double honest = ledger.of(chain::MinerClass::honest).total();
  const double total = pool + honest;
  return total == 0.0 ? 0.0 : pool / total;
}

double SimResult::uncle_rate() const {
  const auto regular = static_cast<double>(ledger.regular_total());
  if (regular == 0.0) return 0.0;
  return static_cast<double>(ledger.referenced_uncle_total()) / regular;
}

double SimResult::wasted_fraction(chain::MinerClass c) const {
  const auto& f = ledger.fate_of(c);
  const auto mined = static_cast<double>(f.total());
  return mined == 0.0 ? 0.0 : static_cast<double>(f.stale) / mined;
}

void MultiRunSummary::absorb(const SimResult& r) {
  pool_revenue_s1.add(r.pool_absolute_revenue(Scenario::regular_rate_one));
  pool_revenue_s2.add(
      r.pool_absolute_revenue(Scenario::regular_and_uncle_rate_one));
  honest_revenue_s1.add(r.honest_absolute_revenue(Scenario::regular_rate_one));
  honest_revenue_s2.add(
      r.honest_absolute_revenue(Scenario::regular_and_uncle_rate_one));
  total_revenue_s1.add(r.total_revenue(Scenario::regular_rate_one));
  total_revenue_s2.add(r.total_revenue(Scenario::regular_and_uncle_rate_one));
  pool_share.add(r.pool_relative_share());
  uncle_rate.add(r.uncle_rate());
  uncle_distance_pool.merge(
      r.ledger.uncle_distance[static_cast<std::size_t>(
          chain::MinerClass::selfish)]);
  uncle_distance_honest.merge(
      r.ledger.uncle_distance[static_cast<std::size_t>(
          chain::MinerClass::honest)]);
  ++runs;
}

}  // namespace ethsm::sim

namespace ethsm::support {

void CheckpointCodec<sim::SimResult>::encode(ByteWriter& w,
                                             const sim::SimResult& result) {
  CheckpointCodec<chain::LedgerResult>::encode(w, result.ledger);
  w.u64(result.blocks_mined_pool);
  w.u64(result.blocks_mined_honest);
  w.f64(result.duration);
}

sim::SimResult CheckpointCodec<sim::SimResult>::decode(ByteReader& r) {
  sim::SimResult result;
  result.ledger = CheckpointCodec<chain::LedgerResult>::decode(r);
  result.blocks_mined_pool = r.u64();
  result.blocks_mined_honest = r.u64();
  result.duration = r.f64();
  return result;
}

}  // namespace ethsm::support
