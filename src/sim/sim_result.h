// Simulation outcomes and the paper's two revenue normalizations.
//
// Paper Sec. IV-E2 defines absolute revenue under two difficulty-adjustment
// scenarios:
//   Scenario 1 (pre-EIP100): time is rescaled so the *regular* block rate is
//     1 => absolute revenue = rewards per regular block.
//   Scenario 2 (EIP100 / Byzantium): time is rescaled so the regular + uncle
//     rate is 1 => absolute revenue = rewards per (regular + referenced uncle)
//     block.

#ifndef ETHSM_SIM_SIM_RESULT_H
#define ETHSM_SIM_SIM_RESULT_H

#include <cstdint>

#include "chain/reward_ledger.h"
#include "sim/sim_config.h"
#include "support/checkpoint.h"
#include "support/stats.h"

namespace ethsm::sim {

/// Difficulty-adjustment scenario (paper Sec. IV-E2).
enum class Scenario {
  regular_rate_one = 1,          ///< Scenario 1: regular block rate = 1
  regular_and_uncle_rate_one = 2 ///< Scenario 2: regular + uncle rate = 1
};

[[nodiscard]] constexpr const char* to_string(Scenario s) noexcept {
  return s == Scenario::regular_rate_one ? "scenario 1 (regular rate = 1)"
                                         : "scenario 2 (regular+uncle rate = 1)";
}

/// Result of a single simulation run.
struct SimResult {
  chain::LedgerResult ledger;
  std::uint64_t blocks_mined_pool = 0;
  std::uint64_t blocks_mined_honest = 0;
  double duration = 0.0;  ///< simulated time (block-interarrival units)

  /// Normalization denominator for the given scenario.
  [[nodiscard]] double normalizer(Scenario s) const;

  /// Long-run absolute revenue of the pool / the honest miners, i.e. reward
  /// units per normalized block (paper Eq. (11)/(12) and its Scenario-2
  /// analogue). Honest mining would earn exactly alpha here.
  [[nodiscard]] double pool_absolute_revenue(Scenario s) const;
  [[nodiscard]] double honest_absolute_revenue(Scenario s) const;

  /// Total system revenue per normalized block (Fig. 9's "Total" curves).
  [[nodiscard]] double total_revenue(Scenario s) const;

  /// Pool's share of all rewards paid (paper's relative revenue Rs).
  [[nodiscard]] double pool_relative_share() const;

  /// Referenced uncles per regular block (what EIP100 feeds back into the
  /// difficulty).
  [[nodiscard]] double uncle_rate() const;

  /// Fraction of pool / honest blocks that ended up stale and unreferenced.
  [[nodiscard]] double wasted_fraction(chain::MinerClass c) const;
};

/// Mean/CI aggregation across independent runs (paper: average of 10 runs).
struct MultiRunSummary {
  support::RunningStats pool_revenue_s1;
  support::RunningStats pool_revenue_s2;
  support::RunningStats honest_revenue_s1;
  support::RunningStats honest_revenue_s2;
  support::RunningStats total_revenue_s1;
  support::RunningStats total_revenue_s2;
  support::RunningStats pool_share;
  support::RunningStats uncle_rate;
  /// Pooled uncle-distance histograms across runs (Table II).
  support::Histogram uncle_distance_pool{8};
  support::Histogram uncle_distance_honest{8};
  int runs = 0;

  void absorb(const SimResult& r);

  [[nodiscard]] support::RunningStats const& pool_revenue(Scenario s) const {
    return s == Scenario::regular_rate_one ? pool_revenue_s1 : pool_revenue_s2;
  }
  [[nodiscard]] support::RunningStats const& honest_revenue(Scenario s) const {
    return s == Scenario::regular_rate_one ? honest_revenue_s1
                                           : honest_revenue_s2;
  }
  [[nodiscard]] support::RunningStats const& total_revenue(Scenario s) const {
    return s == Scenario::regular_rate_one ? total_revenue_s1
                                           : total_revenue_s2;
  }
};

}  // namespace ethsm::sim

namespace ethsm::support {

/// Checkpoint serialization of a single run's outcome: the unit persisted by
/// the checkpointed multi-run drivers (summaries are recomputed from decoded
/// runs in index order, so resumed aggregates match fresh ones bitwise).
template <>
struct CheckpointCodec<sim::SimResult> {
  static void encode(ByteWriter& w, const sim::SimResult& result);
  static sim::SimResult decode(ByteReader& r);
};

}  // namespace ethsm::support

#endif  // ETHSM_SIM_SIM_RESULT_H
