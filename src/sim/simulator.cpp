#include "sim/simulator.h"

#include "chain/block_tree.h"
#include "miner/honest_policy.h"
#include "miner/selfish_policy.h"
#include "support/check.h"
#include "support/parallel.h"
#include "support/rng.h"

namespace ethsm::sim {

namespace {

/// Per-thread block-tree arena: every run resets it instead of reallocating
/// ~100k nodes, so multi-run sweeps reuse capacity run after run. Results are
/// unaffected (reset() restores the genesis-only state exactly).
chain::BlockTree& scratch_tree(std::uint64_t num_blocks) {
  return chain::thread_local_tree(num_blocks + 1);
}

/// Fingerprint of everything a run_many job depends on besides its index.
std::uint64_t many_fingerprint(const char* driver, const SimConfig& config,
                               int runs) {
  support::Fingerprint fp;
  fp.mix(driver);
  fp.mix(config.alpha);
  fp.mix(config.gamma);
  fp.mix(config.num_blocks);
  fp.mix(config.seed);
  fp.mix(rewards::sweep_fingerprint(config.rewards));
  fp.mix(config.pool_uses_selfish_strategy);
  fp.mix(runs);
  return fp.digest();
}

/// Index-ordered absorption over whichever runs are available; refuses a
/// partial aggregate unless the caller asked to see the outcome.
MultiRunSummary absorb_available(const support::CheckpointedSweep<SimResult>& sweep,
                                 support::SweepOutcome* outcome) {
  ETHSM_EXPECTS(outcome != nullptr || sweep.complete(),
                "incomplete sharded/budgeted sweep: pass a SweepOutcome to "
                "consume partial aggregates");
  MultiRunSummary summary;
  for (std::size_t r = 0; r < sweep.results.size(); ++r) {
    if (sweep.have[r]) summary.absorb(sweep.results[r]);
  }
  if (outcome != nullptr) outcome->merge(sweep.outcome);
  return summary;
}

/// Control run: everybody (including the pool's hash power) follows the
/// protocol. With zero propagation delay there are no forks at all, so every
/// block is regular and revenue share == hash share.
SimResult run_all_honest(const SimConfig& config) {
  chain::BlockTree& tree = scratch_tree(config.num_blocks);
  miner::HonestPolicy honest(config.gamma, config.rewards);
  support::Xoshiro256 rng(config.seed);

  SimResult result;
  chain::BlockId tip = tree.genesis();
  double now = 0.0;
  for (std::uint64_t n = 0; n < config.num_blocks; ++n) {
    now += rng.exponential(1.0);
    const bool pool_mined = rng.bernoulli(config.alpha);
    // Both classes behave identically; only the block's ownership differs.
    const chain::BlockId id = tree.append(
        tip,
        pool_mined ? chain::MinerClass::selfish : chain::MinerClass::honest,
        0, now);
    tree.publish(id, now);
    tip = id;
    if (pool_mined) {
      ++result.blocks_mined_pool;
    } else {
      ++result.blocks_mined_honest;
    }
  }
  result.duration = now;
  result.ledger = chain::settle_rewards(tree, tip, config.rewards);
  return result;
}

}  // namespace

std::uint64_t run_many_fingerprint(const SimConfig& config, int runs) {
  return many_fingerprint("run_many/v1", config, runs);
}

std::uint64_t run_stubborn_many_fingerprint(
    const SimConfig& config, const miner::StubbornConfig& strategy, int runs) {
  support::Fingerprint fp;
  fp.mix(many_fingerprint("run_stubborn_many/v1", config, runs));
  fp.mix(strategy.lead_stubborn);
  fp.mix(strategy.equal_fork_stubborn);
  fp.mix(strategy.trail_stubbornness);
  return fp.digest();
}

SimResult run_simulation(const SimConfig& config) {
  config.validate();
  if (!config.pool_uses_selfish_strategy) return run_all_honest(config);

  chain::BlockTree& tree = scratch_tree(config.num_blocks);
  miner::SelfishPolicy pool(
      tree, miner::SelfishPolicyConfig::from_rewards(config.rewards));
  miner::HonestPolicy honest(config.gamma, config.rewards);
  support::Xoshiro256 rng(config.seed);

  SimResult result;
  double now = 0.0;
  for (std::uint64_t n = 0; n < config.num_blocks; ++n) {
    now += rng.exponential(1.0);
    if (rng.bernoulli(config.alpha)) {
      pool.on_pool_block(now);
      ++result.blocks_mined_pool;
    } else {
      const auto view = pool.public_view();
      const chain::BlockId parent = honest.choose_parent(view, rng);
      const chain::BlockId b = honest.mine_block(tree, parent, now, 0);
      pool.on_honest_block(b, now);
      ++result.blocks_mined_honest;
    }
  }
  const chain::BlockId tip = pool.finalize(now);
  result.duration = now;
  result.ledger = chain::settle_rewards(tree, tip, config.rewards);

  ETHSM_ENSURES(result.blocks_mined_pool + result.blocks_mined_honest ==
                    config.num_blocks,
                "block conservation violated");
  return result;
}

MultiRunSummary run_many(const SimConfig& config, int runs) {
  return run_many(config, runs, support::SweepCheckpoint{});
}

MultiRunSummary run_many(const SimConfig& config, int runs,
                         const support::SweepCheckpoint& checkpoint,
                         support::SweepOutcome* outcome) {
  ETHSM_EXPECTS(runs > 0, "need at least one run");
  config.validate();

  // Fan the runs out across the pool. Each run is a pure function of its
  // index (seed = derive_seed(master, index)) and the summary is absorbed in
  // index order afterwards, so the aggregate is bitwise-identical for any
  // thread count -- and, with a checkpoint store, across resume/shard splits.
  const auto sweep = support::run_checkpointed<SimResult>(
      checkpoint, run_many_fingerprint(config, runs),
      static_cast<std::size_t>(runs), [&config](std::size_t r) {
        SimConfig run_config = config;
        run_config.seed =
            support::derive_seed(config.seed, static_cast<std::uint64_t>(r));
        return run_simulation(run_config);
      });
  return absorb_available(sweep, outcome);
}

SimResult run_stubborn_simulation(const SimConfig& config,
                                  const miner::StubbornConfig& strategy) {
  config.validate();
  ETHSM_EXPECTS(config.pool_uses_selfish_strategy,
                "stubborn variants require an attacking pool");

  chain::BlockTree& tree = scratch_tree(config.num_blocks);
  miner::StubbornConfig pool_config = strategy;
  pool_config.reference_horizon = config.rewards.reference_horizon();
  pool_config.max_uncles_per_block = config.rewards.max_uncles_per_block;
  pool_config.reference_uncles = pool_config.reference_horizon > 0;
  miner::StubbornPolicy pool(tree, pool_config);
  miner::HonestPolicy honest(config.gamma, config.rewards);
  support::Xoshiro256 rng(config.seed);

  SimResult result;
  double now = 0.0;
  for (std::uint64_t n = 0; n < config.num_blocks; ++n) {
    now += rng.exponential(1.0);
    if (rng.bernoulli(config.alpha)) {
      pool.on_pool_block(now);
      ++result.blocks_mined_pool;
    } else {
      const auto view = pool.public_view();
      const chain::BlockId parent = honest.choose_parent(view, rng);
      const chain::BlockId b = honest.mine_block(tree, parent, now, 0);
      pool.on_honest_block(b, now);
      ++result.blocks_mined_honest;
    }
  }
  const chain::BlockId tip = pool.finalize(now);
  result.duration = now;
  result.ledger = chain::settle_rewards(tree, tip, config.rewards);
  return result;
}

MultiRunSummary run_stubborn_many(const SimConfig& config,
                                  const miner::StubbornConfig& strategy,
                                  int runs) {
  return run_stubborn_many(config, strategy, runs, support::SweepCheckpoint{});
}

MultiRunSummary run_stubborn_many(const SimConfig& config,
                                  const miner::StubbornConfig& strategy,
                                  int runs,
                                  const support::SweepCheckpoint& checkpoint,
                                  support::SweepOutcome* outcome) {
  ETHSM_EXPECTS(runs > 0, "need at least one run");
  config.validate();
  ETHSM_EXPECTS(config.pool_uses_selfish_strategy,
                "stubborn variants require an attacking pool");

  const auto sweep = support::run_checkpointed<SimResult>(
      checkpoint, run_stubborn_many_fingerprint(config, strategy, runs),
      static_cast<std::size_t>(runs), [&config, &strategy](std::size_t r) {
        SimConfig run_config = config;
        run_config.seed =
            support::derive_seed(config.seed, static_cast<std::uint64_t>(r));
        return run_stubborn_simulation(run_config, strategy);
      });
  return absorb_available(sweep, outcome);
}

}  // namespace ethsm::sim
