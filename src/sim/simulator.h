// Discrete-event mining simulator (paper Sec. III-A, V).
//
// Mining is a Poisson race: with the time axis rescaled as in Sec. IV-B the
// system produces blocks at rate 1, each block belonging to the pool with
// probability alpha and to the honest side with probability beta = 1 - alpha.
// The pool runs Algorithm 1 (SelfishPolicy); honest miners follow the
// protocol (HonestPolicy) with gamma tie-breaking.
//
// This is the *aggregate* simulator: the honest side is a single entity whose
// tie-break is sampled per block (exactly the Markov model's assumption). The
// population simulator (population_sim.h) tracks 1000 individual miners as in
// the paper's evaluation and is validated against this one.

#ifndef ETHSM_SIM_SIMULATOR_H
#define ETHSM_SIM_SIMULATOR_H

#include "miner/stubborn_policy.h"
#include "sim/sim_config.h"
#include "sim/sim_result.h"
#include "support/checkpoint.h"

namespace ethsm::sim {

/// Runs one simulation; deterministic given config.seed.
[[nodiscard]] SimResult run_simulation(const SimConfig& config);

/// Runs `runs` independent simulations (seeds derived from config.seed) and
/// aggregates. The paper uses runs = 10.
[[nodiscard]] MultiRunSummary run_many(const SimConfig& config, int runs);

/// Checkpointed variant: per-run results persist under checkpoint.directory
/// (keyed by a fingerprint of config + runs) so an interrupted or sharded
/// sweep resumes/merges to a bitwise-identical aggregate. `outcome` reports
/// resume/shard progress; when the merged grid is incomplete (some runs
/// belong to other shards or exceeded the job budget) the partial aggregate
/// is only returned if the caller passed `outcome` to inspect -- otherwise
/// the driver refuses rather than silently aggregating a subset.
[[nodiscard]] MultiRunSummary run_many(const SimConfig& config, int runs,
                                       const support::SweepCheckpoint& checkpoint,
                                       support::SweepOutcome* outcome = nullptr);

/// As run_simulation, but the pool runs a stubborn-mining variant
/// (miner/stubborn_policy.h) instead of Algorithm 1. With a default-initialized
/// StubbornConfig the result is distributionally identical to run_simulation.
[[nodiscard]] SimResult run_stubborn_simulation(
    const SimConfig& config, const miner::StubbornConfig& strategy);

/// Multi-run aggregation for stubborn variants.
[[nodiscard]] MultiRunSummary run_stubborn_many(
    const SimConfig& config, const miner::StubbornConfig& strategy, int runs);

/// Checkpointed variant of run_stubborn_many; semantics as run_many above.
[[nodiscard]] MultiRunSummary run_stubborn_many(
    const SimConfig& config, const miner::StubbornConfig& strategy, int runs,
    const support::SweepCheckpoint& checkpoint,
    support::SweepOutcome* outcome = nullptr);

/// Checkpoint-store fingerprints the checkpointed variants key their records
/// by; exposed so the checkpoint GC can attribute on-disk sweeps to the
/// experiments that own them without running anything.
[[nodiscard]] std::uint64_t run_many_fingerprint(const SimConfig& config,
                                                 int runs);
[[nodiscard]] std::uint64_t run_stubborn_many_fingerprint(
    const SimConfig& config, const miner::StubbornConfig& strategy, int runs);

}  // namespace ethsm::sim

#endif  // ETHSM_SIM_SIMULATOR_H
