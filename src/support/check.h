// Contract-checking macros for ethsm.
//
// Following the C++ Core Guidelines (I.6 "Prefer Expects() for expressing
// preconditions", E.12) we distinguish three kinds of failures:
//
//   ETHSM_EXPECTS(cond, msg)  -- precondition on a public API; throws
//                                std::invalid_argument so callers can recover.
//   ETHSM_ENSURES(cond, msg)  -- postcondition / internal invariant; throws
//                                std::logic_error because a violation means the
//                                library itself is broken.
//   ETHSM_ASSERT(cond)        -- debug-only internal check (assert()).
//
// The throwing checks are always on: this library is a research instrument and
// silent numeric corruption is far more expensive than a branch per call.

#ifndef ETHSM_SUPPORT_CHECK_H
#define ETHSM_SUPPORT_CHECK_H

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ethsm::support {

[[noreturn]] inline void throw_precondition_failure(const char* cond,
                                                    const char* file, int line,
                                                    const std::string& msg) {
  std::ostringstream os;
  os << "precondition violated: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant_failure(const char* cond,
                                                 const char* file, int line,
                                                 const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: (" << cond << ") at " << file << ':' << line;
  if (!msg.empty()) os << " -- " << msg;
  throw std::logic_error(os.str());
}

}  // namespace ethsm::support

#define ETHSM_EXPECTS(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ethsm::support::throw_precondition_failure(#cond, __FILE__,          \
                                                   __LINE__, (msg));         \
    }                                                                        \
  } while (false)

#define ETHSM_ENSURES(cond, msg)                                             \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::ethsm::support::throw_invariant_failure(#cond, __FILE__, __LINE__,   \
                                                (msg));                      \
    }                                                                        \
  } while (false)

#define ETHSM_ASSERT(cond) assert(cond)

#endif  // ETHSM_SUPPORT_CHECK_H
