#include "support/checkpoint.h"

#include <algorithm>
#include <bit>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/check.h"
#include "support/json.h"
#include "support/metrics.h"
#include "support/retry.h"

namespace ethsm::support {

namespace fs = std::filesystem;

namespace {

/// Write-only observability tap over the checkpoint store: append volume
/// and latency, import merges, and record reads. Compiled out under
/// ETHSM_METRICS=OFF.
struct CheckpointMetrics {
  metrics::Counter& appends;
  metrics::Counter& append_bytes;
  metrics::Histogram& append_seconds;
  metrics::Counter& imported_records;
  metrics::Counter& imported_bytes;
  metrics::Counter& read_records;
  metrics::Counter& read_bytes;

  static CheckpointMetrics& instance() {
    auto& reg = metrics::registry();
    static CheckpointMetrics m{
        reg.counter("ethsm_checkpoint_appends_total",
                    "Records appended to checkpoint files"),
        reg.counter("ethsm_checkpoint_append_bytes_total",
                    "Bytes written by checkpoint appends (incl. framing)"),
        reg.histogram("ethsm_checkpoint_append_seconds",
                      metrics::Histogram::latency_bounds_seconds(),
                      "Latency of single checkpoint appends (open to flush)"),
        reg.counter("ethsm_checkpoint_imported_records_total",
                    "Records merged in via import_directory"),
        reg.counter("ethsm_checkpoint_imported_bytes_total",
                    "Payload bytes merged in via import_directory"),
        reg.counter("ethsm_checkpoint_read_records_total",
                    "Records read back via read_checkpoint_records"),
        reg.counter("ethsm_checkpoint_read_bytes_total",
                    "Payload bytes read back via read_checkpoint_records"),
    };
    return m;
  }
};

}  // namespace

// ---------------------------------------------------------------- sharding --

std::optional<ShardSpec> parse_shard(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view k_text = text.substr(0, slash);
  const std::string_view n_text = text.substr(slash + 1);
  std::uint32_t k = 0;
  std::uint32_t n = 0;
  const auto k_result =
      std::from_chars(k_text.data(), k_text.data() + k_text.size(), k);
  const auto n_result =
      std::from_chars(n_text.data(), n_text.data() + n_text.size(), n);
  if (k_result.ec != std::errc() || k_result.ptr != k_text.data() + k_text.size())
    return std::nullopt;
  if (n_result.ec != std::errc() || n_result.ptr != n_text.data() + n_text.size())
    return std::nullopt;
  if (n == 0 || k >= n) return std::nullopt;
  return ShardSpec{k, n};
}

ShardSpec shard_from_env() {
  const char* text = std::getenv("ETHSM_SHARD");
  if (text == nullptr) return {};
  return parse_shard(text).value_or(ShardSpec{});
}

// ------------------------------------------------------------ fingerprints --

namespace {

/// SplitMix64 finalizer, the same mixer rng.h builds on.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Fingerprint& Fingerprint::mix(std::uint64_t v) noexcept {
  state_ = mix64(state_ + 0x9e3779b97f4a7c15ULL + v);
  return *this;
}

Fingerprint& Fingerprint::mix(double v) noexcept {
  return mix(std::bit_cast<std::uint64_t>(v));
}

Fingerprint& Fingerprint::mix(std::string_view text) noexcept {
  mix(static_cast<std::uint64_t>(text.size()));
  return mix_bytes(reinterpret_cast<const std::byte*>(text.data()),
                   text.size());
}

Fingerprint& Fingerprint::mix_bytes(const std::byte* data,
                                    std::size_t size) noexcept {
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, 8);
    mix(word);
  }
  if (i < size) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, size - i);
    mix(word);
  }
  return *this;
}

// ------------------------------------------------------- payload (de)coding --

namespace {

template <typename T>
void put_raw(std::vector<std::byte>& buffer, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t offset = buffer.size();
  buffer.resize(offset + sizeof(T));
  std::memcpy(buffer.data() + offset, &value, sizeof(T));
}

}  // namespace

void ByteWriter::u32(std::uint32_t v) { put_raw(buffer_, v); }
void ByteWriter::u64(std::uint64_t v) { put_raw(buffer_, v); }
void ByteWriter::f64(double v) {
  put_raw(buffer_, std::bit_cast<std::uint64_t>(v));
}

void ByteWriter::f64_vec(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void ByteWriter::u64_vec(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

void ByteReader::take(void* out, std::size_t n) {
  if (cursor_ + n > size_) {
    throw std::runtime_error(
        "checkpoint payload underrun: record shorter than its codec expects");
  }
  std::memcpy(out, data_ + cursor_, n);
  cursor_ += n;
}

std::uint32_t ByteReader::u32() {
  std::uint32_t v = 0;
  take(&v, sizeof v);
  return v;
}

std::uint64_t ByteReader::u64() {
  std::uint64_t v = 0;
  take(&v, sizeof v);
  return v;
}

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::vector<double> ByteReader::f64_vec() {
  const std::uint64_t n = u64();
  if (n > size_ / sizeof(double)) {
    throw std::runtime_error("checkpoint payload underrun: vector too long");
  }
  std::vector<double> v(n);
  for (auto& x : v) x = f64();
  return v;
}

std::vector<std::uint64_t> ByteReader::u64_vec() {
  const std::uint64_t n = u64();
  if (n > size_ / sizeof(std::uint64_t)) {
    throw std::runtime_error("checkpoint payload underrun: vector too long");
  }
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = u64();
  return v;
}

void CheckpointCodec<Histogram>::encode(ByteWriter& w, const Histogram& h) {
  w.u64(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) w.u64(h.at(i));
  w.u64(h.overflow());
}

Histogram CheckpointCodec<Histogram>::decode(ByteReader& r) {
  const std::uint64_t size = r.u64();
  if (size == 0 || size > (1ULL << 24)) {
    throw std::runtime_error("checkpoint payload: implausible histogram size");
  }
  Histogram h(size);
  for (std::uint64_t i = 0; i < size; ++i) {
    h.add(static_cast<std::size_t>(i), r.u64());
  }
  h.add(static_cast<std::size_t>(size), r.u64());  // out of range -> overflow
  return h;
}

// ------------------------------------------------------------------- store --

namespace {

constexpr const char* kFileExtension = ".ethsmck";

std::uint64_t record_checksum(std::uint64_t job,
                              const std::byte* payload, std::size_t size) {
  Fingerprint fp;
  fp.mix(std::uint64_t{0xC5ECC5ECULL});  // domain separation from sweep fps
  fp.mix(job);
  fp.mix(static_cast<std::uint64_t>(size));
  fp.mix_bytes(payload, size);
  return fp.digest();
}

template <typename T>
bool read_raw(std::ifstream& in, T& out) {
  static_assert(std::is_trivially_copyable_v<T>);
  return static_cast<bool>(in.read(reinterpret_cast<char*>(&out), sizeof(T)));
}

template <typename T>
void append_raw(std::string& buffer, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  buffer.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Outcome of walking one checkpoint file's header + records.
struct FileWalk {
  bool header_ok = false;         ///< magic/version matched
  std::uint64_t fingerprint = 0;  ///< header fingerprint (valid iff header_ok)
  std::uint64_t valid_end = 0;    ///< byte offset after the last valid record
  std::size_t records = 0;        ///< checksum-valid records seen
};

/// Shared record walk of CheckpointStore::load, scan_checkpoint_directory and
/// read_checkpoint_records: reads records until the first truncated,
/// over-long or checksum-corrupted one. When `expected_fingerprint` is set
/// and the header names a different sweep, the walk stops after the header
/// (header_ok stays true; the caller decides whether foreign files matter).
/// Torn-tail safety rests here: a record the writer has not fully flushed
/// fails the length bound or the trailing checksum and terminates the walk,
/// so concurrent readers observe a valid record prefix, never torn data.
template <typename Sink>  // void(std::uint64_t job, std::vector<std::byte>&&)
FileWalk walk_checkpoint_file(const std::string& path,
                              const std::optional<std::uint64_t>&
                                  expected_fingerprint,
                              Sink&& sink) {
  FileWalk walk;
  std::ifstream in(path, std::ios::binary);
  if (!in) return walk;
  std::error_code size_ec;
  const std::uint64_t file_bytes = fs::file_size(path, size_ec);
  if (size_ec) return walk;

  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t reserved = 0;
  std::uint64_t file_fingerprint = 0;
  if (!read_raw(in, magic) || !read_raw(in, version) ||
      !read_raw(in, reserved) || !read_raw(in, file_fingerprint)) {
    return walk;  // too short to even hold a header
  }
  if (magic != CheckpointStore::kMagic ||
      version != CheckpointStore::kFormatVersion) {
    return walk;  // foreign file: ignore wholesale
  }
  walk.header_ok = true;
  walk.fingerprint = file_fingerprint;
  walk.valid_end = sizeof magic + sizeof version + sizeof reserved +
                   sizeof file_fingerprint;
  if (expected_fingerprint && file_fingerprint != *expected_fingerprint) {
    return walk;  // stale sweep: header fine, records are not ours
  }

  for (;;) {
    std::uint64_t job = 0;
    std::uint64_t size = 0;
    if (!read_raw(in, job) || !read_raw(in, size)) break;  // truncated tail
    // A corrupted size field must not drive the allocation below: the
    // payload + checksum cannot extend past the end of the file.
    const std::uint64_t record_data_start =
        walk.valid_end + sizeof job + sizeof size;
    if (size > file_bytes ||
        record_data_start + size + sizeof(std::uint64_t) > file_bytes) {
      break;
    }
    std::vector<std::byte> payload(size);
    if (!in.read(reinterpret_cast<char*>(payload.data()),
                 static_cast<std::streamsize>(size))) {
      break;
    }
    std::uint64_t checksum = 0;
    if (!read_raw(in, checksum)) break;
    if (checksum != record_checksum(job, payload.data(), payload.size())) {
      break;  // corruption: stop trusting this file from here on
    }
    sink(job, std::move(payload));
    ++walk.records;
    walk.valid_end += sizeof job + sizeof size + size + sizeof checksum;
  }
  return walk;
}

/// Sorted *.ethsmck paths under `directory` (deterministic merge order).
std::vector<std::string> checkpoint_files_in(const std::string& directory) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == kFileExtension) {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

CheckpointStore::CheckpointStore(std::string directory,
                                 std::uint64_t fingerprint, ShardSpec shard)
    : directory_(std::move(directory)),
      fingerprint_(fingerprint),
      shard_(shard) {
  ETHSM_EXPECTS(!directory_.empty(), "checkpoint directory must be non-empty");
  // Missing parents are created, not reported: `--checkpoint-dir a/b/c` on a
  // fresh machine should just work. Only a real filesystem refusal (EROFS,
  // EACCES, a file in the way) fails, and then with the OS reason, not a
  // bare stream-open error further down. Creation retries with backoff so a
  // transient hiccup (network filesystems) does not abort a long sweep.
  retry(RetryPolicy{}, [this] {
    std::error_code create_ec;
    fs::create_directories(directory_, create_ec);
    ETHSM_EXPECTS(!create_ec, "cannot create checkpoint directory " +
                                  directory_ + ": " + create_ec.message());
  });
  // Merge every readable matching file: this process's earlier attempts plus
  // any other shard's output dropped into the same directory.
  for (const auto& path : checkpoint_files_in(directory_)) {
    const std::uint64_t valid_bytes = load_file(path);
    if (path == own_file_path()) {
      // This process appends to its own file: drop any truncated/corrupt tail
      // a previous interrupted run left behind, so new records stay readable.
      // valid_bytes == 0 (a torn or foreign header) truncates to empty, which
      // makes the next append() rewrite a fresh header instead of landing
      // records after garbage forever.
      std::error_code resize_ec;
      if (fs::file_size(path, resize_ec) != valid_bytes && !resize_ec) {
        fs::resize_file(path, valid_bytes, resize_ec);
      }
    }
  }
}

std::string CheckpointStore::own_file_path() const {
  std::ostringstream name;
  name << "sweep-" << hex64(fingerprint_) << "-shard" << shard_.index << "of"
       << shard_.count << kFileExtension;
  return (fs::path(directory_) / name.str()).string();
}

std::uint64_t CheckpointStore::load_file(const std::string& path) {
  const FileWalk walk = walk_checkpoint_file(
      path, fingerprint_, [this](std::uint64_t job,
                                 std::vector<std::byte>&& payload) {
        records_[job] = std::move(payload);
      });
  if (!walk.header_ok || walk.fingerprint != fingerprint_) {
    return 0;  // stale sweep / foreign file: ignore wholesale
  }
  return walk.valid_end;
}

const std::vector<std::byte>& CheckpointStore::payload(
    std::uint64_t job) const {
  const auto it = records_.find(job);
  ETHSM_EXPECTS(it != records_.end(), "no checkpoint record for job");
  return it->second;
}

void CheckpointStore::append(std::uint64_t job,
                             const std::vector<std::byte>& payload) {
  const std::lock_guard<std::mutex> lock(append_mutex_);
  append_locked(job, payload);
}

std::size_t CheckpointStore::import_directory(
    const std::string& source_directory) {
  // The source walk is the read-only merge `ethsm serve` uses for progress
  // reads: foreign fingerprints are skipped at the header, a torn tail is
  // simply absent. Appends then go through this store's ordinary single-
  // buffered-write path, so readers of *this* directory keep their
  // valid-prefix guarantee while an orchestrator imports worker results.
  std::size_t imported = 0;
  for (const auto& [job, payload] :
       read_checkpoint_records(source_directory, fingerprint_)) {
    const std::lock_guard<std::mutex> lock(append_mutex_);
    if (records_.count(job) != 0) continue;  // idempotent re-sync
    append_locked(job, payload);
    if constexpr (metrics::kEnabled) {
      CheckpointMetrics& m = CheckpointMetrics::instance();
      m.imported_records.add();
      m.imported_bytes.add(payload.size());
    }
    ++imported;
  }
  return imported;
}

void CheckpointStore::append_locked(std::uint64_t job,
                                    const std::vector<std::byte>& payload) {
  std::chrono::steady_clock::time_point append_start;
  if constexpr (metrics::kEnabled) {
    append_start = std::chrono::steady_clock::now();
  }
  const std::string path = own_file_path();
  const bool fresh = !fs::exists(path) || fs::file_size(path) == 0;
  // Opening retries with backoff (transient EMFILE/network-storage blips);
  // a record lost to a genuinely dead disk still surfaces the final error.
  std::ofstream out = retry(RetryPolicy{}, [&path] {
    std::ofstream stream(path, std::ios::binary | std::ios::app);
    ETHSM_ENSURES(static_cast<bool>(stream),
                  "cannot open checkpoint file " + path);
    return stream;
  });
  // The whole append is staged into one buffer and handed to the stream as a
  // single write: concurrent readers of the same sweep then race against at
  // most one partially-flushed record, which their checksum walk rejects
  // (the writer/reader contract in checkpoint.h).
  std::string buffer;
  buffer.reserve(payload.size() + 64);
  if (fresh) {
    append_raw(buffer, kMagic);
    append_raw(buffer, kFormatVersion);
    append_raw(buffer, std::uint32_t{0});
    append_raw(buffer, fingerprint_);
  }
  append_raw(buffer, job);
  append_raw(buffer, static_cast<std::uint64_t>(payload.size()));
  buffer.append(reinterpret_cast<const char*>(payload.data()),
                payload.size());
  append_raw(buffer, record_checksum(job, payload.data(), payload.size()));
  out.write(buffer.data(), static_cast<std::streamsize>(buffer.size()));
  out.flush();
  ETHSM_ENSURES(static_cast<bool>(out),
                "short write to checkpoint file " + path);

  if constexpr (metrics::kEnabled) {
    CheckpointMetrics& m = CheckpointMetrics::instance();
    m.appends.add();
    m.append_bytes.add(buffer.size());
    m.append_seconds.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      append_start)
            .count());
  }

  records_[job] = payload;
}

// ------------------------------------------------------ directory scanning --

std::vector<CheckpointFileInfo> scan_checkpoint_directory(
    const std::string& directory) {
  std::vector<CheckpointFileInfo> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != kFileExtension) continue;

    CheckpointFileInfo info;
    info.path = entry.path().string();
    std::error_code size_ec;
    info.bytes = fs::file_size(entry.path(), size_ec);
    if (size_ec) info.bytes = 0;

    // Same record walk as CheckpointStore::load_file: stop at the first
    // truncated or checksum-corrupted record.
    const FileWalk walk = walk_checkpoint_file(
        info.path, std::nullopt,
        [](std::uint64_t, std::vector<std::byte>&&) {});
    info.readable = walk.header_ok;
    info.fingerprint = walk.fingerprint;
    info.records = walk.records;
    files.push_back(std::move(info));
  }
  std::sort(files.begin(), files.end(),
            [](const CheckpointFileInfo& a, const CheckpointFileInfo& b) {
              return a.path < b.path;
            });
  return files;
}

std::map<std::uint64_t, std::vector<std::byte>> read_checkpoint_records(
    const std::string& directory, std::uint64_t fingerprint) {
  std::map<std::uint64_t, std::vector<std::byte>> records;
  for (const auto& path : checkpoint_files_in(directory)) {
    walk_checkpoint_file(path, fingerprint,
                         [&records](std::uint64_t job,
                                    std::vector<std::byte>&& payload) {
                           if constexpr (metrics::kEnabled) {
                             CheckpointMetrics& m =
                                 CheckpointMetrics::instance();
                             m.read_records.add();
                             m.read_bytes.add(payload.size());
                           }
                           records[job] = std::move(payload);
                         });
  }
  return records;
}

// -------------------------------------------------------------- bench CLI --

namespace {

[[noreturn]] void cli_fail(const std::string& message) {
  std::fprintf(stderr,
               "error: %s\n"
               "usage: [--quick] [--checkpoint-dir DIR | --resume] "
               "[--shard k/N]\n",
               message.c_str());
  std::exit(2);
}

}  // namespace

SweepCli parse_sweep_cli(int argc, char** argv) {
  SweepCli cli;
  if (const char* dir = std::getenv("ETHSM_CHECKPOINT_DIR")) {
    cli.checkpoint.directory = dir;
  }
  cli.checkpoint.shard = shard_from_env();

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      cli.quick = true;
    } else if (arg == "--resume") {
      if (cli.checkpoint.directory.empty()) {
        cli.checkpoint.directory = "ethsm-checkpoints";
      }
    } else if (arg == "--checkpoint-dir") {
      if (i + 1 >= argc) cli_fail("--checkpoint-dir needs a directory");
      cli.checkpoint.directory = argv[++i];
    } else if (arg == "--shard") {
      if (i + 1 >= argc) cli_fail("--shard needs k/N");
      const auto shard = parse_shard(argv[++i]);
      if (!shard) cli_fail("malformed --shard (want k/N with 0 <= k < N)");
      cli.checkpoint.shard = *shard;
    } else {
      cli_fail("unknown argument " + std::string(arg));
    }
  }
  if (!cli.checkpoint.shard.is_whole_sweep() &&
      cli.checkpoint.directory.empty()) {
    cli_fail("--shard requires --checkpoint-dir (shards merge through disk; "
             "without it this shard's work would be discarded)");
  }
  return cli;
}

bool report_sweep_progress(std::ostream& os, const SweepCheckpoint& checkpoint,
                           const SweepOutcome& outcome) {
  if (checkpoint.enabled()) {
    os << describe(checkpoint, outcome) << "\n";
  }
  if (!outcome.complete()) {
    os << "Partial sweep: aggregates suppressed until every shard's records "
          "are present; re-run with the same --checkpoint-dir to merge.\n";
    return false;
  }
  return true;
}

std::string describe(const SweepCheckpoint& checkpoint,
                     const SweepOutcome& outcome) {
  std::ostringstream os;
  os << "checkpoint: " << outcome.loaded << " loaded + " << outcome.computed
     << " computed of " << outcome.jobs_total << " jobs";
  if (!checkpoint.shard.is_whole_sweep()) {
    os << " (shard " << checkpoint.shard.index << "/"
       << checkpoint.shard.count << ")";
  }
  if (outcome.skipped > 0) {
    os << "; " << outcome.skipped
       << " left for other shards or a later resume";
  }
  os << " [dir: " << checkpoint.directory << "]";
  return os.str();
}

}  // namespace ethsm::support
