// Resumable sweep checkpointing (ROADMAP: "sharded sweep checkpointing").
//
// Long sweeps (threshold_curve at tight tolerance, 100+ alpha grids) persist
// per-job results to disk so an interrupted regeneration resumes instead of
// restarting, and so the same job grid can be split across processes
// (--shard k/N) and merged by index afterwards. The job-index determinism
// contract (support/parallel.h) makes both bitwise-exact by construction:
// every job is a pure function of its index, results are serialized as raw
// bit patterns, and aggregation always happens serially in index order over
// the merged result vector.
//
// On-disk format (one file per writing process, little-endian):
//   header:  magic u64 "ETHSMCK1" | format version u32 | reserved u32 |
//            sweep fingerprint u64
//   record:  job index u64 | payload size u64 | payload bytes |
//            checksum u64 over (job index, size, payload)
// Files whose header does not match the current magic/version/fingerprint are
// ignored wholesale (stale sweeps share a directory safely); reading a file
// stops at the first truncated or checksum-corrupted record, so a process
// killed mid-append loses at most its final record. The store loads *every*
// readable file in the directory with a matching fingerprint, which is
// exactly the index-ordered shard merge.

#ifndef ETHSM_SUPPORT_CHECKPOINT_H
#define ETHSM_SUPPORT_CHECKPOINT_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "support/stats.h"

namespace ethsm::support {

// ---------------------------------------------------------------- sharding --

/// Cross-process shard selection: shard k of N owns job indices j with
/// j % N == k. The default {0, 1} owns everything.
struct ShardSpec {
  std::uint32_t index = 0;
  std::uint32_t count = 1;

  [[nodiscard]] bool owns(std::size_t job) const noexcept {
    return job % count == index;
  }
  [[nodiscard]] bool is_whole_sweep() const noexcept { return count == 1; }
};

/// Parses "k/N" (0 <= k < N); nullopt on malformed input.
[[nodiscard]] std::optional<ShardSpec> parse_shard(std::string_view text);

/// ShardSpec from the ETHSM_SHARD environment variable ("k/N"); the default
/// whole-sweep spec when unset or malformed.
[[nodiscard]] ShardSpec shard_from_env();

// ------------------------------------------------------------ fingerprints --

/// Order-sensitive 64-bit mixer used for sweep fingerprints and record
/// checksums. Doubles are mixed as bit patterns so any numeric change to a
/// sweep's parameters yields a different fingerprint.
class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v) noexcept;
  Fingerprint& mix(std::int64_t v) noexcept {
    return mix(static_cast<std::uint64_t>(v));
  }
  Fingerprint& mix(std::uint32_t v) noexcept {
    return mix(static_cast<std::uint64_t>(v));
  }
  Fingerprint& mix(int v) noexcept {
    return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  Fingerprint& mix(bool v) noexcept {
    return mix(static_cast<std::uint64_t>(v ? 1 : 0));
  }
  Fingerprint& mix(double v) noexcept;
  Fingerprint& mix(std::string_view text) noexcept;
  /// String literals must hash as text, not decay to the bool overload.
  Fingerprint& mix(const char* text) noexcept {
    return mix(std::string_view(text));
  }
  Fingerprint& mix_bytes(const std::byte* data, std::size_t size) noexcept;

  [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

 private:
  std::uint64_t state_ = 0x9d5c'0fb2'ae73'11c5ULL;
};

// ------------------------------------------------------- payload (de)coding --

/// Append-only little-endian byte buffer. Doubles are stored as raw bit
/// patterns, so decode(encode(x)) == x bitwise -- the property the resumed ==
/// fresh guarantee rests on.
class ByteWriter {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);
  void boolean(bool v) { u32(v ? 1 : 0); }
  void f64_vec(const std::vector<double>& v);
  void u64_vec(const std::vector<std::uint64_t>& v);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return buffer_;
  }

 private:
  std::vector<std::byte> buffer_;
};

/// Cursor over a checkpoint payload; throws std::runtime_error on underrun
/// (a record that passed its checksum but does not match the codec layout is
/// a schema bug, not silent corruption).
class ByteReader {
 public:
  ByteReader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::byte>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] double f64();
  [[nodiscard]] bool boolean() { return u32() != 0; }
  [[nodiscard]] std::vector<double> f64_vec();
  [[nodiscard]] std::vector<std::uint64_t> u64_vec();
  [[nodiscard]] bool exhausted() const noexcept { return cursor_ == size_; }

 private:
  void take(void* out, std::size_t n);

  const std::byte* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

/// Per-result-type codec used by run_checkpointed; specialize for every sweep
/// job result. Encoding must be a pure function of the value and must round-
/// trip bitwise (store raw bit patterns, never re-derived quantities).
template <typename T>
struct CheckpointCodec;  // intentionally undefined for unknown types

template <>
struct CheckpointCodec<double> {
  static void encode(ByteWriter& w, double v) { w.f64(v); }
  static double decode(ByteReader& r) { return r.f64(); }
};

template <>
struct CheckpointCodec<std::uint64_t> {
  static void encode(ByteWriter& w, std::uint64_t v) { w.u64(v); }
  static std::uint64_t decode(ByteReader& r) { return r.u64(); }
};

/// Histograms round-trip exactly: integer bucket counts plus the overflow
/// bucket reconstruct total() without loss.
template <>
struct CheckpointCodec<Histogram> {
  static void encode(ByteWriter& w, const Histogram& h);
  static Histogram decode(ByteReader& r);
};

// ------------------------------------------------------------------- store --

/// Persistent (sweep fingerprint, job index) -> payload map backed by the
/// directory described in the header comment. Loading merges every matching
/// file (shards included); appends go to this process's own file and are
/// flushed record-by-record, so a killed process loses at most the record
/// being written. Append is thread-safe (called from pool workers); one store
/// instance must not be shared between processes.
///
/// Writer/reader concurrency contract (relied on by `ethsm serve`, which
/// answers progress reads while a sweep is still appending): every record is
/// written with a single buffered write whose checksum trails the payload, so
/// a reader racing the writer sees either the whole record or a tail that
/// fails the length/checksum walk -- never a torn record presented as data.
/// Concurrent readers must go through read_checkpoint_records /
/// scan_checkpoint_directory (both stop at the first invalid record and never
/// write); constructing a second CheckpointStore for the same (directory,
/// fingerprint, shard) while a writer is live is NOT safe -- the constructor
/// truncates its own file's invalid tail.
class CheckpointStore {
 public:
  /// "ETHSMCK1" as a little-endian u64.
  static constexpr std::uint64_t kMagic = 0x314b'434d'5348'5445ULL;
  static constexpr std::uint32_t kFormatVersion = 1;

  CheckpointStore(std::string directory, std::uint64_t fingerprint,
                  ShardSpec shard = {});

  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] bool contains(std::uint64_t job) const {
    return records_.count(job) != 0;
  }
  [[nodiscard]] const std::vector<std::byte>& payload(std::uint64_t job) const;
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

  /// Persists one job result; overwrites any in-memory copy. Thread-safe.
  void append(std::uint64_t job, const std::vector<std::byte>& payload);

  /// Read-only merge of a foreign checkpoint directory (a worker's private
  /// store, synced back by `ethsm orchestrate`): every valid record for this
  /// store's fingerprint found under `source_directory` that this store does
  /// not already hold is appended to this store's own file. The source is
  /// never created, truncated or written; files with foreign fingerprints or
  /// corrupt tails contribute exactly their valid matching prefix (the same
  /// walk as read_checkpoint_records), so importing from a worker killed
  /// mid-append recovers everything it completed. Safe while concurrent
  /// readers watch this store's directory (appends keep the one-writer/
  /// many-readers contract); idempotent -- re-importing the same source
  /// appends nothing. Returns the number of records imported. Thread-safe.
  std::size_t import_directory(const std::string& source_directory);

  /// File this process appends to (exposed for tests).
  [[nodiscard]] std::string own_file_path() const;

 private:
  /// Loads one file; returns the byte offset of the end of the last valid
  /// record (0 when the header itself is unusable).
  std::uint64_t load_file(const std::string& path);

  /// The body of append(); the caller must hold append_mutex_.
  void append_locked(std::uint64_t job, const std::vector<std::byte>& payload);

  std::string directory_;
  std::uint64_t fingerprint_;
  ShardSpec shard_;
  std::map<std::uint64_t, std::vector<std::byte>> records_;
  std::mutex append_mutex_;
};

// ------------------------------------------------------ directory scanning --

/// One on-disk checkpoint file as reported by scan_checkpoint_directory
/// (the substrate of `ethsm checkpoint-stats` and its --prune GC).
struct CheckpointFileInfo {
  std::string path;
  std::uint64_t bytes = 0;        ///< on-disk file size
  bool readable = false;          ///< header parsed, magic/version matched
  std::uint64_t fingerprint = 0;  ///< sweep fingerprint (valid iff readable)
  std::size_t records = 0;        ///< checksum-valid records
};

/// Scans every *.ethsmck file in `directory` (non-recursive, sorted by path)
/// and summarizes its header and valid-record count. Unlike CheckpointStore,
/// no fingerprint filter is applied: the scan sees every sweep sharing the
/// directory. Missing directory => empty result.
[[nodiscard]] std::vector<CheckpointFileInfo> scan_checkpoint_directory(
    const std::string& directory);

/// Read-only merge of every valid record for `fingerprint` under `directory`
/// (all shard files, sorted by path; later files win duplicate job indices,
/// matching CheckpointStore's load order). Never creates the directory,
/// never truncates or writes -- safe to call concurrently with one live
/// writer appending to the same sweep: a mid-append tail record simply is
/// not there yet. Missing directory => empty map. This is the progress-read
/// path of `ethsm serve`.
[[nodiscard]] std::map<std::uint64_t, std::vector<std::byte>>
read_checkpoint_records(const std::string& directory,
                        std::uint64_t fingerprint);

// -------------------------------------------------------- sweep-level knobs --

/// Progress accounting for a (possibly resumed / sharded / budgeted) sweep.
struct SweepOutcome {
  std::size_t jobs_total = 0;
  std::size_t loaded = 0;    ///< satisfied from checkpoint records
  std::size_t computed = 0;  ///< freshly executed by this process
  std::size_t skipped = 0;   ///< left to other shards or a later resume

  [[nodiscard]] bool complete() const noexcept {
    return loaded + computed == jobs_total;
  }
  void merge(const SweepOutcome& other) noexcept {
    jobs_total += other.jobs_total;
    loaded += other.loaded;
    computed += other.computed;
    skipped += other.skipped;
  }
};

/// Checkpoint/shard options threaded through the sweep drivers. An empty
/// directory disables persistence entirely (the driver computes every job
/// in-process exactly as before).
struct SweepCheckpoint {
  /// Created on first use, parents included; creation failure raises a
  /// std::invalid_argument naming the directory and the OS reason.
  std::string directory;
  ShardSpec shard;
  /// Upper bound on jobs *computed* by this invocation (resume-interruption
  /// testing and coarse time budgeting); SIZE_MAX = unbounded.
  std::size_t max_new_jobs = static_cast<std::size_t>(-1);

  [[nodiscard]] bool enabled() const noexcept { return !directory.empty(); }
};

// -------------------------------------------------------------- bench CLI --

/// Shared command-line contract of the bench regenerators:
///   --quick               smaller grids / fewer runs
///   --checkpoint-dir DIR  persist per-job results under DIR and resume
///   --resume              like --checkpoint-dir with the default directory
///                         ("ethsm-checkpoints")
///   --shard k/N           compute only job indices j with j %% N == k
/// Environment fallbacks: ETHSM_CHECKPOINT_DIR, ETHSM_SHARD (flags win).
/// Unknown arguments abort with a usage message on stderr (exit code 2).
struct SweepCli {
  bool quick = false;
  SweepCheckpoint checkpoint;
};

[[nodiscard]] SweepCli parse_sweep_cli(int argc, char** argv);

/// One-line human-readable resume/shard progress summary for bench output.
[[nodiscard]] std::string describe(const SweepCheckpoint& checkpoint,
                                   const SweepOutcome& outcome);

/// Shared bench/example epilogue: prints the progress line (when
/// checkpointing is enabled) and, for an incomplete sweep, the
/// partial-sweep notice. Returns true when the sweep is complete and
/// aggregates may be shown -- callers must suppress aggregate output (and
/// typically exit) on false, so a sharded process never prints a partial
/// curve as if it were the merged result.
[[nodiscard]] bool report_sweep_progress(std::ostream& os,
                                         const SweepCheckpoint& checkpoint,
                                         const SweepOutcome& outcome);

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_CHECKPOINT_H
