#include "support/csv.h"

#include <fstream>
#include <sstream>

#include "support/check.h"

namespace ethsm::support {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  ETHSM_EXPECTS(!header_.empty(), "csv header must not be empty");
}

void CsvWriter::add_row(const std::vector<double>& values) {
  ETHSM_EXPECTS(values.size() == header_.size(), "csv row width mismatch");
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    std::ostringstream os;
    os.precision(12);
    os << v;
    cells.push_back(os.str());
  }
  rows_.push_back(std::move(cells));
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  ETHSM_EXPECTS(cells.size() == header_.size(), "csv row width mismatch");
  rows_.push_back(cells);
}

void CsvWriter::add_optional_row(const std::vector<std::optional<double>>& values) {
  std::vector<double> plain;
  plain.reserve(values.size());
  for (const auto& v : values) plain.push_back(v.value_or(kMissingSentinel));
  add_row(plain);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << escape(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << escape(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << str();
  return static_cast<bool>(f);
}

}  // namespace ethsm::support
