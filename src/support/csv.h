// Minimal CSV writer: the bench regenerators optionally dump their series as
// CSV next to the human-readable tables so results can be re-plotted.

#ifndef ETHSM_SUPPORT_CSV_H
#define ETHSM_SUPPORT_CSV_H

#include <string>
#include <vector>

namespace ethsm::support {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<double>& values);
  void add_row(const std::vector<std::string>& cells);

  [[nodiscard]] std::string str() const;
  /// Writes to `path`; returns false (does not throw) on I/O failure so bench
  /// binaries keep printing to stdout even on a read-only filesystem.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_CSV_H
