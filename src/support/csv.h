// Minimal CSV writer: the bench regenerators optionally dump their series as
// CSV next to the human-readable tables so results can be re-plotted.

#ifndef ETHSM_SUPPORT_CSV_H
#define ETHSM_SUPPORT_CSV_H

#include <optional>
#include <string>
#include <vector>

namespace ethsm::support {

class CsvWriter {
 public:
  /// Sentinel written for missing optional values (the historical bench
  /// convention: `value_or(-1)`; every real series in this project is either
  /// a probability, a rate or a block count, so -1 is unambiguous).
  static constexpr double kMissingSentinel = -1.0;

  explicit CsvWriter(std::vector<std::string> header);

  void add_row(const std::vector<double>& values);
  void add_row(const std::vector<std::string>& cells);
  /// Optional-valued row: missing cells become kMissingSentinel. (Named
  /// distinctly: a braced list of doubles must keep binding to add_row.)
  void add_optional_row(const std::vector<std::optional<double>>& values);

  [[nodiscard]] std::string str() const;
  /// Writes to `path`; returns false (does not throw) on I/O failure so bench
  /// binaries keep printing to stdout even on a read-only filesystem.
  bool write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_CSV_H
