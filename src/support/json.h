// Minimal JSON emission helpers shared by the result renderer (api/render)
// and the study manifest writer (api/study). Emission only -- the repo never
// parses JSON, it hands it to downstream tooling (CI validation, plotting).

#ifndef ETHSM_SUPPORT_JSON_H
#define ETHSM_SUPPORT_JSON_H

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

namespace ethsm::support {

/// Zero-padded 16-digit hex form of a 64-bit fingerprint -- the one spelling
/// used by checkpoint filenames, checkpoint-stats tables, the JSON renderer
/// and the study manifest, so the same sweep is grep-able across all four.
inline std::string hex64(std::uint64_t v) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(v));
  return buffer;
}

/// Escapes a string for inclusion between JSON double quotes.
inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest decimal form that parses back to exactly the same double;
/// non-finite values become null (JSON has no inf/nan).
inline std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_JSON_H
