#include "support/math_util.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "support/check.h"

namespace ethsm::support {

std::optional<double> bisect(const std::function<double(double)>& f, double lo,
                             double hi, const BisectOptions& options) {
  ETHSM_EXPECTS(lo <= hi, "bisect: empty interval");
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if (std::signbit(flo) == std::signbit(fhi)) return std::nullopt;

  for (int i = 0; i < options.max_iterations && (hi - lo) > options.tolerance;
       ++i) {
    const double mid = std::midpoint(lo, hi);
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if (std::signbit(fmid) == std::signbit(flo)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return std::midpoint(lo, hi);
}

std::optional<double> first_true(const std::function<bool(double)>& pred,
                                 double lo, double hi, double tolerance) {
  return first_true_report(pred, lo, hi, tolerance).value;
}

FirstTrueReport first_true_report(const std::function<bool(double)>& pred,
                                  double lo, double hi, double tolerance) {
  ETHSM_EXPECTS(lo <= hi, "first_true: empty interval");
  if (pred(lo)) return {lo, CrossingLocation::at_lo};
  if (!pred(hi)) return {std::nullopt, CrossingLocation::none};
  const double original_hi = hi;
  while ((hi - lo) > tolerance) {
    const double mid = std::midpoint(lo, hi);
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // The bracket never moved off the upper endpoint (or stopped within one
  // tolerance of it): the sign change sits on hi itself. That is a verdict
  // about the bracket, not a failure -- the caller decides what it means.
  const bool on_endpoint = hi >= original_hi - tolerance;
  return {hi,
          on_endpoint ? CrossingLocation::at_hi : CrossingLocation::interior};
}

bool close(double a, double b, double rtol, double atol) noexcept {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return std::fabs(a - b) <= atol + rtol * scale;
}

double geometric_sum(double q, int n) noexcept {
  if (n <= 0) return 0.0;
  if (q == 1.0) return static_cast<double>(n);
  return (1.0 - ipow(q, n)) / (1.0 - q);
}

double ipow(double base, int exponent) noexcept {
  ETHSM_ASSERT(exponent >= 0);
  double result = 1.0;
  double b = base;
  int e = exponent;
  while (e > 0) {
    if (e & 1) result *= b;
    b *= b;
    e >>= 1;
  }
  return result;
}

std::string print_shortest_double(double value) {
  char buffer[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) break;
  }
  return buffer;
}

}  // namespace ethsm::support
