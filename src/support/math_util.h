// Small numerical helpers shared by the analysis modules: root bracketing and
// bisection (threshold search), geometric-series helpers, and approximate
// floating-point comparison used throughout the tests.

#ifndef ETHSM_SUPPORT_MATH_UTIL_H
#define ETHSM_SUPPORT_MATH_UTIL_H

#include <functional>
#include <optional>
#include <string>

namespace ethsm::support {

/// Options for bisection root finding.
struct BisectOptions {
  double tolerance = 1e-9;  ///< terminate when the bracket is narrower than this
  int max_iterations = 200;
};

/// Finds x in [lo, hi] with f(x) == 0 given f(lo) and f(hi) of opposite sign.
/// Returns std::nullopt when the bracket is invalid (no sign change).
[[nodiscard]] std::optional<double> bisect(
    const std::function<double(double)>& f, double lo, double hi,
    const BisectOptions& options = {});

/// Finds the smallest x in [lo, hi] where the monotone-crossing predicate
/// becomes true (pred(lo) may already be true -> returns lo; pred(hi) false ->
/// nullopt). Used for profitability-threshold searches where the objective
/// Us(alpha) - alpha crosses zero once.
[[nodiscard]] std::optional<double> first_true(
    const std::function<bool(double)>& pred, double lo, double hi,
    double tolerance = 1e-6);

/// Where a monotone predicate's false->true crossing sits relative to the
/// search bracket [lo, hi].
enum class CrossingLocation {
  at_lo,     ///< pred(lo) already true: crossing at or below the bracket
  interior,  ///< strictly inside (lo, hi - tolerance)
  at_hi,     ///< within tolerance of hi: the bracket endpoint itself sits on
             ///< the sign change -- callers should report, not assume an
             ///< interior crossing (tightening the tolerance cannot separate
             ///< the crossing from the endpoint)
  none,      ///< pred false on the whole bracket
};

struct FirstTrueReport {
  std::optional<double> value;  ///< as first_true(); nullopt iff crossing==none
  CrossingLocation crossing = CrossingLocation::none;
};

/// first_true with an explicit bracket-verification verdict. The returned
/// value is bitwise-identical to first_true()'s for every input.
[[nodiscard]] FirstTrueReport first_true_report(
    const std::function<bool(double)>& pred, double lo, double hi,
    double tolerance = 1e-6);

/// Relative/absolute closeness test: |a-b| <= atol + rtol*max(|a|,|b|).
[[nodiscard]] bool close(double a, double b, double rtol = 1e-9,
                         double atol = 1e-12) noexcept;

/// Shortest decimal form that strtod parses back to exactly the same double.
/// The round-trip contract behind every text codec that must re-parse
/// bitwise: spec files (api/spec.cpp) and the net topology/latency grammars
/// (net/topology.cpp) share this one implementation so they cannot diverge.
[[nodiscard]] std::string print_shortest_double(double value);

/// Sum of the finite geometric series q^0 + q^1 + ... + q^{n-1}.
[[nodiscard]] double geometric_sum(double q, int n) noexcept;

/// Integer power with non-negative exponent (exact for small exponents, no
/// pow() rounding surprises in hot loops).
[[nodiscard]] double ipow(double base, int exponent) noexcept;

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_MATH_UTIL_H
