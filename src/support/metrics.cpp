#include "support/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace ethsm::support::metrics {

namespace {

/// Shortest %g rendering that round-trips well enough for exposition; metric
/// names are ASCII identifiers so no escaping is needed anywhere below.
std::string format_double(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.12g", v);
  return buffer;
}

void add_double_bits(std::atomic<std::uint64_t>& bits, double v) noexcept {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------- Counter ---

std::size_t Counter::stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % kStripes;
}

// -------------------------------------------------------------- Histogram ---

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  add_double_bits(sum_bits_, v);
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::uint64_t Histogram::cumulative(std::size_t i) const noexcept {
  std::uint64_t total = 0;
  for (std::size_t k = 0; k <= i && k <= bounds_.size(); ++k) {
    total += buckets_[k].load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0 || bounds_.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    const std::uint64_t in_bucket =
        buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(seen + in_bucket) >= target && in_bucket > 0) {
      // Linear interpolation inside the bucket, Prometheus-style.
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double into =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(into, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return bounds_.back();  // quantile falls in the +Inf bucket
}

std::vector<double> Histogram::latency_bounds_seconds() {
  return {1e-6, 1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2,
          1e-1, 5e-1, 1.0,  5.0,  10.0, 30.0, 100.0};
}

std::vector<double> Histogram::size_bounds_bytes() {
  std::vector<double> bounds;
  for (double b = 64.0; b <= 256.0 * 1024 * 1024; b *= 4.0) {
    bounds.push_back(b);
  }
  return bounds;
}

// --------------------------------------------------------------- Registry ---

Registry::Entry& Registry::find_or_create(const std::string& name, Kind kind,
                                          const std::string& help) {
  for (const auto& entry : entries_) {
    if (entry->name == name) {
      if (entry->kind != kind) {
        throw std::logic_error("metrics: '" + name +
                               "' registered twice with different kinds");
      }
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->help = help;
  entry->kind = kind;
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, Kind::counter, help);
  if (!entry.owned_counter) entry.owned_counter = std::make_unique<Counter>();
  return *entry.owned_counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, Kind::gauge, help);
  if (!entry.owned_gauge) entry.owned_gauge = std::make_unique<Gauge>();
  return *entry.owned_gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds,
                               const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, Kind::histogram, help);
  if (!entry.owned_histogram) {
    entry.owned_histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *entry.owned_histogram;
}

void Registry::register_counter(const std::string& name,
                                const Counter* counter,
                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, Kind::external_counter, help);
  entry.external_counter = counter;
}

void Registry::register_counter_fn(const std::string& name,
                                   std::function<std::uint64_t()> fn,
                                   const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, Kind::counter_fn, help);
  entry.counter_fn = std::move(fn);
}

void Registry::register_gauge_fn(const std::string& name,
                                 std::function<std::int64_t()> fn,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = find_or_create(name, Kind::gauge_fn, help);
  entry.gauge_fn = std::move(fn);
}

std::string Registry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  out.reserve(entries_.size() * 96);
  for (const auto& entry : entries_) {
    if (!entry->help.empty()) {
      out += "# HELP " + entry->name + " " + entry->help + "\n";
    }
    switch (entry->kind) {
      case Kind::counter:
      case Kind::external_counter:
      case Kind::counter_fn: {
        std::uint64_t v = 0;
        if (entry->kind == Kind::counter) {
          v = entry->owned_counter->value();
        } else if (entry->kind == Kind::external_counter) {
          v = entry->external_counter ? entry->external_counter->value() : 0;
        } else {
          v = entry->counter_fn ? entry->counter_fn() : 0;
        }
        out += "# TYPE " + entry->name + " counter\n";
        out += entry->name + " " + std::to_string(v) + "\n";
        break;
      }
      case Kind::gauge:
      case Kind::gauge_fn: {
        const std::int64_t v = entry->kind == Kind::gauge
                                   ? entry->owned_gauge->value()
                                   : (entry->gauge_fn ? entry->gauge_fn() : 0);
        out += "# TYPE " + entry->name + " gauge\n";
        out += entry->name + " " + std::to_string(v) + "\n";
        break;
      }
      case Kind::histogram: {
        const Histogram& h = *entry->owned_histogram;
        out += "# TYPE " + entry->name + " histogram\n";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          out += entry->name + "_bucket{le=\"" +
                 format_double(h.bounds()[i]) + "\"} " +
                 std::to_string(h.cumulative(i)) + "\n";
        }
        out += entry->name + "_bucket{le=\"+Inf\"} " +
               std::to_string(h.count()) + "\n";
        out += entry->name + "_sum " + format_double(h.sum()) + "\n";
        out += entry->name + "_count " + std::to_string(h.count()) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string Registry::render_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string counters, gauges, histograms;
  for (const auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::counter:
      case Kind::external_counter:
      case Kind::counter_fn: {
        std::uint64_t v = 0;
        if (entry->kind == Kind::counter) {
          v = entry->owned_counter->value();
        } else if (entry->kind == Kind::external_counter) {
          v = entry->external_counter ? entry->external_counter->value() : 0;
        } else {
          v = entry->counter_fn ? entry->counter_fn() : 0;
        }
        if (!counters.empty()) counters += ", ";
        counters += "\"" + entry->name + "\": " + std::to_string(v);
        break;
      }
      case Kind::gauge:
      case Kind::gauge_fn: {
        const std::int64_t v = entry->kind == Kind::gauge
                                   ? entry->owned_gauge->value()
                                   : (entry->gauge_fn ? entry->gauge_fn() : 0);
        if (!gauges.empty()) gauges += ", ";
        gauges += "\"" + entry->name + "\": " + std::to_string(v);
        break;
      }
      case Kind::histogram: {
        const Histogram& h = *entry->owned_histogram;
        if (!histograms.empty()) histograms += ", ";
        histograms += "\"" + entry->name + "\": {\"buckets\": [";
        for (std::size_t i = 0; i < h.bounds().size(); ++i) {
          if (i > 0) histograms += ", ";
          histograms += "{\"le\": " + format_double(h.bounds()[i]) +
                        ", \"count\": " + std::to_string(h.cumulative(i)) +
                        "}";
        }
        histograms += "], \"sum\": " + format_double(h.sum()) +
                      ", \"count\": " + std::to_string(h.count()) + "}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

Registry& registry() {
  static Registry instance;
  return instance;
}

}  // namespace ethsm::support::metrics
