// Process-wide metrics: named monotonic counters, gauges, and fixed-bucket
// histograms, collected in a registry that renders to Prometheus text
// exposition format (GET /metrics on `ethsm serve`) and to a JSON snapshot
// (`ethsm run --metrics-out FILE`).
//
// Design constraints, in order:
//   1. Metrics are write-only taps. Nothing in the engine may read a metric
//      to make a decision, so results are bitwise-identical with
//      instrumentation on, off, or compiled out (ETHSM_METRICS=OFF).
//   2. The hot path is one relaxed fetch_add on a thread-striped cell
//      (Counter::add). BM_MetricsCounterHotPath in bench_perf_micro pins
//      the cost.
//   3. Reads are exact: value() sums every stripe, and concurrent
//      increments are never lost (fetch_add, not racy read-modify-write).
//
// Two registries exist by analogy with the two scopes of accounting:
// `metrics::registry()` is the process-wide home of engine taps (solver,
// thread pool, checkpoint store, net sim, orchestrate), while components
// that need per-instance counts (serve::ExperimentService) own a private
// Registry instance. Both render the same way.
//
// Compile-out: -DETHSM_METRICS_OFF (set by the ETHSM_METRICS=OFF CMake
// option) flips `kEnabled` to false. Call sites on hot paths guard with
// `if constexpr (metrics::kEnabled)`, so the tap compiles to nothing; the
// registry itself always compiles, keeping `ethsm serve` and /v1/status
// functional in an OFF build.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ethsm::support::metrics {

#if defined(ETHSM_METRICS_OFF)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonic counter. Increments land on one of kStripes cache-line-padded
/// atomic cells selected by a thread-local stripe id, so concurrent writers
/// on different threads (usually) touch different lines; value() sums the
/// stripes for an exact total. Standalone and embeddable: components may
/// hold a Counter as a member and register it with a Registry by pointer.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    cells_[stripe_index()].value.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr std::size_t kStripes = 16;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };

  static std::size_t stripe_index() noexcept;

  Cell cells_[kStripes];
};

/// Last-write-wins signed gauge (queue depths, active regions, ...).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n) noexcept {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram for latencies and sizes. Bucket upper bounds are
/// chosen at construction and never change; observe() is a binary search
/// plus two relaxed atomic adds. Distinct from support::Histogram in
/// stats.h, which is an integer-domain result histogram with a checkpoint
/// codec -- this one is an observability tap and is never persisted.
class Histogram {
 public:
  /// `bounds` are inclusive upper bounds, strictly increasing; observations
  /// above the last bound land in the implicit +Inf bucket.
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept;
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Cumulative count of observations <= bounds()[i] (Prometheus `le`
  /// semantics); i == bounds().size() gives the +Inf bucket == count().
  std::uint64_t cumulative(std::size_t i) const noexcept;
  /// Bucket-interpolated quantile in [0, 1]. Returns the last finite bound
  /// when the quantile falls in the +Inf bucket, 0 when empty.
  double quantile(double q) const noexcept;

  /// Default latency bounds in seconds: 1us .. ~100s, quasi-logarithmic.
  static std::vector<double> latency_bounds_seconds();
  /// Default size bounds in bytes: 64B .. 256MiB, powers of four.
  static std::vector<double> size_bounds_bytes();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds + Inf
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double stored via bit_cast
};

/// Name -> metric map with stable (registration-order) iteration. Owns the
/// metrics it creates; also accepts non-owning pointers and callbacks so
/// components with internal accounting (serve::ResultCache, the admission
/// controller) can surface their single source of truth without a copy.
///
/// Renders two ways: Prometheus text exposition (`render_prometheus`) and a
/// JSON object (`render_json`). Both are exact snapshots at call time.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Create-or-get an owned metric. References stay valid for the lifetime
  /// of the registry (storage is node-stable). Calling with a name already
  /// registered as a different kind throws std::logic_error.
  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  /// Register externally owned metrics (must outlive the registry).
  void register_counter(const std::string& name, const Counter* counter,
                        const std::string& help = "");
  /// Callback providers: sampled at render time. `counter_fn` renders as a
  /// monotonic counter, `gauge_fn` as a gauge.
  void register_counter_fn(const std::string& name,
                           std::function<std::uint64_t()> fn,
                           const std::string& help = "");
  void register_gauge_fn(const std::string& name,
                         std::function<std::int64_t()> fn,
                         const std::string& help = "");

  std::string render_prometheus() const;
  std::string render_json() const;

 private:
  enum class Kind { counter, external_counter, counter_fn, gauge, gauge_fn,
                    histogram };
  struct Entry {
    std::string name;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> owned_counter;
    std::unique_ptr<Gauge> owned_gauge;
    std::unique_ptr<Histogram> owned_histogram;
    const Counter* external_counter = nullptr;
    std::function<std::uint64_t()> counter_fn;
    std::function<std::int64_t()> gauge_fn;
  };

  Entry& find_or_create(const std::string& name, Kind kind,
                        const std::string& help);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

/// The process-wide registry: home of the engine-layer taps.
Registry& registry();

}  // namespace ethsm::support::metrics
