// parallel_for / parallel_map on the process-wide thread pool.
//
// Determinism contract (relied on by run_many, revenue_curve & friends):
// jobs are pure functions of their index, results land in an index-ordered
// vector, and any order-sensitive reduction is the caller's to perform
// serially afterwards. Under that discipline every aggregate is
// bitwise-identical whether the pool has 1 thread or 64.

#ifndef ETHSM_SUPPORT_PARALLEL_H
#define ETHSM_SUPPORT_PARALLEL_H

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/checkpoint.h"
#include "support/thread_pool.h"

namespace ethsm::support {

/// Runs fn(i) for every i in [0, n) on the global pool; blocks until done.
template <typename F>
void parallel_for(std::size_t n, F&& fn) {
  ThreadPool::global().for_each_index(n, std::forward<F>(fn));
}

/// Maps i -> fn(i) into a vector with results at their job index. The result
/// type must be default-constructible (job slots are pre-allocated so no
/// synchronisation is needed on the output).
template <typename F>
[[nodiscard]] auto parallel_map(std::size_t n, F&& fn) {
  using Result = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  static_assert(std::is_default_constructible_v<Result>,
                "parallel_map pre-allocates result slots");
  std::vector<Result> results(n);
  ThreadPool::global().for_each_index(
      n, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

/// Result of a checkpointed sweep: an index-ordered result vector plus a
/// per-index availability mask (an index can be unavailable only when the
/// sweep is sharded or job-budgeted; an unsharded, unbudgeted run is always
/// complete).
template <typename Result>
struct CheckpointedSweep {
  std::vector<Result> results;  ///< size n; valid where have[i] != 0
  std::vector<char> have;       ///< char, not bool: parallel writers
  SweepOutcome outcome;

  [[nodiscard]] bool complete() const noexcept { return outcome.complete(); }
};

/// parallel_map with persistence: jobs already present in the checkpoint
/// store are decoded instead of recomputed; the rest (restricted to this
/// process's shard and job budget) run on the pool, each result appended to
/// the store as it completes, so an interrupted sweep resumes where it
/// stopped. Because jobs are pure functions of their index and payloads are
/// raw bit patterns, a resumed or sharded sweep is bitwise-identical to a
/// fresh one. `fingerprint` must cover every parameter the jobs depend on;
/// records from other fingerprints in the same directory are ignored.
///
/// With checkpointing disabled (`!ckpt.enabled()`) this is exactly
/// parallel_map: sharding and budgets only apply when there is a store to
/// merge partial results through.
template <typename Result, typename F>
[[nodiscard]] CheckpointedSweep<Result> run_checkpointed(
    const SweepCheckpoint& ckpt, std::uint64_t fingerprint, std::size_t n,
    F&& fn) {
  static_assert(std::is_default_constructible_v<Result>,
                "run_checkpointed pre-allocates result slots");
  CheckpointedSweep<Result> sweep;
  sweep.outcome.jobs_total = n;

  if (!ckpt.enabled()) {
    sweep.results = parallel_map(n, std::forward<F>(fn));
    sweep.have.assign(n, 1);
    sweep.outcome.computed = n;
    return sweep;
  }

  sweep.results.resize(n);
  sweep.have.assign(n, 0);
  CheckpointStore store(ckpt.directory, fingerprint, ckpt.shard);

  std::vector<std::size_t> todo;
  for (std::size_t i = 0; i < n; ++i) {
    if (store.contains(i)) {
      ByteReader reader(store.payload(i));
      sweep.results[i] = CheckpointCodec<Result>::decode(reader);
      sweep.have[i] = 1;
      ++sweep.outcome.loaded;
    } else if (ckpt.shard.owns(i) && todo.size() < ckpt.max_new_jobs) {
      todo.push_back(i);
    }
  }

  parallel_for(todo.size(), [&](std::size_t k) {
    const std::size_t i = todo[k];
    Result result = fn(i);
    ByteWriter writer;
    CheckpointCodec<Result>::encode(writer, result);
    store.append(i, writer.bytes());  // thread-safe, flushed per record
    sweep.results[i] = std::move(result);
    sweep.have[i] = 1;
  });
  sweep.outcome.computed = todo.size();
  sweep.outcome.skipped = n - sweep.outcome.loaded - sweep.outcome.computed;
  return sweep;
}

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_PARALLEL_H
