// parallel_for / parallel_map on the process-wide thread pool.
//
// Determinism contract (relied on by run_many, revenue_curve & friends):
// jobs are pure functions of their index, results land in an index-ordered
// vector, and any order-sensitive reduction is the caller's to perform
// serially afterwards. Under that discipline every aggregate is
// bitwise-identical whether the pool has 1 thread or 64.

#ifndef ETHSM_SUPPORT_PARALLEL_H
#define ETHSM_SUPPORT_PARALLEL_H

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/thread_pool.h"

namespace ethsm::support {

/// Runs fn(i) for every i in [0, n) on the global pool; blocks until done.
template <typename F>
void parallel_for(std::size_t n, F&& fn) {
  ThreadPool::global().for_each_index(n, std::forward<F>(fn));
}

/// Maps i -> fn(i) into a vector with results at their job index. The result
/// type must be default-constructible (job slots are pre-allocated so no
/// synchronisation is needed on the output).
template <typename F>
[[nodiscard]] auto parallel_map(std::size_t n, F&& fn) {
  using Result = std::decay_t<std::invoke_result_t<F&, std::size_t>>;
  static_assert(std::is_default_constructible_v<Result>,
                "parallel_map pre-allocates result slots");
  std::vector<Result> results(n);
  ThreadPool::global().for_each_index(
      n, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_PARALLEL_H
