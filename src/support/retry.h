// Bounded retry with exponential backoff (ROADMAP: graceful degradation).
//
// Transient failures -- a checkpoint directory on flaky network storage, a
// cell of a million-cell study hitting an I/O hiccup -- should cost a retry,
// not the night's work. retry() runs a callable up to `attempts` times,
// sleeping an exponentially growing backoff between failures, and rethrows
// the last exception when the budget is exhausted. Deterministic failures
// (a spec that always throws) simply fail `attempts` times quickly; the
// caller decides how many attempts a context deserves (the study runner's
// default is one, i.e. no retry, until `--retry N` asks for more).
//
// The sleeper is injectable so tests assert the backoff schedule without
// actually sleeping.

#ifndef ETHSM_SUPPORT_RETRY_H
#define ETHSM_SUPPORT_RETRY_H

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <thread>

namespace ethsm::support {

struct RetryPolicy {
  /// Total attempts (first try included); values < 1 behave like 1.
  int attempts = 3;
  double initial_backoff_ms = 50.0;
  double growth = 2.0;
  double max_backoff_ms = 5'000.0;
  /// Test seam: when set, called with the backoff instead of sleeping.
  std::function<void(double)> sleeper;

  /// Backoff before retry number `failures` (1-based): initial * growth^(k-1),
  /// capped at max_backoff_ms.
  [[nodiscard]] double backoff_ms(int failures) const {
    double backoff = initial_backoff_ms;
    for (int i = 1; i < failures; ++i) {
      backoff = std::min(backoff * growth, max_backoff_ms);
    }
    return std::min(backoff, max_backoff_ms);
  }

  void wait(int failures) const {
    const double ms = backoff_ms(failures);
    if (sleeper) {
      sleeper(ms);
      return;
    }
    if (ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(ms));
    }
  }
};

/// Runs f(), retrying on any std::exception with the policy's backoff; the
/// final failure's exception propagates unchanged.
template <typename F>
auto retry(const RetryPolicy& policy, F&& f) -> decltype(f()) {
  const int attempts = std::max(policy.attempts, 1);
  int failures = 0;
  while (true) {
    try {
      return f();
    } catch (const std::exception&) {
      if (++failures >= attempts) throw;
      policy.wait(failures);
    }
  }
}

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_RETRY_H
