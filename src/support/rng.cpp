#include "support/rng.h"

#include <cmath>

namespace ethsm::support {

void Xoshiro256::jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};

  std::array<std::uint64_t, 4> acc{};
  for (std::uint64_t word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (word & (std::uint64_t{1} << bit)) {
        for (std::size_t i = 0; i < acc.size(); ++i) acc[i] ^= state_[i];
      }
      (*this)();
    }
  }
  state_ = acc;
}

double Xoshiro256::exponential(double rate) noexcept {
  // Inverse-CDF sampling on (0,1] so log() never sees zero.
  return -std::log(uniform01_open_low()) / rate;
}

std::uint64_t Xoshiro256::uniform_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method with rejection to remove bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t derive_seed(std::uint64_t master,
                          std::uint64_t stream_index) noexcept {
  // Mix the pair (master, index) through SplitMix64 twice; the constant breaks
  // the symmetry derive_seed(a, b) == derive_seed(b, a).
  SplitMix64 sm(master ^ (0x9e3779b97f4a7c15ULL + stream_index * 0xbf58476d1ce4e5b9ULL));
  sm.next();
  return sm.next();
}

}  // namespace ethsm::support
