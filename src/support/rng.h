// Deterministic, fast random-number generation for the mining simulators.
//
// We use xoshiro256** (Blackman & Vigna) seeded through SplitMix64. Rationale:
//  * reproducibility across platforms (std::mt19937_64 is portable too, but the
//    distributions in <random> are NOT -- std::exponential_distribution may
//    produce different streams on different standard libraries, which would make
//    the recorded experiment outputs machine-dependent). All distribution
//    sampling here is hand-rolled and fully specified.
//  * jump() support so independent simulation runs can share one master seed
//    yet have provably non-overlapping streams.
//
// The generator satisfies the C++ UniformRandomBitGenerator concept so it can
// still be plugged into <random> when portability of the stream is not needed.

#ifndef ETHSM_SUPPORT_RNG_H
#define ETHSM_SUPPORT_RNG_H

#include <array>
#include <cstdint>
#include <limits>

namespace ethsm::support {

/// SplitMix64: used to expand a 64-bit seed into xoshiro state. Also a fine
/// standalone generator for hashing-style mixing.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's workhorse PRNG.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x8e51'2cafe'5eedULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
    // An all-zero state is the one invalid state; SplitMix64 cannot emit four
    // zeros in a row from any seed, so no further handling is required.
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Advances the stream by 2^128 steps; used to derive per-run sub-streams.
  void jump() noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; never returns 0, safe for log().
  double uniform01_open_low() noexcept {
    return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential variate with the given rate (mean 1/rate).
  double exponential(double rate) noexcept;

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t uniform_below(std::uint64_t bound) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives a child seed from (master, stream_index); used so every simulation
/// run in a multi-run experiment is independently and reproducibly seeded.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t master,
                                        std::uint64_t stream_index) noexcept;

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_RNG_H
