#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace ethsm::support {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return n_ >= 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci_halfwidth(double z) const noexcept { return z * sem(); }

Histogram::Histogram(std::size_t size) : counts_(size, 0) {
  ETHSM_EXPECTS(size > 0, "histogram needs at least one bucket");
}

void Histogram::add(std::size_t bucket, std::uint64_t weight) noexcept {
  if (bucket < counts_.size()) {
    counts_[bucket] += weight;
  } else {
    overflow_ += weight;
  }
  total_ += weight;
}

void Histogram::merge(const Histogram& other) {
  ETHSM_EXPECTS(other.counts_.size() == counts_.size(),
                "histogram sizes must match to merge");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  overflow_ += other.overflow_;
  total_ += other.total_;
}

std::uint64_t Histogram::at(std::size_t bucket) const {
  ETHSM_EXPECTS(bucket < counts_.size(), "histogram bucket out of range");
  return counts_[bucket];
}

double Histogram::fraction(std::size_t bucket) const {
  const std::uint64_t in_range = total_ - overflow_;
  if (in_range == 0) return 0.0;
  return static_cast<double>(at(bucket)) / static_cast<double>(in_range);
}

double Histogram::conditional_fraction(std::size_t bucket, std::size_t lo,
                                       std::size_t hi) const {
  ETHSM_EXPECTS(lo <= hi && hi < counts_.size(), "bad conditional range");
  std::uint64_t mass = 0;
  for (std::size_t i = lo; i <= hi; ++i) mass += counts_[i];
  if (mass == 0 || bucket < lo || bucket > hi) return 0.0;
  return static_cast<double>(counts_[bucket]) / static_cast<double>(mass);
}

double Histogram::conditional_mean(std::size_t lo, std::size_t hi) const {
  ETHSM_EXPECTS(lo <= hi && hi < counts_.size(), "bad conditional range");
  std::uint64_t mass = 0;
  double weighted = 0.0;
  for (std::size_t i = lo; i <= hi; ++i) {
    mass += counts_[i];
    weighted += static_cast<double>(i) * static_cast<double>(counts_[i]);
  }
  if (mass == 0) return 0.0;
  return weighted / static_cast<double>(mass);
}

std::vector<double> Histogram::normalized() const {
  std::vector<double> out(counts_.size(), 0.0);
  const std::uint64_t in_range = total_ - overflow_;
  if (in_range == 0) return out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(in_range);
  }
  return out;
}

}  // namespace ethsm::support
