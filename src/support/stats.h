// Streaming statistics used by the simulation harness: Welford running
// moments, normal-approximation confidence intervals, and integer histograms
// (used for uncle-reference-distance distributions, Table II of the paper).

#ifndef ETHSM_SUPPORT_STATS_H
#define ETHSM_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ethsm::support {

/// Numerically stable single-pass mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merges another accumulator (parallel/segmented runs); Chan et al. update.
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double sem() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Half-width of a normal-approximation confidence interval around the mean.
  /// `z` defaults to 1.96 (95%). With few samples this understates the width;
  /// the experiment harness uses >= 10 runs as in the paper.
  [[nodiscard]] double ci_halfwidth(double z = 1.96) const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-domain integer histogram over [0, size); out-of-range samples are
/// counted in a separate overflow bucket so nothing is silently dropped.
class Histogram {
 public:
  explicit Histogram(std::size_t size);

  void add(std::size_t bucket, std::uint64_t weight = 1) noexcept;
  void merge(const Histogram& other);

  [[nodiscard]] std::size_t size() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t at(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Probability mass of `bucket` relative to the in-range total.
  [[nodiscard]] double fraction(std::size_t bucket) const;
  /// Probability mass conditional on bucket in [lo, hi].
  [[nodiscard]] double conditional_fraction(std::size_t bucket, std::size_t lo,
                                            std::size_t hi) const;
  /// E[bucket | bucket in [lo, hi]]; 0 when the range is empty.
  [[nodiscard]] double conditional_mean(std::size_t lo, std::size_t hi) const;

  /// Normalised in-range mass as a vector of fractions.
  [[nodiscard]] std::vector<double> normalized() const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Kahan-compensated accumulator for long sums of small terms (stationary
/// distribution mass, reward-rate integrals).
class KahanSum {
 public:
  void add(double x) noexcept {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }
  [[nodiscard]] double value() const noexcept { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_STATS_H
