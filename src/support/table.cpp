#include "support/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace ethsm::support {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (!headers_.empty()) {
    ETHSM_EXPECTS(cells.size() == headers_.size(),
                  "row width must match header width");
  }
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TextTable::pct(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value * 100.0 << '%';
  return os.str();
}

std::string TextTable::opt(const std::optional<double>& value, int precision,
                           const char* missing) {
  return value ? num(*value, precision) : std::string(missing);
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(headers_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream os;
  auto rule = [&os, &widths]() {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&os, &widths](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  rule();
  if (!headers_.empty()) {
    line(headers_);
    rule();
  }
  for (const auto& row : rows_) line(row);
  rule();
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << render(); }

}  // namespace ethsm::support
