// Fixed-width ASCII table rendering for the experiment regenerators.
// Every bench binary prints the paper's tables/figure series through this so
// the output format stays uniform and diffable across runs.

#ifndef ETHSM_SUPPORT_TABLE_H
#define ETHSM_SUPPORT_TABLE_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

namespace ethsm::support {

/// A simple column-aligned table: set headers, append rows, render.
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> headers);

  void set_title(std::string title) { title_ = std::move(title); }
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with fixed precision.
  static std::string num(double value, int precision = 4);
  /// Convenience: percentage with fixed precision (0.25 -> "25.00%").
  static std::string pct(double value, int precision = 2);
  /// Optional column cell: the shared "-"-for-missing rendering used by every
  /// experiment table with simulation cross-check columns (a point whose sim
  /// runs are not all merged yet has no sim value).
  static std::string opt(const std::optional<double>& value, int precision = 4,
                         const char* missing = "-");

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  [[nodiscard]] std::string render() const;
  void print(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_TABLE_H
