#include "support/thread_pool.h"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "support/check.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ethsm::support {

namespace {

/// True on threads currently executing a pool job; nested regions run inline.
thread_local bool t_inside_pool_job = false;

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;  // guarded by g_global_mutex

/// Write-only observability tap. Tasks drained through regions are counted
/// and timed; for_each_index's inline paths (n == 1, single-thread pools,
/// nested regions) bypass the pool machinery and are deliberately not
/// counted -- the metrics describe pool work, not total work. Queue depth is
/// the remaining-ticket estimate of the most recently touched region.
struct PoolMetrics {
  metrics::Counter& tasks;
  metrics::Counter& regions;
  metrics::Histogram& task_seconds;
  metrics::Gauge& active_regions;
  metrics::Gauge& queue_depth;

  static PoolMetrics& instance() {
    auto& reg = metrics::registry();
    static PoolMetrics m{
        reg.counter("ethsm_pool_tasks_total",
                    "Tasks executed through thread-pool regions"),
        reg.counter("ethsm_pool_regions_total",
                    "Parallel regions run on the thread pool"),
        reg.histogram("ethsm_pool_task_seconds",
                      metrics::Histogram::latency_bounds_seconds(),
                      "Latency of individual pool tasks"),
        reg.gauge("ethsm_pool_active_regions",
                  "Parallel regions currently executing"),
        reg.gauge("ethsm_pool_queue_depth",
                  "Remaining tickets in the most recent region"),
    };
    return m;
  }
};

}  // namespace

ThreadPool::ThreadPool(unsigned threads)
    : concurrency_(threads == 0 ? 1 : threads) {
  if constexpr (metrics::kEnabled) {
    // Register the pool metric family up front so GET /metrics and
    // --metrics-out list it (at zero) even on machines where every region
    // takes the single-thread inline path.
    (void)PoolMetrics::instance();
  }
  workers_.reserve(concurrency_ - 1);
  for (unsigned i = 0; i + 1 < concurrency_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::drain(Region& region) {
  t_inside_pool_job = true;
  std::size_t completed = 0;
  for (;;) {
    const std::size_t i =
        region.next_index.fetch_add(1, std::memory_order_relaxed);
    if (i >= region.size) break;
    if constexpr (metrics::kEnabled) {
      PoolMetrics::instance().queue_depth.set(
          static_cast<std::int64_t>(region.size - i - 1));
    }
    std::chrono::steady_clock::time_point task_start;
    if constexpr (metrics::kEnabled) {
      task_start = std::chrono::steady_clock::now();
    }
    try {
      region.fn(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!region.first_error) region.first_error = std::current_exception();
    }
    if constexpr (metrics::kEnabled) {
      PoolMetrics& m = PoolMetrics::instance();
      m.tasks.add();
      m.task_seconds.observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        task_start)
              .count());
    }
    ++completed;
  }
  t_inside_pool_job = false;
  return completed;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (region_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      region = region_;
    }

    // A stale snapshot (the region finished while this thread was between
    // the wait and here) is harmless: its ticket counter is exhausted, so
    // the loop below exits at once with zero completions.
    const std::size_t completed = drain(*region);
    if (completed > 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      region->remaining -= completed;
      if (region->remaining == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_region(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  trace::Span span("pool.region");
  if constexpr (metrics::kEnabled) {
    PoolMetrics& m = PoolMetrics::instance();
    m.regions.add();
    m.active_regions.add(1);
  }
  auto region = std::make_shared<Region>();
  region->fn = fn;  // copied so stragglers can never observe a dead callable
  region->size = n;
  region->remaining = n;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    region_ = region;
    ++epoch_;
  }
  work_cv_.notify_all();

  // The caller drains tickets alongside the workers.
  const std::size_t completed = drain(*region);

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    region->remaining -= completed;
    done_cv_.wait(lock, [&] { return region->remaining == 0; });
    if (region_ == region) region_.reset();
    error = region->first_error;
  }
  if constexpr (metrics::kEnabled) {
    PoolMetrics& m = PoolMetrics::instance();
    m.active_regions.sub(1);
    m.queue_depth.set(0);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::for_each_index(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || concurrency_ == 1 || t_inside_pool_job) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  run_region(n, fn);
}

unsigned ThreadPool::default_concurrency() {
  if (const char* env = std::getenv("ETHSM_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<unsigned>(parsed);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_global_mutex);
  if (!g_global_pool) {
    g_global_pool = std::make_unique<ThreadPool>(default_concurrency());
  }
  return *g_global_pool;
}

void ThreadPool::set_global_concurrency(unsigned threads) {
  ETHSM_EXPECTS(threads > 0, "thread pool needs at least the caller thread");
  std::lock_guard<std::mutex> lock(g_global_mutex);
  g_global_pool = std::make_unique<ThreadPool>(threads);
}

}  // namespace ethsm::support
