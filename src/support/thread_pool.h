// Fixed-size thread pool for the sweep drivers (work-stealing-free).
//
// Design constraints, in order:
//  1. Determinism: callers get results keyed by job *index*; the pool never
//     reorders or merges anything itself. Combined with per-index seed
//     derivation (support/rng.h) every aggregate in this library is
//     bitwise-identical regardless of the thread count.
//  2. No oversubscription: one process-wide pool (ThreadPool::global()),
//     sized once from ETHSM_THREADS or std::thread::hardware_concurrency().
//  3. No deadlock on nesting: a parallel region entered from inside a pool
//     worker runs inline on that worker (the outer region already owns the
//     hardware).
//
// Scheduling is a single atomic ticket counter over [0, n): dynamic load
// balancing without work stealing or per-task queues. Which thread runs a
// job is nondeterministic; what the job computes is not.

#ifndef ETHSM_SUPPORT_THREAD_POOL_H
#define ETHSM_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ethsm::support {

class ThreadPool {
 public:
  /// Creates a pool with the given total concurrency (caller thread included,
  /// so `threads == 1` means "no worker threads, run everything inline").
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency of this pool (>= 1, caller thread included).
  [[nodiscard]] unsigned concurrency() const noexcept { return concurrency_; }

  /// Runs fn(i) exactly once for every i in [0, n), distributing indices over
  /// the pool plus the calling thread; blocks until all n jobs finished.
  /// The first exception thrown by any job is rethrown on the caller after
  /// the region drains. Reentrant calls (from inside a pool job) and pools
  /// with concurrency 1 execute serially inline. Concurrent top-level calls
  /// from different threads are safe: every region completes correctly, but
  /// the workers only assist the most recently published one (earlier
  /// regions drain on their callers alone).
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Concurrency the global pool is created with: the ETHSM_THREADS
  /// environment variable when set to a positive integer, otherwise
  /// std::thread::hardware_concurrency() (>= 1).
  [[nodiscard]] static unsigned default_concurrency();

  /// The process-wide pool used by parallel_for / parallel_map.
  [[nodiscard]] static ThreadPool& global();

  /// Recreates the global pool with a new concurrency. Intended for tests and
  /// benchmarks (determinism across thread counts); must not be called while
  /// a parallel region is running.
  static void set_global_concurrency(unsigned threads);

 private:
  /// One parallel region's state, heap-owned and shared between the caller
  /// and every worker that saw it. A worker descheduled with a stale Region
  /// snapshot finds its ticket counter exhausted and exits without touching
  /// any later region's accounting -- the shared_ptr keeps the job callable
  /// alive until the last such straggler lets go.
  struct Region {
    std::function<void(std::size_t)> fn;
    std::size_t size = 0;
    std::atomic<std::size_t> next_index{0};
    std::size_t remaining = 0;  ///< jobs not yet finished (under pool mutex_)
    std::exception_ptr first_error;  ///< under pool mutex_
  };

  void worker_loop();
  void run_region(std::size_t n, const std::function<void(std::size_t)>& fn);
  /// Claims and runs tickets of `region` on the current thread; returns the
  /// number of jobs it completed.
  std::size_t drain(Region& region);

  unsigned concurrency_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< signals a new region or shutdown
  std::condition_variable done_cv_;   ///< signals region completion
  std::shared_ptr<Region> region_;    ///< latest published region (under mutex_)
  std::uint64_t epoch_ = 0;           ///< bumped per region
  bool stop_ = false;
};

}  // namespace ethsm::support

#endif  // ETHSM_SUPPORT_THREAD_POOL_H
