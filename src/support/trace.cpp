#include "support/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace ethsm::support::trace {

namespace {

struct Event {
  std::string name;
  std::uint64_t ts_us;
  std::uint64_t dur_us;
};

/// Per-thread event sink. The mutex is uncontended on the recording path
/// (only this thread appends) and exists so stop() can safely drain buffers
/// belonging to threads that are still alive (pool workers between jobs).
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  int tid;
};

struct Global {
  std::atomic<bool> enabled{false};
  std::chrono::steady_clock::time_point t0;
  std::mutex mutex;  // guards buffers, path, next_tid
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::string path;
  int next_tid = 1;
};

Global& global() {
  static Global instance;
  return instance;
}

ThreadBuffer& local_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
    auto fresh = std::make_shared<ThreadBuffer>();
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    fresh->tid = g.next_tid++;
    g.buffers.push_back(fresh);
    return fresh;
  }();
  return *buffer;
}

/// Minimal JSON string escape; span names are ASCII identifiers and route
/// paths, but be safe about quotes/backslashes/control bytes anyway.
void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

bool enabled() noexcept {
  return global().enabled.load(std::memory_order_relaxed);
}

std::uint64_t now_us() noexcept {
  Global& g = global();
  if (!g.enabled.load(std::memory_order_relaxed)) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - g.t0)
          .count());
}

void start(const std::string& path) {
  Global& g = global();
  {
    std::lock_guard<std::mutex> lock(g.mutex);
    g.path = path;
    for (auto& buffer : g.buffers) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
  }
  g.t0 = std::chrono::steady_clock::now();
  g.enabled.store(true, std::memory_order_release);
}

void complete_event(const std::string& name, std::uint64_t begin_us,
                    std::uint64_t end_us) {
  if (!enabled()) return;
  ThreadBuffer& buffer = local_buffer();
  std::lock_guard<std::mutex> lock(buffer.mutex);
  buffer.events.push_back(
      {name, begin_us, end_us >= begin_us ? end_us - begin_us : 0});
}

void complete_event(const char* name, std::uint64_t begin_us,
                    std::uint64_t end_us) {
  complete_event(std::string(name), begin_us, end_us);
}

bool stop() {
  Global& g = global();
  // false without an active trace: nothing was flushed. Lets callers (and
  // tests) distinguish "no trace running" from a successful write.
  if (!g.enabled.exchange(false, std::memory_order_acq_rel)) return false;

  std::string path;
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  {
    std::lock_guard<std::mutex> lock(g.mutex);
    path = g.path;
    for (auto& buffer : g.buffers) {
      std::vector<Event> drained;
      {
        std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
        drained.swap(buffer->events);
      }
      for (const Event& event : drained) {
        if (!first) out += ",";
        first = false;
        out += "\n{\"name\": \"";
        append_escaped(out, event.name);
        out += "\", \"cat\": \"ethsm\", \"ph\": \"X\", \"ts\": " +
               std::to_string(event.ts_us) +
               ", \"dur\": " + std::to_string(event.dur_us) +
               ", \"pid\": 1, \"tid\": " + std::to_string(buffer->tid) + "}";
      }
    }
  }
  out += "\n]}\n";

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(out.data(), static_cast<std::streamsize>(out.size()));
  return static_cast<bool>(file.flush());
}

Span::Span(std::string name) {
  if (!enabled()) return;
  name_ = std::move(name);
  begin_us_ = now_us();
  active_ = true;
}

Span::Span(const char* name) : Span(std::string(name)) {}

Span::~Span() {
  if (!active_) return;
  complete_event(name_, begin_us_, now_us());
}

}  // namespace ethsm::support::trace
