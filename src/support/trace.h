// Span-based tracer emitting Chrome trace-event JSON ("Trace Event Format",
// complete events, ph == "X"), loadable in Perfetto / chrome://tracing.
// Enabled at runtime by `ethsm run|serve|orchestrate --trace FILE`; when
// disabled (the default) a Span is one relaxed atomic load and nothing is
// recorded, so tracing obeys the same write-only-tap contract as metrics.
//
// Threading model: each thread appends complete events to a thread-local
// buffer registered once in a global list; buffers carry a small mutex that
// is only contended at stop() time, when the writer merges every buffer and
// renders `{"traceEvents": [...]}`. Spans record wall time from a steady
// clock anchored at start(), in integer microseconds (the format's unit).
#pragma once

#include <cstdint>
#include <string>

namespace ethsm::support::trace {

/// True between start() and stop(). One relaxed load; safe on hot paths.
bool enabled() noexcept;

/// Arm the tracer: clear previously collected events, anchor t0, remember
/// `path` as the output file for stop(). Not reentrant with itself.
void start(const std::string& path);

/// Disarm, merge every thread's buffer and write the trace file remembered
/// by start(). True when a trace was active and its file was written; false
/// when the tracer was never armed or the file cannot be written (the
/// tracer is disarmed either way).
bool stop();

/// Current trace timestamp in microseconds since start(); 0 when disarmed.
std::uint64_t now_us() noexcept;

/// Record one complete event directly (begin timestamp taken by the caller
/// via now_us()). Prefer Span below; this exists for call sites whose scope
/// does not nest cleanly.
void complete_event(const char* name, std::uint64_t begin_us,
                    std::uint64_t end_us);
void complete_event(const std::string& name, std::uint64_t begin_us,
                    std::uint64_t end_us);

/// RAII span: records a complete event covering its lifetime when tracing
/// is armed at construction. The name is copied, so dynamic names (route
/// paths, study-cell names) are fine.
class Span {
 public:
  explicit Span(const char* name);
  explicit Span(std::string name);
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

 private:
  std::string name_;
  std::uint64_t begin_us_ = 0;
  bool active_ = false;
};

}  // namespace ethsm::support::trace
