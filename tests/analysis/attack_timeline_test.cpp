#include "analysis/attack_timeline.h"

#include <gtest/gtest.h>

#include "sim/retarget_sim.h"

namespace ethsm::analysis {
namespace {

const auto kByz = rewards::RewardConfig::ethereum_byzantium();

TEST(AttackTimeline, AttackBleedsInitiallyEvenAboveThreshold) {
  // alpha = 0.3 is far above the scenario-1 threshold (0.054), yet phase 1
  // still pays less than honest mining: withheld blocks cost now, the
  // difficulty drop pays later.
  const auto t = compute_attack_timeline({0.3, 0.5}, kByz,
                                         Scenario::regular_rate_one);
  EXPECT_GT(t.initial_bleed_rate(), 0.0);
  EXPECT_GT(t.steady_gain_rate(), 0.0);
  EXPECT_LT(t.phase1_reward_rate, 0.3);
  EXPECT_GT(t.phase2_reward_rate, 0.3);
}

TEST(AttackTimeline, GammaOneNeverBleeds) {
  // At gamma = 1 the pool keeps every block it mines (rsb = alpha) AND
  // pockets nephew rewards for referencing honest uncles, so phase 1 is
  // already profitable: the bleed rate is non-positive.
  const auto t = compute_attack_timeline({0.3, 1.0}, kByz,
                                         Scenario::regular_rate_one);
  EXPECT_LE(t.initial_bleed_rate(), 0.0);
  EXPECT_GE(t.phase1_reward_rate, 0.3);
  const auto breakeven = t.breakeven_time(1000.0);
  ASSERT_TRUE(breakeven.has_value());
  EXPECT_NEAR(*breakeven, 0.0, 1e-9);
}

TEST(AttackTimeline, BelowThresholdNeverBreaksEven) {
  // alpha = 0.10 under EIP100 (threshold 0.274): permanent loss.
  const auto t = compute_attack_timeline(
      {0.10, 0.5}, kByz, Scenario::regular_and_uncle_rate_one);
  EXPECT_LT(t.steady_gain_rate(), 0.0);
  EXPECT_FALSE(t.breakeven_time(100.0).has_value());
}

TEST(AttackTimeline, BreakevenScalesLinearlyWithPhase1) {
  const auto t = compute_attack_timeline({0.3, 0.5}, kByz,
                                         Scenario::regular_rate_one);
  const auto b1 = t.breakeven_time(100.0);
  const auto b2 = t.breakeven_time(200.0);
  ASSERT_TRUE(b1 && b2);
  EXPECT_NEAR(*b2, 2.0 * *b1, 1e-9);
}

TEST(AttackTimeline, Eip100MakesTheAttackSlowerToRepay) {
  // Same attack, two difficulty regimes: EIP100's phase-2 gain is smaller,
  // so breakeven takes longer (or never happens).
  const auto s1 = compute_attack_timeline({0.35, 0.5}, kByz,
                                          Scenario::regular_rate_one);
  const auto s2 = compute_attack_timeline(
      {0.35, 0.5}, kByz, Scenario::regular_and_uncle_rate_one);
  const auto b1 = s1.breakeven_time(100.0);
  const auto b2 = s2.breakeven_time(100.0);
  ASSERT_TRUE(b1.has_value());
  ASSERT_TRUE(b2.has_value());  // 0.35 is above both thresholds
  EXPECT_GT(*b2, *b1);
}

TEST(AttackTimeline, RejectsNegativePhase1) {
  const auto t = compute_attack_timeline({0.3, 0.5}, kByz,
                                         Scenario::regular_rate_one);
  EXPECT_THROW((void)t.breakeven_time(-1.0), std::invalid_argument);
}

TEST(AttackTimeline, Phase1RateMatchesRetargetSimulatorsFirstEpoch) {
  // Cross-validation: the retarget simulator starts at the honest-calibrated
  // difficulty, so its first epoch measures phase 1 directly.
  const auto t = compute_attack_timeline({0.3, 0.5}, kByz,
                                         Scenario::regular_rate_one);
  sim::RetargetConfig config;
  config.base.alpha = 0.3;
  config.base.gamma = 0.5;
  config.base.seed = 4242;
  config.controller.scenario = sim::Scenario::regular_rate_one;
  config.epoch_blocks = 2000;  // long first epoch for a tight estimate
  config.epochs = 2;
  const auto result = sim::run_retarget_simulation(config);
  EXPECT_NEAR(result.epochs.front().pool_reward_rate, t.phase1_reward_rate,
              0.02);
}

TEST(AttackTimeline, Phase2RateMatchesRetargetSimulatorsSteadyState) {
  const auto t = compute_attack_timeline({0.3, 0.5}, kByz,
                                         Scenario::regular_rate_one);
  sim::RetargetConfig config;
  config.base.alpha = 0.3;
  config.base.gamma = 0.5;
  config.base.seed = 4243;
  config.controller.scenario = sim::Scenario::regular_rate_one;
  config.epoch_blocks = 500;
  config.epochs = 50;
  const auto result = sim::run_retarget_simulation(config);
  EXPECT_NEAR(result.steady_pool_reward_rate, t.phase2_reward_rate, 0.015);
}

}  // namespace
}  // namespace ethsm::analysis
