#include "analysis/bitcoin_es.h"

#include <gtest/gtest.h>

#include "analysis/revenue.h"

namespace ethsm::analysis {
namespace {

TEST(EyalSirer, ThresholdLandmarks) {
  EXPECT_NEAR(eyal_sirer_threshold(0.0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(eyal_sirer_threshold(0.5), 0.25, 1e-12);  // the famous 25%
  EXPECT_NEAR(eyal_sirer_threshold(1.0), 0.0, 1e-12);
}

TEST(EyalSirer, ThresholdMonotoneInGamma) {
  double previous = 1.0;
  for (double g = 0.0; g <= 1.0; g += 0.1) {
    const double t = eyal_sirer_threshold(g);
    EXPECT_LT(t, previous);
    previous = t;
  }
}

TEST(EyalSirer, RevenueIsZeroAtZeroAlpha) {
  EXPECT_DOUBLE_EQ(eyal_sirer_revenue(0.0, 0.5), 0.0);
}

TEST(EyalSirer, RevenueExceedsAlphaAboveThreshold) {
  for (double gamma : {0.0, 0.5}) {
    const double t = eyal_sirer_threshold(gamma);
    EXPECT_LT(eyal_sirer_revenue(t - 0.03, gamma), t - 0.03);
    EXPECT_GT(eyal_sirer_revenue(t + 0.03, gamma), t + 0.03);
  }
}

TEST(EyalSirer, RejectsOutOfRangeInputs) {
  EXPECT_THROW(eyal_sirer_revenue(0.6, 0.5), std::invalid_argument);
  EXPECT_THROW(eyal_sirer_revenue(0.3, 1.5), std::invalid_argument);
  EXPECT_THROW(eyal_sirer_threshold(-0.1), std::invalid_argument);
}

class EsEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(EsEquivalenceTest, MarkovPipelineWithBitcoinRulesMatchesClosedForm) {
  // Running the full Ethereum analysis with Ku = Kn = 0 must collapse to the
  // Eyal–Sirer relative-revenue formula: the pool's share of static rewards.
  const auto [alpha, gamma] = GetParam();
  const auto r = compute_revenue(markov::MiningParams{alpha, gamma},
                                 rewards::RewardConfig::bitcoin(), 80);
  const double share = r.pool_total() / (r.pool_total() + r.honest_total());
  EXPECT_NEAR(share, eyal_sirer_revenue(alpha, gamma), 2e-6)
      << "alpha=" << alpha << " gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(
    AlphaGammaGrid, EsEquivalenceTest,
    ::testing::Combine(::testing::Values(0.1, 0.2, 0.3, 0.4),
                       ::testing::Values(0.3, 0.5, 0.8)),
    [](const auto& info) {
      return "a" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_g" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

}  // namespace
}  // namespace ethsm::analysis
