// Golden-figure regression suite: pins the paper-figure series (Fig. 8/9
// revenue points, Fig. 10 thresholds, Table II uncle distances) against
// checked-in reference values with explicit tolerances, so numerical
// refactors (solver changes, truncation tweaks, reorderings) cannot silently
// drift the reproduced results. The reference values were produced by this
// repository's own Markov pipeline and cross-checked against the paper's
// reported numbers (Niu & Feng, ICDCS 2019) and, where closed forms exist
// (Eq. (3)-(5) here; cf. Grunspan & Perez-Marco, arXiv:1904.13330, for the
// independent closed-form treatment of Ethereum selfish mining), against
// analytic values at tight tolerance.
//
// Tolerances, by family:
//   * closed forms              1e-12  (pure arithmetic)
//   * Markov revenue rates      5e-6   (power-iteration + truncation slack)
//   * bisection thresholds      5e-5   (search tolerance 1e-6 plus solver)
//   * Table II distributions    5e-6
// A failure here means the numbers moved -- decide deliberately whether the
// new values are more faithful, and regenerate the constants if so.

#include <gtest/gtest.h>

#include <array>

#include "analysis/bitcoin_es.h"
#include "analysis/revenue.h"
#include "analysis/sweep.h"
#include "analysis/uncle_distance.h"

namespace ethsm {
namespace {

constexpr double kClosedFormTol = 1e-12;
constexpr double kRevenueTol = 5e-6;
constexpr double kThresholdTol = 5e-5;
constexpr double kDistributionTol = 5e-6;

struct Fig8Golden {
  double alpha;
  double pool_revenue;
  double honest_revenue;
  double total_revenue;
  double uncle_rate;
};

// Fig. 8 setup: gamma = 0.5, flat Ku = 4/8, scenario 1, max_lead 80 (the
// revenue_curve defaults). One row per grid point.
constexpr std::array<Fig8Golden, 19> kFig8 = {{
    {0.000, 0.000000000000, 1.000000000000, 1.000000000000, 0.000000000000},
    {0.025, 0.019832590377, 0.993128780987, 1.012961371364, 0.024397875509},
    {0.050, 0.041717597539, 0.983611806173, 1.025329403712, 0.047678877576},
    {0.075, 0.065507489180, 0.971661932806, 1.037169421986, 0.069965970798},
    {0.100, 0.091082551370, 0.957459518170, 1.048542069540, 0.091373307369},
    {0.125, 0.118350591317, 0.941153948479, 1.059504539796, 0.112008545498},
    {0.150, 0.147247941475, 0.922863760716, 1.070111702191, 0.131974968830},
    {0.175, 0.177742091702, 0.902674977011, 1.080417068713, 0.151373305812},
    {0.200, 0.209836514074, 0.880636918918, 1.090473432993, 0.170302932692},
    {0.225, 0.243578628737, 0.856754149293, 1.100332778029, 0.188861699820},
    {0.250, 0.279072509644, 0.830972048409, 1.110044558053, 0.207142697512},
    {0.275, 0.316499084054, 0.803151343534, 1.119650427588, 0.225224334283},
    {0.300, 0.356148729462, 0.773022546874, 1.129171276337, 0.243145931928},
    {0.325, 0.398475388308, 0.740102155765, 1.138577544073, 0.260851847667},
    {0.350, 0.444190103782, 0.703532486242, 1.147722590024, 0.278066051810},
    {0.375, 0.494431530054, 0.661760309072, 1.156191839126, 0.294008167767},
    {0.400, 0.551098929061, 0.611851464278, 1.162950393339, 0.306730152168},
    {0.425, 0.617563698938, 0.547909101214, 1.165472800151, 0.311478212049},
    {0.450, 0.700384806971, 0.457011369659, 1.157396176631, 0.296275156011},
}};

TEST(GoldenFig8, RevenueCurveMatchesCheckedInSeries) {
  const auto curve = analysis::revenue_curve(analysis::RevenueCurveOptions{});
  ASSERT_EQ(curve.size(), kFig8.size());
  for (std::size_t i = 0; i < kFig8.size(); ++i) {
    SCOPED_TRACE("alpha = " + std::to_string(kFig8[i].alpha));
    EXPECT_NEAR(curve[i].alpha, kFig8[i].alpha, 1e-12);
    EXPECT_NEAR(curve[i].pool_revenue, kFig8[i].pool_revenue, kRevenueTol);
    EXPECT_NEAR(curve[i].honest_revenue, kFig8[i].honest_revenue, kRevenueTol);
    EXPECT_NEAR(curve[i].total_revenue, kFig8[i].total_revenue, kRevenueTol);
    EXPECT_NEAR(curve[i].uncle_rate, kFig8[i].uncle_rate, kRevenueTol);
  }
}

TEST(GoldenFig9, LandmarkTotalsAndPoolSeries) {
  // "soars to 135%": flat 7/8 paid regardless of distance (horizon 100).
  {
    analysis::RevenueCurveOptions opt;
    opt.rewards = rewards::RewardConfig::ethereum_flat(7.0 / 8.0, 100);
    opt.alphas = {0.45};
    opt.max_lead = 300;
    const auto curve = analysis::revenue_curve(opt);
    EXPECT_NEAR(curve[0].total_revenue, 1.347579737453, kRevenueTol);
  }
  // Ablation: Ethereum's structural distance cap of 6 tempers it.
  {
    analysis::RevenueCurveOptions opt;
    opt.rewards = rewards::RewardConfig::ethereum_flat(7.0 / 8.0);
    opt.alphas = {0.45};
    opt.max_lead = 300;
    const auto curve = analysis::revenue_curve(opt);
    EXPECT_NEAR(curve[0].total_revenue, 1.268499332935, kRevenueTol);
  }
  // Pool/total at alpha = 0.3 for the three flat schedules (max_lead 120).
  const struct {
    double ku;
    double pool;
    double total;
  } kFig9At03[] = {
      {2.0 / 8.0, 0.342737269456, 1.068641453382},
      {4.0 / 8.0, 0.356174198158, 1.129656078611},
      {7.0 / 8.0, 0.376329591211, 1.221178016453},
  };
  for (const auto& g : kFig9At03) {
    SCOPED_TRACE("ku = " + std::to_string(g.ku));
    analysis::RevenueCurveOptions opt;
    opt.rewards = rewards::RewardConfig::ethereum_flat(g.ku, 100);
    opt.alphas = {0.3};
    opt.max_lead = 120;
    const auto curve = analysis::revenue_curve(opt);
    EXPECT_NEAR(curve[0].pool_revenue, g.pool, kRevenueTol);
    EXPECT_NEAR(curve[0].total_revenue, g.total, kRevenueTol);
  }
}

struct Fig10Golden {
  double gamma;
  double bitcoin;
  double scenario1;
  double scenario2;
};

// Byzantium Ku(.), threshold search tolerance 1e-6, max_lead 60.
constexpr std::array<Fig10Golden, 5> kFig10 = {{
    {0.00, 0.333333333333, 0.097752459335, 0.286478704071},
    {0.25, 0.300000000000, 0.077020246506, 0.282352852631},
    {0.50, 0.250000000000, 0.054088787079, 0.274290855026},
    {0.75, 0.166666666667, 0.028576763916, 0.251852248001},
    {1.00, 0.000000000000, 0.000100000000, 0.000100000000},
}};

TEST(GoldenFig10, ThresholdCurveMatchesCheckedInSeries) {
  analysis::ThresholdCurveOptions opt;
  opt.gammas = {0.0, 0.25, 0.5, 0.75, 1.0};
  opt.threshold.tolerance = 1e-6;
  const auto curve = analysis::threshold_curve(opt);
  ASSERT_EQ(curve.size(), kFig10.size());
  for (std::size_t i = 0; i < kFig10.size(); ++i) {
    SCOPED_TRACE("gamma = " + std::to_string(kFig10[i].gamma));
    // The Bitcoin column is the Eyal-Sirer closed form (1-g)/(3-2g): exact.
    EXPECT_NEAR(curve[i].bitcoin, kFig10[i].bitcoin, kClosedFormTol);
    ASSERT_TRUE(curve[i].ethereum_scenario1.has_value());
    ASSERT_TRUE(curve[i].ethereum_scenario2.has_value());
    EXPECT_NEAR(*curve[i].ethereum_scenario1, kFig10[i].scenario1,
                kThresholdTol);
    EXPECT_NEAR(*curve[i].ethereum_scenario2, kFig10[i].scenario2,
                kThresholdTol);
  }
}

struct Table2Golden {
  double alpha;
  double expectation;
  std::array<double, 7> fraction;  // index 0 unused
};

// gamma = 0.5, max_lead 120 (the bench_table2 setup).
const std::array<Table2Golden, 2> kTable2 = {{
    {0.30,
     1.747908255920,
     {0.0, 0.527022831372, 0.295364443956, 0.110947820545, 0.042857983603,
      0.016960382555, 0.006846537970}},
    {0.45,
     2.726486877420,
     {0.0, 0.284137180571, 0.248508693979, 0.170858836667, 0.125183687353,
      0.095848559098, 0.075463042331}},
}};

TEST(GoldenTable2, UncleDistanceDistributionsMatchCheckedInSeries) {
  for (const auto& golden : kTable2) {
    SCOPED_TRACE("alpha = " + std::to_string(golden.alpha));
    const auto d = analysis::honest_uncle_distance_distribution(
        {golden.alpha, 0.5}, 120);
    EXPECT_NEAR(d.expectation, golden.expectation, kDistributionTol);
    for (int i = 1; i <= 6; ++i) {
      SCOPED_TRACE("distance " + std::to_string(i));
      EXPECT_NEAR(d.fraction[i], golden.fraction[i], kDistributionTol);
    }
  }
}

TEST(GoldenClosedForms, MarkovRatesAgreeWithAnalyticFormulas) {
  // Independent cross-check: the integrated Appendix-B reward flows must
  // reproduce the paper's closed forms Eq. (3)-(5) (the same quantities
  // Grunspan & Perez-Marco derive in closed form for Ethereum) far below the
  // golden tolerance.
  for (double alpha : {0.1, 0.25, 0.4}) {
    for (double gamma : {0.0, 0.5, 1.0}) {
      SCOPED_TRACE("alpha=" + std::to_string(alpha) +
                   " gamma=" + std::to_string(gamma));
      // The small-gamma / large-alpha corner needs a deep truncation for the
      // stationary tail to drop below the comparison tolerance; use the
      // library's own advisor rather than a fixed depth.
      const markov::MiningParams params{alpha, gamma};
      const auto r = analysis::compute_revenue(
          params, rewards::RewardConfig::ethereum_byzantium(),
          analysis::recommended_max_lead(params));
      EXPECT_NEAR(r.pool_static,
                  analysis::pool_static_rate_closed_form(alpha, gamma), 1e-8);
      EXPECT_NEAR(r.honest_static,
                  analysis::honest_static_rate_closed_form(alpha, gamma), 1e-8);
      EXPECT_NEAR(r.pool_uncle,
                  analysis::pool_uncle_rate_closed_form(alpha, gamma, 7.0 / 8.0),
                  1e-8);
    }
  }
  // Eyal-Sirer landmarks, exact: 1/3 at gamma 0 and 1/4 at gamma 1/2.
  EXPECT_NEAR(analysis::eyal_sirer_threshold(0.0), 1.0 / 3.0, kClosedFormTol);
  EXPECT_NEAR(analysis::eyal_sirer_threshold(0.5), 0.25, kClosedFormTol);
}

}  // namespace
}  // namespace ethsm
