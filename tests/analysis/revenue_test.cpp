#include "analysis/revenue.h"

#include <gtest/gtest.h>

#include "analysis/absolute_revenue.h"

namespace ethsm::analysis {
namespace {

class RevenueParamTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {
 protected:
  [[nodiscard]] RevenueBreakdown byzantium() const {
    const auto [alpha, gamma] = GetParam();
    return compute_revenue(markov::MiningParams{alpha, gamma},
                           rewards::RewardConfig::ethereum_byzantium(), 80);
  }
};

TEST_P(RevenueParamTest, PoolStaticMatchesEquation3) {
  const auto [alpha, gamma] = GetParam();
  const auto r = byzantium();
  EXPECT_NEAR(r.pool_static, pool_static_rate_closed_form(alpha, gamma), 2e-6);
}

TEST_P(RevenueParamTest, HonestStaticMatchesEquation4) {
  const auto [alpha, gamma] = GetParam();
  const auto r = byzantium();
  EXPECT_NEAR(r.honest_static, honest_static_rate_closed_form(alpha, gamma),
              2e-6);
}

TEST_P(RevenueParamTest, PoolUncleMatchesEquation5) {
  const auto [alpha, gamma] = GetParam();
  const auto r = byzantium();
  EXPECT_NEAR(r.pool_uncle,
              pool_uncle_rate_closed_form(alpha, gamma, 7.0 / 8.0), 2e-6);
}

TEST_P(RevenueParamTest, RegularRateEqualsStaticRewardRate) {
  // Ks = 1: the static reward rate IS the regular block rate.
  const auto r = byzantium();
  EXPECT_NEAR(r.regular_rate, r.pool_static + r.honest_static, 1e-12);
}

TEST_P(RevenueParamTest, RegularRateAtMostOne) {
  const auto r = byzantium();
  EXPECT_LE(r.regular_rate, 1.0 + 1e-12);
  EXPECT_GT(r.regular_rate, 0.0);
}

TEST_P(RevenueParamTest, BlockConservation) {
  // Every mined block is regular, a referenced uncle, or plain stale; the
  // three rates sum to the block production rate 1.
  const auto [alpha, gamma] = GetParam();
  const markov::StateSpace space(80);
  const markov::TransitionModel model(space, {alpha, gamma});
  const auto pi = markov::solve_stationary(model);
  const auto config = rewards::RewardConfig::ethereum_byzantium();
  double regular = 0.0, uncle = 0.0, rate_total = 0.0;
  for (const auto& t : model.transitions()) {
    const auto f = expected_rewards(space.state_at(t.from), t.kind,
                                    model.params(), config);
    regular += pi[t.from] * t.rate * f.regular_probability;
    uncle += pi[t.from] * t.rate * f.referenced_uncle_probability;
    rate_total += pi[t.from] * t.rate;
  }
  EXPECT_NEAR(rate_total, 1.0, 1e-10);
  EXPECT_LE(regular + uncle, 1.0 + 1e-10);
}

TEST_P(RevenueParamTest, UncleRewardRateConsistentWithUncleRate) {
  // Total uncle+nephew payout can't exceed what max-schedule uncles allow.
  const auto r = byzantium();
  const double uncle_payout = r.pool_uncle + r.honest_uncle;
  EXPECT_LE(uncle_payout, r.referenced_uncle_rate * (7.0 / 8.0) + 1e-12);
  const double nephew_payout = r.pool_nephew + r.honest_nephew;
  EXPECT_NEAR(nephew_payout, r.referenced_uncle_rate / 32.0, 1e-10);
}

TEST_P(RevenueParamTest, ScenarioTwoRevenueIsLower) {
  const auto r = byzantium();
  if (r.referenced_uncle_rate > 1e-12) {
    EXPECT_LT(pool_absolute_revenue(r, Scenario::regular_and_uncle_rate_one),
              pool_absolute_revenue(r, Scenario::regular_rate_one));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaGammaGrid, RevenueParamTest,
    ::testing::Combine(::testing::Values(0.05, 0.15, 0.25, 0.35, 0.45),
                       ::testing::Values(0.3, 0.5, 0.8, 1.0)),
    [](const auto& info) {
      return "a" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_g" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(Revenue, AlphaZeroGivesEverythingToHonest) {
  const auto r = compute_revenue(markov::MiningParams{0.0, 0.5},
                                 rewards::RewardConfig::ethereum_byzantium());
  EXPECT_NEAR(r.honest_static, 1.0, 1e-10);
  EXPECT_NEAR(r.pool_total(), 0.0, 1e-12);
  EXPECT_NEAR(r.referenced_uncle_rate, 0.0, 1e-12);
}

TEST(Revenue, GammaOneEliminatesPoolUncles) {
  // Remark on rsu: at gamma = 1 the pool's withheld block always wins the
  // match race, so the pool never produces uncles.
  const auto r = compute_revenue(markov::MiningParams{0.3, 1.0},
                                 rewards::RewardConfig::ethereum_byzantium());
  EXPECT_NEAR(r.pool_uncle, 0.0, 1e-12);
  EXPECT_NEAR(r.pool_static, 0.3, 1e-9);  // rsb = alpha at gamma = 1
}

TEST(Revenue, RemarkFiveUncleCostReducedVsBitcoin) {
  // Remark 5: uncle rewards reduce the cost of selfish mining. The pool's
  // total under Byzantium strictly exceeds its total under Bitcoin rules for
  // the same (alpha, gamma) with gamma < 1.
  const markov::MiningParams p{0.25, 0.5};
  const auto eth =
      compute_revenue(p, rewards::RewardConfig::ethereum_byzantium());
  const auto btc = compute_revenue(p, rewards::RewardConfig::bitcoin());
  EXPECT_GT(eth.pool_total(), btc.pool_total());
  EXPECT_DOUBLE_EQ(btc.pool_uncle, 0.0);
}

TEST(Revenue, FlatSchedulesOrderedByValue) {
  const markov::MiningParams p{0.3, 0.5};
  double previous = -1.0;
  for (double ku : {2.0 / 8, 4.0 / 8, 7.0 / 8}) {
    const auto r = compute_revenue(p, rewards::RewardConfig::ethereum_flat(ku));
    EXPECT_GT(r.pool_total(), previous);
    previous = r.pool_total();
  }
}

TEST(Revenue, ComputeRevenueFromPrebuiltChainMatchesConvenience) {
  const markov::MiningParams p{0.3, 0.5};
  const markov::StateSpace space(80);
  const markov::TransitionModel model(space, p);
  const auto pi = markov::solve_stationary(model);
  const auto cfg = rewards::RewardConfig::ethereum_byzantium();
  const auto a = compute_revenue(pi, model, cfg);
  const auto b = compute_revenue(p, cfg, 80);
  EXPECT_DOUBLE_EQ(a.pool_static, b.pool_static);
  EXPECT_DOUBLE_EQ(a.honest_nephew, b.honest_nephew);
}

TEST(Revenue, RecommendedMaxLeadExpandsInTheCorner) {
  EXPECT_EQ(recommended_max_lead({0.3, 0.5}), 80);
  EXPECT_EQ(recommended_max_lead({0.45, 0.5}), 80);
  EXPECT_GT(recommended_max_lead({0.45, 0.0}), 200);
  EXPECT_LE(recommended_max_lead({0.45, 0.0}), 600);
  EXPECT_EQ(recommended_max_lead({0.0, 0.0}), 8);
}

TEST(AbsoluteRevenue, HonestBaselineEarnsAlpha) {
  // A protocol-following pool earns its hash share: with alpha mass of the
  // rewards and no selfish mining the normalized revenue is alpha. Checked
  // through the analysis at gamma = 1 where rsb = alpha and no uncles arise
  // from the pool side... (full honest baseline is a simulator test).
  const auto r = compute_revenue(markov::MiningParams{0.3, 1.0},
                                 rewards::RewardConfig::ethereum_byzantium());
  EXPECT_NEAR(pool_absolute_revenue(r, Scenario::regular_rate_one),
              r.pool_total() / r.regular_rate, 1e-15);
}

}  // namespace
}  // namespace ethsm::analysis
