#include "analysis/reward_cases.h"

#include <gtest/gtest.h>

namespace ethsm::analysis {
namespace {

using chain::MinerClass;
using markov::MiningParams;
using markov::State;
using markov::TransitionKind;

const rewards::RewardConfig kByz = rewards::RewardConfig::ethereum_byzantium();
const MiningParams kParams{0.3, 0.5};

TEST(HonestNephewProbability, MatchesAppendixBFormula) {
  const double a = kParams.alpha;
  const double b = kParams.beta();
  const double g = kParams.gamma;
  EXPECT_NEAR(honest_nephew_probability(kParams, 2),
              b * (1 + a * b * (1 - g)), 1e-15);
  EXPECT_NEAR(honest_nephew_probability(kParams, 5),
              b * b * b * b * (1 + a * b * (1 - g)), 1e-15);
}

TEST(HonestNephewProbability, IsAProbability) {
  for (double alpha : {0.05, 0.25, 0.45}) {
    for (double gamma : {0.0, 0.5, 1.0}) {
      for (int lead = 2; lead <= 10; ++lead) {
        const double p =
            honest_nephew_probability(MiningParams{alpha, gamma}, lead);
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
      }
    }
  }
}

TEST(RewardCases, Case1HonestStaticOnly) {
  const auto f = expected_rewards(State{0, 0},
                                  TransitionKind::honest_at_consensus, kParams,
                                  kByz);
  EXPECT_DOUBLE_EQ(f.honest_static, 1.0);
  EXPECT_DOUBLE_EQ(f.pool_total(), 0.0);
  EXPECT_DOUBLE_EQ(f.regular_probability, 1.0);
  EXPECT_DOUBLE_EQ(f.referenced_uncle_probability, 0.0);
}

TEST(RewardCases, Case2SplitsRegularAndUncle) {
  const double a = kParams.alpha;
  const double b = kParams.beta();
  const double g = kParams.gamma;
  const auto f = expected_rewards(State{0, 0}, TransitionKind::pool_first_lead,
                                  kParams, kByz);
  const double p_regular = a + a * b + b * b * g;
  const double p_uncle = b * b * (1 - g);
  EXPECT_NEAR(f.regular_probability + f.referenced_uncle_probability, 1.0,
              1e-15);
  EXPECT_NEAR(f.pool_static, p_regular, 1e-15);
  EXPECT_NEAR(f.pool_uncle, p_uncle * 7.0 / 8.0, 1e-15);
  // The nephew of the pool's lost block is always honest (distance 1).
  EXPECT_NEAR(f.honest_nephew, p_uncle / 32.0, 1e-15);
  EXPECT_DOUBLE_EQ(f.pool_nephew, 0.0);
  EXPECT_EQ(f.uncle_distance, 1);
  EXPECT_EQ(f.target_owner, MinerClass::selfish);
}

TEST(RewardCases, Case3And6PoolCertainRegular) {
  for (const State s : {State{1, 0}, State{4, 0}, State{5, 2}}) {
    const auto f = expected_rewards(s, TransitionKind::pool_extend_lead,
                                    kParams, kByz);
    EXPECT_DOUBLE_EQ(f.pool_static, 1.0);
    EXPECT_DOUBLE_EQ(f.regular_probability, 1.0);
    EXPECT_DOUBLE_EQ(f.honest_total(), 0.0);
  }
}

TEST(RewardCases, Case4NephewSplit) {
  const double a = kParams.alpha;
  const double b = kParams.beta();
  const double g = kParams.gamma;
  const auto f = expected_rewards(State{1, 0}, TransitionKind::honest_match,
                                  kParams, kByz);
  EXPECT_NEAR(f.honest_static, b * (1 - g), 1e-15);
  EXPECT_NEAR(f.honest_uncle, (a + b * g) * 7.0 / 8.0, 1e-15);
  // Pool wins the nephew with probability a, honest with bg (Appendix B).
  EXPECT_NEAR(f.pool_nephew, a / 32.0, 1e-15);
  EXPECT_NEAR(f.honest_nephew, b * g / 32.0, 1e-15);
}

TEST(RewardCases, Case5BothRegular) {
  const auto fp = expected_rewards(State{1, 1}, TransitionKind::pool_win_tie,
                                   kParams, kByz);
  EXPECT_DOUBLE_EQ(fp.pool_static, 1.0);
  const auto fh = expected_rewards(State{1, 1},
                                   TransitionKind::honest_resolve_tie, kParams,
                                   kByz);
  EXPECT_DOUBLE_EQ(fh.honest_static, 1.0);
}

TEST(RewardCases, Case9UncleAtDistanceTwo) {
  const auto f = expected_rewards(
      State{2, 0}, TransitionKind::honest_resolve_lead2_nofork, kParams, kByz);
  EXPECT_EQ(f.uncle_distance, 2);
  EXPECT_DOUBLE_EQ(f.referenced_uncle_probability, 1.0);
  EXPECT_NEAR(f.honest_uncle, 6.0 / 8.0, 1e-15);
  const double h = honest_nephew_probability(kParams, 2);
  EXPECT_NEAR(f.honest_nephew, h / 32.0, 1e-15);
  EXPECT_NEAR(f.pool_nephew, (1 - h) / 32.0, 1e-15);
}

TEST(RewardCases, Case8MatchesCase9) {
  const auto f8 = expected_rewards(
      State{5, 3}, TransitionKind::honest_resolve_lead2_prefix, kParams, kByz);
  const auto f9 = expected_rewards(
      State{2, 0}, TransitionKind::honest_resolve_lead2_nofork, kParams, kByz);
  EXPECT_DOUBLE_EQ(f8.honest_uncle, f9.honest_uncle);
  EXPECT_DOUBLE_EQ(f8.pool_nephew, f9.pool_nephew);
  EXPECT_EQ(f8.uncle_distance, 2);
}

TEST(RewardCases, Case10DistanceEqualsLead) {
  const auto f = expected_rewards(State{4, 0},
                                  TransitionKind::honest_first_fork, kParams,
                                  kByz);
  EXPECT_EQ(f.uncle_distance, 4);
  EXPECT_NEAR(f.honest_uncle, 4.0 / 8.0, 1e-15);  // Ku(4) = (8-4)/8
  const double h = honest_nephew_probability(kParams, 4);
  EXPECT_NEAR(f.honest_nephew, h / 32.0, 1e-15);
}

TEST(RewardCases, Case7DistanceEqualsLeadMinusFork) {
  const auto f = expected_rewards(State{7, 3},
                                  TransitionKind::honest_prefix_reroot,
                                  kParams, kByz);
  EXPECT_EQ(f.uncle_distance, 4);  // i - j
  EXPECT_NEAR(f.honest_uncle, 4.0 / 8.0, 1e-15);
}

TEST(RewardCases, Cases11And12PayNothing) {
  const auto f11 = expected_rewards(State{6, 2},
                                    TransitionKind::honest_fork_extend,
                                    kParams, kByz);
  EXPECT_DOUBLE_EQ(f11.pool_total() + f11.honest_total(), 0.0);
  EXPECT_DOUBLE_EQ(f11.referenced_uncle_probability, 0.0);
  const auto f12 = expected_rewards(
      State{4, 2}, TransitionKind::honest_resolve_lead2_fork, kParams, kByz);
  EXPECT_DOUBLE_EQ(f12.pool_total() + f12.honest_total(), 0.0);
}

TEST(RewardCases, BeyondHorizonBecomesPlainStale) {
  // A lead-9 first fork locks distance 9 > 6: never referenced, no rewards.
  const auto f = expected_rewards(State{9, 0},
                                  TransitionKind::honest_first_fork, kParams,
                                  kByz);
  EXPECT_EQ(f.uncle_distance, 9);
  EXPECT_DOUBLE_EQ(f.referenced_uncle_probability, 0.0);
  EXPECT_DOUBLE_EQ(f.honest_uncle, 0.0);
  EXPECT_DOUBLE_EQ(f.pool_nephew + f.honest_nephew, 0.0);
}

TEST(RewardCases, BitcoinConfigZeroesUncleEconomy) {
  const auto btc = rewards::RewardConfig::bitcoin();
  for (const auto kind :
       {TransitionKind::pool_first_lead, TransitionKind::honest_match,
        TransitionKind::honest_first_fork}) {
    const State s = kind == TransitionKind::honest_first_fork ? State{3, 0}
                    : kind == TransitionKind::honest_match    ? State{1, 0}
                                                              : State{0, 0};
    const auto f = expected_rewards(s, kind, kParams, btc);
    EXPECT_DOUBLE_EQ(f.pool_uncle, 0.0);
    EXPECT_DOUBLE_EQ(f.honest_uncle, 0.0);
    EXPECT_DOUBLE_EQ(f.pool_nephew, 0.0);
    EXPECT_DOUBLE_EQ(f.honest_nephew, 0.0);
    EXPECT_DOUBLE_EQ(f.referenced_uncle_probability, 0.0);
  }
}

TEST(RewardCases, FlatScheduleChangesUncleValueNotStructure) {
  const auto flat = rewards::RewardConfig::ethereum_flat(0.5);
  const auto f = expected_rewards(State{4, 0},
                                  TransitionKind::honest_first_fork, kParams,
                                  flat);
  EXPECT_NEAR(f.honest_uncle, 0.5, 1e-15);  // flat Ku regardless of d = 4
  EXPECT_EQ(f.uncle_distance, 4);
}

TEST(RewardCases, ExpectedRewardNeverExceedsMaxPayout) {
  // Per transition, total expected reward <= Ks + Ku(1) + Kn(1).
  const double cap = 1.0 + 7.0 / 8.0 + 1.0 / 32.0;
  for (double alpha : {0.1, 0.3, 0.45}) {
    for (double gamma : {0.0, 0.5, 1.0}) {
      const MiningParams p{alpha, gamma};
      markov::StateSpace space(20);
      markov::TransitionModel model(space, p);
      for (const auto& t : model.transitions()) {
        const auto f =
            expected_rewards(space.state_at(t.from), t.kind, p, kByz);
        EXPECT_LE(f.pool_total() + f.honest_total(), cap + 1e-12);
        EXPECT_GE(f.pool_total(), 0.0);
        EXPECT_GE(f.honest_total(), 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace ethsm::analysis
