// Driver-level resume/shard regression tests (the PR's acceptance criteria):
// an interrupted-then-resumed threshold_curve regeneration and a 4-way
// sharded revenue_curve regeneration must both produce bitwise-identical
// aggregates to fresh single-process runs, and corrupted/stale checkpoint
// data must be detected and recomputed rather than trusted. Suites are named
// Checkpoint* so `ctest -L checkpoint` selects them.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <stdexcept>
#include <vector>

#include "analysis/sweep.h"
#include "sim/delay_sim.h"
#include "sim/population_sim.h"
#include "sim/simulator.h"
#include "support/checkpoint.h"

namespace ethsm {
namespace {

namespace fs = std::filesystem;
using analysis::RevenueCurveOptions;
using analysis::RevenuePoint;
using analysis::ThresholdCurveOptions;
using analysis::ThresholdPoint;
using support::ShardSpec;
using support::SweepCheckpoint;
using support::SweepOutcome;

std::string temp_dir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::path(::testing::TempDir()) /
                       ("ethsm_sweep_" + tag + "_" + std::to_string(counter++));
  fs::remove_all(dir);
  return dir.string();
}

/// Small-but-real threshold sweep (two bisections per gamma).
ThresholdCurveOptions small_threshold_options() {
  ThresholdCurveOptions opt;
  opt.gammas = {0.0, 0.3, 0.5, 0.8, 1.0};
  opt.threshold.tolerance = 1e-4;
  opt.threshold.max_lead = 40;
  return opt;
}

/// Revenue sweep with Monte-Carlo cross-checks: exercises both checkpoint
/// layers (Markov points and per-run simulations).
RevenueCurveOptions small_revenue_options() {
  RevenueCurveOptions opt;
  opt.alphas = {0.0, 0.15, 0.3, 0.42};
  opt.max_lead = 40;
  opt.sim_runs = 2;
  opt.sim_blocks = 2'000;
  return opt;
}

void expect_identical(const ThresholdPoint& a, const ThresholdPoint& b) {
  EXPECT_EQ(a.gamma, b.gamma);
  EXPECT_EQ(a.bitcoin, b.bitcoin);
  EXPECT_EQ(a.ethereum_scenario1, b.ethereum_scenario1);
  EXPECT_EQ(a.ethereum_scenario2, b.ethereum_scenario2);
}

void expect_identical(const RevenuePoint& a, const RevenuePoint& b) {
  EXPECT_EQ(a.alpha, b.alpha);
  EXPECT_EQ(a.pool_revenue, b.pool_revenue);
  EXPECT_EQ(a.honest_revenue, b.honest_revenue);
  EXPECT_EQ(a.total_revenue, b.total_revenue);
  EXPECT_EQ(a.uncle_rate, b.uncle_rate);
  EXPECT_EQ(a.pool_revenue_sim, b.pool_revenue_sim);
  EXPECT_EQ(a.honest_revenue_sim, b.honest_revenue_sim);
  EXPECT_EQ(a.pool_revenue_sim_ci, b.pool_revenue_sim_ci);
  EXPECT_EQ(a.honest_revenue_sim_ci, b.honest_revenue_sim_ci);
}

TEST(CheckpointThresholdCurve, InterruptedThenResumedIsBitwiseIdentical) {
  auto opt = small_threshold_options();
  const auto fresh = analysis::threshold_curve(opt);

  opt.checkpoint.directory = temp_dir("threshold_resume");
  opt.checkpoint.max_new_jobs = 2;  // interrupt mid-grid
  SweepOutcome first;
  (void)analysis::threshold_curve(opt, &first);
  EXPECT_FALSE(first.complete());
  EXPECT_EQ(first.computed, 2u);

  opt.checkpoint.max_new_jobs = static_cast<std::size_t>(-1);
  SweepOutcome resumed_outcome;
  const auto resumed = analysis::threshold_curve(opt, &resumed_outcome);
  ASSERT_TRUE(resumed_outcome.complete());
  EXPECT_EQ(resumed_outcome.loaded, 2u);  // nothing recomputed
  ASSERT_EQ(resumed.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    expect_identical(resumed[i], fresh[i]);
  }
}

TEST(CheckpointRevenueCurve, FourWayShardMergeIsBitwiseIdentical) {
  auto opt = small_revenue_options();
  const auto fresh = analysis::revenue_curve(opt);

  opt.checkpoint.directory = temp_dir("revenue_shard4");
  for (std::uint32_t k = 0; k < 4; ++k) {
    opt.checkpoint.shard = ShardSpec{k, 4};
    SweepOutcome outcome;
    (void)analysis::revenue_curve(opt, &outcome);
  }
  // Merge run: whole sweep, everything satisfied from the four shard files.
  opt.checkpoint.shard = ShardSpec{};
  SweepOutcome merged_outcome;
  const auto merged = analysis::revenue_curve(opt, &merged_outcome);
  ASSERT_TRUE(merged_outcome.complete());
  EXPECT_EQ(merged_outcome.computed, 0u);
  ASSERT_EQ(merged.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    expect_identical(merged[i], fresh[i]);
  }
}

TEST(CheckpointShardMergeProperty, RandomSplitsEqualSingleProcessExactly) {
  // Property test over random (N, k) splits of a revenue_curve grid
  // (Markov layer only, to keep the grid wide and the test fast).
  RevenueCurveOptions opt;
  opt.alphas = analysis::fig8_alpha_grid();
  opt.max_lead = 30;
  const auto fresh = analysis::revenue_curve(opt);

  std::mt19937_64 rng(0xc0ffee);
  for (int trial = 0; trial < 3; ++trial) {
    const std::uint32_t n_shards =
        2 + static_cast<std::uint32_t>(rng() % 5);  // N in [2, 6]
    opt.checkpoint.directory =
        temp_dir("property_" + std::to_string(trial));
    // Run the shards in a random order to shake out order dependence.
    std::vector<std::uint32_t> order(n_shards);
    for (std::uint32_t k = 0; k < n_shards; ++k) order[k] = k;
    std::shuffle(order.begin(), order.end(), rng);
    for (std::uint32_t k : order) {
      opt.checkpoint.shard = ShardSpec{k, n_shards};
      SweepOutcome outcome;
      (void)analysis::revenue_curve(opt, &outcome);
    }
    opt.checkpoint.shard = ShardSpec{};
    SweepOutcome merged_outcome;
    const auto merged = analysis::revenue_curve(opt, &merged_outcome);
    ASSERT_TRUE(merged_outcome.complete()) << "N=" << n_shards;
    EXPECT_EQ(merged_outcome.computed, 0u) << "N=" << n_shards;
    ASSERT_EQ(merged.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      expect_identical(merged[i], fresh[i]);
    }
  }
}

TEST(CheckpointRunMany, ResumedAggregateIsBitwiseIdentical) {
  sim::SimConfig config;
  config.alpha = 0.33;
  config.gamma = 0.5;
  config.num_blocks = 3'000;
  const int runs = 5;
  const auto fresh = sim::run_many(config, runs);

  SweepCheckpoint ckpt;
  ckpt.directory = temp_dir("run_many");
  ckpt.max_new_jobs = 2;
  SweepOutcome partial;
  (void)sim::run_many(config, runs, ckpt, &partial);
  EXPECT_FALSE(partial.complete());

  ckpt.max_new_jobs = static_cast<std::size_t>(-1);
  SweepOutcome outcome;
  const auto resumed = sim::run_many(config, runs, ckpt, &outcome);
  ASSERT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.loaded, 2u);

  const auto s = analysis::Scenario::regular_rate_one;
  EXPECT_EQ(resumed.pool_revenue(s).mean(), fresh.pool_revenue(s).mean());
  EXPECT_EQ(resumed.pool_revenue(s).ci_halfwidth(),
            fresh.pool_revenue(s).ci_halfwidth());
  EXPECT_EQ(resumed.honest_revenue(s).mean(), fresh.honest_revenue(s).mean());
  EXPECT_EQ(resumed.uncle_rate.mean(), fresh.uncle_rate.mean());
  EXPECT_EQ(resumed.pool_share.mean(), fresh.pool_share.mean());
  for (std::size_t d = 0; d < 8; ++d) {
    EXPECT_EQ(resumed.uncle_distance_honest.at(d),
              fresh.uncle_distance_honest.at(d));
    EXPECT_EQ(resumed.uncle_distance_pool.at(d),
              fresh.uncle_distance_pool.at(d));
  }
}

TEST(CheckpointRunMany, RefusesPartialAggregateWithoutOutcome) {
  sim::SimConfig config;
  config.num_blocks = 500;
  SweepCheckpoint ckpt;
  ckpt.directory = temp_dir("refuse");
  ckpt.shard = ShardSpec{0, 2};  // half the runs belong to the other shard
  EXPECT_THROW((void)sim::run_many(config, 4, ckpt), std::invalid_argument);
}

TEST(CheckpointPopulationAndDelay, ResumeRoundTripsExactly) {
  {
    sim::PopulationConfig config;
    config.base.alpha = 0.3;
    config.base.num_blocks = 1'000;
    config.num_miners = 50;
    const auto fresh = sim::run_population_many(config, 3);
    SweepCheckpoint ckpt;
    ckpt.directory = temp_dir("population");
    SweepOutcome first;
    (void)sim::run_population_many(config, 3, ckpt, &first);
    SweepOutcome outcome;
    const auto resumed = sim::run_population_many(config, 3, ckpt, &outcome);
    EXPECT_EQ(outcome.loaded, 3u);
    EXPECT_EQ(resumed.pool_member_share.mean(), fresh.pool_member_share.mean());
    EXPECT_EQ(resumed.sim.pool_revenue_s1.mean(), fresh.sim.pool_revenue_s1.mean());
  }
  {
    sim::DelaySimConfig config;
    config.num_blocks = 1'000;
    const auto fresh = sim::run_delay_many(config, 3);
    SweepCheckpoint ckpt;
    ckpt.directory = temp_dir("delay");
    SweepOutcome first;
    (void)sim::run_delay_many(config, 3, ckpt, &first);
    SweepOutcome outcome;
    const auto resumed = sim::run_delay_many(config, 3, ckpt, &outcome);
    EXPECT_EQ(outcome.loaded, 3u);
    EXPECT_EQ(resumed.uncle_rate.mean(), fresh.uncle_rate.mean());
    EXPECT_EQ(resumed.stale_rate.mean(), fresh.stale_rate.mean());
    ASSERT_EQ(resumed.per_miner_stale_fraction.size(),
              fresh.per_miner_stale_fraction.size());
    for (std::size_t m = 0; m < fresh.per_miner_stale_fraction.size(); ++m) {
      EXPECT_EQ(resumed.per_miner_stale_fraction[m].mean(),
                fresh.per_miner_stale_fraction[m].mean());
    }
  }
}

TEST(CheckpointCorruptionRecovery, CorruptedRecordsAreRecomputedNotTrusted) {
  auto opt = small_threshold_options();
  const auto fresh = analysis::threshold_curve(opt);

  opt.checkpoint.directory = temp_dir("corrupt_recompute");
  SweepOutcome first;
  (void)analysis::threshold_curve(opt, &first);
  EXPECT_EQ(first.computed, opt.gammas.size());

  // Corrupt the single checkpoint file a few records in: the store must
  // distrust the damaged suffix and the driver recompute it.
  std::string file;
  for (const auto& entry : fs::directory_iterator(opt.checkpoint.directory)) {
    file = entry.path().string();
  }
  ASSERT_FALSE(file.empty());
  {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(24 + 16 + 2);  // inside the first record's payload
    const char garbage = 0x5a;
    f.write(&garbage, 1);
  }

  SweepOutcome outcome;
  const auto recovered = analysis::threshold_curve(opt, &outcome);
  ASSERT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.loaded, 0u);  // nothing in the damaged file was trusted
  EXPECT_EQ(outcome.computed, opt.gammas.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    expect_identical(recovered[i], fresh[i]);
  }
}

TEST(CheckpointStaleFingerprint, ChangedSweepParametersIgnoreOldRecords) {
  auto opt = small_threshold_options();
  opt.checkpoint.directory = temp_dir("stale_params");
  SweepOutcome first;
  (void)analysis::threshold_curve(opt, &first);
  EXPECT_EQ(first.computed, opt.gammas.size());

  // Tightening the tolerance changes the fingerprint: stale records must not
  // satisfy the new sweep.
  opt.threshold.tolerance = 1e-5;
  SweepOutcome outcome;
  const auto tightened = analysis::threshold_curve(opt, &outcome);
  EXPECT_EQ(outcome.loaded, 0u);
  EXPECT_EQ(outcome.computed, opt.gammas.size());
  // And the tightened sweep matches its own fresh (uncheckpointed) run.
  auto fresh_opt = opt;
  fresh_opt.checkpoint = SweepCheckpoint{};
  const auto fresh = analysis::threshold_curve(fresh_opt);
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    expect_identical(tightened[i], fresh[i]);
  }
}

}  // namespace
}  // namespace ethsm
