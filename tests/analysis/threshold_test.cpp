#include "analysis/threshold.h"

#include <gtest/gtest.h>

#include "analysis/bitcoin_es.h"

namespace ethsm::analysis {
namespace {

const auto kByz = rewards::RewardConfig::ethereum_byzantium();
const auto kFlat = rewards::RewardConfig::ethereum_flat(0.5);
const auto kBtc = rewards::RewardConfig::bitcoin();

ThresholdOptions fast_options() {
  ThresholdOptions o;
  o.tolerance = 1e-5;
  o.max_lead = 60;
  return o;
}

TEST(Threshold, PaperScenario1ByzantiumAtGammaHalf) {
  // Sec. VI: 0.054 under Ku(.) in scenario 1.
  const auto t = profitability_threshold(0.5, kByz,
                                         Scenario::regular_rate_one,
                                         fast_options());
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.054, 0.002);
}

TEST(Threshold, PaperScenario2ByzantiumAtGammaHalf) {
  // Sec. VI: 0.270 under Ku(.) in scenario 2 (paper's own truncated
  // numerics; we allow a slightly wider band here, see EXPERIMENTS.md).
  const auto t = profitability_threshold(
      0.5, kByz, Scenario::regular_and_uncle_rate_one, fast_options());
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.270, 0.006);
}

TEST(Threshold, PaperScenario1FlatAtGammaHalf) {
  // Sec. V-A / Sec. VI: 0.163 under flat Ku = 4/8 in scenario 1.
  const auto t = profitability_threshold(0.5, kFlat,
                                         Scenario::regular_rate_one,
                                         fast_options());
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.163, 0.002);
}

TEST(Threshold, PaperScenario2FlatAtGammaHalf) {
  // Sec. VI: 0.356 under flat Ku = 4/8 in scenario 2.
  const auto t = profitability_threshold(
      0.5, kFlat, Scenario::regular_and_uncle_rate_one, fast_options());
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.356, 0.003);
}

TEST(Threshold, BitcoinConfigReproducesEyalSirer) {
  for (double gamma : {0.0, 0.25, 0.5, 0.75}) {
    const auto t = profitability_threshold(gamma, kBtc,
                                           Scenario::regular_rate_one,
                                           fast_options());
    ASSERT_TRUE(t.has_value()) << "gamma=" << gamma;
    EXPECT_NEAR(*t, eyal_sirer_threshold(gamma), 5e-4) << "gamma=" << gamma;
  }
}

TEST(Threshold, GammaOneAlwaysProfitable) {
  const auto t = profitability_threshold(1.0, kByz,
                                         Scenario::regular_rate_one,
                                         fast_options());
  ASSERT_TRUE(t.has_value());
  EXPECT_LT(*t, 0.01);
}

TEST(Threshold, MonotoneDecreasingInGamma) {
  double previous = 1.0;
  for (double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto t = profitability_threshold(gamma, kByz,
                                           Scenario::regular_rate_one,
                                           fast_options());
    ASSERT_TRUE(t.has_value());
    EXPECT_LE(*t, previous + 1e-9) << "gamma=" << gamma;
    previous = *t;
  }
}

TEST(Threshold, Scenario1BelowBitcoinEverywhere) {
  // Fig. 10's headline: Ethereum (scenario 1) is more vulnerable than
  // Bitcoin at every gamma < 1.
  for (double gamma : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    const auto t = profitability_threshold(gamma, kByz,
                                           Scenario::regular_rate_one,
                                           fast_options());
    ASSERT_TRUE(t.has_value());
    EXPECT_LT(*t, eyal_sirer_threshold(gamma)) << "gamma=" << gamma;
  }
}

TEST(Threshold, Scenario2CrossesBitcoinNearPointFour)
{
  // Fig. 10: scenario 2 is above Bitcoin for gamma >~ 0.39.
  const auto below = profitability_threshold(
      0.2, kByz, Scenario::regular_and_uncle_rate_one, fast_options());
  const auto above = profitability_threshold(
      0.6, kByz, Scenario::regular_and_uncle_rate_one, fast_options());
  ASSERT_TRUE(below.has_value());
  ASSERT_TRUE(above.has_value());
  EXPECT_LT(*below, eyal_sirer_threshold(0.2));
  EXPECT_GT(*above, eyal_sirer_threshold(0.6));
}

TEST(Threshold, HigherUncleRewardLowersThreshold) {
  double previous = 0.0;
  for (double ku : {7.0 / 8, 4.0 / 8, 2.0 / 8}) {  // descending generosity
    const auto t = profitability_threshold(
        0.5, rewards::RewardConfig::ethereum_flat(ku),
        Scenario::regular_rate_one, fast_options());
    ASSERT_TRUE(t.has_value());
    EXPECT_GT(*t, previous) << "ku=" << ku;
    previous = *t;
  }
}

TEST(ThresholdBracketReport, InteriorCrossingIsTheCommonCase) {
  const auto report = profitability_threshold_report(
      0.5, kByz, Scenario::regular_rate_one, fast_options());
  ASSERT_TRUE(report.alpha.has_value());
  EXPECT_EQ(report.bracket, ThresholdBracket::interior_crossing);
  EXPECT_NEAR(*report.alpha, 0.054, 0.002);
}

TEST(ThresholdBracketReport, GammaOneReportsAlwaysProfitable) {
  const auto report = profitability_threshold_report(
      1.0, kByz, Scenario::regular_rate_one, fast_options());
  ASSERT_TRUE(report.alpha.has_value());
  EXPECT_EQ(report.bracket, ThresholdBracket::always_profitable);
  EXPECT_EQ(*report.alpha, fast_options().alpha_min);
}

TEST(ThresholdBracketReport, ShrunkBracketReportsNeverProfitable) {
  ThresholdOptions o = fast_options();
  o.alpha_max = 0.02;  // well below the gamma = 0.5 Byzantium threshold
  const auto report = profitability_threshold_report(
      0.5, kByz, Scenario::regular_rate_one, o);
  EXPECT_FALSE(report.alpha.has_value());
  EXPECT_EQ(report.bracket, ThresholdBracket::never_profitable);
}

TEST(ThresholdBracketReport, SignChangeOnAlphaMaxIsReportedNotFatal) {
  // Regression for the bracket-endpoint edge: when alpha_max sits exactly on
  // the sign change at tight tolerance, the search must *report* the verdict
  // (at_alpha_max) rather than fail or masquerade as an interior crossing.
  // Exercised for gamma values around the scenario-2 knee, where the
  // scenario-2 threshold is largest and a conservatively chosen alpha_max is
  // most likely to land on it.
  ThresholdOptions tight = fast_options();
  tight.tolerance = 1e-7;
  for (double gamma : {0.40, 0.45, 0.50, 0.55, 0.60}) {
    SCOPED_TRACE("gamma=" + std::to_string(gamma));
    const auto interior = profitability_threshold_report(
        gamma, kByz, Scenario::regular_and_uncle_rate_one, tight);
    ASSERT_TRUE(interior.alpha.has_value());
    ASSERT_EQ(interior.bracket, ThresholdBracket::interior_crossing);

    // Pin the bracket's upper end exactly onto the found sign change.
    ThresholdOptions pinned = tight;
    pinned.alpha_max = *interior.alpha;
    const auto on_edge = profitability_threshold_report(
        gamma, kByz, Scenario::regular_and_uncle_rate_one, pinned);
    ASSERT_TRUE(on_edge.alpha.has_value());
    EXPECT_EQ(on_edge.bracket, ThresholdBracket::at_alpha_max);
    EXPECT_NEAR(*on_edge.alpha, *interior.alpha, pinned.tolerance * 2);

    // A hair below the crossing the bracket contains no sign change at all.
    ThresholdOptions below = tight;
    below.alpha_max = *interior.alpha - 1e-4;
    const auto under = profitability_threshold_report(
        gamma, kByz, Scenario::regular_and_uncle_rate_one, below);
    EXPECT_FALSE(under.alpha.has_value());
    EXPECT_EQ(under.bracket, ThresholdBracket::never_profitable);
  }
}

TEST(ThresholdBracketReport, AlphaMatchesLegacyInterfaceBitwise) {
  for (double gamma : {0.0, 0.3, 0.7}) {
    const auto report = profitability_threshold_report(
        gamma, kByz, Scenario::regular_rate_one, fast_options());
    const auto legacy = profitability_threshold(
        gamma, kByz, Scenario::regular_rate_one, fast_options());
    ASSERT_EQ(report.alpha.has_value(), legacy.has_value());
    if (legacy) EXPECT_EQ(*report.alpha, *legacy);  // exact, not approximate
  }
}

TEST(SelfishAdvantage, NegativeBelowThresholdPositiveAbove) {
  EXPECT_LT(selfish_advantage(0.10, 0.5, kFlat, Scenario::regular_rate_one),
            0.0);
  EXPECT_GT(selfish_advantage(0.25, 0.5, kFlat, Scenario::regular_rate_one),
            0.0);
}

TEST(SelfishAdvantage, SmallLossBelowThreshold) {
  // Sec. V-A: below the threshold the pool "loses just a small amount" --
  // the uncle economy cushions the attack cost (unlike Bitcoin). Fig. 8's
  // setup is the flat Ku = 4/8 schedule with threshold 0.163, so alpha = 0.10
  // sits below it. (Under Byzantium the threshold is 0.054 and alpha = 0.10
  // would already be profitable.)
  const double loss_eth =
      -selfish_advantage(0.10, 0.5, kFlat, Scenario::regular_rate_one);
  const double loss_btc =
      -selfish_advantage(0.10, 0.5, kBtc, Scenario::regular_rate_one);
  EXPECT_GT(loss_eth, 0.0);
  EXPECT_GT(loss_btc, 0.0);
  EXPECT_LT(loss_eth, loss_btc / 2.0);  // Ethereum's loss is far smaller
}

}  // namespace
}  // namespace ethsm::analysis
