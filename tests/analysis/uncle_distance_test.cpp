#include "analysis/uncle_distance.h"

#include <gtest/gtest.h>

namespace ethsm::analysis {
namespace {

TEST(UncleDistance, PaperTableIIAtAlphaPointThree) {
  const auto d = honest_uncle_distance_distribution({0.3, 0.5}, 80);
  const double expected[] = {0.527, 0.295, 0.111, 0.043, 0.017, 0.007};
  for (int i = 1; i <= 6; ++i) {
    EXPECT_NEAR(d.fraction[i], expected[i - 1], 0.001) << "distance " << i;
  }
  EXPECT_NEAR(d.expectation, 1.75, 0.01);
}

TEST(UncleDistance, PaperTableIIAtAlphaPointFourFive) {
  const auto d = honest_uncle_distance_distribution({0.45, 0.5}, 80);
  const double expected[] = {0.284, 0.249, 0.171, 0.125, 0.096, 0.075};
  for (int i = 1; i <= 6; ++i) {
    EXPECT_NEAR(d.fraction[i], expected[i - 1], 0.001) << "distance " << i;
  }
  EXPECT_NEAR(d.expectation, 2.72, 0.01);
}

TEST(UncleDistance, FractionsSumToOne) {
  for (double alpha : {0.1, 0.3, 0.45}) {
    const auto d = honest_uncle_distance_distribution({alpha, 0.5}, 80);
    double sum = 0.0;
    for (int i = 1; i <= 6; ++i) sum += d.fraction[i];
    EXPECT_NEAR(sum, 1.0, 1e-9) << "alpha=" << alpha;
  }
}

TEST(UncleDistance, ExpectationGrowsWithAlpha) {
  // Sec. VI: with more selfish hash power, honest uncles sit further away.
  double previous = 0.0;
  for (double alpha : {0.1, 0.2, 0.3, 0.4, 0.45}) {
    const auto d = honest_uncle_distance_distribution({alpha, 0.5}, 80);
    EXPECT_GT(d.expectation, previous) << "alpha=" << alpha;
    previous = d.expectation;
  }
}

TEST(UncleDistance, SmallAlphaConcentratesAtDistanceOne) {
  const auto d = honest_uncle_distance_distribution({0.05, 0.5}, 40);
  EXPECT_GT(d.fraction[1], 0.9);
}

TEST(UncleDistance, BeyondHorizonRateAppearsAtHighAlpha) {
  const auto low = honest_uncle_distance_distribution({0.1, 0.5}, 80);
  const auto high = honest_uncle_distance_distribution({0.45, 0.5}, 80);
  EXPECT_GT(high.beyond_horizon_rate, low.beyond_horizon_rate);
  EXPECT_GT(high.in_horizon_rate, 0.0);
}

TEST(UncleDistance, GammaZeroStillWellFormed) {
  const auto d = honest_uncle_distance_distribution({0.2, 0.0}, 80);
  double sum = 0.0;
  for (int i = 1; i <= 6; ++i) sum += d.fraction[i];
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

}  // namespace
}  // namespace ethsm::analysis
