// Checkpoint directory scanning (the substrate of `ethsm checkpoint-stats`
// and its --prune GC): per-file fingerprint/record/byte accounting, corrupt
// header handling, and agreement between the scanner's record counts and
// what a CheckpointStore actually persisted.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "api/presets.h"
#include "api/runner.h"
#include "api/study.h"
#include "support/checkpoint.h"

namespace ethsm::support {
namespace {

namespace fs = std::filesystem;

class CheckpointScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = fs::path(::testing::TempDir()) /
           ("ethsm_scan_" + std::to_string(counter++));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(CheckpointScanTest, ReportsEveryFileWithFingerprintAndRecords) {
  {
    CheckpointStore store_a(dir_.string(), 0xAAAAu);
    ByteWriter w;
    w.f64(1.5);
    store_a.append(0, w.bytes());
    store_a.append(1, w.bytes());
    store_a.append(2, w.bytes());
    CheckpointStore store_b(dir_.string(), 0xBBBBu, ShardSpec{0, 2});
    store_b.append(0, w.bytes());
  }
  // A file with a corrupt header must be listed as unreadable, not trusted.
  std::ofstream(dir_ / "garbage.ethsmck") << "not a checkpoint";

  const auto files = scan_checkpoint_directory(dir_.string());
  ASSERT_EQ(files.size(), 3u);

  std::size_t readable = 0;
  for (const auto& file : files) {
    if (!file.readable) {
      EXPECT_NE(file.path.find("garbage"), std::string::npos);
      continue;
    }
    ++readable;
    if (file.fingerprint == 0xAAAAu) {
      EXPECT_EQ(file.records, 3u);
    } else {
      EXPECT_EQ(file.fingerprint, 0xBBBBu);
      EXPECT_EQ(file.records, 1u);
    }
    EXPECT_GT(file.bytes, 0u);
  }
  EXPECT_EQ(readable, 2u);
}

TEST_F(CheckpointScanTest, MissingDirectoryYieldsEmpty) {
  EXPECT_TRUE(scan_checkpoint_directory((dir_ / "nope").string()).empty());
}

TEST_F(CheckpointScanTest, TruncatedTailCountsOnlyValidRecords) {
  {
    CheckpointStore store(dir_.string(), 0xCCCCu);
    ByteWriter w;
    w.f64(2.5);
    store.append(0, w.bytes());
    store.append(1, w.bytes());
  }
  const auto before = scan_checkpoint_directory(dir_.string());
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(before[0].records, 2u);
  // Chop a few bytes off the second record: the scan must stop at the first
  // broken record, exactly like CheckpointStore's loader.
  fs::resize_file(before[0].path, fs::file_size(before[0].path) - 3);
  const auto after = scan_checkpoint_directory(dir_.string());
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].readable);
  EXPECT_EQ(after[0].records, 1u);
}

TEST_F(CheckpointScanTest, PresetKeepSetCoversARealSweepStore) {
  // Run a tiny checkpointed preset sweep, then verify the GC keep-set
  // (api::referenced_fingerprints) recognizes the file it wrote -- the
  // property `ethsm checkpoint-stats --prune` relies on to never delete a
  // preset's records.
  api::RunOptions options;
  options.checkpoint.directory = dir_.string();
  const auto result = api::run(api::preset_spec("fig10", true), options);
  ASSERT_TRUE(result.complete());

  const auto files = scan_checkpoint_directory(dir_.string());
  ASSERT_FALSE(files.empty());
  const auto keep = api::referenced_fingerprints();
  for (const auto& file : files) {
    ASSERT_TRUE(file.readable) << file.path;
    bool referenced = false;
    for (const auto& ref : keep) {
      if (ref.fingerprint == file.fingerprint) {
        referenced = true;
        EXPECT_EQ(ref.owner, "fig10 --quick");
      }
    }
    EXPECT_TRUE(referenced) << file.path;
  }
}

// Runs under both `ctest -L checkpoint`-adjacent full suite and the Study*
// label filter (`ctest -L study`): it ties the two layers together.
using StudyGcScanTest = CheckpointScanTest;

TEST_F(StudyGcScanTest, StudyKeepSetCoversItsOwnSweepStore) {
  // A custom (non-preset) study sharing a checkpoint directory: the
  // fingerprints `checkpoint-stats --keep-study` derives from the expansion
  // must cover every file run_study wrote, or --prune would eat the
  // study's records.
  const api::StudySpec study = api::parse_study(
      "study = gc\n"
      "kind = threshold\n"
      "gammas = 0,1\n"
      "tolerance = 1e-2\n"
      "threshold_max_lead = 25\n"
      "variant.byz.rewards = byzantium\n"
      "variant.flat.rewards = flat:0.5\n");
  const auto entries = api::expand_study(study, /*quick=*/false);

  api::RunOptions options;
  options.checkpoint.directory = dir_.string();
  const auto result = api::run_study("gc", "", entries, options);
  ASSERT_TRUE(result.complete());

  std::set<std::uint64_t> keep;
  for (const bool quick : {false, true}) {
    for (const api::StudyEntry& entry : api::expand_study(study, quick)) {
      for (std::uint64_t fp : api::sweep_fingerprints(entry.spec)) {
        keep.insert(fp);
      }
    }
  }
  const auto files = scan_checkpoint_directory(dir_.string());
  ASSERT_FALSE(files.empty());
  for (const auto& file : files) {
    ASSERT_TRUE(file.readable) << file.path;
    EXPECT_TRUE(keep.count(file.fingerprint)) << file.path;
  }
}

}  // namespace
}  // namespace ethsm::support
