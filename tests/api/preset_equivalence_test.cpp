// Preset-vs-legacy-driver equivalence: running a paper preset through the
// declarative API (api::run) must produce series bitwise-identical to calling
// the sweep drivers directly the way the pre-redesign bench mains did. These
// tests freeze that contract, so the spec -> driver-options mapping can never
// silently drift from the recorded experiment artefacts.

#include <gtest/gtest.h>

#include "analysis/attack_timeline.h"
#include "analysis/sweep.h"
#include "analysis/threshold.h"
#include "analysis/uncle_distance.h"
#include "api/presets.h"
#include "api/runner.h"
#include "sim/simulator.h"

namespace ethsm::api {
namespace {

using support::SweepOutcome;

/// Numeric column lookup by header; fails the test when absent.
const Column& column(const ExperimentResult& result, std::size_t table,
                     const std::string& header) {
  EXPECT_LT(table, result.tables.size());
  for (const Column& c : result.tables[table].columns) {
    if (c.header == header) return c;
  }
  ADD_FAILURE() << "missing column '" << header << "'";
  static const Column kEmpty;
  return kEmpty;
}

TEST(PresetEquivalence, Fig8QuickMatchesRevenueCurveDriver) {
  // The legacy bench_fig8_revenue --quick path, verbatim.
  analysis::RevenueCurveOptions opt;
  opt.gamma = 0.5;
  opt.rewards = rewards::RewardConfig::ethereum_flat(0.5);
  opt.scenario = analysis::Scenario::regular_rate_one;
  opt.sim_runs = 3;
  opt.sim_blocks = 20'000;
  const auto curve = analysis::revenue_curve(opt);

  const ExperimentResult result = run(preset_spec("fig8", true));
  ASSERT_TRUE(result.complete());
  const Column& alpha = column(result, 0, "alpha");
  const Column& us = column(result, 0, "Us (analysis)");
  const Column& us_sim = column(result, 0, "Us (sim)");
  const Column& us_ci = column(result, 0, "Us +-95%");
  const Column& uh = column(result, 0, "Uh (analysis)");
  const Column& uh_sim = column(result, 0, "Uh (sim)");
  ASSERT_EQ(alpha.numbers.size(), curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(alpha.numbers[i], curve[i].alpha) << i;
    EXPECT_EQ(us.numbers[i], curve[i].pool_revenue) << i;
    EXPECT_EQ(us_sim.numbers[i], curve[i].pool_revenue_sim) << i;
    EXPECT_EQ(us_ci.numbers[i], curve[i].pool_revenue_sim_ci) << i;
    EXPECT_EQ(uh.numbers[i], curve[i].honest_revenue) << i;
    EXPECT_EQ(uh_sim.numbers[i], curve[i].honest_revenue_sim) << i;
  }
}

TEST(PresetEquivalence, Fig9SeriesMatchRevenueCurveDriver) {
  // Legacy bench_fig9 series: flat 7/8 at horizon 100 plus the cap-6
  // ablation, gamma 0.5, max_lead 120, no simulation.
  analysis::RevenueCurveOptions wide;
  wide.gamma = 0.5;
  wide.rewards = rewards::RewardConfig::ethereum_flat(7.0 / 8.0, 100);
  wide.scenario = analysis::Scenario::regular_rate_one;
  wide.max_lead = 120;
  const auto wide_curve = analysis::revenue_curve(wide);

  analysis::RevenueCurveOptions capped = wide;
  capped.rewards = rewards::RewardConfig::ethereum_flat(7.0 / 8.0);
  const auto capped_curve = analysis::revenue_curve(capped);

  const ExperimentResult result = run(preset_spec("fig9", false));
  ASSERT_TRUE(result.complete());
  const Column& us = column(result, 0, "Us Ku=7/8");
  const Column& tot = column(result, 0, "Tot Ku=7/8");
  const Column& tot_capped = column(result, 0, "Tot Ku=7/8 cap6");
  ASSERT_EQ(us.numbers.size(), wide_curve.size());
  for (std::size_t i = 0; i < wide_curve.size(); ++i) {
    EXPECT_EQ(us.numbers[i], wide_curve[i].pool_revenue) << i;
    EXPECT_EQ(tot.numbers[i], wide_curve[i].total_revenue) << i;
    EXPECT_EQ(tot_capped.numbers[i], capped_curve[i].total_revenue) << i;
  }
  // The paper's headline: total revenue "soars to 135%" at Ku=7/8,
  // alpha=0.45, and only ~127% under Ethereum's distance cap.
  EXPECT_NEAR(*tot.numbers.back(), 1.35, 0.01);
  EXPECT_NEAR(*tot_capped.numbers.back(), 1.27, 0.01);
}

TEST(PresetEquivalence, Fig10QuickMatchesThresholdCurveDriver) {
  // The legacy bench_fig10_threshold --quick path, verbatim.
  analysis::ThresholdCurveOptions opt;
  opt.gammas = {0.0, 0.25, 0.5, 0.75, 1.0};
  opt.threshold.tolerance = 1e-4;
  const auto curve = analysis::threshold_curve(opt);

  const ExperimentResult result = run(preset_spec("fig10", true));
  ASSERT_TRUE(result.complete());
  const Column& gamma = column(result, 0, "gamma");
  const Column& bitcoin = column(result, 0, "Bitcoin (Eyal-Sirer)");
  const Column& s1 = column(result, 0, "Ethereum scenario 1");
  const Column& s2 = column(result, 0, "Ethereum scenario 2");
  ASSERT_EQ(gamma.numbers.size(), curve.size());
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_EQ(gamma.numbers[i], curve[i].gamma) << i;
    EXPECT_EQ(bitcoin.numbers[i], curve[i].bitcoin) << i;
    EXPECT_EQ(s1.numbers[i], curve[i].ethereum_scenario1) << i;
    EXPECT_EQ(s2.numbers[i], curve[i].ethereum_scenario2) << i;
  }
}

TEST(PresetEquivalence, Table2QuickMatchesAnalysisAndRunMany) {
  // Legacy bench_table2 --quick: distribution at max_lead 120 + 3 runs of
  // 50k blocks, seed 0x7ab1e2, for alpha in {0.3, 0.45}.
  const auto d30 =
      analysis::honest_uncle_distance_distribution({0.3, 0.5}, 120);
  sim::SimConfig sc;
  sc.alpha = 0.45;
  sc.gamma = 0.5;
  sc.num_blocks = 50'000;
  sc.seed = 0x7ab1e2;
  const auto s45 = sim::run_many(sc, 3);

  const ExperimentResult result = run(preset_spec("table2", true));
  ASSERT_TRUE(result.complete());
  const Column& a30 = column(result, 0, "alpha=0.30 (analysis)");
  const Column& a45_sim = column(result, 0, "alpha=0.45 (sim)");
  ASSERT_EQ(a30.numbers.size(), 7u);  // d = 1..6 + expectation row
  for (int d = 1; d <= 6; ++d) {
    EXPECT_EQ(a30.numbers[static_cast<std::size_t>(d - 1)],
              d30.fraction[static_cast<std::size_t>(d)])
        << d;
    EXPECT_EQ(a45_sim.numbers[static_cast<std::size_t>(d - 1)],
              s45.uncle_distance_honest.conditional_fraction(
                  static_cast<std::size_t>(d), 1, 6))
        << d;
  }
  EXPECT_EQ(a30.numbers[6], d30.expectation);
}

TEST(PresetEquivalence, ExtStubbornQuickMatchesRunStubbornMany) {
  // Legacy bench_ext_stubborn seed chain: 0x57ab + alpha * 1e4, Byzantium,
  // scenario 1; quick preset grid {0.25, 0.35, 0.45}, 3 runs x 30k blocks.
  const ExperimentResult result = run(preset_spec("ext_stubborn", true));
  ASSERT_TRUE(result.complete());

  miner::StubbornConfig lf;
  lf.lead_stubborn = true;
  lf.equal_fork_stubborn = true;
  const Column& alpha_col = column(result, 0, "alpha");
  const Column& lf_col = column(result, 0, "L+F");
  const Column& alg1_col = column(result, 0, "Alg.1");
  ASSERT_EQ(alpha_col.numbers.size(), 3u);
  for (std::size_t i = 0; i < alpha_col.numbers.size(); ++i) {
    const double alpha = *alpha_col.numbers[i];
    sim::SimConfig config;
    config.alpha = alpha;
    config.gamma = 0.5;
    config.num_blocks = 30'000;
    config.seed = 0x57abULL + static_cast<std::uint64_t>(alpha * 1e4);
    const auto expected_lf = sim::run_stubborn_many(config, lf, 3);
    EXPECT_EQ(lf_col.numbers[i],
              expected_lf.pool_revenue(sim::Scenario::regular_rate_one).mean())
        << alpha;
    const auto expected_alg1 =
        sim::run_stubborn_many(config, miner::StubbornConfig{}, 3);
    EXPECT_EQ(
        alg1_col.numbers[i],
        expected_alg1.pool_revenue(sim::Scenario::regular_rate_one).mean())
        << alpha;
  }
}

TEST(PresetEquivalence, StubbornSimDefaultRunsClampToOne) {
  // A minimal simulation-only spec without sim_runs (default 0, meaning "no
  // cross-check" for the curve kinds) must run one simulation per point
  // instead of tripping the drivers' runs > 0 precondition.
  ExperimentSpec spec;
  spec.kind = ExperimentKind::stubborn_sim;
  spec.alphas = {0.3};
  spec.sim_blocks = 2'000;
  spec.series = {{"Alg.1", "byzantium", "selfish"}};
  const ExperimentResult result = run(spec);
  ASSERT_TRUE(result.complete());

  sim::SimConfig config;
  config.alpha = 0.3;
  config.gamma = 0.5;
  config.num_blocks = 2'000;
  config.seed = spec.sim_seed + static_cast<std::uint64_t>(0.3 * 1e4);
  const auto expected =
      sim::run_stubborn_many(config, miner::StubbornConfig{}, 1);
  EXPECT_EQ(column(result, 0, "Alg.1").numbers[0],
            expected.pool_revenue(sim::Scenario::regular_rate_one).mean());
}

TEST(PresetEquivalence, Sec6QuickMatchesProfitabilityThreshold) {
  const ExperimentResult result = run(preset_spec("sec6_reward_design", true));
  ASSERT_TRUE(result.complete());

  analysis::ThresholdOptions opt;
  opt.tolerance = 1e-3;
  const auto byz = rewards::RewardConfig::ethereum_byzantium();
  const auto expected_s1 = analysis::profitability_threshold(
      0.5, byz, analysis::Scenario::regular_rate_one, opt);
  const auto expected_s2 = analysis::profitability_threshold(
      0.5, byz, analysis::Scenario::regular_and_uncle_rate_one, opt);

  const Column& s1 = column(result, 0, "alpha* scenario 1");
  const Column& s2 = column(result, 0, "alpha* scenario 2");
  ASSERT_GE(s1.numbers.size(), 1u);
  EXPECT_EQ(s1.numbers[0], expected_s1);  // row 0 = Byzantium headline
  EXPECT_EQ(s2.numbers[0], expected_s2);
}

TEST(PresetEquivalence, TimelineMatchesComputeAttackTimeline) {
  const ExperimentResult result = run(preset_spec("ext_timeline", false));
  ASSERT_TRUE(result.complete());
  const auto config = rewards::RewardConfig::ethereum_byzantium();
  const Column& alpha_col = column(result, 0, "alpha");
  const Column& bleed_s1 = column(result, 0, "bleed rate (s1)");
  const Column& break_s2 = column(result, 0, "breakeven blocks (s2)");
  for (std::size_t i = 0; i < alpha_col.numbers.size(); ++i) {
    const double alpha = *alpha_col.numbers[i];
    const auto s1 = analysis::compute_attack_timeline(
        {alpha, 0.5}, config, analysis::Scenario::regular_rate_one, 80);
    const auto s2 = analysis::compute_attack_timeline(
        {alpha, 0.5}, config, analysis::Scenario::regular_and_uncle_rate_one,
        80);
    EXPECT_EQ(bleed_s1.numbers[i], s1.initial_bleed_rate()) << alpha;
    EXPECT_EQ(break_s2.numbers[i], s2.breakeven_time(2016.0)) << alpha;
  }
}

TEST(PresetEquivalence, SweepFingerprintsMatchTheDrivers) {
  // The GC keep-set must key exactly like the drivers' checkpoint stores.
  analysis::ThresholdCurveOptions opt;
  opt.gammas = {0.0, 0.25, 0.5, 0.75, 1.0};
  opt.threshold.tolerance = 1e-4;
  const auto fps = sweep_fingerprints(preset_spec("fig10", true));
  ASSERT_EQ(fps.size(), 1u);
  EXPECT_EQ(fps[0], analysis::threshold_curve_fingerprint(opt));

  sim::SimConfig sc;
  sc.alpha = 0.3;
  sc.gamma = 0.5;
  sc.num_blocks = 50'000;
  sc.seed = 0x7ab1e2;
  const auto table2_fps = sweep_fingerprints(preset_spec("table2", true));
  ASSERT_EQ(table2_fps.size(), 2u);  // one run_many sweep per alpha
  EXPECT_EQ(table2_fps[0], sim::run_many_fingerprint(sc, 3));
}

}  // namespace
}  // namespace ethsm::api
