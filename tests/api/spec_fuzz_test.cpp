// Property/fuzz suite for the spec codec (ctest -L api): randomized valid
// ExperimentSpecs must round-trip parse_spec(print_spec(s)) == s exactly.
// The generator draws every experiment kind, every reward / strategy / fault
// / topology grammar the parser accepts, and adversarial doubles (shortest
// round-trip printing is the codec's load-bearing piece), while respecting
// the semantic validation in spec_from_entries -- the point is that every
// *valid* spec survives the text format, not that invalid ones do.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/spec.h"
#include "support/math_util.h"
#include "support/rng.h"

namespace ethsm::api {
namespace {

using support::Xoshiro256;

constexpr ExperimentKind kAllKinds[] = {
    ExperimentKind::revenue,      ExperimentKind::threshold,
    ExperimentKind::reward_design, ExperimentKind::uncle_distance,
    ExperimentKind::reward_table, ExperimentKind::stubborn_sim,
    ExperimentKind::timeline,     ExperimentKind::retarget,
    ExperimentKind::delay,        ExperimentKind::net,
};

template <typename T, std::size_t N>
const T& pick(Xoshiro256& rng, const T (&options)[N]) {
  return options[static_cast<std::size_t>(rng.uniform01() * N) % N];
}

/// Adversarial-but-finite double: mixes magnitudes and signs so the
/// shortest-round-trip printer is exercised well beyond "0.3"-like values.
double fuzz_double(Xoshiro256& rng) {
  const double u = rng.uniform01();
  switch (static_cast<int>(rng.uniform01() * 5.0)) {
    case 0: return u;
    case 1: return u * 1e6;
    case 2: return u * 1e-9;
    case 3: return -u;
    default: return (u - 0.5) * 1e3;
  }
}

std::vector<double> fuzz_grid(Xoshiro256& rng, int max_len) {
  const int len = static_cast<int>(rng.uniform01() * (max_len + 1));
  std::vector<double> grid(static_cast<std::size_t>(len));
  for (double& v : grid) v = fuzz_double(rng);
  return grid;
}

std::string fuzz_reward_spec(Xoshiro256& rng) {
  switch (static_cast<int>(rng.uniform01() * 4.0)) {
    case 0: return "byzantium";
    case 1: return "bitcoin";
    case 2: {
      std::string spec = "flat:" + support::print_shortest_double(rng.uniform01());
      if (rng.uniform01() < 0.5) {
        spec += ":" + std::to_string(1 + static_cast<int>(rng.uniform01() * 9.0));
      }
      return spec;
    }
    default: {
      std::string spec = "table:";
      const int len = 1 + static_cast<int>(rng.uniform01() * 6.0);
      for (int i = 0; i < len; ++i) {
        if (i) spec += ',';
        spec += support::print_shortest_double(rng.uniform01());
      }
      return spec;
    }
  }
}

std::string fuzz_strategy_spec(Xoshiro256& rng) {
  static const char* kStrategies[] = {
      "selfish",   "lead",        "fork",           "trail:1",
      "trail:3",   "lead+fork",   "fork+trail:2",   "lead+trail:1",
      "lead+fork+trail:4",
  };
  return pick(rng, kStrategies);
}

/// One random valid spec. Each field mutates independently with some
/// probability so the printed form covers everything from "kind = revenue"
/// one-liners to fully-populated specs.
ExperimentSpec fuzz_spec(Xoshiro256& rng) {
  ExperimentSpec spec;
  spec.kind = pick(rng, kAllKinds);
  auto maybe = [&rng](double p) { return rng.uniform01() < p; };

  if (maybe(0.4)) spec.title = "fuzzed spec (= tricky punctuation :+,)";
  if (maybe(0.5)) spec.gamma = rng.uniform01();
  if (maybe(0.2)) spec.gamma = maybe(0.5) ? 0.0 : 1.0;
  if (maybe(0.3)) spec.scenario = 2;
  if (maybe(0.5)) spec.alpha = 0.001 + 0.998 * rng.uniform01();
  if (maybe(0.5)) spec.alphas = fuzz_grid(rng, 6);
  if (maybe(0.4)) spec.gammas = fuzz_grid(rng, 5);
  if (maybe(0.3)) spec.ku_values = fuzz_grid(rng, 4);
  if (maybe(0.3)) spec.delays = fuzz_grid(rng, 4);
  if (maybe(0.5)) spec.rewards = fuzz_reward_spec(rng);
  if (maybe(0.3)) spec.max_lead = 1 + static_cast<int>(rng.uniform01() * 600.0);
  if (maybe(0.3)) spec.tolerance = 1e-9 + rng.uniform01();
  if (maybe(0.2)) spec.alpha_min = 1e-5 + 0.1 * rng.uniform01();
  if (maybe(0.2)) spec.alpha_max = 0.4 + 0.0999 * rng.uniform01();
  if (maybe(0.2)) {
    spec.threshold_max_lead = 1 + static_cast<int>(rng.uniform01() * 200.0);
  }
  if (maybe(0.3)) spec.sim_runs = static_cast<int>(rng.uniform01() * 64.0);
  if (maybe(0.3)) spec.sim_blocks = 1 + static_cast<std::uint64_t>(rng() >> 24);
  if (maybe(0.3)) spec.sim_seed = rng();
  if (maybe(0.3)) spec.shares = fuzz_grid(rng, 8);
  if (maybe(0.3)) spec.delay = rng.uniform01();
  if (maybe(0.4)) {
    static const char* kTopologies[] = {
        "star", "ring", "random:0.25", "random:1", "two_clusters:5",
    };
    spec.net_topology = pick(rng, kTopologies);
  }
  if (maybe(0.3)) spec.net_nodes = 1 + static_cast<int>(rng.uniform01() * 511.0);
  if (maybe(0.4)) {
    static const char* kLatencies[] = {
        "fixed:3", "fixed:0.5", "uniform:1:7", "exp:2.5",
    };
    spec.net_latency = pick(rng, kLatencies);
  }
  if (maybe(0.3)) spec.net_relay = "announce";
  if (maybe(0.3)) spec.net_fault_drop = 0.999 * rng.uniform01();
  if (maybe(0.3)) {
    static const char* kChurns[] = {"400:100", "1:1", "2500.5:300"};
    spec.net_fault_churn = pick(rng, kChurns);
  }
  if (maybe(0.3)) {
    static const char* kPartitions[] = {
        "10:50", "0:100:bridge", "5:5:random", "1:200:attacker",
    };
    spec.net_fault_partition = pick(rng, kPartitions);
  }
  if (maybe(0.3)) {
    // victim is validated against net.nodes; victim = 1 is always legal.
    static const char* kEclipses[] = {"1:250", "1:0", "1:100:0.5"};
    spec.net_fault_eclipse = pick(rng, kEclipses);
  }
  if (maybe(0.3)) spec.epoch_blocks = 1 + static_cast<std::uint64_t>(rng() >> 48);
  if (maybe(0.3)) spec.epochs = 1 + static_cast<int>(rng.uniform01() * 200.0);
  if (maybe(0.3)) spec.phase1_blocks = 1.0 + rng.uniform01() * 5000.0;
  if (maybe(0.4)) {
    const int count = 1 + static_cast<int>(rng.uniform01() * 3.0);
    for (int i = 0; i < count; ++i) {
      SeriesSpec series;
      series.label = "series " + std::to_string(i);
      if (rng.uniform01() < 0.7) series.rewards = fuzz_reward_spec(rng);
      if (rng.uniform01() < 0.5) series.strategy = fuzz_strategy_spec(rng);
      spec.series.push_back(series);
    }
  }
  return spec;
}

// The headline property: 600 randomized valid specs round-trip bitwise
// through the text format. operator== is the compiler-generated field-wise
// comparison, so this pins every field including the grids and series.
TEST(SpecFuzzRoundTrip, RandomValidSpecsSurvivePrintParse) {
  Xoshiro256 rng(0x5bec'f022'aaULL);
  for (int i = 0; i < 600; ++i) {
    const ExperimentSpec spec = fuzz_spec(rng);
    std::string text;
    ASSERT_NO_THROW(text = print_spec(spec)) << "iteration " << i;
    ExperimentSpec reparsed;
    ASSERT_NO_THROW(reparsed = parse_spec(text))
        << "iteration " << i << "\n--- printed spec ---\n" << text;
    ASSERT_EQ(reparsed, spec)
        << "iteration " << i << "\n--- printed spec ---\n" << text;
  }
}

// Every kind round-trips even with all other fields at defaults (the
// shortest possible spec file).
TEST(SpecFuzzRoundTrip, EveryKindRoundTripsAtDefaults) {
  for (ExperimentKind kind : kAllKinds) {
    ExperimentSpec spec;
    spec.kind = kind;
    EXPECT_EQ(parse_spec(print_spec(spec)), spec) << to_string(kind);
  }
}

// A second print after a round trip must be byte-identical: print is a
// canonical form, not merely an inverse of parse.
TEST(SpecFuzzRoundTrip, PrintIsIdempotentOnRoundTrippedSpecs) {
  Xoshiro256 rng(0x1de'0b5e'55ULL);
  for (int i = 0; i < 100; ++i) {
    const ExperimentSpec spec = fuzz_spec(rng);
    const std::string once = print_spec(spec);
    const std::string twice = print_spec(parse_spec(once));
    EXPECT_EQ(once, twice) << "iteration " << i;
  }
}

// Values that cannot survive the line-oriented grammar must be refused at
// print time, not silently emitted as a spec that re-parses differently.
TEST(SpecFuzzRoundTrip, RefusesUnserializableValues) {
  ExperimentSpec with_hash;
  with_hash.title = "density # comment";
  EXPECT_THROW((void)print_spec(with_hash), SpecError);

  ExperimentSpec with_newline;
  with_newline.title = "two\nlines";
  EXPECT_THROW((void)print_spec(with_newline), SpecError);
}

}  // namespace
}  // namespace ethsm::api
