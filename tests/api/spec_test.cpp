// Experiment-spec codec tests: parse -> print -> parse identity for every
// registered preset, override validation (--set semantics), grid/reward/
// strategy value parsing, and the provenance fingerprint.

#include "api/spec.h"

#include <gtest/gtest.h>

#include "analysis/sweep.h"
#include "api/presets.h"
#include "api/result.h"

namespace ethsm::api {
namespace {

TEST(SpecCodec, PrintParseIdentityForEveryPreset) {
  for (const Preset& preset : presets()) {
    for (const bool quick : {false, true}) {
      const ExperimentSpec spec = preset.spec(quick);
      const std::string text = print_spec(spec);
      const ExperimentSpec reparsed = parse_spec(text);
      EXPECT_EQ(reparsed, spec) << preset.name << (quick ? " --quick" : "")
                                << "\n--- printed ---\n" << text;
      // And printing is canonical: a second round trip is a fixed point.
      EXPECT_EQ(print_spec(reparsed), text) << preset.name;
    }
  }
}

TEST(SpecCodec, ParsePrintParseIdentityForHandwrittenSpec) {
  const char* text =
      "# a custom scenario, zero new C++\n"
      "kind = threshold\n"
      "title = Custom uncle schedule\n"
      "rewards = table:0.9,0.6,0.3\n"
      "gammas = 0:1:0.25   # range syntax\n"
      "tolerance = 1e-4\n";
  const ExperimentSpec first = parse_spec(text);
  const ExperimentSpec second = parse_spec(print_spec(first));
  EXPECT_EQ(second, first);
  EXPECT_EQ(first.gammas, (std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0}));
}

TEST(SpecCodec, RangeSyntaxMatchesPaperGrids) {
  // The range expansion computes start + i*step, exactly the arithmetic the
  // default grids use -- so a spec writing the grid out by range produces
  // bitwise-identical alphas (and hence identical sweep fingerprints).
  const ExperimentSpec spec = parse_spec("kind = revenue\nalphas = 0:0.45:0.025\n");
  EXPECT_EQ(spec.alphas, analysis::fig8_alpha_grid());
  const ExperimentSpec gspec = parse_spec("kind = threshold\ngammas = 0:1:0.05\n");
  EXPECT_EQ(gspec.gammas, analysis::fig10_gamma_grid());
}

TEST(SpecCodec, UnknownKeyIsAnError) {
  EXPECT_THROW((void)parse_spec("kind = revenue\nbogus = 1\n"), SpecError);
  EXPECT_THROW((void)parse_spec("series.0.wat = 1\n"), SpecError);
}

TEST(SpecCodec, NetKeysRoundTripAndValidateEagerly) {
  const char* text =
      "kind = net\n"
      "net.topology = two_clusters:2000\n"
      "net.nodes = 12\n"
      "net.latency = uniform:20:80\n"
      "net.relay = announce\n";
  const ExperimentSpec spec = parse_spec(text);
  EXPECT_EQ(spec.kind, ExperimentKind::net);
  EXPECT_EQ(spec.net_topology, "two_clusters:2000");
  EXPECT_EQ(spec.net_nodes, 12);
  EXPECT_EQ(spec.net_latency, "uniform:20:80");
  EXPECT_EQ(spec.net_relay, "announce");
  EXPECT_EQ(parse_spec(print_spec(spec)), spec);

  // Malformed grammars die at parse time with the offending key named.
  EXPECT_THROW((void)parse_spec("kind = net\nnet.topology = mesh\n"),
               SpecError);
  EXPECT_THROW((void)parse_spec("kind = net\nnet.latency = 50\n"), SpecError);
  EXPECT_THROW((void)parse_spec("kind = net\nnet.relay = flood\n"), SpecError);
  EXPECT_THROW((void)parse_spec("kind = net\nnet.nodes = 0\n"), SpecError);
  EXPECT_THROW((void)parse_spec("kind = net\nnet.nodes = 100000\n"), SpecError);
}

TEST(SpecCodec, NetFaultKeysRoundTripAndValidateEagerly) {
  const char* text =
      "kind = net\n"
      "net.nodes = 12\n"
      "net.faults.drop = 0.05\n"
      "net.faults.churn = 70000:14000\n"
      "net.faults.partition = 1000:9000:bridge\n"
      "net.faults.eclipse = 3:5000:0.25\n";
  const ExperimentSpec spec = parse_spec(text);
  EXPECT_EQ(spec.net_fault_drop, 0.05);
  EXPECT_EQ(spec.net_fault_churn, "70000:14000");
  EXPECT_EQ(spec.net_fault_partition, "1000:9000:bridge");
  EXPECT_EQ(spec.net_fault_eclipse, "3:5000:0.25");
  EXPECT_EQ(parse_spec(print_spec(spec)), spec);

  // A default (all-off) spec prints no net.faults.* lines at all.
  ExperimentSpec clean;
  clean.kind = ExperimentKind::net;
  EXPECT_EQ(print_spec(clean).find("net.faults"), std::string::npos);

  // Malformed fault grammars die at parse time with the key named.
  EXPECT_THROW((void)parse_spec("kind = net\nnet.faults.drop = 1\n"),
               SpecError);
  EXPECT_THROW((void)parse_spec("kind = net\nnet.faults.drop = -0.1\n"),
               SpecError);
  EXPECT_THROW((void)parse_spec("kind = net\nnet.faults.churn = 70000\n"),
               SpecError);
  EXPECT_THROW((void)parse_spec("kind = net\nnet.faults.partition = 9:1\n"),
               SpecError);
  EXPECT_THROW((void)parse_spec("kind = net\nnet.faults.eclipse = 0:5\n"),
               SpecError);
  // Cross-field semantics: the eclipse victim must be one of the honest
  // nodes the run will actually have.
  EXPECT_THROW((void)parse_spec("kind = net\nnet.nodes = 4\n"
                                "net.faults.eclipse = 5:100\n"),
               SpecError);
  EXPECT_NO_THROW((void)parse_spec("kind = net\nnet.nodes = 4\n"
                                   "net.faults.eclipse = 4:100\n"));
}

TEST(SpecCodec, StudyGrammarInASpecSuggestsTheStudySubcommands) {
  // `ethsm run --spec FILE` on a study file used to die with a bare
  // unknown-key error; the message must now point at run --study / expand.
  for (const char* text :
       {"study = zoo\nkind = net\n", "kind = net\nmatrix.gamma = 0|1\n",
        "kind = net\nvariant.a.rewards = byzantium\n",
        "kind = net\nquick.sim_runs = 2\n"}) {
    try {
      (void)parse_spec(text);
      FAIL() << "expected SpecError for:\n" << text;
    } catch (const SpecError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("ethsm run --study"), std::string::npos) << what;
      EXPECT_NE(what.find("ethsm expand"), std::string::npos) << what;
    }
  }
}

TEST(SpecCodec, MalformedValuesAreErrors) {
  EXPECT_THROW((void)parse_spec("gamma = abc\n"), SpecError);
  EXPECT_THROW((void)parse_spec("kind = nope\n"), SpecError);
  EXPECT_THROW((void)parse_spec("scenario = 3\n"), SpecError);
  EXPECT_THROW((void)parse_spec("gamma = 1.5\n"), SpecError);
  EXPECT_THROW((void)parse_spec("sim_blocks = 0\n"), SpecError);
  // strtoull would wrap these to ~2^64; they must be rejected, not run.
  EXPECT_THROW((void)parse_spec("sim_blocks = -5\n"), SpecError);
  EXPECT_THROW((void)parse_spec("sim_seed = -1\n"), SpecError);
  EXPECT_THROW((void)parse_spec("alphas = 0.4:0.1:0.1\n"), SpecError);
  EXPECT_THROW((void)parse_spec("just a line without equals\n"), SpecError);
}

TEST(SpecCodec, PrintRefusesValuesTheGrammarCannotCarry) {
  // '#' starts a comment and '\n' a new entry, so a free-text value holding
  // either would re-parse differently; print_spec refuses instead of
  // emitting a spec that silently breaks the round-trip contract.
  ExperimentSpec spec;
  spec.title = "experiment #1";
  EXPECT_THROW((void)print_spec(spec), SpecError);
  spec.title = "two\nlines";
  EXPECT_THROW((void)print_spec(spec), SpecError);
}

TEST(SpecCodec, SetOverridesApplyThroughTheSameValidation) {
  SpecEntries entries = parse_spec_entries(print_spec(preset_spec("fig8", false)));
  apply_override(entries, "gamma=0.3");
  apply_override(entries, "sim_runs=2");
  const ExperimentSpec spec = spec_from_entries(entries);
  EXPECT_EQ(spec.gamma, 0.3);
  EXPECT_EQ(spec.sim_runs, 2);

  // Unknown keys and malformed values fail exactly like spec files.
  SpecEntries bad = entries;
  apply_override(bad, "definitely_not_a_key=7");
  EXPECT_THROW((void)spec_from_entries(bad), SpecError);
  SpecEntries malformed = entries;
  apply_override(malformed, "gamma=not-a-number");
  EXPECT_THROW((void)spec_from_entries(malformed), SpecError);
  EXPECT_THROW(apply_override(entries, "missing-equals"), SpecError);
}

TEST(SpecCodec, RewardSpecStringsPriceLikeTheFactories) {
  const auto flat = parse_reward_spec("flat:0.5");
  const auto reference = rewards::RewardConfig::ethereum_flat(0.5);
  for (int d = 1; d <= 8; ++d) {
    EXPECT_EQ(flat.uncle_reward(d), reference.uncle_reward(d)) << d;
    EXPECT_EQ(flat.nephew_reward(d), reference.nephew_reward(d)) << d;
  }
  EXPECT_EQ(rewards::sweep_fingerprint(flat),
            rewards::sweep_fingerprint(reference));

  const auto wide = parse_reward_spec("flat:0.875:100");
  EXPECT_EQ(wide.reference_horizon(), 100);
  EXPECT_EQ(wide.uncle_reward(100), 0.875);

  const auto table = parse_reward_spec("table:0.9,0.6,0.3");
  EXPECT_EQ(table.uncle_reward(1), 0.9);
  EXPECT_EQ(table.uncle_reward(3), 0.3);
  EXPECT_EQ(table.uncle_reward(4), 0.0);
  EXPECT_EQ(table.reference_horizon(), 3);

  const auto bitcoin = parse_reward_spec("bitcoin");
  EXPECT_EQ(bitcoin.reference_horizon(), 0);

  EXPECT_THROW((void)parse_reward_spec("flat"), SpecError);
  EXPECT_THROW((void)parse_reward_spec("flat:-1"), SpecError);
  EXPECT_THROW((void)parse_reward_spec("golden"), SpecError);
}

TEST(SpecCodec, StrategySpecStrings) {
  const auto alg1 = parse_strategy_spec("selfish");
  EXPECT_FALSE(alg1.lead_stubborn);
  EXPECT_FALSE(alg1.equal_fork_stubborn);
  EXPECT_EQ(alg1.trail_stubbornness, 0);

  const auto lf = parse_strategy_spec("lead+fork");
  EXPECT_TRUE(lf.lead_stubborn);
  EXPECT_TRUE(lf.equal_fork_stubborn);

  const auto t2 = parse_strategy_spec("trail:2");
  EXPECT_EQ(t2.trail_stubbornness, 2);

  EXPECT_THROW((void)parse_strategy_spec("yolo"), SpecError);
  EXPECT_THROW((void)parse_strategy_spec("trail:0"), SpecError);
}

TEST(SpecCodec, FingerprintSeparatesSpecs) {
  const auto full = spec_fingerprint(preset_spec("fig8", false));
  const auto quick = spec_fingerprint(preset_spec("fig8", true));
  const auto other = spec_fingerprint(preset_spec("fig10", false));
  EXPECT_NE(full, quick);
  EXPECT_NE(full, other);
  // Deterministic across calls.
  EXPECT_EQ(full, spec_fingerprint(preset_spec("fig8", false)));
}

TEST(SpecCodec, UnknownPresetListsKnownNames) {
  try {
    (void)preset_spec("figure8", false);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("fig8"), std::string::npos);
  }
}

}  // namespace
}  // namespace ethsm::api
