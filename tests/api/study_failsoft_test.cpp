// Fail-soft study-runner tests (`ctest -L faults`): a cell whose run(spec)
// throws mid-study must not discard its completed siblings -- the failure is
// recorded (status=failed + error in manifest.json), the remaining cells
// still run, --retry re-attempts with backoff, and a failed cell's stale
// results directory is removed rather than left to contradict the manifest.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/study.h"

namespace ethsm::api {
namespace {

namespace fs = std::filesystem;

/// Three tiny network cells; the middle one passes spec validation (the
/// grammar cannot see the cross-field conflict) but run() deterministically
/// throws: two_clusters needs at least 2 honest nodes.
constexpr const char* kFailingStudy =
    "study = failsoft\n"
    "kind = net\n"
    "alphas = 0.3\n"
    "net.nodes = 3\n"
    "sim_runs = 1\n"
    "sim_blocks = 200\n"
    "variant.ok_a.net.latency = fixed:10\n"
    "variant.bad.net.topology = two_clusters:100\n"
    "variant.bad.net.nodes = 1\n"
    "variant.ok_b.net.latency = fixed:20\n";

class StudyFailSoftTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    root_ = fs::path(::testing::TempDir()) /
            ("ethsm_failsoft_" + std::to_string(counter++));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static std::string slurp(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  fs::path root_;
};

TEST_F(StudyFailSoftTest, ThrowingCellDoesNotDiscardItsSiblings) {
  const auto entries = expand_study(parse_study(kFailingStudy), false);
  ASSERT_EQ(entries.size(), 3u);

  const StudyResult study = run_study("failsoft", "", entries, {});
  ASSERT_EQ(study.entries.size(), 3u);

  EXPECT_FALSE(study.entries[0].failed);
  EXPECT_TRUE(study.entries[0].result.complete());
  EXPECT_EQ(study.entries[0].attempts, 1);

  EXPECT_TRUE(study.entries[1].failed);
  EXPECT_EQ(study.entries[1].attempts, 1);  // no retries by default
  EXPECT_NE(study.entries[1].error.find("two_clusters"), std::string::npos)
      << study.entries[1].error;
  // The failed cell still carries provenance for GC keep-sets.
  EXPECT_FALSE(study.entries[1].result.sweep_fingerprints.empty());

  // The sibling AFTER the failure completed -- the study kept going.
  EXPECT_FALSE(study.entries[2].failed);
  EXPECT_TRUE(study.entries[2].result.complete());

  EXPECT_TRUE(study.any_failed());
  EXPECT_FALSE(study.complete());

  // The results tree: artefacts for the healthy cells, a failed record (with
  // the error) in the manifest, and no directory for the failed cell.
  const fs::path out = root_ / "out";
  write_study_results(study, out.string());
  EXPECT_TRUE(fs::exists(out / study.entries[0].dir / "data.json"));
  EXPECT_TRUE(fs::exists(out / study.entries[2].dir / "data.json"));
  EXPECT_FALSE(fs::exists(out / study.entries[1].dir));

  const std::string manifest = slurp(out / "manifest.json");
  EXPECT_NE(manifest.find("\"status\": \"failed\""), std::string::npos);
  EXPECT_NE(manifest.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(manifest.find("two_clusters"), std::string::npos);
  EXPECT_NE(manifest.find("\"complete\": false"), std::string::npos);
}

TEST_F(StudyFailSoftTest, RetryPolicyReattemptsWithExponentialBackoff) {
  const auto entries = expand_study(parse_study(kFailingStudy), false);

  StudyFailurePolicy policy;
  policy.retries = 2;
  std::vector<double> backoffs;
  policy.sleeper = [&backoffs](double ms) { backoffs.push_back(ms); };

  const StudyResult study =
      run_study("failsoft", "", entries, {}, {}, {}, policy);

  // A deterministic failure burns the whole attempt budget; the healthy
  // cells never retry and never sleep.
  EXPECT_EQ(study.entries[0].attempts, 1);
  EXPECT_EQ(study.entries[1].attempts, 3);
  EXPECT_TRUE(study.entries[1].failed);
  EXPECT_EQ(study.entries[2].attempts, 1);
  EXPECT_EQ(backoffs, (std::vector<double>{250.0, 500.0}));
}

TEST_F(StudyFailSoftTest, FailedCellRemovesItsStaleResultsDirectory) {
  // First a fully healthy run of the same three cell names...
  const char* healthy =
      "study = failsoft\n"
      "kind = net\n"
      "alphas = 0.3\n"
      "net.nodes = 3\n"
      "sim_runs = 1\n"
      "sim_blocks = 200\n"
      "variant.ok_a.net.latency = fixed:10\n"
      "variant.bad.net.latency = fixed:15\n"
      "variant.ok_b.net.latency = fixed:20\n";
  const fs::path out = root_ / "out";
  write_study_results(
      run_study("failsoft", "",
                expand_study(parse_study(healthy), false), {}),
      out.string());
  ASSERT_TRUE(fs::exists(out / "bad" / "data.json"));

  // ...then the edited study whose "bad" cell now throws, into the same
  // --out: the stale directory must not survive to contradict the manifest.
  write_study_results(
      run_study("failsoft", "",
                expand_study(parse_study(kFailingStudy), false), {}),
      out.string());
  EXPECT_FALSE(fs::exists(out / "bad"));
  EXPECT_TRUE(fs::exists(out / "ok_a" / "data.json"));
  EXPECT_TRUE(fs::exists(out / "ok_b" / "data.json"));
}

}  // namespace
}  // namespace ethsm::api
