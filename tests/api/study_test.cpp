// Study-layer tests (`ctest -L study`): the matrix/variant expansion
// contract -- deterministic ordering, print_spec round-trips, duplicate
// variant / unknown matrix key / malformed grammar errors -- plus the run
// contract: one shared checkpoint directory across specs, a cross-spec
// --max-new-jobs budget, and an interrupted-and-resumed study whose results
// tree is bitwise-identical to an uninterrupted run.

#include "api/study.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

#include "api/presets.h"
#include "api/render.h"
#include "support/checkpoint.h"

namespace ethsm::api {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCrossoverStudy =
    "# Fig. 9-style schedules crossed with gamma\n"
    "study = crossover\n"
    "title = Schedules x gamma\n"
    "kind = revenue\n"
    "alphas = 0.2,0.4\n"
    "max_lead = 40\n"
    "variant.byzantium.rewards = byzantium\n"
    "variant.flat48.rewards = flat:0.5\n"
    "matrix.gamma = 0|0.5|1\n"
    "quick.alphas = 0.3\n";

TEST(StudyExpand, DeterministicMatrixOrderVariantsOuterLastAxisFastest) {
  const StudySpec study = parse_study(
      "study = order\n"
      "kind = threshold\n"
      "variant.a.tolerance = 1e-2\n"
      "variant.b.tolerance = 1e-3\n"
      "matrix.gamma = 0|1\n"
      "matrix.threshold_max_lead = 30|40\n");
  const auto entries = expand_study(study, /*quick=*/false);
  ASSERT_EQ(entries.size(), 8u);
  const char* expected[] = {
      "a, gamma=0, threshold_max_lead=30", "a, gamma=0, threshold_max_lead=40",
      "a, gamma=1, threshold_max_lead=30", "a, gamma=1, threshold_max_lead=40",
      "b, gamma=0, threshold_max_lead=30", "b, gamma=0, threshold_max_lead=40",
      "b, gamma=1, threshold_max_lead=30", "b, gamma=1, threshold_max_lead=40",
  };
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].name, expected[i]) << i;
  }
  // Expansion is a pure function of (study, quick, overrides).
  const auto again = expand_study(study, false);
  ASSERT_EQ(again.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(again[i].name, entries[i].name);
    EXPECT_EQ(again[i].spec, entries[i].spec);
  }
}

TEST(StudyExpand, EveryCellRoundTripsThroughPrintSpec) {
  for (const bool quick : {false, true}) {
    for (const StudyEntry& entry :
         expand_study(parse_study(kCrossoverStudy), quick)) {
      const std::string text = print_spec(entry.spec);
      EXPECT_EQ(parse_spec(text), entry.spec)
          << entry.name << "\n--- printed ---\n" << text;
    }
  }
}

TEST(StudyExpand, QuickOverridesApplyOnlyWhenQuick) {
  const StudySpec study = parse_study(kCrossoverStudy);
  const auto full = expand_study(study, false);
  const auto quick = expand_study(study, true);
  ASSERT_EQ(full.size(), 6u);  // 2 variants x 3 gammas
  ASSERT_EQ(quick.size(), 6u);
  EXPECT_EQ(full.front().spec.alphas, (std::vector<double>{0.2, 0.4}));
  EXPECT_EQ(quick.front().spec.alphas, (std::vector<double>{0.3}));
}

TEST(StudyExpand, SetOverridesApplyToEveryCellAndWinLast) {
  const auto entries =
      expand_study(parse_study(kCrossoverStudy), false, {"gamma=0.25"});
  for (const StudyEntry& entry : entries) {
    EXPECT_EQ(entry.spec.gamma, 0.25) << entry.name;  // beats the matrix
  }
  EXPECT_THROW(
      (void)expand_study(parse_study(kCrossoverStudy), false, {"bogus=1"}),
      SpecError);
}

TEST(StudyExpand, MatrixlessStudyIsOneCellPerVariant) {
  const auto entries = parse_study(
      "study = zoo\nkind = threshold\n"
      "variant.byz.rewards = byzantium\n"
      "variant.flat.rewards = flat:0.5\n");
  const auto expanded = expand_study(entries, false);
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0].name, "byz");
  EXPECT_EQ(expanded[1].name, "flat");
  // No variants at all: a single implicit "base" cell.
  const auto single =
      expand_study(parse_study("study = solo\nkind = reward_table\n"), false);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].name, "base");
  EXPECT_EQ(single[0].spec.title, "solo");  // synthesized, no [cell] suffix
}

TEST(StudyExpand, DuplicateVariantNameIsError) {
  EXPECT_THROW((void)parse_study("study = s\n"
                                 "variant.a.gamma = 0.1\n"
                                 "variant.b.gamma = 0.2\n"
                                 "variant.a.alpha = 0.3\n"),
               SpecError);
}

TEST(StudyExpand, UnknownMatrixKeyIsError) {
  EXPECT_THROW(
      (void)expand_study(
          parse_study("study = s\nkind = threshold\nmatrix.bogus = 1|2\n"),
          false),
      SpecError);
  // ... and so is an unknown key inside a variant block.
  EXPECT_THROW(
      (void)expand_study(
          parse_study("study = s\nkind = threshold\nvariant.a.bogus = 1\n"),
          false),
      SpecError);
}

TEST(StudyExpand, GrammarErrors) {
  // A study file needs a name; plain spec files are not studies.
  EXPECT_THROW((void)parse_study("kind = threshold\n"), SpecError);
  EXPECT_THROW((void)parse_study("study = has space\n"), SpecError);
  EXPECT_THROW((void)parse_study("study = s\nstudy = t\n"), SpecError);
  EXPECT_THROW((void)parse_study("study = s\nmatrix.gamma = 0||1\n"),
               SpecError);
  EXPECT_THROW((void)parse_study("study = s\nmatrix.gamma =\n"), SpecError);
  EXPECT_THROW(
      (void)parse_study("study = s\nmatrix.gamma = 0|1\nmatrix.gamma = 2|3\n"),
      SpecError);
  EXPECT_THROW((void)parse_study("study = s\nvariant.a = 1\n"), SpecError);
  EXPECT_THROW((void)parse_study("study = s\nvariant.a/b.gamma = 1\n"),
               SpecError);
}

TEST(StudyExpand, PaperStudyCoversEveryPreset) {
  for (const bool quick : {false, true}) {
    const auto entries = paper_study_entries(quick);
    ASSERT_EQ(entries.size(), presets().size());
    for (std::size_t i = 0; i < entries.size(); ++i) {
      EXPECT_EQ(entries[i].name, presets()[i].name);
      EXPECT_EQ(entries[i].dir, presets()[i].name);
      EXPECT_EQ(entries[i].spec, presets()[i].spec(quick));
    }
  }
}

// ---------------------------------------------------------------- running --

class StudyRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    root_ = fs::path(::testing::TempDir()) /
            ("ethsm_study_" + std::to_string(counter++));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  /// A small two-variant threshold study: 2 specs x 2 gamma jobs, all
  /// behind the checkpoint-aware threshold_curve driver.
  static StudySpec small_study() {
    return parse_study(
        "study = small\n"
        "kind = threshold\n"
        "gammas = 0,1\n"
        "tolerance = 1e-2\n"
        "threshold_max_lead = 25\n"
        "variant.byz.rewards = byzantium\n"
        "variant.flat.rewards = flat:0.5\n");
  }

  /// Reads every regular file under `dir` into a path -> contents map with
  /// paths relative to `dir` (the bitwise tree comparison). The manifest's
  /// per-cell "timing" objects are run-mode-dependent by design (wall time,
  /// computed-vs-loaded job counts), so they are masked out with the same
  /// regex tools/compare_trees.py uses; everything else must be bitwise
  /// identical.
  static std::map<std::string, std::string> snapshot(const fs::path& dir) {
    static const std::regex timing_re(R"(,\s*"timing": \{[^}]*\})");
    std::map<std::string, std::string> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream os;
      os << in.rdbuf();
      std::string contents = os.str();
      if (entry.path().filename() == "manifest.json") {
        contents = std::regex_replace(contents, timing_re, "");
      }
      files[fs::relative(entry.path(), dir).string()] = contents;
    }
    return files;
  }

  fs::path root_;
};

TEST_F(StudyRunTest, SharedCheckpointDirectoryAcrossSpecs) {
  const auto entries = expand_study(small_study(), false);
  ASSERT_EQ(entries.size(), 2u);

  RunOptions options;
  options.checkpoint.directory = (root_ / "ck").string();
  const StudyResult first = run_study("small", "", entries, options);
  EXPECT_TRUE(first.complete());
  EXPECT_EQ(first.outcome.jobs_total, 4u);
  EXPECT_EQ(first.outcome.computed, 4u);

  // Both specs' sweeps landed in the one directory...
  std::set<std::uint64_t> fingerprints;
  for (const auto& file :
       support::scan_checkpoint_directory(options.checkpoint.directory)) {
    ASSERT_TRUE(file.readable);
    fingerprints.insert(file.fingerprint);
  }
  EXPECT_EQ(fingerprints.size(), 2u);

  // ...and a re-run satisfies every job from disk.
  const StudyResult second = run_study("small", "", entries, options);
  EXPECT_TRUE(second.complete());
  EXPECT_EQ(second.outcome.loaded, 4u);
  EXPECT_EQ(second.outcome.computed, 0u);
}

TEST_F(StudyRunTest, BudgetIsConsumedAcrossSpecsNotPerSpec) {
  const auto entries = expand_study(small_study(), false);
  RunOptions options;
  options.checkpoint.directory = (root_ / "ck").string();
  options.checkpoint.max_new_jobs = 3;  // < 4 total, > 2 per spec
  const StudyResult interrupted = run_study("small", "", entries, options);
  EXPECT_FALSE(interrupted.complete());
  // A per-spec budget would have computed 2 + 2; the study budget stops at 3.
  EXPECT_EQ(interrupted.outcome.computed, 3u);
  EXPECT_EQ(interrupted.outcome.skipped, 1u);
}

TEST_F(StudyRunTest, InterruptedResumeWritesBitwiseIdenticalTree) {
  const StudySpec study = small_study();
  const auto entries = expand_study(study, false);

  // Reference: one uninterrupted run (checkpointed, like the real CLI use).
  RunOptions uninterrupted;
  uninterrupted.checkpoint.directory = (root_ / "ck_fresh").string();
  write_study_results(run_study("small", "", entries, uninterrupted),
                      (root_ / "fresh").string());

  // Interrupted: one job per invocation until the study completes.
  RunOptions drip;
  drip.checkpoint.directory = (root_ / "ck_drip").string();
  drip.checkpoint.max_new_jobs = 1;
  for (int attempt = 0; attempt < 8; ++attempt) {
    const StudyResult partial = run_study("small", "", entries, drip);
    write_study_results(partial, (root_ / "resumed").string());
    if (partial.complete()) break;
  }

  const auto fresh = snapshot(root_ / "fresh");
  const auto resumed = snapshot(root_ / "resumed");
  ASSERT_FALSE(fresh.empty());
  ASSERT_EQ(fresh.size(), resumed.size());
  for (const auto& [path, contents] : fresh) {
    ASSERT_TRUE(resumed.count(path)) << path;
    EXPECT_EQ(resumed.at(path), contents) << path << " differs";
  }

  // And both match a checkpoint-free run of the same entries.
  write_study_results(run_study("small", "", entries, {}),
                      (root_ / "plain").string());
  const auto plain = snapshot(root_ / "plain");
  ASSERT_EQ(plain.size(), fresh.size());
  for (const auto& [path, contents] : fresh) {
    EXPECT_EQ(plain.at(path), contents) << path << " differs";
  }
}

TEST_F(StudyRunTest, EditedStudyCleansUpStaleEntryDirectories) {
  const auto entries = expand_study(small_study(), false);
  const fs::path out = root_ / "out";
  write_study_results(run_study("small", "", entries, {}), out.string());
  ASSERT_TRUE(fs::exists(out / "flat" / "data.json"));

  // The user removes the "flat" variant and re-runs into the same --out: the
  // dead cell's directory must go away with it, or consumers globbing
  // **/data.json would pick up a cell the manifest no longer lists.
  const std::vector<StudyEntry> reduced(entries.begin(), entries.begin() + 1);
  write_study_results(run_study("small", "", reduced, {}), out.string());
  EXPECT_TRUE(fs::exists(out / "byz" / "data.json"));
  EXPECT_FALSE(fs::exists(out / "flat"));

  // A foreign directory the manifest never listed is left alone.
  fs::create_directories(out / "not-ours");
  write_study_results(run_study("small", "", reduced, {}), out.string());
  EXPECT_TRUE(fs::exists(out / "not-ours"));
}

TEST_F(StudyRunTest, ManifestListsEveryEntryWithFingerprints) {
  const auto entries = expand_study(small_study(), false);
  const StudyResult result = run_study("small", "Small", entries, {});
  write_study_results(result, (root_ / "out").string());

  std::ifstream in(root_ / "out" / "manifest.json");
  ASSERT_TRUE(in);
  std::ostringstream os;
  os << in.rdbuf();
  const std::string manifest = os.str();
  for (const StudyEntryResult& entry : result.entries) {
    EXPECT_NE(manifest.find("\"" + entry.name + "\""), std::string::npos);
    char fp[32];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(entry.result.spec_fingerprint));
    EXPECT_NE(manifest.find(fp), std::string::npos) << entry.name;
    for (std::uint64_t sweep : entry.result.sweep_fingerprints) {
      std::snprintf(fp, sizeof fp, "%016llx",
                    static_cast<unsigned long long>(sweep));
      EXPECT_NE(manifest.find(fp), std::string::npos) << entry.name;
    }
    EXPECT_TRUE(fs::exists(root_ / "out" / entry.dir / "table.txt"));
    EXPECT_TRUE(fs::exists(root_ / "out" / entry.dir / "data.json"));
    EXPECT_TRUE(fs::exists(root_ / "out" / entry.dir / "data.csv"));
  }
}

TEST_F(StudyRunTest, CellShardsPartitionCellsAndMergeBitwise) {
  const auto entries = expand_study(small_study(), false);
  ASSERT_EQ(entries.size(), 2u);

  // The reference: an unsharded run's results tree.
  write_study_results(run_study("small", "", entries, {}),
                      (root_ / "fresh").string());

  // Two cell shards share one checkpoint directory; cell i belongs to shard
  // i % N, and a foreign cell is skipped outright (no jobs, no files).
  RunOptions options;
  options.checkpoint.directory = (root_ / "ck").string();
  for (std::uint32_t k = 0; k < 2; ++k) {
    const StudyResult shard = run_study("small", "", entries, options, {},
                                        support::ShardSpec{k, 2});
    EXPECT_FALSE(shard.complete());  // the foreign cell is missing
    ASSERT_EQ(shard.entries.size(), 2u);
    for (std::size_t i = 0; i < shard.entries.size(); ++i) {
      EXPECT_EQ(shard.entries[i].cell_owner, i % 2);
      EXPECT_EQ(shard.entries[i].skipped, i % 2 != k);
      // Skipped cells still carry provenance for GC keep-sets.
      EXPECT_EQ(shard.entries[i].result.sweep_fingerprints,
                sweep_fingerprints(entries[i].spec));
    }
    EXPECT_EQ(shard.outcome.jobs_total, 2u);  // one owned cell = 2 gamma jobs

    // The manifest records the assignment.
    write_study_results(shard, (root_ / ("shard" + std::to_string(k))).string());
    std::ifstream in(root_ / ("shard" + std::to_string(k)) / "manifest.json");
    std::ostringstream os;
    os << in.rdbuf();
    EXPECT_NE(os.str().find("\"cell_shard\": \"" + std::to_string(k) + "/2\""),
              std::string::npos);
    EXPECT_NE(os.str().find("\"cell_owner\": 1"), std::string::npos);
    // A skipped cell writes no directory.
    EXPECT_FALSE(fs::exists(root_ / ("shard" + std::to_string(k)) /
                            entries[k == 0 ? 1 : 0].dir));
  }

  // A merge pass without a cell shard loads everything from the shared
  // checkpoint directory and writes a tree bitwise-identical to the fresh
  // unsharded run.
  const StudyResult merged = run_study("small", "", entries, options);
  EXPECT_TRUE(merged.complete());
  EXPECT_EQ(merged.outcome.loaded, 4u);
  EXPECT_EQ(merged.outcome.computed, 0u);
  write_study_results(merged, (root_ / "merged").string());
  EXPECT_EQ(snapshot(root_ / "fresh"), snapshot(root_ / "merged"));
}

TEST_F(StudyRunTest, UnshardedManifestCarriesNoCellShardFields) {
  const auto entries = expand_study(small_study(), false);
  write_study_results(run_study("small", "", entries, {}),
                      (root_ / "out").string());
  std::ifstream in(root_ / "out" / "manifest.json");
  std::ostringstream os;
  os << in.rdbuf();
  EXPECT_EQ(os.str().find("cell_shard"), std::string::npos);
  EXPECT_EQ(os.str().find("cell_owner"), std::string::npos);
  EXPECT_EQ(os.str().find("skipped"), std::string::npos);
}

}  // namespace
}  // namespace ethsm::api
