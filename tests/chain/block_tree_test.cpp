#include "chain/block_tree.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ethsm::chain {
namespace {

TEST(BlockTree, StartsWithPublishedGenesis) {
  BlockTree t;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.genesis(), 0u);
  EXPECT_EQ(t.height(t.genesis()), 0u);
  EXPECT_TRUE(t.is_published(t.genesis()));
  EXPECT_EQ(t.parent(t.genesis()), kNoBlock);
}

TEST(BlockTree, AppendSetsHeightAndLinks) {
  BlockTree t;
  const BlockId a = t.append(t.genesis(), MinerClass::honest, 3, 1.0);
  const BlockId b = t.append(a, MinerClass::selfish, 7, 2.0);
  EXPECT_EQ(t.height(a), 1u);
  EXPECT_EQ(t.height(b), 2u);
  EXPECT_EQ(t.parent(b), a);
  EXPECT_EQ(t.block(b).miner, MinerClass::selfish);
  EXPECT_EQ(t.block(b).miner_id, 7u);
  EXPECT_DOUBLE_EQ(t.block(b).mined_at, 2.0);
  ASSERT_EQ(t.children(a).size(), 1u);
  EXPECT_EQ(t.children(a)[0], b);
}

TEST(BlockTree, AppendedBlocksStartUnpublished) {
  BlockTree t;
  const BlockId a = t.append(t.genesis(), MinerClass::selfish, 0, 1.0);
  EXPECT_FALSE(t.is_published(a));
  t.publish(a, 5.0);
  EXPECT_TRUE(t.is_published(a));
  EXPECT_DOUBLE_EQ(t.block(a).published_at, 5.0);
}

TEST(BlockTree, PublishTwiceIsAnError) {
  BlockTree t;
  const BlockId a = t.append(t.genesis(), MinerClass::honest, 0, 1.0);
  t.publish(a, 1.0);
  EXPECT_THROW(t.publish(a, 2.0), std::invalid_argument);
}

TEST(BlockTree, PublishBeforeMinedIsAnError) {
  BlockTree t;
  const BlockId a = t.append(t.genesis(), MinerClass::honest, 0, 3.0);
  EXPECT_THROW(t.publish(a, 2.0), std::invalid_argument);
}

TEST(BlockTree, RejectsUnknownIds) {
  BlockTree t;
  EXPECT_THROW(t.height(42), std::invalid_argument);
  EXPECT_THROW((void)t.append(42, MinerClass::honest, 0, 1.0),
               std::invalid_argument);
}

TEST(BlockTree, MinedCountsByClass) {
  BlockTree t;
  const BlockId a = t.append(t.genesis(), MinerClass::honest, 0, 1.0);
  t.append(a, MinerClass::selfish, 0, 2.0);
  t.append(a, MinerClass::selfish, 0, 2.5);
  EXPECT_EQ(t.mined_count(MinerClass::honest), 1u);
  EXPECT_EQ(t.mined_count(MinerClass::selfish), 2u);
}

class ForkedTree : public ::testing::Test {
 protected:
  // genesis - a - b - c
  //             \ x - y      (fork at a)
  void SetUp() override {
    a = t.append(t.genesis(), MinerClass::honest, 0, 1.0);
    b = t.append(a, MinerClass::honest, 0, 2.0);
    c = t.append(b, MinerClass::honest, 0, 3.0);
    x = t.append(a, MinerClass::selfish, 0, 2.1);
    y = t.append(x, MinerClass::selfish, 0, 3.1);
  }
  BlockTree t;
  BlockId a{}, b{}, c{}, x{}, y{};
};

TEST_F(ForkedTree, IsAncestorOf) {
  EXPECT_TRUE(t.is_ancestor_of(t.genesis(), c));
  EXPECT_TRUE(t.is_ancestor_of(a, c));
  EXPECT_TRUE(t.is_ancestor_of(a, y));
  EXPECT_TRUE(t.is_ancestor_of(b, c));
  EXPECT_FALSE(t.is_ancestor_of(b, y));
  EXPECT_FALSE(t.is_ancestor_of(x, c));
  EXPECT_FALSE(t.is_ancestor_of(c, a));  // direction matters
  EXPECT_TRUE(t.is_ancestor_of(c, c));   // reflexive
}

TEST_F(ForkedTree, AncestorAtHeight) {
  EXPECT_EQ(t.ancestor_at_height(c, 0), t.genesis());
  EXPECT_EQ(t.ancestor_at_height(c, 1), a);
  EXPECT_EQ(t.ancestor_at_height(c, 2), b);
  EXPECT_EQ(t.ancestor_at_height(y, 2), x);
  EXPECT_THROW(t.ancestor_at_height(a, 5), std::invalid_argument);
}

TEST_F(ForkedTree, ChainFromGenesis) {
  const auto chain = t.chain_from_genesis(c);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0], t.genesis());
  EXPECT_EQ(chain[1], a);
  EXPECT_EQ(chain[2], b);
  EXPECT_EQ(chain[3], c);
}

TEST_F(ForkedTree, ChildrenListsForks) {
  ASSERT_EQ(t.children(a).size(), 2u);
  EXPECT_EQ(t.children(a)[0], b);
  EXPECT_EQ(t.children(a)[1], x);
}

TEST(BlockTree, UncleRefsLiveInTheArenaAndSurviveGrowth) {
  BlockTree t;
  const BlockId stale = t.append(t.genesis(), MinerClass::honest, 0, 1.0);
  t.publish(stale, 1.0);
  const BlockId main1 = t.append(t.genesis(), MinerClass::honest, 0, 1.1);
  const BlockId main2 =
      t.append(main1, MinerClass::honest, 0, 2.0, {stale});
  ASSERT_EQ(t.uncle_refs(main2).size(), 1u);
  EXPECT_EQ(t.uncle_refs(main2)[0], stale);
  EXPECT_TRUE(t.uncle_refs(main1).empty());

  // Feeding a block's own arena slice back into append must stay valid even
  // while the arena reallocates underneath the span.
  BlockId tip = main2;
  for (int i = 0; i < 64; ++i) {
    tip = t.append(tip, MinerClass::honest, 0, 3.0 + i, t.uncle_refs(main2));
    ASSERT_EQ(t.uncle_refs(tip).size(), 1u);
    ASSERT_EQ(t.uncle_refs(tip)[0], stale) << i;
  }
}

}  // namespace
}  // namespace ethsm::chain
