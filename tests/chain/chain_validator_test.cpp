#include "chain/chain_validator.h"

#include <gtest/gtest.h>

namespace ethsm::chain {
namespace {

class ValidatorFixture : public ::testing::Test {
 protected:
  BlockId add(BlockId parent, MinerClass who, double when,
              std::vector<BlockId> refs = {}) {
    const BlockId id = t.append(parent, who, 0, when, std::move(refs));
    t.publish(id, when);
    return id;
  }
  BlockTree t;
  rewards::RewardConfig byz = rewards::RewardConfig::ethereum_byzantium();
};

TEST_F(ValidatorFixture, CleanChainPasses) {
  BlockId tip = t.genesis();
  for (int i = 0; i < 10; ++i) tip = add(tip, MinerClass::honest, 1.0 + i);
  const auto report = validate_chain(t, byz, tip);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST_F(ValidatorFixture, ValidUncleReferencePasses) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u = add(t.genesis(), MinerClass::selfish, 1.1);
  const BlockId b = add(a, MinerClass::honest, 2.0, {u});
  const auto report = validate_chain(t, byz, b);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST_F(ValidatorFixture, DetectsReferenceBeyondHorizon) {
  const BlockId u = add(t.genesis(), MinerClass::honest, 1.0);
  BlockId tip = add(t.genesis(), MinerClass::honest, 1.1);
  for (int i = 0; i < 6; ++i) tip = add(tip, MinerClass::honest, 2.0 + i);
  // tip is at height 7; referencing u (height 1) means distance 7 > 6.
  const BlockId bad = add(tip, MinerClass::honest, 9.0, {u});
  const auto report = validate_chain(t, byz, bad);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("distance"), std::string::npos);
}

TEST_F(ValidatorFixture, DetectsAncestorReference) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId b = add(a, MinerClass::honest, 2.0, {a});
  const auto report = validate_chain(t, byz, b);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    found = found || v.find("ancestor") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidatorFixture, DetectsUncleWhoseParentIsOffChain) {
  // u2's parent u1 is stale: u2 must not be referenced.
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u1 = add(t.genesis(), MinerClass::honest, 1.1);
  const BlockId u2 = add(u1, MinerClass::honest, 1.2);
  const BlockId b = add(a, MinerClass::honest, 2.0);
  const BlockId c = add(b, MinerClass::honest, 3.0, {u2});
  const auto report = validate_chain(t, byz, c);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    found = found || v.find("parent not on") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidatorFixture, DetectsDoubleReferenceAlongChain) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u = add(t.genesis(), MinerClass::honest, 1.1);
  const BlockId b = add(a, MinerClass::honest, 2.0, {u});
  const BlockId c = add(b, MinerClass::honest, 3.0, {u});  // double ref
  const auto report = validate_chain(t, byz, c);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    found = found || v.find("twice") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidatorFixture, DetectsDuplicateReferenceWithinBlock) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u = add(t.genesis(), MinerClass::honest, 1.1);
  const BlockId b = add(a, MinerClass::honest, 2.0, {u, u});
  const auto report = validate_chain(t, byz, b);
  ASSERT_FALSE(report.ok());
}

TEST_F(ValidatorFixture, DetectsTooManyReferences) {
  rewards::RewardConfig capped = byz;
  capped.max_uncles_per_block = 1;
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u1 = add(t.genesis(), MinerClass::honest, 1.1);
  const BlockId u2 = add(t.genesis(), MinerClass::honest, 1.2);
  const BlockId b = add(a, MinerClass::honest, 2.0, {u1, u2});
  EXPECT_TRUE(validate_chain(t, byz, b).ok());      // unlimited: fine
  EXPECT_FALSE(validate_chain(t, capped, b).ok());  // cap 1: violation
}

TEST_F(ValidatorFixture, DetectsReferenceToInvisibleBlock) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  // u is mined but published only *after* b references it.
  const BlockId u = t.append(t.genesis(), MinerClass::selfish, 0, 1.1);
  const BlockId b = add(a, MinerClass::honest, 2.0, {u});
  t.publish(u, 5.0);
  const auto report = validate_chain(t, byz, b);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    found = found || v.find("visible") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST_F(ValidatorFixture, DetectsUnpublishedMainChain) {
  const BlockId a = t.append(t.genesis(), MinerClass::selfish, 0, 1.0);
  const auto report = validate_chain(t, byz, a);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("unpublished"), std::string::npos);
}

TEST_F(ValidatorFixture, SkipsMainChainChecksWithoutTip) {
  t.append(t.genesis(), MinerClass::selfish, 0, 1.0);  // unpublished
  EXPECT_TRUE(validate_chain(t, byz).ok());
}

}  // namespace
}  // namespace ethsm::chain
