#include "chain/reward_ledger.h"

#include <gtest/gtest.h>

namespace ethsm::chain {
namespace {

class LedgerFixture : public ::testing::Test {
 protected:
  BlockId add(BlockId parent, MinerClass who, double when,
              std::vector<BlockId> refs = {}, std::uint32_t miner_id = 0) {
    const BlockId id = t.append(parent, who, miner_id, when, std::move(refs));
    t.publish(id, when);
    return id;
  }
  BlockTree t;
  rewards::RewardConfig byz = rewards::RewardConfig::ethereum_byzantium();
};

TEST_F(LedgerFixture, PlainChainPaysStaticOnly) {
  BlockId tip = t.genesis();
  for (int i = 0; i < 5; ++i) tip = add(tip, MinerClass::honest, 1.0 + i);
  const auto res = settle_rewards(t, tip, byz);
  EXPECT_DOUBLE_EQ(res.of(MinerClass::honest).static_reward, 5.0);
  EXPECT_DOUBLE_EQ(res.of(MinerClass::honest).uncle_reward, 0.0);
  EXPECT_DOUBLE_EQ(res.of(MinerClass::honest).nephew_reward, 0.0);
  EXPECT_EQ(res.fate_of(MinerClass::honest).regular, 5u);
  EXPECT_EQ(res.regular_total(), 5u);
}

TEST_F(LedgerFixture, GenesisEarnsNothing) {
  const auto res = settle_rewards(t, t.genesis(), byz);
  EXPECT_DOUBLE_EQ(res.of(MinerClass::honest).total(), 0.0);
  EXPECT_EQ(res.regular_total(), 0u);
}

TEST_F(LedgerFixture, UncleAndNephewPayouts) {
  // genesis -> a (honest, main), u (selfish, stale child of genesis),
  // b (honest, main, references u at distance 2).
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u = add(t.genesis(), MinerClass::selfish, 1.1);
  const BlockId b = add(a, MinerClass::honest, 2.0, {u});
  const auto res = settle_rewards(t, b, byz);

  EXPECT_DOUBLE_EQ(res.of(MinerClass::honest).static_reward, 2.0);
  // u at height 1, b at height 2 => distance 1 => Ku = 7/8 to the pool.
  EXPECT_DOUBLE_EQ(res.of(MinerClass::selfish).uncle_reward, 7.0 / 8.0);
  EXPECT_DOUBLE_EQ(res.of(MinerClass::honest).nephew_reward, 1.0 / 32.0);
  EXPECT_EQ(res.fate_of(MinerClass::selfish).referenced_uncle, 1u);
  EXPECT_EQ(res.referenced_uncle_total(), 1u);
  // Distance histogram (pool's uncle at distance 1).
  EXPECT_EQ(res.uncle_distance[static_cast<std::size_t>(MinerClass::selfish)]
                .at(1),
            1u);
}

TEST_F(LedgerFixture, DistanceTwoUsesScheduleValue) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u = add(t.genesis(), MinerClass::honest, 1.1);
  const BlockId b = add(a, MinerClass::honest, 2.0);
  const BlockId c = add(b, MinerClass::selfish, 3.0, {u});
  const auto res = settle_rewards(t, c, byz);
  // u at height 1, c at height 3 => distance 2 => Ku = 6/8 (honest's uncle),
  // nephew 1/32 to the pool.
  EXPECT_DOUBLE_EQ(res.of(MinerClass::honest).uncle_reward, 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(res.of(MinerClass::selfish).nephew_reward, 1.0 / 32.0);
}

TEST_F(LedgerFixture, UnreferencedStaleEarnsNothing) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  add(t.genesis(), MinerClass::selfish, 1.1);  // stale, never referenced
  const BlockId b = add(a, MinerClass::honest, 2.0);
  const auto res = settle_rewards(t, b, byz);
  EXPECT_DOUBLE_EQ(res.of(MinerClass::selfish).total(), 0.0);
  EXPECT_EQ(res.fate_of(MinerClass::selfish).stale, 1u);
  EXPECT_EQ(res.fate_of(MinerClass::selfish).referenced_uncle, 0u);
}

TEST_F(LedgerFixture, EveryBlockClassifiedExactlyOnce) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u = add(t.genesis(), MinerClass::selfish, 1.1);
  const BlockId v = add(u, MinerClass::selfish, 1.2);  // stale child of stale
  const BlockId b = add(a, MinerClass::honest, 2.0, {u});
  const auto res = settle_rewards(t, b, byz);
  const std::uint64_t classified = res.fate_of(MinerClass::honest).total() +
                                   res.fate_of(MinerClass::selfish).total();
  EXPECT_EQ(classified, t.size() - 1);  // everything except genesis
  (void)v;
}

TEST_F(LedgerFixture, ClassifyBlocksMatchesFates) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u = add(t.genesis(), MinerClass::selfish, 1.1);
  const BlockId b = add(a, MinerClass::honest, 2.0, {u});
  const auto fates = classify_blocks(t, b);
  EXPECT_EQ(fates[t.genesis()], BlockFate::regular);
  EXPECT_EQ(fates[a], BlockFate::regular);
  EXPECT_EQ(fates[b], BlockFate::regular);
  EXPECT_EQ(fates[u], BlockFate::referenced_uncle);
}

TEST_F(LedgerFixture, PerMinerAccounting) {
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0, {}, 3);
  const BlockId u = add(t.genesis(), MinerClass::honest, 1.1, {}, 4);
  const BlockId b = add(a, MinerClass::honest, 2.0, {u}, 5);
  const auto res = settle_rewards(t, b, byz, 10);
  ASSERT_EQ(res.per_miner_reward.size(), 10u);
  EXPECT_DOUBLE_EQ(res.per_miner_reward[3], 1.0);             // static only
  EXPECT_DOUBLE_EQ(res.per_miner_reward[4], 7.0 / 8.0);       // uncle
  EXPECT_DOUBLE_EQ(res.per_miner_reward[5], 1.0 + 1.0 / 32.0);  // static+nephew
}

TEST_F(LedgerFixture, BitcoinConfigPaysNoUncleRewards) {
  const auto btc = rewards::RewardConfig::bitcoin();
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId b = add(a, MinerClass::honest, 2.0);
  const auto res = settle_rewards(t, b, btc);
  EXPECT_DOUBLE_EQ(res.of(MinerClass::honest).total(), 2.0);
}

TEST_F(LedgerFixture, HonestUncleDistanceHistogram) {
  // Two honest uncles: u1 referenced at distance 1, u2 at distance 2.
  const BlockId a = add(t.genesis(), MinerClass::honest, 1.0);
  const BlockId u1 = add(t.genesis(), MinerClass::honest, 1.1);  // height 1
  const BlockId b = add(a, MinerClass::honest, 2.0, {u1});  // h2: d(u1) = 1
  const BlockId u2 = add(b, MinerClass::honest, 2.1);       // height 3
  const BlockId c = add(b, MinerClass::honest, 3.0);        // height 3
  const BlockId d = add(c, MinerClass::honest, 4.0);        // height 4
  const BlockId e = add(d, MinerClass::honest, 5.0, {u2});  // h5: d(u2) = 2
  const auto res = settle_rewards(t, e, byz);
  const auto& h =
      res.uncle_distance[static_cast<std::size_t>(MinerClass::honest)];
  EXPECT_EQ(h.at(1), 1u);
  EXPECT_EQ(h.at(2), 1u);
  EXPECT_EQ(h.total(), 2u);
}

}  // namespace
}  // namespace ethsm::chain
