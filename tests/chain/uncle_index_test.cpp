#include "chain/uncle_index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace ethsm::chain {
namespace {

bool contains(const std::vector<BlockId>& v, BlockId id) {
  return std::find(v.begin(), v.end(), id) != v.end();
}

/// Reconstruction of the paper's Fig. 3 block tree.
///   heights:   1    2        3      4     5   6
///   main:      A -- B2 ----- C1 --- D1 -- E1 -- F1 -- ...
///   stale:        B1, B3 (children of A), C2 (child of B1), D2 (child of C1)
class Fig3Tree : public ::testing::Test {
 protected:
  void SetUp() override {
    auto add = [&](BlockId parent, double when) {
      const BlockId id = t.append(parent, MinerClass::honest, 0, when);
      t.publish(id, when);
      return id;
    };
    A = add(t.genesis(), 1.0);
    B1 = add(A, 2.0);
    B2 = add(A, 2.1);
    B3 = add(A, 2.2);
    C2 = add(B1, 2.9);
    // C1 is the nephew referencing B1 and B3 at distance 1.
    C1 = t.append(B2, MinerClass::honest, 0, 3.0, {B1, B3});
    t.publish(C1, 3.0);
    D1 = add(C1, 4.0);
    D2 = add(C1, 4.1);
    E1 = add(D1, 5.0);
    // F1 references D2 at distance 2.
    F1 = t.append(E1, MinerClass::honest, 0, 6.0, {D2});
    t.publish(F1, 6.0);
  }
  BlockTree t;
  BlockId A{}, B1{}, B2{}, B3{}, C1{}, C2{}, D1{}, D2{}, E1{}, F1{};
};

TEST_F(Fig3Tree, CandidatesForC1AreTheDistanceOneUncles) {
  // Before C1 existed: a block on B2 should see B1 and B3 (children of A,
  // not ancestors), but not C2 (child of stale B1).
  BlockTree fresh;  // rebuild without C1's references to query "before"
  const auto cands = find_uncle_candidates(t, B2, 6);
  // C1 already references B1/B3 on this chain... querying at parent B2 for a
  // *new* sibling of C1: B1, B3 are unreferenced from B2's chain (C1 is not
  // an ancestor of the prospective block).
  ASSERT_EQ(cands.size(), 2u);
  EXPECT_EQ(cands[0].id, B1);
  EXPECT_EQ(cands[0].distance, 1);
  EXPECT_EQ(cands[1].id, B3);
  (void)fresh;
}

TEST_F(Fig3Tree, StaleChildOfStaleIsNotEligible) {
  // C2's parent B1 is not on the main chain: never an uncle candidate.
  EXPECT_FALSE(is_eligible_uncle(t, C2, E1, 6));
  EXPECT_FALSE(is_eligible_uncle(t, C2, D1, 6));
}

TEST_F(Fig3Tree, ReferencedUnclesAreExcludedDownstream) {
  // From E1 (whose chain contains C1 referencing B1, B3): only D2 was still
  // open, and F1 has taken it at distance 2; from F1 nothing is left.
  EXPECT_FALSE(is_eligible_uncle(t, B1, E1, 6));
  EXPECT_FALSE(is_eligible_uncle(t, B3, E1, 6));
  EXPECT_TRUE(is_eligible_uncle(t, D2, E1, 6));
  const auto refs_from_f1 = collect_uncle_references(t, F1, 6);
  EXPECT_TRUE(refs_from_f1.empty());
}

TEST_F(Fig3Tree, DistanceIsNephewHeightMinusUncleHeight) {
  const auto cands = find_uncle_candidates(t, E1, 6);
  ASSERT_EQ(cands.size(), 1u);
  EXPECT_EQ(cands[0].id, D2);
  EXPECT_EQ(cands[0].distance, 2);  // F1 at height 6, D2 at height 4
}

TEST_F(Fig3Tree, PerBranchSemantics) {
  // On a fresh branch from B2 that does NOT go through C1, B1 and B3 are
  // unreferenced again: references are chain-relative, not global.
  const BlockId alt = t.append(B2, MinerClass::selfish, 0, 7.0);
  t.publish(alt, 7.0);
  const auto cands = find_uncle_candidates(t, alt, 6);
  std::vector<BlockId> ids;
  for (const auto& c : cands) ids.push_back(c.id);
  EXPECT_TRUE(contains(ids, B1));
  EXPECT_TRUE(contains(ids, B3));
  EXPECT_TRUE(contains(ids, C1));  // C1 itself forked away by `alt`'s branch
}

TEST(UncleIndex, HorizonCutsOffDistantUncles) {
  BlockTree t;
  // genesis - u (stale) and a long main chain next to it.
  const BlockId u = t.append(t.genesis(), MinerClass::honest, 0, 1.0);
  t.publish(u, 1.0);
  BlockId tip = t.genesis();
  for (int i = 0; i < 6; ++i) {
    tip = t.append(tip, MinerClass::honest, 0, 2.0 + i);
    t.publish(tip, 2.0 + i);
  }
  // A block on `tip` would sit at height 7 => distance to u (height 1) is 6.
  EXPECT_TRUE(is_eligible_uncle(t, u, tip, 6));
  // One more block and u falls out of the window.
  tip = t.append(tip, MinerClass::honest, 0, 9.0);
  t.publish(tip, 9.0);
  EXPECT_FALSE(is_eligible_uncle(t, u, tip, 6));
}

TEST(UncleIndex, HorizonZeroMeansNoCandidates) {
  BlockTree t;
  const BlockId u = t.append(t.genesis(), MinerClass::honest, 0, 1.0);
  t.publish(u, 1.0);
  const BlockId m = t.append(t.genesis(), MinerClass::honest, 0, 1.1);
  t.publish(m, 1.1);
  EXPECT_TRUE(find_uncle_candidates(t, m, 0).empty());
}

TEST(UncleIndex, UnpublishedBlocksAreInvisible) {
  BlockTree t;
  const BlockId secret = t.append(t.genesis(), MinerClass::selfish, 0, 1.0);
  const BlockId m = t.append(t.genesis(), MinerClass::honest, 0, 1.1);
  t.publish(m, 1.1);
  EXPECT_FALSE(is_eligible_uncle(t, secret, m, 6));
  t.publish(secret, 2.0);
  EXPECT_TRUE(is_eligible_uncle(t, secret, m, 6));
}

TEST(UncleIndex, MaxRefsTruncatesOldestFirst) {
  BlockTree t;
  // Three stale siblings at increasing heights.
  const BlockId s1 = t.append(t.genesis(), MinerClass::honest, 0, 1.0);
  t.publish(s1, 1.0);
  BlockId main1 = t.append(t.genesis(), MinerClass::honest, 0, 1.1);
  t.publish(main1, 1.1);
  const BlockId s2 = t.append(main1, MinerClass::honest, 0, 2.0);
  t.publish(s2, 2.0);
  BlockId main2 = t.append(main1, MinerClass::honest, 0, 2.1);
  t.publish(main2, 2.1);

  const auto unlimited = collect_uncle_references(t, main2, 6, 0);
  ASSERT_EQ(unlimited.size(), 2u);
  EXPECT_EQ(unlimited[0], s1);  // oldest first
  EXPECT_EQ(unlimited[1], s2);

  const auto capped = collect_uncle_references(t, main2, 6, 1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0], s1);
}

TEST(UncleIndex, AncestorsAreNeverCandidates) {
  BlockTree t;
  BlockId tip = t.genesis();
  for (int i = 0; i < 4; ++i) {
    tip = t.append(tip, MinerClass::honest, 0, 1.0 + i);
    t.publish(tip, 1.0 + i);
  }
  EXPECT_TRUE(find_uncle_candidates(t, tip, 6).empty());
}

}  // namespace
}  // namespace ethsm::chain
