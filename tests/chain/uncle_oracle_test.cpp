// Property test: uncle eligibility against a brute-force oracle.
//
// The production path (find_uncle_candidates) walks a bounded ancestor
// window for speed. This oracle re-derives eligibility from first principles
// by scanning EVERY block in the tree with the textbook definition, on
// randomized trees; any divergence is a real bug (this is exactly how the
// missed-distance-6 bug would have been caught).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "chain/uncle_index.h"
#include "support/rng.h"

namespace ethsm::chain {
namespace {

/// Textbook eligibility, O(tree size) per candidate.
std::vector<BlockId> oracle_candidates(const BlockTree& tree, BlockId parent,
                                       int horizon) {
  const std::uint32_t new_height = tree.height(parent) + 1;
  std::vector<BlockId> out;
  for (BlockId u = 0; u < tree.size(); ++u) {
    if (u == tree.genesis()) continue;
    // 5. visible
    if (!tree.is_published(u)) continue;
    // 1. not an ancestor of the prospective block
    if (tree.is_ancestor_of(u, parent)) continue;
    // 2. direct child of the prospective block's chain
    const BlockId uparent = tree.parent(u);
    if (!tree.is_ancestor_of(uparent, parent)) continue;
    // 3. distance within [1, horizon]
    if (tree.height(u) >= new_height) continue;
    const int distance = static_cast<int>(new_height - tree.height(u));
    if (distance < 1 || distance > horizon) continue;
    // 4. unreferenced on this chain
    bool referenced = false;
    for (BlockId anc = parent;; anc = tree.parent(anc)) {
      const auto refs = tree.uncle_refs(anc);
      if (std::find(refs.begin(), refs.end(), u) != refs.end()) {
        referenced = true;
        break;
      }
      if (anc == tree.genesis()) break;
    }
    if (referenced) continue;
    out.push_back(u);
  }
  std::sort(out.begin(), out.end(), [&tree](BlockId a, BlockId b) {
    if (tree.height(a) != tree.height(b)) {
      return tree.height(a) < tree.height(b);
    }
    return a < b;
  });
  return out;
}

/// Grows a random tree with realistic structure: mostly chain extension,
/// some forks, some withheld blocks, occasional honest-style references.
BlockTree random_tree(std::uint64_t seed, int blocks, int horizon) {
  support::Xoshiro256 rng(seed);
  BlockTree tree;
  std::vector<BlockId> tips{tree.genesis()};
  double now = 1.0;
  for (int i = 0; i < blocks; ++i) {
    // Pick a parent: usually a recent tip, sometimes any block (deep fork).
    BlockId parent;
    if (rng.bernoulli(0.85)) {
      parent = tips[rng.uniform_below(tips.size())];
    } else {
      parent = static_cast<BlockId>(rng.uniform_below(tree.size()));
    }
    // Half of the blocks reference uncles like honest miners do.
    std::vector<BlockId> refs;
    if (rng.bernoulli(0.5)) {
      refs = collect_uncle_references(tree, parent, horizon,
                                      rng.bernoulli(0.3) ? 2 : 0);
    }
    const BlockId id = tree.append(
        parent,
        rng.bernoulli(0.3) ? MinerClass::selfish : MinerClass::honest, 0, now,
        std::move(refs));
    // Most blocks publish immediately; some stay withheld.
    if (rng.bernoulli(0.9)) tree.publish(id, now);
    now += 1.0;
    tips.push_back(id);
    if (tips.size() > 6) tips.erase(tips.begin());
  }
  return tree;
}

class UncleOracleTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UncleOracleTest, ProductionMatchesBruteForceOracle) {
  for (int horizon : {1, 3, 6}) {
    const BlockTree tree = random_tree(GetParam() * 31 + horizon, 300, horizon);
    // Query eligibility from every published block as prospective parent.
    for (BlockId parent = 0; parent < tree.size(); ++parent) {
      if (!tree.is_published(parent)) continue;
      const auto expected = oracle_candidates(tree, parent, horizon);
      const auto got = find_uncle_candidates(tree, parent, horizon);
      ASSERT_EQ(got.size(), expected.size())
          << "parent " << parent << " horizon " << horizon;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].id, expected[i]) << "parent " << parent;
        EXPECT_EQ(got[i].distance,
                  static_cast<int>(tree.height(parent) + 1 -
                                   tree.height(expected[i])));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, UncleOracleTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace ethsm::chain
