// Regression pins for the extension experiments (EXPERIMENTS.md, extensions
// section). Deterministic seeds; effect sizes are far above Monte-Carlo
// noise at these run lengths.

#include <gtest/gtest.h>

#include "analysis/attack_timeline.h"
#include "sim/delay_sim.h"
#include "sim/simulator.h"

namespace ethsm {
namespace {

using sim::Scenario;

TEST(StubbornRegression, LeadEqualForkComboBeatsAlgorithmOneAtHighAlpha) {
  // bench_ext_stubborn's headline: with uncle rewards in play, the L+F
  // combination out-earns Algorithm 1 once alpha >= ~0.3 (gamma = 0.5).
  sim::SimConfig config;
  config.alpha = 0.40;
  config.gamma = 0.5;
  config.num_blocks = 100'000;
  config.seed = 0xc0deULL;

  miner::StubbornConfig lf;
  lf.lead_stubborn = true;
  lf.equal_fork_stubborn = true;

  const auto plain = sim::run_stubborn_many(config, {}, 4);
  const auto combo = sim::run_stubborn_many(config, lf, 4);
  EXPECT_GT(combo.pool_revenue(Scenario::regular_rate_one).mean(),
            plain.pool_revenue(Scenario::regular_rate_one).mean() + 0.02);
}

TEST(StubbornRegression, TrailStubbornnessHurtsAtLowAlpha) {
  // Chasing from behind with little hash power burns blocks: T2 earns
  // clearly less than Algorithm 1 at alpha = 0.15.
  sim::SimConfig config;
  config.alpha = 0.15;
  config.gamma = 0.5;
  config.num_blocks = 100'000;
  config.seed = 0xc0ffeeULL;

  miner::StubbornConfig t2;
  t2.trail_stubbornness = 2;

  const auto plain = sim::run_stubborn_many(config, {}, 4);
  const auto trail = sim::run_stubborn_many(config, t2, 4);
  EXPECT_LT(trail.pool_revenue(Scenario::regular_rate_one).mean(),
            plain.pool_revenue(Scenario::regular_rate_one).mean() - 0.02);
}

TEST(DelayRegression, RealisticDelayYieldsRealisticUncleRate) {
  // At delay ~ 0.15 block intervals (2s propagation / ~14s blocks) the
  // all-honest network produces an uncle rate in the band Ethereum actually
  // exhibited (roughly 0.07..0.20 depending on era).
  sim::DelaySimConfig config;
  config.delay = 0.15;
  config.num_blocks = 100'000;
  config.seed = 321;
  const auto r = sim::run_delay_simulation(config);
  EXPECT_GT(r.uncle_rate(), 0.07);
  EXPECT_LT(r.uncle_rate(), 0.20);
}

TEST(TimelineRegression, BleedIsWorstAtMidAlpha) {
  // The phase-1 bleed rate rises then falls with alpha (at gamma = 0.5 the
  // pool stops losing races as alpha -> 0.5): the curve is not monotone.
  const auto cfg = rewards::RewardConfig::ethereum_byzantium();
  const auto low = analysis::compute_attack_timeline(
      {0.06, 0.5}, cfg, Scenario::regular_rate_one);
  const auto mid = analysis::compute_attack_timeline(
      {0.20, 0.5}, cfg, Scenario::regular_rate_one);
  const auto high = analysis::compute_attack_timeline(
      {0.45, 0.5}, cfg, Scenario::regular_rate_one);
  EXPECT_GT(mid.initial_bleed_rate(), low.initial_bleed_rate());
  EXPECT_GT(mid.initial_bleed_rate(), high.initial_bleed_rate());
  EXPECT_LT(high.initial_bleed_rate(), 0.0);  // gamma-0.5 pool profits at .45
}

}  // namespace
}  // namespace ethsm
