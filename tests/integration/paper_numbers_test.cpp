// Regression tests pinning the reproduction to the numbers the paper reports
// (Sec. V, Sec. VI). Tolerances reflect the paper's own numeric precision
// (3 decimals, truncated state space, 10-run simulation averages).

#include <gtest/gtest.h>

#include "analysis/bitcoin_es.h"
#include "analysis/sweep.h"
#include "analysis/threshold.h"
#include "analysis/uncle_distance.h"

namespace ethsm {
namespace {

using analysis::Scenario;

TEST(PaperFig8, ThresholdNearPoint163) {
  // "when alpha is above 0.163, the selfish pool can always gain higher
  // revenue" (gamma = 0.5, Ku = 4/8).
  const auto t = analysis::profitability_threshold(
      0.5, rewards::RewardConfig::ethereum_flat(0.5),
      Scenario::regular_rate_one);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.163, 0.002);
}

TEST(PaperFig8, RevenueCurveShape) {
  analysis::RevenueCurveOptions opt;  // defaults = Fig. 8 setup
  const auto curve = analysis::revenue_curve(opt);
  ASSERT_EQ(curve.size(), 19u);
  // Pool revenue below the diagonal before the threshold, above after.
  for (const auto& p : curve) {
    if (p.alpha < 0.15 && p.alpha > 0.0) {
      EXPECT_LT(p.pool_revenue, p.alpha);
    }
    if (p.alpha > 0.18) {
      EXPECT_GT(p.pool_revenue, p.alpha);
    }
  }
  // Honest revenue decreases with alpha; pool revenue increases.
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].pool_revenue, curve[i - 1].pool_revenue);
    EXPECT_LT(curve[i].honest_revenue, curve[i - 1].honest_revenue);
  }
}

TEST(PaperFig8, BelowThresholdLossIsSmall) {
  // "when alpha is below the threshold 0.163, the selfish pool loses just a
  // small amount of revenue ... quite different from Bitcoin".
  const double alpha = 0.10;
  const auto eth = analysis::compute_revenue(
      {alpha, 0.5}, rewards::RewardConfig::ethereum_flat(0.5), 80);
  const double eth_loss =
      alpha - analysis::pool_absolute_revenue(eth, Scenario::regular_rate_one);
  const double btc_loss = alpha - analysis::eyal_sirer_revenue(alpha, 0.5);
  EXPECT_GT(eth_loss, 0.0);
  EXPECT_LT(eth_loss, 0.02);          // small in absolute terms
  EXPECT_LT(eth_loss, btc_loss / 2);  // and much smaller than Bitcoin's
}

TEST(PaperFig9, HigherUncleRewardHigherRevenue) {
  const double alpha = 0.3;
  double previous_pool = 0.0, previous_total = 0.0;
  for (double ku : {2.0 / 8, 4.0 / 8, 7.0 / 8}) {
    const auto r = analysis::compute_revenue(
        {alpha, 0.5}, rewards::RewardConfig::ethereum_flat(ku), 80);
    const double pool =
        analysis::pool_absolute_revenue(r, Scenario::regular_rate_one);
    const double total =
        analysis::total_revenue(r, Scenario::regular_rate_one);
    EXPECT_GT(pool, previous_pool);
    EXPECT_GT(total, previous_total);
    previous_pool = pool;
    previous_total = total;
  }
}

TEST(PaperFig9, TotalRevenueSoarsTo135Percent) {
  // "the total revenue ... soars to 135% of the revenue without selfish
  // mining, when Ku = 7/8 Ks and alpha = 0.45". The paper's flat schedules
  // pay "regardless of the distance": with the reference horizon uncapped
  // the total is 1.347; under Ethereum's structural cap of 6 it is 1.269
  // (both recorded in EXPERIMENTS.md).
  const auto r = analysis::compute_revenue(
      {0.45, 0.5}, rewards::RewardConfig::ethereum_flat(7.0 / 8.0, 100), 300);
  const double total = analysis::total_revenue(r, Scenario::regular_rate_one);
  EXPECT_NEAR(total, 1.35, 0.02);

  const auto capped = analysis::compute_revenue(
      {0.45, 0.5}, rewards::RewardConfig::ethereum_flat(7.0 / 8.0), 300);
  EXPECT_NEAR(analysis::total_revenue(capped, Scenario::regular_rate_one),
              1.269, 0.02);
}

TEST(PaperFig9, ByzantineScheduleBehavesLikeSevenEighthsForPool) {
  // "the uncle reward function Ku(.) has the same effect as simply setting
  // Ku = 7/8 for the selfish pool's revenue" (pool uncles always d = 1).
  const double alpha = 0.35;
  const auto byz = analysis::compute_revenue(
      {alpha, 0.5}, rewards::RewardConfig::ethereum_byzantium(), 80);
  const auto flat78 = analysis::compute_revenue(
      {alpha, 0.5}, rewards::RewardConfig::ethereum_flat(7.0 / 8.0), 80);
  EXPECT_NEAR(byz.pool_uncle, flat78.pool_uncle, 1e-9);
}

TEST(PaperFig10, Scenario1AlwaysBelowBitcoin) {
  analysis::ThresholdCurveOptions opt;
  opt.gammas = {0.0, 0.25, 0.5, 0.75, 0.95};
  opt.threshold.tolerance = 1e-5;
  const auto curve = analysis::threshold_curve(opt);
  for (const auto& p : curve) {
    ASSERT_TRUE(p.ethereum_scenario1.has_value());
    EXPECT_LT(*p.ethereum_scenario1, p.bitcoin + 1e-9) << "gamma=" << p.gamma;
  }
}

TEST(PaperFig10, Scenario2CrossesBitcoinNearGamma039) {
  analysis::ThresholdCurveOptions opt;
  opt.gammas = {0.3, 0.35, 0.4, 0.45, 0.5};
  opt.threshold.tolerance = 1e-5;
  const auto curve = analysis::threshold_curve(opt);
  // Below the crossover Ethereum scenario 2 is under Bitcoin, above it over.
  ASSERT_TRUE(curve.front().ethereum_scenario2.has_value());
  ASSERT_TRUE(curve.back().ethereum_scenario2.has_value());
  EXPECT_LT(*curve.front().ethereum_scenario2, curve.front().bitcoin);
  EXPECT_GT(*curve.back().ethereum_scenario2, curve.back().bitcoin);
  // The sign change happens somewhere in [0.3, 0.5] -- the paper says 0.39.
  double crossover = -1.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double prev = *curve[i - 1].ethereum_scenario2 - curve[i - 1].bitcoin;
    const double cur = *curve[i].ethereum_scenario2 - curve[i].bitcoin;
    if (prev <= 0.0 && cur > 0.0) crossover = curve[i].gamma;
  }
  EXPECT_NEAR(crossover, 0.40, 0.051);
}

TEST(PaperSec6, FlatScheduleRaisesThresholds) {
  // "the threshold increases from 0.054 to 0.163 in scenario 1, and from
  // 0.270 to 0.356 in scenario 2" (gamma = 0.5, Ku(.) -> flat 4/8).
  analysis::ThresholdOptions o;
  o.tolerance = 1e-5;
  const auto byz = rewards::RewardConfig::ethereum_byzantium();
  const auto flat = rewards::RewardConfig::ethereum_flat(0.5);

  const auto s1_before = analysis::profitability_threshold(
      0.5, byz, Scenario::regular_rate_one, o);
  const auto s1_after = analysis::profitability_threshold(
      0.5, flat, Scenario::regular_rate_one, o);
  ASSERT_TRUE(s1_before && s1_after);
  EXPECT_NEAR(*s1_before, 0.054, 0.002);
  EXPECT_NEAR(*s1_after, 0.163, 0.002);

  const auto s2_before = analysis::profitability_threshold(
      0.5, byz, Scenario::regular_and_uncle_rate_one, o);
  const auto s2_after = analysis::profitability_threshold(
      0.5, flat, Scenario::regular_and_uncle_rate_one, o);
  ASSERT_TRUE(s2_before && s2_after);
  EXPECT_NEAR(*s2_before, 0.270, 0.006);
  EXPECT_NEAR(*s2_after, 0.356, 0.003);
}

TEST(PaperTableII, ReproducedAtBothAlphas) {
  const auto d30 = analysis::honest_uncle_distance_distribution({0.3, 0.5});
  const auto d45 = analysis::honest_uncle_distance_distribution({0.45, 0.5});
  EXPECT_NEAR(d30.expectation, 1.75, 0.01);
  EXPECT_NEAR(d45.expectation, 2.72, 0.01);
  EXPECT_NEAR(d30.fraction[1], 0.527, 0.001);
  EXPECT_NEAR(d45.fraction[1], 0.284, 0.001);
}

TEST(PaperSec5Setup, SimulationGridMatchesPaper) {
  const auto alphas = analysis::fig8_alpha_grid();
  EXPECT_DOUBLE_EQ(alphas.front(), 0.0);
  EXPECT_DOUBLE_EQ(alphas.back(), 0.45);  // "pool controls at most 450 miners"
  const auto gammas = analysis::fig10_gamma_grid();
  EXPECT_DOUBLE_EQ(gammas.front(), 0.0);
  EXPECT_DOUBLE_EQ(gammas.back(), 1.0);
}

}  // namespace
}  // namespace ethsm
