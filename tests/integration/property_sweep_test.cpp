// Property-based sweeps: invariants that must hold across the whole
// parameter space, checked on a dense (alpha, gamma) grid.

#include <gtest/gtest.h>

#include "analysis/absolute_revenue.h"
#include "analysis/uncle_distance.h"
#include "chain/chain_validator.h"
#include "miner/honest_policy.h"
#include "miner/selfish_policy.h"
#include "sim/simulator.h"

namespace ethsm {
namespace {

using analysis::Scenario;

class AnalysisPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {
 protected:
  [[nodiscard]] analysis::RevenueBreakdown byzantium() const {
    const auto [alpha, gamma] = GetParam();
    return analysis::compute_revenue(markov::MiningParams{alpha, gamma},
                                     rewards::RewardConfig::ethereum_byzantium(),
                                     80);
  }
};

TEST_P(AnalysisPropertyTest, AllRatesNonNegative) {
  const auto r = byzantium();
  EXPECT_GE(r.pool_static, 0.0);
  EXPECT_GE(r.pool_uncle, 0.0);
  EXPECT_GE(r.pool_nephew, 0.0);
  EXPECT_GE(r.honest_static, 0.0);
  EXPECT_GE(r.honest_uncle, 0.0);
  EXPECT_GE(r.honest_nephew, 0.0);
  EXPECT_GE(r.referenced_uncle_rate, 0.0);
}

TEST_P(AnalysisPropertyTest, RegularPlusUncleRateAtMostBlockRate) {
  const auto r = byzantium();
  EXPECT_LE(r.regular_rate + r.referenced_uncle_rate, 1.0 + 1e-10);
}

TEST_P(AnalysisPropertyTest, StaticRatesSumBelowOne) {
  // Eq. (3)/(4) discussion: rsb + rhb <= 1 with equality iff no stale blocks.
  const auto [alpha, gamma] = GetParam();
  const auto r = byzantium();
  EXPECT_LE(r.pool_static + r.honest_static, 1.0 + 1e-10);
  if (alpha > 0.0 && gamma < 1.0) {
    EXPECT_LT(r.pool_static + r.honest_static, 1.0);
  }
}

TEST_P(AnalysisPropertyTest, TotalRevenueBoundedByMaxSchedule) {
  // Per normalized block the system pays at most Ks + (Ku(1)+Kn(1)) * uncles.
  const auto r = byzantium();
  const double total = analysis::total_revenue(r, Scenario::regular_rate_one);
  const double uncle_per_regular = r.referenced_uncle_rate / r.regular_rate;
  EXPECT_LE(total,
            1.0 + uncle_per_regular * (7.0 / 8.0 + 1.0 / 32.0) + 1e-9);
}

TEST_P(AnalysisPropertyTest, RelativeShareWithinBounds) {
  const auto r = byzantium();
  EXPECT_GE(r.pool_relative_share(), 0.0);
  EXPECT_LE(r.pool_relative_share(), 1.0);
}

TEST_P(AnalysisPropertyTest, ScenarioTwoNeverExceedsScenarioOne) {
  const auto r = byzantium();
  EXPECT_LE(
      analysis::pool_absolute_revenue(r, Scenario::regular_and_uncle_rate_one),
      analysis::pool_absolute_revenue(r, Scenario::regular_rate_one) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    DenseGrid, AnalysisPropertyTest,
    ::testing::Combine(::testing::Values(0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3,
                                         0.35, 0.4, 0.45),
                       ::testing::Values(0.25, 0.5, 0.75, 1.0)),
    [](const auto& info) {
      return "a" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_g" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(AnalysisProperty, PoolRevenueMonotoneInGamma) {
  for (double alpha : {0.15, 0.3, 0.42}) {
    double previous = -1.0;
    for (double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      const auto r = analysis::compute_revenue(
          {alpha, gamma}, rewards::RewardConfig::ethereum_flat(0.5), 80);
      const double us =
          analysis::pool_absolute_revenue(r, Scenario::regular_rate_one);
      EXPECT_GE(us, previous - 1e-9) << "alpha=" << alpha << " g=" << gamma;
      previous = us;
    }
  }
}

TEST(AnalysisProperty, PoolRevenueMonotoneInAlpha) {
  for (double gamma : {0.2, 0.5, 0.9}) {
    double previous = -1.0;
    for (double alpha : {0.05, 0.15, 0.25, 0.35, 0.45}) {
      const auto r = analysis::compute_revenue(
          {alpha, gamma}, rewards::RewardConfig::ethereum_byzantium(), 80);
      const double us =
          analysis::pool_absolute_revenue(r, Scenario::regular_rate_one);
      EXPECT_GT(us, previous) << "alpha=" << alpha << " g=" << gamma;
      previous = us;
    }
  }
}

class SimulatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SimulatorPropertyTest, FinalTreePassesFullValidation) {
  const auto [alpha, gamma] = GetParam();
  // Re-run the simulator's moving parts directly so the final tree can be
  // handed to the independent validator.
  const auto config = rewards::RewardConfig::ethereum_byzantium();
  chain::BlockTree tree;
  miner::SelfishPolicy pool(tree,
                            miner::SelfishPolicyConfig::from_rewards(config));
  miner::HonestPolicy honest(gamma, config);
  support::Xoshiro256 rng(2718);
  double now = 0.0;
  for (int i = 0; i < 20000; ++i) {
    now += rng.exponential(1.0);
    if (rng.bernoulli(alpha)) {
      pool.on_pool_block(now);
    } else {
      const auto b = honest.mine_block(
          tree, honest.choose_parent(pool.public_view(), rng), now, 0);
      pool.on_honest_block(b, now);
    }
  }
  const auto tip = pool.finalize(now);
  const auto report = chain::validate_chain(tree, config, tip);
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST_P(SimulatorPropertyTest, RewardConservationInSimulation) {
  const auto [alpha, gamma] = GetParam();
  sim::SimConfig sc;
  sc.alpha = alpha;
  sc.gamma = gamma;
  sc.num_blocks = 30'000;
  sc.seed = 314159;
  const auto r = sim::run_simulation(sc);
  // Static rewards paid == number of regular blocks (Ks = 1).
  const double statics =
      r.ledger.of(chain::MinerClass::selfish).static_reward +
      r.ledger.of(chain::MinerClass::honest).static_reward;
  EXPECT_DOUBLE_EQ(statics, static_cast<double>(r.ledger.regular_total()));
  // Nephew rewards == referenced uncles / 32 (constant schedule).
  const double nephews =
      r.ledger.of(chain::MinerClass::selfish).nephew_reward +
      r.ledger.of(chain::MinerClass::honest).nephew_reward;
  EXPECT_NEAR(nephews,
              static_cast<double>(r.ledger.referenced_uncle_total()) / 32.0,
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimulatorPropertyTest,
    ::testing::Combine(::testing::Values(0.1, 0.3, 0.45),
                       ::testing::Values(0.0, 0.5, 1.0)),
    [](const auto& info) {
      return "a" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_g" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

TEST(AblationProperty, EthereumUncleCapBarelyChangesRevenue) {
  // DESIGN.md decision 4: the paper's unlimited-reference assumption vs real
  // Ethereum's cap of 2. At moderate alpha the difference must be small --
  // this quantifies the modelling gap rather than assuming it away.
  sim::SimConfig unlimited;
  unlimited.alpha = 0.3;
  unlimited.gamma = 0.5;
  unlimited.num_blocks = 150'000;
  unlimited.seed = 2021;
  auto capped = unlimited;
  capped.rewards.max_uncles_per_block = 2;
  const auto ru = sim::run_many(unlimited, 3);
  const auto rc = sim::run_many(capped, 3);
  EXPECT_NEAR(ru.pool_revenue_s1.mean(), rc.pool_revenue_s1.mean(), 0.01);
}

}  // namespace
}  // namespace ethsm
