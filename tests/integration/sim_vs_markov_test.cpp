// The library's central cross-validation (paper Sec. V-A): the discrete-event
// simulator and the 2-D Markov analysis are written against the same paper
// text but share no code path for revenue; they must agree within
// Monte-Carlo error across the (alpha, gamma, schedule) grid.

#include <gtest/gtest.h>

#include "analysis/absolute_revenue.h"
#include "analysis/uncle_distance.h"
#include "sim/simulator.h"

namespace ethsm {
namespace {

struct GridPoint {
  double alpha;
  double gamma;
  bool byzantium;  // else flat Ku = 4/8
};

class SimVsMarkov : public ::testing::TestWithParam<GridPoint> {
 protected:
  static constexpr std::uint64_t kBlocks = 100'000;
  static constexpr int kRuns = 3;

  [[nodiscard]] rewards::RewardConfig schedule() const {
    return GetParam().byzantium ? rewards::RewardConfig::ethereum_byzantium()
                                : rewards::RewardConfig::ethereum_flat(0.5);
  }
};

TEST_P(SimVsMarkov, AbsoluteRevenueAgreesInBothScenarios) {
  const auto [alpha, gamma, byz] = GetParam();
  const auto config = schedule();

  sim::SimConfig sc;
  sc.alpha = alpha;
  sc.gamma = gamma;
  sc.rewards = config;
  sc.num_blocks = kBlocks;
  sc.seed = 0xfeedULL + static_cast<std::uint64_t>(alpha * 1000) +
            static_cast<std::uint64_t>(gamma * 7);
  const auto sum = sim::run_many(sc, kRuns);

  const auto r = analysis::compute_revenue(markov::MiningParams{alpha, gamma},
                                           config, 80);
  for (const auto scenario : {sim::Scenario::regular_rate_one,
                              sim::Scenario::regular_and_uncle_rate_one}) {
    const double expected = analysis::pool_absolute_revenue(r, scenario);
    const double got = sum.pool_revenue(scenario).mean();
    const double tol = 5.0 * sum.pool_revenue(scenario).ci_halfwidth() + 0.004;
    EXPECT_NEAR(got, expected, tol) << to_string(scenario);

    const double expected_h = analysis::honest_absolute_revenue(r, scenario);
    const double got_h = sum.honest_revenue(scenario).mean();
    const double tol_h =
        5.0 * sum.honest_revenue(scenario).ci_halfwidth() + 0.004;
    EXPECT_NEAR(got_h, expected_h, tol_h) << to_string(scenario);
  }
}

TEST_P(SimVsMarkov, UncleRateAgrees) {
  const auto [alpha, gamma, byz] = GetParam();
  const auto config = schedule();
  sim::SimConfig sc;
  sc.alpha = alpha;
  sc.gamma = gamma;
  sc.rewards = config;
  sc.num_blocks = kBlocks;
  sc.seed = 0xabcdULL;
  const auto sum = sim::run_many(sc, kRuns);
  const auto r = analysis::compute_revenue(markov::MiningParams{alpha, gamma},
                                           config, 80);
  const double expected =
      r.regular_rate == 0.0 ? 0.0 : r.referenced_uncle_rate / r.regular_rate;
  EXPECT_NEAR(sum.uncle_rate.mean(), expected,
              5.0 * sum.uncle_rate.ci_halfwidth() + 0.004);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SimVsMarkov,
    ::testing::Values(GridPoint{0.10, 0.5, true}, GridPoint{0.20, 0.5, true},
                      GridPoint{0.30, 0.5, true}, GridPoint{0.40, 0.5, true},
                      GridPoint{0.45, 0.5, true}, GridPoint{0.30, 0.0, true},
                      GridPoint{0.30, 1.0, true}, GridPoint{0.30, 0.8, true},
                      GridPoint{0.20, 0.5, false}, GridPoint{0.35, 0.5, false},
                      GridPoint{0.45, 0.5, false},
                      GridPoint{0.40, 0.2, true}),
    [](const auto& info) {
      return "a" + std::to_string(static_cast<int>(info.param.alpha * 100)) +
             "_g" + std::to_string(static_cast<int>(info.param.gamma * 100)) +
             (info.param.byzantium ? "_byz" : "_flat");
    });

TEST(SimVsMarkovTableII, UncleDistanceDistributionAgrees) {
  // Table II cross-check: simulated honest-uncle distances vs the analytic
  // distribution at alpha = 0.3 (the sim pools all runs' histograms).
  sim::SimConfig sc;
  sc.alpha = 0.3;
  sc.gamma = 0.5;
  sc.num_blocks = 200'000;
  sc.seed = 99;
  const auto sum = sim::run_many(sc, 3);
  const auto d = analysis::honest_uncle_distance_distribution({0.3, 0.5}, 80);
  for (std::size_t dist = 1; dist <= 6; ++dist) {
    const double simulated =
        sum.uncle_distance_honest.conditional_fraction(dist, 1, 6);
    EXPECT_NEAR(simulated, d.fraction[dist], 0.01) << "distance " << dist;
  }
  EXPECT_NEAR(sum.uncle_distance_honest.conditional_mean(1, 6), d.expectation,
              0.03);
}

TEST(SimVsMarkovBitcoin, EyalSirerShareAgrees) {
  sim::SimConfig sc;
  sc.alpha = 0.35;
  sc.gamma = 0.5;
  sc.rewards = rewards::RewardConfig::bitcoin();
  sc.num_blocks = 150'000;
  sc.seed = 1234;
  const auto sum = sim::run_many(sc, 3);
  const auto r = analysis::compute_revenue(markov::MiningParams{0.35, 0.5},
                                           rewards::RewardConfig::bitcoin(),
                                           80);
  EXPECT_NEAR(sum.pool_share.mean(), r.pool_relative_share(),
              5.0 * sum.pool_share.ci_halfwidth() + 0.004);
}

}  // namespace
}  // namespace ethsm
