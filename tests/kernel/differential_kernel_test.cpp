// Differential lockdown of the optimised Markov inner engines (ctest -L
// kernel): the kind-batched revenue kernel and the Gauss-Seidel stationary
// solver are pinned against the frozen reference implementations in
// reference_engines.{h,cpp} across a randomized (alpha, gamma, max_lead,
// reward-spec) grid -- over a thousand cells -- plus the paper's closed-form
// anchors (Eq. (3)-(5)) and the Bitcoin degenerate case, whose relative
// revenue is the Eyal-Sirer / Grunspan-Perez-Marco expression.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "analysis/revenue.h"
#include "markov/stationary.h"
#include "markov/state_space.h"
#include "markov/transition_model.h"
#include "reference_engines.h"
#include "rewards/reward_schedule.h"
#include "support/rng.h"

namespace ethsm {
namespace {

using analysis::RevenueBreakdown;
using markov::MiningParams;
using markov::SolveMethod;
using markov::StateSpace;
using markov::StationaryDistribution;
using markov::StationaryOptions;
using markov::TransitionModel;
using rewards::RewardConfig;
using support::Xoshiro256;

/// Largest component mismatch between two breakdowns, relative to the unit
/// total reward rate (all components are O(1) fractions of Ks = 1 per block,
/// so normalising by max(1, |reference|) is the natural relative error and
/// stays meaningful when a component is exactly zero, e.g. uncles under the
/// Bitcoin schedule).
double max_relative_mismatch(const RevenueBreakdown& got,
                             const RevenueBreakdown& want) {
  auto rel = [](double a, double b) {
    return std::fabs(a - b) / std::max(1.0, std::fabs(b));
  };
  double worst = rel(got.pool_static, want.pool_static);
  worst = std::max(worst, rel(got.pool_uncle, want.pool_uncle));
  worst = std::max(worst, rel(got.pool_nephew, want.pool_nephew));
  worst = std::max(worst, rel(got.honest_static, want.honest_static));
  worst = std::max(worst, rel(got.honest_uncle, want.honest_uncle));
  worst = std::max(worst, rel(got.honest_nephew, want.honest_nephew));
  worst = std::max(worst, rel(got.regular_rate, want.regular_rate));
  worst = std::max(worst, rel(got.referenced_uncle_rate,
                              want.referenced_uncle_rate));
  return worst;
}

/// Random reward specification covering every schedule family the repo
/// models: Byzantium, Bitcoin (Ku = Kn = 0), flat Ku with a random horizon,
/// and an arbitrary random table. Nephew value and horizon are randomized
/// independently so reference_horizon() exercises both the Ku- and the
/// Kn-dominated branch.
RewardConfig random_reward_config(Xoshiro256& rng) {
  RewardConfig config;
  const double pick = rng.uniform01();
  if (pick < 0.25) {
    config = RewardConfig::ethereum_byzantium();
  } else if (pick < 0.5) {
    config = RewardConfig::bitcoin();
  } else if (pick < 0.75) {
    const double value = rng.uniform01();
    const int horizon = 1 + static_cast<int>(rng.uniform01() * 9.0);
    config = RewardConfig::ethereum_flat(value, horizon);
  } else {
    const int len = 1 + static_cast<int>(rng.uniform01() * 7.0);
    std::vector<double> values(static_cast<std::size_t>(len));
    for (double& v : values) v = rng.uniform01();
    config.uncle = std::make_shared<rewards::TableUncleSchedule>(
        std::move(values), "fuzz table");
  }
  if (rng.uniform01() < 0.5) {
    const double kn = 0.25 * rng.uniform01();
    const int horizon = 1 + static_cast<int>(rng.uniform01() * 7.0);
    config.nephew = rewards::NephewRewardSchedule(kn, horizon);
  }
  return config;
}

/// Random strictly-positive-mass vector with a sprinkling of exact zeros
/// (the reference's zero-mass fast path and the kernel's zero-weight skips
/// must agree on those).
std::vector<double> random_mass_vector(Xoshiro256& rng, int n) {
  std::vector<double> pi(static_cast<std::size_t>(n));
  double mass = 0.0;
  for (double& p : pi) {
    p = rng.uniform01() < 0.1 ? 0.0 : rng.uniform01();
    mass += p;
  }
  if (mass == 0.0) {
    pi[0] = 1.0;
    mass = 1.0;
  }
  for (double& p : pi) p /= mass;
  return pi;
}

// Tentpole acceptance: >= 1000 fuzzed (alpha, gamma, max_lead, reward-spec)
// cells, every RevenueBreakdown component within 1e-12 relative of the
// reference. Synthetic stationary vectors decouple the kernel diff from
// solver behaviour and let the grid cover a thousand cells in seconds.
TEST(KernelDifferential, FuzzedRevenueMatchesReferenceOnRandomVectors) {
  Xoshiro256 rng(0xd1ff'5eed'01ULL);
  int cells = 0;
  double worst = 0.0;
  for (int cell = 0; cell < 1000; ++cell) {
    const double alpha = 0.01 + 0.48 * rng.uniform01();
    double gamma = rng.uniform01();
    if (cell % 53 == 0) gamma = 0.0;  // pin the boundary rates exactly
    if (cell % 97 == 0) gamma = 1.0;
    const int max_lead = 4 + static_cast<int>(rng.uniform01() * 57.0);

    const StateSpace space(max_lead);
    MiningParams params;
    params.alpha = alpha;
    params.gamma = gamma;
    const TransitionModel model(space, params);
    const RewardConfig config = random_reward_config(rng);
    const StationaryDistribution pi(space, random_mass_vector(rng, space.size()),
                                    0, 0.0);

    const RevenueBreakdown got = analysis::compute_revenue(pi, model, config);
    const RevenueBreakdown want =
        testing::reference_compute_revenue(pi, model, config);
    const double mismatch = max_relative_mismatch(got, want);
    worst = std::max(worst, mismatch);
    ASSERT_LE(mismatch, 1e-12)
        << "alpha=" << alpha << " gamma=" << gamma << " max_lead=" << max_lead
        << " rewards=" << config.uncle->name();
    ++cells;
  }
  ASSERT_GE(cells, 1000);
  RecordProperty("worst_relative_mismatch", std::to_string(worst));
}

// End-to-end cells: both engines together. Each cell solves the chain with
// the production (Gauss-Seidel + fallback) solver, then diffs the kernel
// against the reference revenue loop on that solved vector AND the solved
// vector against the structurally independent edge-list power reference.
TEST(KernelDifferential, SolvedCellsMatchReferenceEngines) {
  Xoshiro256 rng(0x50f7'ed5e'11ULL);
  for (int cell = 0; cell < 60; ++cell) {
    const double alpha = 0.05 + 0.40 * rng.uniform01();
    const double gamma = rng.uniform01();
    const int max_lead = 8 + static_cast<int>(rng.uniform01() * 92.0);

    const StateSpace space(max_lead);
    MiningParams params;
    params.alpha = alpha;
    params.gamma = gamma;
    const TransitionModel model(space, params);
    const auto pi = markov::solve_stationary(model);

    // Solver differential: production vs naive edge-list power iteration.
    const std::vector<double> ref_pi =
        testing::reference_solve_stationary_power(model);
    double worst_pi = 0.0;
    for (std::size_t s = 0; s < ref_pi.size(); ++s) {
      worst_pi = std::max(worst_pi, std::fabs(pi.values()[s] - ref_pi[s]));
    }
    ASSERT_LE(worst_pi, 1e-10) << "alpha=" << alpha << " gamma=" << gamma
                               << " max_lead=" << max_lead
                               << " method=" << static_cast<int>(pi.method());

    // Kernel differential on the solved vector.
    const RewardConfig config = random_reward_config(rng);
    const RevenueBreakdown got = analysis::compute_revenue(pi, model, config);
    const RevenueBreakdown want =
        testing::reference_compute_revenue(pi, model, config);
    ASSERT_LE(max_relative_mismatch(got, want), 1e-12)
        << "alpha=" << alpha << " gamma=" << gamma << " max_lead=" << max_lead;
  }
}

// The two production solver methods must land on the same fixed point when
// forced explicitly (automatic's fallback correctness depends on it).
TEST(KernelDifferential, GaussSeidelAndPowerAgreePointwise) {
  Xoshiro256 rng(0x6a55'5e1d'e1ULL);
  for (int cell = 0; cell < 20; ++cell) {
    const double alpha = 0.05 + 0.40 * rng.uniform01();
    const double gamma = rng.uniform01();
    const int max_lead = 8 + static_cast<int>(rng.uniform01() * 72.0);
    const StateSpace space(max_lead);
    MiningParams params;
    params.alpha = alpha;
    params.gamma = gamma;
    const TransitionModel model(space, params);

    StationaryOptions gs;
    gs.method = SolveMethod::gauss_seidel;
    StationaryOptions power;
    power.method = SolveMethod::power;
    const auto pi_gs = markov::solve_stationary(model, gs);
    const auto pi_power = markov::solve_stationary(model, power);
    ASSERT_EQ(pi_gs.method(), SolveMethod::gauss_seidel);
    ASSERT_EQ(pi_power.method(), SolveMethod::power);
    for (int s = 0; s < space.size(); ++s) {
      ASSERT_NEAR(pi_gs[s], pi_power[s], 1e-10)
          << "state " << s << " alpha=" << alpha << " gamma=" << gamma;
    }
  }
}

// The kernel must be deterministic: the kind-batched permutation is a stable
// counting sort, so two evaluations of the same cell are bitwise identical.
TEST(KernelDifferential, KernelIsDeterministic) {
  const StateSpace space(40);
  MiningParams params;
  params.alpha = 0.33;
  params.gamma = 0.41;
  const TransitionModel model(space, params);
  const auto pi = markov::solve_stationary(model);
  const RewardConfig config = RewardConfig::ethereum_byzantium();
  const RevenueBreakdown a = analysis::compute_revenue(pi, model, config);
  const RevenueBreakdown b = analysis::compute_revenue(pi, model, config);
  EXPECT_EQ(a.pool_static, b.pool_static);
  EXPECT_EQ(a.pool_uncle, b.pool_uncle);
  EXPECT_EQ(a.pool_nephew, b.pool_nephew);
  EXPECT_EQ(a.honest_static, b.honest_static);
  EXPECT_EQ(a.honest_uncle, b.honest_uncle);
  EXPECT_EQ(a.honest_nephew, b.honest_nephew);
  EXPECT_EQ(a.regular_rate, b.regular_rate);
  EXPECT_EQ(a.referenced_uncle_rate, b.referenced_uncle_rate);
}

// Closed-form anchors, paper Eq. (3)-(5): the kernel's Byzantium rates over
// the solved chain must reproduce the paper's exact expressions. max_lead is
// sized so truncation error sits below the anchor tolerance.
TEST(KernelDifferential, ClosedFormAnchorsEq3to5) {
  const RewardConfig config = RewardConfig::ethereum_byzantium();
  const double ku1 = config.uncle_reward(1);  // 7/8 under Byzantium
  for (double alpha : {0.10, 0.20, 0.30, 0.35}) {
    for (double gamma : {0.0, 0.3, 0.7, 1.0}) {
      MiningParams params;
      params.alpha = alpha;
      params.gamma = gamma;
      const StateSpace space(200);
      const TransitionModel model(space, params);
      const auto pi = markov::solve_stationary(model);
      const RevenueBreakdown r = analysis::compute_revenue(pi, model, config);
      EXPECT_NEAR(r.pool_static,
                  analysis::pool_static_rate_closed_form(alpha, gamma), 1e-11)
          << alpha << "," << gamma;
      EXPECT_NEAR(r.honest_static,
                  analysis::honest_static_rate_closed_form(alpha, gamma), 1e-11)
          << alpha << "," << gamma;
      EXPECT_NEAR(r.pool_uncle,
                  analysis::pool_uncle_rate_closed_form(alpha, gamma, ku1),
                  1e-11)
          << alpha << "," << gamma;
    }
  }
}

// Bitcoin anchor: with Ku = Kn = 0 only static rewards flow, so the pool's
// relative revenue collapses to the Eyal-Sirer / Grunspan-Perez-Marco
// expression, here assembled from the Eq. (3)/(4) closed forms.
TEST(KernelDifferential, BitcoinRelativeRevenueAnchor) {
  const RewardConfig config = RewardConfig::bitcoin();
  for (double alpha : {0.15, 0.25, 0.35}) {
    for (double gamma : {0.0, 0.5, 1.0}) {
      MiningParams params;
      params.alpha = alpha;
      params.gamma = gamma;
      const StateSpace space(200);
      const TransitionModel model(space, params);
      const auto pi = markov::solve_stationary(model);
      const RevenueBreakdown r = analysis::compute_revenue(pi, model, config);
      EXPECT_EQ(r.pool_uncle, 0.0);
      EXPECT_EQ(r.pool_nephew, 0.0);
      EXPECT_EQ(r.honest_uncle, 0.0);
      EXPECT_EQ(r.honest_nephew, 0.0);
      const double ps = analysis::pool_static_rate_closed_form(alpha, gamma);
      const double hs = analysis::honest_static_rate_closed_form(alpha, gamma);
      EXPECT_NEAR(r.pool_relative_share(), ps / (ps + hs), 1e-11)
          << alpha << "," << gamma;
    }
  }
}

}  // namespace
}  // namespace ethsm
