#include "reference_engines.h"

#include <cmath>
#include <cstdint>

#include "support/stats.h"

namespace ethsm::testing {

analysis::RevenueBreakdown reference_compute_revenue(
    const markov::StationaryDistribution& pi,
    const markov::TransitionModel& model, const rewards::RewardConfig& config) {
  using analysis::RewardFlow;
  support::KahanSum pool_static, pool_uncle, pool_nephew;
  support::KahanSum honest_static, honest_uncle, honest_nephew;
  support::KahanSum regular_rate, uncle_rate;

  // CSR row walk: the stationary mass and source state are hoisted per row,
  // and zero-mass rows (deep truncation tail) skip their reward-case
  // evaluations entirely.
  const int n = model.space().size();
  const auto& row = model.row_offsets();
  const auto& rate = model.rates();
  const auto& kind = model.kinds();
  for (int s = 0; s < n; ++s) {
    const double mass = pi[s];
    if (mass == 0.0) continue;
    const markov::State& st = model.space().state_at(s);
    for (std::uint32_t k = row[static_cast<std::size_t>(s)];
         k < row[static_cast<std::size_t>(s) + 1]; ++k) {
      const double weight = mass * rate[k];
      if (weight == 0.0) continue;
      const RewardFlow flow =
          analysis::expected_rewards(st, kind[k], model.params(), config);
      pool_static.add(weight * flow.pool_static);
      pool_uncle.add(weight * flow.pool_uncle);
      pool_nephew.add(weight * flow.pool_nephew);
      honest_static.add(weight * flow.honest_static);
      honest_uncle.add(weight * flow.honest_uncle);
      honest_nephew.add(weight * flow.honest_nephew);
      regular_rate.add(weight * flow.regular_probability);
      uncle_rate.add(weight * flow.referenced_uncle_probability);
    }
  }

  analysis::RevenueBreakdown out;
  out.pool_static = pool_static.value();
  out.pool_uncle = pool_uncle.value();
  out.pool_nephew = pool_nephew.value();
  out.honest_static = honest_static.value();
  out.honest_uncle = honest_uncle.value();
  out.honest_nephew = honest_nephew.value();
  out.regular_rate = regular_rate.value();
  out.referenced_uncle_rate = uncle_rate.value();
  return out;
}

std::vector<double> reference_solve_stationary_power(
    const markov::TransitionModel& model, double tolerance,
    int max_iterations) {
  const auto n = static_cast<std::size_t>(model.space().size());
  std::vector<double> pi(n, 0.0), next(n, 0.0);
  pi[0] = 1.0;
  const auto& edges = model.transitions();
  double diff = 1.0;
  for (int iter = 0; iter < max_iterations && diff > tolerance; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const markov::Transition& t : edges) {
      next[static_cast<std::size_t>(t.to)] +=
          pi[static_cast<std::size_t>(t.from)] * t.rate;
    }
    diff = 0.0;
    for (std::size_t s = 0; s < n; ++s) diff += std::fabs(next[s] - pi[s]);
    pi.swap(next);
  }
  double mass = 0.0;
  for (double p : pi) mass += p;
  for (double& p : pi) p /= mass;
  return pi;
}

}  // namespace ethsm::testing
