// Reference implementations of the two Markov inner engines, frozen at the
// pre-kernel versions so the optimised production code has something honest
// to be diffed against:
//   * reference_compute_revenue -- the per-entry switch + Kahan-summation
//     revenue loop that analysis::compute_revenue replaced with the
//     kind-batched kernel. Kept byte-for-byte (modulo namespace) from the
//     seed revision of src/analysis/revenue.cpp.
//   * reference_solve_stationary_power -- a deliberately naive edge-list
//     power iteration, structurally independent of both production solvers
//     (which share the library's CSR/CSC layouts), so a layout-construction
//     bug cannot cancel out of the comparison.
// The differential suite (ctest -L kernel) pins the production engines
// against these across a randomized (alpha, gamma, max_lead, reward-spec)
// grid; see differential_kernel_test.cpp.

#ifndef ETHSM_TESTS_KERNEL_REFERENCE_ENGINES_H
#define ETHSM_TESTS_KERNEL_REFERENCE_ENGINES_H

#include <vector>

#include "analysis/revenue.h"
#include "markov/stationary.h"
#include "markov/transition_model.h"
#include "rewards/reward_schedule.h"

namespace ethsm::testing {

/// The seed revenue integration: walk every CSR entry, evaluate the
/// Appendix-B reward flow per entry, Kahan-accumulate each component.
[[nodiscard]] analysis::RevenueBreakdown reference_compute_revenue(
    const markov::StationaryDistribution& pi,
    const markov::TransitionModel& model, const rewards::RewardConfig& config);

/// Naive power iteration over the raw transitions() edge list, started from
/// the point mass at (0,0). Returns the normalised stationary vector.
[[nodiscard]] std::vector<double> reference_solve_stationary_power(
    const markov::TransitionModel& model, double tolerance = 1e-14,
    int max_iterations = 200'000);

}  // namespace ethsm::testing

#endif  // ETHSM_TESTS_KERNEL_REFERENCE_ENGINES_H
