// Structural invariants of the stationary solver (ctest -L kernel): whatever
// path produced the vector -- Gauss-Seidel, power iteration, or the adaptive
// fallback between them -- the result must be a probability distribution in
// global balance, warm starts must not move the fixed point, and the
// truncation boundary's self-loops must keep every row stochastic.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "markov/stationary.h"
#include "markov/state_space.h"
#include "markov/transition_model.h"

namespace ethsm::markov {
namespace {

TransitionModel make_model(const StateSpace& space, double alpha,
                           double gamma) {
  MiningParams params;
  params.alpha = alpha;
  params.gamma = gamma;
  return TransitionModel(space, params);
}

double mass_sum(const StationaryDistribution& pi) {
  double sum = 0.0;
  for (double p : pi.values()) sum += p;
  return sum;
}

// Every solver method must return a normalised distribution in global
// balance, including on chains where the truncation boundary holds real mass
// (alpha = 0.45 with max_lead = 8 parks ~alpha^8 on the self-loop states).
TEST(KernelSolverInvariants, SumToOneAndBalanceAcrossMethods) {
  for (int max_lead : {8, 40, 80}) {
    const StateSpace space(max_lead);
    for (double alpha : {0.05, 0.30, 0.45}) {
      for (double gamma : {0.0, 0.5, 1.0}) {
        const TransitionModel model = make_model(space, alpha, gamma);
        for (SolveMethod method :
             {SolveMethod::automatic, SolveMethod::gauss_seidel,
              SolveMethod::power}) {
          StationaryOptions options;
          options.method = method;
          const auto pi = solve_stationary(model, options);
          EXPECT_NEAR(mass_sum(pi), 1.0, 1e-12)
              << "alpha=" << alpha << " gamma=" << gamma
              << " max_lead=" << max_lead << " method="
              << static_cast<int>(method);
          EXPECT_LE(pi.balance_residual(model), 1e-10)
              << "alpha=" << alpha << " gamma=" << gamma
              << " max_lead=" << max_lead;
          for (double p : pi.values()) EXPECT_GE(p, 0.0);
        }
      }
    }
  }
}

// Rows must sum to exactly the unit block-production rate, with the
// truncation boundary's pool-extension folded into a self-loop.
TEST(KernelSolverInvariants, RowsStochasticIncludingTruncationBoundary) {
  const StateSpace space(12);
  const TransitionModel model = make_model(space, 0.45, 0.3);
  const auto& row = model.row_offsets();
  const auto& rate = model.rates();
  for (int s = 0; s < space.size(); ++s) {
    double total = 0.0;
    for (std::uint32_t k = row[static_cast<std::size_t>(s)];
         k < row[static_cast<std::size_t>(s) + 1]; ++k) {
      total += rate[k];
    }
    EXPECT_NEAR(total, 1.0, 1e-15) << "state " << s;
  }
  // Boundary states (12, j) must carry an explicit self-loop of rate alpha.
  bool found_boundary_loop = false;
  for (const Transition& t : model.transitions()) {
    if (t.from == t.to && space.state_at(t.from).ls == 12) {
      EXPECT_NEAR(t.rate, 0.45, 1e-15);
      found_boundary_loop = true;
    }
  }
  EXPECT_TRUE(found_boundary_loop);
}

// The smallest admissible truncation still solves cleanly under every
// method (4 states; the boundary self-loops carry order-alpha^2 mass).
TEST(KernelSolverInvariants, MinimalTruncationSolves) {
  const StateSpace space(2);
  const TransitionModel model = make_model(space, 0.4, 0.6);
  for (SolveMethod method : {SolveMethod::automatic, SolveMethod::gauss_seidel,
                             SolveMethod::power}) {
    StationaryOptions options;
    options.method = method;
    const auto pi = solve_stationary(model, options);
    EXPECT_NEAR(mass_sum(pi), 1.0, 1e-12);
    EXPECT_LE(pi.residual(), options.tolerance);
  }
}

// alpha = 0 makes the (0,0) self-loop absorb the whole unit rate, which
// degenerates the Gauss-Seidel diagonal; `automatic` must route the chain to
// power iteration and land on the point mass at consensus.
TEST(KernelSolverInvariants, DegenerateDiagonalRoutesToPower) {
  const StateSpace space(8);
  const TransitionModel model = make_model(space, 0.0, 0.5);
  const auto pi = solve_stationary(model);
  EXPECT_EQ(pi.method(), SolveMethod::power);
  EXPECT_NEAR(pi.at({0, 0}), 1.0, 1e-12);
  EXPECT_NEAR(mass_sum(pi), 1.0, 1e-12);
}

// A regular chain under `automatic` must actually take the Gauss-Seidel
// path (the raw-speed claim rests on it), and report its method as such.
TEST(KernelSolverInvariants, AutomaticTakesGaussSeidelOnRegularChains) {
  const StateSpace space(80);
  const TransitionModel model = make_model(space, 0.4, 0.5);
  const auto pi = solve_stationary(model);
  EXPECT_EQ(pi.method(), SolveMethod::gauss_seidel);
  EXPECT_LE(pi.residual(), StationaryOptions{}.tolerance);
}

// Warm-starting from the solved vector must keep the fixed point and
// converge almost immediately; warm-starting a *nearby* chain must beat the
// cold-start sweep count (this is what analysis::RevenueCache relies on).
TEST(KernelSolverInvariants, WarmStartKeepsFixedPointAndCutsIterations) {
  const StateSpace space(80);
  const TransitionModel model = make_model(space, 0.38, 0.5);
  const auto cold = solve_stationary(model);

  StationaryOptions warm;
  warm.initial = &cold.values();
  const auto rewarmed = solve_stationary(model, warm);
  EXPECT_LE(rewarmed.iterations(), 3);
  for (int s = 0; s < space.size(); ++s) {
    EXPECT_NEAR(rewarmed[s], cold[s], 1e-11) << "state " << s;
  }

  const TransitionModel nearby = make_model(space, 0.381, 0.5);
  const auto nearby_cold = solve_stationary(nearby);
  StationaryOptions nearby_warm;
  nearby_warm.initial = &cold.values();
  const auto nearby_warmed = solve_stationary(nearby, nearby_warm);
  EXPECT_LT(nearby_warmed.iterations(), nearby_cold.iterations());
  for (int s = 0; s < space.size(); ++s) {
    EXPECT_NEAR(nearby_warmed[s], nearby_cold[s], 1e-10) << "state " << s;
  }
}

// Squeezing the iteration budget exercises the adaptive fallback plumbing:
// under `automatic` Gauss-Seidel owns half the budget, the power fallback
// the rest, and the combined sweep count stays within the cap.
TEST(KernelSolverInvariants, FallbackRespectsIterationBudget) {
  const StateSpace space(80);
  const TransitionModel model = make_model(space, 0.45, 0.1);
  StationaryOptions tight;
  tight.max_iterations = 10;
  const auto pi = solve_stationary(model, tight);
  EXPECT_EQ(pi.method(), SolveMethod::power);  // GS cannot converge in 5
  EXPECT_LE(pi.iterations(), 10);
  EXPECT_NEAR(mass_sum(pi), 1.0, 1e-12);  // still a distribution
}

}  // namespace
}  // namespace ethsm::markov
