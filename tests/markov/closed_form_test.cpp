#include "markov/closed_form.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "markov/stationary.h"

namespace ethsm::markov {
namespace {

TEST(FMultisum, AppendixAExampleZEqualsOne) {
  // f(x, y, 1) = x - y - 1.
  for (int y = 0; y <= 5; ++y) {
    for (int x = y + 2; x <= y + 8; ++x) {
      EXPECT_DOUBLE_EQ(f_multisum(x, y, 1), x - y - 1.0) << x << "," << y;
    }
  }
}

TEST(FMultisum, AppendixAExampleZEqualsTwo) {
  // f(x, y, 2) = (x - y - 1)(x - y + 2) / 2.
  for (int y = 0; y <= 5; ++y) {
    for (int x = y + 2; x <= y + 8; ++x) {
      EXPECT_DOUBLE_EQ(f_multisum(x, y, 2),
                       (x - y - 1.0) * (x - y + 2.0) / 2.0)
          << x << "," << y;
    }
  }
}

TEST(FMultisum, ZeroOutsideDomain) {
  EXPECT_DOUBLE_EQ(f_multisum(5, 4, 1), 0.0);   // x < y + 2
  EXPECT_DOUBLE_EQ(f_multisum(5, 3, 0), 0.0);   // z < 1
  EXPECT_DOUBLE_EQ(f_multisum(2, 3, 2), 0.0);
}

TEST(FMultisum, BruteForceCrossCheckZEqualsThree) {
  // Direct triple summation per the Eq. (2) nesting.
  for (int y = 1; y <= 3; ++y) {
    for (int x = y + 2; x <= y + 6; ++x) {
      double direct = 0.0;
      for (int s3 = y + 2; s3 <= x; ++s3) {
        for (int s2 = y + 1; s2 <= s3; ++s2) {
          for (int s1 = y; s1 <= s2; ++s1) direct += 1.0;
        }
      }
      EXPECT_DOUBLE_EQ(f_multisum(x, y, 3), direct) << x << "," << y;
    }
  }
}

TEST(Pi00, KnownValues) {
  // (1-2a)/(2a^3-4a^2+1) at a = 0.1: 0.8/(0.002-0.04+1) = 0.8316...
  EXPECT_NEAR(pi00_closed_form(0.1), 0.8 / 0.962, 1e-12);
  EXPECT_NEAR(pi00_closed_form(0.0), 1.0, 1e-12);
}

TEST(Pi00, RejectsAlphaOutOfRange) {
  EXPECT_THROW(pi00_closed_form(0.5), std::invalid_argument);
  EXPECT_THROW(pi00_closed_form(-0.1), std::invalid_argument);
}

TEST(Pii0, GeometricDecay) {
  const double a = 0.3;
  for (int i = 1; i < 8; ++i) {
    EXPECT_NEAR(pii0_closed_form(a, i + 1) / pii0_closed_form(a, i), a, 1e-12);
  }
}

TEST(PiijClosedForm, RejectsInvalidStates) {
  EXPECT_THROW(piij_closed_form(0.3, 0.5, 2, 1), std::invalid_argument);
  EXPECT_THROW(piij_closed_form(0.3, 0.5, 3, 0), std::invalid_argument);
}

class PiijGridTest : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PiijGridTest, GeneralFormulaMatchesNumericSolution) {
  // The headline validation: Eq. (2) is exact. Compare every (i, j) with
  // i <= 12 against the numeric stationary distribution.
  const auto [alpha, gamma] = GetParam();
  StateSpace space(80);
  TransitionModel model(space, MiningParams{alpha, gamma});
  const auto pi = solve_stationary(model);
  for (int i = 3; i <= 12; ++i) {
    for (int j = 1; j <= i - 2; ++j) {
      const double numeric = pi.at({i, j});
      const double closed = piij_closed_form(alpha, gamma, i, j);
      EXPECT_NEAR(numeric, closed, 1e-7 * closed + 1e-10)
          << "(" << i << "," << j << ") a=" << alpha << " g=" << gamma;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AlphaGammaGrid, PiijGridTest,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.4),
                       ::testing::Values(0.2, 0.5, 0.9)),
    [](const auto& info) {
      return "a" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 100)) +
             "_g" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 100));
    });

}  // namespace
}  // namespace ethsm::markov
